(* Benchmark harness: regenerates every table and figure of the
   evaluation (see DESIGN.md §4 and EXPERIMENTS.md).

     dune exec bench/main.exe [--] [e2e|suite|sweep|fusion_ablation|
       speculation_ablation|compile_time|memory|constraints|
       mixed_precision|horizontal|cpu|serving|specialization|
       resilience|cache|micro|all]

   "all" runs E1..E15; "micro" runs the Bechamel compiler
   microbenchmarks. *)

module Suite = Models.Suite
module Common = Models.Common
module E = Baselines.Executor
module Systems = Baselines.Systems
module Planner = Fusion.Planner
module Cluster = Fusion.Cluster
module Kernel = Codegen.Kernel
module Profile = Runtime.Profile

let devices = [ Gpusim.Device.a10; Gpusim.Device.t4 ]

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let env_to_string env =
  String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) env)

(* ----------------------------------------------------------------------
   E1: end-to-end inference latency & speedups (the headline figures:
   one per device). With [--json OUT] the same numbers — per-model
   latency, speedup vs every baseline, one-off compile time — are also
   written as a machine-readable file, so each PR's perf trajectory can
   be tracked without scraping tables. *)

let json_rows : Obs.Json.t list ref = ref []
let json_compile : (string * float) list ref = ref []

let write_bench_json ~path ~summary =
  let doc =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str "E1-e2e");
        ("unit", Obs.Json.Obj [ ("latency", Obs.Json.Str "us"); ("compile", Obs.Json.Str "ms") ]);
        ("rows", Obs.Json.List (List.rev !json_rows));
        ( "compile_ms",
          Obs.Json.Obj
            (List.rev_map (fun (m, ms) -> (m, Obs.Json.Float ms)) !json_compile) );
        ("summary", Obs.Json.List summary);
      ]
  in
  Obs.Json.write_file path doc;
  Printf.printf "\nheadline numbers -> %s\n" path

let e2e ?json () =
  header "E1: end-to-end speedup of BladeDISC over each baseline (per device)";
  let paper_avg =
    [
      ("pytorch", 3.54); ("torchscript", 3.12); ("tvm", 1.95); ("onnxrt", 1.47);
      ("xla", 1.24); ("inductor", 2.93); ("tensorrt", 1.46);
    ]
  in
  let names = List.map (fun s -> s.E.s_name) Systems.all_strategies in
  let baseline_names = List.filter (fun n -> n <> "bladedisc") names in
  let speedups : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace speedups n (ref [])) baseline_names;
  List.iter
    (fun device ->
      Printf.printf "\n-- device %s --\n" device.Gpusim.Device.name;
      Printf.printf "%-11s %-26s %10s  %s\n" "model" "shape" "disc(us)"
        (String.concat " " (List.map (fun n -> Printf.sprintf "%11s" n) baseline_names));
      List.iter
        (fun entry ->
          let execs =
            List.map
              (fun s -> (s.E.s_name, E.make_from_strategy s (entry.Suite.build ())))
              Systems.all_strategies
          in
          let disc = List.assoc "bladedisc" execs in
          List.iter
            (fun env ->
              let d = (disc.E.run ~device env).E.latency_us in
              let row_speedups = ref [] in
              let cells =
                List.map
                  (fun n ->
                    let r = (List.assoc n execs).E.run ~device env in
                    let x = r.E.latency_us /. d in
                    (Hashtbl.find speedups n) := x :: !(Hashtbl.find speedups n);
                    row_speedups := (n, Obs.Json.Float x) :: !row_speedups;
                    Printf.sprintf "%10.2fx" x)
                  baseline_names
              in
              json_rows :=
                Obs.Json.Obj
                  [
                    ("model", Obs.Json.Str entry.Suite.name);
                    ("device", Obs.Json.Str device.Gpusim.Device.name);
                    ("shape", Obs.Json.Str (env_to_string env));
                    ("disc_us", Obs.Json.Float d);
                    ("speedups", Obs.Json.Obj (List.rev !row_speedups));
                  ]
                :: !json_rows;
              Printf.printf "%-11s %-26s %10.0f  %s\n" entry.Suite.name (env_to_string env) d
                (String.concat " " cells))
            entry.Suite.bench_dims;
          if not (List.mem_assoc entry.Suite.name !json_compile) then
            json_compile :=
              (entry.Suite.name, disc.E.total_compile_ms ()) :: !json_compile)
        Suite.all)
    devices;
  Printf.printf "\n-- summary over both devices (speedup of BladeDISC) --\n";
  Printf.printf "%-12s %10s %10s %12s %10s\n" "baseline" "avg" "max" "paper-avg" "paper-max";
  let paper_max =
    [
      ("pytorch", 6.95); ("torchscript", 6.25); ("tvm", 4.08); ("onnxrt", 2.04);
      ("xla", 2.06); ("inductor", 7.92); ("tensorrt", 4.16);
    ]
  in
  let summary =
    List.map
      (fun n ->
        let xs = !(Hashtbl.find speedups n) in
        let avg = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
        let mx = List.fold_left Float.max 0.0 xs in
        Printf.printf "%-12s %9.2fx %9.2fx %11.2fx %9.2fx\n" n avg mx (List.assoc n paper_avg)
          (List.assoc n paper_max);
        Obs.Json.Obj
          [
            ("baseline", Obs.Json.Str n);
            ("avg_speedup", Obs.Json.Float avg);
            ("max_speedup", Obs.Json.Float mx);
          ])
      baseline_names
  in
  match json with Some path -> write_bench_json ~path ~summary | None -> ()

(* ----------------------------------------------------------------------
   E2: the model-suite characteristics table. *)

let suite () =
  header "E2: model suite (Table: workloads and their dynamism)";
  Printf.printf "%-11s %6s %5s %5s %5s %5s %5s  %s\n" "model" "insts" "ew" "shape" "red"
    "lib" "dyn" "dynamism";
  List.iter
    (fun entry ->
      let built = entry.Suite.build () in
      let g = built.Common.graph in
      ignore (Ir.Passes.run_all g);
      let count cls =
        Ir.Graph.fold g (fun n i -> if Ir.Op.fusion_class i.Ir.Graph.op = cls then n + 1 else n) 0
      in
      Printf.printf "%-11s %6d %5d %5d %5d %5d %5d  %s\n" entry.Suite.name
        (Ir.Graph.num_insts g) (count Ir.Op.Elementwise) (count Ir.Op.Shape_manipulating)
        (count Ir.Op.Reduction) (count Ir.Op.Library)
        (List.length built.Common.dims)
        entry.Suite.dynamism)
    Suite.all

(* ----------------------------------------------------------------------
   E3: latency across input shapes (figure: one line per system; static
   compilers show padding cliffs and recompile stalls, BladeDISC is
   smooth). Includes per-shape one-off compilation cost for the
   per-signature systems. *)

let sweep () =
  header "E3: latency across the dynamic-dimension sweep (A10)";
  let device = Gpusim.Device.a10 in
  let systems = [ "pytorch"; "xla"; "tvm"; "tensorrt"; "bladedisc" ] in
  List.iter
    (fun entry ->
      let dim_name, values = entry.Suite.sweep in
      Printf.printf "\n-- %s: sweeping %s (other dims at first bench point) --\n"
        entry.Suite.name dim_name;
      let base_env = List.hd entry.Suite.bench_dims in
      let execs =
        List.map (fun n -> (n, Systems.make n (entry.Suite.build ()))) systems
      in
      Printf.printf "%-6s %s\n" dim_name
        (String.concat " "
           (List.map (fun n -> Printf.sprintf "%18s" (n ^ "(us|cms)")) systems));
      List.iter
        (fun v ->
          let env = List.map (fun (n, b) -> (n, if n = dim_name then v else b)) base_env in
          let cells =
            List.map
              (fun n ->
                let r = (List.assoc n execs).E.run ~device env in
                Printf.sprintf "%10.0f|%6.0f" r.E.latency_us r.E.compile_ms)
              systems
          in
          Printf.printf "%-6d %s\n" v (String.concat " " cells))
        values)
    Suite.all;
  Printf.printf
    "\n(compile-ms column: one-off compilation triggered by first sight of that shape;\n\
    \ XLA recompiles per pow2 bucket, TVM re-tunes per exact shape, BladeDISC never.)\n"

(* ----------------------------------------------------------------------
   E4: fusion ablation (figure: kernels & latency under each planner). *)

let fusion_ablation () =
  header "E4: fusion ablation — kernel counts and latency per planner variant (A10)";
  let variants =
    [
      ("no-fusion", Planner.no_fusion_config);
      ("static-only", Planner.static_only_config);
      ("no-products", Planner.no_product_config);
      ("kLoop+kInput", Planner.no_stitch_config);
      ("+kStitch", Planner.default_config);
    ]
  in
  Printf.printf "%-11s %-13s %8s %6s %7s %8s %10s\n" "model" "variant" "kernels" "loops"
    "stitch" "launches" "latency_us";
  List.iter
    (fun entry ->
      List.iter
        (fun (vname, cfg) ->
          let built = entry.Suite.build () in
          ignore (Ir.Passes.run_all built.Common.graph);
          let plan = Planner.plan ~config:cfg built.Common.graph in
          let exe = Runtime.Executable.compile built.Common.graph plan in
          let env = List.hd entry.Suite.bench_dims in
          let bnd = Common.binding_for built env in
          let profile = Runtime.Executable.simulate ~device:Gpusim.Device.a10 exe bnd in
          Printf.printf "%-11s %-13s %8d %6d %7d %8d %10.0f\n" entry.Suite.name vname
            (Cluster.num_kernels plan)
            (Cluster.count_kind plan Cluster.Loop + Cluster.count_kind plan Cluster.Input)
            (Cluster.count_kind plan Cluster.Stitch)
            profile.Profile.launches (Profile.total_us profile))
        variants)
    Suite.all

(* ----------------------------------------------------------------------
   E5: speculation ablation (figure: latency with/without speculative
   codegen versions, on vectorization-friendly and -unfriendly shapes). *)

let speculation_ablation () =
  header "E5: speculation ablation — compile-time versions + runtime selection (A10)";
  Printf.printf "%-11s %-26s %12s %12s %8s\n" "model" "shape" "spec-on(us)" "spec-off(us)"
    "gain";
  List.iter
    (fun entry ->
      let mk codegen =
        let built = entry.Suite.build () in
        ignore (Ir.Passes.run_all built.Common.graph);
        let plan = Planner.plan built.Common.graph in
        (built, Runtime.Executable.compile ~codegen built.Common.graph plan)
      in
      let built_on, exe_on = mk Kernel.default_config in
      let built_off, exe_off = mk Kernel.no_speculation_config in
      List.iter
        (fun env ->
          let t_on =
            Profile.total_us
              (Runtime.Executable.simulate exe_on (Common.binding_for built_on env))
          in
          let t_off =
            Profile.total_us
              (Runtime.Executable.simulate exe_off (Common.binding_for built_off env))
          in
          Printf.printf "%-11s %-26s %12.0f %12.0f %7.2fx\n" entry.Suite.name
            (env_to_string env) t_on t_off (t_off /. t_on))
        entry.Suite.bench_dims)
    Suite.all

(* ----------------------------------------------------------------------
   E6: compilation cost to serve a realistic trace of shapes. *)

let compile_time () =
  header "E6: one-off compilation/tuning cost to serve a 64-request shape trace";
  let systems = [ "bladedisc"; "xla"; "tvm"; "tensorrt"; "inductor"; "onnxrt" ] in
  Printf.printf "%-11s %s\n" "model"
    (String.concat " " (List.map (fun n -> Printf.sprintf "%14s" (n ^ "(s)")) systems));
  List.iter
    (fun entry ->
      let envs = Workloads.Trace.environments ~seed:7 (Workloads.Trace.serving_mix entry) ~n:64 in
      let cells =
        List.map
          (fun n ->
            let ex = Systems.make n (entry.Suite.build ()) in
            List.iter
              (fun env -> ignore (ex.E.run ~device:Gpusim.Device.a10 env))
              envs;
            Printf.sprintf "%14.1f" (ex.E.total_compile_ms () /. 1000.0))
          systems
      in
      Printf.printf "%-11s %s\n" entry.Suite.name (String.concat " " cells))
    Suite.all;
  Printf.printf "\n(XLA compiles per pow2 bucket signature; TVM tunes per exact signature;\n\
                \ the others compile once. BladeDISC's single compile is seconds.)\n"

(* ----------------------------------------------------------------------
   E7: peak device memory, including padding waste. *)

let memory () =
  header "E7: peak device memory at the largest benchmark shape (A10)";
  let systems = [ "bladedisc"; "xla"; "pytorch" ] in
  Printf.printf "%-11s %-26s %s\n" "model" "shape"
    (String.concat " " (List.map (fun n -> Printf.sprintf "%16s" (n ^ "(MB)")) systems));
  List.iter
    (fun entry ->
      let env = List.nth entry.Suite.bench_dims (List.length entry.Suite.bench_dims - 1) in
      let cells =
        List.map
          (fun n ->
            let ex = Systems.make n (entry.Suite.build ()) in
            let r = ex.E.run ~device:Gpusim.Device.a10 env in
            Printf.sprintf "%16.1f"
              (float_of_int r.E.profile.Profile.peak_bytes /. 1e6))
          systems
      in
      Printf.printf "%-11s %-26s %s\n" entry.Suite.name (env_to_string env)
        (String.concat " " cells))
    Suite.all;
  Printf.printf "\n(PyTorch keeps every intermediate alive longer (no fused liveness);\n\
                \ XLA additionally pads buffers to bucket shapes.)\n";
  Printf.printf "\n-- RAL static buffer planning (BladeDISC, largest shape) --\n";
  Printf.printf "%-11s %12s %12s %8s\n" "model" "arena(MB)" "naive(MB)" "reuse";
  List.iter
    (fun entry ->
      let built = entry.Suite.build () in
      ignore (Ir.Passes.run_all built.Common.graph);
      let plan = Planner.plan built.Common.graph in
      let exe = Runtime.Executable.compile built.Common.graph plan in
      let env = List.nth entry.Suite.bench_dims (List.length entry.Suite.bench_dims - 1) in
      let p = Runtime.Memplan.plan exe (Common.binding_for built env) in
      assert (Runtime.Memplan.validate p);
      Printf.printf "%-11s %12.2f %12.2f %7.1fx\n" entry.Suite.name
        (float_of_int p.Runtime.Memplan.arena_bytes /. 1e6)
        (float_of_int p.Runtime.Memplan.naive_bytes /. 1e6)
        (float_of_int p.Runtime.Memplan.naive_bytes
        /. float_of_int (max 1 p.Runtime.Memplan.arena_bytes)))
    Suite.all

(* ----------------------------------------------------------------------
   E8: shape-constraint coverage — what the symbolic machinery proves. *)

let constraints () =
  header "E8: shape-constraint coverage per model";
  Printf.printf "%-11s %6s %8s %8s %10s %10s %13s\n" "model" "insts" "symbols" "classes"
    "prod.facts" "dyn.slots" "equal-pairs";
  List.iter
    (fun entry ->
      let built = entry.Suite.build () in
      ignore (Ir.Passes.run_all built.Common.graph);
      let s = Disc.Stats.coverage built.Common.graph in
      Printf.printf "%-11s %6d %8d %8d %10d %10d %6d/%6d\n" entry.Suite.name
        s.Disc.Stats.num_insts s.Disc.Stats.num_symbols s.Disc.Stats.num_classes
        s.Disc.Stats.num_product_facts s.Disc.Stats.dynamic_dim_slots
        s.Disc.Stats.proven_equal_pairs s.Disc.Stats.total_pairs_sampled)
    Suite.all;
  Printf.printf "\n(classes << symbols: propagation collapses almost all dynamic dims onto\n\
                \ the handful of true input symbols — that collapse is what enables fusion.)\n"

(* ----------------------------------------------------------------------
   E9 (extension): mixed-precision deployment — fp32 vs fp16 latency and
   memory. Not a table in the paper's main evaluation, but a deployment
   mode BladeDISC supports; DESIGN.md lists it as an extension. *)

let mixed_precision () =
  header "E9 (extension): fp16 inference vs fp32 (A10)";
  Printf.printf "%-11s %-26s %12s %12s %8s %12s %12s\n" "model" "shape" "fp32(us)"
    "fp16(us)" "speedup" "fp32-peakMB" "fp16-peakMB";
  List.iter
    (fun entry ->
      let env = List.hd entry.Suite.bench_dims in
      let measure ~half =
        let built = entry.Suite.build () in
        if half then ignore (Ir.Precision.to_f16 built.Common.graph);
        ignore (Ir.Passes.run_all built.Common.graph);
        let plan = Planner.plan built.Common.graph in
        let exe = Runtime.Executable.compile built.Common.graph plan in
        Runtime.Executable.simulate exe (Common.binding_for built env)
      in
      let p32 = measure ~half:false and p16 = measure ~half:true in
      Printf.printf "%-11s %-26s %12.0f %12.0f %7.2fx %12.1f %12.1f\n" entry.Suite.name
        (env_to_string env) (Profile.total_us p32) (Profile.total_us p16)
        (Profile.total_us p32 /. Profile.total_us p16)
        (float_of_int p32.Profile.peak_bytes /. 1e6)
        (float_of_int p16.Profile.peak_bytes /. 1e6))
    Suite.all

(* ----------------------------------------------------------------------
   E10 (extension): horizontal fusion — packing independent same-domain
   kLoop kernels into one launch (AStitch-style, off by default). *)

let horizontal_ablation () =
  header "E10 (extension): horizontal kLoop packing (A10, smallest bench shape)";
  Printf.printf "%-11s %9s %9s %8s %12s %12s %8s\n" "model" "kernels" "+horiz" "packed"
    "latency(us)" "+horiz(us)" "gain";
  List.iter
    (fun entry ->
      let measure config =
        let built = entry.Suite.build () in
        ignore (Ir.Passes.run_all built.Common.graph);
        let plan = Planner.plan ~config built.Common.graph in
        let exe = Runtime.Executable.compile built.Common.graph plan in
        let env = List.hd entry.Suite.bench_dims in
        let p = Runtime.Executable.simulate exe (Common.binding_for built env) in
        (plan, p)
      in
      let plan0, p0 = measure Planner.default_config in
      let plan1, p1 = measure Planner.horizontal_config in
      Printf.printf "%-11s %9d %9d %8d %12.0f %12.0f %7.2fx\n" entry.Suite.name
        (Cluster.num_kernels plan0) (Cluster.num_kernels plan1)
        (Cluster.count_kind plan1 Cluster.Horizontal)
        (Profile.total_us p0) (Profile.total_us p1)
        (Profile.total_us p0 /. Profile.total_us p1))
    Suite.all

(* ----------------------------------------------------------------------
   E11 (extension): CPU deployment — the same compiled artifacts on the
   Xeon profile (dispatch is cheap, throughput is scarce: fusion still
   wins, mostly through memory traffic rather than launch count). *)

let cpu () =
  header "E11 (extension): CPU inference (Xeon profile), BladeDISC vs op-by-op";
  let device = Gpusim.Device.xeon in
  Printf.printf "%-11s %-26s %12s %12s %12s %10s\n" "model" "shape" "disc(us)"
    "pytorch(us)" "onnxrt(us)" "vs eager";
  List.iter
    (fun entry ->
      let env = List.hd entry.Suite.bench_dims in
      let lat name =
        let ex = Systems.make name (entry.Suite.build ()) in
        (ex.E.run ~device env).E.latency_us
      in
      let d = lat "bladedisc" and pt = lat "pytorch" and ort = lat "onnxrt" in
      Printf.printf "%-11s %-26s %12.0f %12.0f %12.0f %9.2fx\n" entry.Suite.name
        (env_to_string env) d pt ort (pt /. d))
    Suite.all

(* ----------------------------------------------------------------------
   E12 (extension): tail latency under dynamic batching — the serving
   experiment that motivates the whole paper. Systems warm up at deploy
   time; per-signature compilers still stall the queue in-band on every
   new shape signature. *)

let serving () =
  header "E12 (extension): p99 latency behind a dynamically-batched endpoint (A10)";
  let device = Gpusim.Device.a10 in
  let module Q = Workloads.Queueing in
  Printf.printf "%-11s %-11s %9s %9s %9s %11s %7s\n" "model" "system" "p50(ms)" "p95(ms)"
    "p99(ms)" "mean-batch" "stalls";
  List.iter
    (fun (mname, dim_specs, batch_dim, qps) ->
      let entry = Suite.find mname in
      let arrivals = Q.generate_arrivals ~seed:11 ~qps ~n:300 ~dims:dim_specs in
      let policy = { Q.max_batch = 8; max_wait_us = 2000.0 } in
      List.iter
        (fun name ->
          let ex = Systems.make name (entry.Suite.build ()) in
          ignore (ex.E.run ~device (Q.batch_env ~batch_dim [ List.hd arrivals ]));
          let stalls = ref 0 in
          let service env =
            let r = ex.E.run ~device env in
            if r.E.compile_ms > 100.0 then incr stalls;
            r.E.latency_us +. (r.E.compile_ms *. 1000.0)
          in
          let o = Q.simulate ~arrivals ~policy ~batch_dim ~service in
          Printf.printf "%-11s %-11s %9.1f %9.1f %9.1f %11.1f %7d\n" mname name
            (Q.percentile o.Q.latencies_us 0.5 /. 1000.0)
            (Q.percentile o.Q.latencies_us 0.95 /. 1000.0)
            (Q.percentile o.Q.latencies_us 0.99 /. 1000.0)
            o.Q.mean_batch !stalls)
        [ "bladedisc"; "onnxrt"; "xla"; "pytorch" ];
      print_newline ())
    [
      ("bert", [ ("seq", Workloads.Trace.Bimodal (24, 160)) ], "batch", 150.0);
      ("dien", [ ("hist", Workloads.Trace.Skewed (5, 100)) ], "batch", 2000.0);
    ];
  Printf.printf "(a stall is an in-band compilation > 100 ms blocking the serving queue)\n"

(* ----------------------------------------------------------------------
   E13 (extension): hot-shape specialization — static variants for
   likely shapes next to the shape-generic artifact (hybrid
   static/dynamic deployment). *)

let specialization () =
  header "E13 (extension): hot-shape specialization (A10, first likely shape)";
  Printf.printf "%-11s %12s %12s %8s %14s\n" "model" "generic(us)" "hot(us)" "gain"
    "extra-compile(s)";
  List.iter
    (fun entry ->
      let built = entry.Suite.build () in
      let hot_env = List.hd entry.Suite.bench_dims in
      let sp = Disc.Specialize.create ~hot_envs:[ hot_env ] built in
      let hot_p, src = Disc.Specialize.serve sp hot_env in
      assert (src = `Hot);
      (* a near-miss shape runs the generic artifact *)
      let miss_env = List.map (fun (n, v) -> (n, v)) hot_env in
      let generic_p, _ = Disc.Specialize.serve sp miss_env in
      ignore generic_p;
      (* compare generic artifact at the same hot shape *)
      let dims = List.map (fun (n, v) -> (Common.dim_exn sp.Disc.Specialize.built n, v)) hot_env in
      let gen_p = Disc.Compiler.simulate sp.Disc.Specialize.generic dims in
      Printf.printf "%-11s %12.0f %12.0f %7.2fx %14.1f\n" entry.Suite.name
        (Profile.total_us gen_p) (Profile.total_us hot_p)
        (Profile.total_us gen_p /. Profile.total_us hot_p)
        ((Disc.Specialize.total_compile_ms sp
         -. sp.Disc.Specialize.generic.Disc.Compiler.compile_time_ms)
        /. 1000.0))
    Suite.all

(* ----------------------------------------------------------------------
   E14 (extension): fault-tolerant serving — deterministic fault
   injection against the session's retry / interpreter-fallback /
   circuit-breaker ladder, behind an overload-aware bounded queue.
   Every request ends in exactly one disposition. *)

let resilience () =
  header "E14 (extension): fault injection vs graceful degradation (dien, A10)";
  let module Q = Workloads.Queueing in
  let entry = Suite.find "dien" in
  let arrivals =
    Q.generate_arrivals ~seed:11 ~qps:2000.0 ~n:500
      ~dims:[ ("hist", Workloads.Trace.Skewed (5, 100)) ]
  in
  let policy =
    {
      Q.batching = { Q.max_batch = 8; max_wait_us = 2000.0 };
      queue_bound = 64;
      deadline_us = 200_000.0;
    }
  in
  Printf.printf "%-10s %8s %9s %5s %7s %8s %8s %7s %8s %9s\n" "fault-rate" "served"
    "fell-back" "shed" "expired" "retries" "faults" "despec" "p50(ms)" "p99(ms)";
  List.iter
    (fun rate ->
      let built = entry.Suite.build () in
      let sess =
        Disc.Session.create
          ~fault_config:(Gpusim.Fault.create ~seed:7 ~kernel_fault_rate:rate ())
          built
      in
      let service env =
        match Disc.Session.serve_result sess env with
        | Ok (p, path) -> (Profile.total_us p, path)
        | Error _ -> (1e6, `Fallback)
      in
      let a = Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service () in
      let s = Disc.Session.stats sess in
      let completed =
        Array.of_list
          (List.filter (fun l -> not (Float.is_nan l))
             (Array.to_list a.Q.request_latencies_us))
      in
      Printf.printf "%-10.2f %8d %9d %5d %7d %8d %8d %7d %8.1f %9.1f\n" rate a.Q.served
        a.Q.fell_back a.Q.shed a.Q.expired s.Disc.Session.retries s.Disc.Session.faults
        s.Disc.Session.despeculated
        (Q.percentile completed 0.5 /. 1000.0)
        (Q.percentile completed 0.99 /. 1000.0))
    [ 0.0; 0.05; 0.10 ];
  Printf.printf
    "(every request accounted: served + fell-back + shed + expired = %d arrivals;\n\
    \ fell-back requests are re-served on the op-by-op reference interpreter)\n"
    (List.length arrivals)

(* ----------------------------------------------------------------------
   E15 (extension): compilation cache — cold vs warm session creation.
   One shared Compile_cache serves several session replicas per model
   (the millions-of-users deployment shape: many endpoints, one model
   zoo). The first replica pays the full simulated compile; every later
   one hits the cache and reports compile_ms = 0. A second segment
   shows async compile: a session created with the compile in flight
   serves its first batches on the reference path ("warmed"
   disposition) and transparently switches to the compiled path. *)

let cache_experiment ?json () =
  header "E15 (extension): compilation cache — cold vs warm sessions (A10)";
  let cache = Disc.Compile_cache.create () in
  let replicas = 10 in
  Printf.printf "%-12s %12s %12s %9s\n" "model" "cold(ms)" "warm(ms)" "hits";
  let rows =
    List.map
      (fun entry ->
        let cold = Disc.Session.create ~cache (entry.Suite.build ()) in
        let cold_ms = (Disc.Session.stats cold).Disc.Session.compile_ms in
        let warm_ms = ref 0.0 and hits = ref 0 in
        for _ = 2 to replicas do
          let s = Disc.Session.stats (Disc.Session.create ~cache (entry.Suite.build ())) in
          warm_ms := !warm_ms +. s.Disc.Session.compile_ms;
          if s.Disc.Session.cache_hit then incr hits
        done;
        let warm_mean = !warm_ms /. float_of_int (replicas - 1) in
        Printf.printf "%-12s %12.1f %12.1f %6d/%d\n" entry.Suite.name cold_ms warm_mean
          !hits (replicas - 1);
        (entry.Suite.name, cold_ms, warm_mean, !hits))
      Suite.all
  in
  let s = Disc.Compile_cache.stats cache in
  let rate = Disc.Compile_cache.hit_rate s in
  Printf.printf "cache: %s; overall hit rate %.1f%%\n"
    (Disc.Compile_cache.stats_to_string s)
    (100.0 *. rate);
  (* async-compile warmup: serve through the queue while the compile is
     in flight; batches launching inside the window are "warmed" *)
  let module Q = Workloads.Queueing in
  let sess = Disc.Session.create ~async_compile:true ((Suite.find "crnn").Suite.build ()) in
  let until_us = Disc.Session.warmup_remaining_us sess in
  let service env =
    (* the queue owns the wall clock: it only routes here after the
       warmup window, i.e. the background compile has finished *)
    Disc.Session.finish_warmup sess;
    match Disc.Session.serve_result sess env with
    | Ok (p, path) -> (Profile.total_us p, path)
    | Error _ -> (1e6, `Fallback)
  in
  let arrivals =
    Q.generate_arrivals ~seed:5 ~qps:800.0 ~n:4000
      ~dims:[ ("width", Workloads.Trace.Skewed (32, 320)) ]
  in
  let policy = Q.default_server_policy ~batching:{ Q.max_batch = 8; max_wait_us = 2000.0 } in
  let a =
    Q.simulate_server ~arrivals ~policy ~batch_dim:"batch"
      ~warmup:(until_us, fun env -> fst (service env))
      ~service ()
  in
  Printf.printf
    "async compile (crnn): warmup window %.0f ms -> %d warmed, %d compiled, %d fell back\n"
    (until_us /. 1000.0) a.Q.warmed a.Q.served a.Q.fell_back;
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E15-cache");
            ("replicas_per_model", Obs.Json.Int replicas);
            ( "rows",
              Obs.Json.List
                (List.map
                   (fun (name, cold_ms, warm_ms, hits) ->
                     Obs.Json.Obj
                       [
                         ("model", Obs.Json.Str name);
                         ("cold_compile_ms", Obs.Json.Float cold_ms);
                         ("warm_compile_ms", Obs.Json.Float warm_ms);
                         ("hits", Obs.Json.Int hits);
                       ])
                   rows) );
            ("hits", Obs.Json.Int s.Disc.Compile_cache.hits);
            ("misses", Obs.Json.Int s.Disc.Compile_cache.misses);
            ("evictions", Obs.Json.Int s.Disc.Compile_cache.evictions);
            ("hit_rate", Obs.Json.Float rate);
            ( "async_warmup",
              Obs.Json.Obj
                [
                  ("window_ms", Obs.Json.Float (until_us /. 1000.0));
                  ("warmed", Obs.Json.Int a.Q.warmed);
                  ("served", Obs.Json.Int a.Q.served);
                  ("fell_back", Obs.Json.Int a.Q.fell_back);
                ] );
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "cache numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E16 (extension): the multi-replica serving pool — single replica vs
   a pooled deployment at equal offered load, round-robin vs
   warmth-aware routing. The pool halves queueing delay by adding a
   replica; warmth-aware routing then keeps each shape signature's
   warmup on one replica instead of paying it everywhere. *)

let pool_serving ?json () =
  header "E16 (extension): serving pool — replicas, routing, padding (A10)";
  let module Pool = Serving.Pool in
  let module Bucket = Serving.Bucket in
  let module Router = Serving.Router in
  let traces =
    [
      ("dien", 800.0, [ ("hist", Workloads.Trace.Skewed (5, 100)) ]);
      ("bert", 400.0, [ ("seq", Workloads.Trace.Bimodal (24, 160)) ]);
    ]
  in
  let configs =
    [
      ("single", [ Gpusim.Device.a10 ], Router.Warmth_aware);
      ("pool-rr", [ Gpusim.Device.a10; Gpusim.Device.a10 ], Router.Round_robin);
      ("pool-warmth", [ Gpusim.Device.a10; Gpusim.Device.a10 ], Router.Warmth_aware);
    ]
  in
  Printf.printf "%-6s %-12s %8s %9s %5s %7s %6s %7s %8s %9s\n" "model" "config" "served"
    "fell-back" "shed" "expired" "cold" "waste%" "p50(ms)" "p99(ms)";
  let rows = ref [] in
  List.iter
    (fun (model, qps, dims) ->
      let entry = Suite.find model in
      let reqs =
        Workloads.Queueing.generate_arrivals ~seed:13 ~qps ~n:400 ~dims
        |> Pool.of_arrivals
        |> Pool.with_class_mix ~seed:13
             [ (Serving.Slo.Interactive, 0.25); (Serving.Slo.Standard, 0.5);
               (Serving.Slo.Best_effort, 0.25) ]
      in
      let bucket = List.map (fun (n, _) -> (n, Bucket.Pow2)) dims in
      List.iter
        (fun (cname, devices, router) ->
          let cfg =
            { (Pool.default_config ~devices ~batch_dim:"batch" ~bucket) with
              Pool.router }
          in
          let pool = Pool.create cfg (fun () -> entry.Suite.build ()) in
          let r = Pool.run pool reqs in
          let lats = Pool.completed_latencies r in
          let p50 = Pool.percentile lats 0.5 and p99 = Pool.percentile lats 0.99 in
          Printf.printf "%-6s %-12s %8d %9d %5d %7d %6d %7.1f %8.1f %9.1f\n" model cname
            r.Pool.served r.Pool.fell_back r.Pool.shed r.Pool.expired
            r.Pool.cold_dispatches
            (100.0 *. Pool.padding_waste r)
            (p50 /. 1000.0) (p99 /. 1000.0);
          rows :=
            Obs.Json.Obj
              [
                ("model", Obs.Json.Str model);
                ("config", Obs.Json.Str cname);
                ("replicas", Obs.Json.Int (List.length devices));
                ("router", Obs.Json.Str (Router.policy_to_string router));
                ("qps", Obs.Json.Float qps);
                ("served", Obs.Json.Int r.Pool.served);
                ("fell_back", Obs.Json.Int r.Pool.fell_back);
                ("shed", Obs.Json.Int r.Pool.shed);
                ("expired", Obs.Json.Int r.Pool.expired);
                ("cold_dispatches", Obs.Json.Int r.Pool.cold_dispatches);
                ("padding_waste", Obs.Json.Float (Pool.padding_waste r));
                ("p50_us", Obs.Json.Float p50);
                ("p99_us", Obs.Json.Float p99);
              ]
            :: !rows)
        configs)
    traces;
  Printf.printf
    "(same offered load per model; pooling removes queueing delay, warmth-aware\n\
    \ routing then avoids re-paying each signature's warmup on every replica)\n";
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E16-serving-pool");
            ("rows", Obs.Json.List (List.rev !rows));
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "pool numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E17 (extension): adaptive serving under a drifting shape
   distribution. Traffic clusters just above powers of two (a worst
   case for static Pow2 bucketing: nearly half of every padded batch is
   padding), then drifts to a second cluster mid-trace. The adaptive
   pool re-derives its bucket boundaries at the observed quantiles,
   pre-warms the hot signatures, and — in the autoscaled config — adds
   or drains replicas against SLO attainment. Padding waste and pool
   p99 must both improve on the static policy, with zero lost requests
   across the scale events. *)

let adaptive_serving ?json () =
  header "E17 (extension): adaptive serving — online rebucketing + autoscaling (bert, A10)";
  let module Pool = Serving.Pool in
  let module Bucket = Serving.Bucket in
  let entry = Suite.find "bert" in
  let qps = 2000.0 and n = 800 in
  let phase ~seed ~offset_us dist =
    Workloads.Queueing.generate_arrivals ~seed ~qps ~n ~dims:[ ("seq", dist) ]
    |> List.map (fun (r : Workloads.Queueing.request) ->
           { r with Workloads.Queueing.arrival_us = r.Workloads.Queueing.arrival_us +. offset_us })
  in
  (* phase 1: seq just above 64; phase 2 drifts to just above 32 — both
     round badly under Pow2 (to 128 and 64), well under observed edges *)
  let p1 = phase ~seed:17 ~offset_us:0.0 (Workloads.Trace.Uniform (65, 80)) in
  let span =
    2000.0
    +. List.fold_left
         (fun acc (r : Workloads.Queueing.request) ->
           Float.max acc r.Workloads.Queueing.arrival_us)
         0.0 p1
  in
  let p2 = phase ~seed:18 ~offset_us:span (Workloads.Trace.Uniform (33, 48)) in
  let reqs =
    Pool.of_arrivals (p1 @ p2)
    |> Pool.with_class_mix ~seed:17
         [ (Serving.Slo.Interactive, 0.25); (Serving.Slo.Standard, 0.5);
           (Serving.Slo.Best_effort, 0.25) ]
  in
  let bucket = [ ("seq", Bucket.Pow2) ] in
  let autoscale =
    { Serving.Autoscaler.default_config with
      Serving.Autoscaler.min_replicas = 2; max_replicas = 4; scale_up_queue = 2 }
  in
  let configs =
    [
      ("static-pow2", None);
      ("adaptive", Some { Pool.default_adaptive with Pool.autoscale = None });
      ("adaptive+scale", Some { Pool.default_adaptive with Pool.autoscale = Some autoscale });
    ]
  in
  Printf.printf "%-14s %8s %6s %6s %6s %7s %8s %9s %7s %7s %5s\n" "config" "served" "cold"
    "waste%" "util%" "p50(ms)" "p99(ms)" "rebucket" "scale+" "scale-" "lost";
  let rows = ref [] in
  let results =
    List.map
      (fun (cname, adaptive) ->
        let cfg =
          (* a cold signature costs a specialization compile + autotune in
             this regime, so the pad-vs-exact model genuinely pads — the
             bucket policy, not the exact-dispatch escape hatch, decides
             the executed shapes *)
          { (Pool.default_config
               ~devices:[ Gpusim.Device.a10; Gpusim.Device.a10 ]
               ~batch_dim:"batch" ~bucket)
            with Pool.cold_warmup_us = 20_000.0 }
        in
        let pool = Pool.create cfg (fun () -> entry.Suite.build ()) in
        let r = Pool.run ?adaptive pool reqs in
        let lats = Pool.completed_latencies r in
        let p50 = Pool.percentile lats 0.5 and p99 = Pool.percentile lats 0.99 in
        let ups, downs, rebuckets =
          match r.Pool.adaptive with
          | Some a -> (a.Pool.ar_scale_ups, a.Pool.ar_scale_downs, a.Pool.ar_rebuckets)
          | None -> (0, 0, 0)
        in
        let util =
          let busy =
            List.fold_left (fun acc rr -> acc +. rr.Pool.rr_busy_us) 0.0 r.Pool.replicas
          in
          busy /. (float_of_int (List.length r.Pool.replicas) *. r.Pool.makespan_us)
        in
        Printf.printf "%-14s %8d %6d %6.1f %6.1f %7.2f %8.2f %9d %7d %7d %5d\n" cname
          r.Pool.served r.Pool.cold_dispatches
          (100.0 *. Pool.padding_waste r) (100.0 *. util)
          (p50 /. 1000.0) (p99 /. 1000.0) rebuckets ups downs r.Pool.lost;
        (match r.Pool.adaptive with
        | Some a -> Printf.printf "  %s -> %s\n" cname a.Pool.ar_final_spec
        | None -> ());
        rows :=
          Obs.Json.Obj
            [
              ("config", Obs.Json.Str cname);
              ("served", Obs.Json.Int r.Pool.served);
              ("cold_dispatches", Obs.Json.Int r.Pool.cold_dispatches);
              ("padding_waste", Obs.Json.Float (Pool.padding_waste r));
              ("p50_us", Obs.Json.Float p50);
              ("p99_us", Obs.Json.Float p99);
              ("rebuckets", Obs.Json.Int rebuckets);
              ("scale_ups", Obs.Json.Int ups);
              ("scale_downs", Obs.Json.Int downs);
              ("lost", Obs.Json.Int r.Pool.lost);
              ( "final_spec",
                Obs.Json.Str
                  (match r.Pool.adaptive with Some a -> a.Pool.ar_final_spec | None -> "") );
            ]
          :: !rows;
        (cname, r, p99))
      configs
  in
  (match results with
  | (_, r_static, p99_static) :: adaptives ->
      List.iter
        (fun (cname, r_a, p99_a) ->
          let w_s = Pool.padding_waste r_static and w_a = Pool.padding_waste r_a in
          Printf.printf "%s vs static: waste %.1f%% -> %.1f%%, p99 %.2fms -> %.2fms%s\n"
            cname (100.0 *. w_s) (100.0 *. w_a) (p99_static /. 1000.0) (p99_a /. 1000.0)
            (if w_a < w_s && p99_a < p99_static then "" else "  (NO IMPROVEMENT)")
        )
        adaptives
  | [] -> ());
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E17-adaptive-serving");
            ("rows", Obs.Json.List (List.rev !rows));
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "adaptive numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E18 (extension): availability under chaos. One seeded scenario —
   a heavy straggler, a hard crash with recovery, and a traffic spike —
   replayed against the same pool twice: once with every resilience
   mechanism off (the pre-chaos pool's behaviour) and once with the
   full stack (watchdog, hedged re-dispatch, crash re-queue, replica
   recovery, brownout ladder). The resilient config must keep lost=0,
   complete >=99% of admitted traffic, and wind the brownout ladder
   back to level 0 before the trace ends; the baseline measurably
   degrades. The resilient config runs twice to pin bit-reproducibility:
   chaos is a pure function of (seed, scenario). *)

let chaos_serving ?json () =
  header "E18 (extension): chaos — availability under crash + straggler + spike (dien, A10)";
  let module Pool = Serving.Pool in
  let module Bucket = Serving.Bucket in
  let module Chaos = Serving.Chaos in
  let module Slo = Serving.Slo in
  let entry = Suite.find "dien" in
  let qps = 2400.0 and n = 900 in
  let reqs =
    Workloads.Queueing.generate_arrivals ~seed:29 ~qps ~n
      ~dims:[ ("hist", Workloads.Trace.Skewed (5, 100)) ]
    |> Pool.of_arrivals
    |> Pool.with_class_mix ~seed:29
         [ (Slo.Interactive, 0.25); (Slo.Standard, 0.5); (Slo.Best_effort, 0.25) ]
  in
  let first_fault_us = 40_000.0 in
  let scenario =
    {
      Chaos.seed = 7;
      events =
        [
          { Chaos.at_us = first_fault_us;
            event = Chaos.Straggle { replica = 1; factor = 10.0; duration_us = 250_000.0 } };
          { Chaos.at_us = 140_000.0;
            event = Chaos.Spike
                { duration_us = 40_000.0; requests = 700; dim = "hist"; lo = 5; hi = 100;
                  cls = Slo.Standard } };
          { Chaos.at_us = 155_000.0;
            event = Chaos.Crash { replica = 0; recover_after_us = Some 80_000.0; spinup_us = 5_000.0 } };
        ];
    }
  in
  Printf.printf "scenario: %s\n" (Chaos.scenario_to_string scenario);
  (* reconstruct the pool's merged (organic + spike) arrival order so
     per-request latencies can be attributed to SLO classes: the pool
     appends spike arrivals and stable-sorts by arrival time, and
     Chaos.spike_arrivals is a pure function of the scenario *)
  let merged_cls =
    let spike =
      Chaos.spike_arrivals scenario
      |> List.map (fun (at, dims, cls) -> { Pool.arrival_us = at; dims; cls })
    in
    List.sort
      (fun a b -> compare a.Pool.arrival_us b.Pool.arrival_us)
      (reqs @ spike)
    |> List.map (fun r -> r.Pool.cls)
    |> Array.of_list
  in
  let classes = [ Slo.Interactive; Slo.Standard; Slo.Best_effort ] in
  let class_p99 r cls =
    let lats = ref [] in
    Array.iteri
      (fun i l ->
        if i < Array.length merged_cls && merged_cls.(i) = cls && not (Float.is_nan l)
        then lats := l :: !lats)
      r.Pool.latencies_us;
    Pool.percentile (Array.of_list !lats) 0.99
  in
  let run_config resilience =
    let cfg =
      Pool.default_config
        ~devices:[ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ]
        ~batch_dim:"batch"
        ~bucket:[ ("hist", Bucket.Pow2) ]
    in
    let pool = Pool.create cfg (fun () -> entry.Suite.build ()) in
    Pool.run ~chaos:scenario ~resilience pool reqs
  in
  let configs =
    [
      ("no-resilience", Pool.no_resilience);
      ("redispatch", { Pool.no_resilience with Pool.redispatch = true; Pool.max_redispatch = 2 });
      ("no-brownout", { Pool.default_resilience with Pool.brownout = false });
      ("resilient", Pool.default_resilience);
    ]
  in
  Printf.printf "%-14s %8s %7s %7s %6s %5s %7s %8s %8s %8s %9s %4s\n" "config" "served%"
    "goodput" "failed" "exp" "lost" "crash" "p99-I" "p99-S" "p99-BE" "ttr(ms)" "bro";
  let rows = ref [] in
  let results =
    List.map
      (fun (cname, res) ->
        let r = run_config res in
        let xr = r.Pool.resilience in
        let total = Array.length r.Pool.dispositions in
        let admitted = total - r.Pool.rejected - r.Pool.shed in
        let completed = r.Pool.served + r.Pool.fell_back in
        let served_pct =
          if admitted = 0 then 0.0 else 100.0 *. float_of_int completed /. float_of_int admitted
        in
        let goodput = 1.0e6 *. float_of_int completed /. r.Pool.makespan_us in
        (* time-to-recover: first fault until the brownout ladder last
           returned to level 0 (0 when it never stepped up) *)
        let ttr_us =
          if xr.Pool.xr_last_level0_us > 0.0 then xr.Pool.xr_last_level0_us -. first_fault_us
          else 0.0
        in
        let p99s = List.map (fun cls -> (cls, class_p99 r cls)) classes in
        let p99 cls = List.assoc cls p99s in
        Printf.printf "%-14s %8.1f %7.1f %7d %6d %5d %7d %8.1f %8.1f %8.1f %9.1f %4d\n"
          cname served_pct goodput r.Pool.failed r.Pool.expired r.Pool.lost
          xr.Pool.xr_crashes
          (p99 Slo.Interactive /. 1000.0) (p99 Slo.Standard /. 1000.0)
          (p99 Slo.Best_effort /. 1000.0) (ttr_us /. 1000.0)
          xr.Pool.xr_brownout_final;
        Printf.printf "  %s\n"
          (String.concat "\n  "
             (String.split_on_char '\n' (Pool.resilience_summary_to_string xr)));
        rows :=
          Obs.Json.Obj
            [
              ("config", Obs.Json.Str cname);
              ("requests", Obs.Json.Int total);
              ("admitted", Obs.Json.Int admitted);
              ("completed", Obs.Json.Int completed);
              ("served_pct_of_admitted", Obs.Json.Float served_pct);
              ("goodput_rps", Obs.Json.Float goodput);
              ("served", Obs.Json.Int r.Pool.served);
              ("fell_back", Obs.Json.Int r.Pool.fell_back);
              ("failed", Obs.Json.Int r.Pool.failed);
              ("shed", Obs.Json.Int r.Pool.shed);
              ("expired", Obs.Json.Int r.Pool.expired);
              ("lost", Obs.Json.Int r.Pool.lost);
              ( "p99_us_by_class",
                Obs.Json.Obj
                  (List.map
                     (fun (cls, v) -> (Slo.cls_to_string cls, Obs.Json.Float v))
                     p99s) );
              ("time_to_recover_us", Obs.Json.Float ttr_us);
              ("crashes", Obs.Json.Int xr.Pool.xr_crashes);
              ("recoveries", Obs.Json.Int xr.Pool.xr_recoveries);
              ("redispatched", Obs.Json.Int xr.Pool.xr_redispatched);
              ("hedges", Obs.Json.Int xr.Pool.xr_hedges);
              ("hedge_wins", Obs.Json.Int xr.Pool.xr_hedge_wins);
              ("degraded_events", Obs.Json.Int xr.Pool.xr_degraded_events);
              ("brownout_transitions", Obs.Json.Int xr.Pool.xr_brownout_transitions);
              ("brownout_max", Obs.Json.Int xr.Pool.xr_brownout_max);
              ("brownout_final", Obs.Json.Int xr.Pool.xr_brownout_final);
              ("brownout_us", Obs.Json.Float xr.Pool.xr_brownout_us);
              ("spike_requests", Obs.Json.Int xr.Pool.xr_spike_requests);
            ]
          :: !rows;
        (cname, r, served_pct))
      configs
  in
  (* bit-reproducibility: the whole run is a pure function of (trace,
     scenario, seeds) — a second resilient run must produce identical
     per-request dispositions *)
  let r2 = run_config Pool.default_resilience in
  let r1 =
    match List.rev results with (_, r, _) :: _ -> r | [] -> assert false
  in
  let reproducible = r1.Pool.dispositions = r2.Pool.dispositions in
  Printf.printf
    "(p99 is over completed requests only: the baseline's crash victims are\n\
    \ Failed — excluded from its p99 — where resilient configs serve them, late;\n\
    \ availability is the served%% / failed columns, not the tail)\n";
  Printf.printf "reproducible: %b (two resilient runs, identical dispositions)\n" reproducible;
  (match (results, List.rev results) with
  | (_, rb, pb) :: _, (_, rr, pr) :: _ ->
      let ok =
        rr.Pool.lost = 0 && pr >= 99.0
        && rr.Pool.resilience.Pool.xr_brownout_final = 0
        && reproducible
        && pb < pr
      in
      Printf.printf
        "resilient vs baseline: served %.1f%% -> %.1f%%, failed %d -> %d%s\n" pb pr
        rb.Pool.failed rr.Pool.failed
        (if ok then "" else "  (ACCEPTANCE NOT MET)")
  | _ -> assert false);
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E18-chaos-serving");
            ("scenario", Chaos.to_json scenario);
            ("reproducible", Obs.Json.Bool reproducible);
            ("rows", Obs.Json.List (List.rev !rows));
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "chaos numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E19 (extension): request-level static batching vs token-level
   continuous batching on the GPT-2 decode workload. Same request
   stream, same 3-device fleet, both graphs compiled once into a shared
   cache per run. Static is the one-request-one-graph world this repo
   served before lib/decode: a batch keeps its members until the
   longest finishes (wasted slots) and arrivals wait behind whole
   batches (head-of-line TTFT). Continuous re-forms the decode batch
   between steps and splits prefill/decode across workers. Acceptance:
   continuous beats static on tokens/s AND p99 TTFT, lost=0, a rerun
   is bit-identical, and each graph compiled exactly once — never once
   per token. *)

let decode_serving ?json () =
  header "E19 (extension): continuous vs static batching — GPT-2 decode, 3x A10";
  let module S = Decode.Scheduler in
  let qps = 40.0 and n = 40 and seed = 7 in
  let reqs =
    S.gen_requests ~seed ~qps ~n
      ~prompt:(Workloads.Trace.Skewed (16, 256))
      ~max_new:(Workloads.Trace.Uniform (16, 96))
  in
  let devices = [ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ] in
  let run mode =
    let cfg = { (S.default_config ~devices) with S.mode } in
    S.run ~prefill:Models.Gpt2.build ~decode:Models.Gpt2.build_decode cfg reqs
  in
  Printf.printf "workload: %d sequences at %.0f qps, prompts skewed 16..256, 16..96 new tokens\n"
    n qps;
  Printf.printf "%-12s %9s %9s %9s %9s %6s %7s %5s %5s %5s\n" "mode" "tokens/s"
    "p99TTFT" "p99TPOT" "meanBatch" "waste" "sigs" "warm%" "lost" "compiles";
  let rows = ref [] in
  let show (r : S.report) =
    Printf.printf "%-12s %9.1f %8.1fms %8.1fms %9.2f %5.1f%% %7d %5.0f %5d %8d\n"
      (S.mode_to_string r.S.mode) r.S.tokens_per_s (r.S.ttft_p99_us /. 1000.0)
      (r.S.tpot_p99_us /. 1000.0) r.S.mean_decode_batch
      (100.0 *. r.S.decode_slot_waste) r.S.signatures (100.0 *. r.S.warm_rate)
      r.S.lost r.S.cache.Disc.Compile_cache.misses;
    rows :=
      Obs.Json.Obj
        [
          ("mode", Obs.Json.Str (S.mode_to_string r.S.mode));
          ("sequences", Obs.Json.Int r.S.sequences);
          ("finished", Obs.Json.Int r.S.finished);
          ("lost", Obs.Json.Int r.S.lost);
          ("tokens", Obs.Json.Int r.S.tokens);
          ("tokens_per_s", Obs.Json.Float r.S.tokens_per_s);
          ("makespan_us", Obs.Json.Float r.S.makespan_us);
          ("ttft_p50_us", Obs.Json.Float r.S.ttft_p50_us);
          ("ttft_p99_us", Obs.Json.Float r.S.ttft_p99_us);
          ("tpot_p50_us", Obs.Json.Float r.S.tpot_p50_us);
          ("tpot_p99_us", Obs.Json.Float r.S.tpot_p99_us);
          ("ttft_ok", Obs.Json.Int r.S.ttft_ok);
          ("tpot_ok", Obs.Json.Int r.S.tpot_ok);
          ("prefill_batches", Obs.Json.Int r.S.prefill_batches);
          ("decode_steps", Obs.Json.Int r.S.decode_steps);
          ("mean_decode_batch", Obs.Json.Float r.S.mean_decode_batch);
          ("decode_slot_waste", Obs.Json.Float r.S.decode_slot_waste);
          ("signatures", Obs.Json.Int r.S.signatures);
          ("warm_rate", Obs.Json.Float r.S.warm_rate);
          ("compiles", Obs.Json.Int r.S.cache.Disc.Compile_cache.misses);
          ("cache_hits", Obs.Json.Int r.S.cache.Disc.Compile_cache.hits);
        ]
      :: !rows
  in
  let st = run S.Static in
  show st;
  let ct = run S.Continuous in
  show ct;
  let ct2 = run S.Continuous in
  let reproducible = S.digest ct = S.digest ct2 in
  Printf.printf "reproducible: %b (two continuous runs, identical token schedules)\n"
    reproducible;
  let compiles_once =
    ct.S.cache.Disc.Compile_cache.misses = 2 && st.S.cache.Disc.Compile_cache.misses = 2
  in
  Printf.printf "compiled once per graph (2 graphs, shared cache): %b\n" compiles_once;
  let ok =
    ct.S.tokens_per_s > st.S.tokens_per_s
    && ct.S.ttft_p99_us < st.S.ttft_p99_us
    && ct.S.lost = 0 && st.S.lost = 0
    && ct.S.finished = n && st.S.finished = n
    && reproducible && compiles_once
  in
  Printf.printf
    "continuous vs static: tokens/s %.1f -> %.1f (%.2fx), p99 TTFT %.1fms -> %.1fms%s\n"
    st.S.tokens_per_s ct.S.tokens_per_s
    (ct.S.tokens_per_s /. st.S.tokens_per_s)
    (st.S.ttft_p99_us /. 1000.0)
    (ct.S.ttft_p99_us /. 1000.0)
    (if ok then "" else "  (ACCEPTANCE NOT MET)");
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E19-decode-serving");
            ("qps", Obs.Json.Float qps);
            ("sequences", Obs.Json.Int n);
            ("seed", Obs.Json.Int seed);
            ("reproducible", Obs.Json.Bool reproducible);
            ("compiles_once_per_graph", Obs.Json.Bool compiles_once);
            ("rows", Obs.Json.List (List.rev !rows));
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "decode numbers -> %s\n" path

(* ----------------------------------------------------------------------
   Bechamel microbenchmarks of the compiler itself. *)

let micro () =
  header "micro: Bechamel benchmarks of compiler phases (wall clock, this host)";
  let open Bechamel in
  let build_test =
    Test.make ~name:"build_bert_graph" (Staged.stage (fun () -> ignore (Models.Bert.build ())))
  in
  let passes_test =
    Test.make ~name:"graph_passes_bert"
      (Staged.stage (fun () ->
           let b = Models.Bert.build () in
           ignore (Ir.Passes.run_all b.Common.graph)))
  in
  let fusion_test =
    Test.make ~name:"fusion_planning_bert"
      (Staged.stage
         (let b = Models.Bert.build () in
          ignore (Ir.Passes.run_all b.Common.graph);
          fun () -> ignore (Planner.plan b.Common.graph)))
  in
  let simulate_test =
    Test.make ~name:"simulate_bert_one_shape"
      (Staged.stage
         (let b = Models.Bert.build () in
          ignore (Ir.Passes.run_all b.Common.graph);
          let plan = Planner.plan b.Common.graph in
          let exe = Runtime.Executable.compile b.Common.graph plan in
          fun () ->
            ignore
              (Runtime.Executable.simulate exe
                 (Common.binding_for b [ ("batch", 4); ("seq", 73) ]))))
  in
  let products_test =
    Test.make ~name:"product_equality_query"
      (Staged.stage
         (let tab = Symshape.Table.create () in
          let b = Symshape.Table.fresh tab and s = Symshape.Table.fresh tab in
          let m = Symshape.Table.fresh tab in
          Symshape.Table.record_product_equal tab [| b; s |] [| m |];
          fun () ->
            ignore
              (Symshape.Table.products_equal tab
                 [| b; s; Symshape.Sym.Static 768 |]
                 [| m; Symshape.Sym.Static 768 |])))
  in
  let clone_test =
    Test.make ~name:"clone_bert_graph"
      (Staged.stage
         (let b = Models.Bert.build () in
          fun () -> ignore (Ir.Clone.clone b.Common.graph)))
  in
  let memplan_test =
    Test.make ~name:"memplan_bert_one_shape"
      (Staged.stage
         (let b = Models.Bert.build () in
          ignore (Ir.Passes.run_all b.Common.graph);
          let plan = Planner.plan b.Common.graph in
          let exe = Runtime.Executable.compile b.Common.graph plan in
          fun () ->
            ignore
              (Runtime.Memplan.plan exe (Common.binding_for b [ ("batch", 4); ("seq", 73) ]))))
  in
  let parse_test =
    Test.make ~name:"parse_softmax_mlp"
      (Staged.stage
         (let b = Models.Dien.build ~config:Models.Dien.tiny () in
          let text = Ir.Printer.to_string ~with_symbols:true b.Common.graph in
          fun () -> ignore (Ir.Parser.parse text)))
  in
  let tests =
    [
      build_test; passes_test; fusion_test; simulate_test; products_test; clone_test;
      memplan_test; parse_test;
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ]) in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
        | _ -> Printf.printf "%-32s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* ----------------------------------------------------------------------
   E20 (extension): million-request scale harness. One frozen trace
   (Trace_gen.mixed: diurnal + bursts + shape drift, seed 42) through a
   4x A10 pool, measuring what the hot-path de-allocation work bought:
   sustained RPS, allocation rate (Gc.allocated_bytes per request), and
   the completed-latency tail — then proving the run is sound (every
   Audit invariant, lost = 0) and bit-reproducible (a second pool over
   the same trace yields identical dispositions and latencies). The
   pre-refactor pool on this exact trace allocated 23,159 B/request at
   34,038 RPS (n = 10^6); acceptance pins a >= 2x allocation reduction
   against that, alongside the invariants. *)

let scale_pre_refactor_bytes_per_request = 23159.0
let scale_pre_refactor_rps = 34038.0

let scale ?json ?(requests = 1_000_000) () =
  header
    (Printf.sprintf "E20 (extension): scale harness — %d requests, 4x A10" requests);
  let module Pool = Serving.Pool in
  let module Bucket = Serving.Bucket in
  let module Trace_gen = Serving.Trace_gen in
  let module Audit = Serving.Audit in
  let entry = Models.Suite.find "dien" in
  let spec =
    Trace_gen.mixed ~seed:42 ~qps:4000.0
      ~dims_a:[ ("hist", Workloads.Trace.Skewed (5, 100)) ]
      ~dims_b:[ ("hist", Workloads.Trace.Bimodal (8, 96)) ]
      ()
  in
  Printf.printf "trace: %s\n%!" (Trace_gen.describe spec);
  let reqs = Trace_gen.generate spec ~n:requests in
  let bucket = [ ("hist", Bucket.Pow2) ] in
  let cfg =
    {
      (Pool.default_config
         ~devices:
           [ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ]
         ~batch_dim:"batch" ~bucket)
      with
      Pool.max_batch = 16;
    }
  in
  let build () = entry.Models.Suite.build_tiny () in
  let pool = Pool.create cfg build in
  let b0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = Pool.run pool reqs in
  let wall = Unix.gettimeofday () -. t0 in
  let bytes_per_req = (Gc.allocated_bytes () -. b0) /. float_of_int requests in
  let rps = float_of_int requests /. wall in
  (* a fresh pool over the same trace: the whole run is a pure function
     of (trace, seeds), so dispositions and latencies must be identical *)
  let r2 = Pool.run (Pool.create cfg build) reqs in
  let reproducible =
    r.Pool.dispositions = r2.Pool.dispositions
    && Array.for_all2
         (fun a b -> (Float.is_nan a && Float.is_nan b) || a = b)
         r.Pool.latencies_us r2.Pool.latencies_us
  in
  let violations = Audit.check r @ Audit.check r2 in
  let lats = Pool.completed_latencies r in
  let p50 = Pool.percentile lats 0.5
  and p99 = Pool.percentile lats 0.99
  and p999 = Pool.percentile lats 0.999 in
  let reduction = scale_pre_refactor_bytes_per_request /. bytes_per_req in
  Printf.printf "n=%d wall=%.2fs sustained=%.0f req/s alloc=%.0f B/req\n" requests wall
    rps bytes_per_req;
  Printf.printf "latency (completed): p50=%.0fus p99=%.0fus p99.9=%.0fus\n" p50 p99 p999;
  Printf.printf "padding waste %.1f%%  mean batch %.2f  peak queued %d  batches %d\n"
    (100.0 *. Pool.padding_waste r)
    r.Pool.mean_batch r.Pool.peak_queued r.Pool.batches;
  Printf.printf
    "served=%d fell_back=%d shed=%d expired=%d rejected=%d failed=%d lost=%d\n"
    r.Pool.served r.Pool.fell_back r.Pool.shed r.Pool.expired r.Pool.rejected
    r.Pool.failed r.Pool.lost;
  Printf.printf "%s\n" (Audit.to_string violations);
  Printf.printf "reproducible: %b (two pools, identical dispositions and latencies)\n"
    reproducible;
  let ok =
    violations = [] && reproducible && r.Pool.lost = 0 && reduction >= 2.0
  in
  Printf.printf
    "allocation: %.0f B/req vs %.0f pre-refactor = %.1fx reduction (gate: >= 2x)%s\n"
    bytes_per_req scale_pre_refactor_bytes_per_request reduction
    (if ok then "" else "  (ACCEPTANCE NOT MET)");
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E20-scale");
            ("trace", Obs.Json.Str (Trace_gen.describe spec));
            ("requests", Obs.Json.Int requests);
            ("wall_s", Obs.Json.Float wall);
            ("sustained_rps", Obs.Json.Float rps);
            ("bytes_per_request", Obs.Json.Float bytes_per_req);
            ( "pre_refactor_bytes_per_request",
              Obs.Json.Float scale_pre_refactor_bytes_per_request );
            ("pre_refactor_rps", Obs.Json.Float scale_pre_refactor_rps);
            ("allocation_reduction_x", Obs.Json.Float reduction);
            ("p50_us", Obs.Json.Float p50);
            ("p99_us", Obs.Json.Float p99);
            ("p999_us", Obs.Json.Float p999);
            ("padding_waste", Obs.Json.Float (Pool.padding_waste r));
            ("mean_batch", Obs.Json.Float r.Pool.mean_batch);
            ("peak_queued", Obs.Json.Int r.Pool.peak_queued);
            ("served", Obs.Json.Int r.Pool.served);
            ("fell_back", Obs.Json.Int r.Pool.fell_back);
            ("shed", Obs.Json.Int r.Pool.shed);
            ("expired", Obs.Json.Int r.Pool.expired);
            ("rejected", Obs.Json.Int r.Pool.rejected);
            ("failed", Obs.Json.Int r.Pool.failed);
            ("lost", Obs.Json.Int r.Pool.lost);
            ("audit_ok", Obs.Json.Bool (violations = []));
            ("reproducible", Obs.Json.Bool reproducible);
            ("acceptance", Obs.Json.Bool ok);
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "scale numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E20b (extension): the scale harness pointed at decode serving. The
   same frozen Trace_gen traffic (diurnal + bursts + drift, seed 42)
   adapted into prompt/generation lengths and driven through the
   token-level continuous-batching scheduler on a 4x A10 fleet; the
   token-level report must pass every Decode.Audit invariant, lose
   nothing, and be bit-identical on a rerun. *)

let scale_decode ?json ?(requests = 100_000) () =
  header
    (Printf.sprintf "E20b (extension): scale harness, decode serving — %d sequences, 4x A10"
       requests);
  let module S = Decode.Scheduler in
  let module Trace_gen = Serving.Trace_gen in
  let prefill () = Models.Gpt2.build ~config:Models.Gpt2.tiny () in
  let decode () = Models.Gpt2.build_decode ~config:Models.Gpt2.tiny () in
  let seq_ub = S.dim_bound (prefill ()) "seq" in
  let cache_ub = S.dim_bound (decode ()) "cache" in
  let spec =
    Trace_gen.mixed ~seed:42 ~qps:4000.0
      ~dims_a:
        [ ("prompt", Workloads.Trace.Skewed (4, 16)); ("new", Workloads.Trace.Uniform (4, 12)) ]
      ~dims_b:
        [ ("prompt", Workloads.Trace.Bimodal (4, 16)); ("new", Workloads.Trace.Uniform (2, 8)) ]
      ()
  in
  Printf.printf "trace: %s\n%!" (Trace_gen.describe spec);
  let reqs = S.of_pool_requests ~seq_ub ~cache_ub (Trace_gen.generate spec ~n:requests) in
  let cfg =
    {
      (S.default_config
         ~devices:
           [ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ])
      with
      S.cache_scheme = Serving.Bucket.Linear 8;
    }
  in
  let b0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = S.run ~prefill ~decode cfg reqs in
  let wall = Unix.gettimeofday () -. t0 in
  let bytes_per_seq = (Gc.allocated_bytes () -. b0) /. float_of_int requests in
  let audit = Decode.Audit.check r in
  let r2 = S.run ~prefill ~decode cfg reqs in
  let reproducible = S.digest r = S.digest r2 in
  Printf.printf "n=%d wall=%.2fs sustained=%.0f seq/s alloc=%.0f B/seq\n" requests wall
    (float_of_int requests /. wall)
    bytes_per_seq;
  String.split_on_char '\n' (S.report_to_string r) |> List.iter (Printf.printf "%s\n");
  Printf.printf "%s\n" (Decode.Audit.to_string audit);
  Printf.printf "reproducible: %b (two runs, identical token schedules)\n" reproducible;
  let ok =
    audit = Ok () && reproducible && r.S.lost = 0 && r.S.finished = requests
  in
  Printf.printf "finished=%d/%d lost=%d tokens/s=%.0f%s\n" r.S.finished requests r.S.lost
    r.S.tokens_per_s
    (if ok then "" else "  (ACCEPTANCE NOT MET)");
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E20b-scale-decode");
            ("trace", Obs.Json.Str (Trace_gen.describe spec));
            ("sequences", Obs.Json.Int requests);
            ("wall_s", Obs.Json.Float wall);
            ("bytes_per_sequence", Obs.Json.Float bytes_per_seq);
            ("finished", Obs.Json.Int r.S.finished);
            ("lost", Obs.Json.Int r.S.lost);
            ("tokens", Obs.Json.Int r.S.tokens);
            ("tokens_per_s", Obs.Json.Float r.S.tokens_per_s);
            ("ttft_p99_us", Obs.Json.Float r.S.ttft_p99_us);
            ("tpot_p99_us", Obs.Json.Float r.S.tpot_p99_us);
            ("signatures", Obs.Json.Int r.S.signatures);
            ("warm_rate", Obs.Json.Float r.S.warm_rate);
            ("audit_ok", Obs.Json.Bool (audit = Ok ()));
            ("reproducible", Obs.Json.Bool reproducible);
            ("acceptance", Obs.Json.Bool ok);
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "scale-decode numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E21 (extension): the symbolic-shape memory planner end to end.
   Three panels:

   1. reduction — per suite model, the best symbolic-peak cut the
      reducers (re-scheduling, recomputation, regrouping) find across
      the model's bench grid, decided at Pow2 rung ceilings; every
      reduced plan must pass Memplan.validate. Acceptance wants
      >= 15 % on >= 2 models.
   2. soundness — a seeded random soak of the estimator contract
      (bound exact at its binding, allocator floor, rung monotonicity);
      acceptance wants 0 violations over >= 300 cases.
   3. serving — the same adversarial shape mix through an HBM-budgeted
      pool twice: memory-aware (admission gate shrinks or re-plans
      over-budget batches) vs memory-blind (dispatches anyway). The
      budget is derived from a generous probe run (60 % of the largest
      batch estimate), so the mix is guaranteed to stress it.
      Acceptance: aware finishes oom=0 lost=0 while blind OOMs, and a
      repeated aware run is bit-identical. *)

let hbm_serving ?json () =
  header "E21 (extension): symbolic memory planner — reduction, soundness, HBM serving";
  let module Pool = Serving.Pool in
  let module Bucket = Serving.Bucket in
  let module Estimate = Mem.Estimate in
  let module Reduce = Mem.Reduce in
  let module Memplan = Runtime.Memplan in
  let ceil_env env = List.map (fun (k, v) -> (k, Bucket.round_up Bucket.Pow2 v)) env in
  (* -- panel 1: symbolic peak reduction across the suite -- *)
  Printf.printf "\n-- symbolic peak reduction (decided at Pow2 rung ceilings) --\n";
  Printf.printf "%-11s %-26s %12s %12s %8s\n" "model" "best rung" "before(MB)"
    "after(MB)" "cut";
  let reduction_rows = ref [] in
  let models_over_bar = ref 0 in
  List.iter
    (fun entry ->
      match entry.Suite.bench_dims with
      | [] -> ()
      | grid ->
          let built = entry.Suite.build () in
          ignore (Ir.Passes.run_all built.Common.graph);
          let exe = Runtime.Executable.compile built.Common.graph (Planner.plan built.Common.graph) in
          let est = Estimate.of_executable exe in
          let best = ref None in
          List.iter
            (fun env ->
              let cenv = ceil_env env in
              let d = Reduce.decide ~env:cenv est (Common.binding_for built cenv) in
              assert (Memplan.validate (Reduce.plan est d (Common.binding_for built cenv)));
              match !best with
              | Some (_, b) when Reduce.savings_pct b >= Reduce.savings_pct d -> ()
              | _ -> best := Some (cenv, d))
            grid;
          let cenv, d = Option.get !best in
          let cut = Reduce.savings_pct d in
          if cut >= 15.0 then incr models_over_bar;
          Printf.printf "%-11s %-26s %12.2f %12.2f %7.1f%%\n" entry.Suite.name
            (env_to_string cenv)
            (float_of_int d.Reduce.peak_before /. 1e6)
            (float_of_int d.Reduce.peak_after /. 1e6)
            cut;
          reduction_rows :=
            Obs.Json.Obj
              [
                ("model", Obs.Json.Str entry.Suite.name);
                ("rung", Obs.Json.Str (env_to_string cenv));
                ("peak_before_bytes", Obs.Json.Int d.Reduce.peak_before);
                ("peak_after_bytes", Obs.Json.Int d.Reduce.peak_after);
                ("cut_pct", Obs.Json.Float cut);
              ]
            :: !reduction_rows)
    Suite.all;
  (* -- panel 2: seeded estimator soundness soak -- *)
  let soak_cases = 400 in
  let rng = Random.State.make [| 0xB1ADE; 21 |] in
  let violations = ref 0 in
  let soaked = ref 0 in
  List.iter
    (fun entry ->
      match entry.Suite.bench_dims with
      | [] -> ()
      | first :: _ as grid ->
          let built = entry.Suite.build () in
          ignore (Ir.Passes.run_all built.Common.graph);
          let exe = Runtime.Executable.compile built.Common.graph (Planner.plan built.Common.graph) in
          let est = Estimate.of_executable exe in
          let keys = List.map fst first in
          let maxes =
            List.map
              (fun k ->
                (k, List.fold_left (fun a env -> max a (List.assoc k env)) 1 grid))
              keys
          in
          for _ = 1 to soak_cases / List.length Suite.all do
            incr soaked;
            let env = List.map (fun (k, m) -> (k, 1 + Random.State.int rng m)) maxes in
            let bnd = Common.binding_for built env in
            let cbnd = Common.binding_for built (ceil_env env) in
            let arena = (Memplan.plan exe bnd).Memplan.arena_bytes in
            match
              ( Estimate.arena_bound est bnd,
                Estimate.live_peak_bytes est bnd,
                Estimate.live_peak_bytes est cbnd )
            with
            | Some bound, Some lp, Some clp ->
                if bound < arena || arena < lp || clp < lp then incr violations
            | _ -> incr violations
          done)
    Suite.all;
  Printf.printf "\nestimator soundness: %d random cases, %d violations\n" !soaked
    !violations;
  (* -- panel 3: HBM-budgeted serving, aware vs blind -- *)
  let bucket = [ ("hist", Bucket.Pow2) ] in
  let base =
    Pool.default_config
      ~devices:[ Gpusim.Device.a10; Gpusim.Device.a10 ]
      ~batch_dim:"batch" ~bucket
  in
  let build () = Suite.(find "dien").Suite.build () in
  let hists = [| 8; 200; 64; 256; 16; 240; 32; 192 |] in
  let reqs =
    List.init 2000 (fun i ->
        {
          Pool.arrival_us = 250.0 *. float_of_int i;
          Pool.dims = [ ("hist", hists.(i mod 8)) ];
          Pool.cls = Serving.Slo.Standard;
        })
  in
  let run ~aware budget =
    let cfg = { base with Pool.hbm_budget = Some budget; Pool.mem_aware = aware } in
    Pool.run (Pool.create cfg build) reqs
  in
  let probe = run ~aware:true 1_000_000_000 in
  let probe_mem = Option.get probe.Pool.mem in
  let batch_peak = probe_mem.Pool.mr_est_peak_bytes in
  (* the largest single-request estimate (resident weights + a one-row
     arena): the budget must clear it, or every request is structurally
     unservable — the constraint squeezes batches, not singles *)
  let single_peak =
    let built = build () in
    ignore (Ir.Passes.run_all built.Common.graph);
    let exe = Runtime.Executable.compile built.Common.graph (Planner.plan built.Common.graph) in
    let est = Estimate.of_executable exe in
    Array.fold_left
      (fun acc h ->
        let cenv = [ ("batch", 1); ("hist", Bucket.round_up Bucket.Pow2 h) ] in
        match Estimate.peak_bound est (Common.binding_for built cenv) with
        | Some p -> max acc p
        | None -> acc)
      0 hists
  in
  let budget = single_peak + ((batch_peak - single_peak) * 2 / 5) in
  Printf.printf
    "\nadversarial mix: %d requests, hist in {%s}; unconstrained batch peak %.1fMB, \
     largest single %.1fMB\n"
    (List.length reqs)
    (String.concat "," (Array.to_list (Array.map string_of_int hists)))
    (float_of_int batch_peak /. 1e6)
    (float_of_int single_peak /. 1e6);
  Printf.printf "HBM budget: %.1fMB per replica (single + 40%% of the batch headroom)\n"
    (float_of_int budget /. 1e6);
  let aware = run ~aware:true budget in
  let blind = run ~aware:false budget in
  let aware2 = run ~aware:true budget in
  let am = Option.get aware.Pool.mem and bm = Option.get blind.Pool.mem in
  Printf.printf "\nmemory-aware: %s\n              %s\n"
    (Pool.report_to_string aware)
    (Pool.mem_summary_to_string am);
  Printf.printf "memory-blind: %s\n              %s\n"
    (Pool.report_to_string blind)
    (Pool.mem_summary_to_string bm);
  let identical =
    Pool.report_to_string aware = Pool.report_to_string aware2
    && Pool.mem_summary_to_string am
       = Pool.mem_summary_to_string (Option.get aware2.Pool.mem)
  in
  Printf.printf "reproducible: %b (two aware pools, identical reports)\n" identical;
  let ok =
    !violations = 0 && !soaked >= 300 && !models_over_bar >= 2
    && am.Pool.mr_oom = 0 && aware.Pool.lost = 0 && aware.Pool.failed = 0
    && aware.Pool.rejected = 0 && aware.Pool.served > 0
    && bm.Pool.mr_oom > 0 && identical
  in
  Printf.printf
    "acceptance: aware oom=%d lost=%d failed=%d | blind oom=%d | cuts>=15%%: %d \
     models | soak %d/%d clean%s\n"
    am.Pool.mr_oom aware.Pool.lost aware.Pool.failed bm.Pool.mr_oom
    !models_over_bar !soaked !soaked
    (if ok then "" else "  (ACCEPTANCE NOT MET)");
  match json with
  | None -> ()
  | Some path ->
      let mem_json m =
        Obs.Json.Obj
          [
            ("budget_bytes", Obs.Json.Int m.Pool.mr_budget_bytes);
            ("est_peak_bytes", Obs.Json.Int m.Pool.mr_est_peak_bytes);
            ("capped", Obs.Json.Int m.Pool.mr_capped);
            ("forced_exact", Obs.Json.Int m.Pool.mr_forced_exact);
            ("rejected", Obs.Json.Int m.Pool.mr_rejected);
            ("oom", Obs.Json.Int m.Pool.mr_oom);
            ("pressure_ticks", Obs.Json.Int m.Pool.mr_pressure_ticks);
          ]
      in
      let disposition_json r =
        Obs.Json.Obj
          [
            ("served", Obs.Json.Int r.Pool.served);
            ("shed", Obs.Json.Int r.Pool.shed);
            ("rejected", Obs.Json.Int r.Pool.rejected);
            ("failed", Obs.Json.Int r.Pool.failed);
            ("lost", Obs.Json.Int r.Pool.lost);
          ]
      in
      Obs.Json.write_file path
        (Obs.Json.Obj
           [
             ("experiment", Obs.Json.Str "E21-hbm");
             ("reduction", Obs.Json.List (List.rev !reduction_rows));
             ("soak_cases", Obs.Json.Int !soaked);
             ("soak_violations", Obs.Json.Int !violations);
             ("budget_bytes", Obs.Json.Int budget);
             ("aware", disposition_json aware);
             ("aware_mem", mem_json am);
             ("blind", disposition_json blind);
             ("blind_mem", mem_json bm);
             ("reproducible", Obs.Json.Bool identical);
             ("acceptance", Obs.Json.Bool ok);
           ]);
      Printf.printf "hbm numbers -> %s\n" path

(* ----------------------------------------------------------------------
   E22 (extension): hardware-aware schedule autotuning. For every suite
   model on A10 and T4: serve the model's bench grid with the default
   speculative version set, tune (sample-free — hierarchical device
   pruning + analytical cost ranking at the same grid), serve again,
   and compare fused-kernel time per rung. Three gates:

   1. speedup — geomean kernel-time improvement >= 10% on >= 3 suite
      models on A10 (the T4 column shows the plans are device-specific,
      not gated);
   2. legality — every version of every emitted plan passes
      Tune.Space.validate against its kernel's device constraints;
   3. determinism — a re-tune through a fresh cache yields a
      byte-identical plan (digest equality) for every model. *)

let fused_us (p : Profile.t) =
  List.fold_left
    (fun acc (r : Profile.kernel_record) ->
      if r.Profile.kind = "library" || r.Profile.kind = "interp" then acc
      else acc +. r.Profile.time_us)
    0.0 p.Profile.records

let tune_experiment ?json () =
  header "E22 (extension): schedule autotuner — tuned vs default speculative set";
  let module Plan = Tune.Plan in
  let module Executable = Runtime.Executable in
  let geomean = function
    | [] -> 1.0
    | xs -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
  in
  let illegal_total = ref 0 in
  let unstable = ref [] in
  let rows = ref [] in
  let a10_gains = ref [] in
  Printf.printf "%-11s %-5s %10s %10s %9s %8s %7s %s\n" "model" "dev" "default_us"
    "tuned_us" "geomean" "kernels" "illegal" "digest";
  List.iter
    (fun device ->
      List.iter
        (fun entry ->
          let build () = entry.Suite.build () in
          let envs = entry.Suite.bench_dims in
          let serve_us session env =
            match Disc.Session.serve_result session env with
            | Ok (p, _) -> fused_us p
            | Error e -> failwith (Runtime.Error.to_string e)
          in
          let session =
            Disc.Session.create ~device ~cache:(Disc.Compile_cache.create ()) (build ())
          in
          let default_us = List.map (serve_us session) envs in
          let plan, _ = Disc.Session.tune session ~envs in
          let tuned_us = List.map (serve_us session) envs in
          let ratios = List.map2 (fun d t -> if t > 0.0 then d /. t else 1.0) default_us tuned_us in
          let gm = geomean ratios in
          (* gate 2: every emitted version re-validates against the
             device profile of the kernel it was minted for *)
          let c = Disc.Compiler.compile (build ()).Common.graph in
          let illegal = ref 0 in
          List.iter
            (fun item ->
              match item with
              | Executable.Fused k -> (
                  match Plan.find plan k.Kernel.name with
                  | Some e ->
                      List.iter
                        (fun v ->
                          if
                            not
                              (Tune.Space.validate device ~has_reduce:k.Kernel.has_reduce
                                 ~kind:k.Kernel.cluster.Cluster.kind v)
                          then incr illegal)
                        e.Plan.versions
                  | None -> ())
              | Executable.Lib _ -> ())
            c.Disc.Compiler.exe.Executable.items;
          illegal_total := !illegal_total + !illegal;
          (* gate 3: fresh cache, fresh session — byte-identical plan *)
          let session' =
            Disc.Session.create ~device ~cache:(Disc.Compile_cache.create ()) (build ())
          in
          let plan', _ = Disc.Session.tune session' ~envs in
          let stable = Plan.digest plan = Plan.digest plan' in
          if not stable then
            unstable := (entry.Suite.name, device.Gpusim.Device.name) :: !unstable;
          if device.Gpusim.Device.name = "A10" then a10_gains := gm :: !a10_gains;
          let dsum = List.fold_left ( +. ) 0.0 default_us in
          let tsum = List.fold_left ( +. ) 0.0 tuned_us in
          Printf.printf "%-11s %-5s %10.1f %10.1f %8.2fx %8d %7d %s\n" entry.Suite.name
            device.Gpusim.Device.name dsum tsum gm (Plan.kernels_tuned plan) !illegal
            (if stable then "stable" else "UNSTABLE");
          rows :=
            Obs.Json.Obj
              [
                ("model", Obs.Json.Str entry.Suite.name);
                ("device", Obs.Json.Str device.Gpusim.Device.name);
                ("default_us", Obs.Json.Float dsum);
                ("tuned_us", Obs.Json.Float tsum);
                ("geomean_improvement_x", Obs.Json.Float gm);
                ("kernels_tuned", Obs.Json.Int (Plan.kernels_tuned plan));
                ("illegal_versions", Obs.Json.Int !illegal);
                ("digest", Obs.Json.Str (Plan.digest plan));
                ("digest_stable", Obs.Json.Bool stable);
              ]
            :: !rows)
        Suite.all)
    devices;
  let winners = List.length (List.filter (fun g -> g >= 1.10) !a10_gains) in
  let ok = winners >= 3 && !illegal_total = 0 && !unstable = [] in
  Printf.printf
    "A10 models with >= 10%% geomean kernel-time improvement: %d/%d (gate: >= 3); \
     illegal schedules: %d (gate: 0); unstable digests: %d (gate: 0)%s\n"
    winners (List.length !a10_gains) !illegal_total (List.length !unstable)
    (if ok then "" else "  (ACCEPTANCE NOT MET)");
  match json with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Obj
          [
            ("experiment", Obs.Json.Str "E22-tune");
            ("a10_winners", Obs.Json.Int winners);
            ("illegal_schedules", Obs.Json.Int !illegal_total);
            ("unstable_digests", Obs.Json.Int (List.length !unstable));
            ("acceptance", Obs.Json.Bool ok);
            ("rows", Obs.Json.List (List.rev !rows));
          ]
      in
      Obs.Json.write_file path doc;
      Printf.printf "tune numbers -> %s\n" path

(* ---------------------------------------------------------------------- *)

let all ?json () =
  e2e ?json ();
  suite ();
  sweep ();
  fusion_ablation ();
  speculation_ablation ();
  compile_time ();
  memory ();
  constraints ();
  mixed_precision ();
  horizontal_ablation ();
  cpu ();
  serving ();
  specialization ();
  resilience ();
  cache_experiment ();
  pool_serving ();
  adaptive_serving ();
  chaos_serving ();
  decode_serving ();
  hbm_serving ();
  tune_experiment ()

let () =
  (* main.exe [--] [EXPERIMENT] [--json OUT.json] [--trace OUT.json]
     --json: write E1 headline numbers machine-readably (e2e / all)
     --trace: arm the observability layer and dump a Chrome trace of
       every compile phase and kernel launch the experiments simulate *)
  let rec parse_args cmd json trace requests dec = function
    | [] -> (cmd, json, trace, requests, dec)
    | "--" :: rest -> parse_args cmd json trace requests dec rest
    | "--json" :: path :: rest -> parse_args cmd (Some path) trace requests dec rest
    | "--trace" :: path :: rest -> parse_args cmd json (Some path) requests dec rest
    | "--requests" :: n :: rest ->
        parse_args cmd json trace (Some (int_of_string n)) dec rest
    | "--decode" :: rest -> parse_args cmd json trace requests true rest
    | a :: rest -> parse_args (Some a) json trace requests dec rest
  in
  let cmd, json, trace, requests, dec =
    parse_args None None None None false (List.tl (Array.to_list Sys.argv))
  in
  let cmd = Option.value cmd ~default:"all" in
  if trace <> None then Obs.Scope.enable ();
  (match cmd with
  | "e2e" -> e2e ?json ()
  | "suite" -> suite ()
  | "sweep" -> sweep ()
  | "fusion_ablation" -> fusion_ablation ()
  | "speculation_ablation" -> speculation_ablation ()
  | "compile_time" -> compile_time ()
  | "memory" -> memory ()
  | "constraints" -> constraints ()
  | "mixed_precision" -> mixed_precision ()
  | "horizontal" -> horizontal_ablation ()
  | "cpu" -> cpu ()
  | "serving" -> serving ()
  | "specialization" -> specialization ()
  | "resilience" -> resilience ()
  | "cache" -> cache_experiment ?json ()
  | "pool" -> pool_serving ?json ()
  | "adaptive" -> adaptive_serving ?json ()
  | "chaos" -> chaos_serving ?json ()
  | "decode" -> decode_serving ?json ()
  | "scale" -> if dec then scale_decode ?json ?requests () else scale ?json ?requests ()
  | "hbm" -> hbm_serving ?json ()
  | "tune" -> tune_experiment ?json ()
  | "micro" -> micro ()
  | "all" -> all ?json ()
  | other ->
      Printf.eprintf
        "unknown experiment %s\n\
         usage: main.exe \
         [e2e|suite|sweep|fusion_ablation|speculation_ablation|compile_time|memory|constraints|mixed_precision|horizontal|cpu|serving|specialization|resilience|cache|pool|adaptive|chaos|decode|scale|hbm|tune|micro|all] \
         [--json OUT.json] [--trace OUT.json] [--requests N] [--decode]\n"
        other;
      exit 1);
  match trace with
  | Some file ->
      Obs.Trace.write_chrome Obs.Trace.global file;
      Printf.printf "trace: %d spans -> %s\n" (Obs.Trace.length Obs.Trace.global) file
  | None -> ()
