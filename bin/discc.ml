(* discc — command-line driver for the BladeDISC reproduction.

     discc list
     discc compile --model bert [--tiny] [--planner VARIANT] [--dump ir|plan|symbols]
     discc run --model bert --dims batch=4,seq=73 [--device A10|T4] [--planner V]
     discc exec --model bert --dims batch=2,seq=5   (tiny data-plane run)
     discc compare --model bert --dims batch=4,seq=73 [--device D]  (all systems)
     discc fingerprint --all --tiny               (compile-cache identities)

   compile additionally takes --cache-dir DIR: compile records persist
   there keyed by structural fingerprint, and a later run finding its
   record reports a warm cache hit with the compile cost waived.

   compile/run/exec additionally take --trace FILE.json (Chrome
   trace_event export of compile phases / kernel launches, loadable in
   chrome://tracing or Perfetto) and --metrics (print the metrics
   registry after the command). *)

open Cmdliner

module Suite = Models.Suite
module Common = Models.Common
module Planner = Fusion.Planner
module Compiler = Disc.Compiler

(* Usage errors (bad flags/arguments) exit 1; compile/runtime errors
   exit 2. Both print one line to stderr — no backtraces at users. *)
exception Usage of string

let planner_of_string = function
  | "default" -> Ok Planner.default_config
  | "no-fusion" -> Ok Planner.no_fusion_config
  | "static-only" -> Ok Planner.static_only_config
  | "no-products" -> Ok Planner.no_product_config
  | "no-stitch" -> Ok Planner.no_stitch_config
  | other -> Error (Printf.sprintf "unknown planner %S" other)

let parse_dims s =
  String.split_on_char ',' s
  |> List.map (fun kv ->
         match String.split_on_char '=' kv with
         | [ k; v ] -> (
             let k = String.trim k in
             match int_of_string_opt (String.trim v) with
             | Some n -> (k, n)
             | None ->
                 raise (Usage (Printf.sprintf "bad --dims value %S (want an integer)" v)))
         | _ -> raise (Usage (Printf.sprintf "bad --dims entry %S (want name=value)" kv)))

let device_of_string s =
  match Gpusim.Device.by_name s with
  | Some d -> d
  | None -> raise (Usage (Printf.sprintf "unknown device %S (A10 or T4)" s))

(* common options *)
let model_arg =
  let doc = "Model from the suite (see `discc list`)." in
  Arg.(required & opt (some string) None & info [ "model"; "m" ] ~docv:"NAME" ~doc)

let tiny_arg =
  let doc = "Use the structurally-identical test-scale configuration." in
  Arg.(value & flag & info [ "tiny" ] ~doc)

let planner_arg =
  let doc = "Fusion planner variant: default, no-fusion, static-only, no-products, no-stitch." in
  Arg.(value & opt string "default" & info [ "planner" ] ~docv:"VARIANT" ~doc)

let device_arg =
  let doc = "Simulated device: A10 or T4." in
  Arg.(value & opt string "A10" & info [ "device"; "d" ] ~docv:"DEV" ~doc)

let dims_arg =
  let doc = "Dynamic dimension values, e.g. batch=4,seq=73." in
  Arg.(required & opt (some string) None & info [ "dims" ] ~docv:"DIMS" ~doc)

let trace_arg =
  let doc =
    "Enable observability and write a Chrome trace_event JSON file (open in \
     chrome://tracing or https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json" ~doc)

let metrics_arg =
  let doc = "Enable observability and print the metrics-registry table afterwards." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let cache_dir_arg =
  let doc =
    "Persist/load fingerprinted compile records in $(docv). A record present from an \
     earlier run makes the compile a warm hit: the simulated compile cost is waived and \
     the hit rate is reported."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* Arm the observability layer around a subcommand body: spans/metrics
   are only collected when one of the flags asks for them, so the
   default CLI behaviour (and output) is untouched. *)
let with_obs ~trace ~metrics f =
  if trace <> None || metrics then Obs.Scope.enable ();
  let v = f () in
  (match trace with
  | Some file ->
      Obs.Trace.write_chrome Obs.Trace.global file;
      Printf.printf "trace: %d spans -> %s\n" (Obs.Trace.length Obs.Trace.global) file
  | None -> ());
  if metrics then begin
    print_newline ();
    print_string (Obs.Metrics.to_table_string (Obs.Metrics.snapshot Obs.Metrics.global))
  end;
  v

let build_model name tiny =
  let entry = Suite.find name in
  if tiny then entry.Suite.build_tiny () else entry.Suite.build ()

let options_of planner_name =
  match planner_of_string planner_name with
  | Ok p -> { Compiler.default_options with planner = p }
  | Error e -> raise (Usage e)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-12s %-10s %s\n" "name" "dyn dims" "description";
    List.iter
      (fun e ->
        let built = e.Suite.build_tiny () in
        Printf.printf "%-12s %-10s %s\n" e.Suite.name
          (String.concat "," (List.map fst built.Common.dims))
          e.Suite.description)
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the model suite") Term.(const run $ const ())

(* --- compile ------------------------------------------------------------- *)

let compile_cmd =
  let dump_arg =
    let doc = "What to print: ir, plan, symbols, stats, kernels (repeatable)." in
    Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"WHAT" ~doc)
  in
  let run model tiny planner dumps cache_dir trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let built = build_model model tiny in
    let options = options_of planner in
    let c, cache_report =
      match cache_dir with
      | None -> (Compiler.compile ~options built.Common.graph, None)
      | Some dir ->
          let cache = Disc.Compile_cache.create () in
          Disc.Compile_cache.attach_dir cache dir;
          let c, _dims, outcome =
            Disc.Compile_cache.find_or_compile cache ~options ~dims:built.Common.dims
              built.Common.graph
          in
          (c, Some (outcome, Disc.Compile_cache.stats cache))
    in
    Printf.printf
      "compiled %s (%s): %d instructions -> %d kernels; simulated compile %.1f s; %s\n" model
      (if tiny then "tiny" else "paper scale")
      (Ir.Graph.num_insts built.Common.graph)
      (List.length c.Compiler.plan.Fusion.Cluster.clusters)
      (c.Compiler.compile_time_ms /. 1000.0)
      (Ir.Passes.stats_to_string c.Compiler.pass_stats);
    (match cache_report with
    | Some (outcome, s) ->
        Printf.printf "  cache: %s (%s); hit rate %.0f%%\n"
          (Disc.Compile_cache.outcome_to_string outcome)
          (Disc.Compile_cache.stats_to_string s)
          (100.0 *. Disc.Compile_cache.hit_rate s)
    | None -> ());
    Printf.printf "  phases: %s\n"
      (String.concat " "
         (List.map (fun (ph, ms) -> Printf.sprintf "%s=%.1fms" ph ms) c.Compiler.phases));
    List.iter
      (fun what ->
        match what with
        | "ir" -> print_string (Ir.Printer.to_string built.Common.graph)
        | "plan" -> print_string (Fusion.Cluster.to_string c.Compiler.plan)
        | "symbols" ->
            Format.printf "%a@." Symshape.Table.pp (Ir.Graph.symtab built.Common.graph)
        | "stats" ->
            print_endline (Disc.Stats.to_string (Disc.Stats.coverage built.Common.graph))
        | "kernels" ->
            print_string
              (Codegen.Emit.emit_program built.Common.graph c.Compiler.plan
                 Codegen.Kernel.default_config)
        | other -> Printf.eprintf "unknown --dump %s\n" other)
      dumps
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a model and inspect the pipeline")
    Term.(
      const run $ model_arg $ tiny_arg $ planner_arg $ dump_arg $ cache_dir_arg $ trace_arg
      $ metrics_arg)

(* --- fingerprint ----------------------------------------------------------- *)

let fingerprint_cmd =
  let model_opt_arg =
    let doc = "Model from the suite (see `discc list`)." in
    Arg.(value & opt (some string) None & info [ "model"; "m" ] ~docv:"NAME" ~doc)
  in
  let all_arg =
    let doc = "Print the fingerprint of every suite model." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let run model all tiny =
    let print_one name =
      let built = build_model name tiny in
      Printf.printf "%-12s %s\n" name
        (Ir.Fingerprint.fingerprint ~dims:built.Common.dims built.Common.graph)
    in
    if all then List.iter (fun e -> print_one e.Suite.name) Suite.all
    else
      match model with
      | Some m -> print_one m
      | None -> raise (Usage "fingerprint: need --model NAME or --all")
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Print the canonical structural fingerprint (compile-cache identity) of suite \
          models")
    Term.(const run $ model_opt_arg $ all_arg $ tiny_arg)

(* --- run (cost simulation) ------------------------------------------------ *)

let run_cmd =
  let run model tiny planner device dims trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let built = build_model model tiny in
    let c = Compiler.compile ~options:(options_of planner) built.Common.graph in
    let device = device_of_string device in
    let env = parse_dims dims in
    let binding =
      List.map (fun (n, v) -> (Common.dim_exn built n, v)) env
    in
    let profile = Compiler.simulate ~device c binding in
    Printf.printf "%s on %s at %s:\n  %s\n" model device.Gpusim.Device.name dims
      (Runtime.Profile.to_string profile);
    (* the concrete memory plan at this binding: arena/naive/reuse,
       resident share — same line the memory bench and tests read *)
    Printf.printf "  memory: %s\n"
      (Runtime.Memplan.to_string
         (Runtime.Memplan.plan c.Compiler.exe
            (Compiler.binding_of_dims built.Common.graph binding)));
    (* top kernels *)
    let recs =
      List.sort
        (fun a b -> compare b.Runtime.Profile.time_us a.Runtime.Profile.time_us)
        profile.Runtime.Profile.records
    in
    Printf.printf "  top kernels:\n";
    List.iteri
      (fun i r ->
        if i < 8 then
          Printf.printf "    %-8s %-8s %-14s %8.1f us\n" r.Runtime.Profile.kname
            r.Runtime.Profile.kind r.Runtime.Profile.version_tag r.Runtime.Profile.time_us)
      recs
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one inference at given dynamic-dim values")
    Term.(
      const run $ model_arg $ tiny_arg $ planner_arg $ device_arg $ dims_arg $ trace_arg
      $ metrics_arg)

(* --- exec (data plane, tiny) ---------------------------------------------- *)

let exec_cmd =
  let run model dims trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let built = build_model model true in
    let env = parse_dims dims in
    let inputs = Common.test_inputs built env in
    let c = Compiler.compile built.Common.graph in
    let outs, profile = Compiler.run c inputs in
    Printf.printf "%s (tiny) at %s: %s\n" model dims (Runtime.Profile.to_string profile);
    List.iteri
      (fun i o -> Printf.printf "  output %d: %s\n" i (Tensor.Nd.to_string o))
      outs
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute the tiny model on real data and print outputs")
    Term.(const run $ model_arg $ dims_arg $ trace_arg $ metrics_arg)

(* --- compile-file ----------------------------------------------------------- *)

let compile_file_cmd =
  let file_arg =
    let doc = "Path to a textual graph (.disc) file; see examples/graphs/." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let dump_arg =
    let doc = "What to print: ir, plan, symbols, kernels (repeatable)." in
    Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"WHAT" ~doc)
  in
  let run file planner dumps =
    let src = In_channel.with_open_text file In_channel.input_all in
    let g = Ir.Parser.parse src in
    let c = Compiler.compile ~options:(options_of planner) g in
    Printf.printf "parsed and compiled %s: %d instructions -> %d kernels\n" file
      (Ir.Graph.num_insts g)
      (List.length c.Compiler.plan.Fusion.Cluster.clusters);
    List.iter
      (fun what ->
        match what with
        | "ir" -> print_string (Ir.Printer.to_string ~with_symbols:true g)
        | "plan" -> print_string (Fusion.Cluster.to_string c.Compiler.plan)
        | "symbols" -> Format.printf "%a@." Symshape.Table.pp (Ir.Graph.symtab g)
        | "kernels" ->
            print_string
              (Codegen.Emit.emit_program g c.Compiler.plan Codegen.Kernel.default_config)
        | other -> Printf.eprintf "unknown --dump %s\n" other)
      dumps
  in
  Cmd.v
    (Cmd.info "compile-file" ~doc:"Parse and compile a textual .disc graph")
    Term.(const run $ file_arg $ planner_arg $ dump_arg)

(* --- explain ----------------------------------------------------------------- *)

let explain_cmd =
  let a_arg = Arg.(required & opt (some int) None & info [ "inst-a" ] ~docv:"ID" ~doc:"First instruction id.") in
  let b_arg = Arg.(required & opt (some int) None & info [ "inst-b" ] ~docv:"ID" ~doc:"Second instruction id.") in
  let run model tiny planner a b =
    let built = build_model model tiny in
    let options = options_of planner in
    let c = Compiler.compile ~options built.Common.graph in
    let v =
      Fusion.Explain.explain ~config:options.Compiler.planner built.Common.graph
        c.Compiler.plan ~a ~b
    in
    Printf.printf "%%%d (%s) vs %%%d (%s): %s\n" a
      (Ir.Op.to_string (Ir.Graph.inst built.Common.graph a).Ir.Graph.op)
      b
      (Ir.Op.to_string (Ir.Graph.inst built.Common.graph b).Ir.Graph.op)
      (Fusion.Explain.verdict_to_string v)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Explain why two instructions did (not) fuse")
    Term.(const run $ model_arg $ tiny_arg $ planner_arg $ a_arg $ b_arg)

(* --- serve ------------------------------------------------------------------ *)

(* serve --decode: token-level continuous batching of autoregressive
   decoding (lib/decode) — prefill/decode phase split over the device
   fleet, symbolic KV-cache bucketed so growth mints a bounded
   signature set, one shared compile cache across every session. *)
let serve_decode ~tiny ~devices ~qps ~requests ~seed ~max_batch ~prefill_workers ~mode
    ~cache_health =
  let n = List.length devices in
  (match mode with
  | Decode.Scheduler.Continuous ->
      if n < 2 then
        raise (Usage "serve: --decode continuous disaggregates phases; need >= 2 replicas");
      if prefill_workers < 1 || prefill_workers >= n then
        raise
          (Usage
             (Printf.sprintf "serve: --prefill-workers must be in 1..%d (replicas - 1)"
                (n - 1)))
  | Decode.Scheduler.Static -> ());
  let prefill, decode, prompt, max_new, cache_scheme =
    if tiny then
      ( (fun () -> Models.Gpt2.build ~config:Models.Gpt2.tiny ()),
        (fun () -> Models.Gpt2.build_decode ~config:Models.Gpt2.tiny ()),
        Workloads.Trace.Skewed (4, 16),
        Workloads.Trace.Uniform (4, 12),
        Serving.Bucket.Linear 8 )
    else
      ( (fun () -> Models.Gpt2.build ()),
        (fun () -> Models.Gpt2.build_decode ()),
        Workloads.Trace.Skewed (16, 256),
        Workloads.Trace.Uniform (16, 96),
        Serving.Bucket.Linear 64 )
  in
  let cfg =
    {
      (Decode.Scheduler.default_config ~devices) with
      Decode.Scheduler.mode;
      prefill_workers;
      max_decode_batch = max_batch;
      cache_scheme;
    }
  in
  let reqs = Decode.Scheduler.gen_requests ~seed ~qps ~n:requests ~prompt ~max_new in
  let r = Decode.Scheduler.run ~prefill ~decode cfg reqs in
  Printf.printf "serve gpt2 --decode (%s): %d replicas, %s mode, %.0f qps, %d sequences\n"
    (if tiny then "tiny" else "paper scale")
    n
    (Decode.Scheduler.mode_to_string mode)
    qps requests;
  String.split_on_char '\n' (Decode.Scheduler.report_to_string r)
  |> List.iter (Printf.printf "  %s\n");
  Printf.printf "  served=%d/%d (%.0f%%) lost=%d\n" r.Decode.Scheduler.finished
    r.Decode.Scheduler.sequences
    (100.0
    *. float_of_int r.Decode.Scheduler.finished
    /. float_of_int (max 1 r.Decode.Scheduler.sequences))
    r.Decode.Scheduler.lost;
  Printf.printf "  %s\n" (cache_health r.Decode.Scheduler.cache)

let serve_cmd =
  let replicas_arg =
    let doc = "Replica count (one session per replica, all on --device)." in
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let devices_arg =
    let doc = "Explicit per-replica device list, e.g. A10,A10,T4 (overrides --replicas)." in
    Arg.(value & opt (some string) None & info [ "devices" ] ~docv:"D1,D2" ~doc)
  in
  let qps_arg =
    let doc = "Offered load: Poisson arrival rate, queries per second." in
    Arg.(value & opt float 100.0 & info [ "qps" ] ~docv:"QPS" ~doc)
  in
  let requests_arg =
    let doc = "Number of requests in the synthetic trace." in
    Arg.(value & opt int 200 & info [ "requests"; "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Trace seed (arrivals, shapes, class mix)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let router_arg =
    let doc = "Routing policy: warmth (default), least, rr." in
    Arg.(value & opt string "warmth" & info [ "router" ] ~docv:"POLICY" ~doc)
  in
  let max_batch_arg =
    let doc = "Max requests per formed batch." in
    Arg.(value & opt int 8 & info [ "max-batch" ] ~docv:"N" ~doc)
  in
  let fail_arg =
    let doc = "Inject a replica failure: TIME_US,REPLICA (repeatable)." in
    Arg.(value & opt_all string [] & info [ "fail" ] ~docv:"T,ID" ~doc)
  in
  let adaptive_arg =
    let doc =
      "Adaptive serving: observe the live shape distribution, re-derive bucket \
       boundaries at traffic quantiles, feed likely-value hints back into the \
       sessions, and autoscale replicas against SLO attainment."
    in
    Arg.(value & flag & info [ "adaptive" ] ~doc)
  in
  let chaos_arg =
    let doc =
      "Replay a chaos scenario (JSON: seeded crash / straggler / flaky / spike / \
       cache-corruption events in virtual time) against the fleet, with the full \
       resilience stack on: crash re-dispatch, hedging, watchdog, brownout."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"FILE" ~doc)
  in
  let decode_arg =
    let doc =
      "Token-level continuous batching of autoregressive decoding (gpt2 only): \
       prefill/decode phase split, symbolic KV-cache bucketing, iteration-level \
       scheduling. Optional MODE: continuous (default) or static (request-level \
       batching baseline)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "continuous") (some string) None
      & info [ "decode" ] ~docv:"MODE" ~doc)
  in
  let prefill_workers_arg =
    let doc = "Decode serving: devices dedicated to the prefill phase." in
    Arg.(value & opt int 1 & info [ "prefill-workers" ] ~docv:"N" ~doc)
  in
  let traffic_arg =
    let doc =
      "Traffic preset from the seeded trace generator: steady (plain Poisson), \
       diurnal (sinusoidal load), bursty (Markov on/off spikes), or drift (the \
       shape distribution alternates between segments). Omitted: the legacy \
       constant-rate trace."
    in
    Arg.(value & opt (some string) None & info [ "traffic" ] ~docv:"PRESET" ~doc)
  in
  let hbm_budget_arg =
    let doc =
      "Per-replica device-memory budget in MB. Dispatches are gated on the \
       symbolic peak-memory estimate of each batch's env: a batch that would \
       not fit is re-planned (padded to exact, then shrunk) instead of OOMing."
    in
    Arg.(value & opt (some float) None & info [ "hbm-budget" ] ~docv:"MB" ~doc)
  in
  let mem_blind_arg =
    let doc =
      "Ablation (requires --hbm-budget): skip the memory admission gate and \
       dispatch over-budget batches anyway, losing them as OOMs."
    in
    Arg.(value & flag & info [ "mem-blind" ] ~doc)
  in
  (* Shared cache line for the end-of-run report: warm/corrupt health
     and side-table (reductions/schedules) counts at a glance, without
     --metrics. *)
  let cache_health = Disc.Compile_cache.health_to_string in
  let run model tiny replicas devices qps requests seed router max_batch fails adaptive
      chaos_file decode prefill_workers traffic hbm_budget_mb mem_blind trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let entry = Suite.find model in
    (* Reject contradictory or out-of-range flag combinations up front:
       a silently-ignored flag reads as a run that did what was asked. *)
    if replicas < 1 then raise (Usage "serve: --replicas must be >= 1");
    if qps <= 0.0 then raise (Usage "serve: --qps must be > 0");
    if requests < 1 then raise (Usage "serve: --requests must be >= 1");
    if max_batch < 1 then raise (Usage "serve: --max-batch must be >= 1");
    (match hbm_budget_mb with
    | Some mb when mb <= 0.0 -> raise (Usage "serve: --hbm-budget must be > 0")
    | _ -> ());
    if mem_blind && hbm_budget_mb = None then
      raise (Usage "serve: --mem-blind requires --hbm-budget");
    let devices =
      match devices with
      | Some s -> List.map device_of_string (String.split_on_char ',' s)
      | None -> List.init replicas (fun _ -> Gpusim.Device.a10)
    in
    let router =
      match Serving.Router.policy_of_string router with
      | Some p -> p
      | None -> raise (Usage (Printf.sprintf "unknown router %S (warmth, least, rr)" router))
    in
    let decode_mode =
      match decode with
      | None -> None
      | Some "continuous" -> Some Decode.Scheduler.Continuous
      | Some "static" -> Some Decode.Scheduler.Static
      | Some m -> raise (Usage (Printf.sprintf "unknown decode mode %S (continuous, static)" m))
    in
    if decode_mode <> None then begin
      if model <> "gpt2" then
        raise (Usage "serve: --decode requires --model gpt2 (the decode-step graph)");
      if chaos_file <> None then raise (Usage "serve: --decode cannot combine with --chaos");
      if adaptive then raise (Usage "serve: --decode cannot combine with --adaptive");
      if fails <> [] then raise (Usage "serve: --decode cannot combine with --fail");
      if traffic <> None then raise (Usage "serve: --decode cannot combine with --traffic");
      if hbm_budget_mb <> None then
        raise (Usage "serve: --decode cannot combine with --hbm-budget")
    end;
    let failures =
      List.map
        (fun s ->
          match String.split_on_char ',' s with
          | [ t; id ] -> (
              match (float_of_string_opt t, int_of_string_opt id) with
              | Some t, Some id ->
                  if t < 0.0 then
                    raise (Usage (Printf.sprintf "bad --fail %S (time must be >= 0)" s));
                  if id < 0 || id >= List.length devices then
                    raise
                      (Usage
                         (Printf.sprintf "bad --fail %S (replica out of range 0..%d)" s
                            (List.length devices - 1)));
                  (t, id)
              | _ -> raise (Usage (Printf.sprintf "bad --fail %S (want TIME_US,REPLICA)" s)))
          | _ -> raise (Usage (Printf.sprintf "bad --fail %S (want TIME_US,REPLICA)" s)))
        fails
    in
    match decode_mode with
    | Some mode ->
        serve_decode ~tiny ~devices ~qps ~requests ~seed ~max_batch ~prefill_workers ~mode
          ~cache_health
    | None ->
    let mix = Workloads.Trace.serving_mix entry in
    let req_dims = List.filter (fun (n, _) -> n <> "batch") mix in
    if req_dims = [] then raise (Usage (Printf.sprintf "serve: %s has no non-batch dims" model));
    let bucket = List.map (fun (n, _) -> (n, Serving.Bucket.Pow2)) req_dims in
    let cfg =
      {
        (Serving.Pool.default_config ~devices ~batch_dim:"batch" ~bucket) with
        Serving.Pool.router;
        max_batch;
        hbm_budget = Option.map (fun mb -> int_of_float (mb *. 1e6)) hbm_budget_mb;
        mem_aware = not mem_blind;
      }
    in
    let pool = Serving.Pool.create cfg (fun () -> build_model model tiny) in
    let reqs =
      match traffic with
      | None ->
          Workloads.Queueing.generate_arrivals ~seed ~qps ~n:requests ~dims:req_dims
          |> Serving.Pool.of_arrivals
          |> Serving.Pool.with_class_mix ~seed
               [
                 (Serving.Slo.Interactive, 0.25);
                 (Serving.Slo.Standard, 0.5);
                 (Serving.Slo.Best_effort, 0.25);
               ]
      | Some preset ->
          (* drift's second segment flips each dim's distribution family
             so consecutive segments exercise genuinely different shapes *)
          let flipped =
            List.map
              (fun (name, d) ->
                ( name,
                  match (d : Workloads.Trace.distribution) with
                  | Workloads.Trace.Uniform (lo, hi) | Workloads.Trace.Skewed (lo, hi) ->
                      Workloads.Trace.Bimodal (lo, hi)
                  | Workloads.Trace.Bimodal (a, b) ->
                      Workloads.Trace.Uniform (min a b, max a b)
                  | Workloads.Trace.Fixed v -> Workloads.Trace.Fixed v ))
              req_dims
          in
          let spec =
            match preset with
            | "steady" -> Serving.Trace_gen.steady ~seed ~qps ~dims:req_dims ()
            | "diurnal" -> Serving.Trace_gen.diurnal ~seed ~qps ~dims:req_dims ()
            | "bursty" -> Serving.Trace_gen.bursty ~seed ~qps ~dims:req_dims ()
            | "drift" ->
                Serving.Trace_gen.drift ~seed ~qps ~dims_a:req_dims ~dims_b:flipped ()
            | p ->
                raise
                  (Usage
                     (Printf.sprintf
                        "unknown traffic preset %S (steady, diurnal, bursty, drift)" p))
          in
          Printf.printf "traffic: %s\n" (Serving.Trace_gen.describe spec);
          Serving.Trace_gen.generate spec ~n:requests
    in
    let adaptive_cfg =
      if not adaptive then None
      else
        Some
          {
            Serving.Pool.default_adaptive with
            Serving.Pool.autoscale = Some Serving.Autoscaler.default_config;
          }
    in
    let chaos =
      Option.map
        (fun file ->
          match Serving.Chaos.load_file file with
          | Ok sc -> sc
          | Error m -> raise (Usage (Printf.sprintf "serve: --chaos %s: %s" file m)))
        chaos_file
    in
    let resilience =
      if chaos = None then None else Some Serving.Pool.default_resilience
    in
    let r = Serving.Pool.run ~failures ?adaptive:adaptive_cfg ?chaos ?resilience pool reqs in
    Printf.printf "serve %s (%s): %d replicas [%s], router=%s, %.0f qps, %d requests%s%s\n"
      model
      (if tiny then "tiny" else "paper scale")
      (List.length devices)
      (String.concat "," (List.map (fun d -> d.Gpusim.Device.name) devices))
      (Serving.Router.policy_to_string router)
      qps requests
      ((if adaptive then ", adaptive" else "")
      ^
      match hbm_budget_mb with
      | Some mb ->
          Printf.sprintf ", hbm-budget %.1fMB (%s)" mb
            (if mem_blind then "blind" else "aware")
      | None -> "")
      (match chaos with
      | Some sc ->
          Printf.sprintf ", chaos (%d events, seed %d)" (List.length sc.Serving.Chaos.events)
            sc.Serving.Chaos.seed
      | None -> "");
    Printf.printf "  %s\n" (Serving.Pool.report_to_string r);
    (match r.Serving.Pool.mem with
    | Some m -> Printf.printf "  %s\n" (Serving.Pool.mem_summary_to_string m)
    | None -> ());
    (if chaos <> None then
       String.split_on_char '\n'
         (Serving.Pool.resilience_summary_to_string r.Serving.Pool.resilience)
       |> List.iter (Printf.printf "  %s\n"));
    (match r.Serving.Pool.adaptive with
    | None -> ()
    | Some a ->
        String.split_on_char '\n' (Serving.Pool.adaptive_summary_to_string a)
        |> List.iter (Printf.printf "  %s\n"));
    List.iter
      (fun (c : Serving.Pool.class_report) ->
        Printf.printf "  class %-12s arrivals=%d completed=%d slo_met=%d shed=%d expired=%d\n"
          (Serving.Slo.cls_to_string c.Serving.Pool.cr_class)
          c.Serving.Pool.cr_arrivals c.Serving.Pool.cr_completed c.Serving.Pool.cr_slo_met
          c.Serving.Pool.cr_shed c.Serving.Pool.cr_expired)
      r.Serving.Pool.classes;
    List.iter
      (fun (rep : Serving.Pool.replica_report) ->
        Printf.printf
          "  replica %d (%s): %s, batches=%d requests=%d cold=%d busy=%.0fus\n"
          rep.Serving.Pool.rr_id rep.Serving.Pool.rr_device rep.Serving.Pool.rr_health
          rep.Serving.Pool.rr_batches rep.Serving.Pool.rr_requests
          rep.Serving.Pool.rr_cold_dispatches rep.Serving.Pool.rr_busy_us)
      r.Serving.Pool.replicas;
    let cs = Disc.Compile_cache.stats (Serving.Pool.cache pool) in
    Printf.printf "  %s\n" (cache_health cs)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Simulate a multi-replica serving pool on a synthetic arrival trace")
    Term.(
      const run $ model_arg $ tiny_arg $ replicas_arg $ devices_arg $ qps_arg
      $ requests_arg $ seed_arg $ router_arg $ max_batch_arg $ fail_arg $ adaptive_arg
      $ chaos_arg $ decode_arg $ prefill_workers_arg $ traffic_arg $ hbm_budget_arg
      $ mem_blind_arg $ trace_arg $ metrics_arg)

(* --- tune ------------------------------------------------------------------- *)

(* Fused-kernel time of a serve: what schedule tuning can move. Library
   calls (cuBLAS-analog) and reference-path records are out of the
   tuner's reach and excluded. *)
let fused_time_us (p : Runtime.Profile.t) =
  List.fold_left
    (fun acc (r : Runtime.Profile.kernel_record) ->
      if r.Runtime.Profile.kind = "library" || r.Runtime.Profile.kind = "interp" then acc
      else acc +. r.Runtime.Profile.time_us)
    0.0 p.Runtime.Profile.records

let tune_cmd =
  let rungs_arg =
    let doc =
      "Representative bucket-rung envs to rank schedules at, \
       semicolon-separated, e.g. 'batch=1,seq=37;batch=8,seq=120'. \
       Default: 1/8, 1/2 and full ceiling of every dynamic dim."
    in
    Arg.(value & opt (some string) None & info [ "rungs" ] ~docv:"ENVS" ~doc)
  in
  let run model tiny device rungs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let device = device_of_string device in
    let build () = build_model model tiny in
    let probe = build () in
    let envs =
      match rungs with
      | Some s -> List.map parse_dims (String.split_on_char ';' s)
      | None ->
          (* ceiling ladder: every dynamic dim at 1/8, 1/2 and full bound *)
          let tab = Ir.Graph.symtab probe.Common.graph in
          let ub d =
            match Symshape.Table.upper_bound tab d with Some u -> u | None -> 64
          in
          List.sort_uniq compare
            (List.map
               (fun frac ->
                 List.map (fun (n, d) -> (n, max 1 (ub d / frac))) probe.Common.dims)
               [ 8; 2; 1 ])
    in
    (* unknown dim names are usage errors (exit 1), as in `discc run` *)
    List.iter
      (List.iter (fun (n, _) -> ignore (Common.dim_exn probe n)))
      envs;
    let cache = Disc.Compile_cache.create () in
    let session = Disc.Session.create ~device ~cache (build ()) in
    Printf.printf "tune %s (%s) on %s: %d rungs, %d schedule candidates/kernel ceiling\n"
      model
      (if tiny then "tiny" else "paper scale")
      device.Gpusim.Device.name (List.length envs)
      (List.length (Tune.Space.enumerate device ~has_reduce:true ~kind:Fusion.Cluster.Loop));
    let serve_us s env =
      match Disc.Session.serve_result s env with
      | Ok (p, _) -> fused_time_us p
      | Error e -> raise (Runtime.Error.Error e)
    in
    let default_us = List.map (fun env -> serve_us session env) envs in
    let plan, origin = Disc.Session.tune session ~envs in
    let tuned_us = List.map (fun env -> serve_us session env) envs in
    List.iter2
      (fun env (d, t) ->
        Printf.printf "  rung %-24s default=%8.1fus tuned=%8.1fus speedup=%.2fx\n"
          (String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) env))
          d t
          (if t > 0.0 then d /. t else 1.0))
      envs
      (List.combine default_us tuned_us);
    String.split_on_char '\n' (Tune.Plan.to_string plan)
    |> List.iter (fun l -> if l <> "" then Printf.printf "  %s\n" l);
    Printf.printf "plan: kernels=%d digest=%s origin=%s\n"
      (Tune.Plan.kernels_tuned plan) (Tune.Plan.digest plan)
      (match origin with `Tuned -> "searched" | `Cached -> "cached");
    (* a second session sharing the cache replays the stored plan *)
    let session2 = Disc.Session.create ~device ~cache (build ()) in
    let _plan2, origin2 = Disc.Session.tune session2 ~envs in
    (match origin2 with
    | `Cached ->
        Printf.printf "second session: schedule-cache hit (schedules cached=%d)\n"
          (Disc.Compile_cache.schedules_cached cache)
    | `Tuned -> Printf.printf "second session: UNEXPECTED re-search\n");
    (* bit-identity: a fresh cache forces a full re-search *)
    let session3 = Disc.Session.create ~device ~cache:(Disc.Compile_cache.create ()) (build ()) in
    let plan3, _ = Disc.Session.tune session3 ~envs in
    Printf.printf "re-tune (fresh cache): digest=%s bit-identical=%s\n" (Tune.Plan.digest plan3)
      (if Tune.Plan.digest plan3 = Tune.Plan.digest plan then "yes" else "no");
    Printf.printf "%s\n"
      (Disc.Compile_cache.health_to_string (Disc.Compile_cache.stats cache))
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Autotune kernel schedules for a device (sample-free: hierarchical \
          hardware pruning + analytical cost ranking) and persist the plan in \
          the schedule cache")
    Term.(
      const run $ model_arg $ tiny_arg $ device_arg $ rungs_arg $ trace_arg $ metrics_arg)

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let run model device dims =
    let device = device_of_string device in
    let env = parse_dims dims in
    let entry = Suite.find model in
    Printf.printf "%-12s %12s %12s %10s\n" "system" "latency(us)" "compile(ms)" "vs disc";
    let disc = Baselines.Systems.make "bladedisc" (entry.Suite.build ()) in
    let d = (disc.Baselines.Executor.run ~device env).Baselines.Executor.latency_us in
    List.iter
      (fun s ->
        let ex =
          Baselines.Executor.make_from_strategy s (entry.Suite.build ())
        in
        let r = ex.Baselines.Executor.run ~device env in
        Printf.printf "%-12s %12.0f %12.0f %9.2fx\n" s.Baselines.Executor.s_name
          r.Baselines.Executor.latency_us r.Baselines.Executor.compile_ms
          (r.Baselines.Executor.latency_us /. d))
      Baselines.Systems.all_strategies
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all systems at one shape")
    Term.(const run $ model_arg $ device_arg $ dims_arg)

(* invoked with no subcommand: print the table and exit 1 (usage error) *)
let no_subcommand_term =
  let table =
    [
      ("list", "List the model suite");
      ("compile", "Compile a model and inspect the pipeline");
      ("compile-file", "Parse and compile a textual .disc graph");
      ("run", "Simulate one inference at given dynamic-dim values");
      ("exec", "Execute the tiny model on real data and print outputs");
      ("serve", "Simulate a multi-replica serving pool on an arrival trace");
      ("explain", "Explain why two instructions did (not) fuse");
      ("tune", "Autotune kernel schedules for a device and cache the plan");
      ("compare", "Compare all systems at one shape");
      ("fingerprint", "Print compile-cache identities of suite models");
    ]
  in
  Term.(
    const (fun () ->
        Printf.eprintf "discc: missing subcommand\n\nsubcommands:\n";
        List.iter (fun (n, d) -> Printf.eprintf "  %-14s %s\n" n d) table;
        Printf.eprintf "\nSee 'discc COMMAND --help' for options. Exit codes: 0 ok, 1 usage error, 2 compile/runtime error.\n";
        Stdlib.exit 1)
    $ const ())

let () =
  let info =
    Cmd.info "discc" ~version:"1.0"
      ~doc:"BladeDISC dynamic-shape ML compiler reproduction driver"
  in
  let die code msg =
    Printf.eprintf "discc: %s\n" msg;
    exit code
  in
  match
    Cmd.eval ~catch:false (Cmd.group ~default:no_subcommand_term info
      [
        list_cmd; compile_cmd; compile_file_cmd; run_cmd; exec_cmd; serve_cmd;
        explain_cmd; tune_cmd; compare_cmd; fingerprint_cmd;
      ])
  with
  | code -> exit code
  | exception Usage msg -> die 1 msg
  | exception Invalid_argument msg -> die 1 msg
  | exception Runtime.Error.Error e -> die 2 (Runtime.Error.to_string e)
  | exception Symshape.Table.Inconsistent msg -> die 2 ("shape error: " ^ msg)
  | exception Ir.Interp.Eval_error msg -> die 2 ("eval error: " ^ msg)
  | exception Failure msg -> die 2 msg
  | exception Sys_error msg -> die 2 msg
