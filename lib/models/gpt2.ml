(* GPT-2-small-style causal decoder (prefill step): 12 layers, hidden
   768. Dynamic batch and prompt length; the causal mask is computed
   in-graph from iota, so it adapts to any sequence length. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

let small = { layers = 12; hidden = 768; heads = 12; ffn = 3072; vocab = 50257; max_pos = 1024 }
let tiny = { layers = 2; hidden = 32; heads = 4; ffn = 64; vocab = 100; max_pos = 64 }

let build ?(config = small) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:32 ~likely:[ 1; 4 ] ctx in
  let seq = C.fresh_dim ~name:"seq" ~lb:1 ~ub:config.max_pos ~likely:[ 64; 256 ] ctx in
  let ids = C.param ctx ~name:"input_ids" [| batch; seq |] Dtype.I32 (C.Ids config.vocab) in
  let x =
    C.embed ctx ~name:"emb" ids ~batch_dim:batch ~seq_dim:seq ~vocab:config.vocab
      ~max_pos:config.max_pos ~hidden:config.hidden
  in
  (* causal additive bias: rows >= cols allowed, else -1e9 *)
  let rows = B.iota g ~out:[| seq; seq |] ~dim:0 in
  let cols = B.iota g ~out:[| seq; seq |] ~dim:1 in
  let allowed = B.cmp g Ir.Op.Ge rows cols in
  let bias2d = B.select g allowed (B.constf g 0.0) (B.constf g (-1e9)) in
  let re = B.reshape g bias2d [| Sym.Static 1; Sym.Static 1; seq; seq |] in
  let bias =
    B.broadcast g re ~dims:[| 0; 1; 2; 3 |]
      ~out:[| batch; Sym.Static config.heads; seq; seq |]
  in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "block%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~mask_bias:(Some bias))
        (l + 1)
  in
  let x = stack x 0 in
  let x = C.layernorm ctx ~name:"ln_f" x ~hidden:config.hidden in
  C.finish ctx ~name:"gpt2" ~dims:[ ("batch", batch); ("seq", seq) ] ~outputs:[ x ]

(* One autoregressive decode step. The query is the single newest token
   ([batch, 1]); the KV-cache is a symbolic-shape tensor
   [batch, cache, hidden] whose length dim carries the monotone-growth
   fact ([Table.set_growing]) — it climbs by one every step, so serving
   layers bucket it ([Serving.Bucket]) to keep the signature set finite.
   The cache holds layer-shared hidden states including the current
   token's slot; each layer recomputes its own K/V projections from it
   (cost-faithful to cache-length scaling, simpler than per-layer KV
   tensors). Attention needs no causal mask: the cache only contains
   past-and-current positions. *)
let build_decode ?(config = small) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:32 ~likely:[ 1; 4; 8 ] ctx in
  let cache =
    C.fresh_dim ~name:"cache" ~lb:1 ~ub:config.max_pos ~likely:[ 64; 128; 256 ] ctx
  in
  Symshape.Table.set_growing (C.symtab ctx) cache;
  let one = Sym.Static 1 in
  let ids = C.param ctx ~name:"input_ids" [| batch; one |] Dtype.I32 (C.Ids config.vocab) in
  let pos_ids =
    (* the new token's absolute position (= cache length - 1); a gather
       index, unlike the prefill graph's in-graph iota over [seq] *)
    C.param ctx ~name:"pos_ids" [| batch; one |] Dtype.I32 (C.Ids config.max_pos)
  in
  let past =
    C.param ctx ~name:"kv_cache" [| batch; cache; Sym.Static config.hidden |] Dtype.F32
      (C.Normal 0.02)
  in
  let tok_table = C.weight ctx "emb.tok" [ config.vocab; config.hidden ] in
  let pos_table = C.weight ctx "emb.pos" [ config.max_pos; config.hidden ] in
  let x = B.add g (B.gather g tok_table ids) (B.gather g pos_table pos_ids) in
  let layer name x =
    let att =
      C.attention ctx ~name:(name ^ ".att") ~x_kv:past ~heads:config.heads
        ~hidden:config.hidden x ~mask_bias:None
    in
    let x1 = C.layernorm ctx ~name:(name ^ ".ln1") (B.add g x att) ~hidden:config.hidden in
    let f = C.ffn ctx ~name:(name ^ ".ffn") x1 ~hidden:config.hidden ~inner:config.ffn in
    C.layernorm ctx ~name:(name ^ ".ln2") (B.add g x1 f) ~hidden:config.hidden
  in
  let rec stack x l =
    if l >= config.layers then x else stack (layer (Printf.sprintf "block%d" l) x) (l + 1)
  in
  let x = stack x 0 in
  let x = C.layernorm ctx ~name:"ln_f" x ~hidden:config.hidden in
  C.finish ctx ~name:"gpt2-decode"
    ~dims:[ ("batch", batch); ("cache", cache) ]
    ~outputs:[ x ]
