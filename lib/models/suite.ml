(* The evaluation model suite: builders at paper scale (for the
   cost-plane benchmarks) and structurally-identical tiny scale (for
   data-plane correctness tests), plus the shape environments used by
   the experiments. *)

type entry = {
  name : string;
  description : string;
  dynamism : string; (* what varies at runtime *)
  build : unit -> Common.built; (* paper-scale *)
  build_tiny : unit -> Common.built; (* test-scale, same structure *)
  bench_dims : (string * int) list list; (* shape mix for end-to-end runs *)
  tiny_dims : (string * int) list; (* a valid test-scale environment *)
  sweep : string * int list; (* the dim swept in E3 and its values *)
}

let all : entry list =
  [
    {
      name = "bert";
      description = "BERT-base encoder, 12 layers, hidden 768";
      dynamism = "batch, sequence length";
      build = (fun () -> Bert.build ());
      build_tiny = (fun () -> Bert.build ~config:Bert.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("seq", 37) ];
          [ ("batch", 4); ("seq", 73) ];
          [ ("batch", 8); ("seq", 120) ];
        ];
      tiny_dims = [ ("batch", 2); ("seq", 5) ];
      sweep = ("seq", [ 8; 16; 32; 64; 128; 256; 512 ]);
    };
    {
      name = "gpt2";
      description = "GPT-2-small causal decoder prefill, 12 layers";
      dynamism = "batch, prompt length";
      build = (fun () -> Gpt2.build ());
      build_tiny = (fun () -> Gpt2.build ~config:Gpt2.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("seq", 57) ];
          [ ("batch", 4); ("seq", 199) ];
        ];
      tiny_dims = [ ("batch", 2); ("seq", 4) ];
      sweep = ("seq", [ 16; 32; 64; 128; 256; 512; 1024 ]);
    };
    {
      name = "gpt2-decode";
      description = "GPT-2-small decode step: one new token over a symbolic KV-cache";
      dynamism = "batch, KV-cache length (grows per generated token)";
      build = (fun () -> Gpt2.build_decode ());
      build_tiny = (fun () -> Gpt2.build_decode ~config:Gpt2.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("cache", 64) ];
          [ ("batch", 4); ("cache", 128) ];
          [ ("batch", 8); ("cache", 256) ];
        ];
      tiny_dims = [ ("batch", 2); ("cache", 5) ];
      sweep = ("cache", [ 16; 32; 64; 128; 256; 512; 1024 ]);
    };
    {
      name = "seq2seq";
      description = "Transformer-base encoder-decoder, 6+6 layers";
      dynamism = "batch, source length, target length";
      build = (fun () -> Seq2seq.build ());
      build_tiny = (fun () -> Seq2seq.build ~config:Seq2seq.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("src", 23); ("tgt", 19) ];
          [ ("batch", 8); ("src", 45); ("tgt", 38) ];
        ];
      tiny_dims = [ ("batch", 2); ("src", 5); ("tgt", 4) ];
      sweep = ("src", [ 8; 16; 32; 64; 128; 256 ]);
    };
    {
      name = "t5";
      description = "T5-small encoder with in-graph relative position bias";
      dynamism = "batch, sequence length";
      build = (fun () -> T5.build ());
      build_tiny = (fun () -> T5.build ~config:T5.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("seq", 29) ];
          [ ("batch", 8); ("seq", 115) ];
        ];
      tiny_dims = [ ("batch", 2); ("seq", 5) ];
      sweep = ("seq", [ 8; 16; 32; 64; 128; 256; 512 ]);
    };
    {
      name = "crnn";
      description = "CRNN OCR head: stride-2 conv stack + per-timestep classifier";
      dynamism = "batch, image width";
      build = (fun () -> Crnn.build ());
      build_tiny = (fun () -> Crnn.build ~config:Crnn.tiny ());
      bench_dims =
        [
          [ ("batch", 8); ("width", 100) ];
          [ ("batch", 16); ("width", 160) ];
        ];
      tiny_dims = [ ("batch", 1); ("width", 32) ];
      sweep = ("width", [ 32; 64; 100; 160; 256; 512 ]);
    };
    {
      name = "fastspeech";
      description = "FastSpeech2-style TTS with length regulation";
      dynamism = "batch, phoneme count, frame count";
      build = (fun () -> Fastspeech.build ());
      build_tiny = (fun () -> Fastspeech.build ~config:Fastspeech.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("phon", 47); ("frames", 393) ];
          [ ("batch", 4); ("phon", 89); ("frames", 777) ];
        ];
      tiny_dims = [ ("batch", 1); ("phon", 4); ("frames", 6) ];
      sweep = ("frames", [ 100; 200; 400; 800; 1600 ]);
    };
    {
      name = "asr";
      description = "Conformer-lite ASR encoder: conv subsampling + transformer + CTC";
      dynamism = "batch, audio frame count";
      build = (fun () -> Asr.build ());
      build_tiny = (fun () -> Asr.build ~config:Asr.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("frames", 487) ];
          [ ("batch", 8); ("frames", 1213) ];
        ];
      tiny_dims = [ ("batch", 1); ("frames", 16) ];
      sweep = ("frames", [ 100; 250; 500; 1000; 2000; 4000 ]);
    };
    {
      name = "vit";
      description = "ViT-S/16 vision transformer, dynamic image resolution";
      dynamism = "batch, image height, image width";
      build = (fun () -> Vit.build ());
      build_tiny = (fun () -> Vit.build ~config:Vit.tiny ());
      bench_dims =
        [
          [ ("batch", 1); ("h", 224); ("w", 224) ];
          [ ("batch", 8); ("h", 176); ("w", 240) ];
        ];
      tiny_dims = [ ("batch", 1); ("h", 8); ("w", 12) ];
      sweep = ("h", [ 32; 64; 128; 224; 320; 384 ]);
    };
    {
      name = "dien";
      description = "DIEN-style CTR model: embeddings + history attention + MLP";
      dynamism = "batch, behaviour-history length";
      build = (fun () -> Dien.build ());
      build_tiny = (fun () -> Dien.build ~config:Dien.tiny ());
      bench_dims =
        [
          [ ("batch", 128); ("hist", 17) ];
          [ ("batch", 250); ("hist", 43) ];
        ];
      tiny_dims = [ ("batch", 3); ("hist", 4) ];
      sweep = ("hist", [ 5; 10; 20; 50; 100 ]);
    };
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "unknown model %s" name)
