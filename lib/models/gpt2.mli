(** GPT-2-small causal decoder prefill: dynamic batch and prompt
    length; the causal mask is computed in-graph from iota. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

val small : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built

val build_decode : ?config:config -> unit -> Common.built
(** One autoregressive decode step: query = the newest token
    ([batch, 1]), KV-cache = a symbolic-shape tensor
    [[batch, cache, hidden]] whose [cache] dim carries the
    monotone-growth fact ({!Symshape.Table.set_growing}) — it grows by
    one per generated token. Dynamic dims: [batch], [cache]. *)
