(** Shared machinery for the model zoo: parameter bookkeeping,
    deterministic test-data generation, and the transformer building
    blocks (dense, layernorm, multi-head attention, FFN, embeddings). *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph

(** How to synthesize data for a parameter in tests/examples. *)
type gen =
  | Normal of float  (** ~N(0, sigma), deterministic *)
  | Ids of int  (** integer ids in \[0, n) *)
  | Binary_mask  (** mostly-ones attention mask *)

type ctx = { g : Graph.t; mutable gens : (string * gen) list }

val new_ctx : unit -> ctx
val symtab : ctx -> Table.t

val fresh_dim :
  ?name:string -> ?lb:int -> ?ub:int -> ?likely:int list -> ctx -> Sym.dim

val param : ctx -> name:string -> Sym.shape -> Tensor.Dtype.t -> gen -> int
val weight : ctx -> string -> int list -> int
(** Static-shaped f32 weight parameter. *)

type built = {
  name : string;
  graph : Graph.t;
  dims : (string * Sym.dim) list;  (** dynamic dims by name *)
  gens : (string * gen) list;  (** parameter generators, creation order *)
}

val finish : ctx -> name:string -> dims:(string * Sym.dim) list -> outputs:int list -> built

val dim_opt : built -> string -> Sym.dim option
val dim_exn : built -> string -> Sym.dim
(** @raise Invalid_argument for unknown dim names. *)

val generate_value : gen -> int -> int -> float
(** Deterministic value stream (seed, index). *)

val test_inputs : ?seed:int -> built -> (string * int) list -> Tensor.Nd.t list
(** Materialize every parameter (weights and data) at the given
    dynamic-dim values; tests/examples only — benchmarks never
    materialize data. *)

val binding_for : built -> (string * int) list -> Table.binding

(** {1 Transformer building blocks} *)

val dense : ctx -> name:string -> int -> din:int -> dout:int -> int
val layernorm : ctx -> name:string -> int -> hidden:int -> int

val attention :
  ctx -> name:string -> ?x_kv:int -> heads:int -> hidden:int -> int ->
  mask_bias:int option -> int
(** Multi-head attention (self by default; pass [x_kv] for cross).
    Exercises the reshape/transpose product-fact machinery. *)

val ffn : ctx -> name:string -> int -> hidden:int -> inner:int -> int
val encoder_layer :
  ctx -> name:string -> int -> heads:int -> hidden:int -> inner:int ->
  mask_bias:int option -> int

val mask_to_bias : ctx -> heads:int -> batch_dim:Sym.dim -> seq_dim:Sym.dim -> int -> int
(** Additive attention bias \[b, heads, s, s\] from a \[b, s\] 1/0 mask. *)

val embed :
  ctx -> name:string -> int -> batch_dim:Sym.dim -> seq_dim:Sym.dim -> vocab:int ->
  max_pos:int -> hidden:int -> int
(** Token + learned position embeddings → \[b, s, hidden\]. *)
