(* Shared machinery for the model zoo: parameter bookkeeping, test-data
   generation and the transformer building blocks every NLP model uses. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd

(* How to synthesize a value for a parameter when actually executing the
   data plane (tests / examples). Benchmarks never materialize data. *)
type gen =
  | Normal of float (* ~N(0, sigma), deterministic *)
  | Ids of int (* integer ids in [0, n) *)
  | Binary_mask (* 1.0 with a deterministic pattern of 0.0 tails *)

type ctx = { g : Graph.t; mutable gens : (string * gen) list (* reverse order *) }

let new_ctx () = { g = Graph.create (); gens = [] }

let symtab ctx = Graph.symtab ctx.g

let fresh_dim ?name ?lb ?ub ?likely ctx = Table.fresh ?name ?lb ?ub ?likely (symtab ctx)

let param ctx ~name shape dtype gen =
  ctx.gens <- (name, gen) :: ctx.gens;
  Graph.parameter ctx.g ~name shape dtype

(* A static-shaped weight tensor. *)
let weight ctx name dims =
  param ctx ~name (Array.of_list (List.map (fun d -> Sym.Static d) dims)) Dtype.F32
    (Normal 0.02)

type built = {
  name : string;
  graph : Graph.t;
  dims : (string * Sym.dim) list; (* dynamic dims by name *)
  gens : (string * gen) list; (* parameter generators, creation order *)
}

let finish ctx ~name ~dims ~outputs =
  Graph.set_outputs ctx.g outputs;
  { name; graph = ctx.g; dims; gens = List.rev ctx.gens }

let dim_opt built dname = List.assoc_opt dname built.dims

let dim_exn built dname =
  match List.assoc_opt dname built.dims with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "model %s has no dynamic dim %s" built.name dname)

(* Deterministic pseudo-random stream (SplitMix64-ish), independent of
   the global Random state. *)
let mix seed i =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0 (* [0,1) *)

let generate_value gen seed i =
  match gen with
  | Normal sigma ->
      (* Box-Muller on two deterministic uniforms *)
      let u1 = Float.max 1e-12 (mix seed (2 * i)) and u2 = mix seed ((2 * i) + 1) in
      sigma *. Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)
  | Ids n -> Float.of_int (int_of_float (mix seed i *. float_of_int n) mod n)
  | Binary_mask -> if mix seed i < 0.85 then 1.0 else 0.0

(* Materialize every parameter of a built model at the given dynamic-dim
   values. Used by tests and examples (small dims only). *)
let test_inputs ?(seed = 42) (m : built) (env : (string * int) list) : Nd.t list =
  let tab = Graph.symtab m.graph in
  let bnd = Table.empty_binding () in
  List.iter
    (fun (dname, v) -> Table.bind_dim tab bnd (dim_exn m dname) v)
    env;
  List.mapi
    (fun pi (pid, pname) ->
      let inst = Graph.inst m.graph pid in
      let shape = Table.eval_shape tab bnd inst.Graph.shape in
      let gen =
        match List.assoc_opt pname m.gens with
        | Some gg -> gg
        | None -> Normal 0.02
      in
      Nd.init ~dtype:inst.Graph.dtype shape (fun idx ->
          generate_value gen (seed + (pi * 7919)) (Tensor.Shape.linear_of_index shape idx)))
    (Graph.parameters m.graph)

let binding_for (m : built) (env : (string * int) list) =
  let tab = Graph.symtab m.graph in
  let bnd = Table.empty_binding () in
  List.iter (fun (dname, v) -> Table.bind_dim tab bnd (dim_exn m dname) v) env;
  bnd

(* --- transformer building blocks ---------------------------------------- *)

let dense ctx ~name x ~din ~dout =
  let g = ctx.g in
  let w = weight ctx (name ^ ".w") [ din; dout ] in
  let b = weight ctx (name ^ ".b") [ dout ] in
  let y = B.dot g x w in
  B.add g y (B.broadcast_trailing g b ~out:(Graph.inst g y).Graph.shape)

let layernorm ctx ~name x ~hidden =
  let g = ctx.g in
  let scale = weight ctx (name ^ ".scale") [ hidden ] in
  let bias = weight ctx (name ^ ".bias") [ hidden ] in
  B.layernorm g x ~scale ~bias ~eps:1e-5

(* Multi-head attention; [x_kv] defaults to self-attention. [mask_bias]
   is an optional additive bias already shaped/broadcastable to
   [b, heads, s_q, s_kv]. Exercises the reshape/transpose product-fact
   machinery on dynamic dims. *)
let attention ctx ~name ?x_kv ~heads ~hidden x ~mask_bias =
  let g = ctx.g in
  let x_kv = Option.value x_kv ~default:x in
  let dk = hidden / heads in
  assert (heads * dk = hidden);
  let shape_q = (Graph.inst g x).Graph.shape in
  let shape_kv = (Graph.inst g x_kv).Graph.shape in
  let b_dim = shape_q.(0) and sq = shape_q.(1) and skv = shape_kv.(1) in
  let q = dense ctx ~name:(name ^ ".q") x ~din:hidden ~dout:hidden in
  let k = dense ctx ~name:(name ^ ".k") x_kv ~din:hidden ~dout:hidden in
  let v = dense ctx ~name:(name ^ ".v") x_kv ~din:hidden ~dout:hidden in
  let split s_dim t =
    (* [b, s, h] -> [b, heads, s, dk] *)
    let r = B.reshape g t [| b_dim; s_dim; Sym.Static heads; Sym.Static dk |] in
    B.transpose g r [| 0; 2; 1; 3 |]
  in
  let qh = split sq q and kh = split skv k and vh = split skv v in
  let kt = B.transpose g kh [| 0; 1; 3; 2 |] in
  let scores = B.dot g qh kt in
  let scaled = B.mulf g scores (1.0 /. Float.sqrt (float_of_int dk)) in
  let biased = match mask_bias with None -> scaled | Some mb -> B.add g scaled mb in
  let probs = B.softmax g biased in
  let ctxv = B.dot g probs vh in
  (* [b, heads, s, dk] -> [b, s, h] *)
  let back = B.transpose g ctxv [| 0; 2; 1; 3 |] in
  let merged = B.reshape g back [| b_dim; sq; Sym.Static hidden |] in
  dense ctx ~name:(name ^ ".o") merged ~din:hidden ~dout:hidden

let ffn ctx ~name x ~hidden ~inner =
  let h = dense ctx ~name:(name ^ ".fc1") x ~din:hidden ~dout:inner in
  let a = B.gelu ctx.g h in
  dense ctx ~name:(name ^ ".fc2") a ~din:inner ~dout:hidden

let encoder_layer ctx ~name x ~heads ~hidden ~inner ~mask_bias =
  let g = ctx.g in
  let att = attention ctx ~name:(name ^ ".att") ~heads ~hidden x ~mask_bias in
  let x1 = layernorm ctx ~name:(name ^ ".ln1") (B.add g x att) ~hidden in
  let f = ffn ctx ~name:(name ^ ".ffn") x1 ~hidden ~inner in
  layernorm ctx ~name:(name ^ ".ln2") (B.add g x1 f) ~hidden

(* Additive attention bias [b, heads, s, s] built from a [b, s] 1/0 mask:
   (1 - mask) * -1e9, reshaped and broadcast. *)
let mask_to_bias ctx ~heads ~batch_dim ~seq_dim mask =
  let g = ctx.g in
  let neg = B.mulf g (B.subf g (B.neg g mask) (-1.0)) (-1e9) in
  (* neg = (1 - mask) * -1e9 computed as (-(mask) - (-1)) * -1e9 *)
  let re = B.reshape g neg [| batch_dim; Sym.Static 1; Sym.Static 1; seq_dim |] in
  B.broadcast g re ~dims:[| 0; 1; 2; 3 |]
    ~out:[| batch_dim; Sym.Static heads; seq_dim; seq_dim |]

(* Token + learned position embeddings -> [b, s, hidden]. *)
let embed ctx ~name ids ~batch_dim ~seq_dim ~vocab ~max_pos ~hidden =
  let g = ctx.g in
  let table = weight ctx (name ^ ".tok") [ vocab; hidden ] in
  let tok = B.gather g table ids in
  let pos_table = weight ctx (name ^ ".pos") [ max_pos; hidden ] in
  let pos_ids = B.cast g Dtype.I32 (B.iota g ~out:[| seq_dim |] ~dim:0) in
  let pos = B.gather g pos_table pos_ids in
  let posb =
    B.broadcast g pos ~dims:[| 1; 2 |] ~out:[| batch_dim; seq_dim; Sym.Static hidden |]
  in
  B.add g tok posb
