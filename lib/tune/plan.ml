(* The tuned-schedule artifact: per-kernel version lists plus the
   context they were derived under (device, bucket rungs). A plan is a
   pure value with a byte-stable rendering — golden tests pin
   [to_string] so schedule drift is caught exactly like fingerprint
   drift, and [digest] is the bit-identity the CLI and CI compare
   across re-tunes. [apply] rewrites an executable immutably, so the
   untouched compiled artifact in the shared cache stays pristine. *)

module Kernel = Codegen.Kernel
module Executable = Runtime.Executable

type entry = { kname : string; versions : Kernel.version list }

type t = {
  device : string; (* Gpusim.Device name the plan was tuned for *)
  rungs : string list; (* bucket-rung signatures ranked over, e.g. "batch=1,seq=37" *)
  entries : entry list; (* kernel name -> tuned version list *)
}

let kernels_tuned t = List.length t.entries

let version_to_string (v : Kernel.version) =
  match v.Kernel.sched with
  | None -> v.Kernel.tag
  | Some { Kernel.s_max_domain = Some bound; _ } ->
      Printf.sprintf "%s@<=%d" v.Kernel.tag bound
  | Some { Kernel.s_max_domain = None; _ } -> v.Kernel.tag

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "tuned-plan device=%s\n" t.device);
  Buffer.add_string buf (Printf.sprintf "rungs: %s\n" (String.concat " | " t.rungs));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s\n" e.kname
           (String.concat " -> " (List.map version_to_string e.versions))))
    t.entries;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (to_string t))

let find t kname = List.find_opt (fun e -> e.kname = kname) t.entries

(* Immutable rewrite: fused kernels named in the plan get the tuned
   version list, everything else (library clusters, untuned kernels)
   passes through. The input executable is not mutated. *)
let apply t (e : Executable.t) : Executable.t =
  let items =
    List.map
      (fun item ->
        match item with
        | Executable.Fused k -> (
            match find t k.Kernel.name with
            | Some entry -> Executable.Fused { k with Kernel.versions = entry.versions }
            | None -> item)
        | Executable.Lib _ -> item)
      e.Executable.items
  in
  { e with Executable.items }
