(* Candidate schedule space with hierarchical hardware pruning
   (ROADMAP item 3; Vortex/FTuner-style sample-free tuning).

   A point fixes the launch schedule axes the cost model is sensitive
   to: threads per block, per-thread tile (elements each thread
   processes, which with threads fixes the grid), and the speculation
   flags (float4 vectorization, shuffle tree reduction, persistent
   single-wave mode). The enumeration is *hierarchical*: each loop
   level prunes against the device profile before descending —
   thread counts over [max_threads_per_block] never enumerate tiles,
   vectorized variants only exist on float4-aligned tiles, register
   and shared-memory overflows are rejected before any point is
   scored. Illegal points are therefore never seen by the search. *)

module Device = Gpusim.Device
module Kernel = Codegen.Kernel
module Cluster = Fusion.Cluster

type point = {
  p_threads : int; (* threads per block *)
  p_tile : int; (* elements per thread *)
  p_vectorized : bool;
  p_tree : bool;
  p_persistent : bool;
}

(* Axis ladders. Threads below 64 waste whole warps; tiles above 8 give
   up the occupancy the tuner exists to recover. *)
let thread_candidates = [ 64; 128; 256; 512; 1024 ]
let tile_candidates = [ 1; 2; 4; 8 ]

(* Register model: a base working set plus the per-thread tile buffer;
   float4 staging and the shuffle-tree accumulator each hold a register
   quad. The block's file is threads x regs. *)
let regs_per_thread p =
  24 + (4 * p.p_tile)
  + (if p.p_vectorized then 8 else 0)
  + if p.p_tree then 8 else 0

(* Static shared memory of the schedule: kStitch relays stage each
   thread's tile double-buffered (produce stage N+1 while consuming
   stage N); a tree reduction keeps one float per thread. *)
let smem_bytes ~(kind : Cluster.kind) p =
  (match kind with
  | Cluster.Stitch -> 2 * p.p_threads * p.p_tile * 4
  | _ -> 0)
  + if p.p_tree then p.p_threads * 4 else 0

let legal (d : Device.t) ~has_reduce ~(kind : Cluster.kind) p =
  p.p_threads >= 1 && p.p_tile >= 1
  && p.p_threads <= d.Device.max_threads_per_block
  && ((not p.p_vectorized) || p.p_tile mod 4 = 0)
  && ((not p.p_tree) || has_reduce)
  && p.p_threads * regs_per_thread p <= d.Device.registers_per_block
  && smem_bytes ~kind p <= d.Device.shared_mem_per_block

(* Hierarchical enumeration: prune at the outermost level each
   constraint depends on. Order is fixed, so the space (and everything
   ranked over it) is deterministic. *)
let enumerate (d : Device.t) ~has_reduce ~(kind : Cluster.kind) : point list =
  List.concat_map
    (fun threads ->
      if threads > d.Device.max_threads_per_block then []
      else
        List.concat_map
          (fun tile ->
            List.concat_map
              (fun vectorized ->
                if vectorized && tile mod 4 <> 0 then []
                else
                  List.concat_map
                    (fun tree ->
                      if tree && not has_reduce then []
                      else
                        List.filter_map
                          (fun persistent ->
                            let p =
                              {
                                p_threads = threads;
                                p_tile = tile;
                                p_vectorized = vectorized;
                                p_tree = tree;
                                p_persistent = persistent;
                              }
                            in
                            if
                              threads * regs_per_thread p
                              <= d.Device.registers_per_block
                              && smem_bytes ~kind p <= d.Device.shared_mem_per_block
                            then Some p
                            else None)
                          [ false; true ])
                    [ false; true ])
              [ false; true ])
          tile_candidates)
    thread_candidates

let tag_of p =
  Printf.sprintf "t%d.c%d%s%s%s" p.p_threads p.p_tile
    (if p.p_vectorized then "+vec4" else "")
    (if p.p_tree then "+tree" else "")
    (if p.p_persistent then "+persist" else "")

(* Materialize a point as a guarded kernel version. The runtime guards
   (innermost % 4, pow2 row, small-domain) come from the flags exactly
   as for built-in speculative versions; the window bound narrows the
   version to the shape bucket it won. *)
let version_of ~(kind : Cluster.kind) ?max_domain p : Kernel.version =
  {
    Kernel.tag = tag_of p;
    vectorized = p.p_vectorized;
    tree_reduce = p.p_tree;
    persistent = p.p_persistent;
    sched =
      Some
        {
          Kernel.s_threads = p.p_threads;
          s_tile = p.p_tile;
          s_smem_bytes = smem_bytes ~kind p;
          s_max_domain = max_domain;
        };
  }

(* Re-check an emitted version against the device: the QCheck soak and
   the E22 acceptance gate count versions this rejects (the count must
   be zero — pruning happens before scoring, so nothing illegal should
   ever be emitted). Versions without a schedule are the compiler's own
   speculative set and are vacuously fine. *)
let validate (d : Device.t) ~has_reduce ~(kind : Cluster.kind) (v : Kernel.version) : bool
    =
  match v.Kernel.sched with
  | None -> true
  | Some s ->
      let p =
        {
          p_threads = s.Kernel.s_threads;
          p_tile = s.Kernel.s_tile;
          p_vectorized = v.Kernel.vectorized;
          p_tree = v.Kernel.tree_reduce;
          p_persistent = v.Kernel.persistent;
        }
      in
      legal d ~has_reduce ~kind p && s.Kernel.s_smem_bytes = smem_bytes ~kind p
