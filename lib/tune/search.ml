(* Sample-free schedule search: rank the pruned space with the
   analytical cost model at representative bucket-rung bindings.

   For every fused kernel, every rung scores each legal candidate whose
   runtime guards hold at that rung and keeps the cheapest (ties broken
   by a fixed total order, so the search is deterministic). Adjacent
   rungs (ascending by domain size) that elect the same winner merge
   into one applicability window; the emitted version list is the
   window winners smallest-window-first with the always-valid generic
   version appended, so first-guard-match selection at serve time
   reproduces the per-rung winner exactly — and any off-rung shape
   falls through the guards to a safe version.

   The default schedule (256 threads x 4-element tile, the compiler's
   speculative flags) is itself a point of the space, so a rung's
   winner never costs more than what the untuned kernel would have
   served. A final serving-faithful verification re-plays first-match
   selection at every rung; a kernel whose tuned list would ever serve
   worse than the default keeps its original versions (this fires only
   when distinct rungs share a domain size and disagree on winners). *)

module Table = Symshape.Table
module Graph = Ir.Graph
module Kernel = Codegen.Kernel
module Cluster = Fusion.Cluster
module Cost = Gpusim.Cost
module Executable = Runtime.Executable

type rung = { env : (string * int) list; bnd : Table.binding }

let rung_signature (env : (string * int) list) =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (List.sort compare env))

(* Concrete shape facts of a kernel at a rung. *)
let facts g bnd (k : Kernel.t) =
  let tab = Graph.symtab g in
  let domain = Table.eval_shape tab bnd k.Kernel.cluster.Cluster.domain in
  let domain_numel = Tensor.Shape.numel domain in
  let innermost = if Array.length domain = 0 then 1 else domain.(Array.length domain - 1) in
  let row = Kernel.concrete_row g bnd k in
  (domain_numel, innermost, row)

let cost_of g device bnd (k : Kernel.t) (l : Kernel.launch) =
  Cost.kernel_time_us device (Kernel.work_of g bnd k l)

(* Serve cost under a given version list: first-guard-match selection,
   exactly what the runtime does. *)
let served_cost g device bnd (k : Kernel.t) versions =
  let k' = { k with Kernel.versions } in
  cost_of g device bnd k' (Kernel.launch_for g device bnd k')

(* Deterministic winner: cheapest, then the fixed point order. *)
let better (c1, p1) (c2, p2) =
  Stdlib.compare
    (c1, p1.Space.p_threads, p1.Space.p_tile, p1.Space.p_vectorized, p1.Space.p_tree,
     p1.Space.p_persistent)
    (c2, p2.Space.p_threads, p2.Space.p_tile, p2.Space.p_vectorized, p2.Space.p_tree,
     p2.Space.p_persistent)
  < 0

let tune_kernel g device (rungs : rung list) (k : Kernel.t) : Kernel.version list =
  let kind = k.Kernel.cluster.Cluster.kind in
  let candidates = Space.enumerate device ~has_reduce:k.Kernel.has_reduce ~kind in
  (* per-rung winner over candidates whose guards hold there *)
  let winners =
    List.filter_map
      (fun r ->
        let domain_numel, innermost, row = facts g r.bnd k in
        let best =
          List.fold_left
            (fun best p ->
              let v = Space.version_of ~kind p in
              if not (Kernel.version_guard device v ~innermost ~row ~domain_numel) then
                best
              else
                let c = cost_of g device r.bnd k (Kernel.launch_with g device r.bnd k v) in
                match best with
                | Some b when not (better (c, p) b) -> best
                | _ -> Some (c, p))
            None candidates
        in
        Option.map (fun (_, p) -> (domain_numel, p)) best)
      rungs
  in
  (* ascending by domain, group adjacent equal winners into windows *)
  let winners = List.sort compare winners in
  let groups =
    List.fold_left
      (fun acc (dom, p) ->
        match acc with
        | (hi, q) :: rest when q = p -> (max hi dom, q) :: rest
        | _ -> (dom, p) :: acc)
      [] winners
    |> List.rev
  in
  let n = List.length groups in
  let tuned =
    List.mapi
      (fun i (hi, p) ->
        if i = n - 1 then Space.version_of ~kind p
        else Space.version_of ~kind ~max_domain:hi p)
      groups
    @ [ Kernel.generic_version ]
  in
  if groups = [] then k.Kernel.versions
  else if
    (* serving-faithful verification: the tuned list must never serve a
       rung worse than the untuned kernel would have *)
    List.for_all
      (fun r ->
        served_cost g device r.bnd k tuned
        <= served_cost g device r.bnd k k.Kernel.versions +. 1e-9)
      rungs
  then tuned
  else k.Kernel.versions

let plan ~(device : Gpusim.Device.t) ~(rungs : rung list) (e : Executable.t) : Plan.t =
  let g = e.Executable.g in
  let entries =
    List.filter_map
      (fun item ->
        match item with
        | Executable.Fused k ->
            Some
              {
                Plan.kname = k.Kernel.name;
                versions = tune_kernel g device rungs k;
              }
        | Executable.Lib _ -> None)
      e.Executable.items
  in
  {
    Plan.device = device.Gpusim.Device.name;
    rungs = List.map (fun r -> rung_signature r.env) rungs;
    entries;
  }
