(** Candidate schedule space, hierarchically pruned by the device
    profile so illegal points are never scored ({!enumerate} prunes at
    the outermost loop level each constraint depends on: thread ceiling
    before tiles, float4 alignment before flags, registers and shared
    memory before yielding). *)

type point = {
  p_threads : int;  (** threads per block *)
  p_tile : int;  (** elements each thread processes *)
  p_vectorized : bool;
  p_tree : bool;
  p_persistent : bool;
}

val thread_candidates : int list
val tile_candidates : int list

val regs_per_thread : point -> int
(** Analytical register model: 24 base + 4/tile element + 8 for float4
    staging + 8 for the shuffle-tree accumulator. *)

val smem_bytes : kind:Fusion.Cluster.kind -> point -> int
(** Static shared memory: double-buffered kStitch relay staging
    ([2 x threads x tile x 4] bytes) plus one float per thread for a
    tree reduction. *)

val legal : Gpusim.Device.t -> has_reduce:bool -> kind:Fusion.Cluster.kind -> point -> bool
(** The full constraint conjunction {!enumerate} prunes with. *)

val enumerate :
  Gpusim.Device.t -> has_reduce:bool -> kind:Fusion.Cluster.kind -> point list
(** Every legal point, in a fixed deterministic order. *)

val tag_of : point -> string
(** e.g. ["t64.c1"], ["t256.c4+vec4+tree"]. *)

val version_of :
  kind:Fusion.Cluster.kind -> ?max_domain:int -> point -> Codegen.Kernel.version
(** Materialize a point as a guarded kernel version carrying its
    schedule; [max_domain] narrows it to the shape window it won. *)

val validate :
  Gpusim.Device.t ->
  has_reduce:bool ->
  kind:Fusion.Cluster.kind ->
  Codegen.Kernel.version ->
  bool
(** Re-check an emitted version against the device constraints — the
    QCheck soak and E22's zero-illegal gate. Schedule-free versions
    (the compiler's own speculative set) are vacuously valid. *)
