(** Cost-model ranking of the pruned schedule space at representative
    bucket-rung bindings. Deterministic: same executable, device and
    rungs produce an identical plan. *)

type rung = { env : (string * int) list; bnd : Symshape.Table.binding }

val rung_signature : (string * int) list -> string
(** Sorted ["k=v"] pairs joined with commas — the rung's identity. *)

val tune_kernel :
  Ir.Graph.t ->
  Gpusim.Device.t ->
  rung list ->
  Codegen.Kernel.t ->
  Codegen.Kernel.version list
(** Tuned version list for one kernel: per-rung winners merged into
    applicability windows (smallest first), generic appended. Falls
    back to the kernel's own versions if the tuned list would ever
    serve a rung worse than the default — tuned serve cost at every
    rung is therefore never above the untuned cost. *)

val plan :
  device:Gpusim.Device.t -> rungs:rung list -> Runtime.Executable.t -> Plan.t
(** Tune every fused kernel of the executable (library clusters pass
    through untouched). *)
