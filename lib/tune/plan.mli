(** Tuned-schedule artifact: what the search emits, what the compile
    cache's schedule side table stores, and what replicas adopt on
    prewarm. Byte-stable rendering; immutable application. *)

type entry = { kname : string; versions : Codegen.Kernel.version list }

type t = {
  device : string;  (** device profile name the plan was tuned for *)
  rungs : string list;  (** bucket-rung signatures ranked over *)
  entries : entry list;
}

val kernels_tuned : t -> int

val version_to_string : Codegen.Kernel.version -> string
(** Tag plus applicability window, e.g. ["t64.c1@<=28416"]. *)

val to_string : t -> string
(** Byte-stable rendering — golden tests pin this. *)

val digest : t -> string
(** MD5 hex of {!to_string}: the bit-identity of a tune run. *)

val find : t -> string -> entry option

val apply : t -> Runtime.Executable.t -> Runtime.Executable.t
(** Rewrite the executable's fused kernels to the tuned version lists
    (immutably — the input executable is unchanged). *)
