(* Discrete-event simulation of a single-GPU inference server with
   dynamic batching — the serving pattern that *creates* the dynamic
   shapes this whole system exists for: the batch dimension is however
   many requests were queued, and each other dimension is the max over
   the batched requests (intra-batch padding).

   The server processes one batch at a time: when it becomes free it
   takes up to [max_batch] queued requests, but never waits more than
   [max_wait_us] past the first queued request. Per-request latency =
   queue wait + batch service time (from the provided executor). *)

type policy = {
  max_batch : int;
  max_wait_us : float;
}

type request = {
  arrival_us : float;
  dims : (string * int) list; (* per-request dims, excluding the batch dim *)
}

type outcome = {
  latencies_us : float array; (* per served request, arrival order *)
  makespan_us : float;
  batches : int;
  mean_batch : float;
  actual_elements : int; (* sum over requests of the product of their dims *)
  padded_elements : int; (* sum over batches of the batch-env element count *)
}

(* Padding-waste accounting: a batch executes at the batch env (batch
   dim x per-dim max), so every member shorter than the max computes
   wasted elements. [actual] is each request at its own dims; [padded]
   is what the device actually ran. *)
let request_elements (r : request) =
  List.fold_left (fun acc (_, v) -> acc * v) 1 r.dims

let env_elements (env : (string * int) list) =
  List.fold_left (fun acc (_, v) -> acc * v) 1 env

let padding_waste (o : outcome) =
  if o.padded_elements = 0 then 0.0
  else
    float_of_int (o.padded_elements - o.actual_elements) /. float_of_int o.padded_elements

(* Shape environment of one batch: batch dim = size; others = max.
   Total over heterogeneous batches: the dim set is the union over all
   members (in first-seen order), and a member missing a dim contributes
   the lower bound 1 — so a stray request can no longer kill the server
   with [Not_found]. Mixed batches should be rejected at enqueue time
   ({!validate_request}); this is the second line of defense. *)
let batch_env ~batch_dim (reqs : request list) : (string * int) list =
  let n = List.length reqs in
  if reqs = [] then invalid_arg "batch_env: empty batch";
  let names =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (name, _) -> if List.mem name acc then acc else name :: acc)
          acc r.dims)
      [] reqs
    |> List.rev
  in
  (batch_dim, n)
  :: List.map
       (fun name ->
         ( name,
           List.fold_left
             (fun acc r ->
               match List.assoc_opt name r.dims with Some v -> max acc v | None -> acc)
             1 reqs ))
       names

let simulate ~(arrivals : request list) ~(policy : policy) ~(batch_dim : string)
    ~(service : (string * int) list -> float) : outcome =
  let arrivals =
    List.sort (fun a b -> compare a.arrival_us b.arrival_us) arrivals
  in
  let latencies = Array.make (List.length arrivals) 0.0 in
  let actual_elems = ref 0 and padded_elems = ref 0 in
  let rec loop pending idx t_free batches batched_total =
    match pending with
    | [] ->
        { latencies_us = latencies; makespan_us = t_free; batches;
          mean_batch =
            (if batches = 0 then 0.0 else float_of_int batched_total /. float_of_int batches);
          actual_elements = !actual_elems; padded_elements = !padded_elems }
    | first :: _ ->
        (* the server starts forming a batch when it is free and at
           least one request is queued *)
        let form_start = Float.max t_free first.arrival_us in
        let deadline = form_start +. policy.max_wait_us in
        (* requests that arrive by the deadline may join, up to max_batch *)
        let rec take taken rest n =
          match rest with
          | r :: tl when n < policy.max_batch && r.arrival_us <= deadline ->
              take (r :: taken) tl (n + 1)
          | _ -> (List.rev taken, rest)
        in
        let batch, rest = take [] pending 0 in
        let last_arrival =
          List.fold_left (fun acc r -> Float.max acc r.arrival_us) 0.0 batch
        in
        (* the batch launches when full, or at the deadline, or as soon
           as its members have all arrived — whichever is earliest valid *)
        let launch =
          if List.length batch = policy.max_batch then Float.max form_start last_arrival
          else Float.max form_start (Float.min deadline (Float.max last_arrival form_start))
        in
        let env = batch_env ~batch_dim batch in
        actual_elems := !actual_elems + List.fold_left (fun a r -> a + request_elements r) 0 batch;
        padded_elems := !padded_elems + env_elements env;
        let service_us = service env in
        let done_at = launch +. service_us in
        List.iteri
          (fun k r -> latencies.(idx + k) <- done_at -. r.arrival_us)
          batch;
        loop rest (idx + List.length batch) done_at (batches + 1)
          (batched_total + List.length batch)
  in
  loop arrivals 0 0.0 0 0

(* Poisson-ish arrival generation with per-request dims drawn from a
   distribution spec. *)
let generate_arrivals ~seed ~qps ~n ~(dims : (string * Trace.distribution) list) :
    request list =
  let rng = Trace.create_rng seed in
  let mean_gap_us = 1e6 /. qps in
  let rec go t acc k =
    if k = 0 then List.rev acc
    else
      let gap = -.mean_gap_us *. Float.log (Float.max 1e-9 (Trace.float01 rng)) in
      let t = t +. gap in
      let dims = List.map (fun (name, dist) -> (name, Trace.sample rng dist)) dims in
      go t ({ arrival_us = t; dims } :: acc) (k - 1)
  in
  go 0.0 [] n

let percentile (xs : float array) p =
  let arr = Array.copy xs in
  (* Float.compare, not polymorphic compare: same order on the (finite)
     latencies this ever sees, ~4x faster on the million-sample sorts
     the scale bench does *)
  Array.sort Float.compare arr;
  if Array.length arr = 0 then 0.0
  else arr.(min (Array.length arr - 1) (int_of_float (p *. float_of_int (Array.length arr))))

(* --- overload-aware serving ----------------------------------------------

   The plain [simulate] assumes an infinitely patient queue and a
   service function that always succeeds. Under heavy traffic neither
   holds: the queue must be bounded (shed arrivals beyond it), requests
   carry deadlines (drop work that can no longer meet them), malformed
   requests must be rejected at enqueue time, and the service layer may
   serve a batch on its fallback path. [simulate_server] models all of
   that and accounts for every request exactly once. *)

type disposition =
  | Served (* completed on the compiled path *)
  | Fell_back (* completed on the service's fallback path *)
  | Warmed (* completed during the async-compile warmup window *)
  | Shed (* refused at arrival: queue at capacity *)
  | Expired (* dropped at dequeue: deadline already passed *)
  | Rejected (* refused at enqueue: malformed dim set *)

let disposition_to_string = function
  | Served -> "served"
  | Fell_back -> "fell_back"
  | Warmed -> "warmed"
  | Shed -> "shed"
  | Expired -> "expired"
  | Rejected -> "rejected"

type server_policy = {
  batching : policy;
  queue_bound : int; (* pending-queue capacity; arrivals beyond are shed *)
  deadline_us : float; (* relative per-request deadline; infinity = none *)
}

let default_server_policy ~batching =
  { batching; queue_bound = max_int; deadline_us = Float.infinity }

type accounting = {
  dispositions : disposition array; (* per request, arrival order *)
  request_latencies_us : float array; (* nan for requests that never completed *)
  served : int;
  fell_back : int;
  warmed : int;
  shed : int;
  expired : int;
  rejected : int;
  server_makespan_us : float;
  server_batches : int;
  server_mean_batch : float;
}

let accounting_to_string (a : accounting) =
  Printf.sprintf
    "served=%d fell_back=%d warmed=%d shed=%d expired=%d rejected=%d batches=%d \
     mean_batch=%.1f makespan=%.0fus"
    a.served a.fell_back a.warmed a.shed a.expired a.rejected a.server_batches
    a.server_mean_batch a.server_makespan_us

(* Structured enqueue-time validation: a request must bind exactly the
   expected dim names, each once, with positive values. *)
let validate_request ~(expected : string list) (r : request) : (unit, string) result =
  let names = List.map fst r.dims in
  let missing = List.filter (fun e -> not (List.mem e names)) expected in
  let extra = List.filter (fun n -> not (List.mem n expected)) names in
  let dup =
    List.filter (fun n -> List.length (List.filter (String.equal n) names) > 1) names
  in
  let bad = List.filter (fun (_, v) -> v < 1) r.dims in
  if missing <> [] then
    Error (Printf.sprintf "missing dims: %s" (String.concat "," missing))
  else if extra <> [] then
    Error (Printf.sprintf "unknown dims: %s" (String.concat "," extra))
  else if dup <> [] then
    Error (Printf.sprintf "duplicate dims: %s" (String.concat "," dup))
  else if bad <> [] then
    Error
      (Printf.sprintf "non-positive dims: %s"
         (String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) bad)))
  else Ok ()

let simulate_server ~(arrivals : request list) ~(policy : server_policy)
    ~(batch_dim : string) ?expected_dims
    ?(warmup : (float * ((string * int) list -> float)) option)
    ~(service : (string * int) list -> float * [ `Compiled | `Fallback ]) () : accounting =
  let arrivals = List.sort (fun a b -> compare a.arrival_us b.arrival_us) arrivals in
  let n = List.length arrivals in
  let disp = Array.make n Shed in
  let lats = Array.make n Float.nan in
  (* Queue-depth gauge (with high-water mark) sampled at every admission
     and dequeue; the simulation itself never pays more than the branch. *)
  let obs = Obs.Scope.on () in
  let peak_depth = ref 0 in
  let note_depth d =
    if obs then begin
      if d > !peak_depth then peak_depth := d;
      Obs.Scope.gauge "queue.depth" (float_of_int d)
    end
  in
  let expected =
    match expected_dims with
    | Some e -> e
    | None -> ( match arrivals with [] -> [] | r :: _ -> List.map fst r.dims)
  in
  let bound = max 1 policy.queue_bound in
  let deadline_of (r : request) = r.arrival_us +. policy.deadline_us in
  (* enqueue-time validation: malformed requests never reach the queue *)
  let indexed =
    List.filteri
      (fun _ _ -> true)
      (List.mapi (fun i r -> (i, r)) arrivals)
    |> List.filter (fun (i, r) ->
           match validate_request ~expected r with
           | Ok () -> true
           | Error _ ->
               disp.(i) <- Rejected;
               false)
  in
  (* Chronological loop: one batch per iteration. Arrivals are admitted
     in order as simulated time reaches them, so the queue-occupancy
     check at each admission is exact. *)
  let rec loop queue upcoming t_free batches batched_total =
    match (queue, upcoming) with
    | [], [] -> (t_free, batches, batched_total)
    | [], a :: rest ->
        (* idle server: the next arrival opens a fresh queue (bound >= 1) *)
        loop [ a ] rest t_free batches batched_total
    | (_, first) :: _, _ -> (
        let form_start = Float.max t_free first.arrival_us in
        let window_end = form_start +. policy.batching.max_wait_us in
        (* admit (or shed) arrivals up to the formation deadline *)
        let rec admit q up =
          match up with
          | (i, r) :: rest when r.arrival_us <= window_end ->
              if List.length q >= bound then begin
                disp.(i) <- Shed;
                admit q rest
              end
              else admit (q @ [ (i, r) ]) rest
          | _ -> (q, up)
        in
        let queue, upcoming = admit queue upcoming in
        note_depth (List.length queue);
        (* expire queued requests whose deadline passed before service *)
        let live, dead =
          List.partition (fun (_, r) -> deadline_of r >= form_start) queue
        in
        List.iter (fun (i, _) -> disp.(i) <- Expired) dead;
        match live with
        | [] -> loop [] upcoming (Float.max t_free form_start) batches batched_total
        | _ ->
            let rec take taken rest k =
              match rest with
              | r :: tl when k < policy.batching.max_batch -> take (r :: taken) tl (k + 1)
              | _ -> (List.rev taken, rest)
            in
            let batch, remaining = take [] live 0 in
            let last_arrival =
              List.fold_left (fun acc (_, r) -> Float.max acc r.arrival_us) 0.0 batch
            in
            let launch =
              if List.length batch = policy.batching.max_batch then
                Float.max form_start last_arrival
              else
                Float.max form_start
                  (Float.min window_end (Float.max last_arrival form_start))
            in
            let env = batch_env ~batch_dim (List.map snd batch) in
            (* during the async-compile window (batch launches before the
               artifact is ready), the warmup service — typically the
               reference-fallback cost — serves the batch *)
            let service_us, bdisp =
              match warmup with
              | Some (until_us, warm_service) when launch < until_us ->
                  (warm_service env, Warmed)
              | _ ->
                  let us, spath = service env in
                  (us, match spath with `Compiled -> Served | `Fallback -> Fell_back)
            in
            let done_at = launch +. service_us in
            List.iter
              (fun (i, r) ->
                lats.(i) <- done_at -. r.arrival_us;
                disp.(i) <- bdisp)
              batch;
            note_depth (List.length remaining);
            loop remaining upcoming done_at (batches + 1)
              (batched_total + List.length batch))
  in
  let makespan, batches, batched_total = loop [] indexed 0.0 0 0 in
  let count d = Array.fold_left (fun acc x -> if x = d then acc + 1 else acc) 0 disp in
  if obs then begin
    (* Per-request end-to-end spans on the server track, stamped at the
       simulation's own arrival clock, plus one disposition counter per
       request. Dropped requests get a zero-length marker span. *)
    Obs.Trace.set_track_name Obs.Trace.global 1 "server";
    Obs.Scope.gauge "queue.depth.peak" (float_of_int !peak_depth);
    let arr = Array.of_list arrivals in
    Array.iteri
      (fun i d ->
        Obs.Scope.count (Printf.sprintf "queue.%s" (disposition_to_string d));
        let dur = if Float.is_nan lats.(i) then 0.0 else lats.(i) in
        Obs.Scope.span ~track:1 ~cat:"queue" ~ts:arr.(i).arrival_us
          ~args:[ ("disposition", disposition_to_string d) ]
          ~dur_us:dur
          (Printf.sprintf "request#%d" i);
        if not (Float.is_nan lats.(i)) then Obs.Scope.observe "queue.latency_us" lats.(i))
      disp
  end;
  {
    dispositions = disp;
    request_latencies_us = lats;
    served = count Served;
    fell_back = count Fell_back;
    warmed = count Warmed;
    shed = count Shed;
    expired = count Expired;
    rejected = count Rejected;
    server_makespan_us = makespan;
    server_batches = batches;
    server_mean_batch =
      (if batches = 0 then 0.0 else float_of_int batched_total /. float_of_int batches);
  }
