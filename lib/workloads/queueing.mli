(** Discrete-event simulation of an inference server with dynamic
    batching — the serving pattern that creates dynamic shapes (batch =
    queue depth, other dims = intra-batch max). *)

type policy = {
  max_batch : int;
  max_wait_us : float;  (** max delay past the first queued request *)
}

type request = {
  arrival_us : float;
  dims : (string * int) list;  (** per-request dims, excluding batch *)
}

type outcome = {
  latencies_us : float array;  (** per served request, arrival order *)
  makespan_us : float;
  batches : int;
  mean_batch : float;
  actual_elements : int;  (** sum over requests of the product of their dims *)
  padded_elements : int;  (** sum over batches of the batch-env element count *)
}

val request_elements : request -> int
(** Product of the request's dim values (1 for an empty dim list). *)

val env_elements : (string * int) list -> int
(** Product of a shape environment's dim values. *)

val padding_waste : outcome -> float
(** Fraction of executed elements that were intra-batch padding:
    [(padded - actual) / padded], 0 with no batches. *)

val batch_env : batch_dim:string -> request list -> (string * int) list
(** Shape of one formed batch: batch dim = size, others = max over
    members. Total over heterogeneous batches (the dim set is the union
    over members; a missing dim contributes 1).
    @raise Invalid_argument on an empty batch. *)

val simulate :
  arrivals:request list ->
  policy:policy ->
  batch_dim:string ->
  service:((string * int) list -> float) ->
  outcome
(** Single server, one batch at a time; [service] returns the batch
    execution latency in µs (e.g. from {!Disc.Session.serve}). *)

val generate_arrivals :
  seed:int -> qps:float -> n:int -> dims:(string * Trace.distribution) list -> request list
(** Poisson arrivals with per-request dims drawn from [dims]. *)

val percentile : float array -> float -> float

(** {1 Overload-aware serving}

    {!simulate} assumes an unbounded, infinitely patient queue. The
    server simulation below bounds the queue (shedding excess load),
    enforces per-request deadlines (expiring stale work at dequeue
    time), rejects malformed requests at enqueue time, and accounts
    for every request exactly once. *)

type disposition =
  | Served  (** completed on the compiled path *)
  | Fell_back  (** completed on the service's fallback path *)
  | Warmed  (** completed during the async-compile warmup window *)
  | Shed  (** refused at arrival: queue at capacity *)
  | Expired  (** dropped at dequeue: deadline already passed *)
  | Rejected  (** refused at enqueue: malformed dim set *)

val disposition_to_string : disposition -> string

type server_policy = {
  batching : policy;
  queue_bound : int;  (** pending-queue capacity; arrivals beyond are shed *)
  deadline_us : float;  (** relative per-request deadline; [infinity] = none *)
}

val default_server_policy : batching:policy -> server_policy
(** Unbounded queue, no deadline — behaves like {!simulate}. *)

type accounting = {
  dispositions : disposition array;  (** per request, arrival order *)
  request_latencies_us : float array;  (** [nan] for requests that never completed *)
  served : int;
  fell_back : int;
  warmed : int;
  shed : int;
  expired : int;
  rejected : int;
  server_makespan_us : float;
  server_batches : int;
  server_mean_batch : float;
}

val accounting_to_string : accounting -> string

val validate_request :
  expected:string list -> request -> (unit, string) result
(** Enqueue-time validation: the request must bind exactly the expected
    dim names, each once, with positive values. *)

val simulate_server :
  arrivals:request list ->
  policy:server_policy ->
  batch_dim:string ->
  ?expected_dims:string list ->
  ?warmup:float * ((string * int) list -> float) ->
  service:((string * int) list -> float * [ `Compiled | `Fallback ]) ->
  unit ->
  accounting
(** Bounded-queue, deadline-aware variant of {!simulate}. [service]
    returns the batch latency in µs plus which path served it (e.g.
    from {!Disc.Session.serve_result}). [expected_dims] defaults to the
    first arrival's dim names. Every request ends in exactly one
    disposition.

    [warmup = (until_us, warmup_service)] models an async compile in
    flight: batches that {e launch} before [until_us] are served by
    [warmup_service] (typically the reference-fallback cost, e.g. a
    {!Disc.Session} created with [~async_compile:true]) and accounted
    as [Warmed]; later batches use [service] as usual.

    When observability is on ({!Obs.Scope}), the run also records a
    [queue.depth] gauge (plus [queue.depth.peak]), one
    [queue.served/fell_back/shed/expired/rejected] counter bump per
    request, a [queue.latency_us] histogram, and a per-request
    end-to-end span on the "server" trace track stamped at the
    simulation's arrival clock. *)
