(** Canonical structural fingerprint of a graph — the identity the
    compilation cache is keyed on.

    The fingerprint is {e invariant} under node-id renumbering, symbol
    renaming (cloning into a fresh symbol table), dead code, and
    param-preserving instruction reordering; it is {e sensitive} to the
    op sequence and payloads (constants included), dtypes, the symbolic
    shape structure (dimension-equality classes, product facts recorded
    by reshapes) and each symbol's distribution constraints (lb / ub /
    likely values). Two graphs with equal fingerprints compile to
    interchangeable artifacts under equal compiler options. *)

val canonical : ?dims:(string * Symshape.Sym.dim) list -> Graph.t -> string
(** The canonical textual form the digest is taken over: value-numbered
    instructions in DFS post-order from parameters then outputs,
    canonically renamed symbols, sorted product facts. [dims] appends
    the serving-level named dynamic dims (name → canonical symbol), so
    a cache key can also pin the request-binding surface. Mostly useful
    for debugging fingerprint mismatches. *)

val fingerprint : ?dims:(string * Symshape.Sym.dim) list -> Graph.t -> string
(** Hex digest of {!canonical}. *)
