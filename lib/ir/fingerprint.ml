(* Canonical structural fingerprint of a graph — the identity the
   compilation cache is keyed on.

   The canonical form is produced by a deterministic traversal that is
   independent of every accidental artifact of construction:

   - {b node ids}: instructions are value-numbered in post-order of a
     DFS that starts from the parameters (in parameter order) and then
     the outputs (in output order). Dead instructions never appear, so
     renumbering, interleaved-and-removed junk, and param-preserving
     reordering all canonicalize identically.
   - {b symbol names/ids}: symbolic dims are resolved through the
     union-find table and renamed [d0, d1, ...] in first-encounter
     order of the canonical traversal, so alpha-renaming (a clone's
     fresh symbol table) is invisible.
   - {b fact order}: product-equality facts are rendered in canonical
     symbols, normalized per fact, and sorted before hashing.

   It is deliberately {e sensitive} to everything a compile result
   depends on: the op sequence and op payloads (including constants),
   dtypes, the symbolic shape structure (which dims are provably equal),
   each symbol's distribution constraints (lb/ub/likely — they steer
   kStitch feasibility and speculation), and the product facts recorded
   by reshapes. Compiler options are hashed separately by the cache
   (they live above the IR). *)

module Sym = Symshape.Sym
module Table = Symshape.Table

type ctx = {
  tab : Table.t;
  sym_ids : (int, int) Hashtbl.t; (* table root -> canonical index *)
  mutable sym_order : int list; (* roots in reverse canonical order *)
  mutable next_sym : int;
}

let canon_dim ctx (d : Sym.dim) : string =
  match Table.resolve ctx.tab d with
  | Sym.Static v -> string_of_int v
  | Sym.Sym root ->
      let id =
        match Hashtbl.find_opt ctx.sym_ids root with
        | Some id -> id
        | None ->
            let id = ctx.next_sym in
            ctx.next_sym <- id + 1;
            Hashtbl.add ctx.sym_ids root id;
            ctx.sym_order <- root :: ctx.sym_order;
            id
      in
      Printf.sprintf "d%d" id

let canon_shape ctx (s : Sym.shape) =
  "[" ^ String.concat "x" (List.map (canon_dim ctx) (Array.to_list s)) ^ "]"

(* Op payloads that embed shapes must render them canonically; all other
   payloads are raw-symbol-free and reuse [Op.to_string]. *)
let canon_op ctx (op : Op.t) =
  match op with
  | Op.Iota { out; dim } -> Printf.sprintf "iota(%s,dim=%d)" (canon_shape ctx out) dim
  | Op.Broadcast { dims; out } ->
      Printf.sprintf "broadcast([%s],%s)"
        (String.concat "," (List.map string_of_int (Array.to_list dims)))
        (canon_shape ctx out)
  | Op.Reshape out -> Printf.sprintf "reshape(%s)" (canon_shape ctx out)
  | other -> Op.to_string other

let canonical ?(dims : (string * Sym.dim) list = []) (g : Graph.t) : string =
  let ctx =
    { tab = Graph.symtab g; sym_ids = Hashtbl.create 32; sym_order = []; next_sym = 0 }
  in
  let buf = Buffer.create 4096 in
  let value_no : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_v = ref 0 in
  let rec visit id =
    match Hashtbl.find_opt value_no id with
    | Some v -> v
    | None ->
        let i = Graph.inst g id in
        let args = Array.map visit i.Graph.args in
        (* post-order: operand lines are already emitted *)
        let v = !next_v in
        incr next_v;
        Hashtbl.add value_no id v;
        Buffer.add_string buf
          (Printf.sprintf "v%d:%s%s=%s(%s)\n" v
             (Tensor.Dtype.to_string i.Graph.dtype)
             (canon_shape ctx i.Graph.shape)
             (canon_op ctx i.Graph.op)
             (String.concat ","
                (Array.to_list (Array.map (Printf.sprintf "v%d") args))));
        v
  in
  List.iter (fun (pid, _) -> ignore (visit pid)) (Graph.parameters g);
  List.iter (fun o -> ignore (visit o)) (Graph.outputs g);
  Buffer.add_string buf
    (Printf.sprintf "return %s\n"
       (String.concat ","
          (List.map (fun o -> Printf.sprintf "v%d" (Hashtbl.find value_no o)) (Graph.outputs g))));
  (* named dynamic dims (the serving-level binding surface), if given *)
  List.iter
    (fun (name, d) ->
      Buffer.add_string buf (Printf.sprintf "dim %s=%s\n" name (canon_dim ctx d)))
    dims;
  (* distribution constraints of every canonical symbol, in canonical order *)
  List.iter
    (fun root ->
      let d = Sym.Sym root in
      Buffer.add_string buf
        (Printf.sprintf "sym d%d lb=%d ub=%s likely=%s\n"
           (Hashtbl.find ctx.sym_ids root)
           (Table.lower_bound ctx.tab d)
           (match Table.upper_bound ctx.tab d with
           | Some u -> string_of_int u
           | None -> "-")
           (String.concat ","
              (List.map string_of_int (Table.likely_values ctx.tab d)))))
    (List.rev ctx.sym_order);
  (* product facts: canonical symbols, per-side sort, side sort, fact
     sort — recording order and raw ids cannot leak in. Symbols that
     never appear in a live shape render as "u" (unreachable). *)
  let fact_dim d =
    match Table.resolve ctx.tab d with
    | Sym.Static v -> string_of_int v
    | Sym.Sym root -> (
        match Hashtbl.find_opt ctx.sym_ids root with
        | Some id -> Printf.sprintf "d%d" id
        | None -> "u")
  in
  let fact_side side =
    String.concat "*"
      (List.sort Stdlib.compare (List.map fact_dim (Array.to_list side)))
  in
  let facts =
    List.map
      (fun (a, b) ->
        let sa = fact_side a and sb = fact_side b in
        if Stdlib.compare sa sb <= 0 then sa ^ "=" ^ sb else sb ^ "=" ^ sa)
      (Table.product_facts ctx.tab)
  in
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "fact %s\n" f))
    (List.sort_uniq Stdlib.compare facts);
  Buffer.contents buf

let fingerprint ?dims (g : Graph.t) : string =
  Digest.to_hex (Digest.string (canonical ?dims g))
