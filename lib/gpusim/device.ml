(* Analytical GPU device profiles. Numbers are public datasheet values
   for the two boards the paper evaluates on; latencies are typical
   figures for CUDA kernel dispatch. The evaluation only relies on
   *relative* behaviour, so the profiles need to be plausible, not
   cycle-exact. *)

type t = {
  name : string;
  sm_count : int;
  fp32_tflops : float; (* peak fp32 throughput *)
  fp16_tflops : float;
  mem_bandwidth_gbs : float; (* HBM/GDDR bandwidth, GB/s *)
  kernel_launch_us : float; (* host->device kernel dispatch latency *)
  kernel_tail_us : float; (* fixed per-kernel ramp/drain cost *)
  shared_mem_per_block : int; (* bytes usable for kStitch relays *)
  max_threads_per_block : int; (* launch-legality ceiling on blockDim *)
  registers_per_block : int; (* register file per block (threads x regs) *)
  l2_bytes : int;
  memory_bytes : int; (* device memory capacity *)
}

let a10 =
  {
    name = "A10";
    sm_count = 72;
    fp32_tflops = 31.2;
    fp16_tflops = 125.0;
    mem_bandwidth_gbs = 600.0;
    kernel_launch_us = 3.5;
    kernel_tail_us = 1.2;
    shared_mem_per_block = 48 * 1024;
    max_threads_per_block = 1024;
    registers_per_block = 64 * 1024;
    l2_bytes = 6 * 1024 * 1024;
    memory_bytes = 24 * 1024 * 1024 * 1024;
  }

let t4 =
  {
    name = "T4";
    sm_count = 40;
    fp32_tflops = 8.1;
    fp16_tflops = 65.0;
    mem_bandwidth_gbs = 320.0;
    kernel_launch_us = 3.5;
    kernel_tail_us = 1.5;
    shared_mem_per_block = 48 * 1024;
    max_threads_per_block = 1024;
    registers_per_block = 64 * 1024;
    l2_bytes = 4 * 1024 * 1024;
    memory_bytes = 16 * 1024 * 1024 * 1024;
  }

(* CPU deployment target (the paper also evaluates x86 inference).
   "SMs" are cores; "blocks" are parallel loop chunks; kernel dispatch
   is a function call, so launch latency is tiny but per-core throughput
   is far below a GPU's. Shared memory maps to per-core L2 (stitch
   fusion = cache-resident stage pipelining). *)
let xeon =
  {
    name = "Xeon-8375C";
    sm_count = 32;
    fp32_tflops = 2.4;
    fp16_tflops = 4.8;
    mem_bandwidth_gbs = 140.0;
    kernel_launch_us = 0.4;
    kernel_tail_us = 0.3;
    shared_mem_per_block = 1024 * 1024;
    max_threads_per_block = 256; (* parallel loop chunk width, not a warp grid *)
    registers_per_block = 32 * 1024;
    l2_bytes = 48 * 1024 * 1024;
    memory_bytes = 256 * 1024 * 1024 * 1024;
  }

let by_name = function
  | "A10" | "a10" -> Some a10
  | "T4" | "t4" -> Some t4
  | "CPU" | "cpu" | "xeon" -> Some xeon
  | _ -> None
