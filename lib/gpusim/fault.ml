(* Deterministic fault injection for the simulated device.

   Production GPUs fail in ways a serving stack must absorb: sporadic
   kernel-launch failures (driver hiccups, ECC retirement, Xid errors)
   and allocation failures under memory pressure. The simulator has no
   real hardware to fail, so this module *injects* faults from a seeded
   counter-based stream: every draw advances a counter and hashes
   (seed, counter) to a uniform float, making the whole fault schedule a
   pure function of the config and the sequence of draws. Tests rely on
   that determinism to exercise every failure path reproducibly. *)

type config = {
  seed : int;
  kernel_fault_rate : float; (* P(launch failure) per kernel launch *)
  oom_rate : float; (* P(allocation failure) per request *)
}

let none = { seed = 0; kernel_fault_rate = 0.0; oom_rate = 0.0 }

let create ?(seed = 0) ?(kernel_fault_rate = 0.0) ?(oom_rate = 0.0) () =
  if kernel_fault_rate < 0.0 || kernel_fault_rate > 1.0 then
    invalid_arg "Fault.create: kernel_fault_rate must be in [0,1]";
  if oom_rate < 0.0 || oom_rate > 1.0 then
    invalid_arg "Fault.create: oom_rate must be in [0,1]";
  { seed; kernel_fault_rate; oom_rate }

type t = {
  mutable config : config;
  mutable draws : int; (* counter: position in the fault stream *)
  mutable kernel_faults : int;
  mutable ooms : int;
}

let make config = { config; draws = 0; kernel_faults = 0; ooms = 0 }

(* Chaos events (a device turning flaky mid-run) retune the rates of a
   live injector. The stream position is kept: the schedule stays a pure
   function of (seed, draw index, rate at that draw), so a run replaying
   the same rate changes at the same draws is bit-identical. *)
let set_rates t ~kernel_fault_rate ~oom_rate =
  if kernel_fault_rate < 0.0 || kernel_fault_rate > 1.0 then
    invalid_arg "Fault.set_rates: kernel_fault_rate must be in [0,1]";
  if oom_rate < 0.0 || oom_rate > 1.0 then
    invalid_arg "Fault.set_rates: oom_rate must be in [0,1]";
  t.config <- { t.config with kernel_fault_rate; oom_rate }

let rates t = (t.config.kernel_fault_rate, t.config.oom_rate)

(* SplitMix64 finalizer over (seed, counter): a high-quality stateless
   hash, so each draw is an independent-looking uniform in [0,1). *)
let uniform seed counter =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int (counter + 1)) 0xD1B54A32D192ED03L)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let draw t =
  let u = uniform t.config.seed t.draws in
  t.draws <- t.draws + 1;
  u

let kernel_fault t ~kernel:_ =
  let hit = t.config.kernel_fault_rate > 0.0 && draw t < t.config.kernel_fault_rate in
  if hit then t.kernel_faults <- t.kernel_faults + 1;
  hit

let request_oom t =
  let hit = t.config.oom_rate > 0.0 && draw t < t.config.oom_rate in
  if hit then t.ooms <- t.ooms + 1;
  hit

let kernel_faults_injected t = t.kernel_faults
let ooms_injected t = t.ooms
let draws t = t.draws
let stream_uniform ~seed ~counter = uniform seed counter
