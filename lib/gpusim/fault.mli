(** Deterministic, seeded fault injection for the simulated device.

    Faults are drawn from a counter-based hash stream: the schedule is a
    pure function of the {!config} and the sequence of draws, so failure
    paths are exactly reproducible in tests. An injector is mutable
    (it advances its counter per draw) — share one per session/run. *)

type config = {
  seed : int;
  kernel_fault_rate : float;  (** P(launch failure) per kernel launch, in [0,1] *)
  oom_rate : float;  (** P(allocation failure) per request, in [0,1] *)
}

val none : config
(** All rates zero: never injects. *)

val create : ?seed:int -> ?kernel_fault_rate:float -> ?oom_rate:float -> unit -> config
(** @raise Invalid_argument if a rate is outside [0,1]. *)

type t
(** A fault injector: the config plus the stream position. *)

val make : config -> t

val kernel_fault : t -> kernel:string -> bool
(** Advance the stream one draw; [true] means this kernel launch fails. *)

val request_oom : t -> bool
(** Advance the stream one draw; [true] means this request's allocation
    fails (memplan / arena OOM). *)

val set_rates : t -> kernel_fault_rate:float -> oom_rate:float -> unit
(** Retune a live injector (a device turning flaky mid-run under chaos
    injection). The stream position is preserved, so a run replaying the
    same rate changes at the same draws is bit-identical.
    @raise Invalid_argument if a rate is outside [0,1]. *)

val rates : t -> float * float
(** Current [(kernel_fault_rate, oom_rate)]. *)

val kernel_faults_injected : t -> int
val ooms_injected : t -> int
val draws : t -> int

val stream_uniform : seed:int -> counter:int -> float
(** The raw counter-hash stream: an independent-looking uniform in
    [0,1) for every (seed, counter) pair. Exposed so other deterministic
    schedulers (e.g. {!Serving.Chaos}) share the same high-quality
    stateless generator. *)
