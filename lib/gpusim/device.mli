(** Simulated GPU device profiles (the paper's A10 and T4 testbeds). *)

type t = {
  name : string;
  sm_count : int;
  fp32_tflops : float;
  fp16_tflops : float;
  mem_bandwidth_gbs : float;
  kernel_launch_us : float;
  kernel_tail_us : float;
  shared_mem_per_block : int;
  max_threads_per_block : int;
  registers_per_block : int;
  l2_bytes : int;
  memory_bytes : int;
}

val a10 : t

val t4 : t

val xeon : t
(** CPU deployment target: cores as "SMs", function-call dispatch,
    L2-resident stitch stages. *)

val by_name : string -> t option
