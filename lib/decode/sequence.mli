(** Per-sequence state of one generation request: a prompt to prefill,
    then [max_new] tokens decoded one step at a time. The
    {!Scheduler} owns all mutation. *)

type phase =
  | Waiting  (** arrived, prompt not yet prefilled *)
  | Decoding  (** prefilled; joins decode batches until done *)
  | Finished  (** produced [max_new] tokens *)
  | Lost  (** a dispatch it belonged to failed; terminal *)

type t = {
  id : int;
  arrival_us : float;
  prompt : int;  (** prompt length in tokens *)
  max_new : int;  (** tokens to generate (the prefill's first counts) *)
  cls : Serving.Slo.cls;
  mutable phase : phase;
  mutable generated : int;
  mutable kv_len : int;  (** current KV-cache length (prompt + generated) *)
  mutable worker : int;  (** pinned decode worker (KV locality); -1 = none *)
  mutable ttft_us : float;  (** arrival -> first token; [nan] until prefilled *)
  mutable last_token_us : float;
  mutable finished_us : float;  (** [nan] until [Finished] *)
  mutable gaps_us : float list;  (** inter-token gaps, newest first *)
}

val create :
  id:int -> arrival_us:float -> prompt:int -> max_new:int -> cls:Serving.Slo.cls -> t
(** @raise Invalid_argument unless [prompt >= 1] and [max_new >= 1]. *)

val active : t -> bool
(** In [Decoding] — eligible for the next decode batch. *)

val note_prefilled : t -> now:float -> unit
(** Prefill completed: first token out (TTFT stops), cache holds
    [prompt + 1] slots; finishes immediately when [max_new = 1]. *)

val note_token : t -> now:float -> unit
(** One decode step completed: one token, one cache slot, one TPOT gap;
    finishes on the [max_new]-th token. *)

val note_lost : t -> unit
