(** Token-level scheduling of autoregressive decoding.

    Two modes over one deterministic virtual-time discrete-event loop:

    - [Static]: request-level batching — a worker prefills a batch and
      decodes the {e same} member set until every member finishes
      (wasted slots, head-of-line blocking on TTFT). The baseline.
    - [Continuous]: iteration-level scheduling — the decode batch is
      re-formed between steps; sequences join when their prefill lands
      and leave when they finish. Prefill and decode run on disjoint
      workers with separate SLO budgets (TTFT / TPOT).

    Both graphs compile once over symbolic dims and are served at every
    shape; the KV-cache dim grows per step and {!Serving.Bucket}
    rounding keeps its signature alphabet finite. All sessions share
    one {!Disc.Compile_cache}, so the two graphs compile exactly once
    across the fleet — never once per token. *)

type mode = Continuous | Static

val mode_to_string : mode -> string

type config = {
  mode : mode;
  devices : Gpusim.Device.t list;  (** one worker per device *)
  prefill_workers : int;
      (** continuous: the first K devices prefill-only, the rest
          decode-only; must satisfy [1 <= K < devices] *)
  max_prefill_batch : int;
  max_decode_batch : int;
  batch_scheme : Serving.Bucket.scheme;
  prompt_scheme : Serving.Bucket.scheme;  (** prefill [seq] dim *)
  cache_scheme : Serving.Bucket.scheme;  (** decode KV-cache dim *)
  decode_slo : Serving.Slo.decode_policy;
  cold_warmup_us : float;
      (** first dispatch of a signature on a worker pays this once *)
  options : Disc.Compiler.options option;
}

val default_config : devices:Gpusim.Device.t list -> config
(** Continuous, 1 prefill worker, prefill batch 4 / decode batch 16,
    Pow2 batch+prompt buckets, Linear-64 cache buckets, default decode
    SLOs, 1.5 ms cold warmup. *)

type request = {
  arrival_us : float;
  prompt : int;
  max_new : int;
  cls : Serving.Slo.cls;
}

val dim_bound : Models.Common.built -> string -> int
(** Upper bound of a named dynamic dim in the built model's symbol
    table ([max_int] if unbounded) — what callers clamp request shapes
    against before {!run} validates them.
    @raise Invalid_argument if the model has no such dim. *)

val of_pool_requests :
  seq_ub:int -> cache_ub:int -> Serving.Pool.request list -> request list
(** Adapt a {!Serving.Pool} request stream (e.g. from
    {!Serving.Trace_gen.generate}) to decode requests: dim ["prompt"]
    becomes the prompt length and ["new"] the generation length
    (defaults 16), clamped into [1, seq_ub] / [1, cache_ub - prompt] so
    every adapted request passes {!run}'s bound validation. Arrivals
    and SLO classes pass through untouched.
    @raise Invalid_argument if [cache_ub < 2]. *)

val gen_requests :
  seed:int ->
  qps:float ->
  n:int ->
  prompt:Workloads.Trace.distribution ->
  max_new:Workloads.Trace.distribution ->
  request list
(** Deterministic stream: Poisson arrivals at [qps], prompt/generation
    lengths drawn per request, fixed class mix (30% interactive, 60%
    standard, 10% best-effort). Same seed, same stream. *)

type report = {
  mode : mode;
  workers : int;
  sequences : int;
  finished : int;
  lost : int;  (** dispatch failures — acceptance requires 0 *)
  tokens : int;
  makespan_us : float;
  tokens_per_s : float;
  ttft_p50_us : float;
  ttft_p99_us : float;
  tpot_p50_us : float;
  tpot_p99_us : float;
  ttft_ok : int;  (** finished sequences within their class TTFT budget *)
  tpot_ok : int;  (** token gaps within their class TPOT budget *)
  tpot_total : int;
  prefill_batches : int;
  decode_steps : int;
  mean_decode_batch : float;  (** active members per decode step *)
  decode_slot_waste : float;
      (** padded batch slots that held no active member — static
          batching's finished-member drag *)
  signatures : int;  (** distinct dispatched shape signatures *)
  dispatches : int;
  cold_dispatches : int;
  warm_rate : float;
  cache : Disc.Compile_cache.stats;  (** shared across every session *)
  seq_log : (int * float * float * int) list;
      (** per finished sequence: id, TTFT, finish time, tokens *)
}

val digest : report -> string
(** Canonical rendering of [seq_log] — the bit-identical-rerun
    identity of a run. *)

val report_to_string : report -> string

val run :
  ?cache:Disc.Compile_cache.t ->
  prefill:(unit -> Models.Common.built) ->
  decode:(unit -> Models.Common.built) ->
  config ->
  request list ->
  report
(** Simulate the full request stream to completion. [prefill]/[decode]
    are builders (e.g. [Models.Gpt2.build] / [Models.Gpt2.build_decode])
    called once per session; the shared compile cache (a fresh one when
    [?cache] is omitted) makes every build after the first a compile
    hit. When the decode cache dim carries the monotone-growth fact
    ({!Symshape.Table.set_growing}), decode sessions pre-ingest the
    {!Serving.Bucket.ladder} as likely-value hints.
    @raise Invalid_argument on a malformed config or a request whose
    [prompt + max_new] exceeds the cache bound. *)
