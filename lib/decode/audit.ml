(* Internal-consistency audit of a decode run's report: every invariant
   here is implied by the scheduler's own event-loop bookkeeping, so a
   violation means the report lied — a conservation bug, a dropped
   sequence, or stats that drifted from the log they summarize. The
   scale harness runs this over million-token reports where eyeballing
   is impossible. *)

let check (r : Scheduler.report) : (unit, string list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  (* conservation: every sequence either finished or was lost *)
  if r.Scheduler.finished + r.Scheduler.lost <> r.Scheduler.sequences then
    err "conservation: finished %d + lost %d <> sequences %d" r.Scheduler.finished
      r.Scheduler.lost r.Scheduler.sequences;
  (* the seq_log IS the set of finished sequences *)
  let log = r.Scheduler.seq_log in
  if List.length log <> r.Scheduler.finished then
    err "seq_log holds %d entries but finished=%d" (List.length log) r.Scheduler.finished;
  let log_tokens = List.fold_left (fun acc (_, _, _, tok) -> acc + tok) 0 log in
  if log_tokens <> r.Scheduler.tokens then
    err "seq_log tokens %d <> report tokens %d" log_tokens r.Scheduler.tokens;
  (* no duplicate sequence ids *)
  let ids = List.map (fun (id, _, _, _) -> id) log in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    err "seq_log contains duplicate sequence ids";
  (* per-entry sanity *)
  List.iter
    (fun (id, ttft, fin, tok) ->
      if ttft < 0.0 then err "seq %d: negative ttft %.3f" id ttft;
      if fin < ttft then err "seq %d: finished %.3f before ttft %.3f" id fin ttft;
      if fin > r.Scheduler.makespan_us +. 1e-6 then
        err "seq %d: finished %.3f after makespan %.3f" id fin r.Scheduler.makespan_us;
      if tok < 1 then err "seq %d: finished with %d tokens" id tok)
    log;
  (* percentile ordering and SLO-counter bounds *)
  if r.Scheduler.ttft_p50_us > r.Scheduler.ttft_p99_us +. 1e-9 then
    err "ttft p50 %.3f > p99 %.3f" r.Scheduler.ttft_p50_us r.Scheduler.ttft_p99_us;
  if r.Scheduler.tpot_p50_us > r.Scheduler.tpot_p99_us +. 1e-9 then
    err "tpot p50 %.3f > p99 %.3f" r.Scheduler.tpot_p50_us r.Scheduler.tpot_p99_us;
  if r.Scheduler.ttft_ok > r.Scheduler.finished then
    err "ttft_ok %d > finished %d" r.Scheduler.ttft_ok r.Scheduler.finished;
  if r.Scheduler.tpot_ok > r.Scheduler.tpot_total then
    err "tpot_ok %d > tpot_total %d" r.Scheduler.tpot_ok r.Scheduler.tpot_total;
  (* dispatch accounting: only a lost (failed) launch may leave a batch
     uncounted, and signatures/cold counts are bounded by dispatches *)
  let attempts = r.Scheduler.prefill_batches + r.Scheduler.decode_steps in
  if r.Scheduler.dispatches > attempts then
    err "dispatches %d > prefill_batches + decode_steps %d" r.Scheduler.dispatches attempts;
  if r.Scheduler.lost = 0 && r.Scheduler.dispatches <> attempts then
    err "lost=0 but dispatches %d <> prefill_batches + decode_steps %d"
      r.Scheduler.dispatches attempts;
  if r.Scheduler.signatures > r.Scheduler.dispatches && r.Scheduler.dispatches > 0 then
    err "signatures %d > dispatches %d" r.Scheduler.signatures r.Scheduler.dispatches;
  if r.Scheduler.cold_dispatches > r.Scheduler.dispatches then
    err "cold %d > dispatches %d" r.Scheduler.cold_dispatches r.Scheduler.dispatches;
  if r.Scheduler.dispatches > 0 then begin
    let expect =
      float_of_int (r.Scheduler.dispatches - r.Scheduler.cold_dispatches)
      /. float_of_int r.Scheduler.dispatches
    in
    if abs_float (expect -. r.Scheduler.warm_rate) > 1e-9 then
      err "warm_rate %.6f inconsistent with dispatches/cold (%.6f)" r.Scheduler.warm_rate
        expect
  end;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let to_string = function
  | Ok () -> "audit: ok"
  | Error es ->
      Printf.sprintf "audit: %d violation(s)\n%s" (List.length es)
        (String.concat "\n" (List.map (fun e -> "  - " ^ e) es))
