(* Token-level scheduling of autoregressive decoding over the serving
   stack (paper §2 workload, ROADMAP item 1).

   Two modes share one discrete-event virtual-time loop:

   - [Static] — request-level batching, the baseline every serving
     system starts from: a worker grabs a batch of waiting requests,
     prefills them together, then decodes the *same* member set until
     every member finishes. Short sequences pad out the batch while the
     longest member drags on (wasted slots), and new arrivals wait for
     the whole batch to drain (head-of-line blocking on TTFT).

   - [Continuous] — iteration-level scheduling (Orca-style): the decode
     batch is re-formed between steps, so sequences join the moment
     their prefill lands and leave the moment they finish. Prefill and
     decode run on disjoint workers (phase disaggregation) with
     separate SLO budgets: TTFT for prefill, per-token TPOT for decode.

   Shape discipline is the paper's: both graphs compile once over
   symbolic dims and are served at every shape. The decode graph's
   cache dim grows by one per step; [Bucket] rounding keeps the
   signature alphabet finite, and when the dim carries the
   monotone-growth fact ([Symshape.Table.growing]) the sessions
   pre-ingest the bucket ladder as likely values, so every rung the
   cache will climb is a known hint before the first request. *)

module Session = Disc.Session
module Compile_cache = Disc.Compile_cache
module Profile = Runtime.Profile
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Replica = Serving.Replica
module Table = Symshape.Table

type mode = Continuous | Static

let mode_to_string = function Continuous -> "continuous" | Static -> "static"

type config = {
  mode : mode;
  devices : Gpusim.Device.t list; (* one worker per device *)
  prefill_workers : int; (* continuous: first K devices prefill-only *)
  max_prefill_batch : int;
  max_decode_batch : int;
  batch_scheme : Bucket.scheme;
  prompt_scheme : Bucket.scheme; (* prefill seq dim *)
  cache_scheme : Bucket.scheme; (* decode KV-cache dim *)
  decode_slo : Slo.decode_policy;
  cold_warmup_us : float; (* first dispatch of a signature on a worker *)
  options : Disc.Compiler.options option;
}

let default_config ~devices =
  {
    mode = Continuous;
    devices;
    prefill_workers = 1;
    max_prefill_batch = 4;
    max_decode_batch = 16;
    batch_scheme = Bucket.Pow2;
    prompt_scheme = Bucket.Pow2;
    cache_scheme = Bucket.Linear 64;
    decode_slo = Slo.default_decode_policy;
    cold_warmup_us = 1500.0;
    options = None;
  }

type request = { arrival_us : float; prompt : int; max_new : int; cls : Slo.cls }

(* Deterministic request stream: Poisson arrivals, short-biased prompts,
   uniform generation lengths, a fixed class mix. *)
let gen_requests ~seed ~qps ~n ~prompt ~max_new =
  if qps <= 0.0 then invalid_arg "Scheduler.gen_requests: qps must be > 0";
  if n < 1 then invalid_arg "Scheduler.gen_requests: n must be >= 1";
  let rng = Workloads.Trace.create_rng seed in
  let mean_gap = 1_000_000.0 /. qps in
  let t = ref 0.0 in
  List.init n (fun _ ->
      let u = max 1e-9 (Workloads.Trace.float01 rng) in
      t := !t +. (-.mean_gap *. log u);
      let cls =
        match Workloads.Trace.uniform rng 0 9 with
        | 0 | 1 | 2 -> Slo.Interactive
        | 9 -> Slo.Best_effort
        | _ -> Slo.Standard
      in
      {
        arrival_us = !t;
        prompt = Workloads.Trace.sample rng prompt;
        max_new = Workloads.Trace.sample rng max_new;
        cls;
      })

(* ---------------------------------------------------------------- *)

type role = Prefill_only | Decode_only | Both

type worker = {
  wid : int;
  role : role;
  rep : Replica.t; (* primary session: decode (Decode_only/Both), prefill (Prefill_only) *)
  prefill_session : Session.t option; (* Both: side session, same device *)
  mutable residents : Sequence.t list; (* continuous: pinned active sequences *)
  mutable static_members : Sequence.t list; (* static: the fixed batch *)
  mutable inflight : inflight option;
}

and inflight = { done_at : float; batch : Sequence.t list; is_prefill : bool }

type report = {
  mode : mode;
  workers : int;
  sequences : int;
  finished : int;
  lost : int;
  tokens : int;
  makespan_us : float;
  tokens_per_s : float;
  ttft_p50_us : float;
  ttft_p99_us : float;
  tpot_p50_us : float;
  tpot_p99_us : float;
  ttft_ok : int; (* finished sequences within their class TTFT budget *)
  tpot_ok : int; (* token gaps within their class TPOT budget *)
  tpot_total : int;
  prefill_batches : int;
  decode_steps : int;
  mean_decode_batch : float; (* active members per decode step *)
  decode_slot_waste : float; (* padded slots that held no active member *)
  signatures : int; (* distinct dispatched shape signatures *)
  dispatches : int;
  cold_dispatches : int;
  warm_rate : float;
  cache : Compile_cache.stats; (* shared across every session *)
  seq_log : (int * float * float * int) list;
      (* per sequence: id, ttft_us, finished_us, tokens — the
         reproducibility identity of a run *)
}

let digest r =
  String.concat ";"
    (List.map
       (fun (id, ttft, fin, tok) -> Printf.sprintf "%d:%.3f:%.3f:%d" id ttft fin tok)
       r.seq_log)

let report_to_string r =
  Printf.sprintf
    "decode[%s] workers=%d seqs=%d finished=%d lost=%d tokens=%d makespan=%.1fms \
     tokens/s=%.1f\n\
    \  ttft p50=%.2fms p99=%.2fms ok=%d/%d | tpot p50=%.2fms p99=%.2fms ok=%d/%d\n\
    \  prefill_batches=%d decode_steps=%d mean_decode_batch=%.2f slot_waste=%.1f%%\n\
    \  signatures=%d dispatches=%d cold=%d warm_rate=%.1f%%"
    (mode_to_string r.mode) r.workers r.sequences r.finished r.lost r.tokens
    (r.makespan_us /. 1000.0) r.tokens_per_s (r.ttft_p50_us /. 1000.0)
    (r.ttft_p99_us /. 1000.0) r.ttft_ok r.finished (r.tpot_p50_us /. 1000.0)
    (r.tpot_p99_us /. 1000.0) r.tpot_ok r.tpot_total r.prefill_batches r.decode_steps
    r.mean_decode_batch (100.0 *. r.decode_slot_waste) r.signatures r.dispatches
    r.cold_dispatches (100.0 *. r.warm_rate)

(* ---------------------------------------------------------------- *)

let dim_ub built name =
  let tab = Ir.Graph.symtab built.Models.Common.graph in
  match Table.upper_bound tab (Models.Common.dim_exn built name) with
  | Some ub -> ub
  | None -> max_int

let dim_bound = dim_ub

(* Adapt a Pool/Trace_gen request stream to decode requests: the pool's
   named dims become prompt ("prompt") and generation length ("new"),
   clamped so every adapted request passes [run]'s bound validation —
   traffic generators know nothing about a particular model's seq/cache
   ceilings. Arrival order and SLO classes pass through untouched. *)
let of_pool_requests ~seq_ub ~cache_ub (reqs : Serving.Pool.request list) : request list =
  if cache_ub < 2 then invalid_arg "Scheduler.of_pool_requests: cache_ub must be >= 2";
  List.map
    (fun (r : Serving.Pool.request) ->
      let get name default =
        match List.assoc_opt name r.Serving.Pool.dims with Some v -> v | None -> default
      in
      let prompt = max 1 (min (get "prompt" 16) (min seq_ub (cache_ub - 1))) in
      let max_new = max 1 (min (get "new" 16) (cache_ub - prompt)) in
      { arrival_us = r.Serving.Pool.arrival_us; prompt; max_new; cls = r.Serving.Pool.cls })
    reqs

let run ?cache ~prefill:(prefill_built : unit -> Models.Common.built)
    ~decode:(decode_built : unit -> Models.Common.built) (cfg : config)
    (reqs : request list) : report =
  let n_workers = List.length cfg.devices in
  if n_workers < 1 then invalid_arg "Scheduler.run: need at least one device";
  if cfg.max_prefill_batch < 1 || cfg.max_decode_batch < 1 then
    invalid_arg "Scheduler.run: batch capacities must be >= 1";
  (match cfg.mode with
  | Continuous ->
      if n_workers < 2 then
        invalid_arg "Scheduler.run: continuous mode disaggregates phases; need >= 2 devices";
      if cfg.prefill_workers < 1 || cfg.prefill_workers >= n_workers then
        invalid_arg "Scheduler.run: need 1 <= prefill_workers < devices"
  | Static -> ());
  let cache = match cache with Some c -> c | None -> Compile_cache.create () in
  (* Probe builds: dim bounds for env clamping and request validation.
     Each session gets its own build (sessions mutate their symbol
     table via hint ingestion); the shared cache makes every build
     after the first a compile hit. *)
  let probe_decode = decode_built () in
  let probe_prefill = prefill_built () in
  let cache_ub = dim_ub probe_decode "cache" in
  let batch_ub = dim_ub probe_decode "batch" in
  let seq_ub = dim_ub probe_prefill "seq" in
  let cache_lb =
    Table.lower_bound
      (Ir.Graph.symtab probe_decode.Models.Common.graph)
      (Models.Common.dim_exn probe_decode "cache")
  in
  let growing =
    Table.growing
      (Ir.Graph.symtab probe_decode.Models.Common.graph)
      (Models.Common.dim_exn probe_decode "cache")
  in
  List.iteri
    (fun i r ->
      if r.prompt < 1 || r.max_new < 1 then
        invalid_arg (Printf.sprintf "Scheduler.run: request %d: prompt/max_new must be >= 1" i);
      if r.prompt > seq_ub then
        invalid_arg (Printf.sprintf "Scheduler.run: request %d: prompt %d > seq bound %d" i r.prompt seq_ub);
      if r.prompt + r.max_new > cache_ub then
        invalid_arg
          (Printf.sprintf "Scheduler.run: request %d: prompt+max_new %d exceeds cache bound %d"
             i (r.prompt + r.max_new) cache_ub))
    reqs;
  let mk_session ?device built_fn =
    Session.create ?options:cfg.options ?device ~cache (built_fn ())
  in
  (* Pre-declare the cache-length bucket ladder on decode sessions when
     the dim carries the monotone-growth fact: every signature rung the
     cache will climb becomes a likely-value hint before any request. *)
  let ladder_hints session =
    if growing then
      Session.ingest_hints session
        [ ("cache", Bucket.ladder cfg.cache_scheme ~lb:cache_lb ~ub:cache_ub) ]
  in
  let workers =
    List.mapi
      (fun wid device ->
        match cfg.mode with
        | Continuous when wid < cfg.prefill_workers ->
            {
              wid;
              role = Prefill_only;
              rep = Replica.create ~id:wid (mk_session ~device prefill_built);
              prefill_session = None;
              residents = [];
              static_members = [];
              inflight = None;
            }
        | Continuous ->
            let s = mk_session ~device decode_built in
            ladder_hints s;
            {
              wid;
              role = Decode_only;
              rep = Replica.create ~id:wid s;
              prefill_session = None;
              residents = [];
              static_members = [];
              inflight = None;
            }
        | Static ->
            let s = mk_session ~device decode_built in
            ladder_hints s;
            {
              wid;
              role = Both;
              rep = Replica.create ~id:wid s;
              prefill_session = Some (mk_session ~device prefill_built);
              residents = [];
              static_members = [];
              inflight = None;
            })
      cfg.devices
  in
  (* ---- run state ---- *)
  let seqs =
    List.mapi
      (fun id r ->
        Sequence.create ~id ~arrival_us:r.arrival_us ~prompt:r.prompt ~max_new:r.max_new
          ~cls:r.cls)
      reqs
  in
  let arrivals =
    List.stable_sort (fun (a : Sequence.t) b -> compare (a.arrival_us, a.id) (b.arrival_us, b.id)) seqs
    |> Array.of_list
  in
  let n_seqs = Array.length arrivals in
  let arr_idx = ref 0 in
  let waiting : Sequence.t Queue.t = Queue.create () in
  let now = ref 0.0 in
  let last_done = ref 0.0 in
  let prefill_batches = ref 0 in
  let decode_steps = ref 0 in
  let decode_members = ref 0 in
  let decode_slots = ref 0 in
  let dispatches = ref 0 in
  let cold_total = ref 0 in
  let sig_seen : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let lost = ref 0 in
  let clamp ub v = if v > ub then ub else v in
  let prefill_env members =
    let b = List.length members in
    let s = List.fold_left (fun acc (m : Sequence.t) -> max acc m.prompt) 1 members in
    [
      ("batch", clamp batch_ub (Bucket.round_up cfg.batch_scheme b));
      ("seq", clamp seq_ub (Bucket.round_up cfg.prompt_scheme s));
    ]
  in
  let decode_env ~count members =
    let c = List.fold_left (fun acc (m : Sequence.t) -> max acc m.kv_len) 1 members in
    [
      ("batch", clamp batch_ub (Bucket.round_up cfg.batch_scheme count));
      ("cache", clamp cache_ub (Bucket.round_up cfg.cache_scheme c));
    ]
  in
  (* Serve a batch env on a worker and park the members in flight.
     Warmth is per worker per signature; a fresh signature pays the
     one-off warmup. On a serve error the members are lost (counted;
     acceptance requires this never fires). *)
  let launch w session env members ~is_prefill =
    match Session.serve_result session env with
    | Error _ ->
        List.iter Sequence.note_lost members;
        lost := !lost + List.length members;
        w.residents <- List.filter Sequence.active w.residents;
        w.static_members <-
          List.filter (fun (s : Sequence.t) -> s.phase <> Sequence.Lost) w.static_members
    | Ok (profile, _path) ->
        let key = Bucket.env_key env in
        let cold = not (Replica.is_warm w.rep key) in
        let base_us = Profile.total_us profile in
        let service_us = base_us +. (if cold then cfg.cold_warmup_us else 0.0) in
        let done_at = !now +. service_us in
        w.rep.Replica.free_at <- done_at;
        Replica.note_batch w.rep ~key ~elements:(Bucket.elements env) ~service_us
          ~rate_us:base_us ~requests:(List.length members) ~cold ();
        Hashtbl.replace sig_seen key (1 + Option.value ~default:0 (Hashtbl.find_opt sig_seen key));
        incr dispatches;
        if cold then incr cold_total;
        if done_at > !last_done then last_done := done_at;
        w.inflight <- Some { done_at; batch = members; is_prefill }
  in
  (* Continuous: place a prefilled sequence on the decode worker with
     the fewest residents (tie: lowest id) and pin it there — the KV
     cache lives on that worker. *)
  let place (s : Sequence.t) =
    let best = ref None in
    List.iter
      (fun w ->
        if w.role = Decode_only then
          match !best with
          | None -> best := Some w
          | Some b -> if List.length w.residents < List.length b.residents then best := Some w)
      workers;
    match !best with
    | None -> invalid_arg "Scheduler.run: no decode worker"
    | Some w ->
        s.Sequence.worker <- w.wid;
        w.residents <- w.residents @ [ s ]
  in
  let complete w inflight =
    w.inflight <- None;
    if inflight.is_prefill then begin
      List.iter
        (fun (s : Sequence.t) ->
          if s.phase = Sequence.Waiting then begin
            Sequence.note_prefilled s ~now:!now;
            match cfg.mode with
            | Continuous -> if Sequence.active s then place s
            | Static -> () (* stays in this worker's static batch *)
          end)
        inflight.batch;
      if cfg.mode = Static then
        w.static_members <- List.filter (fun (s : Sequence.t) -> s.phase <> Sequence.Lost) w.static_members
    end
    else begin
      List.iter (fun (s : Sequence.t) -> if Sequence.active s then Sequence.note_token s ~now:!now) inflight.batch;
      match cfg.mode with
      | Continuous ->
          (* fairness rotation: dispatched members that remain active go
             to the back of the resident queue *)
          let stayed, went =
            List.partition (fun (s : Sequence.t) -> not (List.memq s inflight.batch)) w.residents
          in
          w.residents <- List.filter Sequence.active stayed @ List.filter Sequence.active went
      | Static ->
          if not (List.exists Sequence.active w.static_members) then w.static_members <- []
    end
  in
  let pop_waiting cap =
    let rec go acc k =
      if k >= cap || Queue.is_empty waiting then List.rev acc
      else go (Queue.pop waiting :: acc) (k + 1)
    in
    go [] 0
  in
  (* One dispatch attempt on an idle worker; returns true if launched. *)
  let try_dispatch w =
    if w.inflight <> None then false
    else
      match w.role with
      | Prefill_only ->
          if Queue.is_empty waiting then false
          else begin
            let members = pop_waiting cfg.max_prefill_batch in
            incr prefill_batches;
            launch w w.rep.Replica.session (prefill_env members) members ~is_prefill:true;
            true
          end
      | Decode_only ->
          if w.residents = [] then false
          else begin
            let rec take k = function
              | [] -> []
              | _ when k = 0 -> []
              | s :: rest -> s :: take (k - 1) rest
            in
            let members = take cfg.max_decode_batch w.residents in
            let env = decode_env ~count:(List.length members) members in
            incr decode_steps;
            decode_members := !decode_members + List.length members;
            decode_slots := !decode_slots + List.assoc "batch" env;
            launch w w.rep.Replica.session env members ~is_prefill:false;
            true
          end
      | Both -> (
          match w.static_members with
          | [] ->
              if Queue.is_empty waiting then false
              else begin
                let members = pop_waiting cfg.max_decode_batch in
                w.static_members <- members;
                incr prefill_batches;
                launch w (Option.get w.prefill_session) (prefill_env members) members
                  ~is_prefill:true;
                true
              end
          | members when List.exists Sequence.active members ->
              (* request-level batching: the batch keeps its original
                 size until every member finishes — finished members
                 occupy padded slots that produce no tokens *)
              let active = List.filter Sequence.active members in
              let env = decode_env ~count:(List.length members) active in
              incr decode_steps;
              decode_members := !decode_members + List.length active;
              decode_slots := !decode_slots + List.assoc "batch" env;
              launch w w.rep.Replica.session env active ~is_prefill:false;
              true
          | _ ->
              w.static_members <- [];
              false)
  in
  let admit_arrivals () =
    while !arr_idx < n_seqs && arrivals.(!arr_idx).Sequence.arrival_us <= !now do
      Queue.push arrivals.(!arr_idx) waiting;
      incr arr_idx
    done
  in
  let work_remains () =
    !arr_idx < n_seqs
    || (not (Queue.is_empty waiting))
    || List.exists (fun w -> w.inflight <> None || w.residents <> [] || w.static_members <> []) workers
  in
  (* ---- event loop ---- *)
  admit_arrivals ();
  let guard = ref 0 in
  while work_remains () do
    incr guard;
    if !guard > 10_000_000 then failwith "Scheduler.run: event-loop guard tripped";
    (* complete everything due now (worker id order: deterministic) *)
    List.iter
      (fun w ->
        match w.inflight with
        | Some f when f.done_at <= !now -> complete w f
        | _ -> ())
      workers;
    (* dispatch until no idle worker can act *)
    let progressed = ref true in
    while !progressed do
      progressed := false;
      List.iter (fun w -> if try_dispatch w then progressed := true) workers
    done;
    (* advance virtual time to the next completion or arrival *)
    if work_remains () then begin
      let next = ref infinity in
      List.iter
        (fun w -> match w.inflight with Some f -> if f.done_at < !next then next := f.done_at | None -> ())
        workers;
      if !arr_idx < n_seqs then begin
        let a = arrivals.(!arr_idx).Sequence.arrival_us in
        if a < !next then next := a
      end;
      if !next = infinity then
        (* nothing in flight and nothing arriving, but sequences linger:
           only possible if every one of them is lost — drain below *)
        failwith "Scheduler.run: stalled with pending work"
      else begin
        now := max !now !next;
        admit_arrivals ()
      end
    end
  done;
  (* ---- report ---- *)
  let finished = List.filter (fun (s : Sequence.t) -> s.phase = Sequence.Finished) seqs in
  let tokens = List.fold_left (fun acc (s : Sequence.t) -> acc + s.generated) 0 finished in
  let makespan = !last_done in
  let ttfts =
    Array.of_list (List.map (fun (s : Sequence.t) -> s.ttft_us) finished)
  in
  let gaps =
    Array.of_list (List.concat_map (fun (s : Sequence.t) -> List.rev s.gaps_us) finished)
  in
  let pct a p = if Array.length a = 0 then 0.0 else Workloads.Queueing.percentile a p in
  let ttft_ok =
    List.length
      (List.filter
         (fun (s : Sequence.t) ->
           s.ttft_us <= (Slo.decode_target_of cfg.decode_slo s.cls).Slo.ttft_us)
         finished)
  in
  let tpot_ok =
    List.fold_left
      (fun acc (s : Sequence.t) ->
        let budget = (Slo.decode_target_of cfg.decode_slo s.cls).Slo.tpot_us in
        acc + List.length (List.filter (fun g -> g <= budget) s.gaps_us))
      0 finished
  in
  {
    mode = cfg.mode;
    workers = n_workers;
    sequences = n_seqs;
    finished = List.length finished;
    lost = !lost;
    tokens;
    makespan_us = makespan;
    tokens_per_s = (if makespan > 0.0 then float_of_int tokens /. (makespan /. 1e6) else 0.0);
    ttft_p50_us = pct ttfts 0.5;
    ttft_p99_us = pct ttfts 0.99;
    tpot_p50_us = pct gaps 0.5;
    tpot_p99_us = pct gaps 0.99;
    ttft_ok;
    tpot_ok;
    tpot_total = Array.length gaps;
    prefill_batches = !prefill_batches;
    decode_steps = !decode_steps;
    mean_decode_batch =
      (if !decode_steps = 0 then 0.0
       else float_of_int !decode_members /. float_of_int !decode_steps);
    decode_slot_waste =
      (if !decode_slots = 0 then 0.0
       else float_of_int (!decode_slots - !decode_members) /. float_of_int !decode_slots);
    signatures = Hashtbl.length sig_seen;
    dispatches = !dispatches;
    cold_dispatches = !cold_total;
    warm_rate =
      (if !dispatches = 0 then 0.0
       else float_of_int (!dispatches - !cold_total) /. float_of_int !dispatches);
    cache = Compile_cache.stats cache;
    seq_log =
      List.map
        (fun (s : Sequence.t) ->
          (s.id, s.ttft_us, s.finished_us, s.generated))
        finished;
  }
