(* Per-sequence decode state. A sequence is one generation request:
   a prompt to prefill, then max_new tokens decoded one step at a time.
   The scheduler owns all mutation; this module is the state record
   plus its small derived accessors. *)

type phase =
  | Waiting (* arrived, prompt not yet prefilled *)
  | Decoding (* prefilled; joins decode batches until done *)
  | Finished (* produced max_new tokens *)
  | Lost (* a dispatch it belonged to failed; terminal *)

type t = {
  id : int;
  arrival_us : float;
  prompt : int; (* prompt length in tokens *)
  max_new : int; (* tokens to generate (the prefill's first token counts) *)
  cls : Serving.Slo.cls;
  mutable phase : phase;
  mutable generated : int; (* tokens produced so far *)
  mutable kv_len : int; (* current KV-cache length (prompt + generated) *)
  mutable worker : int; (* pinned decode worker (KV locality); -1 = none *)
  mutable ttft_us : float; (* arrival -> first token; nan until prefilled *)
  mutable last_token_us : float; (* virtual time of the newest token *)
  mutable finished_us : float; (* completion time; nan until Finished *)
  mutable gaps_us : float list; (* inter-token gaps, newest first *)
}

let create ~id ~arrival_us ~prompt ~max_new ~cls =
  if prompt < 1 then invalid_arg "Sequence.create: prompt must be >= 1";
  if max_new < 1 then invalid_arg "Sequence.create: max_new must be >= 1";
  {
    id;
    arrival_us;
    prompt;
    max_new;
    cls;
    phase = Waiting;
    generated = 0;
    kv_len = prompt;
    worker = -1;
    ttft_us = Float.nan;
    last_token_us = Float.nan;
    finished_us = Float.nan;
    gaps_us = [];
  }

let active s = s.phase = Decoding

(* Prefill completed at [now]: the prompt is in the cache and the first
   token is out (TTFT clock stops here). *)
let note_prefilled s ~now =
  s.phase <- Decoding;
  s.generated <- 1;
  s.kv_len <- s.prompt + 1;
  s.ttft_us <- now -. s.arrival_us;
  s.last_token_us <- now;
  if s.generated >= s.max_new then begin
    s.phase <- Finished;
    s.finished_us <- now
  end

(* One decode step completed at [now]: one more token, one more cache
   slot, one TPOT gap. *)
let note_token s ~now =
  s.gaps_us <- (now -. s.last_token_us) :: s.gaps_us;
  s.last_token_us <- now;
  s.generated <- s.generated + 1;
  s.kv_len <- s.kv_len + 1;
  if s.generated >= s.max_new then begin
    s.phase <- Finished;
    s.finished_us <- now
  end

let note_lost s = s.phase <- Lost
