(** Internal-consistency audit of a decode {!Scheduler.report}.

    Every invariant checked is implied by the scheduler's own
    bookkeeping — sequence conservation (finished + lost = admitted),
    the sequence log agreeing with the finished/token totals,
    per-sequence timestamp sanity against the makespan, percentile
    ordering, SLO-counter bounds, and dispatch accounting. A violation
    means the report is lying about the run; the scale harness gates
    million-token runs on this. *)

val check : Scheduler.report -> (unit, string list) result
(** [Ok ()] when every invariant holds, otherwise every violated
    invariant as a human-readable message, in check order. *)

val to_string : (unit, string list) result -> string
(** ["audit: ok"] or the violations, one per line. *)
