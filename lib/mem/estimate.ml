(* Symbolic peak-memory estimator: Memplan's lifetime walk with byte
   sizes as polynomials instead of integers. The peak expression is the
   max over schedule positions of the live-set sum; positions whose live
   set is a subset of another position's are pruned (their sum is
   pointwise smaller for any binding — sizes are non-negative), leaving
   a handful of candidate polynomials per executable. *)

module Graph = Ir.Graph
module Op = Ir.Op
module Sym = Symshape.Sym
module Table = Symshape.Table
module Executable = Runtime.Executable
module Memplan = Runtime.Memplan

type buffer = { value : int; poly : Poly.t; first_pos : int; last_pos : int }

type candidate = { at_pos : int; live : buffer list }

type t = {
  exe : Executable.t;
  alignment : int;
  buffers : buffer list;
  cands : candidate list;
  resident : Poly.t list; (* per-buffer, so alignment stays exact *)
  n_items : int;
}

let align up n = (n + up - 1) / up * up

let of_executable ?(alignment = 256) (exe : Executable.t) : t =
  let g = exe.Executable.g in
  let tab = Graph.symtab g in
  let poly_of id =
    let i = Graph.inst g id in
    Poly.of_dims ~resolve:(Table.resolve tab) i.Graph.shape
      (Tensor.Dtype.byte_size i.Graph.dtype)
  in
  let buffers =
    List.map
      (fun (v, first_pos, last_pos) -> { value = v; poly = poly_of v; first_pos; last_pos })
      (Memplan.lifetimes exe)
  in
  let resident =
    List.rev
      (Graph.fold g
         (fun acc i ->
           match i.Graph.op with
           | Op.Parameter _ | Op.Constant _ -> poly_of i.Graph.id :: acc
           | _ -> acc)
         [])
  in
  let n_items = List.length exe.Executable.items in
  let live_at p = List.filter (fun b -> b.first_pos <= p && p <= b.last_pos) buffers in
  let all = List.init n_items (fun p -> { at_pos = p; live = live_at p }) in
  (* prune positions whose live set is contained in another position's:
     their byte sum is pointwise <= for every binding *)
  let subset a b =
    List.for_all (fun x -> List.exists (fun y -> y.value = x.value) b.live) a.live
  in
  let cands =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun d ->
               d.at_pos <> c.at_pos && subset c d
               && ((not (subset d c)) || d.at_pos < c.at_pos))
             all))
      all
  in
  { exe; alignment; buffers; cands; resident; n_items }

let executable t = t.exe
let alignment t = t.alignment
let buffers t = t.buffers
let n_items t = t.n_items

let candidates t =
  List.map (fun c -> (c.at_pos, Poly.sum (List.map (fun b -> b.poly) c.live))) t.cands

(* Binding values first; dims the binding leaves free close via the
   table's recorded upper bounds (bucket ceilings as range facts). *)
let lookup_of t bnd =
  let tab = Graph.symtab t.exe.Executable.g in
  fun id ->
    match Table.eval_dim tab bnd (Sym.Sym id) with
    | Some v -> Some v
    | None -> Table.upper_bound tab (Sym.Sym id)

let eval_poly t bnd p = Poly.eval p ~lookup:(lookup_of t bnd)

let sum_aligned t lookup polys =
  List.fold_left
    (fun acc p ->
      match (acc, Poly.eval p ~lookup) with
      | Some a, Some v -> Some (a + align t.alignment v)
      | _ -> None)
    (Some 0) polys

let live_peak_bytes t bnd =
  let lookup = lookup_of t bnd in
  List.fold_left
    (fun acc c ->
      match (acc, sum_aligned t lookup (List.map (fun b -> b.poly) c.live)) with
      | Some a, Some v -> Some (max a v)
      | _ -> None)
    (Some 0) t.cands

let resident_bytes t bnd = sum_aligned t (lookup_of t bnd) t.resident

(* The live-sum peak is a lower bound on any correct arena (live buffers
   occupy disjoint ranges), and the concrete plan at the same binding is
   an achievable arena; their max is sound against best-fit
   fragmentation while staying exact at the evaluated binding. The plan
   belt needs every dim bound (eval_shape), so a partially-closed
   binding falls back to the symbolic peak alone. *)
let arena_bound t bnd =
  match live_peak_bytes t bnd with
  | None -> None
  | Some lp ->
      let planned =
        try Some (Memplan.plan ~alignment:t.alignment t.exe bnd).Memplan.arena_bytes
        with Table.Inconsistent _ -> None
      in
      Some (max lp (Option.value planned ~default:0))

let peak_bound t bnd =
  match (arena_bound t bnd, resident_bytes t bnd) with
  | Some a, Some r -> Some (a + r)
  | _ -> None

let upper_bound t = peak_bound t (Table.empty_binding ())

let to_string t =
  let tab = Graph.symtab t.exe.Executable.g in
  let namer id =
    match Table.dim_name tab (Sym.Sym id) with
    | Some n -> n
    | None -> Printf.sprintf "s%d" id
  in
  let cand_str (pos, p) = Printf.sprintf "%s @%d" (Poly.to_string ~namer p) pos in
  let resident = Poly.sum t.resident in
  Printf.sprintf "peak = max(%s) + resident(%s)"
    (String.concat " | " (List.map cand_str (candidates t)))
    (Poly.to_string ~namer resident)
