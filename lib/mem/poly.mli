(** Multivariate polynomials over symbolic dimensions — the currency of
    the symbolic memory estimator (BladeDISC++'s idea: reason about peak
    memory {e before} any concrete shape binding arrives).

    A polynomial is a sum of monomials; each monomial is an integer
    byte coefficient times a product of symbol powers ([s3^2·s7]).
    Variables are the {e root} ids of resolved [Symshape.Sym.Sym] dims —
    static dims and dtype widths fold into coefficients at construction
    time. All coefficients are non-negative (sizes), which is what makes
    monomial-wise comparison ({!dominates}) a sound order: dims are
    always ≥ 1. *)

type t

val zero : t
val const : int -> t
val is_zero : t -> bool

val var : int -> t
(** The monomial [1·s_id]. *)

val of_dims : resolve:(Symshape.Sym.dim -> Symshape.Sym.dim) -> Symshape.Sym.dim array -> int -> t
(** [of_dims ~resolve dims scale]: the single monomial
    [scale · Π dims], with static dims (after [resolve]) folded into the
    coefficient — the byte size of a tensor when [scale] is the dtype
    width. *)

val add : t -> t -> t
val sum : t list -> t
val scale : int -> t -> t
val mul : t -> t -> t

val eval : t -> lookup:(int -> int option) -> int option
(** Substitute concrete values for every variable; [None] when any
    variable is unresolved by [lookup]. *)

val dominates : t -> t -> bool
(** [dominates a b]: [a ≥ b] for {e every} assignment of values ≥ 0 to
    the variables, decided conservatively monomial-by-monomial (each
    monomial of [b] must be matched in [a] with a coefficient at least
    as large). [true] is a proof; [false] is "not provable this way". *)

val compare : t -> t -> int
(** Total structural order (for use as a map key / dedup). *)

val degree : t -> int

val to_string : ?namer:(int -> string) -> t -> string
(** ["4·b·h + 1024·b + 512"]; [namer] maps variable ids to display names
    (default [s<id>]). Monomials print highest-degree first. *)
