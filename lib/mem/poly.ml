(* Multivariate polynomials with non-negative integer coefficients over
   symbolic-dimension root ids. Canonical form: monomials sorted by
   variable list (each variable list sorted by id, powers >= 1), no zero
   coefficients — so structural equality is semantic equality and
   monomial-wise dominance is a sound pointwise order (all dims >= 1,
   all coefficients >= 0). *)

module Sym = Symshape.Sym

type mono = { coeff : int; vars : (int * int) list }
(* vars: (root id, power) sorted ascending by id, powers >= 1 *)

type t = mono list (* sorted by [vars] (lexicographic), no zero coeffs *)

let rec compare_vars a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ia, pa) :: ra, (ib, pb) :: rb ->
      let c = Int.compare ia ib in
      if c <> 0 then c
      else
        let c = Int.compare pa pb in
        if c <> 0 then c else compare_vars ra rb

let zero = []
let const c = if c = 0 then [] else [ { coeff = c; vars = [] } ]
let is_zero p = p = []
let var id = [ { coeff = 1; vars = [ (id, 1) ] } ]

let rec add (a : t) (b : t) : t =
  match (a, b) with
  | [], p | p, [] -> p
  | ma :: ra, mb :: rb ->
      let c = compare_vars ma.vars mb.vars in
      if c < 0 then ma :: add ra b
      else if c > 0 then mb :: add a rb
      else
        let coeff = ma.coeff + mb.coeff in
        if coeff = 0 then add ra rb else { ma with coeff } :: add ra rb

let sum ps = List.fold_left add zero ps
let scale k p = if k = 0 then [] else List.map (fun m -> { m with coeff = k * m.coeff }) p

let rec merge_vars a b =
  match (a, b) with
  | [], v | v, [] -> v
  | (ia, pa) :: ra, (ib, pb) :: rb ->
      if ia < ib then (ia, pa) :: merge_vars ra b
      else if ia > ib then (ib, pb) :: merge_vars a rb
      else (ia, pa + pb) :: merge_vars ra rb

let mul_mono a b = { coeff = a.coeff * b.coeff; vars = merge_vars a.vars b.vars }

let mul (a : t) (b : t) : t =
  List.fold_left
    (fun acc ma -> add acc (List.map (fun mb -> mul_mono ma mb) b))
    zero a

let of_dims ~resolve (dims : Sym.shape) scale_bytes =
  let m =
    Array.fold_left
      (fun m d ->
        match resolve d with
        | Sym.Static v -> { m with coeff = m.coeff * v }
        | Sym.Sym id -> mul_mono m { coeff = 1; vars = [ (id, 1) ] })
      { coeff = scale_bytes; vars = [] }
      dims
  in
  if m.coeff = 0 then [] else [ m ]

let rec pow_int base = function
  | 0 -> 1
  | n -> base * pow_int base (n - 1)

let eval (p : t) ~lookup =
  let rec mono_val acc = function
    | [] -> Some acc
    | (id, pw) :: rest -> (
        match lookup id with
        | None -> None
        | Some v -> mono_val (acc * pow_int v pw) rest)
  in
  List.fold_left
    (fun acc m ->
      match (acc, mono_val m.coeff m.vars) with
      | Some a, Some v -> Some (a + v)
      | _ -> None)
    (Some 0) p

(* a >= b pointwise over non-negative assignments: every monomial of b
   must appear in a with a coefficient at least as large. Sound because
   coefficients and variable values are non-negative. *)
let dominates (a : t) (b : t) =
  List.for_all
    (fun mb ->
      List.exists (fun ma -> compare_vars ma.vars mb.vars = 0 && ma.coeff >= mb.coeff) a)
    b

let compare (a : t) (b : t) =
  List.compare
    (fun ma mb ->
      let c = compare_vars ma.vars mb.vars in
      if c <> 0 then c else Int.compare ma.coeff mb.coeff)
    a b

let mono_degree m = List.fold_left (fun acc (_, p) -> acc + p) 0 m.vars
let degree p = List.fold_left (fun acc m -> max acc (mono_degree m)) 0 p

let to_string ?(namer = Printf.sprintf "s%d") (p : t) =
  if p = [] then "0"
  else
    let show_mono m =
      let vars =
        List.map
          (fun (id, pw) -> if pw = 1 then namer id else Printf.sprintf "%s^%d" (namer id) pw)
          m.vars
      in
      if vars = [] then string_of_int m.coeff
      else if m.coeff = 1 then String.concat "·" vars
      else String.concat "·" (string_of_int m.coeff :: vars)
    in
    let by_degree =
      List.stable_sort (fun a b -> Int.compare (mono_degree b) (mono_degree a)) p
    in
    String.concat " + " (List.map show_mono by_degree)
