(** Symbolic peak-memory estimation (BladeDISC++, PAPERS.md).

    Walks an {!Runtime.Executable}'s buffer lifetimes
    ({!Runtime.Memplan.lifetimes}) with sizes as {!Poly} byte
    polynomials over the graph's symbolic dims, producing a {e peak
    memory expression}: the max over schedule positions of the live-set
    byte sum, kept as a small set of non-dominated candidate
    polynomials. The polynomials have non-negative coefficients, so the
    live-set peak is {e monotone in every dim}: evaluated at a
    shape-bucket rung ceiling it bounds the live-set peak of every
    binding inside the rung — what lets the serving fleet reason about
    HBM {e before} dispatching a batch, without re-planning per shape.

    Soundness anchor: with per-buffer alignment applied at evaluation,
    the live-set peak never exceeds the planner's arena (live buffers
    occupy disjoint arena ranges), and {!arena_bound} additionally takes
    the max with a concrete {!Runtime.Memplan.plan} at the same binding,
    so the bound is {e exact} at the binding it is evaluated at. Note
    best-fit fragmentation is not monotone across bindings — the arena at
    an interior binding can exceed the arena at the rung ceiling — which
    is why the serving budget gate and the replica's enforcement both
    consult the same {!arena_bound} at the {e same} (padded or exact)
    dispatch env, keeping admission and allocation consistent by
    construction (property-checked in [test_mem]). *)

module Table = Symshape.Table

type buffer = {
  value : int;  (** producing instruction id *)
  poly : Poly.t;  (** exact byte count, pre-alignment *)
  first_pos : int;
  last_pos : int;  (** [max_int] for graph outputs *)
}

type t

val of_executable : ?alignment:int -> Runtime.Executable.t -> t
(** Build the estimate once per compiled executable (binding-free).
    [alignment] must match the planner's (default 256). *)

val executable : t -> Runtime.Executable.t
val alignment : t -> int
val buffers : t -> buffer list
(** All intermediates in production order (the planner's lifetimes). *)

val n_items : t -> int
val candidates : t -> (int * Poly.t) list
(** The non-dominated live-set snapshots [(position, byte polynomial)]
    whose max is the peak expression. *)

val eval_poly : t -> Table.binding -> Poly.t -> int option
(** Evaluate a byte polynomial at a binding, closing dims the binding
    leaves free via the table's recorded upper bounds ({!Table.upper_bound}
    — bucket ceilings declared as range facts). [None] when a dim has
    neither a bound value nor an upper bound. No alignment applied. *)

val live_peak_bytes : t -> Table.binding -> int option
(** Max over candidates of the live-set byte sum, each buffer rounded up
    to [alignment] — the symbolic peak evaluated at [bnd]. *)

val resident_bytes : t -> Table.binding -> int option
(** Parameters + constants (weights and inputs), per-buffer aligned. *)

val arena_bound : t -> Table.binding -> int option
(** Sound arena bound at [bnd]: max of the evaluated symbolic peak and a
    concrete {!Runtime.Memplan.plan} arena at the same binding (the
    planner belt covers best-fit fragmentation above the live-sum).
    Evaluate at a bucket-rung ceiling to bound the whole rung. *)

val peak_bound : t -> Table.binding -> int option
(** [arena_bound + resident_bytes]: the total device footprint bound the
    serving budget gate compares against an HBM budget. *)

val upper_bound : t -> int option
(** {!peak_bound} with every dim closed by its table upper bound — the
    worst case over everything the shape constraints admit; [None] when
    some dim is unbounded. *)

val to_string : t -> string
(** The peak expression, e.g.
    [peak = max(8·batch·hist + 4096·batch @3 | 16384·batch @7) + resident(...)],
    with dims shown by their creation names when available. *)
