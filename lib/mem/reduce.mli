(** Symbolic peak-memory reducers (BladeDISC++): transform an
    executable's {e schedule and buffer lifetimes} — never its math — so
    the symbolic peak shrinks. Three passes, applied in order:

    - {b operation re-scheduling}: a greedy memory-minimizing list
      schedule over the item dependency DAG (ready item with the
      smallest resulting live-set wins, original position breaks ties),
      kept only when it lowers the evaluated peak;
    - {b recomputation}: a cheap elementwise/shape-op producer whose
      output is consumed again long after its first use is re-run
      just-in-time at each later consumer, splitting one long lifetime
      into point lifetimes (the producer's own inputs stay live to the
      last recompute site — the decision procedure charges that cost);
    - {b buffer regrouping}: small buffers with identical (birth, death)
      positions coalesce into one arena block with 64-byte internal
      packing, cutting per-buffer alignment waste and fragmentation.

    Decisions are made {e once per fingerprint × shape-bucket rung} by
    evaluating polynomials at the rung-ceiling binding, and are cached
    in {!Disc.Compile_cache} alongside the compiled artifact; applying a
    cached decision at serve time is pure arithmetic. *)

module Table = Symshape.Table

type decision = {
  order : int array;
      (** [order.(k)] = original schedule position of the item that runs
          k-th; the identity permutation when re-scheduling didn't help *)
  groups : int array array;  (** value ids coalesced into one block each *)
  recomputed : int array;  (** value ids recomputed at late consumers *)
  env : (string * int) list;  (** the rung-ceiling env decided at *)
  peak_before : int;  (** evaluated live peak, original schedule *)
  peak_after : int;  (** with the decision applied (≤ [peak_before]) *)
}

val identity : ?env:(string * int) list -> Estimate.t -> Table.binding -> decision
(** The no-op decision (original order, no groups, no recomputation)
    with both peaks evaluated at [bnd]. *)

val decide :
  ?allow_recompute:bool ->
  ?env:(string * int) list ->
  Estimate.t ->
  Table.binding ->
  decision
(** Run all passes at the given (rung-ceiling) binding. Deterministic:
    every tie breaks on original position / value id. Falls back to
    {!identity} when some dim evaluates to neither a bound value nor a
    table upper bound. *)

val reduced_peak : Estimate.t -> decision -> Table.binding -> int option
(** Evaluate the transformed live-set peak at any binding (the
    [peak_after] of [decide]'s binding, re-evaluated elsewhere). *)

val plan : Estimate.t -> decision -> Table.binding -> Runtime.Memplan.t
(** Concrete best-fit arena plan over the transformed lifetimes: same
    allocator discipline as {!Runtime.Memplan.plan} (allocate at birth,
    best-fit free list, free after death), with grouped buffers placed
    inside one block and recomputed values assigned per lifetime
    segment. The result satisfies {!Runtime.Memplan.validate}. *)

val savings_pct : decision -> float
(** [100·(1 − peak_after/peak_before)]; 0 for a degenerate peak. *)

val to_string : decision -> string
