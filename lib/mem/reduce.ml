(* Symbolic peak-memory reducers. Every pass transforms schedule
   positions and buffer lifetimes only — the graph's values and math are
   untouched — so correctness reduces to lifetime bookkeeping, which
   [plan] re-checks concretely via [Memplan.validate].

   All evaluation happens at one binding (the shape-bucket rung ceiling
   the decision is made for); every tie breaks on original position or
   value id, so a decision is a pure function of (executable, binding)
   and can be cached per fingerprint × bucket. *)

module Graph = Ir.Graph
module Op = Ir.Op
module Table = Symshape.Table
module Cluster = Fusion.Cluster
module Executable = Runtime.Executable
module Memplan = Runtime.Memplan

type decision = {
  order : int array;
  groups : int array array;
  recomputed : int array;
  env : (string * int) list;
  peak_before : int;
  peak_after : int;
}

let align up n = (n + up - 1) / up * up

let block_align = 256 (* arena blocks: the planner's alignment *)
let sub_align = 64 (* packing inside a regrouped block *)
let small_buffer_bytes = 262_144 (* regroup only sub-256KB buffers *)
let cheap_flops = 8.0 (* max summed flops/element of a recomputable producer *)
let max_recompute = 8

(* --- schedule/lifetime context at one binding --------------------------- *)

type ctx = {
  n : int;
  clusters : Cluster.t array;
  outs : int list array; (* unique outputs per item *)
  ins_u : int list array; (* unique produced-value inputs per item *)
  producer : (int, int) Hashtbl.t; (* value -> producing item position *)
  consumers : (int, int list) Hashtbl.t; (* value -> consuming item positions *)
  is_out : (int, unit) Hashtbl.t;
  sizes : (int, int) Hashtbl.t; (* value -> raw bytes at the binding *)
  values : int list; (* produced intermediates, production order *)
}

exception Unsized

let cluster_of = function
  | Executable.Fused k -> k.Codegen.Kernel.cluster
  | Executable.Lib c -> c

let build_ctx est bnd : ctx =
  let exe = Estimate.executable est in
  let clusters = Array.of_list (List.map cluster_of exe.Executable.items) in
  let n = Array.length clusters in
  let outs = Array.map (fun c -> List.sort_uniq Int.compare c.Cluster.outputs) clusters in
  let producer = Hashtbl.create 64 in
  Array.iteri (fun j os -> List.iter (fun v -> Hashtbl.replace producer v j) os) outs;
  let ins_u =
    Array.map
      (fun c ->
        List.sort_uniq Int.compare
          (List.filter (fun v -> Hashtbl.mem producer v) c.Cluster.inputs))
      clusters
  in
  let consumers = Hashtbl.create 64 in
  Array.iteri
    (fun j vs ->
      List.iter
        (fun v ->
          let cur = Option.value (Hashtbl.find_opt consumers v) ~default:[] in
          if not (List.mem j cur) then Hashtbl.replace consumers v (j :: cur))
        vs)
    ins_u;
  Hashtbl.iter
    (fun v cs -> Hashtbl.replace consumers v (List.sort Int.compare cs))
    (Hashtbl.copy consumers);
  let is_out = Hashtbl.create 8 in
  List.iter
    (fun o -> if Hashtbl.mem producer o then Hashtbl.replace is_out o ())
    (Graph.outputs exe.Executable.g);
  let sizes = Hashtbl.create 64 in
  let values =
    List.map
      (fun b ->
        (match Estimate.eval_poly est bnd b.Estimate.poly with
        | Some raw -> Hashtbl.replace sizes b.Estimate.value raw
        | None -> raise Unsized);
        b.Estimate.value)
      (Estimate.buffers est)
  in
  { n; clusters; outs; ins_u; producer; consumers; is_out; sizes; values }

let pos_of_order order =
  let pos = Array.make (Array.length order) 0 in
  Array.iteri (fun k o -> pos.(o) <- k) order;
  pos

(* Final lifetime of [v] under scheduled positions, with [extra] lifetime
   extensions from accepted recomputations (assoc: value -> min last). *)
let lifetime ctx pos_of extra v =
  let first = pos_of.(Hashtbl.find ctx.producer v) in
  let natural =
    if Hashtbl.mem ctx.is_out v then max_int
    else
      match Hashtbl.find_opt ctx.consumers v with
      | None | Some [] -> first
      | Some cs -> List.fold_left (fun a j -> max a pos_of.(j)) first cs
  in
  let last =
    match List.assoc_opt v extra with
    | Some e when natural <> max_int -> max natural e
    | _ -> natural
  in
  (first, last)

let peak_of_segments n segs =
  let best = ref 0 in
  for p = 0 to n - 1 do
    let s =
      List.fold_left (fun acc (sz, f, l) -> if f <= p && p <= l then acc + sz else acc) 0 segs
    in
    if s > !best then best := s
  done;
  !best

(* Segments (size, first, last) of every value: one per lifetime, or one
   per recompute site for recomputed values; grouped values contribute a
   single coalesced block segment. *)
let segments ctx pos_of ~recomputed ~extra ~groups =
  let size v = align block_align (Hashtbl.find ctx.sizes v) in
  let grouped = Hashtbl.create 8 in
  Array.iter (fun g -> Array.iter (fun v -> Hashtbl.replace grouped v ()) g) groups;
  let singles =
    List.concat_map
      (fun v ->
        if Hashtbl.mem grouped v then []
        else if List.mem v recomputed then
          (* just-in-time: materialized at production (the fused cluster
             writes it regardless), then only at each consumer site *)
          let first = pos_of.(Hashtbl.find ctx.producer v) in
          let cs =
            List.sort Int.compare
              (List.map (fun j -> pos_of.(j)) (Hashtbl.find ctx.consumers v))
          in
          (size v, first, first) :: List.map (fun c -> (size v, c, c)) cs
        else
          let first, last = lifetime ctx pos_of extra v in
          [ (size v, first, last) ])
      ctx.values
  in
  let group_segs =
    Array.to_list
      (Array.map
         (fun g ->
           let total =
             Array.fold_left (fun a v -> a + align sub_align (Hashtbl.find ctx.sizes v)) 0 g
           in
           let first, last = lifetime ctx pos_of extra g.(0) in
           (align block_align total, first, last))
         groups)
  in
  singles @ group_segs

let eval_peak ctx pos_of ~recomputed ~extra ~groups =
  peak_of_segments ctx.n (segments ctx pos_of ~recomputed ~extra ~groups)

(* --- pass 1: greedy memory-minimizing list schedule ---------------------- *)

let greedy_order ctx =
  let n = ctx.n in
  let deps =
    Array.map
      (fun vs -> List.sort_uniq Int.compare (List.map (Hashtbl.find ctx.producer) vs))
      ctx.ins_u
  in
  let blocked = Array.map List.length deps in
  let succs = Array.make n [] in
  Array.iteri (fun j ds -> List.iter (fun i -> succs.(i) <- j :: succs.(i)) ds) deps;
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace remaining v
        (match Hashtbl.find_opt ctx.consumers v with Some cs -> List.length cs | None -> 0))
    ctx.values;
  let size v = align block_align (Hashtbl.find ctx.sizes v) in
  let alloc j = List.fold_left (fun a v -> a + size v) 0 ctx.outs.(j) in
  let freed j =
    List.fold_left
      (fun a v ->
        match Hashtbl.find_opt remaining v with
        | Some 1 when not (Hashtbl.mem ctx.is_out v) -> a + size v
        | _ -> a)
      0 ctx.ins_u.(j)
    + List.fold_left
        (fun a v ->
          if Hashtbl.find_opt ctx.consumers v = None && not (Hashtbl.mem ctx.is_out v) then
            a + size v
          else a)
        0 ctx.outs.(j)
  in
  let order = Array.make n 0 in
  let scheduled = Array.make n false in
  let live = ref 0 in
  for step = 0 to n - 1 do
    let best = ref (-1) and best_la = ref max_int in
    for j = 0 to n - 1 do
      if (not scheduled.(j)) && blocked.(j) = 0 then begin
        let la = !live + alloc j - freed j in
        if la < !best_la then begin
          best := j;
          best_la := la
        end
      end
    done;
    let j = !best in
    order.(step) <- j;
    scheduled.(j) <- true;
    live := !best_la;
    List.iter
      (fun v ->
        match Hashtbl.find_opt remaining v with
        | Some c -> Hashtbl.replace remaining v (c - 1)
        | None -> ())
      ctx.ins_u.(j);
    List.iter (fun s -> blocked.(s) <- blocked.(s) - 1) succs.(j)
  done;
  order

(* --- pass 2: just-in-time recomputation of cheap producers --------------- *)

(* A value is recomputable when re-running the {e slice} of its
   producing cluster that feeds it (backward closure over member-level
   deps — not the whole cluster, which may carry reductions for its
   other outputs) is ~free: every slice member elementwise or
   shape-manipulating, summed per-element cost below [cheap_flops]. The
   canonical case is a broadcast attention mask fused into layer 1's
   softmax and kept live for every later layer. The slice's external
   inputs must stay live to the last recompute site; [extra] charges
   exactly that. Returns the produced external inputs, or [None] when
   the slice isn't cheap. *)
let recompute_inputs est ctx j v =
  let g = (Estimate.executable est).Executable.g in
  let c = ctx.clusters.(j) in
  let member = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member m ()) c.Cluster.members;
  let needed = Hashtbl.create 8 in
  let rec visit mid =
    if not (Hashtbl.mem needed mid) then begin
      Hashtbl.replace needed mid ();
      Array.iter (fun a -> if Hashtbl.mem member a then visit a) (Graph.inst g mid).Graph.args
    end
  in
  visit v;
  let slice = List.filter (Hashtbl.mem needed) c.Cluster.members in
  let classes_ok =
    List.for_all
      (fun mid ->
        match Op.fusion_class (Graph.inst g mid).Graph.op with
        | Op.Elementwise | Op.Shape_manipulating -> true
        | _ -> false)
      slice
  in
  let flops =
    List.fold_left (fun a mid -> a +. Op.flops_per_element (Graph.inst g mid).Graph.op) 0.0 slice
  in
  if not (classes_ok && flops <= cheap_flops) then None
  else
    Some
      (List.sort_uniq Int.compare
         (List.concat_map
            (fun mid ->
              List.filter
                (fun a -> (not (Hashtbl.mem member a)) && Hashtbl.mem ctx.producer a)
                (Array.to_list (Graph.inst g mid).Graph.args))
            slice))

let recompute_pass est ctx pos_of =
  let candidates =
    List.concat
      (List.init ctx.n (fun j ->
           List.filter_map
             (fun v ->
               if Hashtbl.mem ctx.is_out v then None
               else
                 match Hashtbl.find_opt ctx.consumers v with
                 | Some (_ :: _ :: _ as cs) -> (
                     match recompute_inputs est ctx j v with
                     | Some inputs ->
                         let ps = List.sort Int.compare (List.map (fun c -> pos_of.(c)) cs) in
                         let span = List.nth ps (List.length ps - 1) - List.hd ps in
                         if span > 0 then
                           Some
                             ( Hashtbl.find ctx.sizes v * span,
                               v,
                               inputs,
                               List.nth ps (List.length ps - 1) )
                         else None
                     | None -> None)
                 | _ -> None)
             ctx.outs.(j)))
  in
  let candidates =
    List.sort
      (fun (sa, va, _, _) (sb, vb, _, _) ->
        if sa <> sb then Int.compare sb sa else Int.compare va vb)
      candidates
  in
  let recomputed = ref [] in
  let pinned = Hashtbl.create 8 in
  let extra = ref [] in
  let peak = ref (eval_peak ctx pos_of ~recomputed:[] ~extra:[] ~groups:[||]) in
  List.iter
    (fun (_, v, inputs, last_site) ->
      if List.length !recomputed < max_recompute && not (Hashtbl.mem pinned v) then begin
        (* can't extend the life of something itself recomputed *)
        if not (List.exists (fun u -> List.mem u !recomputed) inputs) then begin
          let extra' =
            List.fold_left
              (fun acc u ->
                let cur = Option.value (List.assoc_opt u acc) ~default:min_int in
                (u, max cur last_site) :: List.remove_assoc u acc)
              !extra inputs
          in
          let rec' = v :: !recomputed in
          let p = eval_peak ctx pos_of ~recomputed:rec' ~extra:extra' ~groups:[||] in
          if p < !peak then begin
            recomputed := rec';
            extra := extra';
            peak := p;
            List.iter (fun u -> Hashtbl.replace pinned u ()) inputs
          end
        end
      end)
    candidates;
  (List.sort Int.compare !recomputed, !extra)

(* --- pass 3: regroup small same-lifetime buffers ------------------------- *)

let regroup ctx pos_of ~recomputed ~extra =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if (not (List.mem v recomputed)) && Hashtbl.find ctx.sizes v <= small_buffer_bytes
      then begin
        let key = lifetime ctx pos_of extra v in
        Hashtbl.replace tbl key (v :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
      end)
    ctx.values;
  let groups =
    Hashtbl.fold
      (fun _ vs acc ->
        if List.length vs >= 2 then Array.of_list (List.sort Int.compare vs) :: acc else acc)
      tbl []
  in
  (* deterministic order: by first member id *)
  Array.of_list (List.sort (fun a b -> Int.compare a.(0) b.(0)) groups)

(* --- decisions ----------------------------------------------------------- *)

let identity_order n = Array.init n (fun i -> i)

let identity ?(env = []) est bnd =
  let peak =
    match Estimate.live_peak_bytes est bnd with Some p -> p | None -> 0
  in
  {
    order = identity_order (Estimate.n_items est);
    groups = [||];
    recomputed = [||];
    env;
    peak_before = peak;
    peak_after = peak;
  }

(* Re-derive the recompute lifetime extensions a decision implies: each
   recomputed value keeps its producing slice's external inputs live to
   its last consumer site. Deterministic from (executable, decision). *)
let extras_of est ctx pos_of recomputed =
  Array.fold_left
    (fun acc v ->
      let j = Hashtbl.find ctx.producer v in
      let inputs =
        match recompute_inputs est ctx j v with Some us -> us | None -> ctx.ins_u.(j)
      in
      let last_site =
        List.fold_left (fun a c -> max a pos_of.(c)) 0 (Hashtbl.find ctx.consumers v)
      in
      List.fold_left
        (fun acc u ->
          let cur = Option.value (List.assoc_opt u acc) ~default:min_int in
          (u, max cur last_site) :: List.remove_assoc u acc)
        acc inputs)
    [] recomputed

let decide ?(allow_recompute = true) ?(env = []) est bnd =
  match build_ctx est bnd with
  | exception Unsized -> identity ~env est bnd
  | ctx when ctx.n = 0 -> identity ~env est bnd
  | ctx ->
      let id_order = identity_order ctx.n in
      let peak_before =
        eval_peak ctx (pos_of_order id_order) ~recomputed:[] ~extra:[] ~groups:[||]
      in
      let order =
        let cand = greedy_order ctx in
        let p = eval_peak ctx (pos_of_order cand) ~recomputed:[] ~extra:[] ~groups:[||] in
        if p < peak_before then cand else id_order
      in
      let pos_of = pos_of_order order in
      let recomputed, extra =
        if allow_recompute then recompute_pass est ctx pos_of else ([], [])
      in
      let groups = regroup ctx pos_of ~recomputed ~extra in
      let peak_after = eval_peak ctx pos_of ~recomputed ~extra ~groups in
      {
        order;
        groups;
        recomputed = Array.of_list recomputed;
        env;
        peak_before;
        peak_after = min peak_after peak_before;
      }

let reduced_peak est d bnd =
  match build_ctx est bnd with
  | exception Unsized -> None
  | ctx when ctx.n = 0 -> Some 0
  | ctx ->
      let pos_of = pos_of_order d.order in
      let extra = extras_of est ctx pos_of d.recomputed in
      Some
        (eval_peak ctx pos_of
           ~recomputed:(Array.to_list d.recomputed)
           ~extra ~groups:d.groups)

(* --- concrete planning over the transformed lifetimes -------------------- *)

type block = { b_off : int; b_size : int }

let rec insert_free blk = function
  | [] -> [ blk ]
  | b :: rest as all ->
      if blk.b_off + blk.b_size = b.b_off then
        { b_off = blk.b_off; b_size = blk.b_size + b.b_size } :: rest
      else if b.b_off + b.b_size = blk.b_off then
        insert_free { b_off = b.b_off; b_size = b.b_size + blk.b_size } rest
      else if blk.b_off < b.b_off then blk :: all
      else b :: insert_free blk rest

type unit_ = {
  u_values : (int * int * int) list; (* value, offset within block, size *)
  u_size : int;
  u_first : int;
  u_last : int;
}

let units_of ctx pos_of ~recomputed ~extra ~groups =
  let grouped = Hashtbl.create 8 in
  Array.iter (fun g -> Array.iter (fun v -> Hashtbl.replace grouped v ()) g) groups;
  let singles =
    List.concat_map
      (fun v ->
        if Hashtbl.mem grouped v then []
        else
          let sz = align block_align (Hashtbl.find ctx.sizes v) in
          if List.mem v recomputed then
            let first = pos_of.(Hashtbl.find ctx.producer v) in
            let cs =
              List.sort Int.compare
                (List.map (fun j -> pos_of.(j)) (Hashtbl.find ctx.consumers v))
            in
            let segs = (first, first) :: List.map (fun c -> (c, c)) cs in
            List.map
              (fun (f, l) -> { u_values = [ (v, 0, sz) ]; u_size = sz; u_first = f; u_last = l })
              segs
          else
            let first, last = lifetime ctx pos_of extra v in
            [ { u_values = [ (v, 0, sz) ]; u_size = sz; u_first = first; u_last = last } ])
      ctx.values
  in
  let group_units =
    Array.to_list
      (Array.map
         (fun g ->
           let within = ref 0 in
           let members =
             Array.to_list
               (Array.map
                  (fun v ->
                    let sz = align sub_align (Hashtbl.find ctx.sizes v) in
                    let off = !within in
                    within := !within + sz;
                    (v, off, sz))
                  g)
           in
           let first, last = lifetime ctx pos_of extra g.(0) in
           {
             u_values = members;
             u_size = align block_align !within;
             u_first = first;
             u_last = last;
           })
         groups)
  in
  singles @ group_units

let plan est d bnd : Memplan.t =
  let ctx = build_ctx est bnd in
  let pos_of = pos_of_order d.order in
  let extra = extras_of est ctx pos_of d.recomputed in
  let units =
    units_of ctx pos_of ~recomputed:(Array.to_list d.recomputed) ~extra ~groups:d.groups
  in
  (* stable creation order within a position keeps planning deterministic *)
  let units = List.stable_sort (fun a b -> Int.compare a.u_first b.u_first) units in
  let free = ref [] in
  let top = ref 0 in
  let allocate size =
    let best =
      List.fold_left
        (fun acc b ->
          if b.b_size >= size then
            match acc with Some best when best.b_size <= b.b_size -> acc | _ -> Some b
          else acc)
        None !free
    in
    match best with
    | Some b ->
        free := List.filter (fun x -> x <> b) !free;
        if b.b_size > size then
          free := insert_free { b_off = b.b_off + size; b_size = b.b_size - size } !free;
        b.b_off
    | None ->
        let off = !top in
        top := !top + size;
        off
  in
  let placed = ref [] in
  for p = 0 to ctx.n - 1 do
    List.iter
      (fun u -> if u.u_first = p then placed := (u, allocate u.u_size) :: !placed)
      units;
    List.iter
      (fun (u, off) ->
        if u.u_last = p then free := insert_free { b_off = off; b_size = u.u_size } !free)
      !placed
  done;
  let assignments =
    List.concat_map
      (fun (u, off) ->
        List.map
          (fun (v, w, sz) ->
            {
              Memplan.value = v;
              offset = off + w;
              size = sz;
              first_pos = u.u_first;
              last_pos = u.u_last;
            })
          u.u_values)
      (List.rev !placed)
  in
  let naive_bytes = List.fold_left (fun a (x : Memplan.assignment) -> a + x.Memplan.size) 0 assignments in
  {
    Memplan.assignments;
    arena_bytes = !top;
    naive_bytes;
    resident_bytes = Option.value (Estimate.resident_bytes est bnd) ~default:0;
  }

let savings_pct d =
  if d.peak_before <= 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int d.peak_after /. float_of_int d.peak_before))

let moved d =
  let m = ref 0 in
  Array.iteri (fun k o -> if k <> o then incr m) d.order;
  !m

let to_string d =
  let env_str =
    if d.env = [] then ""
    else
      " @ "
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) d.env)
  in
  Printf.sprintf
    "peak %.2fMB -> %.2fMB (-%.1f%%): moved=%d groups=%d(%d bufs) recompute=%d%s"
    (float_of_int d.peak_before /. 1e6)
    (float_of_int d.peak_after /. 1e6)
    (savings_pct d) (moved d) (Array.length d.groups)
    (Array.fold_left (fun a g -> a + Array.length g) 0 d.groups)
    (Array.length d.recomputed) env_str
