(** Compile-time + runtime combined code generation (paper §6).

    Each fusion cluster compiles into one {!t} carrying a set of
    speculative {!version}s ordered most-specialized-first, with the
    always-valid generic version last. At runtime, concrete shapes
    select the first version whose guard holds ({!launch_for}) and fix
    the launch dimensions; a single compilation therefore serves
    arbitrary shapes.

    Two runtime facets per kernel: {!eval} computes the numeric result
    (reference semantics — fusion never changes numerics), and
    {!work_of} / {!library_work} produce the analytical cost descriptor
    charged to the simulated device. *)

module Cluster = Fusion.Cluster

type config = { enable_speculation : bool }

val default_config : config
val no_speculation_config : config

(** Explicit launch schedule carried by a tuned version. [None] on a
    version means the legacy default (256 threads, 4 elements per
    thread), so everything {!build} mints is byte-compatible with the
    pre-tuner behaviour. *)
type sched = {
  s_threads : int;  (** threads per block *)
  s_tile : int;  (** elements each thread processes *)
  s_smem_bytes : int;  (** static shared-memory footprint *)
  s_max_domain : int option;
      (** applicability window: guard rejects domain numel past this *)
}

type version = {
  tag : string;  (** e.g. ["vec4+tree"], ["generic"] *)
  vectorized : bool;  (** float4 loads/stores; guard: innermost %% 4 = 0 *)
  tree_reduce : bool;  (** shuffle tree reduction; guard: pow2 row *)
  persistent : bool;  (** single-wave schedule; guard: small domain *)
  sched : sched option;  (** tuned launch schedule; [None] = default 256x4 *)
}

val generic_version : version

val sched_threads : version -> int
(** Threads per block the version launches with (256 when untuned). *)

val sched_tile : version -> int
(** Elements per thread (4 when untuned). *)

type t = {
  name : string;
  cluster : Cluster.t;
  versions : version list;
  has_reduce : bool;
  has_transpose : bool;
  reduce_ids : int list;
}

type launch = {
  version : version;
  domain_numel : int;
  row : int;  (** product of the reduced dims; 1 without a reduce *)
  blocks : int;
  threads : int;
}

val is_pow2 : int -> bool

val version_guard :
  Gpusim.Device.t -> version -> innermost:int -> row:int -> domain_numel:int -> bool

val build : Ir.Graph.t -> config -> Cluster.t -> t
(** Compile-time half: derive the version set and kernel structure. *)

val launch_for : Ir.Graph.t -> Gpusim.Device.t -> Symshape.Table.binding -> t -> launch
(** Runtime half: evaluate shapes, pick the best guarded version and the
    launch dimensions. *)

val launch_with :
  Ir.Graph.t -> Gpusim.Device.t -> Symshape.Table.binding -> t -> version -> launch
(** Launch dims for an explicitly chosen version (no guard search) — the
    tuner's scoring hook, and how despeculation recomputes default dims. *)

val concrete_row : Ir.Graph.t -> Symshape.Table.binding -> t -> int
(** Product of the reduced dims at a binding (1 without a reduce). *)

val bytes_of_value : Ir.Graph.t -> Symshape.Table.binding -> int -> int

val work_of :
  Ir.Graph.t -> Symshape.Table.binding -> t -> launch -> Gpusim.Cost.kernel_work
(** Cost descriptor of one fused-kernel execution. Global traffic counts
    only the cluster's boundary (that is fusion's point); gather table
    operands are charged by rows actually read. *)

val library_work : Ir.Graph.t -> Symshape.Table.binding -> Cluster.t -> Gpusim.Cost.kernel_work
(** Cost of a dot / conv2d library kernel. *)

val eval :
  Ir.Graph.t ->
  Symshape.Table.binding ->
  t ->
  (int -> Tensor.Nd.t) ->
  (int * Tensor.Nd.t) list
(** Execute the kernel's data plane: evaluate members topologically and
    return the cluster's output values. *)
