(* Compile-time + runtime combined code generation (paper §6).

   At compile time each fusion cluster becomes one kernel, carrying a
   small set of speculative versions (vectorized loads, power-of-two
   tree reduction, persistent small-shape schedule). Shapes stay
   symbolic. At runtime, concrete shapes select the best version whose
   guard holds and determine the launch dimensions; the generic version
   always applies, so a single compilation serves arbitrary shapes. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module Cluster = Fusion.Cluster

type config = { enable_speculation : bool }

let default_config = { enable_speculation = true }
let no_speculation_config = { enable_speculation = false }

(* Explicit launch schedule attached to a tuned version. [None] means
   the legacy default (256 threads, 4 elements per thread), so every
   version minted by [build] behaves exactly as before the tuner
   existed. [s_max_domain] is an applicability window: the tuner emits
   one version per shape-bucket window, ordered smallest window first,
   and the guard rejects shapes past the bound so the next (wider)
   version takes over. *)
type sched = {
  s_threads : int; (* threads per block *)
  s_tile : int; (* elements each thread processes *)
  s_smem_bytes : int; (* static shared-memory footprint of the schedule *)
  s_max_domain : int option; (* serve shapes with domain numel <= bound *)
}

(* One speculative specialization of a kernel. *)
type version = {
  tag : string;
  vectorized : bool; (* float4 loads/stores *)
  tree_reduce : bool; (* power-of-two shuffle reduction *)
  persistent : bool; (* single-wave schedule for small shapes *)
  sched : sched option; (* tuned launch schedule; None = default 256x4 *)
}

let generic_version =
  { tag = "generic"; vectorized = false; tree_reduce = false; persistent = false; sched = None }

let sched_threads v = match v.sched with Some s -> s.s_threads | None -> 256
let sched_tile v = match v.sched with Some s -> s.s_tile | None -> 4

type t = {
  name : string;
  cluster : Cluster.t;
  versions : version list; (* most specialized first; generic last *)
  has_reduce : bool;
  has_transpose : bool; (* non-coalesced access pattern *)
  reduce_ids : int list;
}

(* Concrete per-execution facts derived from the runtime shape binding. *)
type launch = {
  version : version;
  domain_numel : int;
  row : int; (* product of reduced dims (1 if no reduce) *)
  blocks : int;
  threads : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let version_guard (d : Gpusim.Device.t) v ~innermost ~row ~domain_numel =
  (not v.vectorized || innermost mod 4 = 0)
  && ((not v.tree_reduce) || is_pow2 row)
  && ((not v.persistent) || domain_numel <= d.sm_count * 1024)
  && (match v.sched with
     | Some { s_max_domain = Some bound; _ } -> domain_numel <= bound
     | _ -> true)

(* --- compile time --------------------------------------------------------- *)

let build (g : Graph.t) (config : config) (c : Cluster.t) : t =
  let has_reduce = ref false and has_transpose = ref false in
  let reduce_ids = ref [] in
  List.iter
    (fun m ->
      match (Graph.inst g m).op with
      | Op.Reduce _ ->
          has_reduce := true;
          reduce_ids := m :: !reduce_ids
      | Op.Transpose _ -> has_transpose := true
      | _ -> ())
    c.Cluster.members;
  let versions =
    if not config.enable_speculation then [ generic_version ]
    else begin
      (* All combinations of the applicable speculation axes, most
         specialized first. The reduce axis only exists for kernels that
         actually reduce. *)
      let bools = [ true; false ] in
      let combos =
        List.concat_map
          (fun vec ->
            List.concat_map
              (fun tree ->
                List.map
                  (fun pers ->
                    {
                      tag =
                        String.concat "+"
                          (List.filter
                             (fun s -> s <> "")
                             [
                               (if vec then "vec4" else "");
                               (if tree then "tree" else "");
                               (if pers then "persist" else "");
                             ])
                        |> (fun s -> if s = "" then "generic" else s);
                      vectorized = vec;
                      tree_reduce = tree;
                      persistent = pers;
                      sched = None;
                    })
                  bools)
              (if !has_reduce then bools else [ false ]))
          bools
      in
      let specificity v =
        (if v.vectorized then 4 else 0)
        + (if v.tree_reduce then 2 else 0)
        + if v.persistent then 1 else 0
      in
      List.sort (fun a b -> Stdlib.compare (specificity b) (specificity a)) combos
    end
  in
  {
    name = Printf.sprintf "kernel_%d_%s" c.Cluster.cid (Cluster.kind_to_string c.Cluster.kind);
    cluster = c;
    versions;
    has_reduce = !has_reduce;
    has_transpose = !has_transpose;
    reduce_ids = List.rev !reduce_ids;
  }

(* --- runtime: launch-dimension + version selection ------------------------ *)

let concrete_row (g : Graph.t) (bnd : Table.binding) (k : t) =
  match k.reduce_ids with
  | [] -> 1
  | rid :: _ -> (
      let i = Graph.inst g rid in
      match i.op with
      | Op.Reduce { dims; _ } ->
          let input = Graph.inst g i.args.(0) in
          let tab = Graph.symtab g in
          List.fold_left (fun acc d -> acc * Table.eval_dim_exn tab bnd input.shape.(d)) 1 dims
      | _ -> 1)

(* Launch dims for an explicitly chosen version (no guard search): the
   schedule fixes threads and per-thread tile, the shape fixes the rest.
   The tuner scores candidate schedules through this, and the breaker's
   despeculate path uses it to recompute *default* dims when pinning a
   kernel to [generic_version] (a tuned version's block count must not
   leak into the generic launch). *)
let launch_with (g : Graph.t) (_d : Gpusim.Device.t) (bnd : Table.binding) (k : t)
    (version : version) : launch =
  let tab = Graph.symtab g in
  let domain = Table.eval_shape tab bnd k.cluster.Cluster.domain in
  let domain_numel = Tensor.Shape.numel domain in
  let row = concrete_row g bnd k in
  let threads = sched_threads version in
  let tile = sched_tile version in
  let blocks =
    match k.cluster.Cluster.kind with
    | Cluster.Input | Cluster.Stitch -> max 1 (domain_numel / max 1 row)
    | _ -> max 1 ((domain_numel + (threads * tile) - 1) / (threads * tile))
  in
  { version; domain_numel; row; blocks; threads }

let launch_for (g : Graph.t) (d : Gpusim.Device.t) (bnd : Table.binding) (k : t) : launch =
  let tab = Graph.symtab g in
  let domain = Table.eval_shape tab bnd k.cluster.Cluster.domain in
  let domain_numel = Tensor.Shape.numel domain in
  let row = concrete_row g bnd k in
  let innermost =
    if Array.length domain = 0 then 1 else domain.(Array.length domain - 1)
  in
  let version =
    List.find
      (fun v -> version_guard d v ~innermost ~row ~domain_numel)
      k.versions
    (* the generic version always guards true, so find cannot fail *)
  in
  launch_with g d bnd k version

(* --- runtime: cost ---------------------------------------------------------- *)

let bytes_of_value (g : Graph.t) (bnd : Table.binding) id =
  let i = Graph.inst g id in
  let shape = Table.eval_shape (Graph.symtab g) bnd i.shape in
  Tensor.Shape.numel shape * Tensor.Dtype.byte_size i.dtype

(* Work descriptor of one fused-kernel execution: global traffic is only
   the cluster's external inputs and outputs (that is the point of
   fusion); arithmetic is summed over members. *)
let work_of (g : Graph.t) (bnd : Table.binding) (k : t) (l : launch) : Gpusim.Cost.kernel_work
    =
  let tab = Graph.symtab g in
  (* A gather kernel only touches the rows it looks up, not the whole
     table; charge the table operand as the gathered output size. *)
  let input_bytes id =
    let uses =
      List.filter
        (fun m -> Array.exists (fun a -> a = id) (Graph.inst g m).args)
        k.cluster.Cluster.members
    in
    let gather_table_use m =
      let i = Graph.inst g m in
      match i.op with Op.Gather -> i.args.(0) = id && i.args.(1) <> id | _ -> false
    in
    if uses <> [] && List.for_all gather_table_use uses then
      min (bytes_of_value g bnd id)
        (List.fold_left (fun acc m -> acc + bytes_of_value g bnd m) 0 uses)
    else bytes_of_value g bnd id
  in
  let bytes_read =
    List.fold_left (fun acc id -> acc + input_bytes id) 0 k.cluster.Cluster.inputs
  in
  let bytes_written =
    List.fold_left (fun acc id -> acc + bytes_of_value g bnd id) 0 k.cluster.Cluster.outputs
  in
  let flops =
    List.fold_left
      (fun acc m ->
        let i = Graph.inst g m in
        let per_elem = Op.flops_per_element i.op in
        if per_elem = 0.0 then acc
        else
          let numel =
            match i.op with
            | Op.Reduce _ ->
                (* a reduce touches every input element once *)
                let input = Graph.inst g i.args.(0) in
                Tensor.Shape.numel (Table.eval_shape tab bnd input.shape)
            | _ -> Tensor.Shape.numel (Table.eval_shape tab bnd i.shape)
          in
          let mult =
            match i.op with
            | Op.Reduce _ when not l.version.tree_reduce -> 1.35 *. per_elem
            | _ -> per_elem
          in
          acc +. (mult *. float_of_int numel))
      0.0 k.cluster.Cluster.members
  in
  let mem_efficiency =
    let base = if l.version.vectorized then 0.92 else 0.68 in
    let base = if k.has_transpose then base *. 0.8 else base in
    (* stitch kernels re-read relayed rows from shared memory: slightly
       better effective bandwidth on the global side *)
    if k.cluster.Cluster.kind = Cluster.Stitch then Float.min 0.95 (base +. 0.02) else base
  in
  {
    Gpusim.Cost.bytes_read;
    bytes_written;
    flops;
    mem_efficiency;
    compute_efficiency = 0.55;
    blocks = l.blocks;
    threads_per_block = l.threads;
    fp16_math =
      (match k.cluster.Cluster.members with
      | m :: _ -> (Graph.inst g m).dtype = Tensor.Dtype.F16
      | [] -> false);
  }

(* Library (dot / conv) kernels bypass fusion codegen. *)
let library_work (g : Graph.t) (bnd : Table.binding) (c : Cluster.t) : Gpusim.Cost.kernel_work =
  let tab = Graph.symtab g in
  match c.Cluster.members with
  | [ m ] -> (
      let i = Graph.inst g m in
      let eb = Tensor.Dtype.byte_size i.dtype in
      match i.op with
      | Op.Dot ->
          let lhs = Graph.inst g i.args.(0) in
          let out_shape = Table.eval_shape tab bnd i.shape in
          let lhs_shape = Table.eval_shape tab bnd lhs.shape in
          let r = Array.length out_shape in
          let m_dim = out_shape.(r - 2) and n_dim = out_shape.(r - 1) in
          let k_dim = lhs_shape.(Array.length lhs_shape - 1) in
          let batch = Tensor.Shape.numel (Array.sub out_shape 0 (r - 2)) in
          Gpusim.Cost.gemm_work ~batch ~m:m_dim ~n:n_dim ~k:k_dim ~elem_bytes:eb
      | Op.Conv2d _ ->
          let input = Graph.inst g i.args.(0) in
          let filt = Graph.inst g i.args.(1) in
          let out_shape = Table.eval_shape tab bnd i.shape in
          let in_shape = Table.eval_shape tab bnd input.shape in
          let f_shape = Sym.concrete_exn filt.shape in
          Gpusim.Cost.conv2d_work
            ~out_numel:(Tensor.Shape.numel out_shape)
            ~kh:f_shape.(0) ~kw:f_shape.(1) ~cin:f_shape.(2)
            ~in_bytes:((Tensor.Shape.numel in_shape + Tensor.Shape.numel f_shape) * eb)
            ~out_bytes:(Tensor.Shape.numel out_shape * eb)
      | _ -> invalid_arg "library_work: not a library op")
  | _ -> invalid_arg "library_work: library clusters are singletons"

(* --- runtime: data plane ---------------------------------------------------

   The kernel's numeric effect is computed by evaluating its members in
   topological order with the reference semantics; fusion and
   speculation choices never change results, only cost. *)

let eval (g : Graph.t) (bnd : Table.binding) (k : t) (value_of : int -> Tensor.Nd.t) :
    (int * Tensor.Nd.t) list =
  let local : (int, Tensor.Nd.t) Hashtbl.t = Hashtbl.create 16 in
  let lookup id =
    match Hashtbl.find_opt local id with Some v -> v | None -> value_of id
  in
  List.iter
    (fun m ->
      let i = Graph.inst g m in
      Hashtbl.replace local m (Ir.Interp.eval_inst g bnd lookup i))
    k.cluster.Cluster.members;
  List.map (fun o -> (o, Hashtbl.find local o)) k.cluster.Cluster.outputs
