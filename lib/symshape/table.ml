(* Global symbolic-dimension table: union-find over symbols with an
   optional static binding per class, distribution info (range, likely
   values), and a fact base of product equalities used to reason through
   reshapes. This is the OCaml rendition of the paper's cross-level
   symbolic shape representation (§4). *)

(* How a symbol's value is computed from other dims, when it is not an
   independent input dimension. [Affine] covers conv/pool output extents
   ((base + add) / div * mul + post, floor division); [Sum_of] covers
   concatenation along a dynamic axis. *)
type deriv =
  | Affine of { base : Sym.dim; add : int; div : int; mul : int; post : int }
  | Sum_of of Sym.dim list

type info = {
  mutable parent : int; (* union-find parent; self if root *)
  mutable static : int option; (* known value of the class, if any *)
  mutable lb : int; (* lower bound, >= 1 for tensor dims *)
  mutable ub : int option; (* upper bound if known *)
  mutable likely : int list; (* distribution hint: likely runtime values *)
  mutable growing : bool; (* monotone across a request's lifetime (KV cache) *)
  mutable deriv : deriv option;
  name : string;
}

(* A normalized symbolic product: coeff * product of root symbol ids
   (sorted, with multiplicity). *)
type product = { coeff : int; syms : int list }

type t = {
  mutable syms : info array;
  mutable count : int;
  mutable product_facts : (Sym.dim array * Sym.dim array) list;
}

exception Inconsistent of string

let inconsistent fmt = Format.kasprintf (fun s -> raise (Inconsistent s)) fmt

let create () = { syms = Array.make 0 (Obj.magic 0); count = 0; product_facts = [] }

let ensure_capacity t n =
  let cap = Array.length t.syms in
  if n > cap then begin
    let ncap = max 16 (max n (2 * cap)) in
    let fresh_info i =
      if i < cap then t.syms.(i)
      else
        { parent = i; static = None; lb = 1; ub = None; likely = []; growing = false;
          deriv = None; name = "" }
    in
    t.syms <- Array.init ncap fresh_info
  end

let fresh ?(name = "") ?(lb = 1) ?ub ?(likely = []) t =
  let id = t.count in
  ensure_capacity t (id + 1);
  t.count <- id + 1;
  t.syms.(id) <-
    { parent = id; static = None; lb; ub; likely; growing = false; deriv = None; name };
  Sym.Sym id

let num_symbols t = t.count

let rec find t id =
  let p = t.syms.(id).parent in
  if p = id then id
  else begin
    let root = find t p in
    t.syms.(id).parent <- root;
    root
  end

let info t id = t.syms.(find t id)

(* Canonical form of a dim: its static value if the class is bound. *)
let resolve t (d : Sym.dim) : Sym.dim =
  match d with
  | Sym.Static _ -> d
  | Sym.Sym id -> (
      let root = find t id in
      match t.syms.(root).static with Some v -> Sym.Static v | None -> Sym.Sym root)

let bind_static t id v =
  let root = find t id in
  let i = t.syms.(root) in
  (match i.static with
  | Some v' when v' <> v -> inconsistent "symbol %s bound to both %d and %d" i.name v' v
  | _ -> ());
  if v < i.lb then inconsistent "symbol %s value %d below lower bound %d" i.name v i.lb;
  (match i.ub with
  | Some ub when v > ub -> inconsistent "symbol %s value %d above upper bound %d" i.name v ub
  | _ -> ());
  i.static <- Some v

let merge_roots t a b =
  if a <> b then begin
    let ia = t.syms.(a) and ib = t.syms.(b) in
    (match (ia.static, ib.static) with
    | Some x, Some y when x <> y -> inconsistent "merging symbols with values %d and %d" x y
    | _ -> ());
    (* Keep [a] as root; fold b's knowledge into it. *)
    ib.parent <- a;
    ia.static <- (match ia.static with Some _ as s -> s | None -> ib.static);
    ia.lb <- max ia.lb ib.lb;
    ia.ub <-
      (match (ia.ub, ib.ub) with
      | Some x, Some y -> Some (min x y)
      | (Some _ as s), None | None, s -> s);
    ia.likely <- List.sort_uniq Stdlib.compare (ia.likely @ ib.likely);
    ia.growing <- ia.growing || ib.growing
  end

let merge t (a : Sym.dim) (b : Sym.dim) =
  match (resolve t a, resolve t b) with
  | Sym.Static x, Sym.Static y ->
      if x <> y then inconsistent "cannot merge static dims %d and %d" x y
  | Sym.Static v, Sym.Sym id | Sym.Sym id, Sym.Static v -> bind_static t id v
  | Sym.Sym x, Sym.Sym y -> merge_roots t (find t x) (find t y)

let equal_dims t a b =
  match (resolve t a, resolve t b) with
  | Sym.Static x, Sym.Static y -> x = y
  | Sym.Sym x, Sym.Sym y -> x = y
  | _ -> false

let equal_shapes t (a : Sym.shape) (b : Sym.shape) =
  Sym.rank a = Sym.rank b && Array.for_all2 (equal_dims t) a b

let lower_bound t (d : Sym.dim) =
  match resolve t d with Sym.Static v -> v | Sym.Sym id -> (info t id).lb

let upper_bound t (d : Sym.dim) =
  match resolve t d with Sym.Static v -> Some v | Sym.Sym id -> (info t id).ub

let likely_values t (d : Sym.dim) =
  match resolve t d with Sym.Static v -> [ v ] | Sym.Sym id -> (info t id).likely

(* Display metadata for symbolic expressions (the memory estimator's
   peak polynomials): prefer the class root's name, fall back to the
   symbol's own creation name. *)
let dim_name t (d : Sym.dim) =
  match d with
  | Sym.Static _ -> None
  | Sym.Sym id ->
      let root_name = (info t id).name in
      let n = if root_name <> "" then root_name else t.syms.(id).name in
      if n = "" then None else Some n

let set_range t (d : Sym.dim) ?lb ?ub () =
  match resolve t d with
  | Sym.Static v ->
      let bad_lb = match lb with Some l -> v < l | None -> false in
      let bad_ub = match ub with Some u -> v > u | None -> false in
      if bad_lb || bad_ub then inconsistent "range excludes known value %d" v
  | Sym.Sym id ->
      let i = info t id in
      (match lb with Some l -> i.lb <- max i.lb l | None -> ());
      (match ub with
      | Some u ->
          i.ub <- (match i.ub with Some u' -> Some (min u u') | None -> Some u)
      | None -> ())

let add_likely t (d : Sym.dim) vs =
  match resolve t d with
  | Sym.Static _ -> ()
  | Sym.Sym id ->
      let i = info t id in
      i.likely <- List.sort_uniq Stdlib.compare (vs @ i.likely)

(* Monotone-growth fact: the dim only ever increases over a request's
   lifetime (the KV-cache length of autoregressive decoding). Advisory,
   like [likely]: it never constrains a binding, and it is deliberately
   left out of the structural fingerprint so marking a dim cannot cold a
   persisted compile cache. Consumers (the decode scheduler) use it to
   pre-declare the finite bucket ladder the dim will climb, so growth
   mints a bounded set of shape signatures instead of one per step. *)
let set_growing t (d : Sym.dim) =
  match resolve t d with
  | Sym.Static _ -> ()
  | Sym.Sym id -> (info t id).growing <- true

let growing t (d : Sym.dim) =
  match resolve t d with Sym.Static _ -> false | Sym.Sym id -> (info t id).growing

let max_likely = 16

(* Replace semantics: an online feedback loop re-estimates the likely
   set from live traffic, so stale hints must be droppable — [add_likely]
   only ever grows the set. Values outside [lb, ub] are discarded rather
   than raised: a hint is advisory, never a new constraint. *)
let set_likely t (d : Sym.dim) vs =
  match resolve t d with
  | Sym.Static _ -> ()
  | Sym.Sym id ->
      let i = info t id in
      let ok v = v >= i.lb && match i.ub with Some u -> v <= u | None -> true in
      let vs = List.sort_uniq Stdlib.compare (List.filter ok vs) in
      i.likely <- List.filteri (fun idx _ -> idx < max_likely) vs

let shape_upper_bound_numel t (s : Sym.shape) =
  Array.fold_left
    (fun acc d ->
      match (acc, upper_bound t d) with Some a, Some u -> Some (a * u) | _ -> None)
    (Some 1) s

(* --- Derived symbols ---------------------------------------------------- *)

let affine_apply ~add ~div ~mul ~post v = (((v + add) / div) * mul) + post

let fresh_affine ?name t ~base ~add ~div ~mul ~post =
  if div <= 0 || mul <= 0 then invalid_arg "fresh_affine: div and mul must be positive";
  match resolve t base with
  | Sym.Static v -> Sym.Static (affine_apply ~add ~div ~mul ~post v)
  | Sym.Sym _ as b ->
      let lb = max 1 (affine_apply ~add ~div ~mul ~post (lower_bound t b)) in
      let ub = Option.map (affine_apply ~add ~div ~mul ~post) (upper_bound t b) in
      let d = fresh ?name ~lb ?ub t in
      (match d with
      | Sym.Sym id -> (info t id).deriv <- Some (Affine { base = b; add; div; mul; post })
      | Sym.Static _ -> assert false);
      d

let fresh_sum ?name t dims =
  let resolved = List.map (resolve t) dims in
  if List.for_all Sym.is_static resolved then
    Sym.Static
      (List.fold_left (fun acc d -> acc + Option.get (Sym.static_value d)) 0 resolved)
  else begin
    let lb = List.fold_left (fun acc d -> acc + lower_bound t d) 0 resolved in
    let ub =
      List.fold_left
        (fun acc d ->
          match (acc, upper_bound t d) with Some a, Some u -> Some (a + u) | _ -> None)
        (Some 0) resolved
    in
    let d = fresh ?name ~lb ?ub t in
    (match d with
    | Sym.Sym id -> (info t id).deriv <- Some (Sum_of resolved)
    | Sym.Static _ -> assert false);
    d
  end

(* --- Symbolic products ------------------------------------------------- *)

let normalize_product t (dims : Sym.dim array) : product =
  let coeff = ref 1 and syms = ref [] in
  Array.iter
    (fun d ->
      match resolve t d with
      | Sym.Static v -> coeff := !coeff * v
      | Sym.Sym id -> syms := id :: !syms)
    dims;
  { coeff = !coeff; syms = List.sort Stdlib.compare !syms }

let product_equal_trivial (p : product) (q : product) = p.coeff = q.coeff && p.syms = q.syms

(* Multiset difference: [remove sub from xs]; None if sub is not a sub-multiset. *)
let rec multiset_remove xs sub =
  match sub with
  | [] -> Some xs
  | s :: rest -> (
      let rec remove_one acc = function
        | [] -> None
        | x :: tl when x = s -> Some (List.rev_append acc tl)
        | x :: tl -> remove_one (x :: acc) tl
      in
      match remove_one [] xs with
      | None -> None
      | Some xs' -> multiset_remove xs' rest)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Remove common factors from both sides of a product equality: common
   symbols (multiset intersection) and the gcd of the static
   coefficients. "768*b*s = 768*bs" becomes "b*s = bs". *)
let cancel_common (l : product) (r : product) =
  let rec go l_syms kept_r = function
    | [] -> (l_syms, List.rev kept_r)
    | s :: rest -> (
        match multiset_remove l_syms [ s ] with
        | Some l_syms' -> go l_syms' kept_r rest
        | None -> go l_syms (s :: kept_r) rest)
  in
  let l_syms, r_syms = go l.syms [] r.syms in
  let g = max 1 (gcd (abs l.coeff) (abs r.coeff)) in
  ({ coeff = l.coeff / g; syms = l_syms }, { coeff = r.coeff / g; syms = r_syms })

(* Rewrite product [p] using fact [l = r]: if l's symbols are a
   sub-multiset of p's and l's coefficient divides p's, substitute. *)
let rewrite_with t p (l_dims, r_dims) =
  let l0 = normalize_product t l_dims and r0 = normalize_product t r_dims in
  let l, r = cancel_common l0 r0 in
  let apply l r =
    if l.coeff <> 0 && p.coeff mod l.coeff = 0 then
      match multiset_remove p.syms l.syms with
      | Some remaining ->
          Some
            {
              coeff = p.coeff / l.coeff * r.coeff;
              syms = List.sort Stdlib.compare (r.syms @ remaining);
            }
      | None -> None
    else None
  in
  List.filter_map (fun x -> x) [ apply l r; apply r l ]

let record_product_equal t (a : Sym.dim array) (b : Sym.dim array) =
  let pa, pb = cancel_common (normalize_product t a) (normalize_product t b) in
  (* A product equality between two single dims is just a merge. *)
  match (pa.syms, pb.syms) with
  | [ x ], [] when pb.coeff mod pa.coeff = 0 ->
      bind_static t x (pb.coeff / pa.coeff)
  | [], [ y ] when pa.coeff mod pb.coeff = 0 ->
      bind_static t y (pa.coeff / pb.coeff)
  | [ x ], [ y ] when pa.coeff = pb.coeff -> merge t (Sym.Sym x) (Sym.Sym y)
  | _ ->
      if not (product_equal_trivial pa pb) then
        t.product_facts <- (Array.copy a, Array.copy b) :: t.product_facts

let products_equal t (a : Sym.dim array) (b : Sym.dim array) =
  let target = normalize_product t b in
  let key p = (p.coeff, p.syms) in
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  let push p =
    if not (Hashtbl.mem visited (key p)) then begin
      Hashtbl.add visited (key p) ();
      Queue.add p queue
    end
  in
  push (normalize_product t a);
  let budget = ref 256 in
  let found = ref false in
  while (not !found) && (not (Queue.is_empty queue)) && !budget > 0 do
    decr budget;
    let p = Queue.pop queue in
    if product_equal_trivial p target then found := true
    else
      List.iter (fun fact -> List.iter push (rewrite_with t p fact)) t.product_facts
  done;
  !found

let numel_equal t (a : Sym.shape) (b : Sym.shape) = products_equal t a b

let num_product_facts t = List.length t.product_facts

let product_facts t = t.product_facts

(* --- Runtime bindings --------------------------------------------------- *)

type binding = (int, int) Hashtbl.t

let empty_binding () : binding = Hashtbl.create 16

let bind_dim t (bnd : binding) (d : Sym.dim) (v : int) =
  match resolve t d with
  | Sym.Static v' ->
      if v <> v' then inconsistent "runtime value %d contradicts static dim %d" v v'
  | Sym.Sym root -> (
      match Hashtbl.find_opt bnd root with
      | Some v' when v' <> v ->
          inconsistent "runtime value %d contradicts earlier binding %d for s%d" v v' root
      | Some _ -> ()
      | None -> Hashtbl.add bnd root v)

let bind_shape t bnd (s : Sym.shape) (conc : Tensor.Shape.t) =
  if Sym.rank s <> Tensor.Shape.rank conc then
    inconsistent "rank mismatch binding %s to %s" (Sym.to_string s)
      (Tensor.Shape.to_string conc);
  Array.iteri (fun i d -> bind_dim t bnd d conc.(i)) s

(* Runtime shape inference. A dim's value comes from (in order): a
   static binding, a direct runtime binding, its derivation
   (affine / sum), or — mirroring BladeDISC's runtime shape-inference
   functions — a product fact in which it is the only unknown (e.g. the
   collapsed dim of a reshape: bp = b * p). [visited] breaks cycles. *)
let rec eval_dim_vis t visited (bnd : binding) (d : Sym.dim) =
  match resolve t d with
  | Sym.Static v -> Some v
  | Sym.Sym root -> (
      if List.mem root visited then None
      else
        match Hashtbl.find_opt bnd root with
        | Some _ as r -> r
        | None -> (
            let visited = root :: visited in
            let eval = eval_dim_vis t visited bnd in
            match (info t root).deriv with
            | Some (Affine { base; add; div; mul; post }) ->
                Option.map (affine_apply ~add ~div ~mul ~post) (eval base)
            | Some (Sum_of dims) ->
                List.fold_left
                  (fun acc d ->
                    match (acc, eval d) with Some a, Some v -> Some (a + v) | _ -> None)
                  (Some 0) dims
            | None -> eval_via_facts t visited bnd root))

and eval_via_facts t visited bnd root =
  let eval = eval_dim_vis t visited bnd in
  let try_sides (side, other) =
    (* [root] must occur exactly once in [side]; everything else must
       evaluate; then root = prod(other) / prod(side \ {root}). *)
    let occurrences =
      Array.to_list side
      |> List.filter (fun d ->
             match resolve t d with Sym.Sym r -> r = root | Sym.Static _ -> false)
      |> List.length
    in
    if occurrences <> 1 then None
    else
      let rest = ref (Some 1) and skipped = ref false in
      Array.iter
        (fun d ->
          let is_target =
            (not !skipped)
            && match resolve t d with Sym.Sym r -> r = root | Sym.Static _ -> false
          in
          if is_target then skipped := true
          else
            match (!rest, eval d) with
            | Some a, Some v -> rest := Some (a * v)
            | _ -> rest := None)
        side;
      let num =
        Array.fold_left
          (fun acc d ->
            match (acc, eval d) with Some a, Some v -> Some (a * v) | _ -> None)
          (Some 1) other
      in
      match (!rest, num) with
      | Some r, Some n when r > 0 && n mod r = 0 -> Some (n / r)
      | _ -> None
  in
  let rec search = function
    | [] -> None
    | (a, b) :: facts -> (
        match try_sides (a, b) with
        | Some _ as v -> v
        | None -> (
            match try_sides (b, a) with Some _ as v -> v | None -> search facts))
  in
  search t.product_facts

let eval_dim t (bnd : binding) (d : Sym.dim) = eval_dim_vis t [] bnd d

let eval_dim_exn t bnd d =
  match eval_dim t bnd d with
  | Some v -> v
  | None -> inconsistent "unbound symbolic dim %s at runtime" (Sym.dim_to_string d)

let eval_shape t bnd (s : Sym.shape) : Tensor.Shape.t =
  Array.map (eval_dim_exn t bnd) s

let pp fmt t =
  Format.fprintf fmt "@[<v>symbol table (%d symbols, %d product facts)@," t.count
    (num_product_facts t);
  for id = 0 to t.count - 1 do
    let root = find t id in
    if root = id then begin
      let i = t.syms.(id) in
      Format.fprintf fmt "  s%d%s: lb=%d%s%s%s@," id
        (if i.name = "" then "" else "(" ^ i.name ^ ")")
        i.lb
        (match i.ub with Some u -> Printf.sprintf " ub=%d" u | None -> "")
        (match i.static with Some v -> Printf.sprintf " =%d" v | None -> "")
        ((match i.likely with
         | [] -> ""
         | vs -> " likely=" ^ String.concat "," (List.map string_of_int vs))
        ^ if i.growing then " growing" else "")
    end
  done;
  Format.fprintf fmt "@]"
