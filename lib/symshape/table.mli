(** The global symbolic-dimension table (paper §4).

    Tracks, for every symbol created by {!fresh}:
    - {b structural constraints}: dimension-equality classes (union-find,
      possibly resolved to a static value) and product-of-dimensions
      equality facts (recorded by reshape-like ops, queried by fusion);
    - {b distribution constraints}: value range [[lb, ub]] and likely
      runtime values, used as compilation hints (launch-schedule choice,
      shared-memory feasibility for kStitch).

    All queries are conservative: [true] means {e provably} equal. *)

type t

exception Inconsistent of string
(** Raised when constraints or runtime bindings contradict each other. *)

val create : unit -> t

val fresh : ?name:string -> ?lb:int -> ?ub:int -> ?likely:int list -> t -> Sym.dim
(** New symbol; [lb] defaults to 1 (tensor dims are non-empty unless
    stated otherwise). *)

val num_symbols : t -> int

val resolve : t -> Sym.dim -> Sym.dim
(** Canonical representative: [Static v] if the class is bound, else the
    class-root symbol. *)

val merge : t -> Sym.dim -> Sym.dim -> unit
(** Assert two dims equal. Merges classes / binds a static value.
    @raise Inconsistent on contradiction. *)

val equal_dims : t -> Sym.dim -> Sym.dim -> bool
val equal_shapes : t -> Sym.shape -> Sym.shape -> bool

val lower_bound : t -> Sym.dim -> int
val upper_bound : t -> Sym.dim -> int option
val likely_values : t -> Sym.dim -> int list

val dim_name : t -> Sym.dim -> string option
(** The user-facing name the symbol (or its equality-class root) was
    created with, if any. Pure display metadata — the memory estimator
    prints peak polynomials as [4·batch·hist] instead of [4·s0·s1];
    never used for reasoning. [None] for statics and unnamed symbols. *)

val set_range : t -> Sym.dim -> ?lb:int -> ?ub:int -> unit -> unit
val add_likely : t -> Sym.dim -> int list -> unit

val set_likely : t -> Sym.dim -> int list -> unit
(** Replace the likely-value hint set (sorted, deduplicated, capped at
    16). Unlike {!add_likely} this {e drops} values no longer present —
    the ingestion point for online distribution feedback re-estimated
    from live traffic. Values outside [[lb, ub]] are discarded (hints
    are advisory, never constraints); no-op on a static dim. *)

val set_growing : t -> Sym.dim -> unit
(** Record a monotone-growth fact: the dim only ever increases over a
    request's lifetime — the KV-cache length of autoregressive decoding,
    which climbs by one every step. Advisory, like likely values: it
    never constrains a binding and is excluded from the structural
    fingerprint (marking a dim must not cold a persisted compile cache).
    The decode scheduler uses it to pre-declare the finite bucket ladder
    the dim will climb ({!Serving.Bucket} ceilings), so cache growth
    mints a bounded signature set instead of one per token. Survives
    {!merge} (or-union); no-op on a static dim. *)

val growing : t -> Sym.dim -> bool
(** Whether the dim carries the monotone-growth fact ([false] for
    static dims). *)

val shape_upper_bound_numel : t -> Sym.shape -> int option
(** Upper bound on element count, if every dim has one (kStitch
    shared-memory feasibility). *)

val record_product_equal : t -> Sym.dim array -> Sym.dim array -> unit
(** Assert product(a) = product(b); recorded by reshapes. Degenerate
    cases (single symbols) collapse into merges/static bindings. *)

val products_equal : t -> Sym.dim array -> Sym.dim array -> bool
(** Provable product equality, reasoning transitively through recorded
    facts (bounded search). *)

val numel_equal : t -> Sym.shape -> Sym.shape -> bool
(** [products_equal] over all dims of both shapes — the fusion planner's
    "same loop domain through reshape" test. *)

val num_product_facts : t -> int

val product_facts : t -> (Sym.dim array * Sym.dim array) list
(** The recorded product-equality facts, most recent first; dims are as
    recorded (callers should {!resolve} them). Used by the structural
    fingerprint to hash the constraint system. *)

val fresh_affine :
  ?name:string -> t -> base:Sym.dim -> add:int -> div:int -> mul:int -> post:int -> Sym.dim
(** Derived dim [(base + add) / div * mul + post] (floor division); folds
    to [Static] when [base] is static; bounds are propagated, and runtime
    evaluation computes it from [base]'s binding. Used for conv/pool
    output extents. *)

val fresh_sum : ?name:string -> t -> Sym.dim list -> Sym.dim
(** Derived dim equal to the sum of the given dims (concat axis). *)

(** {1 Runtime bindings}

    At execution time, input shapes bind symbols to concrete values; the
    rest of the program's shapes are then evaluated. *)

type binding

val empty_binding : unit -> binding
val bind_dim : t -> binding -> Sym.dim -> int -> unit
val bind_shape : t -> binding -> Sym.shape -> Tensor.Shape.t -> unit
val eval_dim : t -> binding -> Sym.dim -> int option
val eval_dim_exn : t -> binding -> Sym.dim -> int
val eval_shape : t -> binding -> Sym.shape -> Tensor.Shape.t

val pp : Format.formatter -> t -> unit
