(* Static buffer planning with reuse — the RAL's memory planner.

   Given a compiled executable and a shape binding, assign every
   intermediate value an offset in one device arena such that buffers
   with overlapping lifetimes never overlap in memory, while freed
   buffers are reused (greedy best-fit over a free list). The paper's
   runtime does exactly this once shapes are known; because planning is
   per-binding, a dynamic-shape compiler re-plans cheaply at dispatch
   time instead of baking offsets into the executable. *)

module Graph = Ir.Graph
module Op = Ir.Op
module Table = Symshape.Table
module Cluster = Fusion.Cluster

type assignment = {
  value : int; (* instruction id *)
  offset : int;
  size : int;
  first_pos : int; (* producing kernel position *)
  last_pos : int; (* last consuming kernel position *)
}

type t = {
  assignments : assignment list;
  arena_bytes : int; (* high-water mark with reuse *)
  naive_bytes : int; (* sum of all buffer sizes (no reuse) *)
  resident_bytes : int; (* parameters + constants, outside the arena *)
}

let align up n = (n + up - 1) / up * up

(* Free-list allocator: offset-sorted free blocks; best-fit. *)
type block = { b_off : int; b_size : int }

let rec insert_free (blk : block) = function
  | [] -> [ blk ]
  | b :: rest as all ->
      if blk.b_off + blk.b_size = b.b_off then { b_off = blk.b_off; b_size = blk.b_size + b.b_size } :: rest
      else if b.b_off + b.b_size = blk.b_off then insert_free { b_off = b.b_off; b_size = b.b_size + blk.b_size } rest
      else if blk.b_off < b.b_off then blk :: all
      else b :: insert_free blk rest

let cluster_of = function
  | Executable.Fused k -> k.Codegen.Kernel.cluster
  | Executable.Lib c -> c

(* Lifetime of every cluster-produced intermediate under the schedule:
   born at the producing item's position, dead after the position of its
   last consuming item (graph outputs live to the end: [max_int]). The
   symbolic estimator (lib/mem) walks exactly these lifetimes with sizes
   as polynomials, so the walk is shared rather than mirrored. *)
let lifetimes (e : Executable.t) : (int * int * int) list =
  let items = e.Executable.items in
  let produced_at = Hashtbl.create 64 in
  List.iteri
    (fun pos item ->
      List.iter (fun o -> Hashtbl.replace produced_at o pos) (cluster_of item).Cluster.outputs)
    items;
  let last_use = Hashtbl.create 64 in
  List.iteri
    (fun pos item ->
      List.iter
        (fun input -> if Hashtbl.mem produced_at input then Hashtbl.replace last_use input pos)
        (cluster_of item).Cluster.inputs)
    items;
  List.iter
    (fun o -> if Hashtbl.mem produced_at o then Hashtbl.replace last_use o max_int)
    (Graph.outputs (e.Executable.g));
  let acc = ref [] in
  List.iteri
    (fun pos item ->
      List.iter
        (fun o ->
          let last = Option.value (Hashtbl.find_opt last_use o) ~default:pos in
          acc := (o, pos, last) :: !acc)
        (cluster_of item).Cluster.outputs)
    items;
  List.rev !acc

let plan ?(alignment = 256) (e : Executable.t) (bnd : Table.binding) : t =
  let g = e.Executable.g in
  let tab = Graph.symtab g in
  let size_of id =
    let i = Graph.inst g id in
    align alignment
      (Tensor.Shape.numel (Table.eval_shape tab bnd i.Graph.shape)
      * Tensor.Dtype.byte_size i.Graph.dtype)
  in
  (* resident values: parameters and constants *)
  let resident_bytes =
    Graph.fold g
      (fun acc i ->
        match i.Graph.op with
        | Op.Parameter _ | Op.Constant _ -> acc + size_of i.Graph.id
        | _ -> acc)
      0
  in
  let items = e.Executable.items in
  let last_use = Hashtbl.create 64 in
  List.iter (fun (v, _, last) -> Hashtbl.replace last_use v last) (lifetimes e);
  (* walk the schedule: allocate at production, free after last use *)
  let free : block list ref = ref [] in
  let top = ref 0 in
  let assignments = ref [] in
  let allocate size =
    (* best-fit over the free list *)
    let best =
      List.fold_left
        (fun acc b ->
          if b.b_size >= size then
            match acc with
            | Some best when best.b_size <= b.b_size -> acc
            | _ -> Some b
          else acc)
        None !free
    in
    match best with
    | Some b ->
        free := List.filter (fun x -> x <> b) !free;
        if b.b_size > size then
          free := insert_free { b_off = b.b_off + size; b_size = b.b_size - size } !free;
        b.b_off
    | None ->
        let off = !top in
        top := !top + size;
        off
  in
  List.iteri
    (fun pos item ->
      List.iter
        (fun o ->
          let size = size_of o in
          let offset = allocate size in
          let last_pos = Option.value (Hashtbl.find_opt last_use o) ~default:pos in
          assignments := { value = o; offset; size; first_pos = pos; last_pos } :: !assignments)
        (cluster_of item).Cluster.outputs;
      (* free buffers whose last use is this position *)
      List.iter
        (fun a ->
          if a.last_pos = pos then free := insert_free { b_off = a.offset; b_size = a.size } !free)
        !assignments)
    items;
  let naive_bytes = List.fold_left (fun acc a -> acc + a.size) 0 !assignments in
  { assignments = List.rev !assignments; arena_bytes = !top; naive_bytes; resident_bytes }

(* Structured-error planning: injected allocation failures and capacity
   checks surface as [Error.Oom] instead of silently planning an arena
   the device could never host. *)
let plan_result ?alignment ?(device = Gpusim.Device.a10) ?faults (e : Executable.t)
    (bnd : Table.binding) : (t, Error.t) result =
  let capacity = device.Gpusim.Device.memory_bytes in
  match faults with
  | Some inj when Gpusim.Fault.request_oom inj ->
      Error (Error.Oom { live_bytes = 0; capacity_bytes = capacity })
  | _ -> (
      match plan ?alignment e bnd with
      | p ->
          let total = p.arena_bytes + p.resident_bytes in
          if total > capacity then
            Error (Error.Oom { live_bytes = total; capacity_bytes = capacity })
          else Ok p
      | exception Table.Inconsistent m -> Error (Error.Unbound_dim m))

(* Validity: two assignments alive at the same time never overlap. *)
let validate (p : t) : bool =
  let overlaps a b =
    a.offset < b.offset + b.size && b.offset < a.offset + a.size
  in
  let alive_together a b =
    (* a is alive in (first_pos, last_pos]; conservative closed ranges *)
    a.first_pos <= b.last_pos && b.first_pos <= a.last_pos
  in
  let rec check = function
    | [] -> true
    | a :: rest ->
        List.for_all (fun b -> (not (alive_together a b)) || not (overlaps a b)) rest
        && check rest
  in
  check p.assignments

(* reuse = arena/naive: the fraction of the no-reuse footprint the
   planned arena actually occupies (lower is better; 1.00 = no reuse).
   resident share = weights+constants as a fraction of total device
   footprint, so a glance tells whether activations or parameters
   dominate. *)
let to_string (p : t) =
  let reuse = float_of_int p.arena_bytes /. float_of_int (max 1 p.naive_bytes) in
  let footprint = max 1 (p.arena_bytes + p.resident_bytes) in
  Printf.sprintf
    "arena=%.2fMB naive=%.2fMB reuse=%.2f resident=%.2fMB (%.0f%% of footprint) buffers=%d"
    (float_of_int p.arena_bytes /. 1e6)
    (float_of_int p.naive_bytes /. 1e6)
    reuse
    (float_of_int p.resident_bytes /. 1e6)
    (100.0 *. float_of_int p.resident_bytes /. float_of_int footprint)
    (List.length p.assignments)
