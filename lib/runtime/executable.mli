(** The compiled artifact and its host-side execution loop — the paper's
    runtime abstraction layer (RAL).

    One compilation serves every runtime shape. Two execution paths over
    the same kernel schedule:
    - {!run}: the data plane — binds input shapes, evaluates kernels on
      real tensors, and charges analytical device cost (optionally under
      a different, e.g. padded, [cost_binding]);
    - {!simulate}: cost only, from a shape binding, never touching data —
      how the benchmarks run at paper scale. *)

module Cluster = Fusion.Cluster
module Kernel = Codegen.Kernel

type item =
  | Fused of Kernel.t
  | Lib of Cluster.t

type t = {
  g : Ir.Graph.t;
  plan : Cluster.plan;
  items : item list;  (** cluster topological order *)
  host_overhead_us : float;
}

val compile :
  ?codegen:Kernel.config -> ?host_overhead_us:float -> Ir.Graph.t -> Cluster.plan -> t

val num_kernels : t -> int

val item_kname : item -> string
(** Kernel identity ("c<cluster-id>") used by profiles, fault injection
    and the serving layer's circuit breakers. *)

val simulate :
  ?device:Gpusim.Device.t ->
  ?profile:Profile.t ->
  ?tune:(Gpusim.Cost.kernel_work -> Gpusim.Cost.kernel_work) ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  t ->
  Symshape.Table.binding ->
  Profile.t
(** Cost-only execution under a shape binding. [tune] lets baseline
    strategies adjust per-kernel efficiencies. Tracks peak memory from
    shapes and buffer liveness. [faults] injects seeded launch failures
    and request OOMs; [despeculate] pins the named kernels to the generic
    version (circuit breaker). Failures raise {!Error.Error} — prefer
    {!simulate_result} for structured handling. *)

val run :
  ?device:Gpusim.Device.t ->
  ?cost_binding:Symshape.Table.binding ->
  ?profile:Profile.t ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  t ->
  Tensor.Nd.t list ->
  Tensor.Nd.t list * Profile.t
(** Data-plane execution; numerics always use the true input shapes,
    cost is charged under [cost_binding] when given (padding baselines).
    Failures raise {!Error.Error} — prefer {!run_result}. *)

val simulate_result :
  ?device:Gpusim.Device.t ->
  ?profile:Profile.t ->
  ?tune:(Gpusim.Cost.kernel_work -> Gpusim.Cost.kernel_work) ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  t ->
  Symshape.Table.binding ->
  (Profile.t, Error.t) result
(** {!simulate} with every failure mode (injected faults, OOM, unbound
    dims, guard selection) returned as a structured {!Error.t}. *)

val run_result :
  ?device:Gpusim.Device.t ->
  ?cost_binding:Symshape.Table.binding ->
  ?profile:Profile.t ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  t ->
  Tensor.Nd.t list ->
  (Tensor.Nd.t list * Profile.t, Error.t) result
(** {!run} with structured errors instead of exceptions. *)
