(* Structured RAL error model.

   The real BladeDISC runtime never aborts the host process: every
   failure on the compiled path surfaces as a structured status the
   serving layer can react to (retry, de-speculate, fall back to the
   framework reference path, shed load). This module is that status
   type; the [_result] variants of the runtime/session APIs return it,
   and [Error] is the exception carried by the thin [_exn] wrappers kept
   for legacy callers. *)

type t =
  | Unbound_dim of string (* a symbolic dim had no runtime binding *)
  | Guard_violation of string (* no speculative version's guard held *)
  | Kernel_fault of { kernel : string; reason : string }
  | Oom of { live_bytes : int; capacity_bytes : int }
  | Deadline_exceeded of { deadline_us : float; elapsed_us : float }
  | Invalid_request of string (* malformed request (bad dims, bad values) *)
  | Fallback_failed of string (* even the reference path could not serve *)

exception Error of t

let fail e = raise (Error e)

let to_string = function
  | Unbound_dim m -> Printf.sprintf "unbound dimension: %s" m
  | Guard_violation m -> Printf.sprintf "guard violation: %s" m
  | Kernel_fault { kernel; reason } -> Printf.sprintf "kernel fault in %s: %s" kernel reason
  | Oom { live_bytes; capacity_bytes } ->
      Printf.sprintf "out of device memory: %.2f MB live, %.2f MB capacity"
        (float_of_int live_bytes /. 1e6)
        (float_of_int capacity_bytes /. 1e6)
  | Deadline_exceeded { deadline_us; elapsed_us } ->
      Printf.sprintf "deadline exceeded: %.0f us elapsed, %.0f us budget" elapsed_us
        deadline_us
  | Invalid_request m -> Printf.sprintf "invalid request: %s" m
  | Fallback_failed m -> Printf.sprintf "fallback failed: %s" m

(* Transient errors are worth retrying on the same path; permanent ones
   (malformed request, unbound dim) will fail identically every time. *)
let is_transient = function
  | Kernel_fault _ | Oom _ | Deadline_exceeded _ -> true
  | Unbound_dim _ | Guard_violation _ | Invalid_request _ | Fallback_failed _ -> false

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Runtime.Error.Error(%s)" (to_string e))
    | _ -> None)
