(* The compiled artifact and its host-side execution loop (the paper's
   runtime-abstraction-layer, RAL).

   One compilation serves every runtime shape: executing binds the input
   shapes to the symbol table, selects a speculative version and launch
   dims per kernel, runs the data plane, and charges the analytical
   device cost. Timing and numerics are independent: an optional
   [cost_binding] lets baseline executors charge for padded shapes while
   computing on the true ones. *)

module Graph = Ir.Graph
module Op = Ir.Op
module Table = Symshape.Table
module Cluster = Fusion.Cluster
module Kernel = Codegen.Kernel
module Nd = Tensor.Nd

type item =
  | Fused of Kernel.t
  | Lib of Cluster.t

type t = {
  g : Graph.t;
  plan : Cluster.plan;
  items : item list; (* in cluster topological order *)
  host_overhead_us : float; (* host cost per kernel dispatch *)
}

let compile ?(codegen = Kernel.default_config) ?(host_overhead_us = 0.3) (g : Graph.t)
    (plan : Cluster.plan) : t =
  let items =
    List.map
      (fun c ->
        match c.Cluster.kind with
        | Cluster.Library -> Lib c
        | _ -> Fused (Kernel.build g codegen c))
      plan.Cluster.clusters
  in
  { g; plan; items; host_overhead_us }

let num_kernels e = List.length e.items

(* Kernel identity used by profiles, fault injection and the serving
   layer's circuit breakers: the cluster name "c<id>". *)
let item_kname item =
  let c = match item with Fused k -> k.Kernel.cluster | Lib c -> c in
  Printf.sprintf "c%d" c.Cluster.cid

(* Resilience hooks shared by both execution paths. [faults] injects
   seeded launch failures and request-level OOMs; [despeculate] pins the
   named kernel to its generic version (the serving layer trips it after
   repeated faults on a speculative variant); live bytes are checked
   against device capacity. All failures raise [Error.Error] — the
   [_result] wrappers below turn them into values. *)
let check_request_oom ?faults (device : Gpusim.Device.t) ~resident =
  match faults with
  | Some inj when Gpusim.Fault.request_oom inj ->
      Error.fail
        (Error.Oom { live_bytes = resident; capacity_bytes = device.Gpusim.Device.memory_bytes })
  | _ -> ()

let check_kernel_fault ?faults kname =
  match faults with
  | Some inj when Gpusim.Fault.kernel_fault inj ~kernel:kname ->
      Error.fail (Error.Kernel_fault { kernel = kname; reason = "injected launch failure" })
  | _ -> ()

let check_capacity (device : Gpusim.Device.t) ~live =
  if live > device.Gpusim.Device.memory_bytes then
    Error.fail
      (Error.Oom { live_bytes = live; capacity_bytes = device.Gpusim.Device.memory_bytes })

let select_launch ?(despeculate = fun _ -> false) g device bnd kname (k : Kernel.t) =
  let l =
    try Kernel.launch_for g device bnd k
    with Not_found ->
      Error.fail
        (Error.Guard_violation (Printf.sprintf "no version guard held for kernel %s" kname))
  in
  (* pinning to generic must also recompute the launch dims: a tuned
     version's block count reflects its own schedule, not the default *)
  if despeculate kname then Kernel.launch_with g device bnd k Kernel.generic_version else l

(* Per-kernel-launch observability: one trace span per launch (advancing
   the simulated timeline by device + host time, so an enclosing request
   span's duration is the profile total) plus process-wide launch
   counters. Disabled-mode cost is the single [Obs.Scope.on] branch. *)
let note_kernel_obs ~kname ~kind ~version_tag ~time_us ~host_us =
  if Obs.Scope.on () then begin
    Obs.Scope.span ~advance:true ~cat:"kernel"
      ~args:[ ("kind", kind); ("version", version_tag) ]
      ~dur_us:(time_us +. host_us) kname;
    Obs.Scope.count "runtime.kernel_launches";
    Obs.Scope.observe "runtime.kernel_time_us" time_us
  end

(* Last cluster (by position) that reads each value; used to free
   intermediate buffers and track peak memory. *)
let last_use_positions (e : t) =
  let last : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun pos item ->
      let c = match item with Fused k -> k.Kernel.cluster | Lib c -> c in
      List.iter (fun input -> Hashtbl.replace last input pos) c.Cluster.inputs)
    e.items;
  (* graph outputs live to the end *)
  List.iter (fun o -> Hashtbl.replace last o max_int) (Graph.outputs e.g);
  last

(* Cost-only execution: walks the kernel schedule under a shape binding
   without touching tensor data. This is what the benchmarks use, so
   they can run at the paper's real model sizes; the data plane (below)
   validates correctness at test-sized shapes. *)
let simulate ?(device = Gpusim.Device.a10) ?(profile = Profile.create ())
    ?(tune = fun (w : Gpusim.Cost.kernel_work) -> w) ?faults ?despeculate (e : t)
    (bnd : Table.binding) : Profile.t =
  let g = e.g in
  let tab = Graph.symtab g in
  let bytes_of id =
    let i = Graph.inst g id in
    Tensor.Shape.numel (Table.eval_shape tab bnd i.shape) * Tensor.Dtype.byte_size i.dtype
  in
  (* parameters and constants are resident *)
  let resident = ref 0 in
  List.iter (fun (pid, _) -> resident := !resident + bytes_of pid) (Graph.parameters g);
  Graph.iter g (fun i ->
      match i.op with Op.Constant _ -> resident := !resident + bytes_of i.id | _ -> ());
  check_request_oom ?faults device ~resident:!resident;
  let last = last_use_positions e in
  let live = ref !resident in
  Profile.note_live_bytes profile !live;
  List.iteri
    (fun pos item ->
      let c = match item with Fused k -> k.Kernel.cluster | Lib c -> c in
      let kname = item_kname item in
      check_kernel_fault ?faults kname;
      List.iter (fun o -> live := !live + bytes_of o) c.Cluster.outputs;
      check_capacity device ~live:!live;
      Profile.note_live_bytes profile !live;
      let work, version_tag =
        match item with
        | Fused k ->
            let launch = select_launch ?despeculate g device bnd kname k in
            (Kernel.work_of g bnd k launch, launch.Kernel.version.Kernel.tag)
        | Lib c -> (Kernel.library_work g bnd c, "library")
      in
      let work = tune work in
      let time_us = Gpusim.Cost.kernel_time_us device work in
      Profile.add profile
        ~kname:(Printf.sprintf "c%d" c.Cluster.cid)
        ~kind:(Cluster.kind_to_string c.Cluster.kind)
        ~version_tag ~time_us ~host_us:e.host_overhead_us
        ~bytes:(work.Gpusim.Cost.bytes_read + work.Gpusim.Cost.bytes_written)
        ~flops:work.Gpusim.Cost.flops;
      note_kernel_obs ~kname ~kind:(Cluster.kind_to_string c.Cluster.kind) ~version_tag
        ~time_us ~host_us:e.host_overhead_us;
      List.iter
        (fun input ->
          match Hashtbl.find_opt last input with
          | Some p when p <= pos -> (
              match (Graph.inst g input).op with
              | Op.Parameter _ | Op.Constant _ -> ()
              | _ -> live := !live - bytes_of input)
          | _ -> ())
        c.Cluster.inputs)
    e.items;
  profile

let run ?(device = Gpusim.Device.a10) ?cost_binding ?(profile = Profile.create ()) ?faults
    ?despeculate (e : t) (inputs : Nd.t list) : Nd.t list * Profile.t =
  let g = e.g in
  let bnd = Ir.Interp.bind_inputs g inputs in
  let cost_bnd = Option.value cost_binding ~default:bnd in
  let values : (int, Nd.t) Hashtbl.t = Hashtbl.create 64 in
  (* parameters and constants are resident before execution starts *)
  let resident = ref 0 in
  List.iter2
    (fun (pid, _) nd ->
      Hashtbl.replace values pid nd;
      resident := !resident + Nd.byte_size nd)
    (Graph.parameters g) inputs;
  Graph.iter g (fun i ->
      match i.op with
      | Op.Constant nd ->
          Hashtbl.replace values i.id nd;
          resident := !resident + Nd.byte_size nd
      | _ -> ());
  check_request_oom ?faults device ~resident:!resident;
  let value_of id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None -> Ir.Interp.eval_error "value %%%d not materialized" id
  in
  let last = last_use_positions e in
  let live = ref !resident in
  Profile.note_live_bytes profile !live;
  List.iteri
    (fun pos item ->
      let c = match item with Fused k -> k.Kernel.cluster | Lib c -> c in
      let kname = item_kname item in
      check_kernel_fault ?faults kname;
      (* run the kernel's data plane *)
      let outs =
        match item with
        | Fused k -> Kernel.eval g bnd k value_of
        | Lib c ->
            List.map
              (fun m -> (m, Ir.Interp.eval_inst g bnd value_of (Graph.inst g m)))
              c.Cluster.members
      in
      List.iter
        (fun (id, nd) ->
          Hashtbl.replace values id nd;
          live := !live + Nd.byte_size nd)
        outs;
      check_capacity device ~live:!live;
      Profile.note_live_bytes profile !live;
      (* charge simulated cost, possibly under a padded cost binding *)
      let work, version_tag =
        match item with
        | Fused k ->
            let launch = select_launch ?despeculate g device cost_bnd kname k in
            (Kernel.work_of g cost_bnd k launch, launch.Kernel.version.Kernel.tag)
        | Lib c -> (Kernel.library_work g cost_bnd c, "library")
      in
      let time_us = Gpusim.Cost.kernel_time_us device work in
      Profile.add profile
        ~kname:(Printf.sprintf "c%d" c.Cluster.cid)
        ~kind:(Cluster.kind_to_string c.Cluster.kind)
        ~version_tag ~time_us ~host_us:e.host_overhead_us
        ~bytes:(work.Gpusim.Cost.bytes_read + work.Gpusim.Cost.bytes_written)
        ~flops:work.Gpusim.Cost.flops;
      note_kernel_obs ~kname ~kind:(Cluster.kind_to_string c.Cluster.kind) ~version_tag
        ~time_us ~host_us:e.host_overhead_us;
      (* free intermediates whose last use has passed *)
      List.iter
        (fun input ->
          match Hashtbl.find_opt last input with
          | Some p when p <= pos -> (
              match (Graph.inst g input).op with
              | Op.Parameter _ | Op.Constant _ -> () (* resident *)
              | _ -> (
                  match Hashtbl.find_opt values input with
                  | Some nd -> live := !live - Nd.byte_size nd
                  | None -> ()))
          | _ -> ())
        c.Cluster.inputs)
    e.items;
  (List.map value_of (Graph.outputs g), profile)

(* --- structured-error variants ------------------------------------------

   Same execution paths, but every failure mode — injected faults, OOM,
   unbound dims, guard selection, data-plane evaluation errors — comes
   back as a [Runtime.Error.t] value instead of an exception, so serving
   layers can retry / fall back without exception fishing. *)

let map_exn (f : unit -> 'a) : ('a, Error.t) result =
  match f () with
  | v -> Ok v
  | exception Error.Error e -> Error e
  | exception Table.Inconsistent m -> Error (Error.Unbound_dim m)
  | exception Ir.Interp.Eval_error m ->
      Error (Error.Kernel_fault { kernel = "data-plane"; reason = m })
  | exception Invalid_argument m -> Error (Error.Invalid_request m)

let simulate_result ?device ?profile ?tune ?faults ?despeculate (e : t)
    (bnd : Table.binding) : (Profile.t, Error.t) result =
  map_exn (fun () -> simulate ?device ?profile ?tune ?faults ?despeculate e bnd)

let run_result ?device ?cost_binding ?profile ?faults ?despeculate (e : t)
    (inputs : Nd.t list) : (Nd.t list * Profile.t, Error.t) result =
  map_exn (fun () -> run ?device ?cost_binding ?profile ?faults ?despeculate e inputs)
