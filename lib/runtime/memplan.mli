(** Static buffer planning with reuse — the RAL memory planner.

    For one executable and one shape binding, assigns every intermediate
    buffer an offset in a single device arena: disjoint lifetimes share
    memory (greedy best-fit free list); overlapping lifetimes never
    overlap in space ({!validate}). Re-planned per shape binding, which
    is exactly what a dynamic-shape runtime must do. *)

type assignment = {
  value : int;
  offset : int;
  size : int;
  first_pos : int;
  last_pos : int;
}

type t = {
  assignments : assignment list;
  arena_bytes : int;  (** high-water mark with reuse *)
  naive_bytes : int;  (** sum of all buffer sizes (no reuse) *)
  resident_bytes : int;  (** parameters + constants, outside the arena *)
}

val lifetimes : Executable.t -> (int * int * int) list
(** [(value, first_pos, last_pos)] of every cluster-produced
    intermediate, in production order: born at the producing item's
    schedule position, dead after its last consuming item's position
    (graph outputs report [max_int]). Binding-independent — the symbolic
    memory estimator ({!Mem.Estimate}) walks these same lifetimes with
    sizes as polynomials instead of concrete bytes. *)

val plan : ?alignment:int -> Executable.t -> Symshape.Table.binding -> t

val plan_result :
  ?alignment:int ->
  ?device:Gpusim.Device.t ->
  ?faults:Gpusim.Fault.t ->
  Executable.t ->
  Symshape.Table.binding ->
  (t, Error.t) result
(** {!plan} with structured errors: [Error.Oom] when the arena plus
    resident weights exceed [device] capacity or the injector fires a
    seeded allocation failure; [Error.Unbound_dim] for missing bindings. *)

val validate : t -> bool
(** No two simultaneously-live buffers overlap. *)

val to_string : t -> string
(** One-line summary: arena and naive footprints, reuse ratio
    ([arena_bytes]/[naive_bytes], lower is better), resident bytes with
    their share of the total device footprint, and buffer count. *)
