(** Structured RAL error model.

    Every failure on the compiled path surfaces as one of these variants
    instead of an uncaught exception, so the serving layer can retry,
    de-speculate, fall back to the reference interpreter, or shed load.
    The [_result] APIs of {!Executable}, {!Memplan}, [Disc.Compiler] and
    [Disc.Session] return [('a, t) result]; the [Error] exception backs
    the thin [_exn]-style wrappers kept for legacy callers. *)

type t =
  | Unbound_dim of string  (** a symbolic dim had no runtime binding *)
  | Guard_violation of string  (** no speculative version's guard held *)
  | Kernel_fault of { kernel : string; reason : string }
  | Oom of { live_bytes : int; capacity_bytes : int }
  | Deadline_exceeded of { deadline_us : float; elapsed_us : float }
  | Invalid_request of string  (** malformed request (bad dims, bad values) *)
  | Fallback_failed of string  (** even the reference path could not serve *)

exception Error of t

val fail : t -> 'a
(** [fail e] raises [Error e]. *)

val to_string : t -> string

val is_transient : t -> bool
(** [true] for faults worth retrying ([Kernel_fault], [Oom],
    [Deadline_exceeded]); [false] for errors that will repeat identically
    (bad request, unbound dim). *)
