(* Counters, gauges, log-linear histograms; snapshot/diff and JSON /
   table export. See metrics.mli for the model. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Log-linear buckets: bucket 0 is [0, 1); past that, each power of two
   [2^e, 2^(e+1)) splits into [sub_buckets] equal linear slices. Bucket
   widths grow with the value, so relative error is bounded by
   1/sub_buckets while the bucket count stays logarithmic. *)
let sub_buckets = 16

type histogram = {
  mutable counts : int array; (* grown on demand *)
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; gauges = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let global = create ()

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let get_or_create tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.replace tbl name v;
      v

let counter t name = get_or_create t.counters name (fun () -> { c = 0 })
let inc ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name = get_or_create t.gauges name (fun () -> { g = 0.0 })
let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram t name =
  get_or_create t.histograms name (fun () ->
      { counts = Array.make 64 0; n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity })

let bucket_of (v : float) : int =
  if v < 1.0 then 0
  else
    let e = int_of_float (Float.log2 v) in
    (* guard against log2 rounding at exact powers of two *)
    let e = if Float.pow 2.0 (float_of_int (e + 1)) <= v then e + 1 else e in
    let e = if Float.pow 2.0 (float_of_int e) > v then e - 1 else e in
    let base = Float.pow 2.0 (float_of_int e) in
    let slice = int_of_float ((v -. base) /. base *. float_of_int sub_buckets) in
    let slice = min (sub_buckets - 1) (max 0 slice) in
    1 + (e * sub_buckets) + slice

(* Midpoint of a bucket: the estimate returned for any sample in it. *)
let bucket_mid (i : int) : float =
  if i = 0 then 0.5
  else
    let e = (i - 1) / sub_buckets and slice = (i - 1) mod sub_buckets in
    let base = Float.pow 2.0 (float_of_int e) in
    let lo = base *. (1.0 +. (float_of_int slice /. float_of_int sub_buckets)) in
    let hi = base *. (1.0 +. (float_of_int (slice + 1) /. float_of_int sub_buckets)) in
    (lo +. hi) /. 2.0

(* Exclusive upper edge: the smallest value guaranteed to cover every
   sample that landed in the bucket. *)
let bucket_hi (i : int) : float =
  if i = 0 then 1.0
  else
    let e = (i - 1) / sub_buckets and slice = (i - 1) mod sub_buckets in
    let base = Float.pow 2.0 (float_of_int e) in
    base *. (1.0 +. (float_of_int (slice + 1) /. float_of_int sub_buckets))

let observe h v =
  let v = Float.max 0.0 v in
  let i = bucket_of v in
  if i >= Array.length h.counts then begin
    let bigger = Array.make (max (i + 1) (2 * Array.length h.counts)) 0 in
    Array.blit h.counts 0 bigger 0 (Array.length h.counts);
    h.counts <- bigger
  end;
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

let histogram_count h = h.n
let histogram_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

(* Nearest-rank percentile over the buckets, clamped to exact [min,max]. *)
let percentile_buckets ~n ~vmin ~vmax (counts : (int * int) list) (p : float) : float =
  if n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n))) in
    let rec walk acc = function
      | [] -> vmax
      | (i, c) :: rest -> if acc + c >= rank then bucket_mid i else walk (acc + c) rest
    in
    let est = walk 0 counts in
    Float.min vmax (Float.max vmin est)
  end

let buckets_of_histogram h =
  let out = ref [] in
  for i = Array.length h.counts - 1 downto 0 do
    if h.counts.(i) > 0 then out := (i, h.counts.(i)) :: !out
  done;
  !out

let percentile h p =
  percentile_buckets ~n:h.n
    ~vmin:(if h.n = 0 then 0.0 else h.vmin)
    ~vmax:(if h.n = 0 then 0.0 else h.vmax)
    (buckets_of_histogram h) p

(* --- snapshots ------------------------------------------------------------- *)

type histo_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histo_snapshot) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot (t : t) : snapshot =
  {
    counters = sorted_bindings t.counters (fun c -> c.c);
    gauges = sorted_bindings t.gauges (fun g -> g.g);
    histograms =
      sorted_bindings t.histograms (fun h ->
          {
            h_count = h.n;
            h_sum = h.sum;
            h_min = (if h.n = 0 then 0.0 else h.vmin);
            h_max = (if h.n = 0 then 0.0 else h.vmax);
            buckets = buckets_of_histogram h;
          });
  }

let percentile_of_snapshot (hs : histo_snapshot) p =
  percentile_buckets ~n:hs.h_count ~vmin:hs.h_min ~vmax:hs.h_max hs.buckets p

let diff (earlier : snapshot) (later : snapshot) : snapshot =
  let sub_counter name v =
    max 0 (v - Option.value (List.assoc_opt name earlier.counters) ~default:0)
  in
  let sub_histo name (hs : histo_snapshot) =
    match List.assoc_opt name earlier.histograms with
    | None -> hs
    | Some old ->
        let buckets =
          List.filter_map
            (fun (i, c) ->
              let c' = c - Option.value (List.assoc_opt i old.buckets) ~default:0 in
              if c' > 0 then Some (i, c') else None)
            hs.buckets
        in
        {
          h_count = max 0 (hs.h_count - old.h_count);
          h_sum = Float.max 0.0 (hs.h_sum -. old.h_sum);
          (* exact interval min/max are not recoverable from endpoints *)
          h_min = hs.h_min;
          h_max = hs.h_max;
          buckets;
        }
  in
  {
    counters = List.map (fun (n, v) -> (n, sub_counter n v)) later.counters;
    gauges = later.gauges;
    histograms = List.map (fun (n, h) -> (n, sub_histo n h)) later.histograms;
  }

(* --- export ---------------------------------------------------------------- *)

let histo_to_json (hs : histo_snapshot) : Json.t =
  Json.Obj
    [
      ("count", Json.Int hs.h_count);
      ("sum", Json.Float hs.h_sum);
      ("min", Json.Float hs.h_min);
      ("max", Json.Float hs.h_max);
      ("mean", Json.Float (if hs.h_count = 0 then 0.0 else hs.h_sum /. float_of_int hs.h_count));
      ("p50", Json.Float (percentile_of_snapshot hs 0.5));
      ("p95", Json.Float (percentile_of_snapshot hs 0.95));
      ("p99", Json.Float (percentile_of_snapshot hs 0.99));
      ("buckets", Json.Obj (List.map (fun (i, c) -> (string_of_int i, Json.Int c)) hs.buckets));
    ]

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, histo_to_json h)) s.histograms));
    ]

let to_table_string (s : snapshot) : string =
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    Buffer.add_string buf (Printf.sprintf "%-40s %12s\n" "counter" "value");
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %12d\n" n v))
      s.counters
  end;
  if s.gauges <> [] then begin
    Buffer.add_string buf (Printf.sprintf "%-40s %12s\n" "gauge" "value");
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %12.1f\n" n v))
      s.gauges
  end;
  if s.histograms <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-40s %8s %10s %10s %10s %10s %10s\n" "histogram" "count" "mean" "p50"
         "p95" "p99" "max");
    List.iter
      (fun (n, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-40s %8d %10.1f %10.1f %10.1f %10.1f %10.1f\n" n h.h_count
             (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)
             (percentile_of_snapshot h 0.5)
             (percentile_of_snapshot h 0.95)
             (percentile_of_snapshot h 0.99)
             h.h_max))
      s.histograms
  end;
  Buffer.contents buf
