(* The one-branch gate in front of Trace.global / Metrics.global. *)

let enabled = ref false
let on () = !enabled
let set_enabled b = enabled := b
let enable () = enabled := true
let disable () = enabled := false

let begin_span ?track ?cat ?args name =
  if !enabled then Trace.begin_span ?track ?cat ?args Trace.global name

let end_span ?track ?args () = if !enabled then Trace.end_span ?track ?args Trace.global ()

let span ?track ?cat ?args ?ts ?advance ~dur_us name =
  if !enabled then Trace.complete ?track ?cat ?args ?ts ?advance ~dur_us Trace.global name

let with_span ?track ?cat ?args name f =
  if not !enabled then f ()
  else begin
    Trace.begin_span ?track ?cat ?args Trace.global name;
    match f () with
    | v ->
        Trace.end_span ?track Trace.global ();
        v
    | exception e ->
        Trace.end_span ?track ~args:[ ("error", "true") ] Trace.global ();
        raise e
  end

let advance dt = if !enabled then Trace.advance Trace.global dt

let count ?by name = if !enabled then Metrics.inc ?by (Metrics.counter Metrics.global name)

let gauge name v = if !enabled then Metrics.set_gauge (Metrics.gauge Metrics.global name) v

let observe name v =
  if !enabled then Metrics.observe (Metrics.histogram Metrics.global name) v

let time_counter name f =
  if not !enabled then f ()
  else begin
    let t0 = Trace.now_us Trace.global in
    let finish () =
      Metrics.inc (Metrics.counter Metrics.global (name ^ ".calls"));
      Metrics.observe
        (Metrics.histogram Metrics.global (name ^ ".us"))
        (Trace.now_us Trace.global -. t0)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
