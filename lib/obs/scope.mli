(** Zero-cost-when-disabled instrumentation over the process-wide
    {!Trace.global} and {!Metrics.global}.

    Every helper first checks one mutable boolean; when observability is
    off, an instrumented hot path pays exactly that branch — no span
    records, no argument lists, no histogram updates. Call sites that
    would allocate attribute lists should guard with {!on}:

    {[
      if Obs.Scope.on () then
        Obs.Scope.span ~advance:true ~cat:"kernel"
          ~args:[ ("version", tag) ] ~dur_us kname
    ]} *)

val on : unit -> bool
val set_enabled : bool -> unit
val enable : unit -> unit
val disable : unit -> unit

(** {1 Tracing} (no-ops when disabled; see {!Trace} for semantics) *)

val begin_span : ?track:int -> ?cat:string -> ?args:(string * string) list -> string -> unit
val end_span : ?track:int -> ?args:(string * string) list -> unit -> unit

val span :
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ?ts:float ->
  ?advance:bool ->
  dur_us:float ->
  string ->
  unit

val with_span :
  ?track:int -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a scoped span; its duration is whatever virtual
    time the thunk's own instrumentation advanced. Exception-safe: the
    span is closed (and tagged [error=true]) if the thunk raises. When
    disabled this is exactly [f ()]. *)

val advance : float -> unit
(** Advance the global virtual clock (µs); no-op when disabled. *)

(** {1 Metrics} (on {!Metrics.global}) *)

val count : ?by:int -> string -> unit
val gauge : string -> float -> unit
val observe : string -> float -> unit

val time_counter : string -> (unit -> 'a) -> 'a
(** Run the thunk; record the virtual time it advanced into the
    histogram [name ^ ".us"] and bump the counter [name ^ ".calls"].
    When disabled this is exactly [f ()]. *)
