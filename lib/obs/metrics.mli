(** Registry of named counters, gauges, and log-linear-bucket histograms.

    Counters count events (requests served, faults seen); gauges hold
    the last value of a level (queue depth); histograms record latency
    distributions in log-linear buckets — [sub_buckets] linear divisions
    per power of two, so percentile estimates carry a bounded {e relative}
    error of at most [1 /. sub_buckets] without storing raw samples.

    Registries are cheap: serving layers create their own (a session's
    registry {e is} its stats — single source of truth), while
    process-wide instrumentation shares {!global}. {!snapshot} gives an
    immutable, name-sorted view; {!diff} subtracts two snapshots of the
    same registry (counters and histogram buckets subtract, gauges take
    the later value) for interval reporting. *)

type t
type counter
type gauge
type histogram

val create : unit -> t
val global : t
(** The process-wide registry {!Scope} and instrumentation write to. *)

val reset : t -> unit
(** Forget every metric (names and values). Existing handles returned by
    {!counter} etc. become dangling: they still mutate their old cells,
    which are no longer reachable from the registry. *)

(** {1 Instruments} — all get-or-create by name: the same name in the
    same registry always returns the same underlying cell. *)

val counter : t -> string -> counter
val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val sub_buckets : int
(** Linear subdivisions per power of two (16 → ≤ 6.25 % relative error). *)

val bucket_of : float -> int
(** Index of the log-linear bucket holding a value: bucket 0 is [[0,1)];
    past that, each power of two splits into [sub_buckets] linear
    slices. Exposed so other online estimators (e.g. the serving
    layer's shape-distribution statistics) share one bucket geometry. *)

val bucket_mid : int -> float
(** Midpoint of a bucket — the estimate returned for samples in it. *)

val bucket_hi : int -> float
(** Exclusive upper edge of a bucket ([1.0] for bucket 0). Quantile
    estimates that must {e cover} the observed mass (e.g. bucket
    boundaries placed at traffic quantiles) round up to this edge. *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
(** Record a sample (negative values clamp to 0). Count, sum, exact min
    and max are tracked alongside the buckets. *)

val percentile : histogram -> float -> float
(** [percentile h 0.99]: bucket-midpoint estimate of the p-quantile,
    clamped to the exact observed [min, max]. 0 on an empty histogram. *)

val histogram_count : histogram -> int
val histogram_mean : histogram -> float

(** {1 Snapshots} *)

type histo_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  buckets : (int * int) list;  (** (bucket index, count), ascending, no zeros *)
}

type snapshot = {
  counters : (string * int) list;  (** name-sorted *)
  gauges : (string * float) list;
  histograms : (string * histo_snapshot) list;
}

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff earlier later]: counter and histogram-bucket deltas (clamped at
    0), later gauge values; metrics only present in [later] pass through. *)

val percentile_of_snapshot : histo_snapshot -> float -> float

val snapshot_to_json : snapshot -> Json.t
val to_table_string : snapshot -> string
(** Pretty table: counters, gauges, then histograms with count / mean /
    p50 / p95 / p99 / max per row. *)
