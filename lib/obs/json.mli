(** Minimal JSON document model and serializer.

    The observability layer emits Chrome [trace_event] files and metrics
    snapshots; the benchmark harness emits headline-number files. All of
    them build a {!t} and serialize with {!to_string} — no external JSON
    dependency, no printf-escaping bugs at the call sites. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** [nan]/[inf] serialize as [null] (JSON has neither) *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): quotes,
    backslashes and control characters escaped. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents objects and lists. *)

val write_file : string -> t -> unit
(** Serialize pretty-printed to [path] with a trailing newline. *)
