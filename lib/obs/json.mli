(** Minimal JSON document model and serializer.

    The observability layer emits Chrome [trace_event] files and metrics
    snapshots; the benchmark harness emits headline-number files. All of
    them build a {!t} and serialize with {!to_string} — no external JSON
    dependency, no printf-escaping bugs at the call sites. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** [nan]/[inf] serialize as [null] (JSON has neither) *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): quotes,
    backslashes and control characters escaped. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents objects and lists. *)

val write_file : string -> t -> unit
(** Serialize pretty-printed to [path] with a trailing newline. *)

val parse : string -> (t, string) result
(** Parse one JSON document. Strict: rejects trailing garbage,
    unterminated literals and raw control characters; [\u] escapes
    decode to UTF-8 (BMP only). Numbers that fit OCaml's [int] syntax
    parse as {!Int}, everything else as {!Float}. Errors carry the byte
    offset. Used for chaos scenario files and persisted cache-record
    validation — not a general-purpose JSON library. *)

val member : string -> t -> t option
(** Field lookup on an {!Obj} ([None] on any other constructor). *)

val to_float_opt : t -> float option
(** {!Float} or {!Int} (widened); [None] otherwise. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
