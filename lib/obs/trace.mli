(** Span-based tracing over a virtual (simulated) microsecond timeline.

    The whole stack runs on an analytical cost model, so spans carry
    {e simulated} time: the buffer keeps a per-trace virtual cursor that
    instrumentation advances by the simulated duration of each piece of
    work. Scoped spans ({!begin_span}/{!end_span}) capture the cursor at
    both ends, so a request span's duration is exactly the sum of the
    kernel spans recorded (and advanced) inside it. Spans may also be
    recorded at an explicit timestamp ([?ts]) when the caller owns its
    own timeline (e.g. the queueing simulator's arrival clock).

    The buffer is bounded: past [cap] spans, new ones are counted as
    dropped instead of growing memory. Export to Chrome [trace_event]
    JSON (open in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    or an indented text report.

    Most callers go through {!Scope}, which wraps the process-wide
    {!global} instance behind an on/off switch; this module itself is
    unconditional, which is what the tests want. *)

type span = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["compile"], ["kernel"] *)
  track : int;  (** logical timeline; exported as the Chrome [tid] *)
  begin_us : float;
  dur_us : float;
  depth : int;  (** nesting level at record time (0 = top level) *)
  args : (string * string) list;  (** span attributes *)
}

type t

val create : ?cap:int -> unit -> t
(** Fresh empty trace; [cap] bounds the span buffer (default 65536). *)

val global : t
(** The process-wide trace {!Scope} writes to. *)

val clear : t -> unit
(** Drop all spans, open stacks and track names; reset cursor to 0. *)

(** {1 Virtual clock} *)

val now_us : t -> float
val advance : t -> float -> unit
(** Move the virtual cursor forward by a simulated duration (µs ≥ 0). *)

(** {1 Recording} *)

val begin_span : ?track:int -> ?cat:string -> ?args:(string * string) list -> t -> string -> unit
(** Open a span at the current cursor. Spans on a track nest LIFO. *)

val end_span : ?track:int -> ?args:(string * string) list -> t -> unit -> unit
(** Close the innermost open span on [track], recording its duration as
    the cursor movement since {!begin_span}; [args] are appended to the
    ones given at begin. A stray [end_span] with no open span is a no-op. *)

val complete :
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ?ts:float ->
  ?advance:bool ->
  dur_us:float ->
  t ->
  string ->
  unit
(** Record a whole span at once. [ts] defaults to the cursor;
    [~advance:true] (default false) also moves the cursor by [dur_us] —
    the idiom for sequential simulated work like kernel launches. *)

val set_track_name : t -> int -> string -> unit
(** Label a track; exported as Chrome [thread_name] metadata. *)

(** {1 Inspection & export} *)

val spans : t -> span list
(** Recorded spans sorted by [begin_us] (ties: deeper first). *)

val length : t -> int

val dropped : t -> int
(** Spans discarded because the buffer was full. *)

val to_chrome_json : t -> Json.t
(** The Chrome [trace_event] document: [{"traceEvents": [...]}] with one
    ["ph":"X"] (complete) event per span, µs timestamps, and
    [thread_name] metadata for named tracks. *)

val export_chrome : t -> string
val write_chrome : t -> string -> unit
(** {!to_chrome_json} serialized (to a string / to a file). *)

val to_text_report : t -> string
(** Indented per-track text rendering of the span tree, one line per
    span with begin/duration and attributes. *)
