(* Span tracing over a virtual microsecond timeline; bounded buffer,
   Chrome trace_event / text export. See trace.mli for the model. *)

type span = {
  name : string;
  cat : string;
  track : int;
  begin_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_begin : float;
  o_args : (string * string) list;
}

type t = {
  cap : int;
  mutable buf : span list; (* reverse record order *)
  mutable len : int;
  mutable dropped : int;
  mutable cursor : float;
  stacks : (int, open_span list) Hashtbl.t; (* track -> open spans, innermost first *)
  mutable track_names : (int * string) list;
}

let default_cap = 65536

let create ?(cap = default_cap) () =
  {
    cap = max 1 cap;
    buf = [];
    len = 0;
    dropped = 0;
    cursor = 0.0;
    stacks = Hashtbl.create 4;
    track_names = [];
  }

let global = create ()

let clear t =
  t.buf <- [];
  t.len <- 0;
  t.dropped <- 0;
  t.cursor <- 0.0;
  Hashtbl.reset t.stacks;
  t.track_names <- []

let now_us t = t.cursor
let advance t dt = if dt > 0.0 then t.cursor <- t.cursor +. dt

let stack t track = Option.value (Hashtbl.find_opt t.stacks track) ~default:[]

let record t (s : span) =
  if t.len >= t.cap then t.dropped <- t.dropped + 1
  else begin
    t.buf <- s :: t.buf;
    t.len <- t.len + 1
  end

let begin_span ?(track = 0) ?(cat = "") ?(args = []) t name =
  Hashtbl.replace t.stacks track
    ({ o_name = name; o_cat = cat; o_begin = t.cursor; o_args = args } :: stack t track)

let end_span ?(track = 0) ?(args = []) t () =
  match stack t track with
  | [] -> () (* unbalanced end: ignore rather than corrupt the stream *)
  | o :: rest ->
      Hashtbl.replace t.stacks track rest;
      record t
        {
          name = o.o_name;
          cat = o.o_cat;
          track;
          begin_us = o.o_begin;
          dur_us = t.cursor -. o.o_begin;
          depth = List.length rest;
          args = o.o_args @ args;
        }

let complete ?(track = 0) ?(cat = "") ?(args = []) ?ts ?(advance = false) ~dur_us t name =
  let begin_us = Option.value ts ~default:t.cursor in
  record t
    { name; cat; track; begin_us; dur_us; depth = List.length (stack t track); args };
  if advance then t.cursor <- t.cursor +. Float.max 0.0 dur_us

let set_track_name t i name =
  t.track_names <- (i, name) :: List.remove_assoc i t.track_names

let spans t =
  List.sort
    (fun a b ->
      match compare a.begin_us b.begin_us with 0 -> compare a.depth b.depth | c -> c)
    (List.rev t.buf)

let length t = t.len
let dropped t = t.dropped

(* --- Chrome trace_event export -------------------------------------------- *)

let event_of_span (s : span) : Json.t =
  let args =
    List.map (fun (k, v) -> (k, Json.Str v)) s.args
  in
  Json.Obj
    ([
       ("name", Json.Str s.name);
       ("cat", Json.Str (if s.cat = "" then "default" else s.cat));
       ("ph", Json.Str "X");
       ("ts", Json.Float s.begin_us);
       ("dur", Json.Float s.dur_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int s.track);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let metadata_events t : Json.t list =
  List.map
    (fun (i, name) ->
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int i);
          ("args", Json.Obj [ ("name", Json.Str name) ]);
        ])
    (List.sort compare t.track_names)

let to_chrome_json t : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (metadata_events t @ List.map event_of_span (spans t)));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_spans", Json.Int t.dropped) ]);
    ]

let export_chrome t = Json.to_string ~pretty:true (to_chrome_json t)
let write_chrome t path = Json.write_file path (to_chrome_json t)

(* --- text report ----------------------------------------------------------- *)

let to_text_report t =
  let buf = Buffer.create 1024 in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.track) (spans t))
  in
  List.iter
    (fun track ->
      let tname =
        match List.assoc_opt track t.track_names with
        | Some n -> Printf.sprintf "track %d (%s)" track n
        | None -> Printf.sprintf "track %d" track
      in
      Buffer.add_string buf (Printf.sprintf "%s\n" tname);
      List.iter
        (fun s ->
          if s.track = track then
            Buffer.add_string buf
              (Printf.sprintf "  %s%-24s %12.1f us @ %.1f%s\n"
                 (String.concat "" (List.init s.depth (fun _ -> "  ")))
                 s.name s.dur_us s.begin_us
                 (match s.args with
                 | [] -> ""
                 | args ->
                     "  ["
                     ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
                     ^ "]")))
        (spans t))
    tracks;
  if t.dropped > 0 then
    Buffer.add_string buf (Printf.sprintf "(%d spans dropped: buffer full)\n" t.dropped);
  Buffer.contents buf
