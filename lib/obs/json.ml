(* Minimal JSON emitter: enough for trace files, metrics snapshots and
   benchmark headline output. Build the document, serialize once. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers: no nan/inf, and no OCaml "1." spelling. "%.12g" keeps
   microsecond timestamps exact well past any trace we can buffer. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) (v : t) : string =
  let buf = Buffer.create 1024 in
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, fv) ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) fv)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let write_file path v =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ~pretty:true v);
      Out_channel.output_char oc '\n')
