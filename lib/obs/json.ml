(* Minimal JSON emitter: enough for trace files, metrics snapshots and
   benchmark headline output. Build the document, serialize once. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers: no nan/inf, and no OCaml "1." spelling. "%.12g" keeps
   microsecond timestamps exact well past any trace we can buffer. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) (v : t) : string =
  let buf = Buffer.create 1024 in
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, fv) ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) fv)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let write_file path v =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ~pretty:true v);
      Out_channel.output_char oc '\n')

(* --- parsing ---------------------------------------------------------------
   Recursive-descent reader for the same document model. Strict enough
   for config files (chaos scenarios, persisted cache records): no
   trailing garbage, no unterminated literals, \u escapes decoded to
   UTF-8. Errors carry the byte offset. *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let cp = hex4 () in
               (* decode the BMP code point to UTF-8 (surrogate pairs
                  unsupported — config files are ASCII in practice) *)
               if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
               else if cp < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
               end
           | _ -> fail "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
