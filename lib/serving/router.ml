(* Routing policies over free replicas. *)

type policy = Round_robin | Least_loaded | Warmth_aware

let policy_to_string = function
  | Round_robin -> "round_robin"
  | Least_loaded -> "least_loaded"
  | Warmth_aware -> "warmth"

let policy_of_string = function
  | "round_robin" | "round-robin" | "rr" -> Some Round_robin
  | "least_loaded" | "least-loaded" | "least" -> Some Least_loaded
  | "warmth" | "warmth_aware" | "warmth-aware" -> Some Warmth_aware
  | _ -> None

type t = { p : policy; mutable rr : int }

let create p = { p; rr = 0 }
let policy t = t.p

(* Warmth dominates (a warm signature skips the cold-dispatch warmup
   entirely); a tripped breaker marks the replica as degraded at this
   model; device throughput breaks ties between equally-warm replicas;
   accumulated busy time spreads cold signatures across the pool. The
   magnitudes are strictly tiered so no lower term can outvote a higher
   one at simulation scale. A Degraded (straggling) replica carries a
   penalty above the warmth tier: even a cold Healthy replica beats a
   warm straggler — matching [pick]'s health partition. *)
let score ~now:_ ~key (r : Replica.t) =
  let degraded = if r.Replica.health = Replica.Degraded then -1e14 else 0.0 in
  let warm = if Replica.is_warm r key then 1e12 else 0.0 in
  let breaker =
    -1e8 *. float_of_int (List.length (Disc.Session.despeculated_kernels r.Replica.session))
  in
  let speed = 1e3 *. r.Replica.device.Gpusim.Device.fp32_tflops in
  degraded +. warm +. breaker +. speed -. r.Replica.busy_us

let note_decision t ~key (r : Replica.t) =
  if Obs.Scope.on () then
    Obs.Scope.span ~cat:"route" ~dur_us:0.0
      ~args:
        [
          ("policy", policy_to_string t.p);
          ("replica", string_of_int r.Replica.id);
          ("key", key);
          ("warm", string_of_bool (Replica.is_warm r key));
        ]
      "route"

let pick t ~now ~key (replicas : Replica.t array) =
  (* Health partition, applied before any policy: Degraded replicas are
     routed around — picked only when no Healthy replica is free — so a
     straggler drains its backlog instead of accreting more. *)
  let all_free =
    Array.to_list replicas |> List.filter (fun r -> Replica.is_free r ~now)
  in
  let free =
    match List.filter (fun r -> r.Replica.health = Replica.Healthy) all_free with
    | [] -> all_free
    | healthy -> healthy
  in
  match free with
  | [] -> None
  | _ ->
      let chosen =
        match t.p with
        | Round_robin ->
            let r = List.nth free (t.rr mod List.length free) in
            t.rr <- t.rr + 1;
            r
        | Least_loaded ->
            List.fold_left
              (fun best r ->
                if r.Replica.busy_us < best.Replica.busy_us then r else best)
              (List.hd free) (List.tl free)
        | Warmth_aware ->
            List.fold_left
              (fun best r ->
                if score ~now ~key r > score ~now ~key best then r else best)
              (List.hd free) (List.tl free)
      in
      note_decision t ~key chosen;
      Some chosen
