(* Routing policies over free replicas. *)

type policy = Round_robin | Least_loaded | Warmth_aware

let policy_to_string = function
  | Round_robin -> "round_robin"
  | Least_loaded -> "least_loaded"
  | Warmth_aware -> "warmth"

let policy_of_string = function
  | "round_robin" | "round-robin" | "rr" -> Some Round_robin
  | "least_loaded" | "least-loaded" | "least" -> Some Least_loaded
  | "warmth" | "warmth_aware" | "warmth-aware" -> Some Warmth_aware
  | _ -> None

type t = { p : policy; mutable rr : int }

let create p = { p; rr = 0 }
let policy t = t.p

(* Warmth dominates (a warm signature skips the cold-dispatch warmup
   entirely); a tripped breaker marks the replica as degraded at this
   model; device throughput breaks ties between equally-warm replicas;
   accumulated busy time spreads cold signatures across the pool. The
   magnitudes are strictly tiered so no lower term can outvote a higher
   one at simulation scale. A Degraded (straggling) replica carries a
   penalty above the warmth tier: even a cold Healthy replica beats a
   warm straggler — matching [pick]'s health partition. Memory headroom
   sits between the breaker and speed tiers: under an HBM budget,
   replicas that just held a memory-hot signature yield to ones with
   more recent headroom (spreading big-footprint batches), but never at
   the cost of warmth; without a budget the term is identically zero. *)
let score ~now:_ ~key (r : Replica.t) =
  let degraded = if r.Replica.health = Replica.Degraded then -1e14 else 0.0 in
  let warm = if Replica.is_warm r key then 1e12 else 0.0 in
  let breaker =
    -1e8 *. float_of_int (Disc.Session.despeculated_count r.Replica.session)
  in
  let headroom =
    match r.Replica.hbm_budget with
    | Some b when b > 0 -> 1e6 *. Replica.mem_headroom r
    | _ -> 0.0
  in
  let speed = 1e3 *. r.Replica.device.Gpusim.Device.fp32_tflops in
  degraded +. warm +. breaker +. headroom +. speed -. r.Replica.busy_us

let note_decision t ~key (r : Replica.t) =
  if Obs.Scope.on () then
    Obs.Scope.span ~cat:"route" ~dur_us:0.0
      ~args:
        [
          ("policy", policy_to_string t.p);
          ("replica", string_of_int r.Replica.id);
          ("key", key);
          ("warm", string_of_bool (Replica.is_warm r key));
        ]
      "route"

let pick t ~now ~key (replicas : Replica.t array) =
  (* Health partition, applied before any policy: Degraded replicas are
     routed around — picked only when no Healthy replica is free — so a
     straggler drains its backlog instead of accreting more.

     Allocation-free on the dispatch hot path: the partition is two
     counters over the array and each policy is a single scan keeping
     the running best (first eligible replica in array order wins ties
     — the same replica the old list-based fold chose). *)
  let nreps = Array.length replicas in
  let healthy_free = ref 0 and all_free = ref 0 in
  for i = 0 to nreps - 1 do
    let r = replicas.(i) in
    if Replica.is_free r ~now then begin
      incr all_free;
      if r.Replica.health = Replica.Healthy then incr healthy_free
    end
  done;
  if !all_free = 0 then None
  else begin
    let use_healthy = !healthy_free > 0 in
    let count = if use_healthy then !healthy_free else !all_free in
    let eligible r =
      Replica.is_free r ~now && ((not use_healthy) || r.Replica.health = Replica.Healthy)
    in
    let chosen =
      match t.p with
      | Round_robin ->
          let want = t.rr mod count in
          t.rr <- t.rr + 1;
          let seen = ref (-1) and found = ref replicas.(0) in
          (try
             for i = 0 to nreps - 1 do
               if eligible replicas.(i) then begin
                 incr seen;
                 if !seen = want then begin
                   found := replicas.(i);
                   raise Exit
                 end
               end
             done
           with Exit -> ());
          !found
      | Least_loaded ->
          let best = ref None in
          for i = 0 to nreps - 1 do
            let r = replicas.(i) in
            if eligible r then
              match !best with
              | None -> best := Some r
              | Some b -> if r.Replica.busy_us < b.Replica.busy_us then best := Some r
          done;
          Option.get !best
      | Warmth_aware ->
          let best = ref None and best_score = ref neg_infinity in
          for i = 0 to nreps - 1 do
            let r = replicas.(i) in
            if eligible r then begin
              let s = score ~now ~key r in
              match !best with
              | None ->
                  best := Some r;
                  best_score := s
              | Some _ ->
                  if s > !best_score then begin
                    best := Some r;
                    best_score := s
                  end
            end
          done;
          Option.get !best
    in
    note_decision t ~key chosen;
    Some chosen
  end
