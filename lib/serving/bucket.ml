(* Shape bucketing for the serving batcher.

   Serving traffic creates dynamic shapes (batch = queue depth, other
   dims = intra-batch max); bucketing trades a bounded amount of
   padding waste for repeating shape signatures, which is what makes
   kernels warm and memory plans reusable across batches. *)

type scheme = Exact | Pow2 | Linear of int | Edges of int list

type spec = (string * scheme) list

let scheme_to_string = function
  | Exact -> "exact"
  | Pow2 -> "pow2"
  | Linear s -> Printf.sprintf "linear%d" s
  | Edges es -> "edges" ^ String.concat "-" (List.map string_of_int es)

let spec_to_string (spec : spec) =
  String.concat ","
    (List.map (fun (n, s) -> Printf.sprintf "%s:%s" n (scheme_to_string s)) spec)

let validate_edges es =
  let rec go prev = function
    | [] -> ()
    | e :: rest ->
        if e <= prev then invalid_arg "Bucket.Edges: boundaries must be ascending and >= 1";
        go e rest
  in
  go 0 es

let round_up scheme v =
  if v < 1 then invalid_arg "Bucket.round_up: dim value must be >= 1";
  match scheme with
  | Exact -> v
  | Pow2 ->
      let rec go p = if p >= v then p else go (p * 2) in
      go 1
  | Linear step ->
      if step < 1 then invalid_arg "Bucket.round_up: linear step must be >= 1";
      (v + step - 1) / step * step
  | Edges es -> (
      validate_edges es;
      (* first boundary covering v; a value past the last boundary stays
         exact — the spec was derived from observed traffic, and an
         outlier beyond it should not be rounded to a made-up ceiling *)
      match List.find_opt (fun e -> e >= v) es with Some e -> e | None -> v)

let scheme_of spec name =
  match List.assoc_opt name spec with Some s -> s | None -> Exact

(* The finite signature alphabet [round_up] can mint on [lb, ub]: every
   bucket ceiling some value in the range rounds to, ascending. For a
   monotonically growing dim (KV-cache length) this is exactly the
   ladder of shape signatures a sequence climbs while decoding, which is
   what the decode sessions pre-declare as likely values. Exact degrades
   to one rung per value, so callers should cap consumption (e.g. the
   [Table.set_likely] cap of 16). *)
let ladder scheme ~lb ~ub =
  if lb < 1 || ub < lb then invalid_arg "Bucket.ladder: need 1 <= lb <= ub";
  let rec go v acc =
    if v > ub then List.rev acc
    else
      let c = round_up scheme v in
      (* c >= v; past the last Edges boundary every value is its own
         exact rung, so advance one at a time there *)
      go (max (c + 1) (v + 1)) (c :: acc)
  in
  go lb []

(* Brownout ladder, last rung: trade padding waste for fewer distinct
   signatures. Wider buckets mean more requests share a batch env, so a
   capacity-starved pool serves more batches warm at a worse pad ratio.
   Idempotent on Pow2; Edges keeps its last boundary so the covered
   range never shrinks. *)
let widen_scheme = function
  | Exact -> Pow2
  | Pow2 -> Pow2
  | Linear s -> Linear (2 * s)
  | Edges es ->
      let n = List.length es in
      Edges (List.filteri (fun i _ -> (n - 1 - i) mod 2 = 0) es)

let widen (spec : spec) : spec = List.map (fun (n, s) -> (n, widen_scheme s)) spec

let canonical dims = List.sort (fun (a, _) (b, _) -> compare a b) dims

let bucket_dims spec dims =
  canonical (List.map (fun (n, v) -> (n, round_up (scheme_of spec n) v)) dims)

let env_key dims =
  String.concat ","
    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) (canonical dims))

let key_of spec dims = env_key (bucket_dims spec dims)

let elements dims = List.fold_left (fun acc (_, v) -> acc * v) 1 dims

(* Batch env at the intra-batch max — the same union-of-dims rule as
   [Workloads.Queueing.batch_env], over raw dim lists. *)
let exact_env ~batch_dim (members : (string * int) list list) =
  if members = [] then invalid_arg "Bucket.exact_env: empty batch";
  let names =
    List.fold_left
      (fun acc dims ->
        List.fold_left
          (fun acc (name, _) -> if List.mem name acc then acc else name :: acc)
          acc dims)
      [] members
    |> List.rev
  in
  (batch_dim, List.length members)
  :: List.map
       (fun name ->
         ( name,
           List.fold_left
             (fun acc dims ->
               match List.assoc_opt name dims with Some v -> max acc v | None -> acc)
             1 members ))
       names

let padded_env spec ~batch_dim members =
  List.map
    (fun (n, v) -> (n, round_up (scheme_of spec n) v))
    (exact_env ~batch_dim members)

let waste ~actual ~padded =
  if padded = 0 then 0.0 else float_of_int (padded - actual) /. float_of_int padded
