(** Replica selection for one formed batch.

    The router chooses among the replicas that are free (dispatchable
    and idle) at dispatch time, preferring [Healthy] replicas over
    [Degraded] stragglers under every policy: a Degraded replica is
    picked only when no Healthy one is free, so it drains its backlog
    while remaining counted capacity. [Warmth_aware] scores each
    candidate by
    shape warmth (has it served this signature before — the dominant
    term: a warm replica skips the cold-dispatch warmup), then
    circuit-breaker state (de-speculated kernels make a replica slower
    at this model), memory headroom (under an HBM budget, replicas that
    just held a memory-hot signature yield to fresher ones — zero when
    unbudgeted), device throughput, and accumulated load (the
    idle-time analogue of queue depth — spreading cold signatures so a
    hot replica doesn't hoard every bucket). *)

type policy =
  | Round_robin  (** rotate over free replicas, warmth-blind *)
  | Least_loaded  (** least accumulated busy time first *)
  | Warmth_aware  (** warmth, breaker state, memory headroom, speed, then load *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type t

val create : policy -> t
val policy : t -> policy

val score : now:float -> key:string -> Replica.t -> float
(** The [Warmth_aware] score of one replica for one shape signature
    (higher is better); exposed for tests and the serve CLI. A
    [Degraded] replica scores below any non-degraded one (the penalty
    tier sits above warmth), consistent with {!pick}'s partition. *)

val pick : t -> now:float -> key:string -> Replica.t array -> Replica.t option
(** Choose among replicas free at [now] for a batch with shape
    signature [key]; [None] when no replica is free. *)
