(* Replica autoscaling against SLO attainment and queue depth.

   The decision rule is deliberately small: scale up when the pool is
   missing its attainment target or the backlog per alive replica is
   past a bound, scale down when attainment is comfortable and the
   backlog is (near) empty, and hold inside a cooldown window so one
   burst cannot thrash the pool through add/drain cycles. The *pool*
   owns the mechanics (minting a pre-warmed replica from the shared
   compile cache, draining the youngest one); the autoscaler only
   answers "which direction, now?". *)

type config = {
  min_replicas : int;
  max_replicas : int;
  target_attainment : float; (* scale up below this SLO-met fraction *)
  scale_up_queue : int; (* .. or when backlog per alive replica exceeds this *)
  scale_down_queue : int; (* scale down only at/below this total backlog *)
  cooldown_us : float;
}

let default_config =
  {
    min_replicas = 1;
    max_replicas = 4;
    target_attainment = 0.95;
    scale_up_queue = 8;
    scale_down_queue = 0;
    cooldown_us = 50_000.0;
  }

type action = Hold | Scale_up | Scale_down

let action_to_string = function
  | Hold -> "hold"
  | Scale_up -> "scale_up"
  | Scale_down -> "scale_down"

type t = {
  cfg : config;
  mutable last_scale_us : float; (* last non-Hold decision; -inf = never *)
  mutable ups : int;
  mutable downs : int;
}

let create cfg =
  if cfg.min_replicas < 1 then invalid_arg "Autoscaler: min_replicas must be >= 1";
  if cfg.max_replicas < cfg.min_replicas then
    invalid_arg "Autoscaler: max_replicas must be >= min_replicas";
  { cfg; last_scale_us = neg_infinity; ups = 0; downs = 0 }

let config t = t.cfg
let ups t = t.ups
let downs t = t.downs

let note t ~now action =
  t.last_scale_us <- now;
  (match action with
  | Scale_up -> t.ups <- t.ups + 1
  | Scale_down -> t.downs <- t.downs + 1
  | Hold -> ());
  if Obs.Scope.on () then Obs.Scope.count (Printf.sprintf "pool.%s" (action_to_string action));
  action

(* [mem_pressure] is the pool's memory signal: a sustained run of
   dispatches estimated near the HBM budget (or capped to fit it). It is
   a third scale-up trigger — more replicas spread the same footprint —
   and a scale-down veto: shrinking a fleet that is capping batches to
   fit its budget would concentrate the pressure it is under. *)
let decide ?(mem_pressure = false) t ~now ~alive ~queue_depth ~attainment =
  let c = t.cfg in
  if alive < c.min_replicas then note t ~now Scale_up (* repair below the floor, cooldown or not *)
  else if now -. t.last_scale_us < c.cooldown_us then Hold
  else if
    alive < c.max_replicas
    && (attainment < c.target_attainment
       || queue_depth > c.scale_up_queue * max 1 alive
       || mem_pressure)
  then note t ~now Scale_up
  else if
    alive > c.min_replicas
    && attainment >= c.target_attainment
    && queue_depth <= c.scale_down_queue
    && not mem_pressure
  then note t ~now Scale_down
  else Hold
