(* Scenario-driven fault injection for the serving fleet.

   A scenario is data, not code: a seed plus a list of events pinned to
   virtual time. The pool replays it deterministically — every random
   draw (spike arrival times, spike shapes, cache-corruption victims)
   is a counter-hash off the scenario seed, so two runs of one
   (seed, scenario) pair inject byte-identical chaos. That is what
   makes a chaos failure a test case instead of an anecdote. *)

type event =
  | Crash of { replica : int; recover_after_us : float option; spinup_us : float }
  | Straggle of { replica : int; factor : float; duration_us : float }
  | Flaky of {
      replica : int;
      kernel_fault_rate : float;
      oom_rate : float;
      duration_us : float;
    }
  | Spike of {
      duration_us : float;
      requests : int;
      dim : string;
      lo : int;
      hi : int;
      cls : Slo.cls;
    }
  | Corrupt_cache of { fraction : float }

type timed = { at_us : float; event : event }

type scenario = { seed : int; events : timed list }

let event_name = function
  | Crash _ -> "crash"
  | Straggle _ -> "straggle"
  | Flaky _ -> "flaky"
  | Spike _ -> "spike"
  | Corrupt_cache _ -> "corrupt_cache"

let event_to_string = function
  | Crash { replica; recover_after_us; spinup_us } ->
      Printf.sprintf "crash replica=%d%s spinup=%.0fus" replica
        (match recover_after_us with
        | Some r -> Printf.sprintf " recover_after=%.0fus" r
        | None -> "")
        spinup_us
  | Straggle { replica; factor; duration_us } ->
      Printf.sprintf "straggle replica=%d x%.1f for %.0fus" replica factor duration_us
  | Flaky { replica; kernel_fault_rate; oom_rate; duration_us } ->
      Printf.sprintf "flaky replica=%d kernel=%.3f oom=%.3f for %.0fus" replica
        kernel_fault_rate oom_rate duration_us
  | Spike { duration_us; requests; dim; lo; hi; cls } ->
      Printf.sprintf "spike %d %s requests %s=%d..%d over %.0fus" requests
        (Slo.cls_to_string cls) dim lo hi duration_us
  | Corrupt_cache { fraction } -> Printf.sprintf "corrupt_cache fraction=%.2f" fraction

let scenario_to_string s =
  Printf.sprintf "seed=%d events=[%s]" s.seed
    (String.concat "; "
       (List.map (fun t -> Printf.sprintf "@%.0fus %s" t.at_us (event_to_string t.event)) s.events))

(* Validation is all-at-once so a bad scenario file reports every
   problem, not just the first. *)
let validate s =
  let errs = ref [] in
  let err i fmt = Printf.ksprintf (fun m -> errs := Printf.sprintf "event %d: %s" i m :: !errs) fmt in
  List.iteri
    (fun i { at_us; event } ->
      if at_us < 0.0 || Float.is_nan at_us then err i "at_us must be >= 0";
      (match event with
      | Crash { replica; recover_after_us; spinup_us } ->
          if replica < 0 then err i "crash: replica must be >= 0";
          if spinup_us < 0.0 then err i "crash: spinup_us must be >= 0";
          Option.iter
            (fun r -> if r <= 0.0 then err i "crash: recover_after_us must be > 0")
            recover_after_us
      | Straggle { replica; factor; duration_us } ->
          if replica < 0 then err i "straggle: replica must be >= 0";
          if factor < 1.0 then err i "straggle: factor must be >= 1";
          if duration_us <= 0.0 then err i "straggle: duration_us must be > 0"
      | Flaky { replica; kernel_fault_rate; oom_rate; duration_us } ->
          if replica < 0 then err i "flaky: replica must be >= 0";
          if kernel_fault_rate < 0.0 || kernel_fault_rate > 1.0 then
            err i "flaky: kernel_fault_rate must be in [0,1]";
          if oom_rate < 0.0 || oom_rate > 1.0 then err i "flaky: oom_rate must be in [0,1]";
          if duration_us <= 0.0 then err i "flaky: duration_us must be > 0"
      | Spike { duration_us; requests; dim; lo; hi; cls = _ } ->
          if duration_us <= 0.0 then err i "spike: duration_us must be > 0";
          if requests <= 0 then err i "spike: requests must be > 0";
          if dim = "" then err i "spike: dim must be named";
          if lo < 1 then err i "spike: lo must be >= 1";
          if hi < lo then err i "spike: hi must be >= lo"
      | Corrupt_cache { fraction } ->
          if fraction < 0.0 || fraction > 1.0 then
            err i "corrupt_cache: fraction must be in [0,1]"))
    s.events;
  match List.rev !errs with [] -> Ok () | es -> Error es

(* --- JSON surface ------------------------------------------------- *)

let cls_json c = Obs.Json.Str (Slo.cls_to_string c)

let event_to_json (t : timed) : Obs.Json.t =
  let base = [ ("type", Obs.Json.Str (event_name t.event)); ("at_us", Obs.Json.Float t.at_us) ] in
  let rest =
    match t.event with
    | Crash { replica; recover_after_us; spinup_us } ->
        [ ("replica", Obs.Json.Int replica); ("spinup_us", Obs.Json.Float spinup_us) ]
        @ (match recover_after_us with
          | Some r -> [ ("recover_after_us", Obs.Json.Float r) ]
          | None -> [])
    | Straggle { replica; factor; duration_us } ->
        [
          ("replica", Obs.Json.Int replica);
          ("factor", Obs.Json.Float factor);
          ("duration_us", Obs.Json.Float duration_us);
        ]
    | Flaky { replica; kernel_fault_rate; oom_rate; duration_us } ->
        [
          ("replica", Obs.Json.Int replica);
          ("kernel_fault_rate", Obs.Json.Float kernel_fault_rate);
          ("oom_rate", Obs.Json.Float oom_rate);
          ("duration_us", Obs.Json.Float duration_us);
        ]
    | Spike { duration_us; requests; dim; lo; hi; cls } ->
        [
          ("duration_us", Obs.Json.Float duration_us);
          ("requests", Obs.Json.Int requests);
          ("dim", Obs.Json.Str dim);
          ("lo", Obs.Json.Int lo);
          ("hi", Obs.Json.Int hi);
          ("cls", cls_json cls);
        ]
    | Corrupt_cache { fraction } -> [ ("fraction", Obs.Json.Float fraction) ]
  in
  Obs.Json.Obj (base @ rest)

let to_json s =
  Obs.Json.Obj
    [ ("seed", Obs.Json.Int s.seed); ("events", Obs.Json.List (List.map event_to_json s.events)) ]

let ( let* ) r f = Result.bind r f

let field name j =
  match Obs.Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let float_field name j =
  let* v = field name j in
  match Obs.Json.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let int_field name j =
  let* v = field name j in
  match Obs.Json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let string_field name j =
  let* v = field name j in
  match Obs.Json.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let opt_float_field name j =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> Ok None
  | Some v -> (
      match Obs.Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let event_of_json j =
  let* ty = string_field "type" j in
  let* at_us = float_field "at_us" j in
  let* event =
    match ty with
    | "crash" ->
        let* replica = int_field "replica" j in
        let* recover_after_us = opt_float_field "recover_after_us" j in
        let spinup_us =
          match Obs.Json.member "spinup_us" j with
          | Some v -> Option.value (Obs.Json.to_float_opt v) ~default:0.0
          | None -> 0.0
        in
        Ok (Crash { replica; recover_after_us; spinup_us })
    | "straggle" ->
        let* replica = int_field "replica" j in
        let* factor = float_field "factor" j in
        let* duration_us = float_field "duration_us" j in
        Ok (Straggle { replica; factor; duration_us })
    | "flaky" ->
        let* replica = int_field "replica" j in
        let* kernel_fault_rate = float_field "kernel_fault_rate" j in
        let* oom_rate = float_field "oom_rate" j in
        let* duration_us = float_field "duration_us" j in
        Ok (Flaky { replica; kernel_fault_rate; oom_rate; duration_us })
    | "spike" ->
        let* duration_us = float_field "duration_us" j in
        let* requests = int_field "requests" j in
        let* dim = string_field "dim" j in
        let* lo = int_field "lo" j in
        let* hi = int_field "hi" j in
        let* cls_s = string_field "cls" j in
        let* cls =
          match Slo.cls_of_string cls_s with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "unknown SLO class %S" cls_s)
        in
        Ok (Spike { duration_us; requests; dim; lo; hi; cls })
    | "corrupt_cache" ->
        let* fraction = float_field "fraction" j in
        Ok (Corrupt_cache { fraction })
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  Ok { at_us; event }

let of_json j =
  let* seed = int_field "seed" j in
  let* events_j = field "events" j in
  let* items =
    match events_j with
    | Obs.Json.List items -> Ok items
    | _ -> Error "field \"events\" must be a list"
  in
  let* events =
    List.fold_left
      (fun acc (i, item) ->
        let* acc = acc in
        match event_of_json item with
        | Ok e -> Ok (e :: acc)
        | Error m -> Error (Printf.sprintf "event %d: %s" i m))
      (Ok [])
      (List.mapi (fun i item -> (i, item)) items)
  in
  let s = { seed; events = List.rev events } in
  match validate s with Ok () -> Ok s | Error es -> Error (String.concat "; " es)

let of_string text =
  match Obs.Json.parse text with
  | Error m -> Error (Printf.sprintf "scenario JSON: %s" m)
  | Ok j -> of_json j

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> of_string text

let save_file path s = Obs.Json.write_file path (to_json s)

(* --- Delivery schedule -------------------------------------------- *)

type action =
  | Kill of { replica : int }
  | Revive of { replica : int; spinup_us : float }
  | Slow of { replica : int; factor : float }
  | Unslow of { replica : int }
  | Set_faults of { replica : int; kernel_fault_rate : float; oom_rate : float }
  | Clear_faults of { replica : int }
  | Corrupt of { fraction : float }

let action_to_string = function
  | Kill { replica } -> Printf.sprintf "kill replica=%d" replica
  | Revive { replica; spinup_us } ->
      Printf.sprintf "revive replica=%d spinup=%.0fus" replica spinup_us
  | Slow { replica; factor } -> Printf.sprintf "slow replica=%d x%.1f" replica factor
  | Unslow { replica } -> Printf.sprintf "unslow replica=%d" replica
  | Set_faults { replica; kernel_fault_rate; oom_rate } ->
      Printf.sprintf "set_faults replica=%d kernel=%.3f oom=%.3f" replica kernel_fault_rate
        oom_rate
  | Clear_faults { replica } -> Printf.sprintf "clear_faults replica=%d" replica
  | Corrupt { fraction } -> Printf.sprintf "corrupt fraction=%.2f" fraction

(* Expand durations into start/end actions and sort by delivery time.
   The sort key includes the event's scenario position so simultaneous
   actions are delivered in scenario order — the schedule is a pure
   function of the scenario. *)
let deliveries s =
  let acts =
    List.concat
      (List.mapi
         (fun i { at_us; event } ->
           match event with
           | Crash { replica; recover_after_us; spinup_us } ->
               (at_us, i, Kill { replica })
               ::
               (match recover_after_us with
               | Some r -> [ (at_us +. r, i, Revive { replica; spinup_us }) ]
               | None -> [])
           | Straggle { replica; factor; duration_us } ->
               [
                 (at_us, i, Slow { replica; factor });
                 (at_us +. duration_us, i, Unslow { replica });
               ]
           | Flaky { replica; kernel_fault_rate; oom_rate; duration_us } ->
               [
                 (at_us, i, Set_faults { replica; kernel_fault_rate; oom_rate });
                 (at_us +. duration_us, i, Clear_faults { replica });
               ]
           | Spike _ -> []
           | Corrupt_cache { fraction } -> [ (at_us, i, Corrupt { fraction }) ])
         s.events)
  in
  List.sort
    (fun (ta, ia, _) (tb, ib, _) -> if ta = tb then compare ia ib else compare ta tb)
    acts
  |> List.map (fun (t, _, a) -> (t, a))

(* Spike traffic. Every request burns exactly two uniform draws (one
   for arrival offset, one for the dim value) off a single counter that
   advances across all spike events in scenario order, so adding an
   unrelated event before a spike does not reshuffle its arrivals
   unless it is itself a spike. *)
let spike_arrivals s =
  let counter = ref 0 in
  let draw () =
    let u = Gpusim.Fault.stream_uniform ~seed:s.seed ~counter:!counter in
    incr counter;
    u
  in
  List.concat_map
    (fun { at_us; event } ->
      match event with
      | Spike { duration_us; requests; dim; lo; hi; cls } ->
          List.init requests (fun _ ->
              let u_t = draw () in
              let u_v = draw () in
              let arrival = at_us +. (u_t *. duration_us) in
              let v = lo + int_of_float (u_v *. float_of_int (hi - lo + 1)) in
              let v = min hi (max lo v) in
              (arrival, [ (dim, v) ], cls))
      | _ -> [])
    s.events

let spike_request_count s =
  List.fold_left
    (fun acc { event; _ } -> match event with Spike { requests; _ } -> acc + requests | _ -> acc)
    0 s.events
