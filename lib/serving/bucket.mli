(** Shape buckets: quantize per-request dynamic dims so that requests
    with nearby shapes share a batch — and, when padded to the bucket
    ceiling, share a shape signature across batches (warm kernels,
    reusable memory plans).

    A {!spec} names a rounding scheme per dim; unlisted dims stay
    exact. The batcher ({!Pool}) forms batches per bucket key and then
    decides {e pad-to-bucket} (dims rounded to the bucket ceiling — a
    repeating signature) versus {e exact-shape} dispatch (dims at the
    intra-batch max — minimal padding, but a signature that rarely
    repeats) from a measured padding-waste cost model. *)

type scheme =
  | Exact  (** no rounding: every distinct value is its own bucket *)
  | Pow2  (** round up to the next power of two *)
  | Linear of int  (** round up to the next multiple of the step *)
  | Edges of int list
      (** round up to the first of an explicit ascending boundary list —
          the scheme the adaptive feedback loop derives by placing
          boundaries at observed traffic quantiles ({!Shape_stats}).
          Values past the last boundary stay exact. *)

type spec = (string * scheme) list
(** Rounding scheme per dim name; dims not listed are [Exact]. *)

val scheme_to_string : scheme -> string

val spec_to_string : spec -> string
(** e.g. ["batch:pow2,hist:edges34-66-100"]. *)

val round_up : scheme -> int -> int
(** Round a dim value (>= 1) up to its bucket ceiling. *)

val validate_edges : int list -> unit
(** Check an [Edges] boundary list: strictly ascending, every boundary
    >= 1. @raise Invalid_argument otherwise. (Also enforced lazily by
    {!round_up}.) *)

val ladder : scheme -> lb:int -> ub:int -> int list
(** The finite, ascending set of bucket ceilings {!round_up} can
    produce for values in [[lb, ub]] — the signature alphabet of a dim
    bounded to that range. For a monotonically growing dim (KV-cache
    length, {!Symshape.Table.set_growing}) this is the ladder of
    signatures a sequence climbs while decoding; decode sessions
    pre-declare it as likely values so every rung compiles against
    known hints. [Exact] yields one rung per value — callers cap
    consumption. @raise Invalid_argument unless [1 <= lb <= ub]. *)

val widen_scheme : scheme -> scheme
(** One step coarser: [Exact] -> [Pow2], [Linear s] -> [Linear 2s],
    [Edges] -> every other boundary keeping the last (covered range
    never shrinks). [Pow2] is a fixed point. Used by the brownout
    ladder to trade padding waste for fewer distinct signatures. *)

val widen : spec -> spec
(** {!widen_scheme} applied to every dim of the spec. *)

val bucket_dims : spec -> (string * int) list -> (string * int) list
(** Each dim rounded per the spec, name-sorted (canonical order). *)

val key_of : spec -> (string * int) list -> string
(** Canonical bucket key of one request's dims, e.g. ["hist=64,seq=128"]. *)

val env_key : (string * int) list -> string
(** Canonical key of a full shape environment (name-sorted, no
    rounding) — the warmth identity of a dispatched batch. *)

val elements : (string * int) list -> int
(** Product of the dim values (1 for the empty list). *)

val exact_env :
  batch_dim:string -> (string * int) list list -> (string * int) list
(** Batch env at the intra-batch max: batch dim = member count, every
    other dim = max over members (missing dims contribute 1).
    @raise Invalid_argument on an empty batch. *)

val padded_env :
  spec -> batch_dim:string -> (string * int) list list -> (string * int) list
(** {!exact_env} with every dim — including the batch dim, when listed
    in the spec — rounded up to its bucket ceiling. *)

val waste : actual:int -> padded:int -> float
(** [(padded - actual) / padded], 0 when [padded] is 0. *)
