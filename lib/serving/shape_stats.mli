(** Online shape-distribution statistics: the runtime half of the
    paper's distribution constraints.

    Each observed request lands its dynamic-dim values in per-dim
    {e decayed log-linear histograms} (the {!Obs.Metrics} bucket
    geometry: [sub_buckets] linear slices per power of two, so quantile
    estimates carry at most one bucket of error — ≤ 6.25 % relative).
    The accumulated mass is exported in two forms:

    - {!edges}/{!spec}: bucket boundaries placed at traffic quantiles
      (equal mass per bucket), feeding {!Bucket.Edges} so the batcher
      pads to ceilings traffic actually clusters under;
    - {!hints}/{!likely}: top-k likely values per dim, feeding
      [Symshape.Table.set_likely] through the session/specialize
      ingestion points so speculative specializations are minted for
      the shapes traffic actually has.

    Counts decay multiplicatively between control ticks ({!decay}), so
    the estimator tracks drift. Decay rescales all buckets uniformly:
    quantiles — and the derived edges — are invariant under decay
    alone, which keeps canonical bucket keys stable while the observed
    distribution is unchanged. *)

type t

val create : unit -> t

val observe : t -> (string * int) list -> unit
(** Record one request's dims (values < 1 are ignored). *)

val observations : t -> int
(** Requests observed (undecayed). *)

val dim_names : t -> string list
(** Dims seen so far, in first-observation order. *)

val decay : t -> factor:float -> unit
(** Multiply every bucket's mass by [factor] (clamped to [[0, 1]]);
    mass below 1e-9 is dropped. Observed min/max are kept exact. *)

val quantile : t -> string -> float -> int
(** Smallest integer bucket edge covering fraction [p] of the decayed
    mass, clamped to the exact observed [[min, max]]. Error is bounded
    by one bucket width. 0 for an unseen dim or fully-decayed mass. *)

val likely : ?k:int -> t -> string -> int list
(** Covering edges of the [k] (default 4) heaviest buckets, ascending
    (mass ties break toward the smaller value). [[]] when unseen. *)

val hints : ?k:int -> t -> (string * int list) list
(** {!likely} per dim in first-seen order, omitting empty dims — the
    payload for [Session.ingest_hints] / [Specialize.ingest_hints]. *)

val edges : ?quantum:int -> t -> max_edges:int -> string -> int list
(** Bucket boundaries at the mass quantiles [1/n .. 1], deduplicated
    ascending, always ending at the observed max. [quantum] (default 1)
    rounds each boundary up to a multiple, capped at the observed max —
    hysteresis against quantile wobble, so a stable distribution keeps
    a stable signature set. [[]] when unseen. *)

val spec : ?quantum:int -> t -> max_edges:int -> dims:Bucket.spec -> Bucket.spec
(** Re-derive a bucket spec: each dim with observed traffic gets
    [Bucket.Edges (edges ...)]; dims without traffic keep their static
    scheme. Deterministic in the observation history, so unchanged
    traffic re-derives the identical spec. *)

val to_string : t -> string
