(* Online per-dim shape-distribution statistics.

   The paper's symbol table carries distribution constraints — likely
   values and ranges — as *static* compilation hints. This module closes
   the loop at runtime: every admitted request's dims land in decayed
   log-linear histograms (the same bucket geometry as [Obs.Metrics], so
   quantile error is bounded by one bucket width, i.e. 1/sub_buckets
   relative), and the accumulated mass is exported back as

     - quantile-placed bucket boundaries ([edges] -> [Bucket.Edges]),
     - top-k likely-value hints ([hints] -> [Symshape.Table.set_likely]
       via [Disc.Session.ingest_hints] / [Disc.Specialize.ingest_hints]).

   Counts decay multiplicatively between control ticks so the estimator
   tracks a drifting distribution; decay rescales every bucket by the
   same factor, so quantiles — and therefore the derived bucket edges —
   are invariant under decay alone. That invariance is what keeps
   canonical bucket keys stable when traffic has not changed. *)

module M = Obs.Metrics

type dim_stats = {
  mutable counts : float array; (* decayed mass per log-linear bucket *)
  mutable total : float;
  mutable vmin : int; (* exact observed extrema; never decayed *)
  mutable vmax : int;
  mutable raw : int; (* undecayed observation count *)
}

type t = {
  dims : (string, dim_stats) Hashtbl.t;
  mutable order : string list; (* first-seen dim order, for deterministic export *)
  mutable observations : int; (* observe calls (requests), undecayed *)
}

let create () = { dims = Hashtbl.create 8; order = []; observations = 0 }

let dim_names t = t.order
let observations t = t.observations

let stats_of t name =
  match Hashtbl.find_opt t.dims name with
  | Some s -> s
  | None ->
      let s = { counts = Array.make 64 0.0; total = 0.0; vmin = max_int; vmax = 0; raw = 0 } in
      Hashtbl.replace t.dims name s;
      t.order <- t.order @ [ name ];
      s

let observe_dim t name v =
  if v >= 1 then begin
    let s = stats_of t name in
    let i = M.bucket_of (float_of_int v) in
    if i >= Array.length s.counts then begin
      let bigger = Array.make (max (i + 1) (2 * Array.length s.counts)) 0.0 in
      Array.blit s.counts 0 bigger 0 (Array.length s.counts);
      s.counts <- bigger
    end;
    s.counts.(i) <- s.counts.(i) +. 1.0;
    s.total <- s.total +. 1.0;
    s.raw <- s.raw + 1;
    if v < s.vmin then s.vmin <- v;
    if v > s.vmax then s.vmax <- v
  end

let observe t (dims : (string * int) list) =
  t.observations <- t.observations + 1;
  List.iter (fun (n, v) -> observe_dim t n v) dims

let epsilon = 1e-9

let decay t ~factor =
  let factor = Float.max 0.0 (Float.min 1.0 factor) in
  Hashtbl.iter
    (fun _ s ->
      let total = ref 0.0 in
      Array.iteri
        (fun i c ->
          let c = c *. factor in
          let c = if c < epsilon then 0.0 else c in
          s.counts.(i) <- c;
          total := !total +. c)
        s.counts;
      s.total <- !total)
    t.dims

(* Upper-edge quantile: the smallest bucket boundary covering at least
   fraction [p] of the decayed mass, clamped to the exact observed
   extrema. Using the bucket's upper edge (not midpoint) means a bucket
   boundary placed at [quantile p] genuinely covers that mass — padding
   rounds *up*, so an undershooting boundary would split a hot bucket. *)
let quantile t name p =
  match Hashtbl.find_opt t.dims name with
  | None -> 0
  | Some s when s.total <= 0.0 -> 0
  | Some s ->
      let p = Float.max 0.0 (Float.min 1.0 p) in
      let target = p *. s.total in
      let est = ref s.vmax in
      (try
         let acc = ref 0.0 in
         Array.iteri
           (fun i c ->
             acc := !acc +. c;
             if c > 0.0 && !acc >= target -. epsilon then begin
               est := int_of_float (Float.ceil (M.bucket_hi i)) - 1;
               (* bucket_hi is exclusive; the largest int below it is the
                  covering integer edge (buckets at integer resolution) *)
               raise Exit
             end)
           s.counts
       with Exit -> ());
      max s.vmin (min s.vmax !est)

(* Top-k likely values: the k buckets holding the most mass, reported at
   their covering integer edge, ascending. Ties break toward the lower
   bucket so the result is deterministic. *)
let likely ?(k = 4) t name =
  match Hashtbl.find_opt t.dims name with
  | None -> []
  | Some s when s.total <= 0.0 -> []
  | Some s ->
      let weighted = ref [] in
      Array.iteri (fun i c -> if c > 0.0 then weighted := (i, c) :: !weighted) s.counts;
      let ranked =
        List.sort
          (fun (ia, ca) (ib, cb) ->
            match compare cb ca with 0 -> compare ia ib | c -> c)
          (List.rev !weighted)
      in
      let top = List.filteri (fun idx _ -> idx < max 1 k) ranked in
      List.sort_uniq compare
        (List.map
           (fun (i, _) -> max s.vmin (min s.vmax (int_of_float (Float.ceil (M.bucket_hi i)) - 1)))
           top)

let hints ?k t =
  List.filter_map
    (fun name -> match likely ?k t name with [] -> None | vs -> Some (name, vs))
    t.order

(* Bucket boundaries at the mass quantiles 1/n, 2/n, .., 1: equal traffic
   per bucket instead of equal (or doubling) width. The last edge is the
   observed max, so everything seen so far rounds inside the spec.

   [quantum] rounds every boundary up to a multiple (capped at the
   observed max, so padding never exceeds a value traffic has actually
   bound): quantile estimates wobble by a bucket as mass accumulates,
   and without quantization each wobble is a fresh shape signature —
   cold dispatches that cost more than the padding the finer edge
   saved. *)
let edges ?(quantum = 1) t ~max_edges name =
  match Hashtbl.find_opt t.dims name with
  | None -> []
  | Some s when s.total <= 0.0 -> []
  | Some s ->
      let n = max 1 max_edges in
      let q = max 1 quantum in
      let snap v = min s.vmax ((v + q - 1) / q * q) in
      let qs = List.init n (fun j -> float_of_int (j + 1) /. float_of_int n) in
      List.sort_uniq compare (s.vmax :: List.map (fun p -> snap (quantile t name p)) qs)

let spec ?quantum t ~max_edges ~(dims : Bucket.spec) : Bucket.spec =
  List.map
    (fun (name, scheme) ->
      match edges ?quantum t ~max_edges name with
      | [] -> (name, scheme) (* no traffic observed: keep the static scheme *)
      | es -> (name, Bucket.Edges es))
    dims

let to_string t =
  String.concat "; "
    (List.map
       (fun name ->
         let s = Hashtbl.find t.dims name in
         Printf.sprintf "%s: n=%d mass=%.1f min=%d max=%d p50=%d p99=%d" name s.raw s.total
           s.vmin s.vmax (quantile t name 0.5) (quantile t name 0.99))
       t.order)
