(** The multi-replica serving pool: a discrete-event simulation (virtual
    time, µs) of N {!Disc.Session} replicas over heterogeneous devices,
    sharing one {!Disc.Compile_cache}, behind a shape-aware batcher, an
    SLO-aware admission controller, and a warmth-aware router.

    Request flow: {e admission} (malformed dims rejected; a class at its
    queue bound sheds) → {e bucket queues} ({!Bucket.key_of} of the
    request dims) → {e batching} (a bucket launches when full, when its
    oldest request has waited [max_wait_us], or when the trace is
    drained; expired requests are dropped at dispatch) → {e pad-vs-exact}
    (measured cost model: the padded env repeats across batches and so
    runs warm, the exact env wastes fewer elements but rarely repeats)
    → {e routing} ({!Router}) → {e service} ({!Disc.Session.serve_result},
    plus a one-off warmup the first time a replica sees a signature).

    Replica failure ([~failures]) drains: the in-flight batch completes,
    the replica takes no further work, queued traffic re-routes to the
    survivors. Every request ends in exactly one disposition
    ([lost = 0] is an invariant the tests pin). *)

type config = {
  devices : Gpusim.Device.t list;  (** one replica per device *)
  batch_dim : string;
  max_batch : int;
  max_wait_us : float;  (** max delay past a bucket's oldest request *)
  bucket : Bucket.spec;
  slo : Slo.policy;
  router : Router.policy;
  max_pad_waste : float;
      (** hard cap: above this padding fraction, dispatch exact-shape *)
  cold_warmup_us : float;
      (** one-off cost the first time a replica executes a signature *)
  hbm_budget : int option;
      (** per-replica device-memory budget in bytes, enforced against the
          symbolic peak estimate ({!Disc.Session.mem_peak_bytes}) of each
          batch's dispatch env. [None] (the default) disables all memory
          accounting — runs are bit-identical to the pre-budget pool. *)
  mem_aware : bool;
      (** with a budget set: [true] gates dispatches — a batch whose
          estimated peak exceeds the budget is re-planned (padded →
          exact, then members bumped back to the queue front) until it
          fits, so nothing OOMs by construction; [false] is the
          memory-blind ablation — over-budget batches dispatch anyway
          and are lost as OOMs. Ignored when [hbm_budget] is [None]. *)
}

val default_config :
  devices:Gpusim.Device.t list -> batch_dim:string -> bucket:Bucket.spec -> config
(** max_batch 8, max_wait 2 ms, default SLO policy, warmth-aware
    routing, 50 % padding cap, 1.5 ms cold warmup, no memory budget
    (gating on once a budget is set). *)

type adaptive = {
  control_interval_us : float;  (** virtual time between control ticks *)
  rebucket : bool;
      (** re-derive the bucket policy as {!Bucket.Edges} at observed
          traffic quantiles ({!Shape_stats.spec}); queued work is
          re-keyed in arrival order when the policy changes *)
  max_edges : int;  (** quantile-placed boundaries per dim *)
  edge_quantum : int;
      (** derived boundaries snap up to a multiple of this (capped at
          the observed max): hysteresis so quantile wobble between ticks
          does not mint fresh cold signatures *)
  decay : float;  (** per-tick multiplicative decay of the shape stats *)
  hint_k : int;
      (** likely values per dim pushed into sessions, and hot
          signatures pre-warmed across replicas, per tick *)
  autoscale : Autoscaler.config option;  (** [None]: fixed pool size *)
  prewarm_us : float;
      (** spin-up delay before a scaled-up replica takes traffic; it is
          pre-warmed on the pool's hot signatures during this window *)
}

val default_adaptive : adaptive
(** 20 ms ticks, rebucketing on with 4 edges snapped to multiples of 4,
    0.9 decay, 4 hints/dim, no autoscaling, 5 ms replica spin-up. *)

(** What the pool does {e about} failure — as opposed to [~failures] /
    [~chaos], which inject it. The default for {!run} is
    {!no_resilience} (every mechanism off), so chaos-free runs behave
    exactly as before; the chaos bench compares {!default_resilience}
    against {!no_resilience} under the same scenario. *)
type resilience = {
  redispatch : bool;
      (** re-queue a crashed replica's in-flight requests (never lost,
          never served twice) *)
  max_redispatch : int;  (** per-request retry budget across crashes *)
  hedge : bool;
      (** duplicate a slow Interactive batch stuck on a [Degraded]
          replica; first result wins, the loser's work is wasted *)
  hedge_after_us : float;  (** batch age before a hedge may launch *)
  watchdog : bool;
      (** flag a replica [Degraded] when its EWMA service rate drifts
          far above the pool's nominal rate; restore on convergence *)
  watchdog_factor : float;
  watchdog_recover : float;
  watchdog_min_batches : int;
  brownout : bool;  (** stepwise degradation ladder under overload *)
  brownout_up_backlog : float;  (** queued-per-replica arming a step up *)
  brownout_down_backlog : float;  (** queued-per-replica arming a step down *)
  brownout_up_hold_us : float;  (** overload must hold this long to step *)
  brownout_down_hold_us : float;  (** calm must hold this long to recover *)
}

val default_resilience : resilience
(** Everything on: redispatch budget 2; hedge Interactive batches after
    10 ms on a Degraded host; watchdog at 2.5× / recover at 1.3× after
    3 batches; brownout arms up at 12 queued/replica (15 ms hold), down
    at 4 (20 ms hold). *)

val no_resilience : resilience
(** Every mechanism off — the ablation baseline, and {!run}'s default. *)

type request = {
  arrival_us : float;
  dims : (string * int) list;  (** per-request dims, excluding the batch dim *)
  cls : Slo.cls;
}

val of_arrivals : ?cls:Slo.cls -> Workloads.Queueing.request list -> request list
(** Tag queueing arrivals with a class (default [Standard]). *)

val with_class_mix :
  seed:int -> (Slo.cls * float) list -> request list -> request list
(** Re-tag each request by sampling the weighted class mix. *)

type disposition =
  | Served  (** completed on the compiled path *)
  | Fell_back  (** completed on the session's reference fallback *)
  | Shed  (** refused at admission: class queue at its bound *)
  | Expired  (** dropped at dispatch: deadline already passed *)
  | Rejected  (** refused at admission: malformed dim set *)
  | Failed  (** the session returned a structured error, or the pool died *)

val disposition_to_string : disposition -> string

type class_report = {
  cr_class : Slo.cls;
  cr_arrivals : int;
  cr_completed : int;
  cr_slo_met : int;  (** completed within the class deadline *)
  cr_shed : int;
  cr_expired : int;
}

type replica_report = {
  rr_id : int;
  rr_device : string;
  rr_health : string;
  rr_batches : int;
  rr_requests : int;
  rr_cold_dispatches : int;
  rr_busy_us : float;
  rr_mem_peak_bytes : int;
      (** high-water estimated batch peak dispatched to this replica *)
  rr_ooms : int;  (** batches lost to budget overrun (memory-blind mode) *)
}

type adaptive_report = {
  ar_ticks : int;
  ar_rebuckets : int;  (** control ticks that changed the bucket policy *)
  ar_minted : int;  (** hot signatures pre-warmed across replicas *)
  ar_hints : int;  (** likely values ingested into replica sessions *)
  ar_scale_ups : int;
  ar_scale_downs : int;
  ar_final_replicas : int;  (** alive when the trace drained *)
  ar_final_spec : string;  (** {!Bucket.spec_to_string} of the final policy *)
  ar_likely : (string * int list) list;  (** last hint set pushed *)
}

val adaptive_summary_to_string : adaptive_report -> string

type resilience_report = {
  xr_crashes : int;  (** chaos [Kill]s delivered to live replicas *)
  xr_recoveries : int;  (** completed [Recovering] -> [Healthy] spin-ups *)
  xr_redispatched : int;  (** requests re-queued off a crashed replica *)
  xr_hedges : int;
  xr_hedge_wins : int;  (** hedge finished before its primary *)
  xr_degraded_events : int;  (** watchdog [Healthy] -> [Degraded] verdicts *)
  xr_brownout_transitions : int;
  xr_brownout_max : int;
  xr_brownout_final : int;  (** ladder level when the run ended — 0 = recovered *)
  xr_brownout_us : float;  (** virtual time spent above level 0 *)
  xr_last_level0_us : float;
      (** when the ladder last returned to level 0 (0 if it never left) —
          with the first fault time, the time-to-recover metric *)
  xr_spike_requests : int;  (** extra arrivals injected by chaos spikes *)
  xr_cache_corruptions : int;  (** cache keys destroyed by chaos *)
}

val resilience_summary_to_string : resilience_report -> string
(** Two lines: chaos counters, then the brownout ladder (the
    [brownout_final=] token is what the CI smoke greps). *)

(** Memory accounting under an HBM budget. Every estimate comes from the
    symbolic estimator evaluated at the batch's dispatch env — the
    {e same} number the admission gate and the replica overrun check
    consult, so a memory-aware pool can never dispatch a batch it would
    then count as an OOM: [mr_oom = 0] in aware mode is structural, not
    statistical. *)
type mem_report = {
  mr_budget_bytes : int;
  mr_est_peak_bytes : int;  (** largest estimated batch peak dispatched *)
  mr_capped : int;
      (** batch members bumped back to the queue front to fit the budget *)
  mr_forced_exact : int;
      (** pad→exact flips because the padded env overran the budget *)
  mr_rejected : int;
      (** single requests whose estimate alone exceeds the budget
          (structurally unservable at this budget; refused, not lost) *)
  mr_oom : int;  (** batches lost to budget overrun — memory-blind mode only *)
  mr_pressure_ticks : int;
      (** adaptive control ticks that read as sustained memory pressure *)
}

val mem_summary_to_string : mem_report -> string
(** One line; the [oom=] token is what the CI memory smoke greps. *)

type report = {
  dispositions : disposition array;  (** per request, arrival order *)
  latencies_us : float array;  (** [nan] for requests that never completed *)
  served : int;
  fell_back : int;
  shed : int;
  expired : int;
  rejected : int;
  failed : int;
  lost : int;  (** requests with no disposition — always 0 *)
  batches : int;
  mean_batch : float;
  padded_batches : int;  (** dispatched at the bucket ceiling *)
  exact_batches : int;  (** dispatched at the intra-batch max *)
  cold_dispatches : int;  (** batches that paid the signature warmup *)
  actual_elements : int;  (** sum of per-request element counts *)
  padded_elements : int;  (** element counts actually executed *)
  makespan_us : float;
  peak_queued : int;
      (** high-water mark of the total queued backlog — the bounded-
          queue-depth invariant {!Audit} checks ([<=] admitted, and
          [<=] the sum of the per-class queue bounds when no re-keying
          is in flight) *)
  time_monotone : bool;
      (** the event loop never stepped virtual time backwards — checked
          at every event, not assumed; {!Audit} requires [true] *)
  classes : class_report list;
  replicas : replica_report list;
  adaptive : adaptive_report option;  (** [Some] iff run with [~adaptive] *)
  resilience : resilience_report;
      (** always present; all-zero unless chaos/resilience engaged *)
  mem : mem_report option;  (** [Some] iff [config.hbm_budget] was set *)
}

val padding_waste : report -> float
val completed_latencies : report -> float array
val percentile : float array -> float -> float
val report_to_string : report -> string

type t

val create :
  ?options:Disc.Compiler.options ->
  ?session_policy:Disc.Session.policy ->
  ?fault_config:Gpusim.Fault.config ->
  ?cache:Disc.Compile_cache.t ->
  config ->
  (unit -> Models.Common.built) ->
  t
(** Builds one session per configured device, all sharing [cache]
    (default: a fresh private cache) — the first replica compiles, the
    rest hit. [fault_config]'s seed is offset per replica so fault
    streams are independent. [build] is called once per replica plus
    once for the binding surface.
    @raise Invalid_argument on an empty device list or a [batch_dim]
    the model does not declare. *)

val replicas : t -> Replica.t array
(** Includes replicas minted by adaptive scale-up. *)

val cache : t -> Disc.Compile_cache.t
val config : t -> config

val shape_stats : t -> Shape_stats.t
(** The online shape-distribution estimator (fed by adaptive runs). *)

val current_bucket : t -> Bucket.spec
(** The live bucket policy — [config.bucket] until an adaptive run
    re-derives it from observed traffic. *)

val run :
  ?failures:(float * int) list ->
  ?adaptive:adaptive ->
  ?chaos:Chaos.scenario ->
  ?resilience:resilience ->
  t ->
  request list ->
  report
(** Simulate the trace. [failures] is a list of [(time_us, replica_id)]
    fault deliveries: at that virtual time the replica begins draining.
    Replica warmth and stats persist across calls (a pool is normally
    run once); the report's counters cover this run only.

    [chaos] replays a {!Chaos.scenario} against the fleet: crashes
    cancel in-flight batches mid-service (members re-queued within the
    [resilience] retry budget, or failed), stragglers scale a replica's
    service time, flaky windows raise a session's fault-injection
    rates, spikes inject extra arrivals (merged with the trace before
    admission), and cache corruption destroys compiled artifacts and
    the warmth derived from them. The whole run is a pure function of
    (trace, scenario, seeds): two runs produce identical dispositions.

    [resilience] (default {!no_resilience}) controls the response:
    crash re-dispatch, hedged duplicates for Interactive batches stuck
    on Degraded replicas (first result wins — never lost, never
    double-counted), the EWMA straggler watchdog, and the brownout
    ladder (L1 shed Best_effort, L2 halve the padding cap, L3 halve
    the batch cap, L4 widen buckets; hysteretic in both directions).
    With everything off, chaos-free runs are bit-identical to the
    pre-resilience pool.

    With [~adaptive], a control tick fires every [control_interval_us]
    of virtual time: shape stats decay; the bucket policy is re-derived
    from observed mass (queued work re-keyed, nothing dropped);
    likely-value hints flow into every alive session
    ({!Disc.Session.ingest_hints}); replicas pre-warm on the pool's
    hottest signatures (their artifacts already live in the shared
    cache); and, when [autoscale] is set, the {!Autoscaler} may mint a
    pre-warmed replica or begin draining the youngest one. Scale events
    never lose work: a draining replica finishes its in-flight batch
    and queued traffic re-routes ([lost = 0] holds throughout). *)
