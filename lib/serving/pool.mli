(** The multi-replica serving pool: a discrete-event simulation (virtual
    time, µs) of N {!Disc.Session} replicas over heterogeneous devices,
    sharing one {!Disc.Compile_cache}, behind a shape-aware batcher, an
    SLO-aware admission controller, and a warmth-aware router.

    Request flow: {e admission} (malformed dims rejected; a class at its
    queue bound sheds) → {e bucket queues} ({!Bucket.key_of} of the
    request dims) → {e batching} (a bucket launches when full, when its
    oldest request has waited [max_wait_us], or when the trace is
    drained; expired requests are dropped at dispatch) → {e pad-vs-exact}
    (measured cost model: the padded env repeats across batches and so
    runs warm, the exact env wastes fewer elements but rarely repeats)
    → {e routing} ({!Router}) → {e service} ({!Disc.Session.serve_result},
    plus a one-off warmup the first time a replica sees a signature).

    Replica failure ([~failures]) drains: the in-flight batch completes,
    the replica takes no further work, queued traffic re-routes to the
    survivors. Every request ends in exactly one disposition
    ([lost = 0] is an invariant the tests pin). *)

type config = {
  devices : Gpusim.Device.t list;  (** one replica per device *)
  batch_dim : string;
  max_batch : int;
  max_wait_us : float;  (** max delay past a bucket's oldest request *)
  bucket : Bucket.spec;
  slo : Slo.policy;
  router : Router.policy;
  max_pad_waste : float;
      (** hard cap: above this padding fraction, dispatch exact-shape *)
  cold_warmup_us : float;
      (** one-off cost the first time a replica executes a signature *)
}

val default_config :
  devices:Gpusim.Device.t list -> batch_dim:string -> bucket:Bucket.spec -> config
(** max_batch 8, max_wait 2 ms, default SLO policy, warmth-aware
    routing, 50 % padding cap, 1.5 ms cold warmup. *)

type request = {
  arrival_us : float;
  dims : (string * int) list;  (** per-request dims, excluding the batch dim *)
  cls : Slo.cls;
}

val of_arrivals : ?cls:Slo.cls -> Workloads.Queueing.request list -> request list
(** Tag queueing arrivals with a class (default [Standard]). *)

val with_class_mix :
  seed:int -> (Slo.cls * float) list -> request list -> request list
(** Re-tag each request by sampling the weighted class mix. *)

type disposition =
  | Served  (** completed on the compiled path *)
  | Fell_back  (** completed on the session's reference fallback *)
  | Shed  (** refused at admission: class queue at its bound *)
  | Expired  (** dropped at dispatch: deadline already passed *)
  | Rejected  (** refused at admission: malformed dim set *)
  | Failed  (** the session returned a structured error, or the pool died *)

val disposition_to_string : disposition -> string

type class_report = {
  cr_class : Slo.cls;
  cr_arrivals : int;
  cr_completed : int;
  cr_slo_met : int;  (** completed within the class deadline *)
  cr_shed : int;
  cr_expired : int;
}

type replica_report = {
  rr_id : int;
  rr_device : string;
  rr_health : string;
  rr_batches : int;
  rr_requests : int;
  rr_cold_dispatches : int;
  rr_busy_us : float;
}

type report = {
  dispositions : disposition array;  (** per request, arrival order *)
  latencies_us : float array;  (** [nan] for requests that never completed *)
  served : int;
  fell_back : int;
  shed : int;
  expired : int;
  rejected : int;
  failed : int;
  lost : int;  (** requests with no disposition — always 0 *)
  batches : int;
  mean_batch : float;
  padded_batches : int;  (** dispatched at the bucket ceiling *)
  exact_batches : int;  (** dispatched at the intra-batch max *)
  cold_dispatches : int;  (** batches that paid the signature warmup *)
  actual_elements : int;  (** sum of per-request element counts *)
  padded_elements : int;  (** element counts actually executed *)
  makespan_us : float;
  classes : class_report list;
  replicas : replica_report list;
}

val padding_waste : report -> float
val completed_latencies : report -> float array
val percentile : float array -> float -> float
val report_to_string : report -> string

type t

val create :
  ?options:Disc.Compiler.options ->
  ?session_policy:Disc.Session.policy ->
  ?fault_config:Gpusim.Fault.config ->
  ?cache:Disc.Compile_cache.t ->
  config ->
  (unit -> Models.Common.built) ->
  t
(** Builds one session per configured device, all sharing [cache]
    (default: a fresh private cache) — the first replica compiles, the
    rest hit. [fault_config]'s seed is offset per replica so fault
    streams are independent. [build] is called once per replica plus
    once for the binding surface.
    @raise Invalid_argument on an empty device list or a [batch_dim]
    the model does not declare. *)

val replicas : t -> Replica.t array
val cache : t -> Disc.Compile_cache.t
val config : t -> config

val run : ?failures:(float * int) list -> t -> request list -> report
(** Simulate the trace. [failures] is a list of [(time_us, replica_id)]
    fault deliveries: at that virtual time the replica begins draining.
    Replica warmth and stats persist across calls (a pool is normally
    run once); the report's counters cover this run only. *)
