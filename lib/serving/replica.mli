(** One serving replica: a {!Disc.Session} pinned to a simulated device,
    plus the pool-visible state the router scores — health, backlog,
    shape warmth, and a measured per-element service rate.

    Warmth is per shape signature ({!Bucket.env_key} of the dispatched
    batch env): the first time a replica executes a signature it pays a
    one-off warmup (memory re-planning, allocator first-touch, kernel
    selection); later batches at the same signature are warm. The
    rate EWMA feeds the batcher's pad-vs-exact cost model.

    Health lifecycle:
    {v
              degrade                 begin_drain
      Healthy <-------> Degraded ----------+
         ^    restore      |               v
         |                 | crash      Draining --(batch done)--> Dead
         |                 v               ^                        |
         +---- finish_recover_if_due       | crash    begin_recover |
         |                                 |                        v
         +------------(spinup done)---------------------------- Recovering
    v} *)

type health =
  | Healthy  (** taking traffic *)
  | Degraded
      (** straggling: routed around (only picked when no Healthy
          replica is free) but still serving — counts as capacity *)
  | Draining  (** failing: finishes its in-flight batch, takes no new work *)
  | Recovering
      (** restarting after a crash: spinning up, dispatches resume once
          [free_at] passes — counts as capacity *)
  | Dead  (** crashed or drained; never dispatched to again *)

val health_to_string : health -> string

type t = {
  id : int;
  session : Disc.Session.t;
  device : Gpusim.Device.t;
  mutable free_at : float;  (** virtual time the in-flight batch completes *)
  mutable health : health;
  warmth : (string, int) Hashtbl.t;  (** env key -> batches served *)
  mutable us_per_element : float;  (** EWMA service rate; 0 = unmeasured *)
  mutable slow_factor : float;
      (** chaos straggler multiplier on service time; 1.0 = nominal *)
  mutable batches : int;
  mutable requests : int;
  mutable cold_dispatches : int;
  mutable busy_us : float;  (** total service time accumulated *)
  mutable crashes : int;
  mutable recoveries : int;  (** completed [Recovering] -> [Healthy] spin-ups *)
  mutable hbm_budget : int option;
      (** device-memory budget (bytes) the pool enforces; [None] = unbudgeted *)
  mutable mem_last_bytes : int;
      (** estimated peak of the most recently dispatched batch *)
  mutable mem_peak_bytes : int;  (** high-water estimated batch peak *)
  mutable ooms : int;  (** batches lost to budget overrun (memory-blind mode) *)
}

val create : id:int -> Disc.Session.t -> t
(** The device is taken from the session. *)

val mem_headroom : t -> float
(** Fraction of [hbm_budget] left after the most recent batch's
    estimated footprint ([1.0] when unbudgeted or never dispatched to).
    The router's memory-headroom term: replicas that just held a
    memory-hot signature score lower, spreading big-footprint batches
    across the fleet. *)

val alive : t -> bool
(** [Healthy] or [Degraded] — serving traffic. *)

val dispatchable : t -> bool
(** Synonym of {!alive}: may receive new batches. *)

val counts_capacity : t -> bool
(** [Healthy], [Degraded] or [Recovering] — counted as fleet capacity
    by the autoscaler. A Degraded replica is slow, not absent; a
    Recovering one is seconds from serving. Counting either out would
    make the autoscaler double-compensate for load the router has
    already shifted. *)

val is_free : t -> now:float -> bool
(** Dispatchable and idle at [now]. *)

val is_warm : t -> string -> bool
(** Has this replica served the shape signature before? *)

val estimate_us : t -> elements:int -> float option
(** Predicted service time from the measured rate ([None] before the
    first batch). *)

val note_batch :
  t ->
  key:string ->
  elements:int ->
  service_us:float ->
  ?rate_us:float ->
  requests:int ->
  cold:bool ->
  unit ->
  unit
(** Record a completed batch: warmth, EWMA rate, and dispatch counters.
    [service_us] (busy-time accounting) may include one-off warmup;
    [rate_us] (default [service_us]) is the basis for the rate EWMA and
    should be the warm steady-state cost, so replicas that happened to
    pay more cold dispatches don't read as stragglers. *)

val prewarm : t -> string list -> int
(** Seed warmth for shape signatures whose artifacts already live in
    the shared compile cache (adaptive minting, scale-up pre-warm,
    post-recovery re-warm). Returns how many signatures were newly
    warmed; already-warm keys are untouched, so earned dispatch counts
    survive. *)

val begin_drain : t -> now:float -> unit
(** Fault delivery: stop taking work. If idle, the replica dies
    immediately; if busy, it dies when the in-flight batch completes
    (nothing in flight is lost). *)

val finish_drain_if_due : t -> now:float -> unit
(** Transition [Draining] -> [Dead] once the in-flight batch is done. *)

val crash : t -> now:float -> unit
(** Hard crash (chaos): immediately [Dead] and idle. Unlike
    {!begin_drain} the in-flight batch does {e not} finish — the pool
    must re-dispatch its members. No-op on an already-Dead replica. *)

val begin_recover : t -> now:float -> spinup_us:float -> unit
(** Restart a [Dead] replica: [Recovering], empty warmth, rate and
    straggle reset, busy until [now + spinup_us]. No-op unless Dead.
    @raise Invalid_argument if [spinup_us] is negative. *)

val finish_recover_if_due : t -> now:float -> unit
(** Transition [Recovering] -> [Healthy] once the spin-up completes. *)

val degrade : t -> unit
(** Watchdog verdict: [Healthy] -> [Degraded]. No-op otherwise. *)

val restore : t -> unit
(** Watchdog all-clear: [Degraded] -> [Healthy]. No-op otherwise. *)
