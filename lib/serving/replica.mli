(** One serving replica: a {!Disc.Session} pinned to a simulated device,
    plus the pool-visible state the router scores — health, backlog,
    shape warmth, and a measured per-element service rate.

    Warmth is per shape signature ({!Bucket.env_key} of the dispatched
    batch env): the first time a replica executes a signature it pays a
    one-off warmup (memory re-planning, allocator first-touch, kernel
    selection); later batches at the same signature are warm. The
    rate EWMA feeds the batcher's pad-vs-exact cost model. *)

type health =
  | Healthy  (** taking traffic *)
  | Draining  (** failing: finishes its in-flight batch, takes no new work *)
  | Dead  (** drained; never dispatched to again *)

val health_to_string : health -> string

type t = {
  id : int;
  session : Disc.Session.t;
  device : Gpusim.Device.t;
  mutable free_at : float;  (** virtual time the in-flight batch completes *)
  mutable health : health;
  warmth : (string, int) Hashtbl.t;  (** env key -> batches served *)
  mutable us_per_element : float;  (** EWMA service rate; 0 = unmeasured *)
  mutable batches : int;
  mutable requests : int;
  mutable cold_dispatches : int;
  mutable busy_us : float;  (** total service time accumulated *)
}

val create : id:int -> Disc.Session.t -> t
(** The device is taken from the session. *)

val alive : t -> bool
(** [Healthy] — dispatchable. *)

val is_free : t -> now:float -> bool
(** Healthy and idle at [now]. *)

val is_warm : t -> string -> bool
(** Has this replica served the shape signature before? *)

val estimate_us : t -> elements:int -> float option
(** Predicted service time from the measured rate ([None] before the
    first batch). *)

val note_batch :
  t -> key:string -> elements:int -> service_us:float -> requests:int -> cold:bool -> unit
(** Record a completed batch: warmth, EWMA rate (over the warm portion
    of the service time), and dispatch counters. *)

val prewarm : t -> string list -> int
(** Seed warmth for shape signatures whose artifacts already live in
    the shared compile cache (adaptive minting, scale-up pre-warm).
    Returns how many signatures were newly warmed; already-warm keys
    are untouched, so earned dispatch counts survive. *)

val begin_drain : t -> now:float -> unit
(** Fault delivery: stop taking work. If idle, the replica dies
    immediately; if busy, it dies when the in-flight batch completes
    (nothing in flight is lost). *)

val finish_drain_if_due : t -> now:float -> unit
(** Transition [Draining] -> [Dead] once the in-flight batch is done. *)
