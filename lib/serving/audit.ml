(* Reusable invariant checker over a pool report.

   The scale harness (bench scale, test_scale, the pool fuzzer) runs
   every report through [check]: the invariants are the things that must
   hold for *any* trace, policy, chaos scenario, or resilience setting —
   conservation of requests, agreement between the scalar counters and
   the per-request disposition array, latency/disposition coherence,
   batching arithmetic, per-class accounting, and the event-loop
   self-checks the pool now exports (peak_queued, time_monotone). *)

type violation = string

let checkf acc cond fmt =
  if cond then Printf.ikfprintf (fun _ -> acc) () fmt
  else Printf.ksprintf (fun s -> s :: acc) fmt

let check (r : Pool.report) : violation list =
  let n = Array.length r.Pool.dispositions in
  (* recount the disposition array; scalars must agree exactly *)
  let c_served = ref 0
  and c_fell = ref 0
  and c_shed = ref 0
  and c_exp = ref 0
  and c_rej = ref 0
  and c_fail = ref 0 in
  Array.iter
    (fun d ->
      match d with
      | Pool.Served -> incr c_served
      | Pool.Fell_back -> incr c_fell
      | Pool.Shed -> incr c_shed
      | Pool.Expired -> incr c_exp
      | Pool.Rejected -> incr c_rej
      | Pool.Failed -> incr c_fail)
    r.Pool.dispositions;
  let acc = [] in
  (* conservation: every request ends in exactly one disposition *)
  let sum =
    r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
    + r.Pool.failed
  in
  let acc =
    checkf acc (sum = n) "conservation: served+fell_back+shed+expired+rejected+failed = %d, expected %d arrivals" sum n
  in
  let acc = checkf acc (r.Pool.lost = 0) "lost requests: %d (must be 0)" r.Pool.lost in
  let acc =
    checkf acc
      (!c_served = r.Pool.served)
      "served counter %d disagrees with disposition array %d" r.Pool.served !c_served
  in
  let acc =
    checkf acc
      (!c_fell = r.Pool.fell_back)
      "fell_back counter %d disagrees with disposition array %d" r.Pool.fell_back !c_fell
  in
  let acc =
    checkf acc (!c_shed = r.Pool.shed) "shed counter %d disagrees with disposition array %d"
      r.Pool.shed !c_shed
  in
  let acc =
    checkf acc (!c_exp = r.Pool.expired)
      "expired counter %d disagrees with disposition array %d" r.Pool.expired !c_exp
  in
  let acc =
    checkf acc (!c_rej = r.Pool.rejected)
      "rejected counter %d disagrees with disposition array %d" r.Pool.rejected !c_rej
  in
  (* the scalar [failed] folds in [lost]; the array codes lost as Failed *)
  let acc =
    checkf acc
      (!c_fail = r.Pool.failed)
      "failed counter %d disagrees with disposition array %d" r.Pool.failed !c_fail
  in
  (* latency/disposition coherence: finite nonnegative iff completed *)
  let lat_bad = ref 0 in
  Array.iteri
    (fun i d ->
      let l = r.Pool.latencies_us.(i) in
      match d with
      | Pool.Served | Pool.Fell_back ->
          if not (Float.is_finite l) || l < 0.0 then incr lat_bad
      | _ -> if not (Float.is_nan l) then incr lat_bad)
    r.Pool.dispositions;
  let acc =
    checkf acc (!lat_bad = 0)
      "%d requests with incoherent latency/disposition (finite nonnegative iff completed)"
      !lat_bad
  in
  (* batching arithmetic *)
  let acc =
    checkf acc
      (r.Pool.padded_batches + r.Pool.exact_batches = r.Pool.batches)
      "padded(%d) + exact(%d) batches <> total %d" r.Pool.padded_batches
      r.Pool.exact_batches r.Pool.batches
  in
  let completed = r.Pool.served + r.Pool.fell_back in
  let batched =
    int_of_float (Float.round (r.Pool.mean_batch *. float_of_int r.Pool.batches))
  in
  (* hedges duplicate members, crashes relaunch them: batched >= completed *)
  let acc =
    checkf acc (batched >= completed)
      "batched member count %d < completed %d (members can only be over-launched)" batched
      completed
  in
  let acc =
    checkf acc
      (r.Pool.actual_elements >= 0 && r.Pool.padded_elements >= r.Pool.actual_elements)
      "element accounting: padded %d < actual %d" r.Pool.padded_elements
      r.Pool.actual_elements
  in
  let acc =
    checkf acc
      (r.Pool.cold_dispatches <= r.Pool.batches)
      "cold dispatches %d > batches %d" r.Pool.cold_dispatches r.Pool.batches
  in
  (* per-class accounting sums back to the pool totals *)
  let sum_by f = List.fold_left (fun a c -> a + f c) 0 r.Pool.classes in
  let acc =
    checkf acc
      (sum_by (fun c -> c.Pool.cr_arrivals) = n)
      "class arrivals sum %d <> %d"
      (sum_by (fun c -> c.Pool.cr_arrivals))
      n
  in
  let acc =
    checkf acc
      (sum_by (fun c -> c.Pool.cr_completed) = completed)
      "class completed sum %d <> served+fell_back %d"
      (sum_by (fun c -> c.Pool.cr_completed))
      completed
  in
  let acc =
    checkf acc
      (sum_by (fun c -> c.Pool.cr_shed) = r.Pool.shed)
      "class shed sum %d <> %d"
      (sum_by (fun c -> c.Pool.cr_shed))
      r.Pool.shed
  in
  let acc =
    checkf acc
      (sum_by (fun c -> c.Pool.cr_expired) = r.Pool.expired)
      "class expired sum %d <> %d"
      (sum_by (fun c -> c.Pool.cr_expired))
      r.Pool.expired
  in
  let acc =
    List.fold_left
      (fun acc c ->
        checkf acc
          (c.Pool.cr_slo_met <= c.Pool.cr_completed)
          "class %s: slo_met %d > completed %d"
          (Slo.cls_to_string c.Pool.cr_class)
          c.Pool.cr_slo_met c.Pool.cr_completed)
      acc r.Pool.classes
  in
  (* replica accounting: every completed member was launched somewhere *)
  let rr_requests =
    List.fold_left (fun a rr -> a + rr.Pool.rr_requests) 0 r.Pool.replicas
  in
  let acc =
    checkf acc (rr_requests >= completed)
      "replica request sum %d < completed %d" rr_requests completed
  in
  (* event-loop self-checks *)
  let acc =
    checkf acc
      (r.Pool.peak_queued >= 0 && r.Pool.peak_queued <= n)
      "peak_queued %d outside [0, %d]" r.Pool.peak_queued n
  in
  let acc =
    checkf acc r.Pool.time_monotone "virtual time stepped backwards during the run"
  in
  let acc = checkf acc (r.Pool.makespan_us >= 0.0) "negative makespan" in
  List.rev acc

let to_string = function
  | [] -> "audit: ok"
  | vs ->
      String.concat "\n" (List.map (fun v -> "audit violation: " ^ v) vs)

exception Violations of violation list

let check_exn r =
  match check r with [] -> () | vs -> raise (Violations vs)

let () =
  Printexc.register_printer (function
    | Violations vs -> Some (to_string vs)
    | _ -> None)
