(** Reusable invariant checker over a {!Pool.report}.

    The invariants are trace-, policy-, and chaos-independent — they
    must hold for {e any} pool run:

    - {e conservation}: every arrival ends in exactly one disposition
      ([served + fell_back + shed + expired + rejected + failed] equals
      the arrival count) and [lost = 0];
    - the scalar counters agree exactly with a recount of the
      per-request disposition array;
    - {e latency coherence}: a latency is finite and nonnegative iff
      the request completed ([Served] / [Fell_back]), [nan] otherwise;
    - {e batching arithmetic}: [padded + exact = batches], launched
      member count [>=] completed (hedges and crash re-dispatch can
      over-launch, never under-), [padded_elements >= actual_elements],
      [cold_dispatches <= batches];
    - {e per-class accounting} sums back to the pool totals, and no
      class meets more SLOs than it completed;
    - {e replica accounting}: members launched across replicas [>=]
      completed;
    - the event loop's self-checks: [peak_queued] within [0, n] and
      [time_monotone = true].

    The scale bench, the scale tests, and the pool fuzzer run every
    report through {!check}; CI greps for the [audit: ok] line. *)

type violation = string

val check : Pool.report -> violation list
(** Empty iff every invariant holds; otherwise one message per broken
    invariant, in check order. *)

val to_string : violation list -> string
(** ["audit: ok"] for the empty list, else one line per violation. *)

exception Violations of violation list

val check_exn : Pool.report -> unit
(** @raise Violations if any invariant is broken. *)
