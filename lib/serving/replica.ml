(* Replica state the pool schedules over. *)

type health = Healthy | Degraded | Draining | Recovering | Dead

let health_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Draining -> "draining"
  | Recovering -> "recovering"
  | Dead -> "dead"

type t = {
  id : int;
  session : Disc.Session.t;
  device : Gpusim.Device.t;
  mutable free_at : float;
  mutable health : health;
  warmth : (string, int) Hashtbl.t;
  mutable us_per_element : float;
  mutable slow_factor : float;
  mutable batches : int;
  mutable requests : int;
  mutable cold_dispatches : int;
  mutable busy_us : float;
  mutable crashes : int;
  mutable recoveries : int;
  mutable hbm_budget : int option;
  mutable mem_last_bytes : int;
  mutable mem_peak_bytes : int;
  mutable ooms : int;
}

let create ~id session =
  {
    id;
    session;
    device = Disc.Session.device session;
    free_at = 0.0;
    health = Healthy;
    warmth = Hashtbl.create 32;
    us_per_element = 0.0;
    slow_factor = 1.0;
    batches = 0;
    requests = 0;
    cold_dispatches = 0;
    busy_us = 0.0;
    crashes = 0;
    recoveries = 0;
    hbm_budget = None;
    mem_last_bytes = 0;
    mem_peak_bytes = 0;
    ooms = 0;
  }

(* Fraction of the HBM budget left after the most recent batch's
   estimated footprint — the router's memory-headroom signal. 1.0 when
   unbudgeted or never dispatched to. *)
let mem_headroom t =
  match t.hbm_budget with
  | Some b when b > 0 ->
      float_of_int (b - min t.mem_last_bytes b) /. float_of_int b
  | _ -> 1.0

(* Degraded replicas still take traffic (the router just deprioritizes
   them), so for every purpose except routing preference they are as
   alive as Healthy ones: warmth upkeep, hint ingestion, prewarming. *)
let alive t = match t.health with Healthy | Degraded -> true | _ -> false

let dispatchable = alive

(* Capacity accounting for the autoscaler: a Degraded replica is slow,
   not absent — counting it out would double-provision (the autoscaler
   would add a replica *and* the router already shifts load). Recovering
   replicas count too: capacity that is seconds away must not trigger
   another scale-up. Only Draining/Dead are real capacity loss. *)
let counts_capacity t =
  match t.health with Healthy | Degraded | Recovering -> true | Draining | Dead -> false

let is_free t ~now = dispatchable t && t.free_at <= now
let is_warm t key = Hashtbl.mem t.warmth key

let estimate_us t ~elements =
  if t.us_per_element <= 0.0 then None
  else Some (t.us_per_element *. float_of_int elements)

let ewma_alpha = 0.3

let note_batch t ~key ~elements ~service_us ?rate_us ~requests ~cold () =
  Hashtbl.replace t.warmth key (1 + Option.value (Hashtbl.find_opt t.warmth key) ~default:0);
  t.batches <- t.batches + 1;
  t.requests <- t.requests + requests;
  if cold then t.cold_dispatches <- t.cold_dispatches + 1;
  t.busy_us <- t.busy_us +. service_us;
  (* the rate EWMA tracks the warm (steady-state) cost: one-off warmup
     spikes would make replicas that happened to pay more cold
     dispatches look like stragglers to the watchdog *)
  let basis = Option.value rate_us ~default:service_us in
  if elements > 0 then begin
    let rate = basis /. float_of_int elements in
    t.us_per_element <-
      (if t.us_per_element <= 0.0 then rate
       else (ewma_alpha *. rate) +. ((1.0 -. ewma_alpha) *. t.us_per_element))
  end

(* Seed warmth without dispatch counters: the signature's artifact
   already exists in the shared compile cache, so warming is a cache
   replay, not a served batch. Count 0 distinguishes minted warmth from
   earned warmth in the warmth table. *)
let prewarm t keys =
  List.fold_left
    (fun minted key ->
      if Hashtbl.mem t.warmth key then minted
      else begin
        Hashtbl.replace t.warmth key 0;
        minted + 1
      end)
    0 keys

let begin_drain t ~now =
  match t.health with
  | Dead -> ()
  | Healthy | Degraded | Draining | Recovering ->
      t.health <- (if t.free_at <= now then Dead else Draining);
      if Obs.Scope.on () then
        Obs.Scope.count (Printf.sprintf "pool.replica%d.drain" t.id)

let finish_drain_if_due t ~now =
  if t.health = Draining && t.free_at <= now then t.health <- Dead

(* Hard crash: unlike a drain, the in-flight batch does NOT finish —
   the pool owns re-dispatching its members. The replica is immediately
   Dead and idle (free_at pulled back so nothing waits on it). *)
let crash t ~now =
  if t.health <> Dead then begin
    t.health <- Dead;
    t.free_at <- now;
    t.crashes <- t.crashes + 1;
    if Obs.Scope.on () then
      Obs.Scope.count (Printf.sprintf "pool.replica%d.crash" t.id)
  end

(* Restart after a crash: the process comes back empty — no warmth, no
   measured rate, no residual straggle — and spends [spinup_us] loading
   before it can take traffic. The pool re-warms it from the shared
   compile cache once it is up. *)
let begin_recover t ~now ~spinup_us =
  if t.health = Dead then begin
    if spinup_us < 0.0 then invalid_arg "Replica.begin_recover: spinup_us < 0";
    t.health <- Recovering;
    Hashtbl.reset t.warmth;
    t.us_per_element <- 0.0;
    t.slow_factor <- 1.0;
    t.free_at <- now +. spinup_us;
    if Obs.Scope.on () then
      Obs.Scope.count (Printf.sprintf "pool.replica%d.recover" t.id)
  end

let finish_recover_if_due t ~now =
  if t.health = Recovering && t.free_at <= now then begin
    t.health <- Healthy;
    t.recoveries <- t.recoveries + 1
  end

(* Watchdog verdicts. Degraded <-> Healthy only: a replica that crashed
   or is draining keeps its terminal state. *)
let degrade t =
  if t.health = Healthy then begin
    t.health <- Degraded;
    if Obs.Scope.on () then
      Obs.Scope.count (Printf.sprintf "pool.replica%d.degraded" t.id)
  end

let restore t = if t.health = Degraded then t.health <- Healthy
