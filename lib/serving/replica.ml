(* Replica state the pool schedules over. *)

type health = Healthy | Draining | Dead

let health_to_string = function
  | Healthy -> "healthy"
  | Draining -> "draining"
  | Dead -> "dead"

type t = {
  id : int;
  session : Disc.Session.t;
  device : Gpusim.Device.t;
  mutable free_at : float;
  mutable health : health;
  warmth : (string, int) Hashtbl.t;
  mutable us_per_element : float;
  mutable batches : int;
  mutable requests : int;
  mutable cold_dispatches : int;
  mutable busy_us : float;
}

let create ~id session =
  {
    id;
    session;
    device = Disc.Session.device session;
    free_at = 0.0;
    health = Healthy;
    warmth = Hashtbl.create 32;
    us_per_element = 0.0;
    batches = 0;
    requests = 0;
    cold_dispatches = 0;
    busy_us = 0.0;
  }

let alive t = t.health = Healthy
let is_free t ~now = t.health = Healthy && t.free_at <= now
let is_warm t key = Hashtbl.mem t.warmth key

let estimate_us t ~elements =
  if t.us_per_element <= 0.0 then None
  else Some (t.us_per_element *. float_of_int elements)

let ewma_alpha = 0.3

let note_batch t ~key ~elements ~service_us ~requests ~cold =
  Hashtbl.replace t.warmth key (1 + Option.value (Hashtbl.find_opt t.warmth key) ~default:0);
  t.batches <- t.batches + 1;
  t.requests <- t.requests + requests;
  if cold then t.cold_dispatches <- t.cold_dispatches + 1;
  t.busy_us <- t.busy_us +. service_us;
  if elements > 0 then begin
    let rate = service_us /. float_of_int elements in
    t.us_per_element <-
      (if t.us_per_element <= 0.0 then rate
       else (ewma_alpha *. rate) +. ((1.0 -. ewma_alpha) *. t.us_per_element))
  end

(* Seed warmth without dispatch counters: the signature's artifact
   already exists in the shared compile cache, so warming is a cache
   replay, not a served batch. Count 0 distinguishes minted warmth from
   earned warmth in the warmth table. *)
let prewarm t keys =
  List.fold_left
    (fun minted key ->
      if Hashtbl.mem t.warmth key then minted
      else begin
        Hashtbl.replace t.warmth key 0;
        minted + 1
      end)
    0 keys

let begin_drain t ~now =
  match t.health with
  | Dead -> ()
  | Healthy | Draining ->
      t.health <- (if t.free_at <= now then Dead else Draining);
      if Obs.Scope.on () then
        Obs.Scope.count (Printf.sprintf "pool.replica%d.drain" t.id)

let finish_drain_if_due t ~now =
  if t.health = Draining && t.free_at <= now then t.health <- Dead
