(* SLO classes + per-class admission control. *)

type cls = Interactive | Standard | Best_effort

let cls_to_string = function
  | Interactive -> "interactive"
  | Standard -> "standard"
  | Best_effort -> "best_effort"

let cls_of_string = function
  | "interactive" -> Some Interactive
  | "standard" -> Some Standard
  | "best_effort" | "best-effort" -> Some Best_effort
  | _ -> None

let all_classes = [ Interactive; Standard; Best_effort ]

type target = { deadline_us : float; priority : int; queue_bound : int }

type policy = (cls * target) list

let default_policy =
  [
    (Interactive, { deadline_us = 50_000.0; priority = 2; queue_bound = 64 });
    (Standard, { deadline_us = 200_000.0; priority = 1; queue_bound = 256 });
    (Best_effort, { deadline_us = Float.infinity; priority = 0; queue_bound = 1024 });
  ]

let target_of policy cls =
  match List.assoc_opt cls policy with
  | Some t -> t
  | None -> List.assoc cls default_policy

let deadline_of policy cls ~arrival_us = arrival_us +. (target_of policy cls).deadline_us

(* Token-phase targets for autoregressive decoding: the request-level
   deadline above doesn't fit a stream of tokens, so the decode
   subsystem judges TTFT (arrival -> first token, the prefill phase)
   and TPOT (gap between consecutive tokens, the decode phase)
   separately per class. *)
type decode_target = { ttft_us : float; tpot_us : float }

type decode_policy = (cls * decode_target) list

let default_decode_policy =
  [
    (Interactive, { ttft_us = 150_000.0; tpot_us = 40_000.0 });
    (Standard, { ttft_us = 500_000.0; tpot_us = 100_000.0 });
    (Best_effort, { ttft_us = Float.infinity; tpot_us = Float.infinity });
  ]

let decode_target_of policy cls =
  match List.assoc_opt cls policy with
  | Some t -> t
  | None -> List.assoc cls default_decode_policy

(* Controller state: one backlog counter and shed/expired tallies per
   class. Index by a fixed class order so state is flat arrays. *)
let idx = function Interactive -> 0 | Standard -> 1 | Best_effort -> 2

type t = {
  p : policy;
  queued_a : int array;
  shed_a : int array;
  expired_a : int array;
}

let create p = { p; queued_a = Array.make 3 0; shed_a = Array.make 3 0; expired_a = Array.make 3 0 }

let policy t = t.p

(* Metric names precomputed per class: sheds and expiries are hot under
   overload, and a Printf per event would dominate the admission path. *)
let shed_name = [| "pool.shed.interactive"; "pool.shed.standard"; "pool.shed.best_effort" |]

let expired_name =
  [| "pool.expired.interactive"; "pool.expired.standard"; "pool.expired.best_effort" |]

let note_shed t cls =
  let i = idx cls in
  t.shed_a.(i) <- t.shed_a.(i) + 1;
  if Obs.Scope.on () then Obs.Scope.count shed_name.(i)

let admit t cls =
  let i = idx cls in
  if t.queued_a.(i) >= (target_of t.p cls).queue_bound then begin
    note_shed t cls;
    false
  end
  else begin
    t.queued_a.(i) <- t.queued_a.(i) + 1;
    true
  end

(* Crash re-dispatch path: a request that was already dequeued for a
   batch goes back in the queue. No admission check — it was admitted
   once and must not be sheddable on the way back. *)
let requeue t cls =
  let i = idx cls in
  t.queued_a.(i) <- t.queued_a.(i) + 1

let dequeue t cls =
  let i = idx cls in
  t.queued_a.(i) <- max 0 (t.queued_a.(i) - 1)

let note_expired t cls =
  let i = idx cls in
  t.expired_a.(i) <- t.expired_a.(i) + 1;
  if Obs.Scope.on () then Obs.Scope.count expired_name.(i)

let queued t cls = t.queued_a.(idx cls)
let shed t cls = t.shed_a.(idx cls)
let expired t cls = t.expired_a.(idx cls)
