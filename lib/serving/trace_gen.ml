(* Seeded, deterministic traffic-trace generator for the scale harness.

   Traces are produced by a single SplitMix64 stream walked in time
   order, so they are reproducible from (spec, seed) alone and
   prefix-stable: generating [n + k] requests never changes the first
   [n] (the stream is only ever consumed forward, one candidate arrival
   at a time). Arrival processes are nonhomogeneous Poisson, realized by
   thinning against the segment's peak rate; the instantaneous rate
   composes a diurnal sinusoid with a Markov-modulated on/off burst
   state. Shape drift is expressed as consecutive segments with
   different dim distributions — segments cycle, so a spec describes an
   endless traffic pattern and [generate] takes a prefix of it.

   Traces compose with the chaos layer untouched: feed the generated
   requests to {!Pool.run} alongside a [~chaos] scenario and the pool
   merges spike arrivals with the organic trace as before. *)

module T = Workloads.Trace

type burst = {
  mult : float; (* rate multiplier while the burst is on *)
  mean_on_us : float;
  mean_off_us : float;
}

type segment = {
  duration_us : float;
  qps : float; (* base rate, requests per second *)
  diurnal : float; (* sinusoid amplitude, 0 <= a < 1 *)
  period_us : float; (* diurnal period *)
  burst : burst option;
  dims : (string * T.distribution) list;
  mix : (Slo.cls * float) list;
}

type spec = { seed : int; segments : segment list }

let default_mix =
  [ (Slo.Interactive, 0.25); (Slo.Standard, 0.5); (Slo.Best_effort, 0.25) ]

let validate (s : spec) : (unit, string) result =
  let seg_err i msg = Error (Printf.sprintf "segment %d: %s" i msg) in
  if s.segments = [] then Error "spec has no segments"
  else
    let rec go i = function
      | [] -> Ok ()
      | seg :: rest ->
          if seg.duration_us <= 0.0 then seg_err i "duration_us must be > 0"
          else if seg.qps <= 0.0 then seg_err i "qps must be > 0"
          else if seg.diurnal < 0.0 || seg.diurnal >= 1.0 then
            seg_err i "diurnal amplitude must be in [0, 1)"
          else if seg.diurnal > 0.0 && seg.period_us <= 0.0 then
            seg_err i "period_us must be > 0 when diurnal > 0"
          else if seg.dims = [] then seg_err i "dims must be non-empty"
          else if seg.mix = [] then seg_err i "mix must be non-empty"
          else if List.exists (fun (_, w) -> w < 0.0) seg.mix then
            seg_err i "mix weights must be >= 0"
          else if List.fold_left (fun a (_, w) -> a +. w) 0.0 seg.mix <= 0.0 then
            seg_err i "mix weights must not all be 0"
          else
            (match seg.burst with
            | Some b when b.mult < 1.0 -> seg_err i "burst mult must be >= 1"
            | Some b when b.mean_on_us <= 0.0 || b.mean_off_us <= 0.0 ->
                seg_err i "burst holding times must be > 0"
            | _ -> go (i + 1) rest)
    in
    go 0 s.segments

(* Peak instantaneous rate of a segment — the thinning envelope, and the
   upper bound the property tests check windowed counts against. *)
let peak_qps (seg : segment) =
  let burst_mult = match seg.burst with Some b -> b.mult | None -> 1.0 in
  seg.qps *. (1.0 +. seg.diurnal) *. burst_mult

(* Minimum instantaneous rate: diurnal trough, burst off. *)
let trough_qps (seg : segment) = seg.qps *. (1.0 -. seg.diurnal)

let spec_peak_qps (s : spec) =
  List.fold_left (fun acc seg -> Float.max acc (peak_qps seg)) 0.0 s.segments

let two_pi = 8.0 *. Float.atan 1.0

(* Instantaneous diurnal factor at [t] microseconds into the segment. *)
let diurnal_factor (seg : segment) ~t_seg =
  if seg.diurnal = 0.0 then 1.0
  else 1.0 +. (seg.diurnal *. Float.sin (two_pi *. t_seg /. seg.period_us))

let pick_class rng (mix : (Slo.cls * float) list) =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 mix in
  let x = T.float01 rng *. total in
  let rec choose acc = function
    | [ (c, _) ] -> c
    | (c, w) :: rest -> if x < acc +. w then c else choose (acc +. w) rest
    | [] -> assert false
  in
  choose 0.0 mix

(* Exponential holding/gap draw; clamped strictly positive so arrival
   times are strictly increasing (the monotonicity property the scale
   harness and QCheck tests rely on). *)
let exp_draw rng ~mean_us =
  Float.max 1e-3 (-.mean_us *. Float.log (Float.max 1e-12 (T.float01 rng)))

let generate (s : spec) ~n : Pool.request list =
  (match validate s with Ok () -> () | Error m -> invalid_arg ("Trace_gen: " ^ m));
  let rng = T.create_rng s.seed in
  let segs = Array.of_list s.segments in
  let nsegs = Array.length segs in
  (* burst automaton: on/off with exponential holding times, advanced
     deterministically along candidate time in stream order *)
  let burst_on = ref false in
  let burst_toggle_at = ref 0.0 in
  let advance_burst (seg : segment) ~t_abs =
    match seg.burst with
    | None -> burst_on := false
    | Some b ->
        while !burst_toggle_at <= t_abs do
          burst_on := not !burst_on;
          let mean = if !burst_on then b.mean_on_us else b.mean_off_us in
          burst_toggle_at := !burst_toggle_at +. exp_draw rng ~mean_us:mean
        done
  in
  let rec go ~seg_idx ~seg_start ~t_abs ~acc ~k =
    if k = 0 then List.rev acc
    else
      let seg = segs.(seg_idx mod nsegs) in
      let seg_end = seg_start +. seg.duration_us in
      let lambda_max = peak_qps seg /. 1e6 (* per µs *) in
      let t_abs = t_abs +. exp_draw rng ~mean_us:(1.0 /. lambda_max) in
      if t_abs >= seg_end then
        (* segment boundary: the candidate clock carries over; the burst
           automaton resets so each segment's burst pattern is local *)
        let () = burst_on := false in
        let () = burst_toggle_at := t_abs in
        go ~seg_idx:(seg_idx + 1) ~seg_start:seg_end ~t_abs ~acc ~k
      else begin
        advance_burst seg ~t_abs;
        let burst_mult =
          match seg.burst with Some b when !burst_on -> b.mult | _ -> 1.0
        in
        let lambda =
          seg.qps /. 1e6 *. diurnal_factor seg ~t_seg:(t_abs -. seg_start) *. burst_mult
        in
        (* thinning: accept with probability lambda / lambda_max *)
        if T.float01 rng *. lambda_max < lambda then begin
          let dims = List.map (fun (name, d) -> (name, T.sample rng d)) seg.dims in
          let cls = pick_class rng seg.mix in
          go ~seg_idx ~seg_start ~t_abs
            ~acc:({ Pool.arrival_us = t_abs; dims; cls } :: acc)
            ~k:(k - 1)
        end
        else go ~seg_idx ~seg_start ~t_abs ~acc ~k
      end
  in
  go ~seg_idx:0 ~seg_start:0.0 ~t_abs:0.0 ~acc:[] ~k:n

(* --- presets ---------------------------------------------------------------- *)

let steady ?(mix = default_mix) ~seed ~qps ~dims () =
  {
    seed;
    segments =
      [
        { duration_us = 1e9; qps; diurnal = 0.0; period_us = 0.0; burst = None; dims; mix };
      ];
  }

let diurnal ?(mix = default_mix) ?(amplitude = 0.6) ?(period_us = 2e5) ~seed ~qps ~dims
    () =
  {
    seed;
    segments =
      [
        {
          duration_us = 1e9;
          qps;
          diurnal = amplitude;
          period_us;
          burst = None;
          dims;
          mix;
        };
      ];
  }

let bursty ?(mix = default_mix) ?(mult = 4.0) ?(mean_on_us = 2e4) ?(mean_off_us = 8e4)
    ~seed ~qps ~dims () =
  {
    seed;
    segments =
      [
        {
          duration_us = 1e9;
          qps;
          diurnal = 0.0;
          period_us = 0.0;
          burst = Some { mult; mean_on_us; mean_off_us };
          dims;
          mix;
        };
      ];
  }

(* Shape drift: traffic alternates between two dim distributions every
   [segment_us] of virtual time. *)
let drift ?(mix = default_mix) ?(segment_us = 2e5) ~seed ~qps ~dims_a ~dims_b () =
  let seg dims =
    { duration_us = segment_us; qps; diurnal = 0.0; period_us = 0.0; burst = None; dims; mix }
  in
  { seed; segments = [ seg dims_a; seg dims_b ] }

(* The scale-bench trace: diurnal modulation with bursts layered on top,
   drifting between two shape clusters each segment. *)
let mixed ?(mix = default_mix) ?(segment_us = 5e5) ~seed ~qps ~dims_a ~dims_b () =
  let seg dims =
    {
      duration_us = segment_us;
      qps;
      diurnal = 0.4;
      period_us = segment_us /. 2.0;
      burst = Some { mult = 3.0; mean_on_us = 2e4; mean_off_us = 1e5 };
      dims;
      mix;
    }
  in
  { seed; segments = [ seg dims_a; seg dims_b ] }

let describe (s : spec) =
  String.concat " | "
    (List.map
       (fun seg ->
         Printf.sprintf "%.0fqps%s%s dims=%s for %.0fms" seg.qps
           (if seg.diurnal > 0.0 then Printf.sprintf " diurnal=%.2f" seg.diurnal else "")
           (match seg.burst with
           | Some b -> Printf.sprintf " burst=x%.1f" b.mult
           | None -> "")
           (String.concat "," (List.map fst seg.dims))
           (seg.duration_us /. 1000.0))
       s.segments)
