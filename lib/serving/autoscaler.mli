(** Replica autoscaling policy: add or drain replicas from the pool
    based on per-tick SLO attainment and queue depth.

    State machine per control tick (cooldown-gated, floor repair
    excepted):

    {v
        alive < min ──────────────────────────────► Scale_up (always)
        in cooldown ──────────────────────────────► Hold
        alive < max  ∧ (attainment < target
                        ∨ backlog/alive > up_q
                        ∨ mem_pressure) ──────────► Scale_up
        alive > min  ∧ attainment ≥ target
                     ∧ backlog ≤ down_q
                     ∧ ¬mem_pressure ─────────────► Scale_down
        otherwise ────────────────────────────────► Hold
    v}

    The pool executes the decision: [Scale_up] mints a replica whose
    session compiles through the shared {!Disc.Compile_cache} (a hit —
    the pool already compiled this model) and pre-warms it on the hot
    signatures before it takes traffic; [Scale_down] begins draining
    the youngest alive replica ({!Replica.begin_drain}), so its
    in-flight batch completes and nothing is lost. *)

type config = {
  min_replicas : int;
  max_replicas : int;
  target_attainment : float;
      (** scale up while the SLO-met fraction of the last window is below this *)
  scale_up_queue : int;  (** .. or backlog per alive replica exceeds this *)
  scale_down_queue : int;  (** scale down only at/below this total backlog *)
  cooldown_us : float;  (** minimum virtual time between scale decisions *)
}

val default_config : config
(** 1..4 replicas, 95 % attainment target, up at backlog > 8/replica,
    down only when drained, 50 ms cooldown. *)

type action = Hold | Scale_up | Scale_down

val action_to_string : action -> string

type t

val create : config -> t
(** @raise Invalid_argument unless [1 <= min_replicas <= max_replicas]. *)

val config : t -> config

val decide :
  ?mem_pressure:bool ->
  t ->
  now:float ->
  alive:int ->
  queue_depth:int ->
  attainment:float ->
  action
(** One control-tick decision. [attainment] is the fraction of requests
    completed within their class deadline since the previous tick (1.0
    when nothing completed — an idle pool is not failing its SLO).
    [mem_pressure] (default [false]) reports sustained memory pressure —
    dispatches estimated near the pool's HBM budget or capped to fit it;
    it is a third scale-up trigger and a scale-down veto. A non-[Hold]
    decision starts the cooldown window. *)

val ups : t -> int
val downs : t -> int
