(* Multi-replica serving pool: discrete-event simulation over virtual
   time. The pool owns the layers above a single session — admission,
   bucketed batching, pad-vs-exact decision, routing, failure drain —
   and accounts for every request exactly once.

   The event loop is chronological: at each event time it delivers
   faults, admits arrivals, expires stale queue entries, then
   dispatches batches while any (free replica, launchable bucket) pair
   exists. The next event is the earliest of: next arrival, a busy
   replica freeing, a waiting bucket's batching window closing, or a
   scheduled fault. *)

module Q = Workloads.Queueing
module Session = Disc.Session
module Profile = Runtime.Profile

type config = {
  devices : Gpusim.Device.t list;
  batch_dim : string;
  max_batch : int;
  max_wait_us : float;
  bucket : Bucket.spec;
  slo : Slo.policy;
  router : Router.policy;
  max_pad_waste : float;
  cold_warmup_us : float;
}

let default_config ~devices ~batch_dim ~bucket =
  {
    devices;
    batch_dim;
    max_batch = 8;
    max_wait_us = 2000.0;
    bucket;
    slo = Slo.default_policy;
    router = Router.Warmth_aware;
    max_pad_waste = 0.5;
    cold_warmup_us = 1500.0;
  }

type request = { arrival_us : float; dims : (string * int) list; cls : Slo.cls }

let of_arrivals ?(cls = Slo.Standard) (arrivals : Q.request list) =
  List.map (fun (r : Q.request) -> { arrival_us = r.Q.arrival_us; dims = r.Q.dims; cls }) arrivals

let with_class_mix ~seed (mix : (Slo.cls * float) list) reqs =
  if mix = [] then invalid_arg "Pool.with_class_mix: empty mix";
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 mix in
  let rng = Workloads.Trace.create_rng seed in
  List.map
    (fun r ->
      let x = Workloads.Trace.float01 rng *. total in
      let rec choose acc = function
        | [ (c, _) ] -> c
        | (c, w) :: rest -> if x < acc +. w then c else choose (acc +. w) rest
        | [] -> assert false
      in
      { r with cls = choose 0.0 mix })
    reqs

(* Adaptive control loop: every [control_interval_us] of virtual time
   the pool decays its shape statistics, re-derives the bucket policy
   from observed mass, pushes likely-value hints into the replica
   sessions, cross-pollinates hot-signature warmth (the artifacts are in
   the shared cache — only the first replica paid the cold dispatch),
   and lets the autoscaler add or drain replicas. *)
type adaptive = {
  control_interval_us : float;
  rebucket : bool; (* re-derive Bucket.Edges from observed traffic *)
  max_edges : int; (* quantile-placed boundaries per dim *)
  edge_quantum : int; (* snap derived boundaries up to a multiple *)
  decay : float; (* per-tick multiplicative decay of shape stats *)
  hint_k : int; (* likely values per dim / hot signatures to pre-warm *)
  autoscale : Autoscaler.config option;
  prewarm_us : float; (* spin-up delay before a minted replica takes traffic *)
}

let default_adaptive =
  {
    control_interval_us = 20_000.0;
    rebucket = true;
    max_edges = 4;
    edge_quantum = 4;
    decay = 0.9;
    hint_k = 4;
    autoscale = None;
    prewarm_us = 5_000.0;
  }

type disposition = Served | Fell_back | Shed | Expired | Rejected | Failed

let disposition_to_string = function
  | Served -> "served"
  | Fell_back -> "fell_back"
  | Shed -> "shed"
  | Expired -> "expired"
  | Rejected -> "rejected"
  | Failed -> "failed"

type class_report = {
  cr_class : Slo.cls;
  cr_arrivals : int;
  cr_completed : int;
  cr_slo_met : int;
  cr_shed : int;
  cr_expired : int;
}

type replica_report = {
  rr_id : int;
  rr_device : string;
  rr_health : string;
  rr_batches : int;
  rr_requests : int;
  rr_cold_dispatches : int;
  rr_busy_us : float;
}

type adaptive_report = {
  ar_ticks : int;
  ar_rebuckets : int;
  ar_minted : int; (* hot signatures pre-warmed across replicas *)
  ar_hints : int; (* likely values ingested into replica sessions *)
  ar_scale_ups : int;
  ar_scale_downs : int;
  ar_final_replicas : int; (* alive when the trace drained *)
  ar_final_spec : string; (* Bucket.spec_to_string of the final policy *)
  ar_likely : (string * int list) list; (* last hint set pushed *)
}

let adaptive_summary_to_string (a : adaptive_report) =
  Printf.sprintf
    "adaptive: ticks=%d rebuckets=%d minted=%d hints=%d scale_ups=%d scale_downs=%d \
     alive=%d\nbucket: %s\nlikely: %s"
    a.ar_ticks a.ar_rebuckets a.ar_minted a.ar_hints a.ar_scale_ups a.ar_scale_downs
    a.ar_final_replicas
    (if a.ar_final_spec = "" then "(none)" else a.ar_final_spec)
    (if a.ar_likely = [] then "(none)"
     else
       String.concat " "
         (List.map
            (fun (n, vs) ->
              Printf.sprintf "%s=%s" n (String.concat "," (List.map string_of_int vs)))
            a.ar_likely))

type report = {
  dispositions : disposition array;
  latencies_us : float array;
  served : int;
  fell_back : int;
  shed : int;
  expired : int;
  rejected : int;
  failed : int;
  lost : int;
  batches : int;
  mean_batch : float;
  padded_batches : int;
  exact_batches : int;
  cold_dispatches : int;
  actual_elements : int;
  padded_elements : int;
  makespan_us : float;
  classes : class_report list;
  replicas : replica_report list;
  adaptive : adaptive_report option; (* Some iff run with ~adaptive *)
}

let padding_waste (r : report) =
  Bucket.waste ~actual:r.actual_elements ~padded:r.padded_elements

let completed_latencies (r : report) =
  Array.of_list
    (List.filter (fun l -> not (Float.is_nan l)) (Array.to_list r.latencies_us))

let percentile = Q.percentile

let report_to_string (r : report) =
  let lats = completed_latencies r in
  Printf.sprintf
    "served=%d fell_back=%d shed=%d expired=%d rejected=%d failed=%d lost=%d \
     batches=%d mean_batch=%.1f (padded=%d exact=%d cold=%d) pad_waste=%.1f%% \
     p50=%.0fus p99=%.0fus makespan=%.0fus"
    r.served r.fell_back r.shed r.expired r.rejected r.failed r.lost r.batches r.mean_batch
    r.padded_batches r.exact_batches r.cold_dispatches
    (100.0 *. padding_waste r)
    (percentile lats 0.5) (percentile lats 0.99) r.makespan_us

type t = {
  cfg : config;
  mutable pool_replicas : Replica.t array; (* grows on adaptive scale-up *)
  router : Router.t;
  pool_cache : Disc.Compile_cache.t;
  expected : string list; (* dim names a request must bind (model dims minus batch) *)
  mutable us_per_element : float; (* measured service rate for the pad-vs-exact model *)
  mint : id:int -> Replica.t; (* scale-up: new session through the shared cache *)
  stats : Shape_stats.t; (* observed shape distribution (adaptive runs) *)
  mutable cur_bucket : Bucket.spec; (* live policy; starts as cfg.bucket *)
}

let replicas t = t.pool_replicas
let cache t = t.pool_cache
let config t = t.cfg
let shape_stats t = t.stats
let current_bucket t = t.cur_bucket

let create ?options ?session_policy ?fault_config ?cache cfg build =
  if cfg.devices = [] then invalid_arg "Pool.create: empty device list";
  let shared = match cache with Some c -> c | None -> Disc.Compile_cache.create () in
  let surface = build () in
  let dim_names = List.map fst surface.Models.Common.dims in
  if not (List.mem cfg.batch_dim dim_names) then
    invalid_arg
      (Printf.sprintf "Pool.create: model %s has no batch dim %s"
         surface.Models.Common.name cfg.batch_dim);
  let mint ~id =
    let device = List.nth cfg.devices (id mod List.length cfg.devices) in
    let fault_config =
      Option.map (fun fc -> { fc with Gpusim.Fault.seed = fc.Gpusim.Fault.seed + (31 * id) })
        fault_config
    in
    let session =
      Session.create ?options ?policy:session_policy ?fault_config ~device ~cache:shared
        (build ())
    in
    Replica.create ~id session
  in
  {
    cfg;
    pool_replicas = Array.init (List.length cfg.devices) (fun i -> mint ~id:i);
    router = Router.create cfg.router;
    pool_cache = shared;
    expected = List.filter (fun n -> n <> cfg.batch_dim) dim_names;
    us_per_element = 0.0;
    mint;
    stats = Shape_stats.create ();
    cur_bucket = cfg.bucket;
  }

(* --- the event loop ------------------------------------------------------- *)

let ewma_alpha = 0.3

let note_rate t ~service_us ~elements =
  if elements > 0 then begin
    let rate = service_us /. float_of_int elements in
    t.us_per_element <-
      (if t.us_per_element <= 0.0 then rate
       else (ewma_alpha *. rate) +. ((1.0 -. ewma_alpha) *. t.us_per_element))
  end

let run ?(failures = []) ?adaptive t (reqs : request list) : report =
  let cfg = t.cfg in
  let reqs = List.sort (fun a b -> compare a.arrival_us b.arrival_us) reqs in
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let disp : disposition option array = Array.make n None in
  let lats = Array.make n Float.nan in
  let slo = Slo.create cfg.slo in
  let obs = Obs.Scope.on () in
  (* per-bucket FIFO queues, in first-seen key order for determinism *)
  let queues : (string, (int * request) Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let queue_of key =
    match Hashtbl.find_opt queues key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace queues key q;
        order := !order @ [ key ];
        q
  in
  let total_queued () =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) queues 0
  in
  let upcoming = ref (List.mapi (fun i r -> (i, r)) reqs) in
  let pending_failures =
    ref (List.sort (fun (a, _) (b, _) -> compare a b) failures)
  in
  let now = ref 0.0 in
  let last_done = ref 0.0 in
  let batches = ref 0 and batched_total = ref 0 in
  let padded_batches = ref 0 and exact_batches = ref 0 and cold_total = ref 0 in
  let actual_elems = ref 0 and padded_elems = ref 0 in
  (* adaptive-control state (inert on non-adaptive runs) *)
  let scaler = Option.bind adaptive (fun a -> Option.map Autoscaler.create a.autoscale) in
  let next_tick =
    ref (match adaptive with Some a -> a.control_interval_us | None -> infinity)
  in
  let ticks = ref 0 and rebuckets = ref 0 and minted = ref 0 and hints_total = ref 0 in
  let last_hints = ref [] in
  let win_total = ref 0 and win_met = ref 0 in
  let alive_count () =
    Array.fold_left (fun n r -> if Replica.alive r then n + 1 else n) 0 t.pool_replicas
  in

  let admit (i : int) (r : request) =
    let qreq = { Q.arrival_us = r.arrival_us; Q.dims = r.dims } in
    match Q.validate_request ~expected:t.expected qreq with
    | Error _ ->
        disp.(i) <- Some Rejected;
        if obs then Obs.Scope.count "pool.rejected"
    | Ok () ->
        (* well-formed traffic feeds the distribution estimator even when
           shed: offered load is what the bucket policy must fit *)
        if adaptive <> None then Shape_stats.observe t.stats r.dims;
        if not (Slo.admit slo r.cls) then disp.(i) <- Some Shed
        else begin
          Queue.add (i, r) (queue_of (Bucket.key_of t.cur_bucket r.dims));
          if obs then Obs.Scope.gauge "pool.queue_depth" (float_of_int (total_queued ()))
        end
  in
  let admit_arrivals_up_to time =
    let rec go () =
      match !upcoming with
      | (i, r) :: rest when r.arrival_us <= time ->
          upcoming := rest;
          admit i r;
          go ()
      | _ -> ()
    in
    go ()
  in
  let process_failures time =
    let rec go () =
      match !pending_failures with
      | (ft, id) :: rest when ft <= time ->
          pending_failures := rest;
          if id >= 0 && id < Array.length t.pool_replicas then
            Replica.begin_drain t.pool_replicas.(id) ~now:time;
          go ()
      | _ -> ()
    in
    go ()
  in
  let finish_drains time =
    Array.iter (fun r -> Replica.finish_drain_if_due r ~now:time) t.pool_replicas
  in
  let expire_queues time =
    Hashtbl.iter
      (fun _ q ->
        let keep = Queue.create () in
        Queue.iter
          (fun (i, r) ->
            if Slo.deadline_of cfg.slo r.cls ~arrival_us:r.arrival_us < time then begin
              disp.(i) <- Some Expired;
              Slo.dequeue slo r.cls;
              Slo.note_expired slo r.cls
            end
            else Queue.add (i, r) keep)
          q;
        Queue.clear q;
        Queue.transfer keep q)
      queues
  in
  let any_free time =
    Array.exists (fun r -> Replica.is_free r ~now:time) t.pool_replicas
  in
  let launchable time q =
    match Queue.peek_opt q with
    | None -> false
    | Some (_, oldest) ->
        Queue.length q >= cfg.max_batch
        || oldest.arrival_us +. cfg.max_wait_us <= time
        || !upcoming = []
  in
  (* bucket selection: class priority of the oldest request, then
     earliest absolute deadline, then earliest arrival, then key *)
  let pick_bucket time =
    List.fold_left
      (fun best key ->
        let q = Hashtbl.find queues key in
        if not (launchable time q) then best
        else
          let _, oldest = Queue.peek q in
          let cand =
            ( -(Slo.target_of cfg.slo oldest.cls).Slo.priority,
              Slo.deadline_of cfg.slo oldest.cls ~arrival_us:oldest.arrival_us,
              oldest.arrival_us,
              key )
          in
          match best with
          | Some (b, _) when b <= cand -> best
          | _ -> Some (cand, (key, q)))
      None !order
    |> Option.map snd
  in
  let pop_batch q =
    let rec go acc k =
      if k >= cfg.max_batch || Queue.is_empty q then List.rev acc
      else
        let (i, r) = Queue.pop q in
        Slo.dequeue slo r.cls;
        go ((i, r) :: acc) (k + 1)
    in
    go [] 0
  in
  let dispatch_batch time (members : (int * request) list) =
    let member_dims = List.map (fun (_, r) -> r.dims) members in
    let exact = Bucket.exact_env ~batch_dim:cfg.batch_dim member_dims in
    let padded = Bucket.padded_env t.cur_bucket ~batch_dim:cfg.batch_dim member_dims in
    let e_actual =
      List.fold_left (fun acc d -> acc + Bucket.elements d) 0 member_dims
    in
    let e_exact = Bucket.elements exact and e_padded = Bucket.elements padded in
    (* pad-vs-exact: hard waste cap, then the measured cost model —
       padded repeats across batches (likely warm somewhere in the
       pool), exact executes fewer elements but is usually cold *)
    let use_padded =
      if Bucket.waste ~actual:e_actual ~padded:e_padded > cfg.max_pad_waste then false
      else if t.us_per_element <= 0.0 then true
      else begin
        let warm_somewhere key =
          Array.exists
            (fun rep -> Replica.alive rep && Replica.is_warm rep key)
            t.pool_replicas
        in
        let cost elems key =
          (t.us_per_element *. float_of_int elems)
          +. (if warm_somewhere key then 0.0 else cfg.cold_warmup_us)
        in
        cost e_padded (Bucket.env_key padded) <= cost e_exact (Bucket.env_key exact)
      end
    in
    let env = if use_padded then padded else exact in
    let key = Bucket.env_key env in
    match Router.pick t.router ~now:time ~key t.pool_replicas with
    | None -> assert false (* only called when a replica is free *)
    | Some rep -> (
        let count = List.length members in
        match Session.serve_result rep.Replica.session env with
        | Error _ ->
            List.iter (fun (i, _) -> disp.(i) <- Some Failed) members;
            if obs then Obs.Scope.count ~by:count "pool.failed"
        | Ok (profile, path) ->
            let cold = not (Replica.is_warm rep key) in
            let base_us = Profile.total_us profile in
            let service_us = base_us +. (if cold then cfg.cold_warmup_us else 0.0) in
            let done_at = time +. service_us in
            rep.Replica.free_at <- done_at;
            if done_at > !last_done then last_done := done_at;
            note_rate t ~service_us:base_us ~elements:(Bucket.elements env);
            Replica.note_batch rep ~key ~elements:(Bucket.elements env)
              ~service_us ~requests:count ~cold;
            incr batches;
            batched_total := !batched_total + count;
            if use_padded then incr padded_batches else incr exact_batches;
            if cold then incr cold_total;
            actual_elems := !actual_elems + e_actual;
            padded_elems := !padded_elems + Bucket.elements env;
            let d = match path with `Compiled -> Served | `Fallback -> Fell_back in
            List.iter
              (fun (i, r) ->
                disp.(i) <- Some d;
                lats.(i) <- done_at -. r.arrival_us;
                incr win_total;
                if lats.(i) <= (Slo.target_of cfg.slo r.cls).Slo.deadline_us then
                  incr win_met)
              members;
            if obs then begin
              Obs.Scope.count ~by:count
                (Printf.sprintf "pool.%s" (disposition_to_string d));
              Obs.Trace.set_track_name Obs.Trace.global (2 + rep.Replica.id)
                (Printf.sprintf "replica%d" rep.Replica.id);
              Obs.Scope.span ~track:(2 + rep.Replica.id) ~cat:"batch" ~ts:time
                ~dur_us:service_us
                ~args:
                  [
                    ("env", key);
                    ("n", string_of_int count);
                    ("padded", string_of_bool use_padded);
                    ("cold", string_of_bool cold);
                    ("path", disposition_to_string d);
                  ]
                (Printf.sprintf "batch@%s" key)
            end)
  in
  let try_dispatch time =
    if not (any_free time) then false
    else
      match pick_bucket time with
      | None -> false
      | Some (_, q) ->
          dispatch_batch time (pop_batch q);
          true
  in
  let fail_everything_left () =
    Hashtbl.iter
      (fun _ q ->
        Queue.iter
          (fun (i, r) ->
            disp.(i) <- Some Failed;
            Slo.dequeue slo r.cls)
          q;
        Queue.clear q)
      queues;
    List.iter (fun (i, _) -> disp.(i) <- Some Failed) !upcoming;
    upcoming := []
  in
  (* --- adaptive control tick ---------------------------------------------- *)
  (* Re-key queued work after a policy change, preserving arrival order.
     SLO queue counters are untouched: the requests stay queued, only
     their bucket membership moves. *)
  let rekey_queues () =
    let entries = ref [] in
    List.iter
      (fun key ->
        match Hashtbl.find_opt queues key with
        | Some q -> Queue.iter (fun e -> entries := e :: !entries) q
        | None -> ())
      !order;
    let entries = List.sort (fun (i, _) (j, _) -> compare i j) !entries in
    Hashtbl.reset queues;
    order := [];
    List.iter (fun (i, r) -> Queue.add (i, r) (queue_of (Bucket.key_of t.cur_bucket r.dims))) entries
  in
  (* The pool's hottest shape signatures: warmth mass summed across
     alive replicas, heaviest first (ties toward the smaller key). *)
  let pool_hot_keys k =
    let acc = Hashtbl.create 16 in
    Array.iter
      (fun r ->
        if Replica.alive r then
          Hashtbl.iter
            (fun key n ->
              Hashtbl.replace acc key (n + Option.value (Hashtbl.find_opt acc key) ~default:0))
            r.Replica.warmth)
      t.pool_replicas;
    Hashtbl.fold (fun key n l -> (key, n) :: l) acc []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match compare nb na with 0 -> compare ka kb | c -> c)
    |> List.filteri (fun i _ -> i < k)
    |> List.map fst
  in
  let do_tick (a : adaptive) time =
    incr ticks;
    Shape_stats.decay t.stats ~factor:a.decay;
    (* 1. re-derive the bucket policy from observed mass *)
    if a.rebucket && Shape_stats.observations t.stats > 0 then begin
      let spec' =
        Shape_stats.spec ~quantum:a.edge_quantum t.stats ~max_edges:a.max_edges
          ~dims:cfg.bucket
      in
      if spec' <> t.cur_bucket then begin
        t.cur_bucket <- spec';
        incr rebuckets;
        rekey_queues ();
        if obs then Obs.Scope.count "pool.rebucket"
      end
    end;
    (* 2. distribution-constraint ingestion: likely values -> sessions *)
    let hs = Shape_stats.hints ~k:a.hint_k t.stats in
    if hs <> [] then begin
      last_hints := hs;
      let nvals = List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 hs in
      Array.iter
        (fun r ->
          if Replica.alive r then begin
            Session.ingest_hints r.Replica.session hs;
            hints_total := !hints_total + nvals
          end)
        t.pool_replicas
    end;
    (* 3. mint speculative warmth: every alive replica pre-warms on the
       pool's hottest signatures (the artifacts are in the shared cache) *)
    let hot_keys = pool_hot_keys a.hint_k in
    Array.iter
      (fun r -> if Replica.alive r then minted := !minted + Replica.prewarm r hot_keys)
      t.pool_replicas;
    (* 4. autoscale against windowed attainment + backlog *)
    (match scaler with
    | None -> ()
    | Some asc ->
        let attainment =
          if !win_total = 0 then 1.0
          else float_of_int !win_met /. float_of_int !win_total
        in
        win_total := 0;
        win_met := 0;
        (match
           Autoscaler.decide asc ~now:time ~alive:(alive_count ())
             ~queue_depth:(total_queued ()) ~attainment
         with
        | Autoscaler.Hold -> ()
        | Autoscaler.Scale_up ->
            let rep = t.mint ~id:(Array.length t.pool_replicas) in
            rep.Replica.free_at <- time +. a.prewarm_us;
            ignore (Replica.prewarm rep hot_keys);
            t.pool_replicas <- Array.append t.pool_replicas [| rep |]
        | Autoscaler.Scale_down ->
            (* drain the youngest alive replica: warmth seniority stays *)
            let victim = ref None in
            Array.iter (fun r -> if Replica.alive r then victim := Some r) t.pool_replicas;
            Option.iter (fun r -> Replica.begin_drain r ~now:time) !victim);
        if obs then Obs.Scope.gauge "pool.alive_replicas" (float_of_int (alive_count ())));
    if obs then
      Obs.Scope.span ~cat:"control" ~ts:time ~dur_us:0.0
        ~args:
          [
            ("tick", string_of_int !ticks);
            ("bucket", Bucket.spec_to_string t.cur_bucket);
            ("alive", string_of_int (alive_count ()));
          ]
        "adaptive_tick"
  in
  let run_ticks () =
    match adaptive with
    | None -> ()
    | Some a ->
        while !now >= !next_tick -. 1e-9 do
          do_tick a !next_tick;
          next_tick := !next_tick +. a.control_interval_us
        done
  in

  let next_event () =
    let t_arr = match !upcoming with [] -> infinity | (_, r) :: _ -> r.arrival_us in
    let t_free =
      Array.fold_left
        (fun acc r ->
          if r.Replica.health <> Replica.Dead && r.Replica.free_at > !now then
            Float.min acc r.Replica.free_at
          else acc)
        infinity t.pool_replicas
    in
    let t_window =
      if not (any_free !now) then infinity
      else
        Hashtbl.fold
          (fun _ q acc ->
            match Queue.peek_opt q with
            | None -> acc
            | Some (_, oldest) -> Float.min acc (oldest.arrival_us +. cfg.max_wait_us))
          queues infinity
    in
    let t_fail = match !pending_failures with [] -> infinity | (ft, _) :: _ -> ft in
    let t_tick =
      if adaptive <> None && (!upcoming <> [] || total_queued () > 0) then !next_tick
      else infinity
    in
    Float.min (Float.min (Float.min t_arr t_free) (Float.min t_window t_fail)) t_tick
  in
  let rec loop () =
    process_failures !now;
    finish_drains !now;
    run_ticks ();
    admit_arrivals_up_to !now;
    expire_queues !now;
    while try_dispatch !now do () done;
    if !upcoming = [] && total_queued () = 0 then ()
    else if not (Array.exists (fun r -> r.Replica.health <> Replica.Dead) t.pool_replicas)
    then fail_everything_left ()
    else
      let next = next_event () in
      if next = infinity then fail_everything_left ()
      else begin
        now := Float.max !now next;
        loop ()
      end
  in
  loop ();
  let final =
    Array.map (function Some d -> d | None -> Failed) disp
  in
  let lost = Array.fold_left (fun a d -> if d = None then a + 1 else a) 0 disp in
  let count d = Array.fold_left (fun a x -> if x = d then a + 1 else a) 0 final in
  let classes =
    List.map
      (fun c ->
        let idxs = ref [] in
        Array.iteri (fun i r -> if r.cls = c then idxs := i :: !idxs) arr;
        let deadline = (Slo.target_of cfg.slo c).Slo.deadline_us in
        let completed, met, shed_c, exp_c =
          List.fold_left
            (fun (co, me, sh, ex) i ->
              match final.(i) with
              | Served | Fell_back ->
                  (co + 1, (if lats.(i) <= deadline then me + 1 else me), sh, ex)
              | Shed -> (co, me, sh + 1, ex)
              | Expired -> (co, me, sh, ex + 1)
              | _ -> (co, me, sh, ex))
            (0, 0, 0, 0) !idxs
        in
        {
          cr_class = c;
          cr_arrivals = List.length !idxs;
          cr_completed = completed;
          cr_slo_met = met;
          cr_shed = shed_c;
          cr_expired = exp_c;
        })
      Slo.all_classes
  in
  {
    dispositions = final;
    latencies_us = lats;
    served = count Served;
    fell_back = count Fell_back;
    shed = count Shed;
    expired = count Expired;
    rejected = count Rejected;
    failed = count Failed;
    lost;
    batches = !batches;
    mean_batch =
      (if !batches = 0 then 0.0
       else float_of_int !batched_total /. float_of_int !batches);
    padded_batches = !padded_batches;
    exact_batches = !exact_batches;
    cold_dispatches = !cold_total;
    actual_elements = !actual_elems;
    padded_elements = !padded_elems;
    makespan_us = !last_done;
    classes;
    adaptive =
      Option.map
        (fun (_ : adaptive) ->
          {
            ar_ticks = !ticks;
            ar_rebuckets = !rebuckets;
            ar_minted = !minted;
            ar_hints = !hints_total;
            ar_scale_ups = (match scaler with Some s -> Autoscaler.ups s | None -> 0);
            ar_scale_downs = (match scaler with Some s -> Autoscaler.downs s | None -> 0);
            ar_final_replicas = alive_count ();
            ar_final_spec = Bucket.spec_to_string t.cur_bucket;
            ar_likely = !last_hints;
          })
        adaptive;
    replicas =
      Array.to_list
        (Array.map
           (fun (r : Replica.t) ->
             {
               rr_id = r.Replica.id;
               rr_device = r.Replica.device.Gpusim.Device.name;
               rr_health = Replica.health_to_string r.Replica.health;
               rr_batches = r.Replica.batches;
               rr_requests = r.Replica.requests;
               rr_cold_dispatches = r.Replica.cold_dispatches;
               rr_busy_us = r.Replica.busy_us;
             })
           t.pool_replicas);
  }
