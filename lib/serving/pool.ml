(* Multi-replica serving pool: discrete-event simulation over virtual
   time. The pool owns the layers above a single session — admission,
   bucketed batching, pad-vs-exact decision, routing, failure drain —
   and accounts for every request exactly once.

   The event loop is chronological: at each event time it delivers
   faults, admits arrivals, expires stale queue entries, then
   dispatches batches while any (free replica, launchable bucket) pair
   exists. The next event is the earliest of: next arrival, a busy
   replica freeing, a waiting bucket's batching window closing, or a
   scheduled fault. *)

module Q = Workloads.Queueing
module Session = Disc.Session
module Profile = Runtime.Profile

type config = {
  devices : Gpusim.Device.t list;
  batch_dim : string;
  max_batch : int;
  max_wait_us : float;
  bucket : Bucket.spec;
  slo : Slo.policy;
  router : Router.policy;
  max_pad_waste : float;
  cold_warmup_us : float;
}

let default_config ~devices ~batch_dim ~bucket =
  {
    devices;
    batch_dim;
    max_batch = 8;
    max_wait_us = 2000.0;
    bucket;
    slo = Slo.default_policy;
    router = Router.Warmth_aware;
    max_pad_waste = 0.5;
    cold_warmup_us = 1500.0;
  }

type request = { arrival_us : float; dims : (string * int) list; cls : Slo.cls }

let of_arrivals ?(cls = Slo.Standard) (arrivals : Q.request list) =
  List.map (fun (r : Q.request) -> { arrival_us = r.Q.arrival_us; dims = r.Q.dims; cls }) arrivals

let with_class_mix ~seed (mix : (Slo.cls * float) list) reqs =
  if mix = [] then invalid_arg "Pool.with_class_mix: empty mix";
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 mix in
  let rng = Workloads.Trace.create_rng seed in
  List.map
    (fun r ->
      let x = Workloads.Trace.float01 rng *. total in
      let rec choose acc = function
        | [ (c, _) ] -> c
        | (c, w) :: rest -> if x < acc +. w then c else choose (acc +. w) rest
        | [] -> assert false
      in
      { r with cls = choose 0.0 mix })
    reqs

type disposition = Served | Fell_back | Shed | Expired | Rejected | Failed

let disposition_to_string = function
  | Served -> "served"
  | Fell_back -> "fell_back"
  | Shed -> "shed"
  | Expired -> "expired"
  | Rejected -> "rejected"
  | Failed -> "failed"

type class_report = {
  cr_class : Slo.cls;
  cr_arrivals : int;
  cr_completed : int;
  cr_slo_met : int;
  cr_shed : int;
  cr_expired : int;
}

type replica_report = {
  rr_id : int;
  rr_device : string;
  rr_health : string;
  rr_batches : int;
  rr_requests : int;
  rr_cold_dispatches : int;
  rr_busy_us : float;
}

type report = {
  dispositions : disposition array;
  latencies_us : float array;
  served : int;
  fell_back : int;
  shed : int;
  expired : int;
  rejected : int;
  failed : int;
  lost : int;
  batches : int;
  mean_batch : float;
  padded_batches : int;
  exact_batches : int;
  cold_dispatches : int;
  actual_elements : int;
  padded_elements : int;
  makespan_us : float;
  classes : class_report list;
  replicas : replica_report list;
}

let padding_waste (r : report) =
  Bucket.waste ~actual:r.actual_elements ~padded:r.padded_elements

let completed_latencies (r : report) =
  Array.of_list
    (List.filter (fun l -> not (Float.is_nan l)) (Array.to_list r.latencies_us))

let percentile = Q.percentile

let report_to_string (r : report) =
  let lats = completed_latencies r in
  Printf.sprintf
    "served=%d fell_back=%d shed=%d expired=%d rejected=%d failed=%d lost=%d \
     batches=%d mean_batch=%.1f (padded=%d exact=%d cold=%d) pad_waste=%.1f%% \
     p50=%.0fus p99=%.0fus makespan=%.0fus"
    r.served r.fell_back r.shed r.expired r.rejected r.failed r.lost r.batches r.mean_batch
    r.padded_batches r.exact_batches r.cold_dispatches
    (100.0 *. padding_waste r)
    (percentile lats 0.5) (percentile lats 0.99) r.makespan_us

type t = {
  cfg : config;
  pool_replicas : Replica.t array;
  router : Router.t;
  pool_cache : Disc.Compile_cache.t;
  expected : string list; (* dim names a request must bind (model dims minus batch) *)
  mutable us_per_element : float; (* measured service rate for the pad-vs-exact model *)
}

let replicas t = t.pool_replicas
let cache t = t.pool_cache
let config t = t.cfg

let create ?options ?session_policy ?fault_config ?cache cfg build =
  if cfg.devices = [] then invalid_arg "Pool.create: empty device list";
  let shared = match cache with Some c -> c | None -> Disc.Compile_cache.create () in
  let surface = build () in
  let dim_names = List.map fst surface.Models.Common.dims in
  if not (List.mem cfg.batch_dim dim_names) then
    invalid_arg
      (Printf.sprintf "Pool.create: model %s has no batch dim %s"
         surface.Models.Common.name cfg.batch_dim);
  let pool_replicas =
    List.mapi
      (fun i device ->
        let fault_config =
          Option.map (fun fc -> { fc with Gpusim.Fault.seed = fc.Gpusim.Fault.seed + (31 * i) })
            fault_config
        in
        let session =
          Session.create ?options ?policy:session_policy ?fault_config ~device ~cache:shared
            (build ())
        in
        Replica.create ~id:i session)
      cfg.devices
    |> Array.of_list
  in
  {
    cfg;
    pool_replicas;
    router = Router.create cfg.router;
    pool_cache = shared;
    expected = List.filter (fun n -> n <> cfg.batch_dim) dim_names;
    us_per_element = 0.0;
  }

(* --- the event loop ------------------------------------------------------- *)

let ewma_alpha = 0.3

let note_rate t ~service_us ~elements =
  if elements > 0 then begin
    let rate = service_us /. float_of_int elements in
    t.us_per_element <-
      (if t.us_per_element <= 0.0 then rate
       else (ewma_alpha *. rate) +. ((1.0 -. ewma_alpha) *. t.us_per_element))
  end

let run ?(failures = []) t (reqs : request list) : report =
  let cfg = t.cfg in
  let reqs = List.sort (fun a b -> compare a.arrival_us b.arrival_us) reqs in
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let disp : disposition option array = Array.make n None in
  let lats = Array.make n Float.nan in
  let slo = Slo.create cfg.slo in
  let obs = Obs.Scope.on () in
  (* per-bucket FIFO queues, in first-seen key order for determinism *)
  let queues : (string, (int * request) Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let queue_of key =
    match Hashtbl.find_opt queues key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace queues key q;
        order := !order @ [ key ];
        q
  in
  let total_queued () =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) queues 0
  in
  let upcoming = ref (List.mapi (fun i r -> (i, r)) reqs) in
  let pending_failures =
    ref (List.sort (fun (a, _) (b, _) -> compare a b) failures)
  in
  let now = ref 0.0 in
  let last_done = ref 0.0 in
  let batches = ref 0 and batched_total = ref 0 in
  let padded_batches = ref 0 and exact_batches = ref 0 and cold_total = ref 0 in
  let actual_elems = ref 0 and padded_elems = ref 0 in

  let admit (i : int) (r : request) =
    let qreq = { Q.arrival_us = r.arrival_us; Q.dims = r.dims } in
    match Q.validate_request ~expected:t.expected qreq with
    | Error _ ->
        disp.(i) <- Some Rejected;
        if obs then Obs.Scope.count "pool.rejected"
    | Ok () ->
        if not (Slo.admit slo r.cls) then disp.(i) <- Some Shed
        else begin
          Queue.add (i, r) (queue_of (Bucket.key_of cfg.bucket r.dims));
          if obs then Obs.Scope.gauge "pool.queue_depth" (float_of_int (total_queued ()))
        end
  in
  let admit_arrivals_up_to time =
    let rec go () =
      match !upcoming with
      | (i, r) :: rest when r.arrival_us <= time ->
          upcoming := rest;
          admit i r;
          go ()
      | _ -> ()
    in
    go ()
  in
  let process_failures time =
    let rec go () =
      match !pending_failures with
      | (ft, id) :: rest when ft <= time ->
          pending_failures := rest;
          if id >= 0 && id < Array.length t.pool_replicas then
            Replica.begin_drain t.pool_replicas.(id) ~now:time;
          go ()
      | _ -> ()
    in
    go ()
  in
  let finish_drains time =
    Array.iter (fun r -> Replica.finish_drain_if_due r ~now:time) t.pool_replicas
  in
  let expire_queues time =
    Hashtbl.iter
      (fun _ q ->
        let keep = Queue.create () in
        Queue.iter
          (fun (i, r) ->
            if Slo.deadline_of cfg.slo r.cls ~arrival_us:r.arrival_us < time then begin
              disp.(i) <- Some Expired;
              Slo.dequeue slo r.cls;
              Slo.note_expired slo r.cls
            end
            else Queue.add (i, r) keep)
          q;
        Queue.clear q;
        Queue.transfer keep q)
      queues
  in
  let any_free time =
    Array.exists (fun r -> Replica.is_free r ~now:time) t.pool_replicas
  in
  let launchable time q =
    match Queue.peek_opt q with
    | None -> false
    | Some (_, oldest) ->
        Queue.length q >= cfg.max_batch
        || oldest.arrival_us +. cfg.max_wait_us <= time
        || !upcoming = []
  in
  (* bucket selection: class priority of the oldest request, then
     earliest absolute deadline, then earliest arrival, then key *)
  let pick_bucket time =
    List.fold_left
      (fun best key ->
        let q = Hashtbl.find queues key in
        if not (launchable time q) then best
        else
          let _, oldest = Queue.peek q in
          let cand =
            ( -(Slo.target_of cfg.slo oldest.cls).Slo.priority,
              Slo.deadline_of cfg.slo oldest.cls ~arrival_us:oldest.arrival_us,
              oldest.arrival_us,
              key )
          in
          match best with
          | Some (b, _) when b <= cand -> best
          | _ -> Some (cand, (key, q)))
      None !order
    |> Option.map snd
  in
  let pop_batch q =
    let rec go acc k =
      if k >= cfg.max_batch || Queue.is_empty q then List.rev acc
      else
        let (i, r) = Queue.pop q in
        Slo.dequeue slo r.cls;
        go ((i, r) :: acc) (k + 1)
    in
    go [] 0
  in
  let dispatch_batch time (members : (int * request) list) =
    let member_dims = List.map (fun (_, r) -> r.dims) members in
    let exact = Bucket.exact_env ~batch_dim:cfg.batch_dim member_dims in
    let padded = Bucket.padded_env cfg.bucket ~batch_dim:cfg.batch_dim member_dims in
    let e_actual =
      List.fold_left (fun acc d -> acc + Bucket.elements d) 0 member_dims
    in
    let e_exact = Bucket.elements exact and e_padded = Bucket.elements padded in
    (* pad-vs-exact: hard waste cap, then the measured cost model —
       padded repeats across batches (likely warm somewhere in the
       pool), exact executes fewer elements but is usually cold *)
    let use_padded =
      if Bucket.waste ~actual:e_actual ~padded:e_padded > cfg.max_pad_waste then false
      else if t.us_per_element <= 0.0 then true
      else begin
        let warm_somewhere key =
          Array.exists
            (fun rep -> Replica.alive rep && Replica.is_warm rep key)
            t.pool_replicas
        in
        let cost elems key =
          (t.us_per_element *. float_of_int elems)
          +. (if warm_somewhere key then 0.0 else cfg.cold_warmup_us)
        in
        cost e_padded (Bucket.env_key padded) <= cost e_exact (Bucket.env_key exact)
      end
    in
    let env = if use_padded then padded else exact in
    let key = Bucket.env_key env in
    match Router.pick t.router ~now:time ~key t.pool_replicas with
    | None -> assert false (* only called when a replica is free *)
    | Some rep -> (
        let count = List.length members in
        match Session.serve_result rep.Replica.session env with
        | Error _ ->
            List.iter (fun (i, _) -> disp.(i) <- Some Failed) members;
            if obs then Obs.Scope.count ~by:count "pool.failed"
        | Ok (profile, path) ->
            let cold = not (Replica.is_warm rep key) in
            let base_us = Profile.total_us profile in
            let service_us = base_us +. (if cold then cfg.cold_warmup_us else 0.0) in
            let done_at = time +. service_us in
            rep.Replica.free_at <- done_at;
            if done_at > !last_done then last_done := done_at;
            note_rate t ~service_us:base_us ~elements:(Bucket.elements env);
            Replica.note_batch rep ~key ~elements:(Bucket.elements env)
              ~service_us ~requests:count ~cold;
            incr batches;
            batched_total := !batched_total + count;
            if use_padded then incr padded_batches else incr exact_batches;
            if cold then incr cold_total;
            actual_elems := !actual_elems + e_actual;
            padded_elems := !padded_elems + Bucket.elements env;
            let d = match path with `Compiled -> Served | `Fallback -> Fell_back in
            List.iter
              (fun (i, r) ->
                disp.(i) <- Some d;
                lats.(i) <- done_at -. r.arrival_us)
              members;
            if obs then begin
              Obs.Scope.count ~by:count
                (Printf.sprintf "pool.%s" (disposition_to_string d));
              Obs.Trace.set_track_name Obs.Trace.global (2 + rep.Replica.id)
                (Printf.sprintf "replica%d" rep.Replica.id);
              Obs.Scope.span ~track:(2 + rep.Replica.id) ~cat:"batch" ~ts:time
                ~dur_us:service_us
                ~args:
                  [
                    ("env", key);
                    ("n", string_of_int count);
                    ("padded", string_of_bool use_padded);
                    ("cold", string_of_bool cold);
                    ("path", disposition_to_string d);
                  ]
                (Printf.sprintf "batch@%s" key)
            end)
  in
  let try_dispatch time =
    if not (any_free time) then false
    else
      match pick_bucket time with
      | None -> false
      | Some (_, q) ->
          dispatch_batch time (pop_batch q);
          true
  in
  let fail_everything_left () =
    Hashtbl.iter
      (fun _ q ->
        Queue.iter
          (fun (i, r) ->
            disp.(i) <- Some Failed;
            Slo.dequeue slo r.cls)
          q;
        Queue.clear q)
      queues;
    List.iter (fun (i, _) -> disp.(i) <- Some Failed) !upcoming;
    upcoming := []
  in
  let next_event () =
    let t_arr = match !upcoming with [] -> infinity | (_, r) :: _ -> r.arrival_us in
    let t_free =
      Array.fold_left
        (fun acc r ->
          if r.Replica.health <> Replica.Dead && r.Replica.free_at > !now then
            Float.min acc r.Replica.free_at
          else acc)
        infinity t.pool_replicas
    in
    let t_window =
      if not (any_free !now) then infinity
      else
        Hashtbl.fold
          (fun _ q acc ->
            match Queue.peek_opt q with
            | None -> acc
            | Some (_, oldest) -> Float.min acc (oldest.arrival_us +. cfg.max_wait_us))
          queues infinity
    in
    let t_fail = match !pending_failures with [] -> infinity | (ft, _) :: _ -> ft in
    Float.min (Float.min t_arr t_free) (Float.min t_window t_fail)
  in
  let rec loop () =
    process_failures !now;
    finish_drains !now;
    admit_arrivals_up_to !now;
    expire_queues !now;
    while try_dispatch !now do () done;
    if !upcoming = [] && total_queued () = 0 then ()
    else if not (Array.exists (fun r -> r.Replica.health <> Replica.Dead) t.pool_replicas)
    then fail_everything_left ()
    else
      let next = next_event () in
      if next = infinity then fail_everything_left ()
      else begin
        now := Float.max !now next;
        loop ()
      end
  in
  loop ();
  let final =
    Array.map (function Some d -> d | None -> Failed) disp
  in
  let lost = Array.fold_left (fun a d -> if d = None then a + 1 else a) 0 disp in
  let count d = Array.fold_left (fun a x -> if x = d then a + 1 else a) 0 final in
  let classes =
    List.map
      (fun c ->
        let idxs = ref [] in
        Array.iteri (fun i r -> if r.cls = c then idxs := i :: !idxs) arr;
        let deadline = (Slo.target_of cfg.slo c).Slo.deadline_us in
        let completed, met, shed_c, exp_c =
          List.fold_left
            (fun (co, me, sh, ex) i ->
              match final.(i) with
              | Served | Fell_back ->
                  (co + 1, (if lats.(i) <= deadline then me + 1 else me), sh, ex)
              | Shed -> (co, me, sh + 1, ex)
              | Expired -> (co, me, sh, ex + 1)
              | _ -> (co, me, sh, ex))
            (0, 0, 0, 0) !idxs
        in
        {
          cr_class = c;
          cr_arrivals = List.length !idxs;
          cr_completed = completed;
          cr_slo_met = met;
          cr_shed = shed_c;
          cr_expired = exp_c;
        })
      Slo.all_classes
  in
  {
    dispositions = final;
    latencies_us = lats;
    served = count Served;
    fell_back = count Fell_back;
    shed = count Shed;
    expired = count Expired;
    rejected = count Rejected;
    failed = count Failed;
    lost;
    batches = !batches;
    mean_batch =
      (if !batches = 0 then 0.0
       else float_of_int !batched_total /. float_of_int !batches);
    padded_batches = !padded_batches;
    exact_batches = !exact_batches;
    cold_dispatches = !cold_total;
    actual_elements = !actual_elems;
    padded_elements = !padded_elems;
    makespan_us = !last_done;
    classes;
    replicas =
      Array.to_list
        (Array.map
           (fun (r : Replica.t) ->
             {
               rr_id = r.Replica.id;
               rr_device = r.Replica.device.Gpusim.Device.name;
               rr_health = Replica.health_to_string r.Replica.health;
               rr_batches = r.Replica.batches;
               rr_requests = r.Replica.requests;
               rr_cold_dispatches = r.Replica.cold_dispatches;
               rr_busy_us = r.Replica.busy_us;
             })
           t.pool_replicas);
  }
