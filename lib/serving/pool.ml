(* Multi-replica serving pool: discrete-event simulation over virtual
   time. The pool owns the layers above a single session — admission,
   bucketed batching, pad-vs-exact decision, routing, failure drain —
   and accounts for every request exactly once.

   The event loop is chronological: at each event time it delivers
   faults, admits arrivals, expires stale queue entries, then
   dispatches batches while any (free replica, launchable bucket) pair
   exists. The next event is the earliest of: next arrival, a busy
   replica freeing, a waiting bucket's batching window closing, or a
   scheduled fault. *)

module Q = Workloads.Queueing
module Session = Disc.Session
module Profile = Runtime.Profile

type config = {
  devices : Gpusim.Device.t list;
  batch_dim : string;
  max_batch : int;
  max_wait_us : float;
  bucket : Bucket.spec;
  slo : Slo.policy;
  router : Router.policy;
  max_pad_waste : float;
  cold_warmup_us : float;
  hbm_budget : int option;
      (* per-replica device-memory budget in bytes; None = unbudgeted *)
  mem_aware : bool;
      (* gate dispatches on the symbolic peak estimate (shrink batches to
         fit the budget). false = memory-blind: dispatch anyway and lose
         any batch whose estimated peak overruns the budget (OOM). *)
}

let default_config ~devices ~batch_dim ~bucket =
  {
    devices;
    batch_dim;
    max_batch = 8;
    max_wait_us = 2000.0;
    bucket;
    slo = Slo.default_policy;
    router = Router.Warmth_aware;
    max_pad_waste = 0.5;
    cold_warmup_us = 1500.0;
    hbm_budget = None;
    mem_aware = true;
  }

type request = { arrival_us : float; dims : (string * int) list; cls : Slo.cls }

let of_arrivals ?(cls = Slo.Standard) (arrivals : Q.request list) =
  List.map (fun (r : Q.request) -> { arrival_us = r.Q.arrival_us; dims = r.Q.dims; cls }) arrivals

let with_class_mix ~seed (mix : (Slo.cls * float) list) reqs =
  if mix = [] then invalid_arg "Pool.with_class_mix: empty mix";
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 mix in
  let rng = Workloads.Trace.create_rng seed in
  List.map
    (fun r ->
      let x = Workloads.Trace.float01 rng *. total in
      let rec choose acc = function
        | [ (c, _) ] -> c
        | (c, w) :: rest -> if x < acc +. w then c else choose (acc +. w) rest
        | [] -> assert false
      in
      { r with cls = choose 0.0 mix })
    reqs

(* Adaptive control loop: every [control_interval_us] of virtual time
   the pool decays its shape statistics, re-derives the bucket policy
   from observed mass, pushes likely-value hints into the replica
   sessions, cross-pollinates hot-signature warmth (the artifacts are in
   the shared cache — only the first replica paid the cold dispatch),
   and lets the autoscaler add or drain replicas. *)
type adaptive = {
  control_interval_us : float;
  rebucket : bool; (* re-derive Bucket.Edges from observed traffic *)
  max_edges : int; (* quantile-placed boundaries per dim *)
  edge_quantum : int; (* snap derived boundaries up to a multiple *)
  decay : float; (* per-tick multiplicative decay of shape stats *)
  hint_k : int; (* likely values per dim / hot signatures to pre-warm *)
  autoscale : Autoscaler.config option;
  prewarm_us : float; (* spin-up delay before a minted replica takes traffic *)
}

let default_adaptive =
  {
    control_interval_us = 20_000.0;
    rebucket = true;
    max_edges = 4;
    edge_quantum = 4;
    decay = 0.9;
    hint_k = 4;
    autoscale = None;
    prewarm_us = 5_000.0;
  }

(* Resilience knobs: what the pool does *about* failure, as opposed to
   [~failures]/[~chaos] which inject it. [no_resilience] is the ablation
   baseline the chaos bench compares against. *)
type resilience = {
  redispatch : bool; (* re-queue a crashed replica's in-flight requests *)
  max_redispatch : int; (* per-request retry budget across crashes *)
  hedge : bool; (* duplicate slow Interactive batches, first result wins *)
  hedge_after_us : float; (* age before a Degraded-hosted batch is hedged *)
  watchdog : bool; (* EWMA straggler detection -> Degraded/Healthy *)
  watchdog_factor : float; (* rate above this multiple of pool rate degrades *)
  watchdog_recover : float; (* rate back under this multiple restores *)
  watchdog_min_batches : int; (* measurements before the watchdog may judge *)
  brownout : bool; (* stepwise degradation ladder under overload *)
  brownout_up_backlog : float; (* queued-per-replica that arms a step up *)
  brownout_down_backlog : float; (* queued-per-replica that arms a step down *)
  brownout_up_hold_us : float; (* sustained overload before stepping up *)
  brownout_down_hold_us : float; (* sustained calm before stepping down *)
}

let default_resilience =
  {
    redispatch = true;
    max_redispatch = 2;
    hedge = true;
    hedge_after_us = 10_000.0;
    watchdog = true;
    watchdog_factor = 2.5;
    watchdog_recover = 1.3;
    watchdog_min_batches = 3;
    brownout = true;
    brownout_up_backlog = 12.0;
    brownout_down_backlog = 4.0;
    brownout_up_hold_us = 15_000.0;
    brownout_down_hold_us = 20_000.0;
  }

let no_resilience =
  {
    redispatch = false;
    max_redispatch = 0;
    hedge = false;
    hedge_after_us = infinity;
    watchdog = false;
    watchdog_factor = infinity;
    watchdog_recover = infinity;
    watchdog_min_batches = max_int;
    brownout = false;
    brownout_up_backlog = infinity;
    brownout_down_backlog = 0.0;
    brownout_up_hold_us = infinity;
    brownout_down_hold_us = infinity;
  }

type disposition = Served | Fell_back | Shed | Expired | Rejected | Failed

let disposition_to_string = function
  | Served -> "served"
  | Fell_back -> "fell_back"
  | Shed -> "shed"
  | Expired -> "expired"
  | Rejected -> "rejected"
  | Failed -> "failed"

type class_report = {
  cr_class : Slo.cls;
  cr_arrivals : int;
  cr_completed : int;
  cr_slo_met : int;
  cr_shed : int;
  cr_expired : int;
}

type replica_report = {
  rr_id : int;
  rr_device : string;
  rr_health : string;
  rr_batches : int;
  rr_requests : int;
  rr_cold_dispatches : int;
  rr_busy_us : float;
  rr_mem_peak_bytes : int; (* high-water estimated batch peak dispatched here *)
  rr_ooms : int; (* batches lost to budget overrun (memory-blind mode) *)
}

type adaptive_report = {
  ar_ticks : int;
  ar_rebuckets : int;
  ar_minted : int; (* hot signatures pre-warmed across replicas *)
  ar_hints : int; (* likely values ingested into replica sessions *)
  ar_scale_ups : int;
  ar_scale_downs : int;
  ar_final_replicas : int; (* alive when the trace drained *)
  ar_final_spec : string; (* Bucket.spec_to_string of the final policy *)
  ar_likely : (string * int list) list; (* last hint set pushed *)
}

let adaptive_summary_to_string (a : adaptive_report) =
  Printf.sprintf
    "adaptive: ticks=%d rebuckets=%d minted=%d hints=%d scale_ups=%d scale_downs=%d \
     alive=%d\nbucket: %s\nlikely: %s"
    a.ar_ticks a.ar_rebuckets a.ar_minted a.ar_hints a.ar_scale_ups a.ar_scale_downs
    a.ar_final_replicas
    (if a.ar_final_spec = "" then "(none)" else a.ar_final_spec)
    (if a.ar_likely = [] then "(none)"
     else
       String.concat " "
         (List.map
            (fun (n, vs) ->
              Printf.sprintf "%s=%s" n (String.concat "," (List.map string_of_int vs)))
            a.ar_likely))

type resilience_report = {
  xr_crashes : int;
  xr_recoveries : int; (* completed Recovering -> Healthy spin-ups *)
  xr_redispatched : int; (* requests re-queued off a crashed replica *)
  xr_hedges : int;
  xr_hedge_wins : int; (* hedge finished before its primary *)
  xr_degraded_events : int; (* watchdog Healthy -> Degraded verdicts *)
  xr_brownout_transitions : int;
  xr_brownout_max : int;
  xr_brownout_final : int;
  xr_brownout_us : float; (* virtual time spent above level 0 *)
  xr_last_level0_us : float; (* last return to level 0; 0 if never left *)
  xr_spike_requests : int; (* extra arrivals injected by chaos spikes *)
  xr_cache_corruptions : int; (* cache keys destroyed by chaos *)
}

let resilience_summary_to_string (x : resilience_report) =
  Printf.sprintf
    "chaos: crashes=%d recoveries=%d redispatched=%d hedges=%d hedge_wins=%d degraded=%d \
     spikes=%d cache_corruptions=%d\n\
     brownout: transitions=%d max=%d brownout_final=%d time_browned=%.0fus last_level0=%.0fus"
    x.xr_crashes x.xr_recoveries x.xr_redispatched x.xr_hedges x.xr_hedge_wins
    x.xr_degraded_events x.xr_spike_requests x.xr_cache_corruptions x.xr_brownout_transitions
    x.xr_brownout_max x.xr_brownout_final x.xr_brownout_us x.xr_last_level0_us

(* Memory accounting under an HBM budget ([Some] in [report.mem] iff
   [cfg.hbm_budget] was set). The estimated peaks come from the symbolic
   estimator ({!Disc.Session.mem_peak_bytes}) evaluated at each batch's
   dispatch env — the same number the admission gate and the replica
   overrun check consult, so a memory-aware pool can never dispatch a
   batch it would then count as an OOM. *)
type mem_report = {
  mr_budget_bytes : int;
  mr_est_peak_bytes : int; (* largest estimated batch peak dispatched *)
  mr_capped : int; (* batch members bumped (re-queued at front) to fit the budget *)
  mr_forced_exact : int; (* pad->exact flips because padding overran the budget *)
  mr_rejected : int; (* single requests whose estimate alone exceeds the budget *)
  mr_oom : int; (* batches lost to budget overrun (memory-blind mode only) *)
  mr_pressure_ticks : int; (* adaptive control ticks under sustained pressure *)
}

let mem_summary_to_string (m : mem_report) =
  Printf.sprintf
    "mem: budget=%.1fMB est_peak=%.1fMB capped=%d forced_exact=%d rejected=%d oom=%d \
     pressure_ticks=%d"
    (float_of_int m.mr_budget_bytes /. 1.0e6)
    (float_of_int m.mr_est_peak_bytes /. 1.0e6)
    m.mr_capped m.mr_forced_exact m.mr_rejected m.mr_oom m.mr_pressure_ticks

type report = {
  dispositions : disposition array;
  latencies_us : float array;
  served : int;
  fell_back : int;
  shed : int;
  expired : int;
  rejected : int;
  failed : int;
  lost : int;
  batches : int;
  mean_batch : float;
  padded_batches : int;
  exact_batches : int;
  cold_dispatches : int;
  actual_elements : int;
  padded_elements : int;
  makespan_us : float;
  peak_queued : int; (* high-water mark of the total queued backlog *)
  time_monotone : bool; (* event loop never stepped virtual time backwards *)
  classes : class_report list;
  replicas : replica_report list;
  adaptive : adaptive_report option; (* Some iff run with ~adaptive *)
  resilience : resilience_report; (* all-zero unless chaos/resilience engaged *)
  mem : mem_report option; (* Some iff cfg.hbm_budget was set *)
}

let padding_waste (r : report) =
  Bucket.waste ~actual:r.actual_elements ~padded:r.padded_elements

let completed_latencies (r : report) =
  Array.of_list
    (List.filter (fun l -> not (Float.is_nan l)) (Array.to_list r.latencies_us))

let percentile = Q.percentile

let report_to_string (r : report) =
  let lats = completed_latencies r in
  Printf.sprintf
    "served=%d fell_back=%d shed=%d expired=%d rejected=%d failed=%d lost=%d \
     batches=%d mean_batch=%.1f (padded=%d exact=%d cold=%d) pad_waste=%.1f%% \
     p50=%.0fus p99=%.0fus makespan=%.0fus"
    r.served r.fell_back r.shed r.expired r.rejected r.failed r.lost r.batches r.mean_batch
    r.padded_batches r.exact_batches r.cold_dispatches
    (100.0 *. padding_waste r)
    (percentile lats 0.5) (percentile lats 0.99) r.makespan_us

type t = {
  cfg : config;
  mutable pool_replicas : Replica.t array; (* grows on adaptive scale-up *)
  router : Router.t;
  pool_cache : Disc.Compile_cache.t;
  expected : string list; (* dim names a request must bind (model dims minus batch) *)
  mutable us_per_element : float; (* measured service rate for the pad-vs-exact model *)
  mint : id:int -> Replica.t; (* scale-up: new session through the shared cache *)
  stats : Shape_stats.t; (* observed shape distribution (adaptive runs) *)
  mutable cur_bucket : Bucket.spec; (* live policy; starts as cfg.bucket *)
}

let replicas t = t.pool_replicas
let cache t = t.pool_cache
let config t = t.cfg
let shape_stats t = t.stats
let current_bucket t = t.cur_bucket

let create ?options ?session_policy ?fault_config ?cache cfg build =
  if cfg.devices = [] then invalid_arg "Pool.create: empty device list";
  let shared = match cache with Some c -> c | None -> Disc.Compile_cache.create () in
  let surface = build () in
  let dim_names = List.map fst surface.Models.Common.dims in
  if not (List.mem cfg.batch_dim dim_names) then
    invalid_arg
      (Printf.sprintf "Pool.create: model %s has no batch dim %s"
         surface.Models.Common.name cfg.batch_dim);
  let mint ~id =
    let device = List.nth cfg.devices (id mod List.length cfg.devices) in
    let fault_config =
      Option.map (fun fc -> { fc with Gpusim.Fault.seed = fc.Gpusim.Fault.seed + (31 * id) })
        fault_config
    in
    let session =
      Session.create ?options ?policy:session_policy ?fault_config ~device ~cache:shared
        (build ())
    in
    Replica.create ~id session
  in
  {
    cfg;
    pool_replicas = Array.init (List.length cfg.devices) (fun i -> mint ~id:i);
    router = Router.create cfg.router;
    pool_cache = shared;
    expected = List.filter (fun n -> n <> cfg.batch_dim) dim_names;
    us_per_element = 0.0;
    mint;
    stats = Shape_stats.create ();
    cur_bucket = cfg.bucket;
  }

(* --- the event loop ------------------------------------------------------- *)

let ewma_alpha = 0.3

let note_rate t ~service_us ~elements =
  if elements > 0 then begin
    let rate = service_us /. float_of_int elements in
    t.us_per_element <-
      (if t.us_per_element <= 0.0 then rate
       else (ewma_alpha *. rate) +. ((1.0 -. ewma_alpha) *. t.us_per_element))
  end

(* A dispatched batch whose completion is still in the future. Requests
   acquire their disposition when the batch *completes*, not when it
   launches — the window in which a crash can strand them, and the unit
   of hedged re-dispatch. [if_hedge]/[if_hedge_of] tie a primary and its
   hedge together; whichever completes first finalizes the members and
   cancels the partner (the partner's replica stays busy: duplicated
   work is wasted, never double-counted).

   All fields are mutable because the records live in a reusable slab
   (see the hot-path comment below): a launch fills a recycled record
   instead of allocating one, so a million-request run's event loop
   allocates inflight state proportional to peak concurrency, not to
   batch count. Hedge links are ids with -1 for "none" — an [int option]
   would re-box on every recycle. *)
type inflight = {
  mutable if_id : int;
  mutable if_members : (int * request) list;
  mutable if_key : string;
  mutable if_env : (string * int) list;
  mutable if_rep : Replica.t;
  mutable if_started : float;
  mutable if_done : float;
  mutable if_use_padded : bool;
  mutable if_path : [ `Compiled | `Fallback ];
  mutable if_hedge_of : int; (* primary id iff this is a hedge; -1 = primary *)
  mutable if_hedge : int; (* hedge id launched for this primary; -1 = none *)
  mutable if_active : bool; (* slot holds a live (launched, unprocessed) batch *)
  mutable if_cancelled : bool;
}

(* --- hot-path queue structures --------------------------------------------

   Scale discipline (ROADMAP item 5): the event loop must not allocate
   per request. Per-bucket queues hold request *indexes* in a growable
   int ring (power-of-two capacity) instead of boxed (index, request)
   tuples in a [Queue.t]; each bucket caches a lower bound on its
   members' earliest deadline so the per-event expiry sweep skips every
   bucket that cannot contain an expired entry (the old sweep rebuilt
   every queue at every event); the backlog total is an incrementally
   maintained counter instead of a fold over the queue table; and a
   dims -> bucket-queue memo absorbs the [Bucket.key_of] string build
   on the admission path (invalidated whenever the live bucket policy
   re-keys). *)
module Iq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 16 (-1); head = 0; len = 0 }
  let length q = q.len

  let grow q =
    let cap = Array.length q.buf in
    let buf' = Array.make (2 * cap) (-1) in
    Array.blit q.buf q.head buf' 0 (cap - q.head);
    Array.blit q.buf 0 buf' (cap - q.head) q.head;
    q.buf <- buf';
    q.head <- 0

  let push q x =
    if q.len = Array.length q.buf then grow q;
    q.buf.((q.head + q.len) land (Array.length q.buf - 1)) <- x;
    q.len <- q.len + 1

  (* Re-queue at the head: a request bumped from a batch to fit the
     memory budget keeps its place in line instead of starting over. *)
  let push_front q x =
    if q.len = Array.length q.buf then grow q;
    q.head <- (q.head - 1) land (Array.length q.buf - 1);
    q.buf.(q.head) <- x;
    q.len <- q.len + 1

  let peek q = q.buf.(q.head)

  let pop q =
    let x = q.buf.(q.head) in
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    x

  let clear q =
    q.head <- 0;
    q.len <- 0

  let iter f q =
    let mask = Array.length q.buf - 1 in
    for k = 0 to q.len - 1 do
      f q.buf.((q.head + k) land mask)
    done

  (* Keep entries satisfying [pred], preserving order; [pred] may
     side-effect on dropped entries (the expiry sweep does). *)
  let filter_in_place pred q =
    let mask = Array.length q.buf - 1 in
    let kept = ref 0 in
    for k = 0 to q.len - 1 do
      let x = q.buf.((q.head + k) land mask) in
      if pred x then begin
        q.buf.((q.head + !kept) land mask) <- x;
        incr kept
      end
    done;
    q.len <- !kept
end

(* One bucket queue. [bq_min_deadline] is a conservative lower bound:
   pushes tighten it, pops may leave it stale-low, so a sweep can fire
   with nothing to expire (it then recomputes the exact min) but can
   never miss an expired entry. *)
type bq = {
  bq_key : string;
  bq_q : Iq.t;
  mutable bq_min_deadline : float; (* infinity when nothing bounds it *)
}

(* Int-coded dispositions for the hot path: writing [Some Served] into
   an option array allocates a box per request; an int does not. Code 0
   is "still pending / in flight" and maps to [Failed] (= lost) if it
   survives to the end of the run. *)
let d_pending = 0
let d_served = 1
let d_fell_back = 2
let d_shed = 3
let d_expired = 4
let d_rejected = 5
let d_failed = 6

let run ?(failures = []) ?adaptive ?chaos ?(resilience = no_resilience) t
    (reqs : request list) : report =
  let cfg = t.cfg in
  (* chaos spike traffic merges with the organic trace before indexing,
     so spiked requests are first-class: admitted, tracked, reported *)
  let spike_reqs =
    match chaos with
    | None -> []
    | Some sc ->
        List.map
          (fun (at, dims, cls) ->
            let dname, v = match dims with (n, v) :: _ -> (n, v) | [] -> ("", 1) in
            {
              arrival_us = at;
              dims = List.map (fun n -> (n, if n = dname then v else 1)) t.expected;
              cls;
            })
          (Chaos.spike_arrivals sc)
  in
  (* Traces are normally generated in arrival order ({!Trace_gen}
     guarantees strictly increasing times), and sorting a 10^6-element
     boxed list dominates the whole run's cost at scale. Detect
     sortedness in O(n) and skip the sort; fall back to the stable
     [List.sort] (identical tie order) for unsorted or spiked input. *)
  let rec is_sorted prev = function
    | [] -> true
    | r :: rest -> prev <= r.arrival_us && is_sorted r.arrival_us rest
  in
  let arr =
    match spike_reqs with
    | [] when is_sorted neg_infinity reqs -> Array.of_list reqs
    | _ ->
        Array.of_list
          (List.sort (fun a b -> compare a.arrival_us b.arrival_us) (reqs @ spike_reqs))
  in
  let n = Array.length arr in
  let dispc = Array.make n d_pending in
  let lats = Array.make n Float.nan in
  let slo = Slo.create cfg.slo in
  let obs = Obs.Scope.on () in
  (* metrics cells resolved once — the hot path updates cells, never
     re-resolves names (and never builds a name with Printf) *)
  let mreg = if obs then Obs.Metrics.global else Obs.Metrics.create () in
  let g_depth = Obs.Metrics.gauge mreg "pool.queue_depth" in
  let c_served = Obs.Metrics.counter mreg "pool.served" in
  let c_fell_back = Obs.Metrics.counter mreg "pool.fell_back" in
  let c_rejected = Obs.Metrics.counter mreg "pool.rejected" in
  let c_failed = Obs.Metrics.counter mreg "pool.failed" in
  let h_latency = Obs.Metrics.histogram mreg "pool.latency_us" in
  (* per-class SLO targets as flat arrays: the scheduler consults
     priority and deadline on every pick, [List.assoc] is off the path *)
  let cls_i = function Slo.Interactive -> 0 | Slo.Standard -> 1 | Slo.Best_effort -> 2 in
  let ddl_rel = Array.make 3 0.0 in
  let prio_a = Array.make 3 0 in
  List.iter
    (fun c ->
      let tg = Slo.target_of cfg.slo c in
      ddl_rel.(cls_i c) <- tg.Slo.deadline_us;
      prio_a.(cls_i c) <- tg.Slo.priority)
    Slo.all_classes;
  (* absolute deadline per request, precomputed once (same formula as
     [Slo.deadline_of]): expiry and bucket picking read an array cell *)
  let dls =
    Array.init n (fun i -> arr.(i).arrival_us +. ddl_rel.(cls_i arr.(i).cls))
  in
  (* per-bucket queues, in first-seen key order for determinism *)
  let dummy_bq = { bq_key = ""; bq_q = Iq.create (); bq_min_deadline = infinity } in
  let bvec = ref (Array.make 8 dummy_bq) in
  let bcount = ref 0 in
  let by_key : (string, bq) Hashtbl.t = Hashtbl.create 16 in
  let route : ((string * int) list, bq) Hashtbl.t = Hashtbl.create 64 in
  let route_cap = 8192 in
  let queued_total = ref 0 in
  let peak_queued = ref 0 in
  let mono = ref true in
  let bq_add b =
    if !bcount = Array.length !bvec then begin
      let v = Array.make (2 * Array.length !bvec) b in
      Array.blit !bvec 0 v 0 !bcount;
      bvec := v
    end;
    (!bvec).(!bcount) <- b;
    incr bcount
  in
  let bq_of_key key =
    try Hashtbl.find by_key key
    with Not_found ->
      let b = { bq_key = key; bq_q = Iq.create (); bq_min_deadline = infinity } in
      Hashtbl.replace by_key key b;
      bq_add b;
      b
  in
  let bq_of_dims dims =
    try Hashtbl.find route dims
    with Not_found ->
      let b = bq_of_key (Bucket.key_of t.cur_bucket dims) in
      if Hashtbl.length route >= route_cap then Hashtbl.reset route;
      Hashtbl.add route dims b;
      b
  in
  let enqueue i (r : request) =
    let b = bq_of_dims r.dims in
    Iq.push b.bq_q i;
    if dls.(i) < b.bq_min_deadline then b.bq_min_deadline <- dls.(i);
    incr queued_total;
    if !queued_total > !peak_queued then peak_queued := !queued_total;
    if obs then Obs.Metrics.set_gauge g_depth (float_of_int !queued_total)
  in
  let cursor = ref 0 in
  let pending_failures =
    ref (List.sort (fun (a, _) (b, _) -> compare a b) failures)
  in
  let pending_chaos =
    ref (match chaos with None -> [] | Some sc -> Chaos.deliveries sc)
  in
  let chaos_seed = match chaos with Some sc -> sc.Chaos.seed | None -> 0 in
  let now = ref 0.0 in
  let last_done = ref 0.0 in
  let batches = ref 0 and batched_total = ref 0 in
  let padded_batches = ref 0 and exact_batches = ref 0 and cold_total = ref 0 in
  let actual_elems = ref 0 and padded_elems = ref 0 in
  (* adaptive-control state (inert on non-adaptive runs) *)
  let scaler = Option.bind adaptive (fun a -> Option.map Autoscaler.create a.autoscale) in
  let next_tick =
    ref (match adaptive with Some a -> a.control_interval_us | None -> infinity)
  in
  let ticks = ref 0 and rebuckets = ref 0 and minted = ref 0 and hints_total = ref 0 in
  let last_hints = ref [] in
  let win_total = ref 0 and win_met = ref 0 in
  let alive_count () =
    Array.fold_left (fun n r -> if Replica.alive r then n + 1 else n) 0 t.pool_replicas
  in
  (* autoscaler capacity: Degraded and Recovering replicas count (slow
     or seconds-away capacity is not absent capacity) *)
  let capacity_count () =
    Array.fold_left
      (fun n r -> if Replica.counts_capacity r then n + 1 else n)
      0 t.pool_replicas
  in
  let dispatchable_count () =
    Array.fold_left
      (fun n r -> if Replica.dispatchable r then n + 1 else n)
      0 t.pool_replicas
  in
  (* --- memory budget state -------------------------------------------------
     One estimator serves the whole pool: the estimate is a pure function
     of the dispatch env (replica 0's session memoizes per env), and the
     admission gate and the overrun check read the same number — a
     memory-aware pool can never dispatch a batch it would then OOM. *)
  Array.iter (fun r -> r.Replica.hbm_budget <- cfg.hbm_budget) t.pool_replicas;
  let est_env =
    match cfg.hbm_budget with
    | None -> fun _ -> None
    | Some _ ->
        let session0 = t.pool_replicas.(0).Replica.session in
        fun env -> Session.mem_peak_bytes session0 env
  in
  let mem_capped = ref 0 and mem_forced_exact = ref 0 and mem_rejected = ref 0 in
  let mem_oom = ref 0 and mem_est_peak = ref 0 and pressure_ticks = ref 0 in
  (* pressure window: dispatches since the last control tick, and how
     many of them were estimated near (>85% of) the budget *)
  let win_disp = ref 0 and win_hi = ref 0 in
  (* --- inflight slab --------------------------------------------------------
     Scale discipline (ROADMAP item 5): inflight records are recycled
     through a growable slab instead of consed onto a list. Slots
     [0, slab_n) are in launch order; iterating backwards reproduces the
     old list's newest-first order exactly (hedge scans and crash
     re-queues are order-sensitive). Allocation happens only when every
     slot is live: [if_alloc] first compacts retired slots out (keeping
     the spare records for reuse), and only doubles the array if the
     slab is genuinely full of in-flight batches. *)
  let new_inflight () =
    {
      if_id = -1;
      if_members = [];
      if_key = "";
      if_env = [];
      if_rep = t.pool_replicas.(0);
      if_started = 0.0;
      if_done = 0.0;
      if_use_padded = false;
      if_path = `Compiled;
      if_hedge_of = -1;
      if_hedge = -1;
      if_active = false;
      if_cancelled = false;
    }
  in
  let slab = ref (Array.init 16 (fun _ -> new_inflight ())) in
  let slab_n = ref 0 in
  let slab_compact () =
    let s = !slab in
    let k = ref 0 in
    for j = 0 to !slab_n - 1 do
      let fl = s.(j) in
      if fl.if_active then begin
        if j <> !k then begin
          (* swap, not overwrite: the retired record at [k] stays in the
             slab for reuse *)
          s.(j) <- s.(!k);
          s.(!k) <- fl
        end;
        incr k
      end
    done;
    slab_n := !k
  in
  let if_alloc () =
    if !slab_n = Array.length !slab then begin
      slab_compact ();
      if !slab_n = Array.length !slab then
        slab :=
          Array.init
            (2 * Array.length !slab)
            (fun j -> if j < !slab_n then (!slab).(j) else new_inflight ())
    end;
    let fl = (!slab).(!slab_n) in
    incr slab_n;
    fl.if_active <- true;
    fl.if_cancelled <- false;
    fl.if_hedge_of <- -1;
    fl.if_hedge <- -1;
    fl.if_members <- [];
    fl
  in
  (* resilience state *)
  let next_if_id = ref 0 in
  let retry : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let base_rates : (int, float * float) Hashtbl.t = Hashtbl.create 8 in
  let xr_crashes = ref 0 and xr_recoveries = ref 0 and xr_redispatched = ref 0 in
  let xr_hedges = ref 0 and xr_hedge_wins = ref 0 and xr_degraded = ref 0 in
  let xr_corruptions = ref 0 in
  (* brownout ladder state: level 0 (normal) .. 4 (widest degradation);
     a pending step must hold for its hysteresis window before firing *)
  let bro_level = ref 0 in
  let bro_pending : (int * float) option ref = ref None (* direction, armed_at *) in
  let bro_transitions = ref 0 and bro_max = ref 0 in
  let bro_us = ref 0.0 and bro_since = ref 0.0 and last_level0 = ref 0.0 in
  let saved_bucket = ref None in
  let eff_max_batch () = if !bro_level >= 3 then max 1 (cfg.max_batch / 2) else cfg.max_batch in
  let eff_pad_cap () =
    if !bro_level >= 2 then cfg.max_pad_waste /. 2.0 else cfg.max_pad_waste
  in

  (* admission-time validation, equivalent to
     [Workloads.Queueing.validate_request] (missing / unknown /
     duplicate / non-positive dims all reject) but without building the
     per-request name and filter lists that check allocates *)
  let expected_arr = Array.of_list t.expected in
  let n_expected = Array.length expected_arr in
  let rec name_expected name k =
    k < n_expected && (String.equal expected_arr.(k) name || name_expected name (k + 1))
  in
  let rec dup_name name = function
    | [] -> false
    | (n2, _) :: rest -> String.equal n2 name || dup_name name rest
  in
  let rec dims_ok = function
    | [] -> true
    | (name, v) :: rest ->
        v >= 1 && name_expected name 0 && (not (dup_name name rest)) && dims_ok rest
  in
  let rec dims_len acc = function [] -> acc | _ :: rest -> dims_len (acc + 1) rest in
  let valid_request (r : request) = dims_len 0 r.dims = n_expected && dims_ok r.dims in

  let admit (i : int) (r : request) =
    if not (valid_request r) then begin
      dispc.(i) <- d_rejected;
      if obs then Obs.Metrics.inc c_rejected
    end
    else begin
      (* well-formed traffic feeds the distribution estimator even when
         shed: offered load is what the bucket policy must fit *)
      if adaptive <> None then Shape_stats.observe t.stats r.dims;
      if !bro_level >= 1 && r.cls = Slo.Best_effort then begin
        (* brownout L1: background traffic sheds outright *)
        dispc.(i) <- d_shed;
        Slo.note_shed slo r.cls
      end
      else if not (Slo.admit slo r.cls) then dispc.(i) <- d_shed
      else enqueue i r
    end
  in
  let admit_arrivals_up_to time =
    while !cursor < n && arr.(!cursor).arrival_us <= time do
      let i = !cursor in
      cursor := i + 1;
      admit i arr.(i)
    done
  in
  let process_failures time =
    let rec go () =
      match !pending_failures with
      | (ft, id) :: rest when ft <= time ->
          pending_failures := rest;
          if id >= 0 && id < Array.length t.pool_replicas then
            Replica.begin_drain t.pool_replicas.(id) ~now:time;
          go ()
      | _ -> ()
    in
    go ()
  in
  let finish_drains time =
    Array.iter (fun r -> Replica.finish_drain_if_due r ~now:time) t.pool_replicas
  in
  let finish_recovers time =
    Array.iter
      (fun r ->
        if r.Replica.health = Replica.Recovering && r.Replica.free_at <= time then
          incr xr_recoveries;
        Replica.finish_recover_if_due r ~now:time)
      t.pool_replicas
  in
  (* Expiry sweep: only buckets whose cached min-deadline bound has been
     crossed are walked; everything else is a float compare. *)
  let expire_queues time =
    for bi = 0 to !bcount - 1 do
      let b = (!bvec).(bi) in
      if Iq.length b.bq_q > 0 && b.bq_min_deadline < time then begin
        let new_min = ref infinity in
        Iq.filter_in_place
          (fun i ->
            if dls.(i) < time then begin
              let r = arr.(i) in
              dispc.(i) <- d_expired;
              Slo.dequeue slo r.cls;
              Slo.note_expired slo r.cls;
              queued_total := !queued_total - 1;
              false
            end
            else begin
              if dls.(i) < !new_min then new_min := dls.(i);
              true
            end)
          b.bq_q;
        b.bq_min_deadline <- !new_min
      end
    done
  in
  let any_free time =
    let reps = t.pool_replicas in
    let nr = Array.length reps in
    let rec go i = i < nr && (Replica.is_free reps.(i) ~now:time || go (i + 1)) in
    go 0
  in
  let launchable time b =
    Iq.length b.bq_q > 0
    && (Iq.length b.bq_q >= eff_max_batch ()
        || arr.(Iq.peek b.bq_q).arrival_us +. cfg.max_wait_us <= time
        || !cursor >= n)
  in
  (* bucket selection: class priority of the oldest request, then
     earliest absolute deadline, then earliest arrival, then key — the
     same lexicographic order the old fold compared as a 4-tuple, kept
     as scalar running-best state so picking allocates nothing *)
  let pick_bucket time =
    let best = ref (-1) in
    let bp = ref 0 and bd = ref infinity and ba = ref infinity in
    for bi = 0 to !bcount - 1 do
      let b = (!bvec).(bi) in
      if launchable time b then begin
        let oldest = Iq.peek b.bq_q in
        let oreq = arr.(oldest) in
        let p = -prio_a.(cls_i oreq.cls) in
        let d = dls.(oldest) in
        let a = oreq.arrival_us in
        let better =
          !best < 0 || p < !bp
          || (p = !bp
              && (d < !bd
                  || (d = !bd
                      && (a < !ba
                          || (a = !ba
                              && String.compare b.bq_key (!bvec).(!best).bq_key < 0)))))
        in
        if better then begin
          best := bi;
          bp := p;
          bd := d;
          ba := a
        end
      end
    done;
    !best
  in
  let pop_batch b =
    let cap = eff_max_batch () in
    let rec go acc k =
      if k >= cap || Iq.length b.bq_q = 0 then List.rev acc
      else begin
        let i = Iq.pop b.bq_q in
        let r = arr.(i) in
        Slo.dequeue slo r.cls;
        queued_total := !queued_total - 1;
        go ((i, r) :: acc) (k + 1)
      end
    in
    go [] 0
  in
  (* Launch a batch (primary or hedge) on a chosen replica. Work and
     replica accounting happen here, at dispatch; request dispositions
     are deferred to completion (the batch is in flight until then).
     A hedge that fails to launch leaves its members to the primary. *)
  let launch time ~(members : (int * request) list) ~env ~key ~use_padded ~e_actual
      ~hedge_of rep =
    let count = List.length members in
    let est_bytes = est_env env in
    match (cfg.hbm_budget, est_bytes) with
    | Some budget, Some est when est > budget ->
        (* only reachable memory-blind: the aware gate never hands this
           function an over-budget env. The batch's working set does not
           fit the device — it is lost to an OOM, not served. *)
        incr mem_oom;
        rep.Replica.ooms <- rep.Replica.ooms + 1;
        if est > rep.Replica.mem_peak_bytes then rep.Replica.mem_peak_bytes <- est;
        if est > !mem_est_peak then mem_est_peak := est;
        if hedge_of < 0 then begin
          List.iter
            (fun (i, _) -> if dispc.(i) = d_pending then dispc.(i) <- d_failed)
            members;
          if obs then Obs.Metrics.inc ~by:count c_failed
        end;
        None
    | _ -> (
        match Session.serve_result rep.Replica.session env with
        | Error _ ->
            if hedge_of < 0 then begin
              List.iter
                (fun (i, _) -> if dispc.(i) = d_pending then dispc.(i) <- d_failed)
                members;
              if obs then Obs.Metrics.inc ~by:count c_failed
            end;
            None
        | Ok (profile, path) ->
        let cold = not (Replica.is_warm rep key) in
        let env_elems = Bucket.elements env in
        let base_us = Profile.total_us profile in
        let service_us =
          (base_us *. rep.Replica.slow_factor)
          +. (if cold then cfg.cold_warmup_us else 0.0)
        in
        let done_at = time +. service_us in
        rep.Replica.free_at <- done_at;
        if done_at > !last_done then last_done := done_at;
            (* the pool's rate model tracks nominal (unslowed) cost — that
               is what the watchdog compares a straggler's EWMA against *)
            if hedge_of < 0 then note_rate t ~service_us:base_us ~elements:env_elems;
            Replica.note_batch rep ~key ~elements:env_elems ~service_us
              ~rate_us:(base_us *. rep.Replica.slow_factor) ~requests:count ~cold ();
            incr batches;
            batched_total := !batched_total + count;
            if use_padded then incr padded_batches else incr exact_batches;
            if cold then incr cold_total;
            (* hedges duplicate work; keep them out of the padding-waste
               metric, which measures batcher decisions *)
            if hedge_of < 0 then begin
              actual_elems := !actual_elems + e_actual;
              padded_elems := !padded_elems + env_elems
            end;
            (match est_bytes with
            | Some est ->
                rep.Replica.mem_last_bytes <- est;
                if est > rep.Replica.mem_peak_bytes then
                  rep.Replica.mem_peak_bytes <- est;
                if est > !mem_est_peak then mem_est_peak := est;
                if hedge_of < 0 then begin
                  incr win_disp;
                  match cfg.hbm_budget with
                  | Some b when 20 * est > 17 * b -> incr win_hi (* est > 85% of budget *)
                  | _ -> ()
                end
            | None -> ());
            let fl = if_alloc () in
            fl.if_id <- !next_if_id;
            fl.if_members <- members;
            fl.if_key <- key;
            fl.if_env <- env;
            fl.if_rep <- rep;
            fl.if_started <- time;
            fl.if_done <- done_at;
            fl.if_use_padded <- use_padded;
            fl.if_path <- path;
            fl.if_hedge_of <- hedge_of;
            incr next_if_id;
            if obs then begin
              Obs.Trace.set_track_name Obs.Trace.global (2 + rep.Replica.id)
                (Printf.sprintf "replica%d" rep.Replica.id);
              Obs.Scope.span ~track:(2 + rep.Replica.id) ~cat:"batch" ~ts:time
                ~dur_us:service_us
                ~args:
                  [
                    ("env", key);
                    ("n", string_of_int count);
                    ("padded", string_of_bool use_padded);
                    ("cold", string_of_bool cold);
                    ("hedge", string_of_bool (hedge_of >= 0));
                  ]
                (Printf.sprintf "batch@%s" key)
            end;
            Some fl)
  in
  (* EWMA straggler watchdog, judged at each batch completion. The
     reference is the *median* of the alive replicas' measured rates —
     self-normalizing, so systematic costs every replica pays (cold
     warmups, small batches) cancel out, and a single straggler cannot
     drag the reference up. Needs at least two measured peers. *)
  let watchdog_reference () =
    let rates =
      Array.to_list t.pool_replicas
      |> List.filter_map (fun r ->
             if Replica.alive r && r.Replica.us_per_element > 0.0 then
               Some r.Replica.us_per_element
             else None)
      |> List.sort compare
    in
    match rates with
    | [] | [ _ ] -> None
    | _ -> Some (List.nth rates (List.length rates / 2))
  in
  let watchdog_check rep =
    if resilience.watchdog && rep.Replica.batches >= resilience.watchdog_min_batches
    then
      match watchdog_reference () with
      | None -> ()
      | Some median ->
          let r = rep.Replica.us_per_element in
          if
            rep.Replica.health = Replica.Healthy
            && r > resilience.watchdog_factor *. median
          then begin
            Replica.degrade rep;
            incr xr_degraded;
            if obs then
              Obs.Scope.span ~cat:"watchdog" ~dur_us:0.0
                ~args:
                  [
                    ("replica", string_of_int rep.Replica.id);
                    ("rate", Printf.sprintf "%.3f" r);
                    ("median_rate", Printf.sprintf "%.3f" median);
                  ]
                "watchdog_degrade"
          end
          else if
            rep.Replica.health = Replica.Degraded
            && r <= resilience.watchdog_recover *. median
          then Replica.restore rep
  in
  let finalize (fl : inflight) =
    let code = match fl.if_path with `Compiled -> d_served | `Fallback -> d_fell_back in
    let k = ref 0 in
    List.iter
      (fun (i, r) ->
        if dispc.(i) = d_pending then begin
          dispc.(i) <- code;
          lats.(i) <- fl.if_done -. r.arrival_us;
          incr win_total;
          if lats.(i) <= ddl_rel.(cls_i r.cls) then incr win_met;
          if obs then Obs.Metrics.observe h_latency lats.(i);
          incr k
        end)
      fl.if_members;
    if obs && !k > 0 then
      Obs.Metrics.inc ~by:!k (if code = d_served then c_served else c_fell_back)
  in
  let any_due time =
    let rec go j =
      j < !slab_n
      &&
      let fl = (!slab).(j) in
      (fl.if_active && (not fl.if_cancelled) && fl.if_done <= time) || go (j + 1)
    in
    go 0
  in
  let min_done () =
    let acc = ref infinity in
    for j = 0 to !slab_n - 1 do
      let fl = (!slab).(j) in
      if fl.if_active && (not fl.if_cancelled) && fl.if_done < !acc then
        acc := fl.if_done
    done;
    !acc
  in
  let cancel_by_id id =
    for j = 0 to !slab_n - 1 do
      let o = (!slab).(j) in
      if o.if_active && o.if_id = id then o.if_cancelled <- true
    done
  in
  (* Finalize every due batch in (done, id) order. First result wins a
     hedged pair: the winner finalizes the members and cancels the
     partner; the partner's replica stays busy until its own free_at
     (duplicated work is wasted, not double-counted). The [any_due]
     guard keeps drained event-loop iterations allocation-free. *)
  let complete_inflights time =
    if any_due time then begin
      let due = ref [] in
      (* collect oldest-first so the cons-list is newest-first, matching
         the retired list-partition's order before the sort *)
      for j = 0 to !slab_n - 1 do
        let fl = (!slab).(j) in
        if fl.if_active && (not fl.if_cancelled) && fl.if_done <= time then
          due := fl :: !due
      done;
      let due =
        List.sort (fun a b -> compare (a.if_done, a.if_id) (b.if_done, b.if_id)) !due
      in
      List.iter
        (fun fl ->
          if not fl.if_cancelled then begin
            finalize fl;
            (if fl.if_hedge_of >= 0 then begin
               incr xr_hedge_wins;
               cancel_by_id fl.if_hedge_of
             end
             else if fl.if_hedge >= 0 then cancel_by_id fl.if_hedge);
            watchdog_check fl.if_rep;
            fl.if_cancelled <- true (* processed: retired by the sweep below *)
          end)
        due;
      (* retire everything completed or cancelled; slots recycle via
         [if_alloc]'s compaction *)
      for j = 0 to !slab_n - 1 do
        let fl = (!slab).(j) in
        if fl.if_active && fl.if_cancelled then fl.if_active <- false
      done
    end
  in
  (* Batch planning for one member set: pad-vs-exact decision plus the
     element accounting the waste metric needs. *)
  let plan_batch (members : (int * request) list) =
    let member_dims = List.map (fun (_, r) -> r.dims) members in
    let exact = Bucket.exact_env ~batch_dim:cfg.batch_dim member_dims in
    let padded = Bucket.padded_env t.cur_bucket ~batch_dim:cfg.batch_dim member_dims in
    let e_actual =
      List.fold_left (fun acc d -> acc + Bucket.elements d) 0 member_dims
    in
    let e_exact = Bucket.elements exact and e_padded = Bucket.elements padded in
    (* pad-vs-exact: hard waste cap, then the measured cost model —
       padded repeats across batches (likely warm somewhere in the
       pool), exact executes fewer elements but is usually cold *)
    let use_padded =
      let warm_somewhere key =
        Array.exists
          (fun rep -> Replica.alive rep && Replica.is_warm rep key)
          t.pool_replicas
      in
      let waste = Bucket.waste ~actual:e_actual ~padded:e_padded in
      if waste > cfg.max_pad_waste then false
      else if waste > eff_pad_cap () && warm_somewhere (Bucket.env_key exact) then
        (* brownout L2+: shed padding beyond the tightened cap, but only
           onto an exact signature that is already warm somewhere —
           minting cold compiles during a capacity crunch would deepen
           the overload the ladder is trying to relieve *)
        false
      else if t.us_per_element <= 0.0 then true
      else begin
        let cost elems key =
          (t.us_per_element *. float_of_int elems)
          +. (if warm_somewhere key then 0.0 else cfg.cold_warmup_us)
        in
        cost e_padded (Bucket.env_key padded) <= cost e_exact (Bucket.env_key exact)
      end
    in
    (exact, padded, e_actual, use_padded)
  in
  (* Bump the newest member out of an over-budget batch, back to the
     FRONT of its bucket queue: it keeps its place in line and forms the
     head of the next batch instead of starting over (or worse,
     reordering behind younger arrivals). *)
  let requeue_front (i, (r : request)) =
    Slo.requeue slo r.cls;
    let b = bq_of_dims r.dims in
    Iq.push_front b.bq_q i;
    if dls.(i) < b.bq_min_deadline then b.bq_min_deadline <- dls.(i);
    incr queued_total;
    if !queued_total > !peak_queued then peak_queued := !queued_total;
    if obs then Obs.Metrics.set_gauge g_depth (float_of_int !queued_total)
  in
  (* Memory admission gate (aware mode only): shrink the batch until its
     estimated peak fits the budget. Preference order — keep the padded
     env (warmth!), fall back to the exact env (smaller working set),
     then drop members newest-first. A single request that does not fit
     even exact is structurally refused (counted in [mr_rejected]): no
     smaller dispatch exists, and blind-dispatching it would OOM. *)
  let rec fit_batch (members : (int * request) list) =
    match members with
    | [] -> None
    | _ -> (
        let exact, padded, e_actual, use_padded = plan_batch members in
        let env = if use_padded then padded else exact in
        match cfg.hbm_budget with
        | Some budget when cfg.mem_aware -> (
            let fits e = match est_env e with Some b -> b <= budget | None -> true in
            if fits env then Some (members, env, use_padded, e_actual)
            else if use_padded && fits exact then begin
              incr mem_forced_exact;
              incr win_hi;
              (* running at the budget edge is pressure *)
              Some (members, exact, false, e_actual)
            end
            else
              match List.rev members with
              | [] -> None
              | last :: rev_rest ->
                  if rev_rest = [] then begin
                    let i, _ = last in
                    dispc.(i) <- d_rejected;
                    incr mem_rejected;
                    if obs then Obs.Metrics.inc c_rejected;
                    None
                  end
                  else begin
                    requeue_front last;
                    incr mem_capped;
                    incr win_hi;
                    fit_batch (List.rev rev_rest)
                  end)
        | _ -> Some (members, env, use_padded, e_actual))
  in
  let dispatch_batch time (members : (int * request) list) =
    match fit_batch members with
    | None -> ()
    | Some (members, env, use_padded, e_actual) -> (
        let key = Bucket.env_key env in
        match Router.pick t.router ~now:time ~key t.pool_replicas with
        | None -> assert false (* only called when a replica is free *)
        | Some rep ->
            ignore
              (launch time ~members ~env ~key ~use_padded ~e_actual ~hedge_of:(-1) rep))
  in
  let try_dispatch time =
    if not (any_free time) then false
    else begin
      let bi = pick_bucket time in
      if bi < 0 then false
      else begin
        dispatch_batch time (pop_batch (!bvec).(bi));
        true
      end
    end
  in
  let fail_everything_left () =
    for bi = 0 to !bcount - 1 do
      let b = (!bvec).(bi) in
      Iq.iter
        (fun i ->
          dispc.(i) <- d_failed;
          Slo.dequeue slo arr.(i).cls)
        b.bq_q;
      Iq.clear b.bq_q;
      b.bq_min_deadline <- infinity
    done;
    queued_total := 0;
    while !cursor < n do
      dispc.(!cursor) <- d_failed;
      cursor := !cursor + 1
    done;
    for j = 0 to !slab_n - 1 do
      let fl = (!slab).(j) in
      if fl.if_active then begin
        if not fl.if_cancelled then begin
          fl.if_cancelled <- true;
          List.iter
            (fun (i, _) -> if dispc.(i) = d_pending then dispc.(i) <- d_failed)
            fl.if_members
        end;
        fl.if_active <- false
      end
    done
  in
  (* --- adaptive control tick ---------------------------------------------- *)
  (* Re-key queued work after a policy change, preserving arrival order.
     SLO queue counters are untouched: the requests stay queued, only
     their bucket membership moves. The dims -> queue memo is dropped
     with the old key table — it memoizes the *current* policy. *)
  let rekey_queues () =
    let entries = ref [] in
    for bi = !bcount - 1 downto 0 do
      Iq.iter (fun i -> entries := i :: !entries) (!bvec).(bi).bq_q
    done;
    let entries = List.sort compare !entries in
    Hashtbl.reset by_key;
    Hashtbl.reset route;
    bcount := 0;
    queued_total := 0;
    List.iter (fun i -> enqueue i arr.(i)) entries
  in
  (* The pool's hottest shape signatures: warmth mass summed across
     alive replicas, heaviest first (ties toward the smaller key). *)
  let pool_hot_keys k =
    let acc = Hashtbl.create 16 in
    Array.iter
      (fun r ->
        if Replica.alive r then
          Hashtbl.iter
            (fun key n ->
              Hashtbl.replace acc key (n + Option.value (Hashtbl.find_opt acc key) ~default:0))
            r.Replica.warmth)
      t.pool_replicas;
    Hashtbl.fold (fun key n l -> (key, n) :: l) acc []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match compare nb na with 0 -> compare ka kb | c -> c)
    |> List.filteri (fun i _ -> i < k)
    |> List.map fst
  in
  (* --- chaos delivery ------------------------------------------------------ *)
  (* Hard crash: the replica dies mid-service. Its in-flight batches are
     cancelled; any member not covered by a live hedge/primary partner
     goes back in its bucket queue (within the per-request retry budget)
     or fails. Nothing is lost, nothing is served twice. *)
  let crash_replica time id =
    if id >= 0 && id < Array.length t.pool_replicas then begin
      let rep = t.pool_replicas.(id) in
      if rep.Replica.health <> Replica.Dead then begin
        incr xr_crashes;
        (* Pass 1: cancel every live batch on the crashed replica first,
           so the coverage scan below (partner lookup among survivors)
           cannot count a doomed partner on the same replica as cover —
           the semantics of the retired list-partition, which removed all
           of [mine] before checking coverage in [rest]. Consing
           oldest-first slab order gives the newest-first processing
           order of the old list (crashes are rare; this path may
           allocate). *)
        let mine = ref [] in
        for j = 0 to !slab_n - 1 do
          let fl = (!slab).(j) in
          if fl.if_active && fl.if_rep == rep && not fl.if_cancelled then begin
            fl.if_cancelled <- true;
            mine := fl :: !mine
          end
        done;
        let live_partner id =
          let rec go j =
            j < !slab_n
            &&
            let o = (!slab).(j) in
            (o.if_active && (not o.if_cancelled) && o.if_id = id) || go (j + 1)
          in
          go 0
        in
        (* Pass 2: re-queue or fail the members of every uncovered batch. *)
        List.iter
          (fun fl ->
            let covered =
              if fl.if_hedge_of >= 0 then live_partner fl.if_hedge_of
              else fl.if_hedge >= 0 && live_partner fl.if_hedge
            in
            if not covered then
              List.iter
                (fun (i, r) ->
                  if dispc.(i) = d_pending then begin
                    let tries = Option.value (Hashtbl.find_opt retry i) ~default:0 in
                    if resilience.redispatch && tries < resilience.max_redispatch then begin
                      Hashtbl.replace retry i (tries + 1);
                      Slo.requeue slo r.cls;
                      enqueue i r;
                      incr xr_redispatched
                    end
                    else begin
                      dispc.(i) <- d_failed;
                      if obs then Obs.Metrics.inc c_failed
                    end
                  end)
                fl.if_members;
            fl.if_active <- false)
          !mine;
        Replica.crash rep ~now:time
      end
    end
  in
  let apply_action time (act : Chaos.action) =
    if obs then
      Obs.Scope.span ~cat:"chaos" ~ts:time ~dur_us:0.0
        ~args:[ ("action", Chaos.action_to_string act) ]
        "chaos";
    let with_rep id f =
      if id >= 0 && id < Array.length t.pool_replicas then f t.pool_replicas.(id)
    in
    match act with
    | Chaos.Kill { replica } -> crash_replica time replica
    | Chaos.Revive { replica; spinup_us } ->
        with_rep replica (fun rep ->
            if rep.Replica.health = Replica.Dead then begin
              Replica.begin_recover rep ~now:time ~spinup_us;
              (* re-warm from the shared cache on the pool's hottest
                 signatures, like a freshly-minted scale-up replica —
                 and re-adopt any tuned schedule plan for its device *)
              ignore (Replica.prewarm rep (pool_hot_keys 8));
              ignore (Session.adopt_tuned_schedules rep.Replica.session)
            end)
    | Chaos.Slow { replica; factor } ->
        with_rep replica (fun rep -> rep.Replica.slow_factor <- factor)
    | Chaos.Unslow { replica } ->
        with_rep replica (fun rep -> rep.Replica.slow_factor <- 1.0)
    | Chaos.Set_faults { replica; kernel_fault_rate; oom_rate } ->
        with_rep replica (fun rep ->
            if not (Hashtbl.mem base_rates replica) then
              Hashtbl.replace base_rates replica
                (Session.fault_rates rep.Replica.session);
            Session.set_fault_rates rep.Replica.session
              ~seed:(chaos_seed + (31 * replica) + 17)
              ~kernel_fault_rate ~oom_rate ())
    | Chaos.Clear_faults { replica } ->
        with_rep replica (fun rep ->
            let k, o =
              Option.value (Hashtbl.find_opt base_rates replica) ~default:(0.0, 0.0)
            in
            Session.set_fault_rates rep.Replica.session ~kernel_fault_rate:k ~oom_rate:o ())
    | Chaos.Corrupt { fraction } ->
        let n = Disc.Compile_cache.corrupt t.pool_cache ~seed:chaos_seed ~fraction in
        xr_corruptions := !xr_corruptions + n;
        (* warmth keyed on the destroyed artifacts is gone too: strip a
           deterministic fraction of each replica's warmth so those
           signatures re-dispatch cold *)
        Array.iter
          (fun rep ->
            if Replica.alive rep then begin
              let keys =
                Hashtbl.fold (fun k _ l -> k :: l) rep.Replica.warmth []
                |> List.sort compare
              in
              List.iteri
                (fun i k ->
                  if
                    Gpusim.Fault.stream_uniform
                      ~seed:(chaos_seed + (7919 * (rep.Replica.id + 1)))
                      ~counter:i
                    < fraction
                  then Hashtbl.remove rep.Replica.warmth k)
                keys
            end)
          t.pool_replicas
  in
  let process_chaos time =
    let rec go () =
      match !pending_chaos with
      | (ct, act) :: rest when ct <= time ->
          pending_chaos := rest;
          apply_action time act;
          go ()
      | _ -> ()
    in
    go ()
  in
  let pending_revive () =
    List.exists (fun (_, a) -> match a with Chaos.Revive _ -> true | _ -> false)
      !pending_chaos
  in
  (* --- hedged re-dispatch -------------------------------------------------- *)
  (* An Interactive batch stuck on a Degraded replica past the hedge
     age gets a duplicate launch on a free Healthy replica; first
     result wins (see [complete_inflights]). One hedge per primary. *)
  let try_hedge time =
    if resilience.hedge then begin
      (* snapshot the candidates before launching anything: a hedge
         launch recycles slab slots (possibly compacting the array), so
         the scan must not interleave with allocation. Newest-first, the
         retired inflight list's order. Allocates only when a Degraded
         replica holds an overdue Interactive batch — a rare chaos
         condition, not the hot path. *)
      let candidates = ref [] in
      for j = 0 to !slab_n - 1 do
        let fl = (!slab).(j) in
        if
          fl.if_active
          && (not fl.if_cancelled)
          && fl.if_hedge_of < 0
          && fl.if_hedge < 0
          && fl.if_done > time
          && fl.if_rep.Replica.health = Replica.Degraded
          && time -. fl.if_started >= resilience.hedge_after_us -. 1e-9
          && List.exists
               (fun (i, r) -> dispc.(i) = d_pending && r.cls = Slo.Interactive)
               fl.if_members
        then candidates := fl :: !candidates
      done;
      List.iter
        (fun fl ->
          match Router.pick t.router ~now:time ~key:fl.if_key t.pool_replicas with
          | Some rep when rep.Replica.health = Replica.Healthy && rep != fl.if_rep -> (
              match
                launch time ~members:fl.if_members ~env:fl.if_env ~key:fl.if_key
                  ~use_padded:fl.if_use_padded ~e_actual:0 ~hedge_of:fl.if_id rep
              with
              | Some h ->
                  fl.if_hedge <- h.if_id;
                  incr xr_hedges;
                  if obs then
                    Obs.Scope.span ~cat:"hedge" ~ts:time ~dur_us:0.0
                      ~args:
                        [
                          ("primary", string_of_int fl.if_rep.Replica.id);
                          ("hedge", string_of_int rep.Replica.id);
                          ("key", fl.if_key);
                        ]
                      "hedge_launch"
              | None -> ())
          | _ -> ())
        !candidates
    end
  in
  (* --- brownout ladder ----------------------------------------------------- *)
  (* Stepwise degradation under sustained overload or capacity loss:
     L1 shed Best_effort at admission; L2 halve the padding cap;
     L3 halve the batch cap; L4 widen the bucket policy. Both edges
     are hysteretic: a step arms when the backlog signal crosses its
     threshold and fires only after holding through the window. *)
  let bro_signal () =
    let d = dispatchable_count () in
    if d = 0 then infinity else float_of_int !queued_total /. float_of_int d
  in
  let bro_apply time lvl' =
    let lvl = !bro_level in
    if lvl' <> lvl then begin
      if lvl' = 4 && lvl = 3 then begin
        saved_bucket := Some t.cur_bucket;
        t.cur_bucket <- Bucket.widen t.cur_bucket;
        rekey_queues ()
      end
      else if lvl = 4 && lvl' = 3 then begin
        (match !saved_bucket with
        | Some b ->
            t.cur_bucket <- b;
            saved_bucket := None
        | None -> ());
        rekey_queues ()
      end;
      if lvl = 0 && lvl' > 0 then bro_since := time;
      if lvl > 0 && lvl' = 0 then begin
        bro_us := !bro_us +. (time -. !bro_since);
        last_level0 := time
      end;
      bro_level := lvl';
      incr bro_transitions;
      if lvl' > !bro_max then bro_max := lvl';
      if obs then begin
        Obs.Scope.gauge "pool.brownout" (float_of_int lvl');
        Obs.Scope.span ~cat:"brownout" ~ts:time ~dur_us:0.0
          ~args:
            [
              ("from", string_of_int lvl);
              ("to", string_of_int lvl');
              ("signal", Printf.sprintf "%.1f" (bro_signal ()));
            ]
          "brownout"
      end
    end
  in
  let bro_hold d =
    if d > 0 then resilience.brownout_up_hold_us else resilience.brownout_down_hold_us
  in
  let eval_brownout time =
    if resilience.brownout then begin
      let s = bro_signal () in
      let want =
        if s >= resilience.brownout_up_backlog && !bro_level < 4 then 1
        else if s <= resilience.brownout_down_backlog && !bro_level > 0 then -1
        else 0
      in
      match (want, !bro_pending) with
      | 0, _ -> bro_pending := None
      | d, Some (pd, armed) when pd = d ->
          if time -. armed >= bro_hold d -. 1e-9 then begin
            bro_apply time (!bro_level + d);
            bro_pending := (if d = 1 && !bro_level >= 4 then None
                            else if d = -1 && !bro_level <= 0 then None
                            else Some (d, time))
          end
      | d, _ -> bro_pending := Some (d, time)
    end
  in
  let do_tick (a : adaptive) time =
    incr ticks;
    Shape_stats.decay t.stats ~factor:a.decay;
    (* 1. re-derive the bucket policy from observed mass *)
    if a.rebucket && Shape_stats.observations t.stats > 0 then begin
      let spec' =
        Shape_stats.spec ~quantum:a.edge_quantum t.stats ~max_edges:a.max_edges
          ~dims:cfg.bucket
      in
      if spec' <> t.cur_bucket then begin
        t.cur_bucket <- spec';
        incr rebuckets;
        rekey_queues ();
        if obs then Obs.Scope.count "pool.rebucket"
      end
    end;
    (* 2. distribution-constraint ingestion: likely values -> sessions *)
    let hs = Shape_stats.hints ~k:a.hint_k t.stats in
    if hs <> [] then begin
      last_hints := hs;
      let nvals = List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 hs in
      Array.iter
        (fun r ->
          if Replica.alive r then begin
            Session.ingest_hints r.Replica.session hs;
            hints_total := !hints_total + nvals
          end)
        t.pool_replicas
    end;
    (* 3. mint speculative warmth: every alive replica pre-warms on the
       pool's hottest signatures (the artifacts are in the shared cache) *)
    let hot_keys = pool_hot_keys a.hint_k in
    Array.iter
      (fun r -> if Replica.alive r then minted := !minted + Replica.prewarm r hot_keys)
      t.pool_replicas;
    (* 4. memory-pressure window: a majority of this tick's dispatches
       estimated near (>85% of) the budget, or any capped/forced-exact
       gate event, reads as sustained pressure — more replicas spread
       the same footprint, so it feeds the autoscaler as a scale-up
       signal (and a scale-down veto) *)
    let mem_pressure =
      cfg.hbm_budget <> None && !win_hi > 0 && 2 * !win_hi > !win_disp
    in
    if mem_pressure then incr pressure_ticks;
    win_disp := 0;
    win_hi := 0;
    (* 5. autoscale against windowed attainment + backlog + pressure *)
    (match scaler with
    | None -> ()
    | Some asc ->
        let attainment =
          if !win_total = 0 then 1.0
          else float_of_int !win_met /. float_of_int !win_total
        in
        win_total := 0;
        win_met := 0;
        (match
           Autoscaler.decide ~mem_pressure asc ~now:time ~alive:(capacity_count ())
             ~queue_depth:!queued_total ~attainment
         with
        | Autoscaler.Hold -> ()
        | Autoscaler.Scale_up ->
            let rep = t.mint ~id:(Array.length t.pool_replicas) in
            rep.Replica.free_at <- time +. a.prewarm_us;
            rep.Replica.hbm_budget <- cfg.hbm_budget;
            ignore (Replica.prewarm rep hot_keys);
            (* fleet-warm tuned artifacts: a fresh replica adopts any
               schedule plan already tuned for its device *)
            ignore (Session.adopt_tuned_schedules rep.Replica.session);
            t.pool_replicas <- Array.append t.pool_replicas [| rep |]
        | Autoscaler.Scale_down ->
            (* drain the youngest alive replica: warmth seniority stays *)
            let victim = ref None in
            Array.iter (fun r -> if Replica.alive r then victim := Some r) t.pool_replicas;
            Option.iter (fun r -> Replica.begin_drain r ~now:time) !victim);
        if obs then Obs.Scope.gauge "pool.alive_replicas" (float_of_int (alive_count ())));
    if obs then
      Obs.Scope.span ~cat:"control" ~ts:time ~dur_us:0.0
        ~args:
          [
            ("tick", string_of_int !ticks);
            ("bucket", Bucket.spec_to_string t.cur_bucket);
            ("alive", string_of_int (alive_count ()));
          ]
        "adaptive_tick"
  in
  let run_ticks () =
    match adaptive with
    | None -> ()
    | Some a ->
        while !now >= !next_tick -. 1e-9 do
          do_tick a !next_tick;
          next_tick := !next_tick +. a.control_interval_us
        done
  in

  let next_event () =
    let t_arr = if !cursor < n then arr.(!cursor).arrival_us else infinity in
    let reps = t.pool_replicas in
    let t_free = ref infinity in
    for i = 0 to Array.length reps - 1 do
      let r = reps.(i) in
      if
        r.Replica.health <> Replica.Dead
        && r.Replica.free_at > !now
        && r.Replica.free_at < !t_free
      then t_free := r.Replica.free_at
    done;
    let t_window =
      if not (any_free !now) then infinity
      else begin
        let acc = ref infinity in
        for bi = 0 to !bcount - 1 do
          let b = (!bvec).(bi) in
          if Iq.length b.bq_q > 0 then begin
            let w = arr.(Iq.peek b.bq_q).arrival_us +. cfg.max_wait_us in
            if w < !acc then acc := w
          end
        done;
        !acc
      end
    in
    let t_fail = match !pending_failures with [] -> infinity | (ft, _) :: _ -> ft in
    let t_chaos = match !pending_chaos with [] -> infinity | (ct, _) :: _ -> ct in
    let t_complete = min_done () in
    let t_hedge =
      if not resilience.hedge then infinity
      else begin
        let acc = ref infinity in
        for j = 0 to !slab_n - 1 do
          let fl = (!slab).(j) in
          if
            fl.if_active
            && (not fl.if_cancelled)
            && fl.if_hedge_of < 0
            && fl.if_hedge < 0
            && fl.if_rep.Replica.health = Replica.Degraded
            && List.exists
                 (fun (i, r) -> dispc.(i) = d_pending && r.cls = Slo.Interactive)
                 fl.if_members
            (* only a *future* hedge deadline is a wake-up; an attempt
               already due fired in try_hedge this instant and retries
               piggyback on the next real event — otherwise a hedge
               with no eligible peer pins the clock and livelocks *)
            && fl.if_started +. resilience.hedge_after_us > !now
          then acc := Float.min !acc (fl.if_started +. resilience.hedge_after_us)
        done;
        !acc
      end
    in
    let t_brownout =
      if not resilience.brownout then infinity
      else
        match !bro_pending with
        | Some (d, armed) -> armed +. bro_hold d
        | None -> infinity
    in
    let t_tick =
      if adaptive <> None && (!cursor < n || !queued_total > 0) then !next_tick
      else infinity
    in
    Float.min t_arr
      (Float.min !t_free
         (Float.min t_window
            (Float.min t_fail
               (Float.min t_chaos
                  (Float.min t_complete
                     (Float.min t_hedge (Float.min t_brownout t_tick)))))))
  in
  let work_left () =
    !cursor < n || !queued_total > 0
    ||
    let rec any_active j = j < !slab_n && ((!slab).(j).if_active || any_active (j + 1)) in
    any_active 0
  in
  let rec loop () =
    process_chaos !now;
    process_failures !now;
    finish_drains !now;
    finish_recovers !now;
    complete_inflights !now;
    run_ticks ();
    admit_arrivals_up_to !now;
    expire_queues !now;
    while try_dispatch !now do () done;
    eval_brownout !now;
    try_hedge !now;
    if
      (not (work_left ()))
      && ((not resilience.brownout) || !bro_level = 0 || dispatchable_count () = 0)
    then () (* drained — and the brownout ladder has wound back down *)
    else if
      (not (Array.exists (fun r -> r.Replica.health <> Replica.Dead) t.pool_replicas))
      && not (pending_revive ())
    then fail_everything_left ()
    else
      let next = next_event () in
      if next = infinity then begin if work_left () then fail_everything_left () end
      else begin
        (* the event-time invariant the audit layer checks: the next
           event is never in the past (the max is a defensive clamp) *)
        if next < !now then mono := false;
        now := Float.max !now next;
        loop ()
      end
  in
  loop ();
  if !bro_level > 0 then bro_us := !bro_us +. (!now -. !bro_since);
  let final =
    Array.map
      (fun c ->
        if c = d_served then Served
        else if c = d_fell_back then Fell_back
        else if c = d_shed then Shed
        else if c = d_expired then Expired
        else if c = d_rejected then Rejected
        else Failed)
      dispc
  in
  let counts = Array.make 7 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) dispc;
  let lost = counts.(d_pending) in
  (* per-class accounting in one pass (the old per-class index lists
     allocated three cons cells per request) *)
  let cls_arrivals = Array.make 3 0 in
  let cls_completed = Array.make 3 0 in
  let cls_met = Array.make 3 0 in
  let cls_shed = Array.make 3 0 in
  let cls_exp = Array.make 3 0 in
  for i = 0 to n - 1 do
    let ci = cls_i arr.(i).cls in
    cls_arrivals.(ci) <- cls_arrivals.(ci) + 1;
    let c = dispc.(i) in
    if c = d_served || c = d_fell_back then begin
      cls_completed.(ci) <- cls_completed.(ci) + 1;
      if lats.(i) <= ddl_rel.(ci) then cls_met.(ci) <- cls_met.(ci) + 1
    end
    else if c = d_shed then cls_shed.(ci) <- cls_shed.(ci) + 1
    else if c = d_expired then cls_exp.(ci) <- cls_exp.(ci) + 1
  done;
  let classes =
    List.map
      (fun c ->
        let ci = cls_i c in
        {
          cr_class = c;
          cr_arrivals = cls_arrivals.(ci);
          cr_completed = cls_completed.(ci);
          cr_slo_met = cls_met.(ci);
          cr_shed = cls_shed.(ci);
          cr_expired = cls_exp.(ci);
        })
      Slo.all_classes
  in
  {
    dispositions = final;
    latencies_us = lats;
    served = counts.(d_served);
    fell_back = counts.(d_fell_back);
    shed = counts.(d_shed);
    expired = counts.(d_expired);
    rejected = counts.(d_rejected);
    failed = counts.(d_failed) + lost;
    lost;
    batches = !batches;
    mean_batch =
      (if !batches = 0 then 0.0
       else float_of_int !batched_total /. float_of_int !batches);
    padded_batches = !padded_batches;
    exact_batches = !exact_batches;
    cold_dispatches = !cold_total;
    actual_elements = !actual_elems;
    padded_elements = !padded_elems;
    makespan_us = !last_done;
    peak_queued = !peak_queued;
    time_monotone = !mono;
    classes;
    resilience =
      {
        xr_crashes = !xr_crashes;
        xr_recoveries = !xr_recoveries;
        xr_redispatched = !xr_redispatched;
        xr_hedges = !xr_hedges;
        xr_hedge_wins = !xr_hedge_wins;
        xr_degraded_events = !xr_degraded;
        xr_brownout_transitions = !bro_transitions;
        xr_brownout_max = !bro_max;
        xr_brownout_final = !bro_level;
        xr_brownout_us = !bro_us;
        xr_last_level0_us = !last_level0;
        xr_spike_requests =
          (match chaos with Some sc -> Chaos.spike_request_count sc | None -> 0);
        xr_cache_corruptions = !xr_corruptions;
      };
    mem =
      Option.map
        (fun budget ->
          {
            mr_budget_bytes = budget;
            mr_est_peak_bytes = !mem_est_peak;
            mr_capped = !mem_capped;
            mr_forced_exact = !mem_forced_exact;
            mr_rejected = !mem_rejected;
            mr_oom = !mem_oom;
            mr_pressure_ticks = !pressure_ticks;
          })
        cfg.hbm_budget;
    adaptive =
      Option.map
        (fun (_ : adaptive) ->
          {
            ar_ticks = !ticks;
            ar_rebuckets = !rebuckets;
            ar_minted = !minted;
            ar_hints = !hints_total;
            ar_scale_ups = (match scaler with Some s -> Autoscaler.ups s | None -> 0);
            ar_scale_downs = (match scaler with Some s -> Autoscaler.downs s | None -> 0);
            ar_final_replicas = alive_count ();
            ar_final_spec = Bucket.spec_to_string t.cur_bucket;
            ar_likely = !last_hints;
          })
        adaptive;
    replicas =
      Array.to_list
        (Array.map
           (fun (r : Replica.t) ->
             {
               rr_id = r.Replica.id;
               rr_device = r.Replica.device.Gpusim.Device.name;
               rr_health = Replica.health_to_string r.Replica.health;
               rr_batches = r.Replica.batches;
               rr_requests = r.Replica.requests;
               rr_cold_dispatches = r.Replica.cold_dispatches;
               rr_busy_us = r.Replica.busy_us;
               rr_mem_peak_bytes = r.Replica.mem_peak_bytes;
               rr_ooms = r.Replica.ooms;
             })
           t.pool_replicas);
  }
