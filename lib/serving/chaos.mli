(** Scenario-driven fault injection for the serving fleet.

    A chaos scenario is data: a seed plus events pinned to virtual
    time. {!Pool.run} replays it deterministically — spike arrivals and
    corruption victims are counter-hash draws off the scenario seed
    ({!Gpusim.Fault.stream_uniform}), so one (seed, scenario) pair
    injects byte-identical chaos on every run and a chaos failure is a
    reproducible test case.

    The JSON surface ([{"seed":7,"events":[{"type":"crash","at_us":...,
    "replica":0,...},...]}]) is what [discc serve --chaos FILE] loads;
    see [examples/chaos/] for a worked scenario. *)

type event =
  | Crash of { replica : int; recover_after_us : float option; spinup_us : float }
      (** hard-kill the replica mid-service (in-flight work is the
          pool's to re-dispatch); with [recover_after_us] it restarts
          that long after the crash and spends [spinup_us] loading *)
  | Straggle of { replica : int; factor : float; duration_us : float }
      (** service time scaled by [factor >= 1] for the window — the
          watchdog's prey *)
  | Flaky of {
      replica : int;
      kernel_fault_rate : float;
      oom_rate : float;
      duration_us : float;
    }  (** raise the replica session's fault-injection rates for the window *)
  | Spike of {
      duration_us : float;
      requests : int;
      dim : string;
      lo : int;
      hi : int;
      cls : Slo.cls;
    }
      (** [requests] extra arrivals uniform over the window, shapes
          uniform on [dim] in [[lo,hi]], all at class [cls] *)
  | Corrupt_cache of { fraction : float }
      (** destroy about [fraction] of the shared compile cache's keys
          (and the matching replica warmth) — cold recompiles follow *)

type timed = { at_us : float; event : event }

type scenario = { seed : int; events : timed list }

val event_name : event -> string
val event_to_string : event -> string
val scenario_to_string : scenario -> string

val validate : scenario -> (unit, string list) result
(** Every problem in the scenario, not just the first. *)

val to_json : scenario -> Obs.Json.t

val of_json : Obs.Json.t -> (scenario, string) result
(** Parse + {!validate}. *)

val of_string : string -> (scenario, string) result
val load_file : string -> (scenario, string) result
val save_file : string -> scenario -> unit

(** {2 Delivery schedule}

    The pool consumes a scenario as a time-sorted action list: windowed
    events ([Straggle], [Flaky]) expand to a start and an end action,
    [Crash] with a recovery expands to [Kill] + [Revive]. *)

type action =
  | Kill of { replica : int }
  | Revive of { replica : int; spinup_us : float }
  | Slow of { replica : int; factor : float }
  | Unslow of { replica : int }
  | Set_faults of { replica : int; kernel_fault_rate : float; oom_rate : float }
  | Clear_faults of { replica : int }
  | Corrupt of { fraction : float }

val action_to_string : action -> string

val deliveries : scenario -> (float * action) list
(** Time-sorted; simultaneous actions keep scenario order. A pure
    function of the scenario. *)

val spike_arrivals : scenario -> (float * (string * int) list * Slo.cls) list
(** Extra arrivals from every [Spike] event, in generation order (the
    pool merges and sorts them with organic traffic). Deterministic in
    (seed, scenario): each request consumes exactly two counter-hash
    draws from a stream shared across spikes in scenario order. *)

val spike_request_count : scenario -> int
