(** Seeded, deterministic traffic-trace generator for the scale harness.

    A {!spec} is a cycling list of {!segment}s, each a nonhomogeneous
    Poisson arrival process (realized by thinning against the segment's
    peak rate) composing:

    - a {e diurnal} sinusoid modulating the base rate,
    - a {e bursty} Markov-modulated on/off multiplier, and
    - per-segment dim distributions and SLO class mixes, so consecutive
      segments express {e shape drift}.

    Determinism contract: a trace is a pure function of the spec (one
    SplitMix64 stream, consumed forward in time order). In particular
    traces are {e prefix-stable} — [generate s ~n:(n + k)] extends
    [generate s ~n] without changing its first [n] requests — and
    arrival times are strictly increasing. Generated traces compose with
    the chaos layer unchanged: pass them to {!Pool.run} with [~chaos]
    and spike arrivals merge as for any other trace. *)

type burst = {
  mult : float;  (** rate multiplier while the burst is on, >= 1 *)
  mean_on_us : float;  (** mean burst duration *)
  mean_off_us : float;  (** mean gap between bursts *)
}

type segment = {
  duration_us : float;
  qps : float;  (** base rate, requests per second; > 0 *)
  diurnal : float;  (** sinusoid amplitude in [0, 1) *)
  period_us : float;  (** sinusoid period (ignored when [diurnal = 0]) *)
  burst : burst option;
  dims : (string * Workloads.Trace.distribution) list;
  mix : (Slo.cls * float) list;  (** weighted SLO class mix *)
}

type spec = { seed : int; segments : segment list }

val default_mix : (Slo.cls * float) list
(** 25 % Interactive, 50 % Standard, 25 % Best_effort. *)

val validate : spec -> (unit, string) result
(** Structural validation; errors name the offending segment index. *)

val peak_qps : segment -> float
(** The thinning envelope: base rate at diurnal crest under burst. No
    window of a generated trace sustains a higher rate (the property
    tests check this). *)

val trough_qps : segment -> float
(** Base rate at the diurnal trough with the burst off. *)

val spec_peak_qps : spec -> float
(** Max {!peak_qps} over the spec's segments. *)

val generate : spec -> n:int -> Pool.request list
(** The first [n] requests of the endless trace the spec describes, in
    strictly increasing arrival order.
    @raise Invalid_argument when {!validate} rejects the spec. *)

(** {1 Presets} *)

val steady :
  ?mix:(Slo.cls * float) list ->
  seed:int ->
  qps:float ->
  dims:(string * Workloads.Trace.distribution) list ->
  unit ->
  spec
(** Constant-rate Poisson arrivals (the {!Workloads.Queueing}
    generator's shape, expressed as a spec). *)

val diurnal :
  ?mix:(Slo.cls * float) list ->
  ?amplitude:float ->
  ?period_us:float ->
  seed:int ->
  qps:float ->
  dims:(string * Workloads.Trace.distribution) list ->
  unit ->
  spec
(** Sinusoidal load: amplitude 0.6, period 200 ms by default. *)

val bursty :
  ?mix:(Slo.cls * float) list ->
  ?mult:float ->
  ?mean_on_us:float ->
  ?mean_off_us:float ->
  seed:int ->
  qps:float ->
  dims:(string * Workloads.Trace.distribution) list ->
  unit ->
  spec
(** On/off bursts: 4x rate for ~20 ms every ~80 ms by default. *)

val drift :
  ?mix:(Slo.cls * float) list ->
  ?segment_us:float ->
  seed:int ->
  qps:float ->
  dims_a:(string * Workloads.Trace.distribution) list ->
  dims_b:(string * Workloads.Trace.distribution) list ->
  unit ->
  spec
(** Shape drift: the dim distribution alternates between [dims_a] and
    [dims_b] every [segment_us] (default 200 ms). *)

val mixed :
  ?mix:(Slo.cls * float) list ->
  ?segment_us:float ->
  seed:int ->
  qps:float ->
  dims_a:(string * Workloads.Trace.distribution) list ->
  dims_b:(string * Workloads.Trace.distribution) list ->
  unit ->
  spec
(** The scale-bench trace: diurnal + bursts + shape drift composed. *)

val describe : spec -> string
