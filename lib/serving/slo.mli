(** SLO classes and the admission controller.

    Every request carries a class; each class has a relative deadline,
    a scheduling priority, and its own admission bound on queued work.
    Admission is the first gate of the serving pipeline: a class whose
    backlog is at its bound sheds new arrivals immediately (cheap,
    bounded damage) instead of letting them queue past their deadline
    (expensive, unbounded damage) — the overload discipline of
    {!Workloads.Queueing.simulate_server}, applied per class. *)

type cls =
  | Interactive  (** user-facing: tight deadline, highest priority *)
  | Standard  (** default traffic *)
  | Best_effort  (** background: no deadline, first to wait *)

val cls_to_string : cls -> string
val cls_of_string : string -> cls option
val all_classes : cls list

type target = {
  deadline_us : float;  (** relative per-request deadline; [infinity] = none *)
  priority : int;  (** higher dispatches first *)
  queue_bound : int;  (** queued requests of this class beyond are shed *)
}

type policy = (cls * target) list

val default_policy : policy
(** Interactive: 50 ms / prio 2 / bound 64. Standard: 200 ms / prio 1 /
    bound 256. Best_effort: no deadline / prio 0 / bound 1024. *)

val target_of : policy -> cls -> target
(** The class's target, falling back to {!default_policy}. *)

val deadline_of : policy -> cls -> arrival_us:float -> float
(** Absolute deadline of a request ([infinity] when the class has none). *)

type decode_target = {
  ttft_us : float;
      (** time-to-first-token budget: arrival to end of prefill *)
  tpot_us : float;
      (** time-per-output-token budget: gap between consecutive tokens *)
}

type decode_policy = (cls * decode_target) list
(** Token-phase SLOs for autoregressive decoding. A request-level
    deadline doesn't fit a token stream, so the decode scheduler judges
    the prefill phase (TTFT) and the decode phase (per-token TPOT)
    separately per class. *)

val default_decode_policy : decode_policy
(** Interactive: 150 ms TTFT / 40 ms TPOT. Standard: 500 ms / 100 ms.
    Best_effort: unbounded. *)

val decode_target_of : decode_policy -> cls -> decode_target
(** The class's decode target, falling back to
    {!default_decode_policy}. *)

type t
(** Admission-controller state: per-class backlog and shed/expiry
    accounting. *)

val create : policy -> t
val policy : t -> policy

val admit : t -> cls -> bool
(** [true]: the request may queue (backlog incremented). [false]: the
    class is at its bound — shed (counted). *)

val note_shed : t -> cls -> unit
(** Count a shed without touching the backlog — for sheds decided
    outside the queue-bound check (brownout shedding a class outright). *)

val requeue : t -> cls -> unit
(** Put an already-admitted request back in the backlog (crash
    re-dispatch). No bound check: admission happened once. *)

val dequeue : t -> cls -> unit
(** A queued request of the class left the queue (dispatched or
    expired). *)

val note_expired : t -> cls -> unit
val queued : t -> cls -> int
val shed : t -> cls -> int
val expired : t -> cls -> int
