(* The end-to-end BladeDISC pipeline:

     import -> shape propagation (done at construction) -> graph
     cleanup (simplify/CSE/DCE, using shape constraints) -> dynamic
     shape fusion -> compile-time/runtime combined codegen -> RAL
     executable.

   Compile once; run at arbitrary input shapes. *)

module Graph = Ir.Graph
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Executable = Runtime.Executable
module Nd = Tensor.Nd

type options = {
  planner : Planner.config;
  codegen : Kernel.config;
  host_overhead_us : float;
  run_graph_passes : bool;
}

let default_options =
  {
    planner = Planner.default_config;
    codegen = Kernel.default_config;
    host_overhead_us = 0.3;
    run_graph_passes = true;
  }

type compiled = {
  exe : Executable.t;
  plan : Fusion.Cluster.plan;
  pass_stats : Ir.Passes.stats;
  compile_time_ms : float; (* simulated one-off compilation cost *)
}

(* Simulated compilation latency: dominated by per-kernel LLVM-style
   codegen plus per-instruction pass time. BladeDISC pays this exactly
   once per model, independent of runtime shapes. *)
let simulated_compile_time_ms ~num_insts ~num_kernels =
  (float_of_int num_kernels *. 120.0) +. (float_of_int num_insts *. 1.5) +. 400.0

let compile ?(options = default_options) (g : Graph.t) : compiled =
  let pass_stats =
    if options.run_graph_passes then Ir.Passes.run_all g else Ir.Passes.empty_stats ()
  in
  Graph.verify g;
  let plan = Planner.plan ~config:options.planner g in
  let exe =
    Executable.compile ~codegen:options.codegen ~host_overhead_us:options.host_overhead_us g
      plan
  in
  let compile_time_ms =
    simulated_compile_time_ms ~num_insts:(Graph.num_insts g)
      ~num_kernels:(Executable.num_kernels exe)
  in
  { exe; plan; pass_stats; compile_time_ms }

let run ?(device = Gpusim.Device.a10) (c : compiled) (inputs : Nd.t list) :
    Nd.t list * Runtime.Profile.t =
  Executable.run ~device c.exe inputs

let run_result ?(device = Gpusim.Device.a10) ?faults ?despeculate (c : compiled)
    (inputs : Nd.t list) : (Nd.t list * Runtime.Profile.t, Runtime.Error.t) result =
  Executable.run_result ~device ?faults ?despeculate c.exe inputs

let latency_us ?device (c : compiled) (inputs : Nd.t list) : float =
  let _, profile = run ?device c inputs in
  Runtime.Profile.total_us profile

(* Cost-only execution at given dynamic-dimension values (no tensor
   data); the benchmark path. *)
let binding_of_dims (g : Graph.t) (dims : (Symshape.Sym.dim * int) list) =
  let tab = Graph.symtab g in
  let bnd = Symshape.Table.empty_binding () in
  List.iter (fun (d, v) -> Symshape.Table.bind_dim tab bnd d v) dims;
  bnd

let simulate ?(device = Gpusim.Device.a10) (c : compiled) (dims : (Symshape.Sym.dim * int) list)
    : Runtime.Profile.t =
  Executable.simulate ~device c.exe (binding_of_dims c.exe.Executable.g dims)

let simulate_result ?(device = Gpusim.Device.a10) ?faults ?despeculate (c : compiled)
    (dims : (Symshape.Sym.dim * int) list) : (Runtime.Profile.t, Runtime.Error.t) result =
  match binding_of_dims c.exe.Executable.g dims with
  | bnd -> Executable.simulate_result ~device ?faults ?despeculate c.exe bnd
  | exception Symshape.Table.Inconsistent m -> Error (Runtime.Error.Invalid_request m)

let simulated_latency_us ?device (c : compiled) dims =
  Runtime.Profile.total_us (simulate ?device c dims)
