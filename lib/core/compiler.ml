(* The end-to-end BladeDISC pipeline:

     import -> shape propagation (done at construction) -> graph
     cleanup (simplify/CSE/DCE, using shape constraints) -> dynamic
     shape fusion -> compile-time/runtime combined codegen -> RAL
     executable.

   Compile once; run at arbitrary input shapes. *)

module Graph = Ir.Graph
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Executable = Runtime.Executable
module Nd = Tensor.Nd

type options = {
  planner : Planner.config;
  codegen : Kernel.config;
  host_overhead_us : float;
  run_graph_passes : bool;
}

let default_options =
  {
    planner = Planner.default_config;
    codegen = Kernel.default_config;
    host_overhead_us = 0.3;
    run_graph_passes = true;
  }

(* Every field of every nested config, spelled out explicitly: adding a
   field without extending this string is caught by the record-pattern
   exhaustiveness check below, so cache keys can never silently ignore a
   new compilation knob. *)
let options_signature (o : options) : string =
  let { planner; codegen; host_overhead_us; run_graph_passes } = o in
  let {
    Planner.fusion_enabled;
    oracle;
    enable_stitch;
    shared_mem_bytes;
    max_cluster_size;
    enable_horizontal;
  } =
    planner
  in
  let { Kernel.enable_speculation } = codegen in
  Printf.sprintf
    "planner{fusion=%b,oracle=%s,stitch=%b,smem=%d,max_cluster=%s,horizontal=%b};codegen{spec=%b};host_us=%g;passes=%b"
    fusion_enabled
    (match oracle with
    | Planner.Static_only -> "static"
    | Planner.Symbolic_dims -> "symbolic"
    | Planner.Full_constraints -> "full")
    enable_stitch shared_mem_bytes
    (match max_cluster_size with Some n -> string_of_int n | None -> "-")
    enable_horizontal enable_speculation host_overhead_us run_graph_passes

type compiled = {
  exe : Executable.t;
  plan : Fusion.Cluster.plan;
  pass_stats : Ir.Passes.stats;
  compile_time_ms : float; (* simulated one-off compilation cost *)
  phases : (string * float) list; (* per-phase breakdown, sums to compile_time_ms *)
}

(* Simulated compilation latency, decomposed per pipeline phase:
   per-instruction graph passes and fusion planning, per-kernel
   LLVM-style codegen, and a constant executable/RAL build floor.
   BladeDISC pays this exactly once per model, independent of runtime
   shapes. [compile_time_ms] is defined as the sum of the phases, so the
   breakdown always reconciles with the headline number. *)
let simulated_phase_times_ms ~num_insts ~num_kernels =
  let insts = float_of_int num_insts and kernels = float_of_int num_kernels in
  [
    ("graph_passes", insts *. 0.6);
    ("fusion_planning", insts *. 0.5);
    ("codegen", kernels *. 120.0);
    ("executable_build", (insts *. 0.4) +. 400.0);
  ]

let simulated_compile_time_ms ~num_insts ~num_kernels =
  List.fold_left
    (fun acc (_, ms) -> acc +. ms)
    0.0
    (simulated_phase_times_ms ~num_insts ~num_kernels)

let compile ?(options = default_options) (g : Graph.t) : compiled =
  let pass_stats =
    if options.run_graph_passes then Ir.Passes.run_all g else Ir.Passes.empty_stats ()
  in
  Graph.verify g;
  let plan = Planner.plan ~config:options.planner g in
  let exe =
    Executable.compile ~codegen:options.codegen ~host_overhead_us:options.host_overhead_us g
      plan
  in
  let num_insts = Graph.num_insts g and num_kernels = Executable.num_kernels exe in
  let phases = simulated_phase_times_ms ~num_insts ~num_kernels in
  let compile_time_ms = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 phases in
  if Obs.Scope.on () then begin
    Obs.Scope.begin_span ~cat:"compile"
      ~args:
        [
          ("insts", string_of_int num_insts); ("kernels", string_of_int num_kernels);
        ]
      "compile";
    List.iter
      (fun (phase, ms) ->
        Obs.Scope.span ~advance:true ~cat:"compile" ~dur_us:(ms *. 1000.0) phase)
      phases;
    Obs.Scope.end_span ();
    Obs.Scope.count "compile.runs";
    Obs.Scope.count ~by:num_kernels "compile.kernels";
    Obs.Scope.count ~by:num_insts "compile.insts";
    Obs.Scope.observe "compile.total_ms" compile_time_ms
  end;
  { exe; plan; pass_stats; compile_time_ms; phases }

let run ?(device = Gpusim.Device.a10) (c : compiled) (inputs : Nd.t list) :
    Nd.t list * Runtime.Profile.t =
  Executable.run ~device c.exe inputs

let run_result ?(device = Gpusim.Device.a10) ?faults ?despeculate (c : compiled)
    (inputs : Nd.t list) : (Nd.t list * Runtime.Profile.t, Runtime.Error.t) result =
  Executable.run_result ~device ?faults ?despeculate c.exe inputs

let latency_us ?device (c : compiled) (inputs : Nd.t list) : float =
  let _, profile = run ?device c inputs in
  Runtime.Profile.total_us profile

(* Cost-only execution at given dynamic-dimension values (no tensor
   data); the benchmark path. *)
let binding_of_dims (g : Graph.t) (dims : (Symshape.Sym.dim * int) list) =
  let tab = Graph.symtab g in
  let bnd = Symshape.Table.empty_binding () in
  List.iter (fun (d, v) -> Symshape.Table.bind_dim tab bnd d v) dims;
  bnd

let simulate ?(device = Gpusim.Device.a10) (c : compiled) (dims : (Symshape.Sym.dim * int) list)
    : Runtime.Profile.t =
  Executable.simulate ~device c.exe (binding_of_dims c.exe.Executable.g dims)

let simulate_result ?(device = Gpusim.Device.a10) ?faults ?despeculate (c : compiled)
    (dims : (Symshape.Sym.dim * int) list) : (Runtime.Profile.t, Runtime.Error.t) result =
  match binding_of_dims c.exe.Executable.g dims with
  | bnd -> Executable.simulate_result ~device ?faults ?despeculate c.exe bnd
  | exception Symshape.Table.Inconsistent m -> Error (Runtime.Error.Invalid_request m)

let simulated_latency_us ?device (c : compiled) dims =
  Runtime.Profile.total_us (simulate ?device c dims)
