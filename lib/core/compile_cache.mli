(** Compilation-result cache shared across {!Session}s.

    Keyed on the canonical structural fingerprint of the graph
    ({!Ir.Fingerprint}), the named-dynamic-dim binding surface, and the
    full {!Compiler.options_signature} — a hit guarantees the cached
    executable is interchangeable with what a fresh compile would
    produce. Bounded LRU; hit/miss/evict counters are exposed both as
    {!stats} and (when {!Obs.Scope} is enabled) as [cache.*] counters
    plus a [cache.lookup] trace span per lookup.

    With {!attach_dir}, compile records persist to a directory; on the
    next run their presence makes the key {e warm}: the artifact is
    re-materialized in-process (the simulation has no real object code
    to load) but the simulated compile cost is waived
    ([compile_time_ms = 0.]). *)

type t

type outcome =
  | Hit  (** in-memory: artifact reused, nothing recompiled *)
  | Warm_hit  (** persisted record: re-materialized, cost waived *)
  | Miss  (** full compile was paid *)

val outcome_to_string : outcome -> string

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  warm_hits : int;
  invalidations : int;
  corrupt : int;
      (** persisted records quarantined at {!attach_dir} + entries
          destroyed by chaos {!corrupt} *)
  entries : int;
  reductions : int;  (** memory-reduction decisions attached (side table) *)
  schedules : int;  (** tuned schedule plans attached (side table) *)
}

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** [capacity] (default {!default_capacity}) bounds in-memory entries;
    least-recently-used entries are evicted beyond it. *)

val capacity : t -> int
val length : t -> int

val mem : t -> string -> bool
(** Whether a key (from {!key_of}) is resident in memory: the next
    {!find_or_compile} for it is a guaranteed [Hit]. Does not consult
    the warm (persisted) set and does not touch LRU order. *)

val stats : t -> stats
val stats_to_string : stats -> string

val hit_rate : stats -> float
(** [(hits + warm_hits) / lookups], 0 if no lookups. *)

val health_to_string : stats -> string
(** The one cache-health line serving surfaces print: core stats plus
    side-table entry counts (reductions, schedules), the hit rate, and
    a verdict — [healthy], or [UNHEALTHY (n corrupt artifacts
    quarantined)] when any record was quarantined or destroyed. *)

val key_of :
  ?dims:(string * Symshape.Sym.dim) list -> options:Compiler.options -> Ir.Graph.t -> string
(** The cache key: digest of {!Ir.Fingerprint.canonical} (with [dims])
    and {!Compiler.options_signature}. Compute before {!Compiler.compile}
    — graph passes mutate the graph. *)

val find_or_compile :
  t ->
  ?options:Compiler.options ->
  ?dims:(string * Symshape.Sym.dim) list ->
  Ir.Graph.t ->
  Compiler.compiled * (string * Symshape.Sym.dim) list * outcome
(** Returns the compiled artifact, the named dims {e of the cached
    graph} (on a hit these belong to the original graph's symbol table
    and must be used — not the caller's own dims — to bind requests
    against the shared executable), and the lookup outcome. On a miss
    the caller's graph is compiled (mutating it) and inserted. *)

val invalidate : t -> string -> unit
(** Drop a key (by {!key_of}) from memory, the warm set, and the
    attached directory: the next lookup recompiles from scratch.
    Sessions call this when an executable trips de-speculation or
    faults, so a suspect artifact is never served to a fresh session. *)

val attach_dir : t -> string -> unit
(** Create/scan a persistence directory: valid records become warm keys,
    and future misses write records through. Every record is verified —
    parseable JSON, all fields present, [key] matching the file name,
    and a checksum over the payload recomputing to the stored value. A
    corrupt, truncated or foreign record is {e quarantined}: skipped,
    counted in [stats.corrupt] (and the [cache.corrupt] Obs counter),
    and logged to stderr; the rest of the directory loads normally. The
    bad file is left in place for post-mortem. *)

val warm_keys : t -> int
(** Number of warm (persisted, not yet re-materialized) keys known. *)

val store_reduction : t -> key:string -> rung:string -> Mem.Reduce.decision -> unit
(** Attach a memory-reduction decision ({!Mem.Reduce.decide}) to a
    compiled artifact, keyed by (cache key, shape-bucket rung
    signature). A decision is a pure function of (executable,
    rung-ceiling binding), so one decide per fingerprint × rung is
    replayed by every session sharing the artifact. Dropped together
    with the artifact by {!invalidate} and chaos {!corrupt}. *)

val find_reduction : t -> key:string -> rung:string -> Mem.Reduce.decision option

val reductions_cached : t -> int
(** Number of reduction decisions currently attached. *)

val store_schedule : t -> key:string -> bucket:string -> Tune.Plan.t -> unit
(** Attach a tuned schedule plan ({!Tune.Search.plan}) to a compiled
    artifact, keyed by (cache key, ["<device>|<rung sigs>"] bucket
    signature). The tuner is sample-free — a plan is a pure function of
    (executable, device, rung set) — so one search per fingerprint ×
    device × bucket is replayed by every session sharing the artifact
    and adopted by pool replicas on prewarm/revive. Dropped together
    with the artifact by {!invalidate} and chaos {!corrupt}. *)

val find_schedule : t -> key:string -> bucket:string -> Tune.Plan.t option

val find_schedule_for_device : t -> key:string -> device:string -> Tune.Plan.t option
(** Any plan tuned for this artifact on this device regardless of rung
    set — what a freshly prewarmed or revived replica adopts. Picks the
    lexicographically smallest bucket signature, deterministically. *)

val schedules_cached : t -> int
(** Number of tuned schedule plans currently attached. *)

val corrupt : t -> seed:int -> fraction:float -> int
(** Chaos injection: deterministically destroy about [fraction] of the
    cache's keys (live + warm), selected by hashing (seed, sorted-key
    index) so two runs of one scenario corrupt identically. Destroyed
    keys recompile cold on next lookup and count in [stats.corrupt].
    Persisted files are untouched. Returns the number destroyed.
    @raise Invalid_argument if [fraction] is outside [0,1]. *)
