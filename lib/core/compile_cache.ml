(* Compilation-result cache (BladeDISC §6 "compilation cache"): compile
   a computation once, serve it from every session that presents a
   structurally identical graph under identical compiler options.

   Keying. The key digests [Ir.Fingerprint.canonical] — invariant under
   node renumbering / symbol alpha-renaming / dead code — concatenated
   with [Compiler.options_signature], plus the named-dynamic-dims
   binding surface. A hit therefore guarantees both that the cached
   executable computes the same function and that every request-level
   dim name of the requesting session maps onto a canonical symbol of
   the cached graph, so bindings translate mechanically.

   Sharing. [Runtime.Executable.t] is immutable, so one compiled
   artifact is safely shared across sessions; session-local resilience
   state (breakers, de-speculation) never leaks through the cache. When
   a session does trip de-speculation or observes a kernel fault it
   calls {!invalidate} so no *fresh* session starts from a suspect
   artifact.

   Persistence. A cache directory holds one JSON record per key. A
   record's existence marks the key "warm": the artifact itself is
   re-materialized in-process (this is a simulation — there is no real
   object code to mmap), but the simulated compile cost is waived:
   warm hits return [compile_time_ms = 0.]. *)

module Graph = Ir.Graph
module Sym = Symshape.Sym

type entry = {
  compiled : Compiler.compiled;
  dims : (string * Sym.dim) list;
      (* named dynamic dims resolved against the *cached* graph's symbol
         table — the binding surface every sharing session must use *)
  fingerprint : string;
  mutable last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  warm_hits : int;
  invalidations : int;
  entries : int;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  warm : (string, unit) Hashtbl.t;
  mutable dir : string option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable warm_hits : int;
  mutable invalidations : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 32;
    warm = Hashtbl.create 32;
    dir = None;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    warm_hits = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    warm_hits = t.warm_hits;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.table;
  }

let key_of ?(dims = []) ~(options : Compiler.options) (g : Graph.t) : string =
  Digest.to_hex
    (Digest.string
       (Ir.Fingerprint.canonical ~dims g
       ^ "options "
       ^ Compiler.options_signature options))

(* --- persistence ---------------------------------------------------------- *)

let record_path dir key = Filename.concat dir (key ^ ".json")

let write_record dir key (e : entry) =
  let oc = open_out (record_path dir key) in
  Printf.fprintf oc
    "{\n  \"key\": %S,\n  \"fingerprint\": %S,\n  \"compile_time_ms\": %g,\n  \"kernels\": %d,\n  \"dims\": [%s]\n}\n"
    key e.fingerprint e.compiled.Compiler.compile_time_ms
    (Runtime.Executable.num_kernels e.compiled.Compiler.exe)
    (String.concat ", " (List.map (fun (n, _) -> Printf.sprintf "%S" n) e.dims));
  close_out oc

let is_key s =
  String.length s = 32 && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) s

let attach_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".json" then begin
        let key = Filename.chop_suffix f ".json" in
        if is_key key then Hashtbl.replace t.warm key ()
      end)
    (Sys.readdir dir);
  t.dir <- Some dir

let warm_keys t = Hashtbl.length t.warm

(* --- lookup --------------------------------------------------------------- *)

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      if Obs.Scope.on () then Obs.Scope.count "cache.evictions"

type outcome = Hit | Warm_hit | Miss

let outcome_to_string = function Hit -> "hit" | Warm_hit -> "warm_hit" | Miss -> "miss"

(* Warm re-materialization recompiles in-process but must not charge the
   virtual clock or emit compile spans — from the serving system's point
   of view the work was done in a previous run. *)
let compile_silently ~options g =
  let was_on = Obs.Scope.on () in
  Obs.Scope.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Scope.set_enabled was_on)
    (fun () -> Compiler.compile ~options g)

let lookup_span outcome key =
  if Obs.Scope.on () then begin
    Obs.Scope.span ~cat:"cache" ~dur_us:0.0
      ~args:[ ("key", key); ("outcome", outcome_to_string outcome) ]
      "cache.lookup";
    Obs.Scope.count
      (match outcome with
      | Hit -> "cache.hits"
      | Warm_hit -> "cache.warm_hits"
      | Miss -> "cache.misses")
  end

let find_or_compile t ?(options = Compiler.default_options)
    ?(dims : (string * Sym.dim) list = []) (g : Graph.t) :
    Compiler.compiled * (string * Sym.dim) list * outcome =
  (* key + fingerprint must be taken *before* compiling: graph passes
     mutate the instruction list. *)
  let key = key_of ~dims ~options g in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      lookup_span Hit key;
      (e.compiled, e.dims, Hit)
  | None ->
      let fingerprint = Ir.Fingerprint.fingerprint ~dims g in
      let warm = Hashtbl.mem t.warm key in
      let compiled =
        if warm then
          let c = compile_silently ~options g in
          { c with Compiler.compile_time_ms = 0.0; phases = [] }
        else Compiler.compile ~options g
      in
      let e = { compiled; dims; fingerprint; last_used = 0 } in
      touch t e;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table key e;
      let outcome =
        if warm then begin
          t.warm_hits <- t.warm_hits + 1;
          Warm_hit
        end
        else begin
          t.misses <- t.misses + 1;
          Miss
        end
      in
      lookup_span outcome key;
      (match t.dir with
      | Some dir -> ( try write_record dir key e with Sys_error _ -> ())
      | None -> ());
      (compiled, dims, outcome)

let invalidate t key =
  let present = Hashtbl.mem t.table key in
  Hashtbl.remove t.table key;
  let was_warm = Hashtbl.mem t.warm key in
  Hashtbl.remove t.warm key;
  if present || was_warm then begin
    t.invalidations <- t.invalidations + 1;
    if Obs.Scope.on () then Obs.Scope.count "cache.invalidations"
  end;
  match t.dir with
  | Some dir -> ( try Sys.remove (record_path dir key) with Sys_error _ -> ())
  | None -> ()

let stats_to_string (s : stats) =
  Printf.sprintf "hits=%d misses=%d warm_hits=%d evictions=%d invalidations=%d entries=%d"
    s.hits s.misses s.warm_hits s.evictions s.invalidations s.entries

let hit_rate (s : stats) =
  let total = s.hits + s.misses + s.warm_hits in
  if total = 0 then 0.0 else float_of_int (s.hits + s.warm_hits) /. float_of_int total
