(* Compilation-result cache (BladeDISC §6 "compilation cache"): compile
   a computation once, serve it from every session that presents a
   structurally identical graph under identical compiler options.

   Keying. The key digests [Ir.Fingerprint.canonical] — invariant under
   node renumbering / symbol alpha-renaming / dead code — concatenated
   with [Compiler.options_signature], plus the named-dynamic-dims
   binding surface. A hit therefore guarantees both that the cached
   executable computes the same function and that every request-level
   dim name of the requesting session maps onto a canonical symbol of
   the cached graph, so bindings translate mechanically.

   Sharing. [Runtime.Executable.t] is immutable, so one compiled
   artifact is safely shared across sessions; session-local resilience
   state (breakers, de-speculation) never leaks through the cache. When
   a session does trip de-speculation or observes a kernel fault it
   calls {!invalidate} so no *fresh* session starts from a suspect
   artifact.

   Persistence. A cache directory holds one JSON record per key. A
   record's existence marks the key "warm": the artifact itself is
   re-materialized in-process (this is a simulation — there is no real
   object code to mmap), but the simulated compile cost is waived:
   warm hits return [compile_time_ms = 0.]. *)

module Graph = Ir.Graph
module Sym = Symshape.Sym

type entry = {
  compiled : Compiler.compiled;
  dims : (string * Sym.dim) list;
      (* named dynamic dims resolved against the *cached* graph's symbol
         table — the binding surface every sharing session must use *)
  fingerprint : string;
  mutable last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  warm_hits : int;
  invalidations : int;
  corrupt : int;
  entries : int;
  reductions : int; (* memory-reduction decisions attached (side table) *)
  schedules : int; (* tuned schedule plans attached (side table) *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  warm : (string, unit) Hashtbl.t;
  reductions : (string * string, Mem.Reduce.decision) Hashtbl.t;
      (* (key, rung signature) -> memory-reduction decision. Decisions
         are a pure function of (executable, rung-ceiling binding), so
         they ride alongside the artifact: one decide per fingerprint ×
         bucket rung, replayed by every sharing session. Dropped with the
         artifact on invalidation — a recompiled graph re-decides. *)
  schedules : (string * string, Tune.Plan.t) Hashtbl.t;
      (* (key, device|rungs bucket signature) -> tuned schedule plan.
         Plans are a pure function of (executable, device, rung set) —
         the tuner samples nothing — so like reductions they ride
         alongside the artifact: one search per fingerprint × device ×
         shape-bucket set, replayed by every sharing session and adopted
         by pool replicas on prewarm/revive. Dropped with the artifact
         on invalidation/corruption — a recompiled graph re-tunes. *)
  mutable dir : string option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable warm_hits : int;
  mutable invalidations : int;
  mutable corrupt : int; (* persisted records quarantined, chaos corruptions *)
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 32;
    warm = Hashtbl.create 32;
    reductions = Hashtbl.create 32;
    schedules = Hashtbl.create 32;
    dir = None;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    warm_hits = 0;
    invalidations = 0;
    corrupt = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    warm_hits = t.warm_hits;
    invalidations = t.invalidations;
    corrupt = t.corrupt;
    entries = Hashtbl.length t.table;
    reductions = Hashtbl.length t.reductions;
    schedules = Hashtbl.length t.schedules;
  }

let key_of ?(dims = []) ~(options : Compiler.options) (g : Graph.t) : string =
  Digest.to_hex
    (Digest.string
       (Ir.Fingerprint.canonical ~dims g
       ^ "options "
       ^ Compiler.options_signature options))

(* --- persistence ---------------------------------------------------------- *)

let record_path dir key = Filename.concat dir (key ^ ".json")

(* The checksum covers every load-bearing field. A persisted record is
   only trusted when the stored checksum matches this recomputation —
   a bit flip anywhere in the payload (or in the checksum itself) makes
   the record quarantine instead of minting a bogus warm hit. *)
let record_checksum ~key ~fingerprint ~compile_time_ms ~kernels ~dim_names =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "disc-cache-v2|%s|%s|%g|%d|%s" key fingerprint compile_time_ms
          kernels
          (String.concat "," dim_names)))

let write_record dir key (e : entry) =
  let dim_names = List.map fst e.dims in
  let kernels = Runtime.Executable.num_kernels e.compiled.Compiler.exe in
  let checksum =
    record_checksum ~key ~fingerprint:e.fingerprint
      ~compile_time_ms:e.compiled.Compiler.compile_time_ms ~kernels ~dim_names
  in
  let oc = open_out (record_path dir key) in
  Printf.fprintf oc
    "{\n\
    \  \"key\": %S,\n\
    \  \"fingerprint\": %S,\n\
    \  \"compile_time_ms\": %g,\n\
    \  \"kernels\": %d,\n\
    \  \"dims\": [%s],\n\
    \  \"checksum\": %S\n\
     }\n"
    key e.fingerprint e.compiled.Compiler.compile_time_ms kernels
    (String.concat ", " (List.map (fun n -> Printf.sprintf "%S" n) dim_names))
    checksum;
  close_out oc

let is_key s =
  String.length s = 32 && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) s

(* Validate one persisted record. [Error reason] means the record is
   corrupt/truncated/foreign and must be quarantined, not trusted. *)
let validate_record ~key text =
  match Obs.Json.parse text with
  | Error e -> Error (Printf.sprintf "unparseable JSON (%s)" e)
  | Ok doc -> (
      let str f = Option.bind (Obs.Json.member f doc) Obs.Json.to_string_opt in
      let num f = Option.bind (Obs.Json.member f doc) Obs.Json.to_float_opt in
      let int f = Option.bind (Obs.Json.member f doc) Obs.Json.to_int_opt in
      let dims =
        match Obs.Json.member "dims" doc with
        | Some (Obs.Json.List items) ->
            let names = List.filter_map Obs.Json.to_string_opt items in
            if List.length names = List.length items then Some names else None
        | _ -> None
      in
      match (str "key", str "fingerprint", num "compile_time_ms", int "kernels", dims, str "checksum") with
      | Some k, Some fingerprint, Some compile_time_ms, Some kernels, Some dim_names, Some stored ->
          if k <> key then Error "key field does not match file name"
          else if
            record_checksum ~key ~fingerprint ~compile_time_ms ~kernels ~dim_names <> stored
          then Error "checksum mismatch"
          else Ok ()
      | _ -> Error "missing or mistyped field")

(* Corrupt or truncated records are quarantined: skipped, counted
   ([cache.corrupt]), and logged — one bad file must never fail the
   whole directory load or mint a warm hit for a suspect artifact. The
   file itself is left in place for post-mortem. *)
let quarantine t ~file ~reason =
  t.corrupt <- t.corrupt + 1;
  if Obs.Scope.on () then Obs.Scope.count "cache.corrupt";
  Printf.eprintf "compile-cache: quarantined %s: %s\n%!" file reason

let attach_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".json" then begin
        let key = Filename.chop_suffix f ".json" in
        if is_key key then begin
          let path = Filename.concat dir f in
          match In_channel.with_open_text path In_channel.input_all with
          | text -> (
              match validate_record ~key text with
              | Ok () -> Hashtbl.replace t.warm key ()
              | Error reason -> quarantine t ~file:path ~reason)
          | exception Sys_error reason -> quarantine t ~file:path ~reason
        end
      end)
    (Array.to_list (Sys.readdir dir) |> List.sort compare |> Array.of_list);
  t.dir <- Some dir

let warm_keys t = Hashtbl.length t.warm

(* --- memory-reduction decisions ------------------------------------------- *)

let store_reduction t ~key ~rung d = Hashtbl.replace t.reductions (key, rung) d
let find_reduction t ~key ~rung = Hashtbl.find_opt t.reductions (key, rung)
let reductions_cached t = Hashtbl.length t.reductions

let drop_reductions t key =
  let stale =
    Hashtbl.fold (fun (k, r) _ acc -> if k = key then (k, r) :: acc else acc) t.reductions []
  in
  List.iter (Hashtbl.remove t.reductions) stale

(* --- tuned schedule plans --------------------------------------------------

   Same lifecycle as reduction decisions: pure side artifacts of a
   cached executable, keyed (cache key, "<device>|<rung sigs>" bucket),
   dropped whenever the artifact itself is dropped. *)

let store_schedule t ~key ~bucket plan = Hashtbl.replace t.schedules (key, bucket) plan
let find_schedule t ~key ~bucket = Hashtbl.find_opt t.schedules (key, bucket)
let schedules_cached t = Hashtbl.length t.schedules

(* Any plan tuned for this artifact on this device, regardless of which
   rung set minted it — what a freshly prewarmed/revived replica adopts.
   Deterministic pick: the lexicographically smallest bucket. *)
let find_schedule_for_device t ~key ~device =
  let prefix = device ^ "|" in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun (k, bucket) plan best ->
      if
        k = key
        && String.length bucket >= plen
        && String.sub bucket 0 plen = prefix
      then
        match best with
        | Some (b, _) when b <= bucket -> best
        | _ -> Some (bucket, plan)
      else best)
    t.schedules None
  |> Option.map snd

let drop_schedules t key =
  let stale =
    Hashtbl.fold (fun (k, b) _ acc -> if k = key then (k, b) :: acc else acc) t.schedules []
  in
  List.iter (Hashtbl.remove t.schedules) stale

(* Chaos injection: deterministically corrupt a fraction of the cache.
   Selected entries vanish from both the live table and the warm set (a
   fresh session or a recovering replica recompiles cold) and are
   counted as corrupt. Selection hashes (seed, sorted-key index) so two
   runs of the same scenario corrupt the same entries. Persisted files
   are untouched — the simulation corrupts the *in-process* view. *)
let corrupt t ~seed ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Compile_cache.corrupt: fraction must be in [0,1]";
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.table;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.warm;
  let sorted = Hashtbl.fold (fun k () acc -> k :: acc) keys [] |> List.sort compare in
  let hit = ref 0 in
  List.iteri
    (fun i key ->
      if Gpusim.Fault.stream_uniform ~seed ~counter:i < fraction then begin
        Hashtbl.remove t.table key;
        Hashtbl.remove t.warm key;
        drop_reductions t key;
        drop_schedules t key;
        t.corrupt <- t.corrupt + 1;
        incr hit;
        if Obs.Scope.on () then Obs.Scope.count "cache.corrupt"
      end)
    sorted;
  !hit

(* --- lookup --------------------------------------------------------------- *)

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      if Obs.Scope.on () then Obs.Scope.count "cache.evictions"

type outcome = Hit | Warm_hit | Miss

let outcome_to_string = function Hit -> "hit" | Warm_hit -> "warm_hit" | Miss -> "miss"

(* Warm re-materialization recompiles in-process but must not charge the
   virtual clock or emit compile spans — from the serving system's point
   of view the work was done in a previous run. *)
let compile_silently ~options g =
  let was_on = Obs.Scope.on () in
  Obs.Scope.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Scope.set_enabled was_on)
    (fun () -> Compiler.compile ~options g)

let lookup_span outcome key =
  if Obs.Scope.on () then begin
    Obs.Scope.span ~cat:"cache" ~dur_us:0.0
      ~args:[ ("key", key); ("outcome", outcome_to_string outcome) ]
      "cache.lookup";
    Obs.Scope.count
      (match outcome with
      | Hit -> "cache.hits"
      | Warm_hit -> "cache.warm_hits"
      | Miss -> "cache.misses")
  end

let find_or_compile t ?(options = Compiler.default_options)
    ?(dims : (string * Sym.dim) list = []) (g : Graph.t) :
    Compiler.compiled * (string * Sym.dim) list * outcome =
  (* key + fingerprint must be taken *before* compiling: graph passes
     mutate the instruction list. *)
  let key = key_of ~dims ~options g in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      lookup_span Hit key;
      (e.compiled, e.dims, Hit)
  | None ->
      let fingerprint = Ir.Fingerprint.fingerprint ~dims g in
      let warm = Hashtbl.mem t.warm key in
      let compiled =
        if warm then
          let c = compile_silently ~options g in
          { c with Compiler.compile_time_ms = 0.0; phases = [] }
        else Compiler.compile ~options g
      in
      let e = { compiled; dims; fingerprint; last_used = 0 } in
      touch t e;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table key e;
      let outcome =
        if warm then begin
          t.warm_hits <- t.warm_hits + 1;
          Warm_hit
        end
        else begin
          t.misses <- t.misses + 1;
          Miss
        end
      in
      lookup_span outcome key;
      (match t.dir with
      | Some dir -> ( try write_record dir key e with Sys_error _ -> ())
      | None -> ());
      (compiled, dims, outcome)

let invalidate t key =
  let present = Hashtbl.mem t.table key in
  Hashtbl.remove t.table key;
  let was_warm = Hashtbl.mem t.warm key in
  Hashtbl.remove t.warm key;
  drop_reductions t key;
  drop_schedules t key;
  if present || was_warm then begin
    t.invalidations <- t.invalidations + 1;
    if Obs.Scope.on () then Obs.Scope.count "cache.invalidations"
  end;
  match t.dir with
  | Some dir -> ( try Sys.remove (record_path dir key) with Sys_error _ -> ())
  | None -> ()

let stats_to_string (s : stats) =
  Printf.sprintf
    "hits=%d misses=%d warm_hits=%d evictions=%d invalidations=%d corrupt=%d entries=%d"
    s.hits s.misses s.warm_hits s.evictions s.invalidations s.corrupt s.entries

let hit_rate (s : stats) =
  let total = s.hits + s.misses + s.warm_hits in
  if total = 0 then 0.0 else float_of_int (s.hits + s.warm_hits) /. float_of_int total

(* The one cache-health line serving surfaces print: core stats, the
   side-table entry counts (reductions, schedules), the hit rate, and an
   explicit verdict that calls out corrupt-artifact quarantines. *)
let health_to_string (s : stats) =
  Printf.sprintf "cache: %s; side: reductions=%d schedules=%d; hit_rate=%.0f%%%s"
    (stats_to_string s) s.reductions s.schedules (100.0 *. hit_rate s)
    (if s.corrupt > 0 then
       Printf.sprintf "; UNHEALTHY (%d corrupt artifacts quarantined)" s.corrupt
     else "; healthy")
