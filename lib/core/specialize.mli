(** Hot-shape specialization (hybrid static/dynamic deployment): static
    variants compiled for hot shape signatures next to the always-valid
    shape-generic artifact. A signature miss falls back to the generic
    artifact — never a recompile stall.

    The generic artifact doubles as the resilience fallback: a hot
    variant that faults is retried on the generic artifact in-request,
    and a per-specialization circuit breaker {e de-specializes} (evicts)
    a hot variant after [breaker_threshold] consecutive faults. *)

type t = {
  built : Models.Common.built;
  generic : Compiler.compiled;
  mutable hot : ((string * int) list * Compiler.compiled) list;
  faults : Gpusim.Fault.t option;
  breaker_threshold : int;
  breakers : ((string * int) list, int) Hashtbl.t;
  mutable despecialized : (string * int) list list;
  metrics : Obs.Metrics.t;
  hits_c : Obs.Metrics.counter;
  misses_c : Obs.Metrics.counter;
  despec_c : Obs.Metrics.counter;
}

type stats = {
  hits : int;  (** requests whose signature matched a live hot variant *)
  misses : int;
  despecialized : int;  (** hot variants evicted by the breaker *)
  hot_variants : int;  (** still live *)
  total_compile_ms : float;
}

val default_hot_envs : Models.Common.built -> (string * int) list list
(** Cartesian product of the dims' likely values (capped at 16). *)

val create :
  ?options:Compiler.options ->
  ?hot_envs:(string * int) list list ->
  ?fault_config:Gpusim.Fault.config ->
  ?breaker_threshold:int ->
  ?metrics:Obs.Metrics.t ->
  Models.Common.built ->
  t
(** [metrics] is the registry holding [specialize.hits/misses/
    despecialized] and the lazily-created per-signature latency
    histograms [specialize.latency_us{sig}] (default: fresh private
    registry). It is the single source of truth behind {!stats}. *)

val metrics : t -> Obs.Metrics.t
val hits : t -> int
val misses : t -> int
val stats : t -> stats
(** Derived from the registry and the live hot-variant list. *)

val sig_of_env : (string * int) list -> string
(** Canonical signature string, e.g. ["batch=4,seq=73"] (sorted). *)

val total_compile_ms : t -> float

val despecialized_envs : t -> (string * int) list list
(** Hot signatures evicted by the circuit breaker (normalized order). *)

val add_hot_env :
  ?options:Compiler.options -> t -> (string * int) list -> bool
(** Mint one hot variant at runtime (online speculative specialization).
    [false] — and no compile — if the signature is already hot, was
    de-specialized by the breaker, or the live hot set is at its cap
    (16). Counted in the registry as [specialize.minted].
    @raise Invalid_argument on an unknown dim name. *)

val ingest_hints :
  ?options:Compiler.options -> t -> (string * int list) list -> int
(** Distribution-constraint ingestion, the online feedback path: write
    likely-value hints into the model's symbol table
    ({!Symshape.Table.set_likely}, replace semantics; unknown dims
    ignored), then mint the refreshed {!default_hot_envs} via
    {!add_hot_env}. Returns how many variants were newly minted — a
    hint ingested here yields exactly the specializations an explicit
    likely-value constraint at build time would have. *)

val serve_result :
  ?device:Gpusim.Device.t ->
  t ->
  (string * int) list ->
  (Runtime.Profile.t * [ `Hot | `Generic ], Runtime.Error.t) result
(** Structured-error serve: a faulting hot variant falls back to the
    generic artifact within the request. *)

val serve :
  ?device:Gpusim.Device.t ->
  t ->
  (string * int) list ->
  Runtime.Profile.t * [ `Hot | `Generic ]
(** Legacy wrapper over {!serve_result}.
    @raise Invalid_argument on unknown dims
    @raise Runtime.Error.Error on execution failures *)
