(** The end-to-end BladeDISC pipeline:

    import → shape propagation (at graph construction) → constraint-aware
    cleanup passes → dynamic-shape fusion → compile-time/runtime combined
    codegen → RAL executable.

    Compile once with {!compile}; then {!run} on real tensors of any
    shape, or {!simulate} the cost at arbitrary dynamic-dim values. *)

module Graph = Ir.Graph
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Executable = Runtime.Executable

type options = {
  planner : Planner.config;
  codegen : Kernel.config;
  host_overhead_us : float;
  run_graph_passes : bool;
}

val default_options : options

val options_signature : options -> string
(** Deterministic rendering of every option field, part of the compile
    cache key: equal signatures ⇔ the options cannot change the compile
    result. Exhaustive over the record fields by construction. *)

type compiled = {
  exe : Executable.t;
  plan : Fusion.Cluster.plan;
  pass_stats : Ir.Passes.stats;
  compile_time_ms : float;  (** simulated one-off compilation cost *)
  phases : (string * float) list;
      (** per-phase breakdown (graph_passes, fusion_planning, codegen,
          executable_build) in ms; sums to [compile_time_ms] *)
}

val simulated_phase_times_ms :
  num_insts:int -> num_kernels:int -> (string * float) list
(** The compilation-latency model decomposed per phase (per-instruction
    pass/planning time, per-kernel codegen, constant build floor). *)

val simulated_compile_time_ms : num_insts:int -> num_kernels:int -> float
(** Sum of {!simulated_phase_times_ms}; paid once per model, never per
    shape. When observability is enabled ({!Obs.Scope}), {!compile}
    records one nested trace span per phase whose durations sum to this. *)

val compile : ?options:options -> Graph.t -> compiled
(** Runs cleanup passes (mutating the graph), verifies, plans fusion and
    builds the executable. @raise Graph.Type_error on invalid graphs. *)

val run :
  ?device:Gpusim.Device.t ->
  compiled ->
  Tensor.Nd.t list ->
  Tensor.Nd.t list * Runtime.Profile.t

val run_result :
  ?device:Gpusim.Device.t ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  compiled ->
  Tensor.Nd.t list ->
  (Tensor.Nd.t list * Runtime.Profile.t, Runtime.Error.t) result
(** {!run} with structured errors; [faults] injects seeded failures,
    [despeculate] pins named kernels to their generic version. *)

val latency_us : ?device:Gpusim.Device.t -> compiled -> Tensor.Nd.t list -> float

val binding_of_dims : Graph.t -> (Symshape.Sym.dim * int) list -> Symshape.Table.binding

val simulate :
  ?device:Gpusim.Device.t ->
  compiled ->
  (Symshape.Sym.dim * int) list ->
  Runtime.Profile.t
(** Cost-only execution at given dynamic-dim values — no tensor data. *)

val simulate_result :
  ?device:Gpusim.Device.t ->
  ?faults:Gpusim.Fault.t ->
  ?despeculate:(string -> bool) ->
  compiled ->
  (Symshape.Sym.dim * int) list ->
  (Runtime.Profile.t, Runtime.Error.t) result
(** {!simulate} with structured errors instead of exceptions. *)

val simulated_latency_us :
  ?device:Gpusim.Device.t -> compiled -> (Symshape.Sym.dim * int) list -> float
