(* Hot-shape specialization: BladeDISC's hybrid static/dynamic mode.

   Next to the shape-generic artifact, compile fully static variants
   for a few hot shape signatures (by default, the cartesian product of
   the dims' likely values). A request whose signature matches a hot
   shape runs the static variant — on which every fusion decision and
   speculation guard resolved at compile time — and anything else falls
   back to the generic artifact. Unlike a bucketing compiler, a miss
   never stalls: the generic artifact always works.

   The generic artifact is also the *resilience* fallback: if a hot
   variant faults (injected kernel fault, OOM) the request is re-served
   on the generic artifact, and a per-specialization circuit breaker
   de-specializes a hot variant after K consecutive faults — the
   paper's speculative-specialization design degrading gracefully. *)

module Common = Models.Common
module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Error = Runtime.Error

(* Hit/miss/despecialize counters live in a metrics registry
   (Obs.Metrics): the same cells back {!hits}/{!misses}/{!stats} and the
   registry's own export, so the accounting cannot drift from what was
   actually served. Per-signature latency histograms are created lazily
   under "specialize.latency_us{sig}". *)
type t = {
  built : Common.built;
  generic : Compiler.compiled;
  mutable hot : ((string * int) list * Compiler.compiled) list; (* sorted envs *)
  faults : Gpusim.Fault.t option;
  breaker_threshold : int;
  breakers : ((string * int) list, int) Hashtbl.t; (* consecutive faults per hot env *)
  mutable despecialized : (string * int) list list; (* evicted hot envs *)
  metrics : Obs.Metrics.t;
  hits_c : Obs.Metrics.counter;
  misses_c : Obs.Metrics.counter;
  despec_c : Obs.Metrics.counter;
}

type stats = {
  hits : int;
  misses : int;
  despecialized : int;
  hot_variants : int;  (* still live *)
  total_compile_ms : float;
}

let norm env = List.sort compare env

let sig_of_env env =
  String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) (norm env))

(* Default hot set: cartesian product of each dim's likely values
   (capped to avoid explosion). *)
let default_hot_envs (built : Common.built) : (string * int) list list =
  let tab = Graph.symtab built.Common.graph in
  let axes =
    List.map
      (fun (name, d) ->
        let vs = Table.likely_values tab d in
        (name, if vs = [] then [ Table.lower_bound tab d ] else vs))
      built.Common.dims
  in
  let product =
    List.fold_left
      (fun acc (name, vs) ->
        List.concat_map (fun env -> List.map (fun v -> (name, v) :: env) vs) acc)
      [ [] ] axes
  in
  List.filteri (fun i _ -> i < 16) (List.map List.rev product)

let create ?(options = Compiler.default_options) ?hot_envs ?fault_config
    ?(breaker_threshold = 3) ?metrics (built : Common.built) : t =
  let envs = Option.value hot_envs ~default:(default_hot_envs built) in
  let generic = Compiler.compile ~options built.Common.graph in
  let hot =
    List.map
      (fun env ->
        let bind =
          List.map (fun (name, v) -> (Common.dim_exn built name, v)) env
        in
        let static_g = Ir.Clone.clone ~bind built.Common.graph in
        (norm env, Compiler.compile ~options static_g))
      envs
  in
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    built;
    generic;
    hot;
    faults = Option.map Gpusim.Fault.make fault_config;
    breaker_threshold;
    breakers = Hashtbl.create 8;
    despecialized = [];
    metrics = m;
    hits_c = Obs.Metrics.counter m "specialize.hits";
    misses_c = Obs.Metrics.counter m "specialize.misses";
    despec_c = Obs.Metrics.counter m "specialize.despecialized";
  }

let metrics t = t.metrics
let hits t = Obs.Metrics.counter_value t.hits_c
let misses t = Obs.Metrics.counter_value t.misses_c

let total_compile_ms (t : t) =
  t.generic.Compiler.compile_time_ms
  +. List.fold_left (fun acc (_, c) -> acc +. c.Compiler.compile_time_ms) 0.0 t.hot

let stats (t : t) : stats =
  {
    hits = hits t;
    misses = misses t;
    despecialized = List.length t.despecialized;
    hot_variants = List.length t.hot;
    total_compile_ms = total_compile_ms t;
  }

let despecialized_envs (t : t) = t.despecialized

let max_hot = 16

(* Mint one hot variant at runtime — the online analogue of the hot set
   chosen at [create] time. Refuses signatures that are already hot,
   were de-specialized by the breaker (the evidence against them stands),
   or would push past the hot-variant cap. *)
let add_hot_env ?(options = Compiler.default_options) (t : t) (env : (string * int) list) :
    bool =
  let key = norm env in
  if List.mem_assoc key t.hot || List.mem key t.despecialized || List.length t.hot >= max_hot
  then false
  else begin
    let bind = List.map (fun (name, v) -> (Common.dim_exn t.built name, v)) env in
    let static_g = Ir.Clone.clone ~bind t.built.Common.graph in
    t.hot <- t.hot @ [ (key, Compiler.compile ~options static_g) ];
    Obs.Metrics.inc (Obs.Metrics.counter t.metrics "specialize.minted");
    true
  end

(* Distribution-constraint ingestion: write the likely-value hints into
   the model's symbol table (replace semantics), then mint whatever the
   refreshed default hot set now contains. A hint arriving through this
   path mints exactly the specializations an explicit likely-value
   constraint at build time would have. *)
let ingest_hints ?options (t : t) (hints : (string * int list) list) : int =
  let tab = Graph.symtab t.built.Common.graph in
  List.iter
    (fun (name, vs) ->
      match Common.dim_opt t.built name with
      | Some d -> Table.set_likely tab d vs
      | None -> ())
    hints;
  List.fold_left
    (fun minted env -> if add_hot_env ?options t env then minted + 1 else minted)
    0 (default_hot_envs t.built)

let observe_latency (t : t) env (p : Runtime.Profile.t) =
  Obs.Metrics.observe
    (Obs.Metrics.histogram t.metrics
       (Printf.sprintf "specialize.latency_us{%s}" (sig_of_env env)))
    (Runtime.Profile.total_us p)

(* De-specialize a hot variant: evict it so every future request at that
   signature runs the always-valid generic dynamic-shape artifact. *)
let trip (t : t) key =
  t.hot <- List.remove_assoc key t.hot;
  t.despecialized <- key :: t.despecialized;
  Obs.Metrics.inc t.despec_c;
  Hashtbl.remove t.breakers key

let note_hot_fault (t : t) key =
  let n = 1 + Option.value (Hashtbl.find_opt t.breakers key) ~default:0 in
  Hashtbl.replace t.breakers key n;
  if n >= t.breaker_threshold then trip t key

(* Cost-only request: exact signature match uses the static variant;
   a hot-variant fault falls back to the generic artifact in-request. *)
let serve_result ?(device = Gpusim.Device.a10) (t : t) (env : (string * int) list) :
    (Runtime.Profile.t * [ `Hot | `Generic ], Error.t) result =
  let generic_dims () =
    match
      List.map
        (fun (n, v) ->
          match Common.dim_opt t.built n with
          | Some d -> (d, v)
          | None ->
              Error.fail
                (Error.Invalid_request
                   (Printf.sprintf "model %s has no dynamic dim %s" t.built.Common.name n)))
        env
    with
    | dims -> Ok dims
    | exception Error.Error e -> Error e
  in
  let serve_generic () =
    match generic_dims () with
    | Error e -> Error e
    | Ok dims -> (
        match Compiler.simulate_result ~device ?faults:t.faults t.generic dims with
        | Ok p ->
            observe_latency t env p;
            Ok (p, `Generic)
        | Error e -> Error e)
  in
  let key = norm env in
  match List.assoc_opt key t.hot with
  | Some c -> (
      Obs.Metrics.inc t.hits_c;
      (* the static variant has no dynamic dims left to bind *)
      match Compiler.simulate_result ~device ?faults:t.faults c [] with
      | Ok p ->
          Hashtbl.remove t.breakers key;
          observe_latency t env p;
          Ok (p, `Hot)
      | Error e when Error.is_transient e ->
          note_hot_fault t key;
          serve_generic ()
      | Error e -> Error e)
  | None ->
      Obs.Metrics.inc t.misses_c;
      serve_generic ()

let serve ?(device = Gpusim.Device.a10) (t : t) (env : (string * int) list) :
    Runtime.Profile.t * [ `Hot | `Generic ] =
  match serve_result ~device t env with
  | Ok v -> v
  | Error (Error.Invalid_request m) -> invalid_arg m
  | Error e -> Error.fail e
