(* Serving-session API: compile a model once, answer requests at
   arbitrary shapes, and keep latency statistics — the deployment
   wrapper a BladeDISC user actually runs behind an endpoint.

   The session is the resilience boundary of the stack: a request may
   fail on the compiled path (injected kernel fault, OOM, bad binding)
   but never crashes the host. The graceful-degradation ladder is

     compiled path -> retry (transient faults) -> reference fallback

   where the reference fallback is the framework op-by-op path: exact
   numerics from [Ir.Interp], cost charged per instruction (no fusion,
   eager dispatch overhead). A per-kernel circuit breaker additionally
   de-speculates a kernel — pins it to its generic version — after K
   consecutive faults, mirroring how BladeDISC retreats from a bad
   speculative specialization without giving up the compiled path. *)

module Common = Models.Common
module Profile = Runtime.Profile
module Error = Runtime.Error
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op

type policy = {
  max_retries : int; (* compiled-path re-runs after a transient fault *)
  breaker_threshold : int; (* consecutive faults that de-speculate a kernel *)
  fallback_to_interp : bool; (* serve via the reference path after retries *)
}

let default_policy = { max_retries = 1; breaker_threshold = 3; fallback_to_interp = true }

type path = [ `Compiled | `Fallback ]

(* Fixed-capacity ring of recent latencies: percentile math over a
   sliding window instead of unbounded per-request memory growth. *)
type ring = { buf : float array; mutable len : int; mutable next : int }

let ring_create cap = { buf = Array.make (max 1 cap) 0.0; len = 0; next = 0 }

let ring_push r v =
  r.buf.(r.next) <- v;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.len <- min (Array.length r.buf) (r.len + 1)

let ring_contents r = Array.sub r.buf 0 r.len (* order irrelevant for percentiles *)

(* Outcome counters live in a per-session metrics registry (Obs.Metrics)
   — the same cells back the public [stats] record, the registry
   snapshot/JSON export, and whatever dashboards read the registry, so
   the numbers cannot drift apart. The handles below are the registry's
   own cells, fetched once at creation. *)
type t = {
  built : Common.built;
  compiled : Compiler.compiled;
  mutable active : Compiler.compiled;
      (* the executable requests actually serve through: [compiled] with
         any adopted tuned-schedule plan applied. Starts equal to
         [compiled]; [tune] / [adopt_tuned_schedules] swap in an
         immutably rewritten copy, so the shared cached artifact itself
         is never mutated. Graph and symbols are unchanged by the
         rewrite — only kernel version lists differ. *)
  mutable tuned : Tune.Plan.t option; (* the adopted plan, if any *)
  serve_dims : (string * Symshape.Sym.dim) list;
      (* named dynamic dims resolved in the symbol table of
         [compiled.exe.g] — on a cache hit that is the *original*
         session's graph, not [built.graph], and bindings for the
         compiled path must go through these *)
  compile_ms : float; (* compile cost charged to THIS session (0. on cache hit) *)
  cache_hit : bool;
  cache : (Compile_cache.t * string) option; (* cache + this session's key *)
  mutable warmup_remaining_us : float;
      (* async-compile: virtual time until the compiled artifact is
         "ready"; while positive, requests serve via the reference path *)
  device : Gpusim.Device.t;
  policy : policy;
  mutable faults : Gpusim.Fault.t option;
  latencies : ring;
  breakers : (string, int) Hashtbl.t; (* kernel -> consecutive faults *)
  tripped : (string, unit) Hashtbl.t; (* de-speculated kernels *)
  metrics : Obs.Metrics.t;
  requests_c : Obs.Metrics.counter;
  served_c : Obs.Metrics.counter; (* compiled path succeeded *)
  fell_back_c : Obs.Metrics.counter; (* reference path served *)
  failed_c : Obs.Metrics.counter; (* structured error returned to caller *)
  retries_c : Obs.Metrics.counter;
  faults_c : Obs.Metrics.counter; (* kernel faults + OOMs observed *)
  warmup_c : Obs.Metrics.counter; (* served during the async-compile window *)
  hints_c : Obs.Metrics.counter; (* likely-value hints ingested from feedback *)
  latency_h : Obs.Metrics.histogram; (* all recorded request latencies, µs *)
  mutable mem_est : Mem.Estimate.t option;
      (* symbolic peak-memory estimate, built lazily from the compiled
         executable (binding-free, so one per artifact) *)
  mem_peak_memo : ((string * int) list, int option) Hashtbl.t;
      (* env -> peak_bound: the serving pool's budget gate consults this
         once per dispatch; the bound is a pure function of the env *)
  profile_memo : ((string * int) list, Profile.t) Hashtbl.t;
      (* warm-path result cache: env -> profile. [Compiler.simulate_result]
         is deterministic, so once a session is in steady state (no fault
         injection armed, no tripped kernels, warmup drained, tracing off)
         a repeated env re-derives the identical profile; serving it from
         here skips the whole simulate walk. Bypassed — never read or
         written — whenever any of those conditions fails, because fault
         streams, breaker state, warmup accounting, and span emission all
         advance per-request state a cache hit would skip. *)
}

type stats = {
  requests : int;
  compile_ms : float;
  cache_hit : bool;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
  served : int;
  fell_back : int;
  failed : int;
  retries : int;
  faults : int;
  despeculated : int;
  window : int; (* latencies retained for the percentile window *)
}

let default_window = 1024

let create ?(options = Compiler.default_options) ?(device = Gpusim.Device.a10)
    ?(policy = default_policy) ?fault_config ?(window = default_window) ?metrics ?cache
    ?(async_compile = false) (built : Common.built) : t =
  let compiled, serve_dims, cache_hit, cache_ref =
    match cache with
    | None ->
        let c = Compiler.compile ~options built.Common.graph in
        (c, built.Common.dims, false, None)
    | Some cache ->
        (* key before compile: the passes inside compile mutate the graph *)
        let key = Compile_cache.key_of ~dims:built.Common.dims ~options built.Common.graph in
        let compiled, dims, outcome =
          Compile_cache.find_or_compile cache ~options ~dims:built.Common.dims
            built.Common.graph
        in
        (compiled, dims, outcome <> Compile_cache.Miss, Some (cache, key))
  in
  (* a warm/persisted hit already reports compile_time_ms = 0.; an
     in-memory hit keeps the original cost in the shared record, but this
     session paid nothing *)
  let compile_ms = if cache_hit then 0.0 else compiled.Compiler.compile_time_ms in
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    built;
    compiled;
    active = compiled;
    tuned = None;
    serve_dims;
    compile_ms;
    cache_hit;
    cache = cache_ref;
    warmup_remaining_us = (if async_compile && not cache_hit then compile_ms *. 1000.0 else 0.0);
    device;
    policy;
    faults = Option.map Gpusim.Fault.make fault_config;
    latencies = ring_create window;
    breakers = Hashtbl.create 16;
    tripped = Hashtbl.create 16;
    metrics = m;
    requests_c = Obs.Metrics.counter m "session.requests";
    served_c = Obs.Metrics.counter m "session.served";
    fell_back_c = Obs.Metrics.counter m "session.fell_back";
    failed_c = Obs.Metrics.counter m "session.failed";
    retries_c = Obs.Metrics.counter m "session.retries";
    faults_c = Obs.Metrics.counter m "session.faults";
    warmup_c = Obs.Metrics.counter m "session.warmup_served";
    hints_c = Obs.Metrics.counter m "session.shape_hints";
    latency_h = Obs.Metrics.histogram m "session.latency_us";
    mem_est = None;
    mem_peak_memo = Hashtbl.create 64;
    profile_memo = Hashtbl.create 64;
  }

let metrics t = t.metrics
let cache_hit (t : t) = t.cache_hit
let device (t : t) = t.device
let model_name (t : t) = t.built.Common.name
let in_warmup t = t.warmup_remaining_us > 0.0
let warmup_remaining_us t = t.warmup_remaining_us

(* The session itself only observes virtual *request* time; a driver
   that owns a wall clock (e.g. a queue simulation whose batches launch
   at absolute times) calls this when its clock passes the compile
   window. Idempotent. *)
let finish_warmup t = t.warmup_remaining_us <- 0.0

(* Chaos injection: a device turning flaky (or recovering) mid-run. An
   armed injector keeps its stream position, so the whole run remains a
   pure function of (seed, rate changes at draw indices); a session that
   was created without fault injection arms a fresh injector at [seed]. *)
let set_fault_rates (t : t) ?(seed = 0) ~kernel_fault_rate ~oom_rate () =
  match t.faults with
  | Some f -> Gpusim.Fault.set_rates f ~kernel_fault_rate ~oom_rate
  | None ->
      if kernel_fault_rate > 0.0 || oom_rate > 0.0 then
        t.faults <-
          Some
            (Gpusim.Fault.make
               (Gpusim.Fault.create ~seed ~kernel_fault_rate ~oom_rate ()))

let fault_rates (t : t) =
  match t.faults with Some f -> Gpusim.Fault.rates f | None -> (0.0, 0.0)

(* Online distribution feedback: replace the likely-value hints on the
   compiled graph's dynamic dims. The hints land in the symbol table the
   executable (and anything minted from it — [Specialize.default_hot_envs],
   a recompile through the cache surface) actually reads; on a cache hit
   [serve_dims] points into the original session's graph, so hints reach
   every session sharing the artifact. Advisory only: serving behavior
   at any shape is unchanged, bounds are never tightened. *)
let ingest_hints t (hints : (string * int list) list) =
  (* hints are advisory for serving, but drop the memo anyway: anything
     minted off the refreshed hints must be re-derived, not replayed *)
  Hashtbl.reset t.profile_memo;
  let tab = Graph.symtab t.compiled.Compiler.exe.Runtime.Executable.g in
  List.iter
    (fun (name, vs) ->
      match List.assoc_opt name t.serve_dims with
      | None -> ()
      | Some d ->
          Table.set_likely tab d vs;
          Obs.Metrics.inc ~by:(List.length vs) t.hints_c)
    hints

let shape_hints t = Obs.Metrics.counter_value t.hints_c

let record t lat =
  ring_push t.latencies lat;
  Obs.Metrics.observe t.latency_h lat;
  Obs.Metrics.inc t.requests_c

let despeculated_kernels t = List.of_seq (Seq.map fst (Hashtbl.to_seq t.tripped))
let despeculated_count t = Hashtbl.length t.tripped

(* --- circuit breaker ------------------------------------------------------ *)

let is_tripped t kname = Hashtbl.mem t.tripped kname

(* A de-speculated or permanently faulted executable is suspect: drop it
   from the shared cache so a *fresh* session recompiles rather than
   inheriting the artifact. This session keeps serving through its own
   breaker/fallback ladder. *)
let invalidate_cached t =
  match t.cache with
  | Some (cache, key) -> Compile_cache.invalidate cache key
  | None -> ()

let note_fault t (e : Error.t) =
  Obs.Metrics.inc t.faults_c;
  match e with
  | Error.Kernel_fault { kernel; _ } ->
      let n = 1 + Option.value (Hashtbl.find_opt t.breakers kernel) ~default:0 in
      Hashtbl.replace t.breakers kernel n;
      if n >= t.policy.breaker_threshold then begin
        Hashtbl.replace t.tripped kernel ();
        invalidate_cached t
      end
  | _ -> ()

(* A clean compiled-path pass means every kernel ran: reset the
   consecutive-fault counters (tripped kernels stay de-speculated). *)
let note_clean_pass t = Hashtbl.reset t.breakers

(* --- request validation --------------------------------------------------- *)

let validate_env (t : t) (env : (string * int) list) :
    ((Symshape.Sym.dim * int) list, Error.t) result =
  let rec check_known = function
    | [] -> Ok ()
    | (name, v) :: rest -> (
        if v < 1 then
          Error (Error.Invalid_request (Printf.sprintf "dim %s = %d (must be >= 1)" name v))
        else if List.exists (fun (n, _) -> n = name) rest then
          Error (Error.Invalid_request (Printf.sprintf "dim %s bound twice" name))
        else
          match Common.dim_opt t.built name with
          | Some _ -> check_known rest
          | None ->
              Error
                (Error.Invalid_request
                   (Printf.sprintf "model %s has no dynamic dim %s" t.built.Common.name name)))
  in
  match check_known env with
  | Error _ as e -> e
  | Ok () -> (
      let missing =
        List.filter (fun (n, _) -> not (List.mem_assoc n env)) t.built.Common.dims
      in
      match missing with
      | (name, _) :: _ -> Error (Error.Unbound_dim name)
      | [] ->
          (* bind via [serve_dims]: on a cache hit the compiled graph is
             the original session's, and its symbols — not this
             session's — are what the executable evaluates *)
          Ok (List.map (fun (n, v) -> (List.assoc n t.serve_dims, v)) env))

(* --- reference (fallback) cost model --------------------------------------

   The framework path executes the graph op by op: one dispatch per
   instruction, every intermediate read and written through global
   memory, no fusion, no speculation. Charging it per instruction keeps
   the fallback's latency honestly worse than the compiled path. *)

let interp_dispatch_us = 4.0 (* framework per-op host overhead *)

(* [g] must be the graph [bnd] was built against: the compiled graph for
   cost-only serving (shared across cached sessions), the session's own
   graph for data-plane interpretation. *)
let reference_profile (t : t) ~(g : Graph.t) (bnd : Table.binding) : Profile.t =
  let tab = Graph.symtab g in
  let profile = Profile.create () in
  let bytes_of (i : Graph.inst) =
    Tensor.Shape.numel (Table.eval_shape tab bnd i.Graph.shape)
    * Tensor.Dtype.byte_size i.Graph.dtype
  in
  Graph.iter g (fun i ->
      match i.Graph.op with
      | Op.Parameter _ | Op.Constant _ -> ()
      | op ->
          let out_bytes = bytes_of i in
          let in_bytes =
            Array.fold_left (fun acc a -> acc + bytes_of (Graph.inst g a)) 0 i.Graph.args
          in
          let numel = Tensor.Shape.numel (Table.eval_shape tab bnd i.Graph.shape) in
          let work =
            {
              Gpusim.Cost.default_work with
              Gpusim.Cost.bytes_read = in_bytes;
              bytes_written = out_bytes;
              flops = Op.flops_per_element op *. float_of_int numel;
              mem_efficiency = 0.6;
              compute_efficiency = 0.4;
              blocks = max 1 (numel / 1024);
            }
          in
          Profile.add profile
            ~kname:(Printf.sprintf "ref%%%d" i.Graph.id)
            ~kind:"interp" ~version_tag:"reference"
            ~time_us:(Gpusim.Cost.kernel_time_us t.device work)
            ~host_us:interp_dispatch_us ~bytes:(in_bytes + out_bytes) ~flops:work.Gpusim.Cost.flops);
  profile

(* --- the retry / fallback ladder ------------------------------------------ *)

let rec attempt t ?(retries_used = ref 0) ~tries_left
    ~(compiled : unit -> ('a, Error.t) result)
    ~(fallback : Error.t -> ('a * path, Error.t) result) () : ('a * path, Error.t) result =
  match compiled () with
  | Ok v ->
      note_clean_pass t;
      Ok (v, `Compiled)
  | Error e when Error.is_transient e ->
      note_fault t e;
      if tries_left > 0 then begin
        Obs.Metrics.inc t.retries_c;
        incr retries_used;
        attempt t ~retries_used ~tries_left:(tries_left - 1) ~compiled ~fallback ()
      end
      else fallback e
  | Error e -> Error e (* permanent: retrying or falling back cannot help *)

let fallback_or_fail t e ~(reference : unit -> ('a, Error.t) result) =
  if not t.policy.fallback_to_interp then Error e
  else
    match reference () with
    | Ok v -> Ok (v, `Fallback)
    | Error e' -> Error e'

(* Request-span bookkeeping: one span per request on the global trace,
   annotated with the serve path, retry count, outcome, and breaker
   state. Kernel spans emitted inside the compiled attempts (and the
   fallback span) advance the virtual clock, so the request span's
   duration is the simulated time actually spent — including failed
   attempts that were retried. *)
let begin_request_span t name env =
  if Obs.Scope.on () then
    Obs.Scope.begin_span ~cat:"request"
      ~args:
        (("model", t.built.Common.name)
        :: List.map (fun (n, v) -> (n, string_of_int v)) env)
      name

let end_request_span t ~outcome ~path ~retries_used =
  if Obs.Scope.on () then
    Obs.Scope.end_span
      ~args:
        [
          ("outcome", outcome);
          ("path", path);
          ("retries", string_of_int retries_used);
          ("despeculated", string_of_int (Hashtbl.length t.tripped));
        ]
      ()

let path_to_string = function `Compiled -> "compiled" | `Fallback -> "fallback"

(* Cost-only request at named dynamic-dim values: the full ladder. *)
let serve_result_slow ?deadline_us (t : t) (env : (string * int) list) :
    (Profile.t * path, Error.t) result =
  let retries_used = ref 0 in
  begin_request_span t "serve" env;
  let fail ~outcome e =
    Obs.Metrics.inc t.failed_c;
    end_request_span t ~outcome ~path:"none" ~retries_used:!retries_used;
    Error e
  in
  match validate_env t env with
  | Error e -> fail ~outcome:"invalid" e
  | Ok dims -> (
      let compiled () =
        Compiler.simulate_result ~device:t.device ?faults:t.faults
          ~despeculate:(is_tripped t) t.active dims
      in
      let reference () =
        match Compiler.binding_of_dims t.compiled.Compiler.exe.Runtime.Executable.g dims with
        | bnd ->
            let p = reference_profile t ~g:t.compiled.Compiler.exe.Runtime.Executable.g bnd in
            if Obs.Scope.on () then
              Obs.Scope.span ~advance:true ~cat:"fallback" ~dur_us:(Profile.total_us p)
                "reference_fallback";
            Ok p
        | exception Table.Inconsistent m -> Error (Error.Fallback_failed m)
      in
      let outcome =
        if t.warmup_remaining_us > 0.0 then
          (* async compile still in flight: this request is served by the
             reference path, and its (virtual) duration is time the
             background compile makes progress in *)
          match reference () with
          | Ok p ->
              t.warmup_remaining_us <- t.warmup_remaining_us -. Profile.total_us p;
              Obs.Metrics.inc t.warmup_c;
              Ok (p, `Fallback)
          | Error e -> Error e
        else
          attempt t ~retries_used ~tries_left:t.policy.max_retries ~compiled
            ~fallback:(fun e -> fallback_or_fail t e ~reference)
            ()
      in
      match outcome with
      | Error e -> fail ~outcome:"error" e
      | Ok (profile, path) -> (
          let lat = Profile.total_us profile in
          match deadline_us with
          | Some budget when lat > budget ->
              fail ~outcome:"deadline"
                (Error.Deadline_exceeded { deadline_us = budget; elapsed_us = lat })
          | _ ->
              record t lat;
              (match path with
              | `Compiled -> Obs.Metrics.inc t.served_c
              | `Fallback -> Obs.Metrics.inc t.fell_back_c);
              end_request_span t ~outcome:"ok" ~path:(path_to_string path)
                ~retries_used:!retries_used;
              Ok (profile, path)))

(* Steady state: the compiled path is live, no fault stream or breaker
   state advances per request, and tracing is off — exactly the regime
   in which [serve_result_slow] is a pure function of [env]. *)
let steady_state (t : t) =
  (match t.faults with None -> true | Some _ -> false)
  && Hashtbl.length t.tripped = 0
  && t.warmup_remaining_us <= 0.0
  && not (Obs.Scope.on ())

(* The signature alphabet is bounded by the bucket ladder in practice;
   the cap is a backstop against adversarial unbounded-shape traffic. *)
let memo_cap = 4096

let serve_result ?deadline_us (t : t) (env : (string * int) list) :
    (Profile.t * path, Error.t) result =
  if not (steady_state t) then serve_result_slow ?deadline_us t env
  else
    match Hashtbl.find_opt t.profile_memo env with
    | Some profile -> (
        (* replay: same counters, ring push, and histogram update as the
           slow path's success branch — only the simulate walk is skipped *)
        let lat = Profile.total_us profile in
        match deadline_us with
        | Some budget when lat > budget ->
            Obs.Metrics.inc t.failed_c;
            Error (Error.Deadline_exceeded { deadline_us = budget; elapsed_us = lat })
        | _ ->
            record t lat;
            Obs.Metrics.inc t.served_c;
            Ok (profile, `Compiled))
    | None ->
        let res = serve_result_slow ?deadline_us t env in
        (match res with
        | Ok (profile, `Compiled) when steady_state t ->
            if Hashtbl.length t.profile_memo >= memo_cap then
              Hashtbl.reset t.profile_memo;
            Hashtbl.replace t.profile_memo env profile
        | _ -> ());
        res

(* --- symbolic memory estimation -------------------------------------------

   The estimate is binding-free (one per compiled artifact); evaluating
   it at a request env is the serving fleet's pre-dispatch HBM check.
   Reduction decisions are decided once per (artifact, bucket rung) and
   cached in the shared Compile_cache so sharing sessions replay rather
   than re-derive them. *)

let mem_estimate t =
  match t.mem_est with
  | Some e -> e
  | None ->
      let e = Mem.Estimate.of_executable t.compiled.Compiler.exe in
      t.mem_est <- Some e;
      e

(* Bind an env against the compiled graph's symbols (serve_dims — on a
   cache hit these belong to the original session's graph). *)
let binding_for_env t (env : (string * int) list) =
  match List.map (fun (n, v) -> (List.assoc n t.serve_dims, v)) env with
  | dims -> (
      match Compiler.binding_of_dims t.compiled.Compiler.exe.Runtime.Executable.g dims with
      | bnd -> Some bnd
      | exception Table.Inconsistent _ -> None)
  | exception Not_found -> None

let mem_peak_bytes t (env : (string * int) list) =
  match Hashtbl.find_opt t.mem_peak_memo env with
  | Some r -> r
  | None ->
      let r =
        Option.bind (binding_for_env t env)
          (Mem.Estimate.peak_bound (mem_estimate t))
      in
      if Hashtbl.length t.mem_peak_memo >= memo_cap then Hashtbl.reset t.mem_peak_memo;
      Hashtbl.replace t.mem_peak_memo env r;
      r

let rung_signature (env : (string * int) list) =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (List.sort compare env))

let mem_reduction t (env : (string * int) list) =
  let compute () =
    let est = mem_estimate t in
    match binding_for_env t env with
    | Some bnd -> Mem.Reduce.decide ~env est bnd
    | None -> Mem.Reduce.identity ~env est (Table.empty_binding ())
  in
  match t.cache with
  | Some (cache, key) -> (
      let rung = rung_signature env in
      match Compile_cache.find_reduction cache ~key ~rung with
      | Some d -> d
      | None ->
          let d = compute () in
          Compile_cache.store_reduction cache ~key ~rung d;
          d)
  | None -> compute ()

(* --- hardware-aware schedule tuning ----------------------------------------

   The tuner is sample-free: [Tune.Search] ranks the device-pruned
   schedule space with the analytical cost model at the given bucket
   rungs, so a plan is a pure function of (artifact, device, rung set).
   Plans ride the shared Compile_cache in a side table (like reduction
   decisions) keyed fingerprint × device × bucket, so one search warms
   every session sharing the artifact — and pool replicas adopt on
   prewarm/revive via [adopt_tuned_schedules]. Adoption rewrites a
   *copy* of the executable into [active]; the cached artifact is never
   mutated, and a session can always be re-tuned for another rung set. *)

let schedule_bucket t sigs =
  t.device.Gpusim.Device.name ^ "|" ^ String.concat "|" (List.sort compare sigs)

let adopt_plan t (plan : Tune.Plan.t) =
  t.active <-
    { t.compiled with Compiler.exe = Tune.Plan.apply plan t.compiled.Compiler.exe };
  t.tuned <- Some plan;
  (* memoized profiles were minted off the untuned kernels *)
  Hashtbl.reset t.profile_memo

let tune (t : t) ~(envs : (string * int) list list) :
    Tune.Plan.t * [ `Tuned | `Cached ] =
  if envs = [] then invalid_arg "Session.tune: no rung envs";
  let rungs =
    List.map
      (fun env ->
        match binding_for_env t env with
        | Some bnd -> { Tune.Search.env; bnd }
        | None ->
            invalid_arg
              (Printf.sprintf "Session.tune: env %s does not bind the model's dims"
                 (rung_signature env)))
      envs
  in
  let search () = Tune.Search.plan ~device:t.device ~rungs t.compiled.Compiler.exe in
  let plan, origin =
    match t.cache with
    | Some (cache, key) -> (
        let bucket = schedule_bucket t (List.map (fun e -> rung_signature e) envs) in
        match Compile_cache.find_schedule cache ~key ~bucket with
        | Some plan -> (plan, `Cached)
        | None ->
            let plan = search () in
            Compile_cache.store_schedule cache ~key ~bucket plan;
            (plan, `Tuned))
    | None -> (search (), `Tuned)
  in
  adopt_plan t plan;
  (plan, origin)

let adopt_tuned_schedules (t : t) : bool =
  match t.cache with
  | Some (cache, key) -> (
      match
        Compile_cache.find_schedule_for_device cache ~key
          ~device:t.device.Gpusim.Device.name
      with
      | Some plan ->
          adopt_plan t plan;
          true
      | None -> false)
  | None -> false

let tuned_plan (t : t) = t.tuned

(* Data-plane request on real tensors; the fallback path computes the
   outputs with the reference interpreter (bit-identical to [Ir.Interp])
   and charges the op-by-op reference cost. *)
let serve_data_result (t : t) (inputs : Tensor.Nd.t list) :
    (Tensor.Nd.t list * Profile.t * path, Error.t) result =
  let g = t.built.Common.graph in
  let retries_used = ref 0 in
  begin_request_span t "serve_data" [];
  let compiled () = Compiler.run_result ~device:t.device ?faults:t.faults t.active inputs in
  let reference () =
    match Ir.Interp.run g inputs with
    | outs ->
        let bnd = Ir.Interp.bind_inputs g inputs in
        let p = reference_profile t ~g bnd in
        if Obs.Scope.on () then
          Obs.Scope.span ~advance:true ~cat:"fallback" ~dur_us:(Profile.total_us p)
            "reference_fallback";
        Ok (outs, p)
    | exception Ir.Interp.Eval_error m -> Error (Error.Fallback_failed m)
    | exception Table.Inconsistent m -> Error (Error.Fallback_failed m)
  in
  let outcome =
    if t.warmup_remaining_us > 0.0 then
      (* async compile in flight: exact Interp numerics, fallback cost *)
      match reference () with
      | Ok v ->
          t.warmup_remaining_us <-
            t.warmup_remaining_us -. Profile.total_us (snd v);
          Obs.Metrics.inc t.warmup_c;
          Ok (v, `Fallback)
      | Error e -> Error e
    else
      attempt t ~retries_used ~tries_left:t.policy.max_retries ~compiled
        ~fallback:(fun e -> fallback_or_fail t e ~reference)
        ()
  in
  match outcome with
  | Error e ->
      Obs.Metrics.inc t.failed_c;
      end_request_span t ~outcome:"error" ~path:"none" ~retries_used:!retries_used;
      Error e
  | Ok ((outs, profile), path) ->
      record t (Profile.total_us profile);
      (match path with
      | `Compiled -> Obs.Metrics.inc t.served_c
      | `Fallback -> Obs.Metrics.inc t.fell_back_c);
      end_request_span t ~outcome:"ok" ~path:(path_to_string path)
        ~retries_used:!retries_used;
      Ok (outs, profile, path)

(* --- legacy exception wrappers -------------------------------------------- *)

let raise_of_error (e : Error.t) =
  match e with
  | Error.Invalid_request m | Error.Unbound_dim m -> invalid_arg m
  | e -> Error.fail e

let serve (t : t) (env : (string * int) list) : Profile.t =
  match serve_result t env with
  | Ok (profile, _) -> profile
  | Error e -> raise_of_error e

let serve_data (t : t) (inputs : Tensor.Nd.t list) : Tensor.Nd.t list * Profile.t =
  match serve_data_result t inputs with
  | Ok (outs, profile, _) -> (outs, profile)
  | Error e -> raise_of_error e

(* --- statistics ----------------------------------------------------------- *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* The stats record is a *view*: outcome counts read straight from the
   metrics registry cells (no shadow ints to drift), percentiles are
   exact over the bounded latency window, breaker state comes from the
   tripped table. *)
let stats (t : t) : stats =
  let arr = ring_contents t.latencies in
  Array.sort compare arr;
  let n = Array.length arr in
  let total = Array.fold_left ( +. ) 0.0 arr in
  {
    requests = Obs.Metrics.counter_value t.requests_c;
    compile_ms = t.compile_ms;
    cache_hit = t.cache_hit;
    mean_us = (if n = 0 then 0.0 else total /. float_of_int n);
    p50_us = percentile arr 0.5;
    p95_us = percentile arr 0.95;
    p99_us = percentile arr 0.99;
    max_us = (if n = 0 then 0.0 else arr.(n - 1));
    served = Obs.Metrics.counter_value t.served_c;
    fell_back = Obs.Metrics.counter_value t.fell_back_c;
    failed = Obs.Metrics.counter_value t.failed_c;
    retries = Obs.Metrics.counter_value t.retries_c;
    faults = Obs.Metrics.counter_value t.faults_c;
    despeculated = Hashtbl.length t.tripped;
    window = n;
  }

let stats_to_string (s : stats) =
  Printf.sprintf
    "requests=%d compile=%.1fs%s mean=%.0fus p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus \
     served=%d fell_back=%d failed=%d retries=%d faults=%d despeculated=%d"
    s.requests (s.compile_ms /. 1000.0)
    (if s.cache_hit then " (cache hit)" else "")
    s.mean_us s.p50_us s.p95_us s.p99_us s.max_us s.served s.fell_back s.failed s.retries
    s.faults s.despeculated
