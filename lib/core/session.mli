(** Serving sessions: compile a model once, answer requests at arbitrary
    dynamic shapes, and track latency percentiles over a bounded window.

    The session is the resilience boundary of the stack. A request that
    fails on the compiled path (kernel fault, OOM, bad binding) never
    crashes the host; the graceful-degradation ladder is

    {v compiled path -> retry (transient faults) -> reference fallback v}

    where the reference fallback serves exact [Ir.Interp] numerics at
    op-by-op (unfused, eager-dispatch) cost. A per-kernel circuit
    breaker de-speculates a kernel — pins it to its generic codegen
    version — after [breaker_threshold] consecutive faults. *)

type t

type policy = {
  max_retries : int;  (** compiled-path re-runs after a transient fault *)
  breaker_threshold : int;  (** consecutive faults that de-speculate a kernel *)
  fallback_to_interp : bool;  (** serve via the reference path after retries *)
}

val default_policy : policy
(** [{ max_retries = 1; breaker_threshold = 3; fallback_to_interp = true }] *)

type path = [ `Compiled | `Fallback ]
(** Which path ultimately served the request. *)

type stats = {
  requests : int;
  compile_ms : float;
      (** compile cost charged to this session — [0.] on a cache hit *)
  cache_hit : bool;  (** artifact came from the shared {!Compile_cache} *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
  served : int;  (** compiled-path successes *)
  fell_back : int;  (** served by the reference path *)
  failed : int;  (** structured errors returned to callers *)
  retries : int;
  faults : int;  (** kernel faults / OOMs observed *)
  despeculated : int;  (** kernels pinned to their generic version *)
  window : int;  (** latencies retained for the percentile window *)
}

val default_window : int
(** Capacity of the latency ring buffer (1024). *)

val create :
  ?options:Compiler.options ->
  ?device:Gpusim.Device.t ->
  ?policy:policy ->
  ?fault_config:Gpusim.Fault.config ->
  ?window:int ->
  ?metrics:Obs.Metrics.t ->
  ?cache:Compile_cache.t ->
  ?async_compile:bool ->
  Models.Common.built ->
  t
(** Compiles immediately; every later request reuses the artifact.
    [fault_config] arms deterministic fault injection for this session.
    [metrics] is the registry the session's outcome counters and latency
    histogram live in (default: a fresh private registry). The registry
    is the single source of truth: {!stats} is a view over it.

    [cache] consults/populates a shared {!Compile_cache}: on a hit the
    session reuses the cached executable, reports [compile_ms = 0.] and
    [cache_hit = true], and — if its circuit breaker later de-speculates
    a kernel — invalidates the shared entry so fresh sessions recompile.

    [async_compile] (default false) starts the session with the compile
    "in flight": for the first [compile_ms] of virtual request time,
    requests are served by the reference (Interp-exact) path while the
    background compile completes, then the session transparently
    switches to the compiled path. A cache hit makes the artifact
    available immediately (no warmup window). *)

val metrics : t -> Obs.Metrics.t
(** The session's registry — counters [session.requests/served/
    fell_back/failed/retries/faults/warmup_served] and histogram
    [session.latency_us]; snapshot or export it with {!Obs.Metrics}. *)

val cache_hit : t -> bool

val device : t -> Gpusim.Device.t
(** The simulated device this session serves on. *)

val model_name : t -> string
(** Name of the built model this session was created from. *)

val in_warmup : t -> bool
(** Still inside the async-compile window (next request falls back). *)

val warmup_remaining_us : t -> float
(** Virtual time left until the async compile completes (0 if ready). *)

val finish_warmup : t -> unit
(** Mark the async compile complete: subsequent requests use the
    compiled path. The session only observes virtual {e request} time;
    a driver that owns a wall clock (e.g.
    {!Workloads.Queueing.simulate_server} with [~warmup]) calls this
    once its clock passes the compile window. Idempotent. *)

val set_fault_rates :
  t -> ?seed:int -> kernel_fault_rate:float -> oom_rate:float -> unit -> unit
(** Retune this session's deterministic fault injection mid-run (chaos:
    a device turning flaky, then recovering). An armed injector keeps
    its stream position; a session created without [fault_config] arms a
    fresh injector at [seed] (default 0) if either rate is positive.
    @raise Invalid_argument if a rate is outside [0,1]. *)

val fault_rates : t -> float * float
(** Current [(kernel_fault_rate, oom_rate)] — [(0., 0.)] when unarmed. *)

val serve_result :
  ?deadline_us:float ->
  t ->
  (string * int) list ->
  (Runtime.Profile.t * path, Runtime.Error.t) result
(** Cost-only request at named dynamic-dim values
    (e.g. [[("batch", 4); ("seq", 73)]]). Validates the binding, runs
    the retry/fallback ladder, and records latency + outcome counters.
    With [deadline_us], a request whose simulated latency exceeds the
    budget returns [Deadline_exceeded] and counts as failed.

    In steady state — no fault injection armed, no tripped kernels,
    warmup drained, tracing off — the result at a given env is a pure
    function of the env, and repeated envs are served from a per-session
    memo without re-walking the executable (the serving pool's warm-path
    fast lane). Any departure from steady state bypasses the memo, so
    fault streams, breaker bookkeeping, and span emission are never
    skipped. *)

val serve_data_result :
  t ->
  Tensor.Nd.t list ->
  (Tensor.Nd.t list * Runtime.Profile.t * path, Runtime.Error.t) result
(** Data-plane request on real tensors. On fallback the outputs are
    computed by the reference interpreter — bit-identical to
    [Ir.Interp.run] — and cost is charged at the op-by-op rate. *)

val serve : t -> (string * int) list -> Runtime.Profile.t
(** Legacy wrapper over {!serve_result}.
    @raise Invalid_argument on malformed requests (unknown or missing dim)
    @raise Runtime.Error.Error on execution failures *)

val serve_data : t -> Tensor.Nd.t list -> Tensor.Nd.t list * Runtime.Profile.t
(** Legacy wrapper over {!serve_data_result}; same raising behaviour. *)

val mem_estimate : t -> Mem.Estimate.t
(** The symbolic peak-memory estimate of this session's compiled
    executable ({!Mem.Estimate}), built lazily once per session. *)

val mem_peak_bytes : t -> (string * int) list -> int option
(** Evaluated {!Mem.Estimate.peak_bound} (arena + resident) at a request
    env — the number the serving budget gate compares against a
    replica's HBM budget {e before} dispatching. Memoized per env; a
    pure function of the env. [None] when the env doesn't bind (unknown
    dim, inconsistent shape). *)

val mem_reduction : t -> (string * int) list -> Mem.Reduce.decision
(** The memory-reduction decision ({!Mem.Reduce.decide}) at a
    bucket-rung-ceiling env. With a shared {!Compile_cache} attached the
    decision is decided once per (artifact, rung) and replayed by every
    sharing session. *)

val tune :
  t -> envs:(string * int) list list -> Tune.Plan.t * [ `Tuned | `Cached ]
(** Hardware-aware schedule autotuning at representative bucket-rung
    envs. Sample-free: {!Tune.Search} ranks the device-pruned schedule
    space with the analytical cost model — no profiling runs — so the
    plan is a pure (deterministic) function of (artifact, device, rung
    set). The returned plan is adopted immediately: subsequent requests
    serve through an immutably rewritten copy of the executable (the
    shared cached artifact is untouched).

    With a shared {!Compile_cache} attached, plans persist in a side
    table keyed fingerprint × device × rung-set bucket: the first call
    searches and stores ([`Tuned]), later calls — from any session
    sharing the artifact — replay ([`Cached]).
    @raise Invalid_argument if [envs] is empty or an env does not bind
    the model's dynamic dims. *)

val adopt_tuned_schedules : t -> bool
(** Warm-start from the fleet's tuned artifacts: look up any plan tuned
    for this artifact on this session's device in the shared cache and
    adopt it. [true] if a plan was adopted. [false] without a cache or
    when nothing was tuned yet — the session keeps serving the default
    speculative version set. Pool replicas call this on prewarm and
    post-crash revive. *)

val tuned_plan : t -> Tune.Plan.t option
(** The adopted tuned-schedule plan, if any. *)

val despeculated_kernels : t -> string list
(** Kernels the circuit breaker has pinned to their generic version. *)

val despeculated_count : t -> int
(** [List.length (despeculated_kernels t)] without building the list —
    the router scores replicas with this on every dispatch. *)

val ingest_hints : t -> (string * int list) list -> unit
(** Online distribution feedback: replace the likely-value hints on the
    named dynamic dims of the compiled graph's symbol table (via
    {!Symshape.Table.set_likely} — replace semantics, so stale hints
    age out). Advisory only: no bound is tightened and serving at any
    shape is unchanged; the hints steer what {!Specialize} mints and
    what a recompile would speculate on. Unknown dim names are ignored.
    Counted in the registry as [session.shape_hints]. *)

val shape_hints : t -> int
(** Total likely values ingested through {!ingest_hints}. *)

val stats : t -> stats
val stats_to_string : stats -> string
