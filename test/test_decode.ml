(* Tests for the continuous-batching decode subsystem. Everything runs
   at tiny model scale; load parameters are chosen so the decode
   workers actually queue (service ~0.2 ms/step at tiny scale). *)

module Scheduler = Decode.Scheduler
module Sequence = Decode.Sequence
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Table = Symshape.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let a10 =
  match Gpusim.Device.by_name "A10" with
  | Some d -> d
  | None -> Alcotest.fail "no A10 device"

let tiny_decode () = Models.Gpt2.build_decode ~config:Models.Gpt2.tiny ()
let tiny_prefill () = Models.Gpt2.build ~config:Models.Gpt2.tiny ()

(* tiny max_pos = 64: prompts and generations must fit the cache bound *)
let tiny_reqs ~seed ~qps ~n =
  Scheduler.gen_requests ~seed ~qps ~n
    ~prompt:(Workloads.Trace.Skewed (4, 16))
    ~max_new:(Workloads.Trace.Uniform (4, 12))

let tiny_config ?(mode = Scheduler.Continuous) ?(devices = [ a10; a10; a10 ]) () =
  let base = Scheduler.default_config ~devices in
  { base with Scheduler.mode; cache_scheme = Bucket.Linear 8; max_decode_batch = 8 }

let run ?cache ?(mode = Scheduler.Continuous) reqs =
  Scheduler.run ?cache ~prefill:tiny_prefill ~decode:tiny_decode
    (tiny_config ~mode ()) reqs

(* --- sequence state machine ------------------------------------------------ *)

let test_sequence_lifecycle () =
  let s = Sequence.create ~id:0 ~arrival_us:100.0 ~prompt:7 ~max_new:3 ~cls:Slo.Standard in
  check_bool "starts waiting" true (s.Sequence.phase = Sequence.Waiting);
  check_int "cache holds the prompt" 7 s.Sequence.kv_len;
  Sequence.note_prefilled s ~now:600.0;
  check_bool "decoding after prefill" true (Sequence.active s);
  check_int "first token out" 1 s.Sequence.generated;
  check_int "cache grew by one" 8 s.Sequence.kv_len;
  Alcotest.(check (float 1e-9)) "ttft stops at prefill" 500.0 s.Sequence.ttft_us;
  Sequence.note_token s ~now:800.0;
  check_bool "still decoding" true (Sequence.active s);
  Sequence.note_token s ~now:1100.0;
  check_bool "finished on max_new-th token" true (s.Sequence.phase = Sequence.Finished);
  check_int "generated = max_new" 3 s.Sequence.generated;
  check_int "cache = prompt + generated" 10 s.Sequence.kv_len;
  Alcotest.(check (list (float 1e-9))) "tpot gaps newest-first" [ 300.0; 200.0 ]
    s.Sequence.gaps_us;
  Alcotest.(check (float 1e-9)) "finish stamped" 1100.0 s.Sequence.finished_us

let test_sequence_single_token () =
  let s = Sequence.create ~id:1 ~arrival_us:0.0 ~prompt:4 ~max_new:1 ~cls:Slo.Interactive in
  Sequence.note_prefilled s ~now:250.0;
  check_bool "max_new=1 finishes at prefill" true (s.Sequence.phase = Sequence.Finished);
  check_bool "no decode gaps" true (s.Sequence.gaps_us = [])

let test_sequence_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "prompt >= 1" true
    (rejects (fun () ->
         Sequence.create ~id:0 ~arrival_us:0.0 ~prompt:0 ~max_new:4 ~cls:Slo.Standard));
  check_bool "max_new >= 1" true
    (rejects (fun () ->
         Sequence.create ~id:0 ~arrival_us:0.0 ~prompt:4 ~max_new:0 ~cls:Slo.Standard))

(* --- decode-step graph ----------------------------------------------------- *)

let test_decode_graph_growing_fact () =
  let built = tiny_decode () in
  let tab = Ir.Graph.symtab built.Models.Common.graph in
  check_bool "cache dim carries the monotone-growth fact" true
    (Table.growing tab (Models.Common.dim_exn built "cache"));
  check_bool "batch dim does not" false
    (Table.growing tab (Models.Common.dim_exn built "batch"));
  let prefill = tiny_prefill () in
  check_bool "prefill seq dim does not" false
    (Table.growing
       (Ir.Graph.symtab prefill.Models.Common.graph)
       (Models.Common.dim_exn prefill "seq"))

let test_decode_graph_serves_along_ladder () =
  (* one session, one compile; the cache dim climbs its bucket ladder
     and every rung serves on the compiled path *)
  let s = Disc.Session.create (tiny_decode ()) in
  let ladder = Bucket.ladder (Bucket.Linear 8) ~lb:1 ~ub:64 in
  check_int "linear-8 ladder on [1,64]" 8 (List.length ladder);
  List.iter
    (fun c ->
      match Disc.Session.serve_result s [ ("batch", 2); ("cache", c) ] with
      | Ok (p, _) ->
          check_bool
            (Printf.sprintf "cache=%d serves at positive cost" c)
            true
            (Runtime.Profile.total_us p > 0.0)
      | Error e ->
          Alcotest.failf "cache=%d failed: %s" c (Runtime.Error.to_string e))
    ladder;
  let st = Disc.Session.stats s in
  check_int "one graph, many shapes, zero recompiles"
    (List.length ladder) st.Disc.Session.served

(* --- scheduler ------------------------------------------------------------- *)

let test_continuous_completes_all () =
  let reqs = tiny_reqs ~seed:11 ~qps:2000.0 ~n:40 in
  let r = run reqs in
  check_int "all sequences finished" 40 r.Scheduler.finished;
  check_int "nothing lost" 0 r.Scheduler.lost;
  check_int "every request prefilled exactly once"
    (List.fold_left (fun a (q : Scheduler.request) -> a + q.Scheduler.max_new) 0 reqs)
    r.Scheduler.tokens;
  check_bool "throughput measured" true (r.Scheduler.tokens_per_s > 0.0);
  check_bool "ttft percentiles ordered" true
    (r.Scheduler.ttft_p50_us <= r.Scheduler.ttft_p99_us);
  check_bool "tpot percentiles ordered" true
    (r.Scheduler.tpot_p50_us <= r.Scheduler.tpot_p99_us)

let test_shared_cache_compiles_once_per_graph () =
  let cache = Disc.Compile_cache.create () in
  let r = run ~cache (tiny_reqs ~seed:3 ~qps:2000.0 ~n:16) in
  (* 3 workers = 1 prefill session + 2 decode sessions, but only two
     graphs: each compiles exactly once, the rest are cache hits —
     never once per token *)
  check_int "two compiles for two graphs" 2 r.Scheduler.cache.Disc.Compile_cache.misses;
  check_bool "remaining sessions hit the shared cache" true
    (r.Scheduler.cache.Disc.Compile_cache.hits >= 1);
  check_int "no corrupt artifacts" 0 r.Scheduler.cache.Disc.Compile_cache.corrupt

let test_signature_alphabet_bounded () =
  let r = run (tiny_reqs ~seed:5 ~qps:4000.0 ~n:64) in
  (* decode signatures live on batch-ladder x cache-ladder; prefill
     adds batch x prompt rungs. The point: far fewer signatures than
     dispatches, and most dispatches warm. *)
  let batch_rungs = List.length (Bucket.ladder Bucket.Pow2 ~lb:1 ~ub:8) in
  let cache_rungs = List.length (Bucket.ladder (Bucket.Linear 8) ~lb:1 ~ub:64) in
  let prompt_rungs = List.length (Bucket.ladder Bucket.Pow2 ~lb:1 ~ub:16) in
  check_bool "signatures within the declared alphabet" true
    (r.Scheduler.signatures <= (batch_rungs * cache_rungs) + (batch_rungs * prompt_rungs));
  check_bool "signatures repeat across dispatches" true
    (r.Scheduler.signatures < r.Scheduler.dispatches / 2);
  check_bool "most dispatches warm" true (r.Scheduler.warm_rate > 0.5)

let test_deterministic_rerun () =
  let reqs = tiny_reqs ~seed:42 ~qps:3000.0 ~n:48 in
  let a = run reqs and b = run reqs in
  Alcotest.(check string) "bit-identical schedules" (Scheduler.digest a)
    (Scheduler.digest b);
  check_bool "digest is non-trivial" true (String.length (Scheduler.digest a) > 40);
  let c = run (tiny_reqs ~seed:43 ~qps:3000.0 ~n:48) in
  check_bool "different seed, different schedule" true
    (Scheduler.digest a <> Scheduler.digest c)

let test_static_mode_completes_all () =
  let reqs = tiny_reqs ~seed:11 ~qps:2000.0 ~n:40 in
  let r = run ~mode:Scheduler.Static reqs in
  check_int "all finished" 40 r.Scheduler.finished;
  check_int "nothing lost" 0 r.Scheduler.lost;
  check_bool "request-level batching wastes slots on finished members" true
    (r.Scheduler.decode_slot_waste > 0.0)

let test_continuous_beats_static_ttft () =
  (* saturating burst: static mode's head-of-line blocking shows up as
     tail TTFT; continuous admits arrivals between decode steps *)
  let reqs = tiny_reqs ~seed:7 ~qps:4000.0 ~n:64 in
  let c = run reqs and s = run ~mode:Scheduler.Static reqs in
  check_bool "continuous p99 TTFT at or below static" true
    (c.Scheduler.ttft_p99_us <= s.Scheduler.ttft_p99_us);
  check_bool "continuous decode batches are fuller" true
    (c.Scheduler.mean_decode_batch >= s.Scheduler.mean_decode_batch)

let test_gen_requests_deterministic () =
  let a = tiny_reqs ~seed:9 ~qps:100.0 ~n:20 in
  let b = tiny_reqs ~seed:9 ~qps:100.0 ~n:20 in
  check_bool "same seed, same stream" true (a = b);
  check_bool "arrivals ascend" true
    (let rec mono = function
       | (x : Scheduler.request) :: (y :: _ as rest) ->
           x.Scheduler.arrival_us <= y.Scheduler.arrival_us && mono rest
       | _ -> true
     in
     mono a);
  check_bool "all classes representable" true
    (List.for_all
       (fun (q : Scheduler.request) -> q.Scheduler.prompt >= 1 && q.Scheduler.max_new >= 1)
       a)

let test_config_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "continuous needs >= 2 devices" true
    (rejects (fun () ->
         Scheduler.run ~prefill:tiny_prefill ~decode:tiny_decode
           (tiny_config ~devices:[ a10 ] ())
           (tiny_reqs ~seed:1 ~qps:100.0 ~n:2)));
  check_bool "prefill_workers must leave decode capacity" true
    (rejects (fun () ->
         let cfg = { (tiny_config ()) with Scheduler.prefill_workers = 3 } in
         Scheduler.run ~prefill:tiny_prefill ~decode:tiny_decode cfg
           (tiny_reqs ~seed:1 ~qps:100.0 ~n:2)));
  check_bool "request exceeding the cache bound rejected" true
    (rejects (fun () ->
         Scheduler.run ~prefill:tiny_prefill ~decode:tiny_decode (tiny_config ())
           [ { Scheduler.arrival_us = 0.0; prompt = 40; max_new = 40; cls = Slo.Standard } ]))

let () =
  Alcotest.run "decode"
    [
      ( "sequence",
        [
          Alcotest.test_case "lifecycle" `Quick test_sequence_lifecycle;
          Alcotest.test_case "single token" `Quick test_sequence_single_token;
          Alcotest.test_case "validation" `Quick test_sequence_validation;
        ] );
      ( "graph",
        [
          Alcotest.test_case "growing fact" `Quick test_decode_graph_growing_fact;
          Alcotest.test_case "serves along the cache ladder" `Quick
            test_decode_graph_serves_along_ladder;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "continuous completes all" `Quick
            test_continuous_completes_all;
          Alcotest.test_case "compiles once per graph" `Quick
            test_shared_cache_compiles_once_per_graph;
          Alcotest.test_case "bounded signature alphabet" `Quick
            test_signature_alphabet_bounded;
          Alcotest.test_case "deterministic rerun" `Quick test_deterministic_rerun;
          Alcotest.test_case "static completes all" `Quick test_static_mode_completes_all;
          Alcotest.test_case "continuous beats static on tail TTFT" `Quick
            test_continuous_beats_static_ttft;
          Alcotest.test_case "request stream" `Quick test_gen_requests_deterministic;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
