(* Tests for the symbolic shape representation: union-find merges,
   ranges, likely values, product-equality reasoning, derived dims and
   runtime bindings. *)

module Sym = Symshape.Sym
module Table = Symshape.Table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_fresh_distinct () =
  let t = Table.create () in
  let a = Table.fresh t and b = Table.fresh t in
  check_bool "distinct symbols not equal" false (Table.equal_dims t a b);
  check_bool "self equal" true (Table.equal_dims t a a)

let test_merge_transitive () =
  let t = Table.create () in
  let a = Table.fresh t and b = Table.fresh t and c = Table.fresh t in
  Table.merge t a b;
  Table.merge t b c;
  check_bool "a=c by transitivity" true (Table.equal_dims t a c)

let test_merge_static () =
  let t = Table.create () in
  let a = Table.fresh t in
  Table.merge t a (Sym.Static 64);
  (match Table.resolve t a with
  | Sym.Static 64 -> ()
  | d -> Alcotest.failf "expected Static 64, got %s" (Sym.dim_to_string d));
  check_bool "equals its value" true (Table.equal_dims t a (Sym.Static 64));
  Alcotest.check_raises "contradiction"
    (Table.Inconsistent "cannot merge static dims 64 and 32") (fun () ->
      Table.merge t a (Sym.Static 32))

let test_merge_propagates_value_through_class () =
  let t = Table.create () in
  let a = Table.fresh t and b = Table.fresh t in
  Table.merge t a b;
  Table.merge t b (Sym.Static 7);
  check_bool "a sees the binding" true (Table.equal_dims t a (Sym.Static 7))

let test_ranges () =
  let t = Table.create () in
  let a = Table.fresh ~lb:2 ~ub:128 t in
  check_int "lb" 2 (Table.lower_bound t a);
  Alcotest.(check (option int)) "ub" (Some 128) (Table.upper_bound t a);
  Table.set_range t a ~lb:4 ~ub:64 ();
  check_int "tightened lb" 4 (Table.lower_bound t a);
  Alcotest.(check (option int)) "tightened ub" (Some 64) (Table.upper_bound t a)

let test_range_merge_tightens () =
  let t = Table.create () in
  let a = Table.fresh ~lb:2 ~ub:100 t in
  let b = Table.fresh ~lb:5 ~ub:50 t in
  Table.merge t a b;
  check_int "merged lb is max" 5 (Table.lower_bound t a);
  Alcotest.(check (option int)) "merged ub is min" (Some 50) (Table.upper_bound t a)

let test_likely () =
  let t = Table.create () in
  let a = Table.fresh ~likely:[ 64 ] t in
  Table.add_likely t a [ 128; 64 ];
  Alcotest.(check (list int)) "sorted unique" [ 64; 128 ] (Table.likely_values t a)

let test_growing () =
  let t = Table.create () in
  let a = Table.fresh ~name:"cache" t in
  let b = Table.fresh t in
  Alcotest.(check bool) "fresh is not growing" false (Table.growing t a);
  Table.set_growing t a;
  Alcotest.(check bool) "marked" true (Table.growing t a);
  (* the fact is a class property: it survives merging *)
  Table.merge t a b;
  Alcotest.(check bool) "survives merge (queried via b)" true (Table.growing t b);
  (* static dims: advisory no-op on both sides *)
  Table.set_growing t (Sym.Static 7);
  Alcotest.(check bool) "static never grows" false (Table.growing t (Sym.Static 7))

let test_binding_out_of_range_rejected () =
  let t = Table.create () in
  let a = Table.fresh ~lb:2 ~ub:8 t in
  Alcotest.check_raises "below lb" (Table.Inconsistent "symbol  value 1 below lower bound 2")
    (fun () -> Table.merge t a (Sym.Static 1))

(* --- products ----------------------------------------------------------- *)

let test_product_basic () =
  let t = Table.create () in
  let b = Table.fresh t and s = Table.fresh t and bs = Table.fresh t in
  (* reshape [b, s, 768] -> [bs, 768] records b*s = bs *)
  Table.record_product_equal t [| b; s |] [| bs |];
  check_bool "b*s = bs" true (Table.products_equal t [| b; s |] [| bs |]);
  check_bool "with common static factor" true
    (Table.products_equal t [| b; s; Sym.Static 768 |] [| bs; Sym.Static 768 |]);
  check_bool "not equal to unrelated" false (Table.products_equal t [| b |] [| bs |])

let test_product_transitive () =
  let t = Table.create () in
  let b = Table.fresh t and s = Table.fresh t in
  let bs = Table.fresh t and bs2 = Table.fresh t in
  Table.record_product_equal t [| b; s |] [| bs |];
  Table.record_product_equal t [| b; s |] [| bs2 |];
  check_bool "bs = bs2 via b*s" true (Table.products_equal t [| bs |] [| bs2 |])

let test_product_single_dim_becomes_merge () =
  let t = Table.create () in
  let a = Table.fresh t and b = Table.fresh t in
  Table.record_product_equal t [| a |] [| b |];
  check_bool "degenerate product = merge" true (Table.equal_dims t a b);
  check_int "no fact recorded" 0 (Table.num_product_facts t)

let test_product_static_binding () =
  let t = Table.create () in
  let a = Table.fresh t in
  Table.record_product_equal t [| a; Sym.Static 4 |] [| Sym.Static 64 |];
  check_bool "a bound to 16" true (Table.equal_dims t a (Sym.Static 16))

let test_numel_equal_through_reshape_chain () =
  let t = Table.create () in
  let b = Table.fresh t and s = Table.fresh t and h = Table.fresh t in
  let m = Table.fresh t in
  (* [b,s,h] -> [m,h] (m = b*s); is numel [b,s,h] = numel [m,h]? *)
  Table.record_product_equal t [| b; s |] [| m |];
  check_bool "numel equal" true (Table.numel_equal t [| b; s; h |] [| m; h |]);
  check_bool "numel differs with extra factor" false
    (Table.numel_equal t [| b; s; h |] [| m; h; Sym.Static 2 |])

let test_static_products () =
  let t = Table.create () in
  check_bool "12 = 3*4" true
    (Table.products_equal t [| Sym.Static 12 |] [| Sym.Static 3; Sym.Static 4 |]);
  check_bool "12 <> 8" false (Table.products_equal t [| Sym.Static 12 |] [| Sym.Static 8 |])

(* --- derived dims ------------------------------------------------------- *)

let test_affine_static_folds () =
  let t = Table.create () in
  match Table.fresh_affine t ~base:(Sym.Static 10) ~add:(-2) ~div:2 ~mul:1 ~post:1 with
  | Sym.Static 5 -> ()
  | d -> Alcotest.failf "expected 5, got %s" (Sym.dim_to_string d)

let test_affine_runtime_eval () =
  let t = Table.create () in
  let h = Table.fresh ~lb:3 ~ub:100 t in
  (* conv output: (h + 2*1 - 3)/2 + 1 *)
  let oh = Table.fresh_affine t ~base:h ~add:(-1) ~div:2 ~mul:1 ~post:1 in
  check_int "lb propagated" 2 (Table.lower_bound t oh);
  Alcotest.(check (option int)) "ub propagated" (Some 50) (Table.upper_bound t oh);
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd h 11;
  Alcotest.(check (option int)) "evaluates from base" (Some 6) (Table.eval_dim t bnd oh)

let test_sum_derived () =
  let t = Table.create () in
  let a = Table.fresh ~lb:1 ~ub:10 t and b = Table.fresh ~lb:2 ~ub:20 t in
  let s = Table.fresh_sum t [ a; b ] in
  check_int "lb sum" 3 (Table.lower_bound t s);
  Alcotest.(check (option int)) "ub sum" (Some 30) (Table.upper_bound t s);
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd a 4;
  Table.bind_dim t bnd b 5;
  Alcotest.(check (option int)) "eval" (Some 9) (Table.eval_dim t bnd s)

let test_sum_static_folds () =
  let t = Table.create () in
  match Table.fresh_sum t [ Sym.Static 3; Sym.Static 4 ] with
  | Sym.Static 7 -> ()
  | d -> Alcotest.failf "expected 7, got %s" (Sym.dim_to_string d)

(* --- bindings ----------------------------------------------------------- *)

let test_bind_shape () =
  let t = Table.create () in
  let b = Table.fresh t and s = Table.fresh t in
  let shape = [| b; s; Sym.Static 768 |] in
  let bnd = Table.empty_binding () in
  Table.bind_shape t bnd shape [| 4; 17; 768 |];
  Alcotest.(check (array int)) "eval shape" [| 4; 17; 768 |] (Table.eval_shape t bnd shape)

let test_bind_conflict () =
  let t = Table.create () in
  let s = Table.fresh t in
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd s 8;
  Alcotest.check_raises "conflicting binding"
    (Table.Inconsistent "runtime value 9 contradicts earlier binding 8 for s0") (fun () ->
      Table.bind_dim t bnd s 9)

let test_bind_shared_symbol_across_shapes () =
  let t = Table.create () in
  let b = Table.fresh t and s1 = Table.fresh t and s2 = Table.fresh t in
  Table.merge t s1 s2;
  let bnd = Table.empty_binding () in
  Table.bind_shape t bnd [| b; s1 |] [| 2; 10 |];
  (* s2 is in the same class: binding must agree *)
  Table.bind_shape t bnd [| b; s2 |] [| 2; 10 |];
  Alcotest.(check (option int)) "shared" (Some 10) (Table.eval_dim t bnd s2)

let test_upper_bound_numel () =
  let t = Table.create () in
  let a = Table.fresh ~ub:128 t and b = Table.fresh ~ub:4 t in
  Alcotest.(check (option int)) "bounded" (Some (128 * 4 * 8))
    (Table.shape_upper_bound_numel t [| a; b; Sym.Static 8 |]);
  let c = Table.fresh t in
  Alcotest.(check (option int)) "unbounded" None
    (Table.shape_upper_bound_numel t [| a; c |])

let test_eval_via_product_fact () =
  (* bp = b * p recovered at runtime from the product fact *)
  let t = Table.create () in
  let b = Table.fresh t and p = Table.fresh t and bp = Table.fresh t in
  Table.record_product_equal t [| b; p |] [| bp |];
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd b 3;
  Table.bind_dim t bnd p 7;
  Alcotest.(check (option int)) "bp = 21" (Some 21) (Table.eval_dim t bnd bp)

let test_eval_via_fact_reverse () =
  (* and the other direction: b recovered from bp and p *)
  let t = Table.create () in
  let b = Table.fresh t and p = Table.fresh t and bp = Table.fresh t in
  Table.record_product_equal t [| b; p |] [| bp |];
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd bp 21;
  Table.bind_dim t bnd p 7;
  Alcotest.(check (option int)) "b = 3" (Some 3) (Table.eval_dim t bnd b)

let test_eval_fact_indivisible_gives_none () =
  let t = Table.create () in
  let b = Table.fresh t and p = Table.fresh t and bp = Table.fresh t in
  Table.record_product_equal t [| b; p |] [| bp |];
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd bp 22;
  Table.bind_dim t bnd p 7;
  Alcotest.(check (option int)) "22/7 not integral" None (Table.eval_dim t bnd b)

let test_affine_chain_eval () =
  (* two derivation hops: conv of a conv *)
  let t = Table.create () in
  let h = Table.fresh ~lb:8 t in
  let h1 = Table.fresh_affine t ~base:h ~add:(-1) ~div:2 ~mul:1 ~post:1 in
  let h2 = Table.fresh_affine t ~base:h1 ~add:(-1) ~div:2 ~mul:1 ~post:1 in
  let bnd = Table.empty_binding () in
  Table.bind_dim t bnd h 21;
  (* h1 = (21-1)/2+1 = 11; h2 = (11-1)/2+1 = 6 *)
  Alcotest.(check (option int)) "chained" (Some 6) (Table.eval_dim t bnd h2)

let test_cancellation_both_sides () =
  (* h * a * b = h * c with shared h: cancels to a*b = c *)
  let t = Table.create () in
  let h = Table.fresh t and a = Table.fresh t and b = Table.fresh t and c = Table.fresh t in
  Table.record_product_equal t [| h; a; b |] [| h; c |];
  check_bool "reduced fact works" true (Table.products_equal t [| a; b |] [| c |])

let test_product_query_unbinds_nothing () =
  (* queries never mutate the table *)
  let t = Table.create () in
  let a = Table.fresh t and b = Table.fresh t in
  let before = Table.num_symbols t in
  ignore (Table.products_equal t [| a |] [| b |]);
  check_int "no new symbols" before (Table.num_symbols t);
  check_bool "still unequal" false (Table.equal_dims t a b)

(* --- properties ---------------------------------------------------------- *)

let prop_merge_equiv_relation =
  QCheck.Test.make ~name:"merge produces an equivalence relation" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (pair (int_range 0 9) (int_range 0 9)))
    (fun pairs ->
      let t = Table.create () in
      let syms = Array.init 10 (fun _ -> Table.fresh t) in
      List.iter (fun (i, j) -> Table.merge t syms.(i) syms.(j)) pairs;
      (* reflexive, symmetric, transitive over the 10 symbols *)
      let eq i j = Table.equal_dims t syms.(i) syms.(j) in
      let ok = ref true in
      for i = 0 to 9 do
        if not (eq i i) then ok := false;
        for j = 0 to 9 do
          if eq i j <> eq j i then ok := false;
          for k = 0 to 9 do
            if eq i j && eq j k && not (eq i k) then ok := false
          done
        done
      done;
      !ok)

let prop_products_respect_merges =
  QCheck.Test.make ~name:"product equality invariant under symbol merge order" ~count:50
    QCheck.(int_range 2 6)
    (fun n ->
      let t = Table.create () in
      let a = Table.fresh t and b = Table.fresh t and m = Table.fresh t in
      Table.record_product_equal t [| a; b |] [| m |];
      (* bind a afterwards; products must still resolve *)
      Table.merge t a (Sym.Static n);
      Table.products_equal t [| Sym.Static n; b |] [| m |])

let () =
  Alcotest.run "symshape"
    [
      ( "table",
        [
          Alcotest.test_case "fresh distinct" `Quick test_fresh_distinct;
          Alcotest.test_case "merge transitive" `Quick test_merge_transitive;
          Alcotest.test_case "merge static" `Quick test_merge_static;
          Alcotest.test_case "value through class" `Quick test_merge_propagates_value_through_class;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "range merge tightens" `Quick test_range_merge_tightens;
          Alcotest.test_case "likely values" `Quick test_likely;
          Alcotest.test_case "monotone-growth fact" `Quick test_growing;
          Alcotest.test_case "range rejects binding" `Quick test_binding_out_of_range_rejected;
        ] );
      ( "products",
        [
          Alcotest.test_case "basic" `Quick test_product_basic;
          Alcotest.test_case "transitive" `Quick test_product_transitive;
          Alcotest.test_case "degenerate merge" `Quick test_product_single_dim_becomes_merge;
          Alcotest.test_case "static binding" `Quick test_product_static_binding;
          Alcotest.test_case "numel through reshape" `Quick test_numel_equal_through_reshape_chain;
          Alcotest.test_case "static products" `Quick test_static_products;
        ] );
      ( "derived",
        [
          Alcotest.test_case "affine folds" `Quick test_affine_static_folds;
          Alcotest.test_case "affine runtime eval" `Quick test_affine_runtime_eval;
          Alcotest.test_case "sum derived" `Quick test_sum_derived;
          Alcotest.test_case "sum folds" `Quick test_sum_static_folds;
        ] );
      ( "runtime inference",
        [
          Alcotest.test_case "product fact forward" `Quick test_eval_via_product_fact;
          Alcotest.test_case "product fact reverse" `Quick test_eval_via_fact_reverse;
          Alcotest.test_case "indivisible" `Quick test_eval_fact_indivisible_gives_none;
          Alcotest.test_case "affine chain" `Quick test_affine_chain_eval;
          Alcotest.test_case "cancellation" `Quick test_cancellation_both_sides;
          Alcotest.test_case "queries pure" `Quick test_product_query_unbinds_nothing;
        ] );
      ( "bindings",
        [
          Alcotest.test_case "bind shape" `Quick test_bind_shape;
          Alcotest.test_case "bind conflict" `Quick test_bind_conflict;
          Alcotest.test_case "shared symbol" `Quick test_bind_shared_symbol_across_shapes;
          Alcotest.test_case "upper bound numel" `Quick test_upper_bound_numel;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_equiv_relation; prop_products_respect_merges ] );
    ]
