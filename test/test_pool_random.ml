(* Randomized pool event-loop hardening. A scenario is explicit data —
   arrivals, fault deliveries, replica count, adaptive/autoscale flags —
   so a failing case can be greedily shrunk (the test_pipeline_random
   mold) to a minimal reproducer before it is reported.

   The invariant under test is conservation: across random arrivals,
   replica failures, online rebucketing and scale events, every admitted
   request ends in exactly one disposition, lost = 0, the per-class
   reports partition the trace, and completed latencies are finite and
   non-negative.

   POOL_FUZZ_ITERS overrides the trial count (default 40; the nightly CI
   job runs a larger count and uploads pool_fuzz_reproducer.txt on
   failure). *)

module Pool = Serving.Pool
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Scaler = Serving.Autoscaler
module Suite = Models.Suite
module Device = Gpusim.Device

type scenario = {
  arrivals : (int * int * int) list; (* arrival_us, hist value, class code *)
  failures : (int * int) list; (* fault delivery time_us, replica id *)
  replicas : int; (* initial pool size *)
  adaptive : bool;
  autoscale : bool; (* only meaningful with adaptive *)
}

let cls_of_code = function 0 -> Slo.Interactive | 1 -> Slo.Standard | _ -> Slo.Best_effort

let scenario_of_seed seed =
  let st = Random.State.make [| seed |] in
  let n = 1 + Random.State.int st 24 in
  let arrivals =
    List.init n (fun _ ->
        (Random.State.int st 120_000, 1 + Random.State.int st 60, Random.State.int st 3))
  in
  let replicas = 1 + Random.State.int st 2 in
  let failures =
    List.init (Random.State.int st 3) (fun _ ->
        (Random.State.int st 100_000, Random.State.int st replicas))
  in
  {
    arrivals;
    failures;
    replicas;
    adaptive = Random.State.bool st;
    autoscale = Random.State.bool st;
  }

(* One shared compile cache: the model compiles once for the whole fuzz
   run; every scenario's replicas (and scale-up mints) hit it. *)
let cache = Disc.Compile_cache.create ()
let build = (Suite.find "dien").Suite.build

let run_scenario (s : scenario) =
  let devices =
    List.init s.replicas (fun i -> if i mod 2 = 0 then Device.a10 else Device.t4)
  in
  let cfg = Pool.default_config ~devices ~batch_dim:"batch" ~bucket:[ ("hist", Bucket.Pow2) ] in
  let pool = Pool.create ~cache cfg build in
  let adaptive =
    if not s.adaptive then None
    else
      Some
        {
          Pool.default_adaptive with
          Pool.control_interval_us = 10_000.0;
          Pool.autoscale =
            (if s.autoscale then
               Some
                 {
                   Scaler.default_config with
                   Scaler.max_replicas = s.replicas + 2;
                   scale_up_queue = 1;
                   cooldown_us = 10_000.0;
                 }
             else None);
        }
  in
  let reqs =
    List.map
      (fun (t, h, c) ->
        { Pool.arrival_us = float_of_int t; dims = [ ("hist", h) ]; cls = cls_of_code c })
      s.arrivals
  in
  let failures = List.map (fun (t, id) -> (float_of_int t, id)) s.failures in
  Pool.run ~failures ?adaptive pool reqs

(* The conservation predicate the shrinker preserves: true when the
   scenario violates an invariant (or anything raises). *)
let violates (s : scenario) =
  match run_scenario s with
  | r ->
      let n = List.length s.arrivals in
      let total =
        r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
        + r.Pool.failed
      in
      let class_total =
        List.fold_left (fun acc c -> acc + c.Pool.cr_arrivals) 0 r.Pool.classes
      in
      let lats_ok =
        Array.for_all Float.is_finite (Pool.completed_latencies r)
        && Array.for_all
             (fun l -> Float.is_nan l || l >= 0.0)
             r.Pool.latencies_us
      in
      not
        (r.Pool.lost = 0 && total = n
        && Array.length r.Pool.dispositions = n
        && class_total = n && lats_ok)
  | exception _ -> true

(* --- greedy shrinker ------------------------------------------------------
   Drop each arrival, then each failure, then clear the flags and shrink
   the pool, re-testing every candidate; iterate to a fixed point. *)

let drop_nth l i = List.filteri (fun j _ -> j <> i) l

let rec drop_arrivals fails s i =
  if i >= List.length s.arrivals then s
  else
    let cand = { s with arrivals = drop_nth s.arrivals i } in
    if fails cand then drop_arrivals fails cand i else drop_arrivals fails s (i + 1)

let rec drop_failures fails s i =
  if i >= List.length s.failures then s
  else
    let cand = { s with failures = drop_nth s.failures i } in
    if fails cand then drop_failures fails cand i else drop_failures fails s (i + 1)

let simplify_config fails s =
  let try_with cand s = if fails cand then cand else s in
  let s = try_with { s with autoscale = false } s in
  let s = try_with { s with adaptive = false } s in
  try_with { s with replicas = 1; failures = [] } s

let shrink ~fails s =
  let rec fix s =
    let s' = simplify_config fails (drop_failures fails (drop_arrivals fails s 0) 0) in
    if s' = s then s else fix s'
  in
  fix s

let reproducer_file = "pool_fuzz_reproducer.txt"

let scenario_to_string s =
  Printf.sprintf "replicas=%d adaptive=%b autoscale=%b\narrivals=%s\nfailures=%s\n"
    s.replicas s.adaptive s.autoscale
    (String.concat ";"
       (List.map (fun (t, h, c) -> Printf.sprintf "%d,%d,%d" t h c) s.arrivals))
    (String.concat ";" (List.map (fun (t, id) -> Printf.sprintf "%d,%d" t id) s.failures))

let report_reproducer ~seed s =
  (try
     let oc = open_out reproducer_file in
     output_string oc (scenario_to_string s);
     close_out oc
   with Sys_error _ -> ());
  Printf.printf "\nMINIMAL POOL SCENARIO (seed=%d; also written to %s):\n%s\n" seed
    reproducer_file (scenario_to_string s)

let fuzz_iters =
  match Sys.getenv_opt "POOL_FUZZ_ITERS" with
  | Some v -> ( try max 1 (int_of_string v) with Failure _ -> 40)
  | None -> 40

let prop_conservation =
  QCheck.Test.make
    ~name:"pool scenarios: every request gets exactly one disposition, lost = 0"
    ~count:fuzz_iters
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s = scenario_of_seed seed in
      if not (violates s) then true
      else begin
        report_reproducer ~seed (shrink ~fails:violates s);
        false
      end)

(* --- shrinker self-tests --------------------------------------------------- *)

let test_shrinker_always_failing_shrinks_to_empty () =
  let s = scenario_of_seed 11 in
  let minimal = shrink ~fails:(fun _ -> true) s in
  Alcotest.(check int) "no arrivals left" 0 (List.length minimal.arrivals);
  Alcotest.(check int) "no failures left" 0 (List.length minimal.failures);
  Alcotest.(check bool) "flags cleared" true
    ((not minimal.adaptive) && (not minimal.autoscale) && minimal.replicas = 1)

let test_shrinker_injected_failure_is_minimal () =
  (* a predicate we control — "at least 3 arrivals and a failure event" —
     must shrink to exactly 3 arrivals and 1 failure *)
  let fails s = List.length s.arrivals >= 3 && s.failures <> [] in
  let s =
    {
      arrivals = List.init 20 (fun i -> (i * 1_000, 5 + i, i mod 3));
      failures = [ (10_000, 0); (20_000, 1) ];
      replicas = 2;
      adaptive = true;
      autoscale = true;
    }
  in
  let minimal = shrink ~fails s in
  Alcotest.(check bool) "still failing" true (fails minimal);
  Alcotest.(check int) "exactly 3 arrivals" 3 (List.length minimal.arrivals);
  Alcotest.(check int) "exactly 1 failure" 1 (List.length minimal.failures)

let test_reproducer_file_round_trips () =
  let s = scenario_of_seed 5 in
  report_reproducer ~seed:5 s;
  let text = In_channel.with_open_text reproducer_file In_channel.input_all in
  Alcotest.(check bool) "reproducer lists the arrivals" true
    (String.length text > 0
    && String.sub text 0 9 = "replicas="
    && String.split_on_char '\n' text
       |> List.exists (fun l ->
              String.length l >= 9 && String.sub l 0 9 = "arrivals="));
  Sys.remove reproducer_file

(* A pinned non-trivial scenario stays green even at POOL_FUZZ_ITERS=1:
   failures + adaptive + autoscale together, conservation by hand. *)
let test_pinned_scenario_conserves () =
  let s =
    {
      arrivals = List.init 16 (fun i -> (i * 4_000, 30 + (i mod 10), i mod 3));
      failures = [ (20_000, 0) ];
      replicas = 2;
      adaptive = true;
      autoscale = true;
    }
  in
  Alcotest.(check bool) "pinned scenario holds the invariants" false (violates s)

let () =
  Alcotest.run "pool-random"
    [
      ("properties", [ QCheck_alcotest.to_alcotest prop_conservation ]);
      ( "shrinker",
        [
          Alcotest.test_case "always-failing shrinks to empty" `Quick
            test_shrinker_always_failing_shrinks_to_empty;
          Alcotest.test_case "injected failure reduces to minimum" `Quick
            test_shrinker_injected_failure_is_minimal;
          Alcotest.test_case "reproducer file round-trips" `Quick
            test_reproducer_file_round_trips;
          Alcotest.test_case "pinned scenario conserves" `Quick
            test_pinned_scenario_conserves;
        ] );
    ]
