(* Randomized pool event-loop hardening. A scenario is explicit data —
   arrivals, fault deliveries, chaos events, replica count,
   adaptive/autoscale/resilience flags — so a failing case can be
   greedily shrunk (the test_pipeline_random mold) to a minimal
   reproducer before it is reported.

   The invariant under test is conservation: across random arrivals,
   replica failures, chaos (crashes with recovery, stragglers, traffic
   spikes, cache corruption), online rebucketing and scale events, every
   admitted request — spike traffic included — ends in exactly one
   disposition, lost = 0, no request is served twice, the per-class
   reports partition the trace, and completed latencies are finite and
   non-negative. Every run (original and every shrink candidate) is
   additionally pushed through the full Serving.Audit invariant checker,
   so an audit violation shrinks to a minimal reproducer like any other
   failure.

   A third of the scenarios draw their arrival pattern from the
   Trace_gen presets (bursty / diurnal envelopes) instead of uniform
   times, so the fuzzer exercises the same clustered interarrival
   shapes the scale harness serves; the draw is flattened into the
   explicit arrival list, so shrinking is unchanged.

   POOL_FUZZ_ITERS overrides the trial count (default 40; the nightly CI
   job runs a larger count and uploads pool_fuzz_reproducer.txt on
   failure). *)

module Pool = Serving.Pool
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Chaos = Serving.Chaos
module Scaler = Serving.Autoscaler
module Suite = Models.Suite
module Device = Gpusim.Device

(* Chaos draws stay integer-valued so scenarios shrink and print
   cleanly; they are mapped to Chaos.event just before the run. All
   draw ranges satisfy Chaos.validate by construction. *)
type chaos_draw =
  | C_crash of int * int option * int (* replica, recover_after_us, spinup_us *)
  | C_straggle of int * int * int (* replica, factor, duration_us *)
  | C_spike of int * int * int * int (* duration_us, requests, lo, hi *)
  | C_corrupt of int (* percent of warm cache entries, 0..100 *)

type scenario = {
  arrivals : (int * int * int) list; (* arrival_us, hist value, class code *)
  failures : (int * int) list; (* fault delivery time_us, replica id *)
  chaos : (int * chaos_draw) list; (* delivery time_us, chaos event *)
  replicas : int; (* initial pool size *)
  adaptive : bool;
  autoscale : bool; (* only meaningful with adaptive *)
  resilient : bool; (* default_resilience vs no_resilience *)
}

let cls_of_code = function 0 -> Slo.Interactive | 1 -> Slo.Standard | _ -> Slo.Best_effort
let code_of_cls = function Slo.Interactive -> 0 | Slo.Standard -> 1 | Slo.Best_effort -> 2

let scenario_of_seed seed =
  let st = Random.State.make [| seed |] in
  let n = 1 + Random.State.int st 24 in
  let arrivals =
    if Random.State.int st 3 = 0 then begin
      (* trace-generator draw: bursty or diurnal interarrival clusters,
         flattened to the explicit (t, hist, cls) triples the shrinker
         works on *)
      let qps = 200.0 +. float_of_int (Random.State.int st 1800) in
      let dims = [ ("hist", Workloads.Trace.Skewed (1, 60)) ] in
      let spec =
        if Random.State.bool st then Serving.Trace_gen.bursty ~seed ~qps ~dims ()
        else Serving.Trace_gen.diurnal ~seed ~qps ~dims ()
      in
      List.map
        (fun (r : Pool.request) ->
          ( int_of_float r.Pool.arrival_us,
            List.assoc "hist" r.Pool.dims,
            code_of_cls r.Pool.cls ))
        (Serving.Trace_gen.generate spec ~n)
    end
    else
      List.init n (fun _ ->
          (Random.State.int st 120_000, 1 + Random.State.int st 60, Random.State.int st 3))
  in
  let replicas = 1 + Random.State.int st 2 in
  let failures =
    List.init (Random.State.int st 3) (fun _ ->
        (Random.State.int st 100_000, Random.State.int st replicas))
  in
  let chaos =
    List.init (Random.State.int st 3) (fun _ ->
        let at = Random.State.int st 100_000 in
        match Random.State.int st 4 with
        | 0 ->
            let recover =
              if Random.State.bool st then Some (1 + Random.State.int st 50_000) else None
            in
            (at, C_crash (Random.State.int st replicas, recover, Random.State.int st 5_000))
        | 1 ->
            ( at,
              C_straggle
                ( Random.State.int st replicas,
                  2 + Random.State.int st 15,
                  1 + Random.State.int st 80_000 ) )
        | 2 ->
            ( at,
              C_spike
                ( 1 + Random.State.int st 30_000,
                  1 + Random.State.int st 30,
                  1 + Random.State.int st 30,
                  31 + Random.State.int st 30 ) )
        | _ -> (at, C_corrupt (Random.State.int st 101)))
  in
  {
    arrivals;
    failures;
    chaos;
    replicas;
    adaptive = Random.State.bool st;
    autoscale = Random.State.bool st;
    resilient = Random.State.bool st;
  }

let chaos_scenario_of (s : scenario) =
  match s.chaos with
  | [] -> None
  | draws ->
      let event_of = function
        | C_crash (r, recover, spin) ->
            Chaos.Crash
              {
                replica = r;
                recover_after_us = Option.map float_of_int recover;
                spinup_us = float_of_int spin;
              }
        | C_straggle (r, f, dur) ->
            Chaos.Straggle
              { replica = r; factor = float_of_int f; duration_us = float_of_int dur }
        | C_spike (dur, n, lo, hi) ->
            Chaos.Spike
              {
                duration_us = float_of_int dur;
                requests = n;
                dim = "hist";
                lo;
                hi;
                cls = Slo.Standard;
              }
        | C_corrupt pct -> Chaos.Corrupt_cache { fraction = float_of_int pct /. 100.0 }
      in
      Some
        {
          Chaos.seed = 7;
          events =
            List.map
              (fun (at, d) -> { Chaos.at_us = float_of_int at; event = event_of d })
              draws;
        }

let spike_count (s : scenario) =
  match chaos_scenario_of s with Some c -> Chaos.spike_request_count c | None -> 0

(* One shared compile cache: the model compiles once for the whole fuzz
   run; every scenario's replicas (and scale-up mints) hit it. *)
let shared_cache = Disc.Compile_cache.create ()
let build = (Suite.find "dien").Suite.build

let run_scenario ?cache:(c = shared_cache) (s : scenario) =
  let devices =
    List.init s.replicas (fun i -> if i mod 2 = 0 then Device.a10 else Device.t4)
  in
  let cfg = Pool.default_config ~devices ~batch_dim:"batch" ~bucket:[ ("hist", Bucket.Pow2) ] in
  let pool = Pool.create ~cache:c cfg build in
  let adaptive =
    if not s.adaptive then None
    else
      Some
        {
          Pool.default_adaptive with
          Pool.control_interval_us = 10_000.0;
          Pool.autoscale =
            (if s.autoscale then
               Some
                 {
                   Scaler.default_config with
                   Scaler.max_replicas = s.replicas + 2;
                   scale_up_queue = 1;
                   cooldown_us = 10_000.0;
                 }
             else None);
        }
  in
  let reqs =
    List.map
      (fun (t, h, c) ->
        { Pool.arrival_us = float_of_int t; dims = [ ("hist", h) ]; cls = cls_of_code c })
      s.arrivals
  in
  let failures = List.map (fun (t, id) -> (float_of_int t, id)) s.failures in
  let resilience = if s.resilient then Pool.default_resilience else Pool.no_resilience in
  Pool.run ~failures ?adaptive ?chaos:(chaos_scenario_of s) ~resilience pool reqs

(* The conservation predicate the shrinker preserves: true when the
   scenario violates an invariant (or anything raises). *)
let violates (s : scenario) =
  match run_scenario s with
  | r ->
      (* spike traffic is admitted alongside the trace and must obey the
         same conservation law *)
      let n = List.length s.arrivals + spike_count s in
      let total =
        r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
        + r.Pool.failed
      in
      let class_total =
        List.fold_left (fun acc c -> acc + c.Pool.cr_arrivals) 0 r.Pool.classes
      in
      let lats_ok =
        Array.for_all Float.is_finite (Pool.completed_latencies r)
        && Array.for_all
             (fun l -> Float.is_nan l || l >= 0.0)
             r.Pool.latencies_us
      in
      not
        (r.Pool.lost = 0 && total = n
        && Array.length r.Pool.dispositions = n
        && class_total = n && lats_ok
        (* the full audit layer on every case: any broken report
           invariant shrinks like a conservation failure *)
        && Serving.Audit.check r = [])
  | exception _ -> true

(* --- greedy shrinker ------------------------------------------------------
   Drop each arrival, then each failure, then clear the flags and shrink
   the pool, re-testing every candidate; iterate to a fixed point. *)

let drop_nth l i = List.filteri (fun j _ -> j <> i) l

let rec drop_arrivals fails s i =
  if i >= List.length s.arrivals then s
  else
    let cand = { s with arrivals = drop_nth s.arrivals i } in
    if fails cand then drop_arrivals fails cand i else drop_arrivals fails s (i + 1)

let rec drop_failures fails s i =
  if i >= List.length s.failures then s
  else
    let cand = { s with failures = drop_nth s.failures i } in
    if fails cand then drop_failures fails cand i else drop_failures fails s (i + 1)

let rec drop_chaos fails s i =
  if i >= List.length s.chaos then s
  else
    let cand = { s with chaos = drop_nth s.chaos i } in
    if fails cand then drop_chaos fails cand i else drop_chaos fails s (i + 1)

let simplify_config fails s =
  let try_with cand s = if fails cand then cand else s in
  let s = try_with { s with autoscale = false } s in
  let s = try_with { s with adaptive = false } s in
  let s = try_with { s with resilient = false } s in
  (* chaos events may name replica ids, so they go when the pool does *)
  try_with { s with replicas = 1; failures = []; chaos = [] } s

let shrink ~fails s =
  let rec fix s =
    let s' =
      simplify_config fails (drop_chaos fails (drop_failures fails (drop_arrivals fails s 0) 0) 0)
    in
    if s' = s then s else fix s'
  in
  fix s

let reproducer_file = "pool_fuzz_reproducer.txt"

let chaos_draw_to_string (at, d) =
  match d with
  | C_crash (r, recover, spin) ->
      Printf.sprintf "crash@%d(replica=%d,recover=%s,spinup=%d)" at r
        (match recover with Some v -> string_of_int v | None -> "never")
        spin
  | C_straggle (r, f, dur) -> Printf.sprintf "straggle@%d(replica=%d,x%d,for=%d)" at r f dur
  | C_spike (dur, n, lo, hi) -> Printf.sprintf "spike@%d(over=%d,n=%d,hist=%d..%d)" at dur n lo hi
  | C_corrupt pct -> Printf.sprintf "corrupt@%d(%d%%)" at pct

let scenario_to_string s =
  Printf.sprintf
    "replicas=%d adaptive=%b autoscale=%b resilient=%b\narrivals=%s\nfailures=%s\nchaos=%s\n"
    s.replicas s.adaptive s.autoscale s.resilient
    (String.concat ";"
       (List.map (fun (t, h, c) -> Printf.sprintf "%d,%d,%d" t h c) s.arrivals))
    (String.concat ";" (List.map (fun (t, id) -> Printf.sprintf "%d,%d" t id) s.failures))
    (String.concat ";" (List.map chaos_draw_to_string s.chaos))

let report_reproducer ~seed s =
  (try
     let oc = open_out reproducer_file in
     output_string oc (scenario_to_string s);
     close_out oc
   with Sys_error _ -> ());
  Printf.printf "\nMINIMAL POOL SCENARIO (seed=%d; also written to %s):\n%s\n" seed
    reproducer_file (scenario_to_string s)

let fuzz_iters =
  match Sys.getenv_opt "POOL_FUZZ_ITERS" with
  | Some v -> ( try max 1 (int_of_string v) with Failure _ -> 40)
  | None -> 40

let prop_conservation =
  QCheck.Test.make
    ~name:"pool scenarios: every request gets exactly one disposition, lost = 0"
    ~count:fuzz_iters
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s = scenario_of_seed seed in
      if not (violates s) then true
      else begin
        report_reproducer ~seed (shrink ~fails:violates s);
        false
      end)

(* --- shrinker self-tests --------------------------------------------------- *)

let test_shrinker_always_failing_shrinks_to_empty () =
  let s = scenario_of_seed 11 in
  let minimal = shrink ~fails:(fun _ -> true) s in
  Alcotest.(check int) "no arrivals left" 0 (List.length minimal.arrivals);
  Alcotest.(check int) "no failures left" 0 (List.length minimal.failures);
  Alcotest.(check int) "no chaos left" 0 (List.length minimal.chaos);
  Alcotest.(check bool) "flags cleared" true
    ((not minimal.adaptive) && (not minimal.autoscale) && (not minimal.resilient)
    && minimal.replicas = 1)

let test_shrinker_injected_failure_is_minimal () =
  (* a predicate we control — "at least 3 arrivals and a failure event" —
     must shrink to exactly 3 arrivals and 1 failure *)
  let fails s = List.length s.arrivals >= 3 && s.failures <> [] in
  let s =
    {
      arrivals = List.init 20 (fun i -> (i * 1_000, 5 + i, i mod 3));
      failures = [ (10_000, 0); (20_000, 1) ];
      chaos = [ (15_000, C_straggle (0, 4, 20_000)) ];
      replicas = 2;
      adaptive = true;
      autoscale = true;
      resilient = true;
    }
  in
  let minimal = shrink ~fails s in
  Alcotest.(check bool) "still failing" true (fails minimal);
  Alcotest.(check int) "exactly 3 arrivals" 3 (List.length minimal.arrivals);
  Alcotest.(check int) "exactly 1 failure" 1 (List.length minimal.failures);
  Alcotest.(check int) "irrelevant chaos dropped" 0 (List.length minimal.chaos)

let test_reproducer_file_round_trips () =
  let s = scenario_of_seed 5 in
  report_reproducer ~seed:5 s;
  let text = In_channel.with_open_text reproducer_file In_channel.input_all in
  Alcotest.(check bool) "reproducer lists the arrivals" true
    (String.length text > 0
    && String.sub text 0 9 = "replicas="
    && String.split_on_char '\n' text
       |> List.exists (fun l ->
              String.length l >= 9 && String.sub l 0 9 = "arrivals="));
  Sys.remove reproducer_file

(* A pinned non-trivial scenario stays green even at POOL_FUZZ_ITERS=1:
   failures + adaptive + autoscale together, conservation by hand. *)
let test_pinned_scenario_conserves () =
  let s =
    {
      arrivals = List.init 16 (fun i -> (i * 4_000, 30 + (i mod 10), i mod 3));
      failures = [ (20_000, 0) ];
      chaos = [];
      replicas = 2;
      adaptive = true;
      autoscale = true;
      resilient = false;
    }
  in
  Alcotest.(check bool) "pinned scenario holds the invariants" false (violates s)

(* One of every chaos event, resilience on: conservation must hold for
   spike traffic and for crash victims alike. *)
let pinned_chaos =
  {
    arrivals = List.init 20 (fun i -> (i * 3_000, 10 + (i mod 12), i mod 3));
    failures = [];
    chaos =
      [
        (8_000, C_straggle (1, 6, 30_000));
        (15_000, C_spike (10_000, 14, 5, 40));
        (20_000, C_crash (0, Some 15_000, 2_000));
        (30_000, C_corrupt 100);
      ];
    replicas = 2;
    adaptive = false;
    autoscale = false;
    resilient = true;
  }

let test_pinned_chaos_scenario_conserves () =
  Alcotest.(check bool) "chaos scenario holds the invariants" false (violates pinned_chaos);
  (* and without resilience the same chaos still conserves — stranded
     requests surface as Failed, never as lost *)
  Alcotest.(check bool) "unprotected pool still conserves" false
    (violates { pinned_chaos with resilient = false })

let test_pinned_chaos_scenario_reproducible () =
  (* private caches: the corrupt_cache event mutates its cache, so the
     paired runs must not share one *)
  let run () = run_scenario ~cache:(Disc.Compile_cache.create ()) pinned_chaos in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "dispositions identical across runs" true
    (r1.Pool.dispositions = r2.Pool.dispositions);
  Alcotest.(check bool) "latencies identical across runs" true
    (Array.for_all2
       (fun a b -> (Float.is_nan a && Float.is_nan b) || a = b)
       r1.Pool.latencies_us r2.Pool.latencies_us)

let () =
  Alcotest.run "pool-random"
    [
      ("properties", [ QCheck_alcotest.to_alcotest prop_conservation ]);
      ( "shrinker",
        [
          Alcotest.test_case "always-failing shrinks to empty" `Quick
            test_shrinker_always_failing_shrinks_to_empty;
          Alcotest.test_case "injected failure reduces to minimum" `Quick
            test_shrinker_injected_failure_is_minimal;
          Alcotest.test_case "reproducer file round-trips" `Quick
            test_reproducer_file_round_trips;
          Alcotest.test_case "pinned scenario conserves" `Quick
            test_pinned_scenario_conserves;
          Alcotest.test_case "pinned chaos scenario conserves" `Quick
            test_pinned_chaos_scenario_conserves;
          Alcotest.test_case "pinned chaos scenario reproducible" `Quick
            test_pinned_chaos_scenario_reproducible;
        ] );
    ]
