(* Randomized whole-pipeline hardening: generate structured graphs that
   exercise broadcast, reshape-through-products, reductions (stitch
   patterns), transposes and library ops; then check that every pipeline
   configuration produces exactly the interpreter's results at several
   random shapes, and that plan/schedule invariants hold.

   Failures don't dump the raw 12-step graph: a greedy shrinker first
   drops and simplifies generator steps while the failure persists, then
   prints the minimal reproducer (plus generator seed) and writes it to
   shrinker_reproducer.disc for bug reports / CI artifacts. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Cluster = Fusion.Cluster

(* A generated program is explicit data — h plus the step-code list —
   so the shrinker can drop/simplify steps and rebuild. [pick_seed]
   fixes the operand choices made while building. *)
type program = { h : int; pick_seed : int; steps : int list }

let program_of_seed seed =
  let st = Random.State.make [| seed |] in
  let h = 4 * (1 + Random.State.int st 3) in
  let steps = List.init (4 + Random.State.int st 8) (fun _ -> Random.State.int st 100) in
  { h; pick_seed = seed; steps }

(* Random structured graph over [b, s, h] with h static. Operations are
   chosen to exercise every fusion-relevant op class while keeping
   shapes trackable: values live on F=[b,s,h], O=[b,s] or M=[m,h]
   (m = b*s via reshape). *)
let build_program (p : program) : Graph.t * (string * Sym.dim) list =
  let h = p.h in
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"b" ~lb:1 ~ub:64 tab in
  let s = Table.fresh ~name:"s" ~lb:1 ~ub:64 tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static h |] Dtype.F32 in
  let f_shape = [| b; s; Sym.Static h |] in
  (* pools of values per domain *)
  let fs = ref [ x ] in
  let pick st pool = List.nth !pool (Random.State.int st (List.length !pool)) in
  let st = Random.State.make [| p.pick_seed |] in
  List.iter
    (fun choice ->
      let v =
        match choice mod 10 with
        | 0 -> B.add g (pick st fs) (pick st fs)
        | 1 -> B.mul g (pick st fs) (pick st fs)
        | 2 -> B.tanh g (pick st fs)
        | 3 -> B.gelu g (pick st fs)
        | 4 ->
            (* reduce last axis, broadcast back: a stitch pattern *)
            B.reduce_lastdim_keep g
              (if choice mod 3 = 0 then Op.R_max else Op.R_sum)
              (pick st fs)
        | 5 -> B.softmax g (pick st fs)
        | 6 ->
            (* round-trip through the merged [m, h] view *)
            let m = Table.fresh tab in
            let flat = B.reshape g (pick st fs) [| m; Sym.Static h |] in
            let act = B.logistic g flat in
            B.reshape g act f_shape
        | 7 ->
            (* transpose sandwich *)
            let t = B.transpose g (pick st fs) [| 1; 0; 2 |] in
            B.transpose g (B.abs g t) [| 1; 0; 2 |]
        | 8 ->
            (* a library op: project through a static dense layer *)
            let w =
              B.const g
                (Nd.init [| h; h |] (fun i ->
                     Float.sin (float_of_int ((i.(0) * h) + i.(1)))))
            in
            B.dot g (pick st fs) w
        | _ ->
            (* broadcast a row constant and combine *)
            let c = B.const g (Nd.init [| h |] (fun i -> 0.1 *. float_of_int i.(0))) in
            B.add g (pick st fs) (B.broadcast_trailing g c ~out:f_shape)
      in
      fs := v :: !fs)
    p.steps;
  Graph.set_outputs g [ List.hd !fs ];
  (g, [ ("b", b); ("s", s) ])

let input_for (g : Graph.t) (bv, sv) seed =
  match Graph.parameters g with
  | [ (pid, _) ] ->
      let hdim =
        match (Graph.inst g pid).Graph.shape.(2) with
        | Sym.Static v -> v
        | _ -> assert false
      in
      Nd.init [| bv; sv; hdim |] (fun i ->
          Float.sin (float_of_int ((i.(0) * 131) + (i.(1) * 17) + i.(2) + seed)))
  | _ -> assert false

let pipeline_variants =
  [
    ("default", Planner.default_config);
    ("no-fusion", Planner.no_fusion_config);
    ("no-stitch", Planner.no_stitch_config);
    ("no-products", Planner.no_product_config);
    ("horizontal", Planner.horizontal_config);
  ]

(* --- greedy shrinker ------------------------------------------------------

   Given a failing program and a [fails] predicate that re-runs the
   check, minimize by (1) dropping each step if the failure persists,
   (2) replacing each step by the cheapest one (tanh) if it persists,
   repeating both passes to a fixed point. Every candidate is actually
   re-tested, so the result is a true minimal-by-this-grammar failure. *)

let cheapest_step = 2 (* code 2 mod 10 = tanh *)

let rec drop_steps fails (p : program) i =
  if i >= List.length p.steps then p
  else
    let cand = { p with steps = List.filteri (fun j _ -> j <> i) p.steps } in
    if fails cand then drop_steps fails cand i else drop_steps fails p (i + 1)

let rec simplify_steps fails (p : program) i =
  if i >= List.length p.steps then p
  else if List.nth p.steps i mod 10 = cheapest_step mod 10 then
    simplify_steps fails p (i + 1)
  else
    let cand =
      { p with steps = List.mapi (fun j c -> if j = i then cheapest_step else c) p.steps }
    in
    if fails cand then simplify_steps fails cand (i + 1) else simplify_steps fails p (i + 1)

let shrink ~fails (p : program) : program =
  let rec fix p =
    let p' = simplify_steps fails (drop_steps fails p 0) 0 in
    if p' = p then p else fix p'
  in
  fix p

let reproducer_file = "shrinker_reproducer.disc"

let report_reproducer ~seed (p : program) =
  let g, _ = build_program p in
  let text = Ir.Printer.to_string ~with_symbols:true g in
  (try
     let oc = open_out reproducer_file in
     output_string oc text;
     close_out oc
   with Sys_error _ -> ());
  Printf.printf
    "\nMINIMAL REPRODUCER (seed=%d, h=%d, steps=[%s], %d steps; also written to %s):\n%s\n"
    seed p.h
    (String.concat ";" (List.map string_of_int p.steps))
    (List.length p.steps) reproducer_file text

(* --- differential property, shrinking on failure -------------------------- *)

(* True when any pipeline variant disagrees with the interpreter (or
   anything crashes): the condition the shrinker preserves. *)
let differential_fails ~input_dims ~seed (p : program) : bool =
  match
    let g_ref, _ = build_program p in
    let input = input_for g_ref input_dims seed in
    let expected = Ir.Interp.run g_ref [ input ] in
    List.for_all
      (fun (_, planner) ->
        let g, _ = build_program p in
        let c =
          Disc.Compiler.compile ~options:{ Disc.Compiler.default_options with planner } g
        in
        let got, _ = Disc.Compiler.run c [ input ] in
        List.for_all2 (Nd.equal_approx ~eps:1e-5) expected got)
      pipeline_variants
  with
  | ok -> not ok
  | exception _ -> true

let prop_all_pipelines_match_interp =
  QCheck.Test.make ~name:"structured graphs: all pipelines = interp at random shapes"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 1 5) (int_range 1 9)))
    (fun (seed, (bv, sv)) ->
      let p = program_of_seed seed in
      let fails = differential_fails ~input_dims:(bv, sv) ~seed in
      if not (fails p) then true
      else begin
        report_reproducer ~seed (shrink ~fails p);
        false
      end)

let prop_plan_invariants =
  QCheck.Test.make ~name:"structured graphs: plan invariants" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = program_of_seed seed in
      let g, _ = build_program p in
      ignore (Ir.Passes.run_all g);
      let plan = Planner.plan g in
      (* 1. partition: every live non-param/const inst in exactly one cluster *)
      let counts = Hashtbl.create 64 in
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              Hashtbl.replace counts m (1 + Option.value (Hashtbl.find_opt counts m) ~default:0))
            c.Cluster.members)
        plan.Cluster.clusters;
      let partition_ok =
        Graph.fold g
          (fun ok i ->
            ok
            &&
            match i.Graph.op with
            | Op.Parameter _ | Op.Constant _ -> true
            | _ -> Option.value (Hashtbl.find_opt counts i.Graph.id) ~default:0 = 1)
          true
      in
      (* 2. schedule: producer clusters precede consumers *)
      let order = Hashtbl.create 16 in
      List.iteri (fun k c -> Hashtbl.replace order c.Cluster.cid k) plan.Cluster.clusters;
      let schedule_ok =
        List.for_all
          (fun c ->
            List.for_all
              (fun input ->
                match Hashtbl.find_opt plan.Cluster.cluster_of input with
                | None -> true
                | Some pc -> Hashtbl.find order pc < Hashtbl.find order c.Cluster.cid)
              c.Cluster.inputs)
          plan.Cluster.clusters
      in
      (* 3. library ops are always singletons *)
      let library_ok =
        List.for_all
          (fun c ->
            c.Cluster.kind <> Cluster.Library || List.length c.Cluster.members = 1)
          plan.Cluster.clusters
      in
      partition_ok && schedule_ok && library_ok)

let prop_fusion_never_increases_traffic =
  QCheck.Test.make ~name:"structured graphs: fusion never increases traffic or launches"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = program_of_seed seed in
      let measure planner =
        let g, dims = build_program p in
        ignore (Ir.Passes.run_all g);
        let plan = Planner.plan ~config:planner g in
        let exe = Runtime.Executable.compile g plan in
        let tab = Graph.symtab g in
        let bnd = Table.empty_binding () in
        List.iter (fun (_, d) -> Table.bind_dim tab bnd d 16) dims;
        Runtime.Executable.simulate exe bnd
      in
      let fused = measure Planner.default_config in
      let unfused = measure Planner.no_fusion_config in
      fused.Runtime.Profile.launches <= unfused.Runtime.Profile.launches
      && fused.Runtime.Profile.bytes_moved <= unfused.Runtime.Profile.bytes_moved)

let prop_roundtrip_structured =
  QCheck.Test.make ~name:"structured graphs: print/parse round trip" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = program_of_seed seed in
      let g1, _ = build_program p in
      let g2 = Ir.Parser.parse (Ir.Printer.to_string ~with_symbols:true g1) in
      let input = input_for g1 (2, 3) seed in
      let a = Ir.Interp.run g1 [ input ] and b = Ir.Interp.run g2 [ input ] in
      List.for_all2 (Nd.equal_approx ~eps:1e-6) a b)

(* --- shrinker self-tests --------------------------------------------------

   Inject a failure we control — "the built graph contains a Dot op" —
   into a 12-step program and check the shrinker reduces it to a
   program whose graph has at most 4 non-param/const ops. This is the
   harness's own regression test: if shrinking regresses, real
   differential failures would come back as un-debuggable 12-step
   graphs. *)

let count_ops g =
  Graph.fold g
    (fun n i ->
      match i.Graph.op with Op.Parameter _ | Op.Constant _ -> n | _ -> n + 1)
    0

let contains_dot (p : program) =
  let g, _ = build_program p in
  Graph.fold g
    (fun found i -> found || match i.Graph.op with Op.Dot -> true | _ -> false)
    false

let test_shrinker_injected () =
  let p = { h = 8; pick_seed = 42; steps = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 5; 3 ] } in
  Alcotest.(check bool) "injected failure fires on the seed program" true (contains_dot p);
  let minimal = shrink ~fails:contains_dot p in
  Alcotest.(check bool) "shrunk program still fails" true (contains_dot minimal);
  let g, _ = build_program minimal in
  let ops = count_ops g in
  if ops > 4 then
    Alcotest.failf "shrinker left %d ops (steps=[%s]); expected <= 4" ops
      (String.concat ";" (List.map string_of_int minimal.steps))

let test_shrinker_keeps_failure_monotone () =
  (* dropping to an empty program must be reachable when everything is
     droppable: a predicate true of every program shrinks to no steps *)
  let p = program_of_seed 7 in
  let minimal = shrink ~fails:(fun _ -> true) p in
  Alcotest.(check int) "always-failing program shrinks to zero steps" 0
    (List.length minimal.steps)

let test_shrinker_writes_reproducer () =
  let p = { h = 4; pick_seed = 3; steps = [ 5 ] } in
  report_reproducer ~seed:3 p;
  let text = In_channel.with_open_text reproducer_file In_channel.input_all in
  let g = Ir.Parser.parse text in
  Alcotest.(check bool) "reproducer file parses back into a graph" true
    (Graph.num_insts g > 0);
  Sys.remove reproducer_file

let () =
  Alcotest.run "pipeline-random"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_all_pipelines_match_interp;
            prop_plan_invariants;
            prop_fusion_never_increases_traffic;
            prop_roundtrip_structured;
          ] );
      ( "shrinker",
        [
          Alcotest.test_case "injected failure reduces to <= 4 ops" `Quick
            test_shrinker_injected;
          Alcotest.test_case "always-failing shrinks to empty" `Quick
            test_shrinker_keeps_failure_monotone;
          Alcotest.test_case "reproducer file round-trips" `Quick
            test_shrinker_writes_reproducer;
        ] );
    ]
