(* The scale harness's test layer (E20).

   Deterministic 10^4–10^5-request runs of the frozen scale trace
   (Trace_gen.mixed seed 42: diurnal + bursts + shape drift) through the
   4x A10 pool, asserting:

   - every Serving.Audit invariant (conservation, counter/array
     agreement, latency coherence, batching arithmetic, per-class sums,
     peak_queued bounds, time monotonicity) and lost = 0;
   - bit-identical reruns: a fresh pool over the same trace produces
     identical dispositions and latencies;
   - an allocation-rate regression ceiling on the de-allocated hot
     path: the pre-refactor pool allocated 23,159 B/request on this
     trace, the acceptance gate is a >= 2x reduction (11,579), and the
     refactored path measures ~3,000 — the ceiling pins 6,000 so a
     regression trips the test long before the gate;
   - one golden report string, pinning the report accounting
     (dispositions, batch split, padding waste, percentiles) bit-for-bit;

   plus QCheck properties of the trace generator itself: strictly
   increasing arrivals, windowed rates inside the [trough, peak]
   envelope, and seed-prefix stability. *)

module Pool = Serving.Pool
module Bucket = Serving.Bucket
module Audit = Serving.Audit
module Tg = Serving.Trace_gen
module Trace = Workloads.Trace

let build = (Models.Suite.find "dien").Models.Suite.build_tiny

(* the frozen E20 trace + pool config (bench/main.ml `scale` uses the
   same): changing either invalidates the pinned baseline numbers *)
let scale_spec =
  Tg.mixed ~seed:42 ~qps:4000.0
    ~dims_a:[ ("hist", Trace.Skewed (5, 100)) ]
    ~dims_b:[ ("hist", Trace.Bimodal (8, 96)) ]
    ()

let scale_cfg () =
  {
    (Pool.default_config
       ~devices:
         [ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ]
       ~batch_dim:"batch"
       ~bucket:[ ("hist", Bucket.Pow2) ])
    with
    Pool.max_batch = 16;
  }

let run_scale n =
  let reqs = Tg.generate scale_spec ~n in
  Pool.run (Pool.create (scale_cfg ()) build) reqs

(* --- harness invariants --------------------------------------------------- *)

let test_conservation_at_scale () =
  let n = 100_000 in
  let r = run_scale n in
  (match Audit.check r with
  | [] -> ()
  | vs -> Alcotest.fail (Audit.to_string vs));
  Alcotest.(check int) "every request accounted" n
    (r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
   + r.Pool.failed);
  Alcotest.(check int) "lost = 0" 0 r.Pool.lost;
  Alcotest.(check bool) "time monotone" true r.Pool.time_monotone;
  Alcotest.(check bool) "some traffic served" true (r.Pool.served > 0)

let test_bit_identical_rerun () =
  let n = 10_000 in
  let reqs = Tg.generate scale_spec ~n in
  let r1 = Pool.run (Pool.create (scale_cfg ()) build) reqs in
  let r2 = Pool.run (Pool.create (scale_cfg ()) build) reqs in
  Alcotest.(check bool) "dispositions identical" true
    (r1.Pool.dispositions = r2.Pool.dispositions);
  Alcotest.(check bool) "latencies identical" true
    (Array.for_all2
       (fun a b -> (Float.is_nan a && Float.is_nan b) || a = b)
       r1.Pool.latencies_us r2.Pool.latencies_us);
  Alcotest.(check bool) "reports agree on counters" true
    (r1.Pool.served = r2.Pool.served && r1.Pool.batches = r2.Pool.batches)

(* Allocation-rate regression ceiling. Measured ~2,958 B/request at
   n = 5*10^4 after the de-allocation refactor; pre-refactor was 23,159
   and the E20 acceptance gate is <= 11,579 (2x). Pinning 6,000 keeps
   ~2x headroom over today's number while tripping far below the gate.
   Gc.allocated_bytes is deterministic (it counts words allocated, not
   collected), so this is stable across machines. *)
let alloc_ceiling_bytes_per_request = 6_000.0

let test_allocation_ceiling () =
  let n = 50_000 in
  let reqs = Tg.generate scale_spec ~n in
  let pool = Pool.create (scale_cfg ()) build in
  let b0 = Gc.allocated_bytes () in
  let r = Pool.run pool reqs in
  let per_req = (Gc.allocated_bytes () -. b0) /. float_of_int n in
  Alcotest.(check int) "all served" n (r.Pool.served + r.Pool.fell_back);
  if per_req >= alloc_ceiling_bytes_per_request then
    Alcotest.failf "hot path allocates %.0f B/request (ceiling %.0f; pre-refactor 23159)"
      per_req alloc_ceiling_bytes_per_request

(* --- report accounting: one golden, pinned bit-for-bit -------------------- *)

let test_golden_report () =
  let spec =
    Tg.steady ~seed:7 ~qps:2000.0 ~dims:[ ("hist", Trace.Skewed (5, 100)) ] ()
  in
  let reqs = Tg.generate spec ~n:500 in
  let cfg =
    Pool.default_config
      ~devices:[ Gpusim.Device.a10; Gpusim.Device.a10 ]
      ~batch_dim:"batch"
      ~bucket:[ ("hist", Bucket.Pow2) ]
  in
  let r = Pool.run (Pool.create cfg build) reqs in
  Alcotest.(check string) "report string pinned"
    "served=500 fell_back=0 shed=0 expired=0 rejected=0 failed=0 lost=0 batches=266 \
     mean_batch=1.9 (padded=91 exact=175 cold=133) pad_waste=13.2% p50=2213us \
     p99=4584us makespan=249987us"
    (Pool.report_to_string r)

(* The audit layer itself must catch a cooked report: flip counters a
   subtle way and expect named violations. *)
let test_audit_catches_tampering () =
  let r = run_scale 2_000 in
  Alcotest.(check string) "clean report passes" "audit: ok"
    (Audit.to_string (Audit.check r));
  let cooked = { r with Pool.served = r.Pool.served - 1; Pool.lost = 1 } in
  let vs = Audit.check cooked in
  Alcotest.(check bool) "tampered counters caught" true (List.length vs >= 2);
  let cooked2 = { r with Pool.time_monotone = false } in
  Alcotest.(check bool) "monotonicity violation caught" true (Audit.check cooked2 <> []);
  let cooked3 = { r with Pool.peak_queued = -1 } in
  Alcotest.(check bool) "peak_queued bound caught" true (Audit.check cooked3 <> [])

(* --- decode serving at scale (E20b's test layer) --------------------------- *)

module Sched = Decode.Scheduler

(* the frozen E20b decode trace + config (bench `scale --decode` uses
   the same shape): tiny gpt2 prefill/decode pair, mixed drift traffic
   mapped onto (prompt, max_new) within the models' bounds *)
let decode_prefill () = Models.Gpt2.build ~config:Models.Gpt2.tiny ()
let decode_decode () = Models.Gpt2.build_decode ~config:Models.Gpt2.tiny ()

let decode_reqs n =
  let seq_ub = Sched.dim_bound (decode_prefill ()) "seq" in
  let cache_ub = Sched.dim_bound (decode_decode ()) "cache" in
  let spec =
    Tg.mixed ~seed:42 ~qps:4000.0
      ~dims_a:[ ("prompt", Trace.Skewed (4, 16)); ("new", Trace.Uniform (4, 12)) ]
      ~dims_b:[ ("prompt", Trace.Bimodal (4, 16)); ("new", Trace.Uniform (2, 8)) ]
      ()
  in
  Sched.of_pool_requests ~seq_ub ~cache_ub (Tg.generate spec ~n)

let decode_cfg () =
  {
    (Sched.default_config
       ~devices:
         [ Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10; Gpusim.Device.a10 ])
    with
    Sched.cache_scheme = Bucket.Linear 8;
  }

let test_decode_conservation_at_scale () =
  let n = 10_000 in
  let reqs = decode_reqs n in
  let r = Sched.run ~prefill:decode_prefill ~decode:decode_decode (decode_cfg ()) reqs in
  (match Decode.Audit.check r with
  | Ok () -> ()
  | Error vs -> Alcotest.fail (String.concat "; " vs));
  Alcotest.(check string) "audit renders ok" "audit: ok"
    (Decode.Audit.to_string (Decode.Audit.check r));
  Alcotest.(check int) "every sequence finished" n r.Sched.finished;
  Alcotest.(check int) "lost = 0" 0 r.Sched.lost;
  Alcotest.(check bool) "tokens conserved against the log" true
    (r.Sched.tokens = List.fold_left (fun a (_, _, _, t) -> a + t) 0 r.Sched.seq_log)

let test_decode_bit_identical_rerun () =
  let n = 10_000 in
  let reqs = decode_reqs n in
  let r1 = Sched.run ~prefill:decode_prefill ~decode:decode_decode (decode_cfg ()) reqs in
  let r2 = Sched.run ~prefill:decode_prefill ~decode:decode_decode (decode_cfg ()) reqs in
  Alcotest.(check string) "token schedules identical" (Sched.digest r1) (Sched.digest r2);
  Alcotest.(check bool) "reports agree on counters" true
    (r1.Sched.tokens = r2.Sched.tokens
    && r1.Sched.decode_steps = r2.Sched.decode_steps
    && r1.Sched.signatures = r2.Sched.signatures)

(* --- trace generator properties ------------------------------------------- *)

let spec_of (seed, qps_i, preset) =
  let qps = float_of_int (100 + (qps_i mod 2900)) in
  let dims = [ ("hist", Trace.Skewed (1, 64)) ] in
  match preset mod 4 with
  | 0 -> Tg.steady ~seed ~qps ~dims ()
  | 1 -> Tg.diurnal ~seed ~qps ~dims ()
  | 2 -> Tg.bursty ~seed ~qps ~dims ()
  | _ ->
      Tg.drift ~seed ~qps ~dims_a:dims ~dims_b:[ ("hist", Trace.Bimodal (2, 60)) ] ()

let spec_gen =
  QCheck.(triple (int_bound 1_000_000) (int_bound 10_000) (int_bound 3))

let prop_arrivals_strictly_increasing =
  QCheck.Test.make ~name:"trace_gen: arrivals strictly increasing" ~count:60 spec_gen
    (fun draw ->
      let reqs = Tg.generate (spec_of draw) ~n:300 in
      let rec ok prev = function
        | [] -> true
        | (r : Pool.request) :: rest -> prev < r.Pool.arrival_us && ok r.Pool.arrival_us rest
      in
      ok (-1.0) reqs)

let prop_rate_within_envelope =
  (* no 50 ms window may exceed the spec's peak-rate envelope (thinning
     guarantees it up to Poisson noise: allow 2x + 20 slack so the
     property is deterministic-in-practice at any qcheck seed), and the
     realized mean rate never collapses below a quarter of the trough *)
  QCheck.Test.make ~name:"trace_gen: windowed rate within envelope" ~count:40 spec_gen
    (fun draw ->
      let spec = spec_of draw in
      let n = 400 in
      let reqs = Tg.generate spec ~n in
      let arr = Array.of_list (List.map (fun r -> r.Pool.arrival_us) reqs) in
      let span = arr.(n - 1) in
      let peak = Tg.spec_peak_qps spec in
      let win = 50_000.0 in
      let cap =
        int_of_float (Float.round (2.0 *. peak *. win /. 1_000_000.0)) + 20
      in
      let windows_ok = ref true in
      let lo = ref 0 in
      Array.iteri
        (fun hi t ->
          while arr.(!lo) < t -. win do
            incr lo
          done;
          if hi - !lo + 1 > cap then windows_ok := false)
        arr;
      let trough =
        List.fold_left (fun acc s -> Float.min acc (Tg.trough_qps s)) infinity
          spec.Tg.segments
      in
      let mean_rate = float_of_int n /. (span /. 1_000_000.0) in
      !windows_ok && mean_rate >= 0.25 *. trough)

let prop_prefix_stable =
  QCheck.Test.make ~name:"trace_gen: seed-prefix stability" ~count:60 spec_gen
    (fun draw ->
      let spec = spec_of draw in
      let full = Tg.generate spec ~n:200 in
      let half = Tg.generate spec ~n:100 in
      let rec prefix a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> x = y && prefix xs ys
      in
      prefix half full)

let test_validate_rejects_bad_specs () =
  let good = Tg.steady ~seed:1 ~qps:100.0 ~dims:[ ("hist", Trace.Fixed 8) ] () in
  Alcotest.(check bool) "good spec validates" true (Tg.validate good = Ok ());
  let bad_qps =
    { good with Tg.segments = List.map (fun s -> { s with Tg.qps = 0.0 }) good.Tg.segments }
  in
  Alcotest.(check bool) "qps = 0 rejected" true (Result.is_error (Tg.validate bad_qps));
  Alcotest.(check bool) "generate raises on invalid spec" true
    (match Tg.generate bad_qps ~n:10 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let bad_diurnal =
    {
      good with
      Tg.segments = List.map (fun s -> { s with Tg.diurnal = 1.5 }) good.Tg.segments;
    }
  in
  Alcotest.(check bool) "diurnal >= 1 rejected" true
    (Result.is_error (Tg.validate bad_diurnal))

let () =
  Alcotest.run "scale"
    [
      ( "harness",
        [
          Alcotest.test_case "conservation + audit at 10^5" `Slow
            test_conservation_at_scale;
          Alcotest.test_case "bit-identical rerun at 10^4" `Quick
            test_bit_identical_rerun;
          Alcotest.test_case "allocation ceiling" `Quick test_allocation_ceiling;
          Alcotest.test_case "golden report string" `Quick test_golden_report;
          Alcotest.test_case "audit catches tampering" `Quick
            test_audit_catches_tampering;
        ] );
      ( "decode",
        [
          Alcotest.test_case "conservation + audit at 10^4" `Quick
            test_decode_conservation_at_scale;
          Alcotest.test_case "bit-identical rerun at 10^4" `Quick
            test_decode_bit_identical_rerun;
        ] );
      ( "trace-gen",
        [
          QCheck_alcotest.to_alcotest prop_arrivals_strictly_increasing;
          QCheck_alcotest.to_alcotest prop_rate_within_envelope;
          QCheck_alcotest.to_alcotest prop_prefix_stable;
          Alcotest.test_case "validate rejects bad specs" `Quick
            test_validate_rejects_bad_specs;
        ] );
    ]
