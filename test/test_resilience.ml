(* Resilience-layer tests: deterministic fault injection, structured
   errors, the session retry / interpreter-fallback / circuit-breaker
   ladder, and overload-aware serving with full request accounting. *)

module Fault = Gpusim.Fault
module Error = Runtime.Error
module Session = Disc.Session
module Compiler = Disc.Compiler
module Suite = Models.Suite
module Common = Models.Common
module Q = Workloads.Queueing
module Nd = Tensor.Nd
module Profile = Runtime.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- fault injector ------------------------------------------------------- *)

let test_injector_deterministic () =
  let cfg = Fault.create ~seed:42 ~kernel_fault_rate:0.3 ~oom_rate:0.2 () in
  let seq inj =
    List.init 200 (fun i ->
        if i mod 2 = 0 then Fault.kernel_fault inj ~kernel:"c0" else Fault.request_oom inj)
  in
  let a = seq (Fault.make cfg) and b = seq (Fault.make cfg) in
  check_bool "same config, same schedule" true (a = b);
  let other = seq (Fault.make (Fault.create ~seed:43 ~kernel_fault_rate:0.3 ~oom_rate:0.2 ())) in
  check_bool "different seed, different schedule" true (a <> other)

let test_injector_rates () =
  let inj = Fault.make (Fault.create ~seed:7 ~kernel_fault_rate:0.1 ()) in
  for _ = 1 to 2000 do
    ignore (Fault.kernel_fault inj ~kernel:"c0")
  done;
  let frac = float_of_int (Fault.kernel_faults_injected inj) /. 2000.0 in
  check_bool "empirical rate near 0.1" true (frac > 0.05 && frac < 0.17);
  check_int "draws counted" 2000 (Fault.draws inj);
  let off = Fault.make Fault.none in
  for _ = 1 to 500 do
    ignore (Fault.kernel_fault off ~kernel:"c0");
    ignore (Fault.request_oom off)
  done;
  check_int "zero rate never fires" 0 (Fault.kernel_faults_injected off + Fault.ooms_injected off);
  let certain = Fault.make (Fault.create ~kernel_fault_rate:1.0 ()) in
  check_bool "rate 1.0 always fires" true (Fault.kernel_fault certain ~kernel:"c0");
  check_bool "invalid rate rejected" true
    (try
       ignore (Fault.create ~kernel_fault_rate:1.5 ());
       false
     with Invalid_argument _ -> true)

(* --- structured errors on the compiled path ------------------------------- *)

let compile_dien_tiny () =
  let entry = Suite.find "dien" in
  let built = entry.Suite.build_tiny () in
  let c = Compiler.compile built.Common.graph in
  (built, c)

let dims_of built env = List.map (fun (n, v) -> (Common.dim_exn built n, v)) env

let test_kernel_fault_error () =
  let built, c = compile_dien_tiny () in
  let faults = Fault.make (Fault.create ~kernel_fault_rate:1.0 ()) in
  match Compiler.simulate_result ~faults c (dims_of built [ ("batch", 2); ("hist", 5) ]) with
  | Error (Error.Kernel_fault { kernel; _ }) ->
      check_bool "kernel named" true (String.length kernel > 0);
      check_bool "transient" true (Error.is_transient (Error.Kernel_fault { kernel; reason = "" }))
  | Ok _ -> Alcotest.fail "expected a kernel fault"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e)

let test_unbound_dim_error () =
  let _, c = compile_dien_tiny () in
  match Compiler.simulate_result c [] with
  | Error (Error.Unbound_dim _) -> ()
  | Ok _ -> Alcotest.fail "expected unbound-dim error"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e)

let test_memplan_oom_error () =
  let built, c = compile_dien_tiny () in
  let bnd = Compiler.binding_of_dims c.Compiler.exe.Runtime.Executable.g
      (dims_of built [ ("batch", 2); ("hist", 5) ]) in
  let faults = Fault.make (Fault.create ~oom_rate:1.0 ()) in
  (match Runtime.Memplan.plan_result ~faults c.Compiler.exe bnd with
  | Error (Error.Oom { capacity_bytes; _ }) -> check_bool "capacity reported" true (capacity_bytes > 0)
  | Ok _ -> Alcotest.fail "expected OOM"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e));
  (* without injection the same plan succeeds *)
  match Runtime.Memplan.plan_result c.Compiler.exe bnd with
  | Ok p -> check_bool "plan valid" true (Runtime.Memplan.validate p)
  | Error e -> Alcotest.fail ("clean plan failed: " ^ Error.to_string e)

let test_despeculate_pins_generic () =
  let built, c = compile_dien_tiny () in
  match
    Compiler.simulate_result ~despeculate:(fun _ -> true) c
      (dims_of built [ ("batch", 2); ("hist", 5) ])
  with
  | Ok p ->
      List.iter
        (fun r ->
          if r.Profile.kind <> "library" then
            Alcotest.(check string)
              ("kernel " ^ r.Profile.kname ^ " pinned")
              "generic" r.Profile.version_tag)
        p.Profile.records
  | Error e -> Alcotest.fail ("despeculated run failed: " ^ Error.to_string e)

(* --- session: retry, fallback, breaker ------------------------------------ *)

let test_fallback_matches_interp () =
  let entry = Suite.find "crnn" in
  let built = entry.Suite.build_tiny () in
  let inputs = Common.test_inputs built entry.Suite.tiny_dims in
  let expected = Ir.Interp.run built.Common.graph inputs in
  (* every compiled attempt faults, so the session must serve via the
     reference interpreter — bit-identical numerics *)
  let built2 = entry.Suite.build_tiny () in
  let sess =
    Session.create ~fault_config:(Fault.create ~seed:3 ~kernel_fault_rate:1.0 ()) built2
  in
  let inputs2 = Common.test_inputs built2 entry.Suite.tiny_dims in
  match Session.serve_data_result sess inputs2 with
  | Ok (outs, profile, path) ->
      check_bool "served on the fallback path" true (path = `Fallback);
      List.iter2
        (fun e o -> check_bool "bit-identical to Ir.Interp" true (Nd.equal_approx ~eps:0.0 e o))
        expected outs;
      check_bool "fallback cost charged" true (Profile.total_us profile > 0.0);
      let s = Session.stats sess in
      check_int "counted as fallback" 1 s.Session.fell_back;
      check_int "not counted as served" 0 s.Session.served;
      check_bool "faults observed" true (s.Session.faults > 0);
      check_bool "retried before falling back" true (s.Session.retries > 0)
  | Error e -> Alcotest.fail ("fallback should not fail: " ^ Error.to_string e)

let test_fallback_disabled_errors () =
  let entry = Suite.find "dien" in
  let sess =
    Session.create
      ~policy:{ Session.default_policy with Session.fallback_to_interp = false }
      ~fault_config:(Fault.create ~seed:3 ~kernel_fault_rate:1.0 ())
      (entry.Suite.build ())
  in
  (match Session.serve_result sess [ ("batch", 4); ("hist", 10) ] with
  | Error (Error.Kernel_fault _) -> ()
  | Ok _ -> Alcotest.fail "expected failure with fallback disabled"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e));
  check_int "counted as failed" 1 (Session.stats sess).Session.failed

let test_circuit_breaker_despeculates () =
  let entry = Suite.find "dien" in
  let sess =
    Session.create ~fault_config:(Fault.create ~seed:5 ~kernel_fault_rate:1.0 ())
      (entry.Suite.build ())
  in
  let k = Session.default_policy.Session.breaker_threshold + 2 in
  for _ = 1 to k do
    ignore (Session.serve_result sess [ ("batch", 4); ("hist", 10) ])
  done;
  check_bool "breaker tripped at least one kernel" true
    (Session.despeculated_kernels sess <> []);
  check_bool "stats expose despeculation" true
    ((Session.stats sess).Session.despeculated >= 1)

let test_deadline_exceeded () =
  let entry = Suite.find "dien" in
  let sess = Session.create (entry.Suite.build ()) in
  (match Session.serve_result ~deadline_us:0.001 sess [ ("batch", 256); ("hist", 100) ] with
  | Error (Error.Deadline_exceeded { deadline_us; elapsed_us }) ->
      check_bool "elapsed exceeds budget" true (elapsed_us > deadline_us)
  | Ok _ -> Alcotest.fail "expected deadline violation"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e));
  check_int "deadline failure counted" 1 (Session.stats sess).Session.failed

let test_invalid_request_error () =
  let entry = Suite.find "dien" in
  let sess = Session.create (entry.Suite.build ()) in
  (match Session.serve_result sess [ ("bogus", 1) ] with
  | Error (Error.Invalid_request _) -> ()
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e));
  match Session.serve_result sess [ ("batch", 4) ] with
  | Error (Error.Unbound_dim _) -> ()
  | Ok _ -> Alcotest.fail "expected missing-dim rejection"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e)

let test_latency_window_bounded () =
  let entry = Suite.find "dien" in
  let sess = Session.create ~window:4 (entry.Suite.build ()) in
  for b = 1 to 10 do
    ignore (Session.serve sess [ ("batch", b); ("hist", 10) ])
  done;
  let s = Session.stats sess in
  check_int "all requests counted" 10 s.Session.requests;
  check_int "window capped" 4 s.Session.window;
  check_bool "percentiles over the window are ordered" true
    (s.Session.p50_us <= s.Session.p95_us && s.Session.p95_us <= s.Session.max_us);
  (* the window holds the 4 most recent latencies: batches 7..10; the
     max over the window must be below the latency of batch 256 *)
  let big = Profile.total_us (Session.serve sess [ ("batch", 256); ("hist", 100) ]) in
  check_bool "window max tracks recent requests" true ((Session.stats sess).Session.max_us = big)

(* --- specialization breaker ----------------------------------------------- *)

let test_specialize_despecializes () =
  let entry = Suite.find "dien" in
  let built = entry.Suite.build () in
  let hot_env = List.hd entry.Suite.bench_dims in
  let sp =
    Disc.Specialize.create ~hot_envs:[ hot_env ]
      ~fault_config:(Fault.create ~seed:9 ~kernel_fault_rate:1.0 ())
      ~breaker_threshold:2 built
  in
  (* hot variant faults; request is re-served on the generic artifact.
     With rate 1.0 the generic path faults too, so accept either a
     served-generic result or a structured error — never an abort. *)
  for _ = 1 to 3 do
    match Disc.Specialize.serve_result sp hot_env with
    | Ok (_, src) -> check_bool "hot variant never serves while faulting" true (src = `Generic)
    | Error e -> check_bool "structured error" true (Error.is_transient e)
  done;
  check_bool "hot signature evicted" true (Disc.Specialize.despecialized_envs sp <> [])

(* --- overload-aware queueing ----------------------------------------------- *)

let test_batch_env_heterogeneous () =
  let reqs =
    [
      { Q.arrival_us = 0.0; dims = [ ("seq", 8) ] };
      { Q.arrival_us = 1.0; dims = [ ("hist", 3) ] };
    ]
  in
  let env = Q.batch_env ~batch_dim:"batch" reqs in
  check_int "batch size" 2 (List.assoc "batch" env);
  check_int "seq max" 8 (List.assoc "seq" env);
  check_int "hist max" 3 (List.assoc "hist" env)

let test_validate_request () =
  let ok r = Q.validate_request ~expected:[ "seq" ] r = Ok () in
  check_bool "well-formed accepted" true (ok { Q.arrival_us = 0.0; dims = [ ("seq", 8) ] });
  check_bool "missing dim rejected" false (ok { Q.arrival_us = 0.0; dims = [] });
  check_bool "extra dim rejected" false
    (ok { Q.arrival_us = 0.0; dims = [ ("seq", 8); ("hist", 2) ] });
  check_bool "duplicate rejected" false
    (ok { Q.arrival_us = 0.0; dims = [ ("seq", 8); ("seq", 9) ] });
  check_bool "non-positive rejected" false (ok { Q.arrival_us = 0.0; dims = [ ("seq", 0) ] })

let fixed_service us _env = (us, `Compiled)

let total (a : Q.accounting) = a.Q.served + a.Q.fell_back + a.Q.shed + a.Q.expired + a.Q.rejected

let test_server_sheds_at_bound () =
  (* 10 simultaneous arrivals, queue bound 3, slow service: the first
     batch takes 3; arrivals beyond the bound during formation are shed *)
  let arrivals = List.init 10 (fun i -> { Q.arrival_us = float_of_int i; dims = [ ("seq", 8) ] }) in
  let policy =
    { Q.batching = { Q.max_batch = 4; max_wait_us = 100.0 }; queue_bound = 3;
      deadline_us = Float.infinity }
  in
  let a = Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service:(fixed_service 50.0) () in
  check_bool "some requests shed" true (a.Q.shed > 0);
  check_int "every request accounted once" 10 (total a);
  Array.iteri
    (fun i d ->
      let has_lat = not (Float.is_nan a.Q.request_latencies_us.(i)) in
      check_bool "latency iff completed" true
        (has_lat = (d = Q.Served || d = Q.Fell_back)))
    a.Q.dispositions

let test_server_expires_stale () =
  (* one giant batch monopolizes the server; late arrivals with a tight
     deadline expire before they can be dequeued *)
  let arrivals =
    { Q.arrival_us = 0.0; dims = [ ("seq", 8) ] }
    :: List.init 4 (fun i -> { Q.arrival_us = 10.0 +. float_of_int i; dims = [ ("seq", 8) ] })
  in
  let policy =
    { Q.batching = { Q.max_batch = 1; max_wait_us = 0.0 }; queue_bound = 100;
      deadline_us = 500.0 }
  in
  let a =
    Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service:(fixed_service 5000.0) ()
  in
  check_bool "stale requests expired" true (a.Q.expired > 0);
  check_int "every request accounted once" 5 (total a)

let test_server_rejects_malformed () =
  let arrivals =
    [
      { Q.arrival_us = 0.0; dims = [ ("seq", 8) ] };
      { Q.arrival_us = 1.0; dims = [ ("bogus", 2) ] };
      { Q.arrival_us = 2.0; dims = [ ("seq", 4) ] };
    ]
  in
  let policy = Q.default_server_policy ~batching:{ Q.max_batch = 4; max_wait_us = 10.0 } in
  let a = Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service:(fixed_service 10.0) () in
  check_int "malformed rejected" 1 a.Q.rejected;
  check_int "rest served" 2 a.Q.served;
  check_int "every request accounted once" 3 (total a);
  check_bool "rejected disposition recorded" true (a.Q.dispositions.(1) = Q.Rejected)

let test_server_fallback_disposition () =
  let arrivals = List.init 4 (fun i -> { Q.arrival_us = float_of_int i; dims = [ ("seq", 8) ] }) in
  let policy = Q.default_server_policy ~batching:{ Q.max_batch = 4; max_wait_us = 10.0 } in
  let a =
    Q.simulate_server ~arrivals ~policy ~batch_dim:"batch"
      ~service:(fun _ -> (10.0, `Fallback)) ()
  in
  check_int "fallback-path completions tracked" 4 a.Q.fell_back;
  check_int "none marked served" 0 a.Q.served

(* --- acceptance: 1000 requests under 10% kernel faults --------------------- *)

let run_acceptance () =
  let entry = Suite.find "dien" in
  let arrivals =
    Q.generate_arrivals ~seed:11 ~qps:2000.0 ~n:1000
      ~dims:[ ("hist", Workloads.Trace.Skewed (5, 100)) ]
  in
  let policy =
    { Q.batching = { Q.max_batch = 8; max_wait_us = 2000.0 }; queue_bound = 64;
      deadline_us = 200_000.0 }
  in
  let sess =
    Session.create ~fault_config:(Fault.create ~seed:7 ~kernel_fault_rate:0.1 ())
      (entry.Suite.build ())
  in
  let service env =
    match Session.serve_result sess env with
    | Ok (p, path) -> (Profile.total_us p, path)
    | Error _ -> (1e6, `Fallback)
  in
  let a = Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service () in
  (a, Session.stats sess)

let test_acceptance_overload_with_faults () =
  let a, s = run_acceptance () in
  check_int "all 1000 requests accounted" 1000 (total a);
  check_int "no malformed arrivals in this trace" 0 a.Q.rejected;
  check_bool "requests were served" true (a.Q.served > 0);
  check_bool "faults forced fallbacks" true (a.Q.fell_back > 0);
  check_bool "session observed the injected faults" true (s.Session.faults > 0);
  check_int "the session never returned an error to the server loop" 0 s.Session.failed

let test_acceptance_deterministic () =
  let a1, _ = run_acceptance () in
  let a2, _ = run_acceptance () in
  check_bool "dispositions reproduce exactly" true (a1.Q.dispositions = a2.Q.dispositions);
  check_bool "latencies reproduce exactly" true
    (Array.for_all2
       (fun x y -> x = y || (Float.is_nan x && Float.is_nan y))
       a1.Q.request_latencies_us a2.Q.request_latencies_us)

(* --- property: accounting is total ----------------------------------------- *)

let prop_every_request_accounted =
  QCheck.Test.make ~name:"simulate_server accounts for every request" ~count:30
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_range 1 40)
           (pair (QCheck.Gen.float_range 0.0 1000.0 |> QCheck.make) (int_range 1 64)))
        (int_range 1 8) (int_range 1 10))
    (fun (reqs, max_batch, bound) ->
      let arrivals =
        List.map (fun (t, s) -> { Q.arrival_us = t; dims = [ ("seq", s) ] }) reqs
      in
      let policy =
        { Q.batching = { Q.max_batch; max_wait_us = 50.0 }; queue_bound = bound;
          deadline_us = 300.0 }
      in
      let a =
        Q.simulate_server ~arrivals ~policy ~batch_dim:"batch" ~service:(fixed_service 100.0) ()
      in
      total a = List.length reqs)

let () =
  Alcotest.run "resilience"
    [
      ( "fault injection",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_injector_deterministic;
          Alcotest.test_case "rates honored" `Quick test_injector_rates;
        ] );
      ( "structured errors",
        [
          Alcotest.test_case "kernel fault surfaces" `Quick test_kernel_fault_error;
          Alcotest.test_case "unbound dim surfaces" `Quick test_unbound_dim_error;
          Alcotest.test_case "memplan OOM surfaces" `Quick test_memplan_oom_error;
          Alcotest.test_case "despeculate pins generic" `Quick test_despeculate_pins_generic;
        ] );
      ( "session ladder",
        [
          Alcotest.test_case "fallback matches Ir.Interp" `Quick test_fallback_matches_interp;
          Alcotest.test_case "fallback disabled errors" `Quick test_fallback_disabled_errors;
          Alcotest.test_case "breaker despeculates" `Quick test_circuit_breaker_despeculates;
          Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "invalid requests" `Quick test_invalid_request_error;
          Alcotest.test_case "latency window bounded" `Quick test_latency_window_bounded;
          Alcotest.test_case "hot variant despecializes" `Quick test_specialize_despecializes;
        ] );
      ( "overload serving",
        [
          Alcotest.test_case "heterogeneous batch env" `Quick test_batch_env_heterogeneous;
          Alcotest.test_case "validate request" `Quick test_validate_request;
          Alcotest.test_case "sheds at bound" `Quick test_server_sheds_at_bound;
          Alcotest.test_case "expires stale" `Quick test_server_expires_stale;
          Alcotest.test_case "rejects malformed" `Quick test_server_rejects_malformed;
          Alcotest.test_case "fallback disposition" `Quick test_server_fallback_disposition;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "1000 req, 10% faults, no aborts" `Quick
            test_acceptance_overload_with_faults;
          Alcotest.test_case "fault schedule reproducible" `Quick test_acceptance_deterministic;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_every_request_accounted ]);
    ]
