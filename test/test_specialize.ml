(* Tests for graph cloning with dim binding and hot-shape
   specialization. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Suite = Models.Suite
module Common = Models.Common

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- clone ---------------------------------------------------------------- *)

let test_clone_identity_semantics () =
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let built = entry.Suite.build_tiny () in
      let inputs = Common.test_inputs built entry.Suite.tiny_dims in
      let expected = Ir.Interp.run built.Common.graph inputs in
      let g2 = Ir.Clone.clone built.Common.graph in
      Graph.verify g2;
      let got = Ir.Interp.run g2 inputs in
      List.iter2
        (fun e o -> check_bool (name ^ " clone matches") true (Nd.equal_approx ~eps:1e-6 e o))
        expected got)
    [ "bert"; "crnn"; "dien"; "vit"; "asr" ]

let test_clone_with_binding_is_static () =
  let entry = Suite.find "dien" in
  let built = entry.Suite.build_tiny () in
  let bind =
    List.map (fun (n, v) -> (Common.dim_exn built n, v)) entry.Suite.tiny_dims
  in
  let g2 = Ir.Clone.clone ~bind built.Common.graph in
  Graph.verify g2;
  let tab2 = Graph.symtab g2 in
  Graph.iter g2 (fun i ->
      Array.iter
        (fun d ->
          check_bool "all dims static" true
            (match Table.resolve tab2 d with Sym.Static _ -> true | Sym.Sym _ -> false))
        i.Graph.shape)

let test_clone_bound_semantics_match () =
  let entry = Suite.find "crnn" in
  let env = entry.Suite.tiny_dims in
  let built = entry.Suite.build_tiny () in
  let inputs = Common.test_inputs built env in
  let expected = Ir.Interp.run built.Common.graph inputs in
  let bind = List.map (fun (n, v) -> (Common.dim_exn built n, v)) env in
  let g2 = Ir.Clone.clone ~bind built.Common.graph in
  let got = Ir.Interp.run g2 inputs in
  List.iter2
    (fun e o -> check_bool "static clone matches" true (Nd.equal_approx ~eps:1e-6 e o))
    expected got

let test_clone_rejects_wrong_static_binding () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 4 |] Dtype.F32 in
  Graph.set_outputs g [ B.exp g x ];
  check_bool "rejects" true
    (try
       ignore (Ir.Clone.clone ~bind:[ (Sym.Static 4, 5) ] g);
       false
     with Invalid_argument _ -> true)

let test_clone_metadata_copied () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh ~lb:2 ~ub:99 ~likely:[ 10 ] tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.exp g x ];
  let g2 = Ir.Clone.clone g in
  let d2 = (Graph.inst g2 0).Graph.shape.(0) in
  let tab2 = Graph.symtab g2 in
  check_int "lb" 2 (Table.lower_bound tab2 d2);
  Alcotest.(check (option int)) "ub" (Some 99) (Table.upper_bound tab2 d2);
  Alcotest.(check (list int)) "likely" [ 10 ] (Table.likely_values tab2 d2)

(* --- specialization -------------------------------------------------------- *)

let test_hot_hit_and_miss () =
  let entry = Suite.find "dien" in
  let sp =
    Disc.Specialize.create ~hot_envs:[ [ ("batch", 128); ("hist", 20) ] ]
      (entry.Suite.build ())
  in
  let _, src = Disc.Specialize.serve sp [ ("batch", 128); ("hist", 20) ] in
  check_bool "hot hit" true (src = `Hot);
  let _, src = Disc.Specialize.serve sp [ ("batch", 128); ("hist", 21) ] in
  check_bool "miss falls back" true (src = `Generic);
  check_int "hits" 1 (Disc.Specialize.hits sp);
  check_int "misses" 1 (Disc.Specialize.misses sp)

let test_specialized_not_slower () =
  (* on a model whose reduce rows lack upper bounds, the generic plan
     cannot stitch — the static variant can, so the hot path is faster *)
  let build () =
    let ctx = Common.new_ctx () in
    let g = ctx.Common.g in
    let b = Common.fresh_dim ~name:"b" ctx in
    let s = Common.fresh_dim ~name:"s" ctx (* no ub: dynamic stitch impossible *) in
    let x = Common.param ctx ~name:"x" [| b; s |] Dtype.F32 (Common.Normal 1.0) in
    let y = B.softmax g x in
    Common.finish ctx ~name:"unbounded" ~dims:[ ("b", b); ("s", s) ] ~outputs:[ y ]
  in
  let sp = Disc.Specialize.create ~hot_envs:[ [ ("b", 64); ("s", 512) ] ] (build ()) in
  let hot_profile, src = Disc.Specialize.serve sp [ ("b", 64); ("s", 512) ] in
  check_bool "hot" true (src = `Hot);
  let generic_profile, src2 = Disc.Specialize.serve sp [ ("b", 64); ("s", 511) ] in
  check_bool "generic" true (src2 = `Generic);
  (* hot path fuses more: fewer launches *)
  check_bool "hot path fuses more" true
    (hot_profile.Runtime.Profile.launches < generic_profile.Runtime.Profile.launches);
  check_bool "hot path not slower" true
    (Runtime.Profile.total_us hot_profile <= Runtime.Profile.total_us generic_profile)

let test_default_hot_envs_from_likely () =
  let entry = Suite.find "bert" in
  let built = entry.Suite.build () in
  let envs = Disc.Specialize.default_hot_envs built in
  check_bool "bounded" true (List.length envs <= 16);
  check_bool "nonempty" true (envs <> []);
  List.iter
    (fun env -> check_int "binds both dims" 2 (List.length env))
    envs

(* --- online minting and distribution-hint ingestion ------------------------- *)

let hot_sigs (sp : Disc.Specialize.t) =
  List.sort compare
    (List.map (fun (env, _) -> Disc.Specialize.sig_of_env env) sp.Disc.Specialize.hot)

(* A tiny two-dim model, optionally with likely-value constraints baked
   into the symbol table at build time. *)
let two_dim_model ?b_likely ?s_likely () =
  let ctx = Common.new_ctx () in
  let g = ctx.Common.g in
  let b = Common.fresh_dim ~name:"b" ~lb:1 ~ub:64 ?likely:b_likely ctx in
  let s = Common.fresh_dim ~name:"s" ~lb:1 ~ub:64 ?likely:s_likely ctx in
  let x = Common.param ctx ~name:"x" [| b; s |] Dtype.F32 (Common.Normal 1.0) in
  let y = B.softmax g x in
  Common.finish ctx ~name:"twodim" ~dims:[ ("b", b); ("s", s) ] ~outputs:[ y ]

let test_hint_mints_same_as_explicit_likely () =
  (* the online feedback path: a distribution hint ingested at runtime
     must mint exactly the hot variants an explicit likely-value
     constraint at build time would have produced *)
  let explicit =
    Disc.Specialize.create (two_dim_model ~b_likely:[ 2; 4 ] ~s_likely:[ 8 ] ())
  in
  let hinted = Disc.Specialize.create ~hot_envs:[] (two_dim_model ()) in
  check_int "no constraints, no hot variants" 0 (List.length hinted.Disc.Specialize.hot);
  (* unknown dims are ignored and out-of-range values discarded on the way in *)
  let minted =
    Disc.Specialize.ingest_hints hinted
      [ ("bogus", [ 3 ]); ("b", [ 2; 4; 9_999 ]); ("s", [ 8 ]) ]
  in
  check_int "one variant per likely combination" 2 minted;
  Alcotest.(check (list string)) "hint-minted signatures = build-time signatures"
    (hot_sigs explicit) (hot_sigs hinted);
  (* the minted variants actually serve hot *)
  let _, src = Disc.Specialize.serve hinted [ ("b", 2); ("s", 8) ] in
  check_bool "minted variant serves hot" true (src = `Hot);
  (* re-ingesting the same hints mints nothing new *)
  check_int "idempotent" 0
    (Disc.Specialize.ingest_hints hinted [ ("b", [ 2; 4 ]); ("s", [ 8 ]) ])

let test_add_hot_env_refusals () =
  let sp = Disc.Specialize.create ~hot_envs:[] (two_dim_model ()) in
  check_bool "first mint succeeds" true
    (Disc.Specialize.add_hot_env sp [ ("b", 2); ("s", 8) ]);
  check_bool "duplicate signature refused" false
    (Disc.Specialize.add_hot_env sp [ ("s", 8); ("b", 2) ]);
  check_bool "unknown dim rejected" true
    (try
       ignore (Disc.Specialize.add_hot_env sp [ ("bogus", 1) ]);
       false
     with Invalid_argument _ -> true);
  (* fill to the cap (16 live variants), then one more is refused *)
  for v = 1 to 15 do
    check_bool "fill mint succeeds" true
      (Disc.Specialize.add_hot_env sp [ ("b", 1); ("s", v) ])
  done;
  check_int "at the cap" 16 (List.length sp.Disc.Specialize.hot);
  check_bool "cap reached: further mints refused" false
    (Disc.Specialize.add_hot_env sp [ ("b", 3); ("s", 3) ])

let test_specialization_compile_cost_accumulates () =
  let entry = Suite.find "dien" in
  let sp =
    Disc.Specialize.create
      ~hot_envs:[ [ ("batch", 128); ("hist", 20) ]; [ ("batch", 256); ("hist", 50) ] ]
      (entry.Suite.build ())
  in
  check_bool "pays for generic + 2 hot variants" true
    (Disc.Specialize.total_compile_ms sp
    > sp.Disc.Specialize.generic.Disc.Compiler.compile_time_ms *. 2.0)

let () =
  Alcotest.run "specialize"
    [
      ( "clone",
        [
          Alcotest.test_case "identity semantics" `Quick test_clone_identity_semantics;
          Alcotest.test_case "bound clone static" `Quick test_clone_with_binding_is_static;
          Alcotest.test_case "bound semantics" `Quick test_clone_bound_semantics_match;
          Alcotest.test_case "wrong static binding" `Quick test_clone_rejects_wrong_static_binding;
          Alcotest.test_case "metadata copied" `Quick test_clone_metadata_copied;
        ] );
      ( "hot shapes",
        [
          Alcotest.test_case "hit and miss" `Quick test_hot_hit_and_miss;
          Alcotest.test_case "hot not slower" `Quick test_specialized_not_slower;
          Alcotest.test_case "default envs" `Quick test_default_hot_envs_from_likely;
          Alcotest.test_case "compile cost" `Quick test_specialization_compile_cost_accumulates;
        ] );
      ( "online minting",
        [
          Alcotest.test_case "hints = explicit likely" `Quick
            test_hint_mints_same_as_explicit_likely;
          Alcotest.test_case "add_hot_env refusals" `Quick test_add_hot_env_refusals;
        ] );
    ]
