(* Tests for the serving-session API. *)

module Session = Disc.Session
module Suite = Models.Suite
module Common = Models.Common
module Nd = Tensor.Nd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_serve_and_stats () =
  let entry = Suite.find "dien" in
  let session = Session.create (entry.Suite.build ()) in
  List.iter
    (fun (b, h) -> ignore (Session.serve session [ ("batch", b); ("hist", h) ]))
    [ (16, 5); (64, 20); (256, 50); (16, 5); (128, 30) ];
  let s = Session.stats session in
  check_int "five requests" 5 s.Session.requests;
  check_bool "compile once, recorded" true (s.Session.compile_ms > 0.0);
  check_bool "mean positive" true (s.Session.mean_us > 0.0);
  check_bool "p50 <= p95 <= p99 <= max" true
    (s.Session.p50_us <= s.Session.p95_us
    && s.Session.p95_us <= s.Session.p99_us
    && s.Session.p99_us <= s.Session.max_us);
  check_bool "mean between min-ish and max" true (s.Session.mean_us <= s.Session.max_us)

let test_serve_data_correct () =
  let entry = Suite.find "crnn" in
  let built = entry.Suite.build_tiny () in
  let inputs = Common.test_inputs built entry.Suite.tiny_dims in
  let expected = Ir.Interp.run built.Common.graph inputs in
  (* session compiles (and mutates) the same graph; build fresh for it *)
  let built2 = entry.Suite.build_tiny () in
  let session = Session.create built2 in
  let inputs2 = Common.test_inputs built2 entry.Suite.tiny_dims in
  let outs, profile = Session.serve_data session inputs2 in
  List.iter2
    (fun e o -> check_bool "served result correct" true (Nd.equal_approx ~eps:1e-5 e o))
    expected outs;
  check_bool "profile recorded" true (profile.Runtime.Profile.launches > 0);
  check_int "one request" 1 (Session.stats session).Session.requests

let test_device_selection () =
  let entry = Suite.find "dien" in
  let fast = Session.create ~device:Gpusim.Device.a10 (entry.Suite.build ()) in
  let slow = Session.create ~device:Gpusim.Device.t4 (entry.Suite.build ()) in
  let env = [ ("batch", 256); ("hist", 50) ] in
  let f = Runtime.Profile.total_us (Session.serve fast env) in
  let s = Runtime.Profile.total_us (Session.serve slow env) in
  check_bool "T4 session slower" true (s > f)

let test_unknown_dim_rejected () =
  let entry = Suite.find "dien" in
  let session = Session.create (entry.Suite.build ()) in
  check_bool "unknown dim" true
    (try
       ignore (Session.serve session [ ("bogus", 1) ]);
       false
     with Invalid_argument _ -> true)

let test_empty_stats () =
  let entry = Suite.find "dien" in
  let session = Session.create (entry.Suite.build ()) in
  let s = Session.stats session in
  check_int "no requests" 0 s.Session.requests;
  check_bool "zeroed" true (s.Session.mean_us = 0.0 && s.Session.max_us = 0.0);
  check_bool "percentiles zero, never nan" true
    (List.for_all
       (fun v -> Float.is_finite v && v = 0.0)
       [ s.Session.mean_us; s.Session.p50_us; s.Session.p95_us; s.Session.p99_us; s.Session.max_us ])

let test_window_one () =
  (* a window of 1 keeps only the latest latency: every percentile
     collapses onto it, while the request counters still see all *)
  let entry = Suite.find "dien" in
  let session = Session.create ~window:1 (entry.Suite.build ()) in
  let last = ref 0.0 in
  List.iter
    (fun (b, h) ->
      last := Runtime.Profile.total_us (Session.serve session [ ("batch", b); ("hist", h) ]))
    [ (256, 50); (64, 20); (16, 5) ];
  let s = Session.stats session in
  check_int "window" 1 s.Session.window;
  check_int "all requests counted" 3 s.Session.requests;
  check_bool "percentiles collapse to the retained latency" true
    (s.Session.p50_us = !last && s.Session.p95_us = !last
    && s.Session.p99_us = !last && s.Session.max_us = !last
    && s.Session.mean_us = !last)

let test_all_requests_fall_back () =
  (* every kernel launch faults: with retries exhausted, each request is
     served by the reference fallback — none fail, none are compiled *)
  let entry = Suite.find "dien" in
  let session =
    Session.create
      ~fault_config:(Gpusim.Fault.create ~kernel_fault_rate:1.0 ())
      (entry.Suite.build ())
  in
  let n = 4 in
  for _ = 1 to n do
    match Session.serve_result session [ ("batch", 16); ("hist", 5) ] with
    | Ok (_, `Fallback) -> ()
    | Ok (_, `Compiled) -> Alcotest.fail "compiled path cannot succeed at fault rate 1"
    | Error _ -> Alcotest.fail "fallback should absorb the faults"
  done;
  let s = Session.stats session in
  check_int "all fell back" n s.Session.fell_back;
  check_int "none served compiled" 0 s.Session.served;
  check_int "none failed" 0 s.Session.failed;
  check_int "all counted" n s.Session.requests;
  check_bool "faults observed" true (s.Session.faults >= n);
  check_bool "fallback latencies recorded" true
    (Float.is_finite s.Session.p99_us && s.Session.p99_us > 0.0)

let prop_stats_match_recorded_latencies =
  QCheck.Test.make ~name:"session max equals slowest request" ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (pair (int_range 1 64) (int_range 1 100)))
    (fun reqs ->
      let entry = Suite.find "dien" in
      let session = Session.create (entry.Suite.build ()) in
      let lats =
        List.map
          (fun (b, h) ->
            Runtime.Profile.total_us (Session.serve session [ ("batch", b); ("hist", h) ]))
          reqs
      in
      let s = Session.stats session in
      s.Session.requests = List.length reqs
      && Float.abs (s.Session.max_us -. List.fold_left Float.max 0.0 lats) < 1e-6)

let () =
  Alcotest.run "session"
    [
      ( "serving",
        [
          Alcotest.test_case "serve + stats" `Quick test_serve_and_stats;
          Alcotest.test_case "serve data" `Quick test_serve_data_correct;
          Alcotest.test_case "device selection" `Quick test_device_selection;
          Alcotest.test_case "unknown dim" `Quick test_unknown_dim_rejected;
          Alcotest.test_case "empty stats" `Quick test_empty_stats;
          Alcotest.test_case "window of one" `Quick test_window_one;
          Alcotest.test_case "all requests fall back" `Quick test_all_requests_fall_back;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_stats_match_recorded_latencies ]);
    ]
