(* Tests for the chaos scenario engine and the pool's resilience
   mechanisms: scenario JSON round-trips and validation, delivery
   expansion, deterministic spike traffic, and end-to-end pool behavior
   under crashes, stragglers, spikes and cache corruption — lost = 0
   and bit-reproducibility throughout. *)

module Chaos = Serving.Chaos
module Pool = Serving.Pool
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Suite = Models.Suite
module Device = Gpusim.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let kitchen_sink =
  {
    Chaos.seed = 42;
    events =
      [
        { Chaos.at_us = 10_000.0;
          event = Chaos.Straggle { replica = 1; factor = 4.0; duration_us = 30_000.0 } };
        { Chaos.at_us = 15_000.0;
          event =
            Chaos.Crash { replica = 0; recover_after_us = Some 20_000.0; spinup_us = 2_000.0 } };
        { Chaos.at_us = 20_000.0;
          event =
            Chaos.Flaky
              { replica = 1; kernel_fault_rate = 0.5; oom_rate = 0.25; duration_us = 10_000.0 } };
        { Chaos.at_us = 25_000.0;
          event =
            Chaos.Spike
              { duration_us = 5_000.0; requests = 12; dim = "hist"; lo = 2; hi = 40;
                cls = Slo.Interactive } };
        { Chaos.at_us = 30_000.0; event = Chaos.Corrupt_cache { fraction = 0.5 } };
      ];
  }

(* --- JSON surface ---------------------------------------------------------- *)

let test_json_round_trip () =
  match Chaos.of_json (Chaos.to_json kitchen_sink) with
  | Ok s -> check_bool "scenario survives to_json/of_json" true (s = kitchen_sink)
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let test_text_round_trip () =
  let text = Obs.Json.to_string ~pretty:true (Chaos.to_json kitchen_sink) in
  match Chaos.of_string text with
  | Ok s -> check_bool "scenario survives serialization to text" true (s = kitchen_sink)
  | Error m -> Alcotest.failf "text round-trip failed: %s" m

let test_file_round_trip () =
  let path = Filename.temp_file "chaos" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Chaos.save_file path kitchen_sink;
  match Chaos.load_file path with
  | Ok s -> check_bool "scenario survives save/load" true (s = kitchen_sink)
  | Error m -> Alcotest.failf "file round-trip failed: %s" m

let test_validate_reports_every_problem () =
  let bad =
    {
      Chaos.seed = 1;
      events =
        [
          { Chaos.at_us = -1.0;
            event = Chaos.Straggle { replica = 0; factor = 0.5; duration_us = 0.0 } };
          { Chaos.at_us = 0.0;
            event =
              Chaos.Spike
                { duration_us = 1.0; requests = 0; dim = ""; lo = 0; hi = -1;
                  cls = Slo.Standard } };
          { Chaos.at_us = 0.0; event = Chaos.Corrupt_cache { fraction = 1.5 } };
        ];
    }
  in
  match Chaos.validate bad with
  | Ok () -> Alcotest.fail "expected validation errors"
  | Error es ->
      check_bool "every problem reported, not just the first" true (List.length es >= 6);
      check_bool "errors carry the event index" true
        (List.exists (fun e -> contains e "event 0:") es
        && List.exists (fun e -> contains e "event 1:") es
        && List.exists (fun e -> contains e "event 2:") es)

let test_parse_errors () =
  (match Chaos.of_string "not json at all" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error m -> check_bool "parse error is labelled" true (contains m "scenario JSON"));
  (match Chaos.of_string {|{"seed":1,"events":[{"type":"meteor","at_us":0}]}|} with
  | Ok _ -> Alcotest.fail "unknown event type parsed"
  | Error m -> check_bool "unknown type named" true (contains m "meteor"));
  (match
     Chaos.of_string
       {|{"seed":1,"events":[{"type":"spike","at_us":0,"duration_us":1,
          "requests":2,"dim":"d","lo":1,"hi":2,"cls":"warp-speed"}]}|}
   with
  | Ok _ -> Alcotest.fail "unknown class parsed"
  | Error m -> check_bool "unknown SLO class named" true (contains m "warp-speed"));
  match Chaos.of_string {|{"events":[]}|} with
  | Ok _ -> Alcotest.fail "missing seed parsed"
  | Error m -> check_bool "missing seed reported" true (contains m "seed")

(* --- delivery expansion ---------------------------------------------------- *)

let test_deliveries_expansion () =
  let ds = Chaos.deliveries kitchen_sink in
  (* spikes contribute no actions; crash-with-recovery and the windowed
     events are two each, corrupt is one: 2 + 2 + 2 + 0 + 1 *)
  check_int "expanded action count" 7 (List.length ds);
  check_bool "sorted by delivery time" true
    (let rec sorted = function
       | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
       | _ -> true
     in
     sorted ds);
  let at t = List.filter (fun (tt, _) -> tt = t) ds |> List.map snd in
  (match at 15_000.0 with
  | [ Chaos.Kill { replica = 0 } ] -> ()
  | _ -> Alcotest.fail "crash expands to a Kill at its time");
  (match at 35_000.0 with
  | [ Chaos.Revive { replica = 0; spinup_us } ] ->
      check_bool "revive carries the spinup" true (spinup_us = 2_000.0)
  | _ -> Alcotest.fail "recovery expands to a Revive after the delay");
  (match at 40_000.0 with
  | [ Chaos.Unslow { replica = 1 } ] -> ()
  | _ -> Alcotest.fail "straggle window closes with an Unslow");
  check_bool "pure function of the scenario" true (Chaos.deliveries kitchen_sink = ds)

let test_spike_determinism () =
  let a1 = Chaos.spike_arrivals kitchen_sink in
  let a2 = Chaos.spike_arrivals kitchen_sink in
  check_bool "two expansions are identical" true (a1 = a2);
  check_int "one arrival per spike request" (Chaos.spike_request_count kitchen_sink)
    (List.length a1);
  List.iter
    (fun (at, dims, cls) ->
      check_bool "arrival inside the spike window" true (at >= 25_000.0 && at <= 30_000.0);
      check_bool "class tagged" true (cls = Slo.Interactive);
      match dims with
      | [ ("hist", v) ] -> check_bool "value inside [lo,hi]" true (v >= 2 && v <= 40)
      | _ -> Alcotest.fail "spike dims are the named dim only")
    a1;
  (* the draw stream is indexed by scenario order of spikes only:
     prepending a non-spike event does not reshuffle arrivals *)
  let shifted =
    { kitchen_sink with
      Chaos.events =
        { Chaos.at_us = 0.0; event = Chaos.Corrupt_cache { fraction = 0.1 } }
        :: kitchen_sink.Chaos.events }
  in
  check_bool "non-spike events do not reshuffle spike draws" true
    (Chaos.spike_arrivals shifted = a1)

(* --- pool integration ------------------------------------------------------ *)

(* One shared compile cache so the model compiles once across tests;
   reproducibility tests build private caches instead (a corrupted
   shared cache would leak state between the paired runs). *)
let cache = Disc.Compile_cache.create ()
let build = (Suite.find "dien").Suite.build

let run_chaos ?(replicas = 2) ?private_cache ?(resilience = Pool.default_resilience) ~scenario reqs =
  let devices = List.init replicas (fun _ -> Device.a10) in
  let cfg = Pool.default_config ~devices ~batch_dim:"batch" ~bucket:[ ("hist", Bucket.Pow2) ] in
  let pool =
    match private_cache with
    | Some c -> Pool.create ~cache:c cfg build
    | None -> Pool.create ~cache cfg build
  in
  Pool.run ~chaos:scenario ~resilience pool reqs

let steady ?(cls = Slo.Standard) ?(gap_us = 1_000.0) ?(hist = 20) n =
  List.init n (fun i ->
      { Pool.arrival_us = float_of_int i *. gap_us; dims = [ ("hist", hist) ]; cls })

(* Cycle through several bucket keys so the router spreads warmth across
   the whole fleet — the watchdog's median reference needs measured
   rates on at least two peers. *)
let varied ?(cls = Slo.Standard) ?(gap_us = 300.0) n =
  List.init n (fun i ->
      let hist = [| 6; 20; 40 |].(i mod 3) in
      { Pool.arrival_us = float_of_int i *. gap_us; dims = [ ("hist", hist) ]; cls })

let conserved (r : Pool.report) n =
  r.Pool.lost = 0
  && r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
     + r.Pool.failed
     = n

let test_crash_redispatch_no_loss () =
  (* slow replica 0 first so a batch is guaranteed to still be in
     flight on it when the crash lands *)
  let scenario =
    {
      Chaos.seed = 3;
      events =
        [
          { Chaos.at_us = 1_000.0;
            event = Chaos.Straggle { replica = 0; factor = 50.0; duration_us = 10_000.0 } };
          { Chaos.at_us = 5_000.0;
            event = Chaos.Crash { replica = 0; recover_after_us = None; spinup_us = 0.0 } };
        ];
    }
  in
  let reqs = steady ~gap_us:200.0 30 in
  let r = run_chaos ~scenario reqs in
  check_bool "conserved" true (conserved r 30);
  check_int "crash delivered" 1 r.Pool.resilience.Pool.xr_crashes;
  check_int "nothing permanently failed" 0 r.Pool.failed;
  check_int "everything served" 30 (r.Pool.served + r.Pool.fell_back);
  (* the same crash without re-dispatch strands the in-flight batch *)
  let r0 = run_chaos ~scenario ~resilience:Pool.no_resilience reqs in
  check_bool "baseline conserved too" true (conserved r0 30);
  check_bool "baseline fails the stranded members" true (r0.Pool.failed >= 1);
  check_bool "resilient run re-dispatched them" true
    (r.Pool.resilience.Pool.xr_redispatched >= 1)

let test_recovery_rejoins () =
  let scenario =
    {
      Chaos.seed = 4;
      events =
        [
          { Chaos.at_us = 10_000.0;
            event =
              Chaos.Crash { replica = 0; recover_after_us = Some 15_000.0; spinup_us = 1_000.0 } };
        ];
    }
  in
  (* trace long past the recovery so the revived replica serves again *)
  let reqs = steady ~gap_us:2_000.0 40 in
  let r = run_chaos ~scenario reqs in
  check_bool "conserved" true (conserved r 40);
  check_int "recovery completed" 1 r.Pool.resilience.Pool.xr_recoveries;
  let rep0 = List.find (fun x -> x.Pool.rr_id = 0) r.Pool.replicas in
  Alcotest.(check string) "revived replica ends healthy" "healthy" rep0.Pool.rr_health

let test_watchdog_flags_straggler () =
  let scenario =
    {
      Chaos.seed = 5;
      events =
        [
          { Chaos.at_us = 5_000.0;
            event = Chaos.Straggle { replica = 0; factor = 20.0; duration_us = 200_000.0 } };
        ];
    }
  in
  let reqs = varied 150 in
  let r = run_chaos ~replicas:3 ~scenario reqs in
  check_bool "conserved" true (conserved r 150);
  check_bool "watchdog flagged the straggler" true
    (r.Pool.resilience.Pool.xr_degraded_events >= 1)

let test_hedge_first_result_wins () =
  let scenario =
    {
      Chaos.seed = 6;
      events =
        [
          { Chaos.at_us = 5_000.0;
            event = Chaos.Straggle { replica = 0; factor = 30.0; duration_us = 300_000.0 } };
        ];
    }
  in
  let reqs = varied ~cls:Slo.Interactive 150 in
  let resilience = { Pool.default_resilience with Pool.hedge_after_us = 100.0 } in
  let r = run_chaos ~replicas:3 ~scenario ~resilience reqs in
  check_bool "conserved (no double-count despite duplicates)" true (conserved r 150);
  check_bool "hedges launched" true (r.Pool.resilience.Pool.xr_hedges >= 1);
  check_bool "hedge wins counted at most once per hedge" true
    (r.Pool.resilience.Pool.xr_hedge_wins <= r.Pool.resilience.Pool.xr_hedges)

let test_brownout_rises_and_recovers () =
  let scenario =
    {
      Chaos.seed = 8;
      events =
        [
          { Chaos.at_us = 5_000.0;
            event =
              Chaos.Spike
                { duration_us = 30_000.0; requests = 250; dim = "hist"; lo = 10; hi = 50;
                  cls = Slo.Standard } };
        ];
    }
  in
  let reqs = steady ~gap_us:2_000.0 40 in
  let r = run_chaos ~replicas:1 ~scenario reqs in
  let xr = r.Pool.resilience in
  check_bool "conserved including spike traffic" true (conserved r (40 + 250));
  check_int "spike traffic counted" 250 xr.Pool.xr_spike_requests;
  check_bool "ladder stepped up" true (xr.Pool.xr_brownout_max >= 1);
  check_bool "transitions counted both ways" true (xr.Pool.xr_brownout_transitions >= 2);
  check_int "wound back down to level 0" 0 xr.Pool.xr_brownout_final;
  check_bool "time above level 0 accounted" true (xr.Pool.xr_brownout_us > 0.0);
  check_bool "recovery time stamped" true (xr.Pool.xr_last_level0_us > 0.0)

let test_corrupt_cache_event () =
  let scenario =
    {
      Chaos.seed = 9;
      events = [ { Chaos.at_us = 8_000.0; event = Chaos.Corrupt_cache { fraction = 1.0 } } ];
    }
  in
  let reqs = steady ~gap_us:1_000.0 30 in
  let c = Disc.Compile_cache.create () in
  let r = run_chaos ~private_cache:c ~scenario reqs in
  check_bool "conserved" true (conserved r 30);
  check_bool "corruption destroyed entries" true
    (r.Pool.resilience.Pool.xr_cache_corruptions >= 1);
  check_bool "stats carry the corruption" true
    ((Disc.Compile_cache.stats c).Disc.Compile_cache.corrupt >= 1);
  check_int "still nothing lost" 0 r.Pool.lost

let test_bit_reproducible () =
  let reqs = steady ~gap_us:700.0 60 in
  let run () =
    run_chaos ~replicas:3 ~private_cache:(Disc.Compile_cache.create ()) ~scenario:kitchen_sink
      reqs
  in
  let r1 = run () and r2 = run () in
  check_bool "dispositions bit-identical across runs" true
    (r1.Pool.dispositions = r2.Pool.dispositions);
  check_bool "latencies bit-identical across runs" true
    (Array.for_all2
       (fun a b -> (Float.is_nan a && Float.is_nan b) || a = b)
       r1.Pool.latencies_us r2.Pool.latencies_us);
  check_bool "summaries match" true
    (Pool.resilience_summary_to_string r1.Pool.resilience
    = Pool.resilience_summary_to_string r2.Pool.resilience)

let test_chaos_free_run_has_zero_report () =
  let pool =
    Pool.create
      (Pool.default_config ~devices:[ Device.a10 ] ~batch_dim:"batch"
         ~bucket:[ ("hist", Bucket.Pow2) ])
      build
  in
  let r = Pool.run pool (steady 10) in
  let xr = r.Pool.resilience in
  check_bool "resilience report is all-zero without chaos" true
    (xr.Pool.xr_crashes = 0 && xr.Pool.xr_recoveries = 0 && xr.Pool.xr_redispatched = 0
    && xr.Pool.xr_hedges = 0 && xr.Pool.xr_degraded_events = 0
    && xr.Pool.xr_brownout_transitions = 0 && xr.Pool.xr_spike_requests = 0
    && xr.Pool.xr_cache_corruptions = 0)

let () =
  Alcotest.run "chaos"
    [
      ( "scenario format",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "text round-trip" `Quick test_text_round_trip;
          Alcotest.test_case "file round-trip" `Quick test_file_round_trip;
          Alcotest.test_case "validation reports everything" `Quick
            test_validate_reports_every_problem;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "expansion" `Quick test_deliveries_expansion;
          Alcotest.test_case "spike determinism" `Quick test_spike_determinism;
        ] );
      ( "pool under chaos",
        [
          Alcotest.test_case "crash re-dispatch loses nothing" `Quick
            test_crash_redispatch_no_loss;
          Alcotest.test_case "recovery rejoins the fleet" `Quick test_recovery_rejoins;
          Alcotest.test_case "watchdog flags the straggler" `Quick
            test_watchdog_flags_straggler;
          Alcotest.test_case "hedging: first result wins" `Quick test_hedge_first_result_wins;
          Alcotest.test_case "brownout rises and recovers" `Quick
            test_brownout_rises_and_recovers;
          Alcotest.test_case "cache corruption survives" `Quick test_corrupt_cache_event;
          Alcotest.test_case "bit-reproducible" `Quick test_bit_reproducible;
          Alcotest.test_case "chaos-free report is zero" `Quick
            test_chaos_free_run_has_zero_report;
        ] );
    ]
