(* Tests for the deterministic shape-trace generators. *)

module T = Workloads.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let spec = [ ("a", T.Uniform (1, 100)); ("b", T.Skewed (1, 50)) ] in
  let e1 = T.environments ~seed:3 spec ~n:20 in
  let e2 = T.environments ~seed:3 spec ~n:20 in
  check_bool "same seed, same trace" true (e1 = e2);
  let e3 = T.environments ~seed:4 spec ~n:20 in
  check_bool "different seed, different trace" true (e1 <> e3)

let test_bounds () =
  let rng = T.create_rng 11 in
  for _ = 1 to 500 do
    let v = T.sample rng (T.Uniform (5, 9)) in
    check_bool "uniform in range" true (v >= 5 && v <= 9);
    let s = T.sample rng (T.Skewed (2, 40)) in
    check_bool "skewed in range" true (s >= 2 && s <= 40);
    let f = T.sample rng (T.Fixed 7) in
    check_int "fixed" 7 f;
    let b = T.sample rng (T.Bimodal (10, 100)) in
    check_bool "bimodal positive" true (b >= 1)
  done

let test_skew_is_short_biased () =
  let rng = T.create_rng 5 in
  let n = 2000 in
  let vals = List.init n (fun _ -> T.sample rng (T.Skewed (1, 100))) in
  let mean = float_of_int (List.fold_left ( + ) 0 vals) /. float_of_int n in
  check_bool "mean well below midpoint" true (mean < 40.0)

let test_serving_mix_binds_model_dims () =
  (* every generated environment must bind exactly the model's dims and
     be consumable by the compiler's simulate path *)
  List.iter
    (fun entry ->
      let spec = T.serving_mix entry in
      let envs = T.environments ~seed:1 spec ~n:4 in
      let built = entry.Models.Suite.build_tiny () in
      List.iter
        (fun env ->
          List.iter
            (fun (dname, v) ->
              check_bool "dim exists" true (List.mem_assoc dname built.Models.Common.dims);
              check_bool "value positive" true (v >= 1))
            env;
          check_int "all dims covered"
            (List.length built.Models.Common.dims)
            (List.length env))
        envs)
    Models.Suite.all

let test_float01_range () =
  let rng = T.create_rng 9 in
  for _ = 1 to 1000 do
    let f = T.float01 rng in
    check_bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

(* --- queueing / dynamic batching ---------------------------------------- *)

module Q = Workloads.Queueing

let mk_req t dims = { Q.arrival_us = t; dims }

let test_batch_env () =
  let reqs = [ mk_req 0.0 [ ("seq", 10) ]; mk_req 1.0 [ ("seq", 25) ]; mk_req 2.0 [ ("seq", 7) ] ] in
  let env = Q.batch_env ~batch_dim:"batch" reqs in
  Alcotest.(check int) "batch = count" 3 (List.assoc "batch" env);
  Alcotest.(check int) "seq = max (intra-batch padding)" 25 (List.assoc "seq" env)

let test_simulate_respects_max_batch () =
  (* 10 simultaneous arrivals, max_batch 4 -> 3 batches (4,4,2) *)
  let arrivals = List.init 10 (fun _ -> mk_req 0.0 [ ("seq", 8) ]) in
  let policy = { Q.max_batch = 4; max_wait_us = 100.0 } in
  let o = Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service:(fun _ -> 50.0) in
  Alcotest.(check int) "three batches" 3 o.Q.batches;
  (* serialized service: last batch completes at ~150us *)
  check_bool "makespan ~ 3 services" true (Float.abs (o.Q.makespan_us -. 150.0) < 1.0)

let test_latency_includes_queueing () =
  (* two arrivals at t=0, batch size 1: second waits for the first *)
  let arrivals = [ mk_req 0.0 [ ("seq", 4) ]; mk_req 0.0 [ ("seq", 4) ] ] in
  let policy = { Q.max_batch = 1; max_wait_us = 0.0 } in
  let o = Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service:(fun _ -> 100.0) in
  check_bool "first ~100us" true (Float.abs (o.Q.latencies_us.(0) -. 100.0) < 1.0);
  check_bool "second ~200us (queued)" true (Float.abs (o.Q.latencies_us.(1) -. 200.0) < 1.0)

let test_wait_window_batches_close_arrivals () =
  (* arrivals 100us apart with a 1ms window coalesce into one batch *)
  let arrivals = List.init 5 (fun k -> mk_req (float_of_int k *. 100.0) [ ("seq", 4) ]) in
  let policy = { Q.max_batch = 8; max_wait_us = 1000.0 } in
  let o = Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service:(fun _ -> 10.0) in
  Alcotest.(check int) "one batch" 1 o.Q.batches;
  check_bool "mean batch = 5" true (o.Q.mean_batch = 5.0)

let test_service_sees_padded_shape () =
  let arrivals = [ mk_req 0.0 [ ("seq", 10) ]; mk_req 1.0 [ ("seq", 90) ] ] in
  let policy = { Q.max_batch = 2; max_wait_us = 1000.0 } in
  let seen = ref [] in
  let service env =
    seen := env :: !seen;
    1.0
  in
  ignore (Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service);
  match !seen with
  | [ env ] ->
      Alcotest.(check int) "padded seq" 90 (List.assoc "seq" env);
      Alcotest.(check int) "batch 2" 2 (List.assoc "batch" env)
  | _ -> Alcotest.fail "one batch expected"

let test_padding_accounting () =
  (* seq 10 + seq 90 pad to one 2x90 batch: 180 executed for 100 asked *)
  let arrivals = [ mk_req 0.0 [ ("seq", 10) ]; mk_req 1.0 [ ("seq", 90) ] ] in
  let policy = { Q.max_batch = 2; max_wait_us = 1000.0 } in
  let o = Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service:(fun _ -> 1.0) in
  Alcotest.(check int) "actual elements" 100 o.Q.actual_elements;
  Alcotest.(check int) "padded elements" 180 o.Q.padded_elements;
  check_bool "waste = 80/180" true (Float.abs (Q.padding_waste o -. (80.0 /. 180.0)) < 1e-9);
  (* homogeneous shapes: no intra-batch padding at all *)
  let arrivals = List.init 4 (fun k -> mk_req (float_of_int k) [ ("seq", 7) ]) in
  let o = Q.simulate ~arrivals ~policy:{ Q.max_batch = 4; max_wait_us = 1000.0 }
      ~batch_dim:"batch" ~service:(fun _ -> 1.0) in
  check_bool "no waste when shapes agree" true (Q.padding_waste o = 0.0)

let test_generate_arrivals_sorted_and_positive () =
  let reqs = Q.generate_arrivals ~seed:3 ~qps:100.0 ~n:50 ~dims:[ ("seq", T.Uniform (1, 64)) ] in
  Alcotest.(check int) "count" 50 (List.length reqs);
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Q.arrival_us <= b.Q.arrival_us && mono rest
    | _ -> true
  in
  check_bool "sorted arrivals" true (mono reqs);
  check_bool "positive times" true (List.for_all (fun r -> r.Q.arrival_us > 0.0) reqs)

let prop_higher_load_never_lowers_latency =
  QCheck.Test.make ~name:"p99 latency is monotone in load" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run qps =
        let arrivals =
          Q.generate_arrivals ~seed ~qps ~n:100 ~dims:[ ("seq", T.Uniform (4, 32)) ]
        in
        let policy = { Q.max_batch = 4; max_wait_us = 500.0 } in
        let o =
          Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service:(fun env ->
              50.0 +. float_of_int (List.assoc "batch" env * List.assoc "seq" env))
        in
        Q.percentile o.Q.latencies_us 0.99
      in
      run 2000.0 >= run 20.0 *. 0.5)

let prop_uniform_covers_range =
  QCheck.Test.make ~name:"uniform eventually hits both endpoints" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = T.create_rng seed in
      let vals = List.init 400 (fun _ -> T.sample rng (T.Uniform (1, 4))) in
      List.mem 1 vals && List.mem 4 vals)

let () =
  Alcotest.run "workloads"
    [
      ( "trace",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "skew" `Quick test_skew_is_short_biased;
          Alcotest.test_case "serving mixes" `Quick test_serving_mix_binds_model_dims;
          Alcotest.test_case "float01" `Quick test_float01_range;
        ] );
      ( "queueing",
        [
          Alcotest.test_case "batch env" `Quick test_batch_env;
          Alcotest.test_case "max batch" `Quick test_simulate_respects_max_batch;
          Alcotest.test_case "queue wait" `Quick test_latency_includes_queueing;
          Alcotest.test_case "wait window" `Quick test_wait_window_batches_close_arrivals;
          Alcotest.test_case "padded shape" `Quick test_service_sees_padded_shape;
          Alcotest.test_case "padding accounting" `Quick test_padding_accounting;
          Alcotest.test_case "arrival gen" `Quick test_generate_arrivals_sorted_and_positive;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_uniform_covers_range; prop_higher_load_never_lowers_latency ] );
    ]
