(* Tests for the static buffer planner: validity (no live overlap),
   reuse effectiveness, alignment, and agreement with the liveness-based
   peak tracking in the simulator. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Planner = Fusion.Planner
module Executable = Runtime.Executable
module Memplan = Runtime.Memplan

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bind g dims =
  let tab = Graph.symtab g in
  let bnd = Table.empty_binding () in
  List.iter (fun (d, v) -> Table.bind_dim tab bnd d v) dims;
  bnd

(* a chain: each intermediate dies immediately -> arena should be ~2 buffers *)
let chain_graph n =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let rec go v i = if i = 0 then v else go (B.tanh g v) (i - 1) in
  Graph.set_outputs g [ go x n ];
  (g, s)

let plan_for ?(planner = Planner.no_fusion_config) g dims =
  let plan = Planner.plan ~config:planner g in
  let exe = Executable.compile g plan in
  (exe, Memplan.plan exe (bind g dims))

let test_chain_reuses () =
  let g, s = chain_graph 10 in
  let _, p = plan_for g [ (s, 1000) ] in
  check_bool "valid" true (Memplan.validate p);
  check_int "ten buffers" 10 (List.length p.Memplan.assignments);
  (* naive = 10 buffers; with reuse the arena holds at most 2 at a time *)
  check_bool "arena is ~2 buffers" true (p.Memplan.arena_bytes <= 2 * 4096 + 512);
  check_bool "naive is 10 buffers" true (p.Memplan.naive_bytes >= 10 * 4000)

let test_diamond_no_overlap () =
  (* a kept alive across both branches: must not be recycled *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let a = B.exp g x in
  let l = B.tanh g a in
  let r = B.abs g a in
  Graph.set_outputs g [ B.add g l r ];
  let _, p = plan_for g [ (s, 500) ] in
  check_bool "valid" true (Memplan.validate p);
  (* a, l, r alive simultaneously at the add: arena >= 3 buffers *)
  check_bool "three live buffers" true (p.Memplan.arena_bytes >= 3 * 2000)

let test_alignment () =
  let g, s = chain_graph 3 in
  let _, p = plan_for g [ (s, 33) ] in
  List.iter
    (fun a ->
      check_int "offset aligned" 0 (a.Memplan.offset mod 256);
      check_int "size aligned" 0 (a.Memplan.size mod 256))
    p.Memplan.assignments

let test_agrees_with_simulator_peak () =
  (* simulator peak (resident + live intermediates) is an upper bound on
     resident + arena (planner reuses at least as well as liveness) *)
  let entry = Models.Suite.find "dien" in
  let built = entry.Models.Suite.build () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let plan = Planner.plan built.Models.Common.graph in
  let exe = Executable.compile built.Models.Common.graph plan in
  let bnd = Models.Common.binding_for built [ ("batch", 128); ("hist", 20) ] in
  let profile = Executable.simulate exe bnd in
  let p = Memplan.plan exe bnd in
  check_bool "valid" true (Memplan.validate p);
  check_bool "planned <= simulator peak" true
    (p.Memplan.resident_bytes + p.Memplan.arena_bytes
    <= profile.Runtime.Profile.peak_bytes + (256 * List.length p.Memplan.assignments))

let test_replan_per_shape () =
  let g, s = chain_graph 4 in
  let exe, p_small = plan_for g [ (s, 100) ] in
  let p_big = Memplan.plan exe (bind g [ (s, 100000) ]) in
  check_bool "same executable, bigger arena at bigger shape" true
    (p_big.Memplan.arena_bytes > p_small.Memplan.arena_bytes);
  check_bool "both valid" true (Memplan.validate p_small && Memplan.validate p_big)

(* --- degenerate bindings ---------------------------------------------------- *)

let test_zero_sized_dim () =
  (* a dim bound to 0 (empty batch): every buffer is zero bytes — the
     plan must still validate, with an empty arena *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh ~lb:0 tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.tanh g (B.exp g x) ];
  let exe, p = plan_for g [ (s, 0) ] in
  check_bool "valid at size zero" true (Memplan.validate p);
  check_int "empty arena" 0 p.Memplan.arena_bytes;
  check_int "naive also empty" 0 p.Memplan.naive_bytes;
  List.iter (fun a -> check_int "zero-size assignment" 0 a.Memplan.size) p.Memplan.assignments;
  (match Memplan.plan_result exe (bind g [ (s, 0) ]) with
  | Ok p2 -> check_bool "plan_result agrees" true (Memplan.validate p2)
  | Error e -> Alcotest.failf "plan_result failed: %s" (Runtime.Error.to_string e))

let test_single_op_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.tanh g x ];
  let exe, p = plan_for g [ (s, 17) ] in
  check_bool "valid" true (Memplan.validate p);
  check_int "one buffer" 1 (List.length p.Memplan.assignments);
  check_bool "nothing to reuse: arena = naive" true
    (p.Memplan.arena_bytes = p.Memplan.naive_bytes);
  (match Memplan.plan_result exe (bind g [ (s, 17) ]) with
  | Ok p2 -> check_int "plan_result matches plan" p.Memplan.arena_bytes p2.Memplan.arena_bytes
  | Error e -> Alcotest.failf "plan_result failed: %s" (Runtime.Error.to_string e))

let test_unbound_dim_is_structured () =
  let g, _s = chain_graph 2 in
  let plan = Planner.plan ~config:Planner.no_fusion_config g in
  let exe = Executable.compile g plan in
  match Memplan.plan_result exe (bind g []) with
  | Ok _ -> Alcotest.fail "unbound dim should not plan"
  | Error (Runtime.Error.Unbound_dim _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Runtime.Error.to_string e)

let prop_random_models_plan_validly =
  QCheck.Test.make ~name:"memory plans are valid on suite models" ~count:8
    (QCheck.make (QCheck.Gen.oneofl [ "dien"; "crnn"; "t5"; "fastspeech" ]))
    (fun name ->
      let entry = Models.Suite.find name in
      let built = entry.Models.Suite.build () in
      ignore (Ir.Passes.run_all built.Models.Common.graph);
      let plan = Planner.plan built.Models.Common.graph in
      let exe = Executable.compile built.Models.Common.graph plan in
      let bnd = Models.Common.binding_for built (List.hd entry.Models.Suite.bench_dims) in
      let p = Memplan.plan exe bnd in
      Memplan.validate p && p.Memplan.arena_bytes <= p.Memplan.naive_bytes)

let () =
  Alcotest.run "memplan"
    [
      ( "planner",
        [
          Alcotest.test_case "chain reuses" `Quick test_chain_reuses;
          Alcotest.test_case "diamond no overlap" `Quick test_diamond_no_overlap;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "vs simulator peak" `Quick test_agrees_with_simulator_peak;
          Alcotest.test_case "replan per shape" `Quick test_replan_per_shape;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "zero-sized dim" `Quick test_zero_sized_dim;
          Alcotest.test_case "single-op graph" `Quick test_single_op_graph;
          Alcotest.test_case "unbound dim" `Quick test_unbound_dim_is_structured;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_random_models_plan_validly ]);
    ]
