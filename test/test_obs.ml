(* Tests for the observability subsystem: trace well-formedness, span
   nesting, histogram percentile accuracy, compile-phase reconciliation,
   and the disabled-mode zero-cost guarantee. *)

module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Scope = Obs.Scope
module Json = Obs.Json
module Suite = Models.Suite

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* Reset process-wide observability state around a test so suites don't
   leak spans/metrics into each other. *)
let with_global_obs f =
  Scope.enable ();
  Trace.clear Trace.global;
  Metrics.reset Metrics.global;
  Fun.protect
    ~finally:(fun () ->
      Scope.disable ();
      Trace.clear Trace.global;
      Metrics.reset Metrics.global)
    f

(* ---------------------------------------------------------------- *)
(* Trace                                                            *)
(* ---------------------------------------------------------------- *)

let test_span_nesting () =
  let t = Trace.create () in
  Trace.begin_span t "outer" ~cat:"request";
  Trace.advance t 10.0;
  Trace.begin_span t "inner" ~args:[ ("k", "v") ];
  Trace.advance t 5.0;
  Trace.end_span t ();
  Trace.advance t 3.0;
  Trace.end_span t ~args:[ ("outcome", "ok") ] ();
  check_int "two spans" 2 (Trace.length t);
  match Trace.spans t with
  | [ outer; inner ] ->
      check_string "outer first (earlier begin)" "outer" outer.Trace.name;
      check_int "outer depth" 0 outer.Trace.depth;
      check_int "inner depth" 1 inner.Trace.depth;
      check_float "outer duration = total advance" 18.0 outer.Trace.dur_us;
      check_float "inner duration" 5.0 inner.Trace.dur_us;
      (* containment: inner ⊆ outer *)
      check_bool "inner starts inside outer" true
        (inner.Trace.begin_us >= outer.Trace.begin_us);
      check_bool "inner ends inside outer" true
        (inner.Trace.begin_us +. inner.Trace.dur_us
        <= outer.Trace.begin_us +. outer.Trace.dur_us);
      check_bool "end args appended" true
        (List.mem_assoc "outcome" outer.Trace.args);
      check_string "begin args kept" "v" (List.assoc "k" inner.Trace.args)
  | _ -> Alcotest.fail "expected exactly two spans"

let test_stray_end_span_is_noop () =
  let t = Trace.create () in
  Trace.end_span t ();
  check_int "no span recorded" 0 (Trace.length t);
  check_int "nothing dropped" 0 (Trace.dropped t)

let test_trace_cap_drops () =
  let t = Trace.create ~cap:4 () in
  for i = 1 to 10 do
    Trace.complete t ~dur_us:1.0 ~advance:true (Printf.sprintf "k%d" i)
  done;
  check_int "kept cap spans" 4 (Trace.length t);
  check_int "rest counted dropped" 6 (Trace.dropped t);
  check_float "cursor still advanced" 10.0 (Trace.now_us t)

(* Walk the Chrome JSON document structure directly. *)
let trace_events doc =
  match doc with
  | Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Json.List evs -> evs
      | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "chrome doc is not an object"

let ev_field ev name =
  match ev with
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> Alcotest.fail "event is not an object"

let test_chrome_export_well_formed () =
  let t = Trace.create () in
  Trace.set_track_name t 0 "main";
  Trace.begin_span t "outer" ~cat:"request";
  Trace.complete t ~cat:"kernel" ~dur_us:7.0 ~advance:true "k0";
  Trace.end_span t ();
  let evs = trace_events (Trace.to_chrome_json t) in
  let xs, metas =
    List.partition (fun e -> ev_field e "ph" = Some (Json.Str "X")) evs
  in
  check_int "one X event per span" (Trace.length t) (List.length xs);
  check_bool "thread_name metadata present" true
    (List.exists (fun e -> ev_field e "name" = Some (Json.Str "thread_name")) metas);
  List.iter
    (fun e ->
      check_bool "has name" true (ev_field e "name" <> None);
      check_bool "has ts" true (ev_field e "ts" <> None);
      check_bool "has dur" true (ev_field e "dur" <> None);
      check_bool "has pid" true (ev_field e "pid" <> None);
      check_bool "has tid" true (ev_field e "tid" <> None))
    xs;
  (* and the serialized string is the document we inspected *)
  let s = Trace.export_chrome t in
  check_bool "serializes" true (String.length s > 0);
  check_bool "mentions traceEvents" true
    (String.length s >= 11
    &&
    let rec find i =
      i + 11 <= String.length s && (String.sub s i 11 = "traceEvents" || find (i + 1))
    in
    find 0)

let test_text_report () =
  let t = Trace.create () in
  Trace.begin_span t "outer";
  Trace.complete t ~dur_us:2.5 ~advance:true "inner";
  Trace.end_span t ();
  let r = Trace.to_text_report t in
  check_bool "report mentions both spans" true
    (let has sub =
       let n = String.length sub in
       let rec find i = i + n <= String.length r && (String.sub r i n = sub || find (i + 1)) in
       find 0
     in
     has "outer" && has "inner")

(* ---------------------------------------------------------------- *)
(* Metrics                                                          *)
(* ---------------------------------------------------------------- *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value c);
  check_bool "same cell by name" true (Metrics.counter m "c" == c);
  let g = Metrics.gauge m "g" in
  Metrics.set_gauge g 2.5;
  check_float "gauge" 2.5 (Metrics.gauge_value g)

(* Percentile estimates carry at most 1/sub_buckets relative error. *)
let test_histogram_percentiles_uniform () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  let tol = 1.0 /. float_of_int Metrics.sub_buckets in
  let close ~exact p =
    let est = Metrics.percentile h p in
    Float.abs (est -. exact) /. exact <= tol
  in
  check_int "count" 1000 (Metrics.histogram_count h);
  check_float "mean exact (sum tracked aside)" 500.5 (Metrics.histogram_mean h);
  check_bool "p50 within bucket error" true (close ~exact:500.0 0.50);
  check_bool "p90 within bucket error" true (close ~exact:900.0 0.90);
  check_bool "p99 within bucket error" true (close ~exact:990.0 0.99);
  check_float "p100 clamps to exact max" 1000.0 (Metrics.percentile h 1.0);
  let p0 = Metrics.percentile h 0.0 in
  check_bool "p0 stays within bucket error of the min" true
    (p0 >= 1.0 && p0 <= 1.0 *. (1.0 +. tol))

let test_histogram_edge_cases () =
  let m = Metrics.create () in
  let empty = Metrics.histogram m "empty" in
  check_float "empty percentile is 0" 0.0 (Metrics.percentile empty 0.99);
  check_float "empty mean is 0" 0.0 (Metrics.histogram_mean empty);
  let one = Metrics.histogram m "one" in
  Metrics.observe one 42.0;
  (* every percentile of a single sample is that sample, exactly *)
  List.iter
    (fun p -> check_float "single sample" 42.0 (Metrics.percentile one p))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let neg = Metrics.histogram m "neg" in
  Metrics.observe neg (-5.0);
  check_float "negative clamps to 0" 0.0 (Metrics.percentile neg 0.5)

let test_snapshot_and_diff () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  let h = Metrics.histogram m "lat" in
  Metrics.inc ~by:3 c;
  Metrics.observe h 10.0;
  let before = Metrics.snapshot m in
  Metrics.inc ~by:2 c;
  Metrics.observe h 100.0;
  Metrics.observe h 200.0;
  let after = Metrics.snapshot m in
  let d = Metrics.diff before after in
  check_int "counter delta" 2 (List.assoc "reqs" d.Metrics.counters);
  let hs = List.assoc "lat" d.Metrics.histograms in
  check_int "histogram delta count" 2 hs.Metrics.h_count;
  check_float "histogram delta sum" 300.0 hs.Metrics.h_sum;
  (* interval percentiles come from the delta buckets only *)
  check_bool "interval p50 reflects new samples" true
    (Metrics.percentile_of_snapshot hs 0.5 >= 90.0);
  (* exports don't raise and mention the metric names *)
  let table = Metrics.to_table_string after in
  let json = Json.to_string (Metrics.snapshot_to_json after) in
  check_bool "table mentions lat" true (String.length table > 0);
  check_bool "json mentions reqs" true
    (let has s sub =
       let n = String.length sub in
       let rec find i = i + n <= String.length s && (String.sub s i n = sub || find (i + 1)) in
       find 0
     in
     has json "reqs" && has table "lat")

(* ---------------------------------------------------------------- *)
(* Compile-phase reconciliation (the acceptance criterion)          *)
(* ---------------------------------------------------------------- *)

let test_phases_sum_to_compile_time () =
  let entry = Suite.find "dien" in
  let built = entry.Suite.build () in
  let compiled = Disc.Compiler.compile built.Models.Common.graph in
  let phase_sum =
    List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 compiled.Disc.Compiler.phases
  in
  check_int "four phases" 4 (List.length compiled.Disc.Compiler.phases);
  check_float "phases sum to compile_time_ms" compiled.Disc.Compiler.compile_time_ms
    phase_sum

let test_compile_trace_spans_reconcile () =
  with_global_obs (fun () ->
      let entry = Suite.find "dien" in
      let built = entry.Suite.build () in
      let compiled = Disc.Compiler.compile built.Models.Common.graph in
      let spans = Trace.spans Trace.global in
      let root =
        match List.filter (fun s -> s.Trace.depth = 0 && s.Trace.cat = "compile") spans with
        | [ s ] -> s
        | _ -> Alcotest.fail "expected exactly one root compile span"
      in
      let phase_spans = List.filter (fun s -> s.Trace.depth > 0) spans in
      check_int "one span per phase" (List.length compiled.Disc.Compiler.phases)
        (List.length phase_spans);
      let phase_dur =
        List.fold_left (fun acc s -> acc +. s.Trace.dur_us) 0.0 phase_spans
      in
      Alcotest.(check (float 1e-6)) "phase spans sum to the compile span" root.Trace.dur_us
        phase_dur;
      Alcotest.(check (float 1e-6)) "and to compile_time_ms"
        (compiled.Disc.Compiler.compile_time_ms *. 1000.0)
        phase_dur)

(* ---------------------------------------------------------------- *)
(* Disabled mode: no observable side effects, identical results     *)
(* ---------------------------------------------------------------- *)

let test_disabled_mode_is_inert () =
  Scope.disable ();
  Trace.clear Trace.global;
  Metrics.reset Metrics.global;
  let snap0 = Metrics.snapshot Metrics.global in
  Scope.begin_span "s";
  Scope.advance 10.0;
  Scope.end_span ();
  Scope.span ~dur_us:5.0 "k";
  Scope.count "c";
  Scope.gauge "g" 1.0;
  Scope.observe "h" 2.0;
  let v = Scope.with_span "w" (fun () -> 7) in
  let v2 = Scope.time_counter "tc" (fun () -> 8) in
  check_int "with_span passes value through" 7 v;
  check_int "time_counter passes value through" 8 v2;
  check_int "no spans recorded" 0 (Trace.length Trace.global);
  check_float "clock untouched" 0.0 (Trace.now_us Trace.global);
  check_bool "no metrics created" true (Metrics.snapshot Metrics.global = snap0)

let test_disabled_serving_identical () =
  (* instrumentation must not perturb results: the same requests served
     with observability on and off produce bit-identical stats *)
  let entry = Suite.find "dien" in
  let reqs = [ (16, 5); (64, 20); (256, 50); (16, 5) ] in
  let run () =
    let session = Disc.Session.create (entry.Suite.build ()) in
    List.iter
      (fun (b, h) -> ignore (Disc.Session.serve session [ ("batch", b); ("hist", h) ]))
      reqs;
    Disc.Session.stats session
  in
  Scope.disable ();
  let off = run () in
  let on = with_global_obs run in
  check_bool "stats bit-identical with tracing on" true (off = on);
  Scope.disable ();
  Trace.clear Trace.global;
  Metrics.reset Metrics.global

let test_scope_error_tagging () =
  with_global_obs (fun () ->
      (try Scope.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      match Trace.spans Trace.global with
      | [ s ] ->
          check_string "span closed despite raise" "boom" s.Trace.name;
          check_string "tagged error" "true" (List.assoc "error" s.Trace.args)
      | _ -> Alcotest.fail "expected one span")

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "stray end_span" `Quick test_stray_end_span_is_noop;
          Alcotest.test_case "cap drops" `Quick test_trace_cap_drops;
          Alcotest.test_case "chrome export" `Quick test_chrome_export_well_formed;
          Alcotest.test_case "text report" `Quick test_text_report;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "percentiles (uniform)" `Quick test_histogram_percentiles_uniform;
          Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
          Alcotest.test_case "snapshot + diff" `Quick test_snapshot_and_diff;
        ] );
      ( "compile",
        [
          Alcotest.test_case "phases sum" `Quick test_phases_sum_to_compile_time;
          Alcotest.test_case "trace reconciles" `Quick test_compile_trace_spans_reconcile;
        ] );
      ( "scope",
        [
          Alcotest.test_case "disabled mode inert" `Quick test_disabled_mode_is_inert;
          Alcotest.test_case "disabled serving identical" `Quick test_disabled_serving_identical;
          Alcotest.test_case "error tagging" `Quick test_scope_error_tagging;
        ] );
    ]
