(* Tests for the model zoo: every model builds at both scales, verifies,
   runs on the data plane at several dynamic shapes, and its outputs
   satisfy model-specific invariants (softmax rows, masks, causality). *)

module Suite = Models.Suite
module Common = Models.Common
module Graph = Ir.Graph
module Nd = Tensor.Nd
module Ops = Tensor.Ops_ref

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_tiny entry env =
  let built = entry.Suite.build_tiny () in
  let inputs = Common.test_inputs built env in
  (built, inputs, Ir.Interp.run built.Common.graph inputs)

let all_finite nd = Nd.fold (fun ok v -> ok && Float.is_finite v) true nd

(* generic checks applied to every model *)
let generic_tests entry =
  let build_verifies () =
    let built = entry.Suite.build_tiny () in
    Graph.verify built.Common.graph;
    let full = entry.Suite.build () in
    Graph.verify full.Common.graph;
    check_bool "paper-scale graph bigger" true
      (Graph.num_insts full.Common.graph >= Graph.num_insts built.Common.graph)
  in
  let passes_preserve () =
    let built = entry.Suite.build_tiny () in
    let inputs = Common.test_inputs built entry.Suite.tiny_dims in
    let before = Ir.Interp.run built.Common.graph inputs in
    ignore (Ir.Passes.run_all built.Common.graph);
    Graph.verify built.Common.graph;
    let after = Ir.Interp.run built.Common.graph inputs in
    List.iter2
      (fun a b -> check_bool "passes preserve outputs" true (Nd.equal_approx ~eps:1e-5 a b))
      before after
  in
  let outputs_finite () =
    let _, _, outs = run_tiny entry entry.Suite.tiny_dims in
    List.iter (fun o -> check_bool "finite" true (all_finite o)) outs
  in
  let shape_generic () =
    (* running the same graph at a second shape env must work *)
    let built = entry.Suite.build_tiny () in
    let env2 =
      List.map (fun (n, v) -> (n, v + 1)) entry.Suite.tiny_dims
    in
    let inputs = Common.test_inputs built env2 in
    let outs = Ir.Interp.run built.Common.graph inputs in
    List.iter (fun o -> check_bool "finite at second shape" true (all_finite o)) outs
  in
  let compiled_matches_interp () =
    let built = entry.Suite.build_tiny () in
    let inputs = Common.test_inputs built entry.Suite.tiny_dims in
    let expected = Ir.Interp.run built.Common.graph inputs in
    let c = Disc.Compiler.compile built.Common.graph in
    let got, _ = Disc.Compiler.run c inputs in
    List.iter2
      (fun e o -> check_bool "compiled = interp" true (Nd.equal_approx ~eps:1e-5 e o))
      expected got
  in
  [
    Alcotest.test_case (entry.Suite.name ^ " builds+verifies") `Quick build_verifies;
    Alcotest.test_case (entry.Suite.name ^ " passes preserve") `Quick passes_preserve;
    Alcotest.test_case (entry.Suite.name ^ " outputs finite") `Quick outputs_finite;
    Alcotest.test_case (entry.Suite.name ^ " shape generic") `Quick shape_generic;
    Alcotest.test_case (entry.Suite.name ^ " compiled = interp") `Quick compiled_matches_interp;
  ]

(* model-specific semantic checks *)

let test_crnn_rows_are_distributions () =
  let entry = Suite.find "crnn" in
  let _, _, outs = run_tiny entry [ ("batch", 1); ("width", 32) ] in
  match outs with
  | [ probs; decoded ] ->
      (* [b, w', charset]: every row sums to 1 *)
      let rows = Ops.reduce Ops.R_sum probs ~dims:[ 2 ] in
      Nd.fold (fun ok v -> ok && Float.abs (v -. 1.0) < 1e-5) true rows
      |> check_bool "softmax rows" true;
      (* the greedy decode picks each row's argmax *)
      let w' = (Nd.shape probs).(1) and charset = (Nd.shape probs).(2) in
      for t = 0 to w' - 1 do
        let k = int_of_float (Nd.get decoded [| 0; t |]) in
        check_bool "decode in charset" true (k >= 0 && k < charset);
        for j = 0 to charset - 1 do
          check_bool "argmax is max" true
            (Nd.get probs [| 0; t; j |] <= Nd.get probs [| 0; t; k |])
        done
      done
  | _ -> Alcotest.fail "two outputs"

let test_crnn_width_derivation () =
  (* conv (same-size) + 2x2/2 max-pool stack: each stage halves width *)
  let entry = Suite.find "crnn" in
  List.iter
    (fun w ->
      let _, _, outs = run_tiny entry [ ("batch", 1); ("width", w) ] in
      match outs with
      | probs :: _ ->
          let expect = w / 2 / 2 in
          check_int (Printf.sprintf "width %d" w) expect (Nd.shape probs).(1)
      | _ -> Alcotest.fail "outputs expected")
    [ 32; 33; 40; 50 ]

let test_dien_scores_are_probabilities () =
  let entry = Suite.find "dien" in
  let _, _, outs = run_tiny entry [ ("batch", 4); ("hist", 5) ] in
  match outs with
  | [ score ] ->
      Alcotest.(check (array int)) "shape" [| 4; 1 |] (Nd.shape score);
      Nd.fold (fun ok v -> ok && v >= 0.0 && v <= 1.0) true score
      |> check_bool "sigmoid range" true
  | _ -> Alcotest.fail "one output"

let test_gpt2_causality () =
  (* truncating the suffix of the input must not change earlier
     positions' outputs (causal masking) *)
  let entry = Suite.find "gpt2" in
  let built = entry.Suite.build_tiny () in
  let env_long = [ ("batch", 1); ("seq", 6) ] in
  let inputs_long = Common.test_inputs built env_long in
  let out_long = List.hd (Ir.Interp.run built.Common.graph inputs_long) in
  (* slice the long ids to a 4-token prefix; weights are shared *)
  let ids_long, weights =
    match inputs_long with ids :: ws -> (ids, ws) | [] -> assert false
  in
  let ids_short =
    Ops.slice ids_long ~starts:[| 0; 0 |] ~limits:[| 1; 4 |] ~strides:[| 1; 1 |]
  in
  let out_short = List.hd (Ir.Interp.run built.Common.graph (ids_short :: weights)) in
  (* compare position 0..3 hidden states *)
  let prefix_long =
    Ops.slice out_long ~starts:[| 0; 0; 0 |] ~limits:[| 1; 4; (Nd.shape out_long).(2) |]
      ~strides:[| 1; 1; 1 |]
  in
  check_bool "causal prefix stable" true (Nd.equal_approx ~eps:1e-4 prefix_long out_short)

let test_bert_mask_ignores_padding () =
  (* flipping token ids at masked positions must not change the pooled
     output *)
  let entry = Suite.find "bert" in
  let built = entry.Suite.build_tiny () in
  let env = [ ("batch", 1); ("seq", 6) ] in
  let inputs = Common.test_inputs built env in
  match inputs with
  | ids :: mask :: weights ->
      (* mask out the last two positions *)
      let mask' = Nd.copy mask in
      Nd.set mask' [| 0; 4 |] 0.0;
      Nd.set mask' [| 0; 5 |] 0.0;
      let run ids =
        match Ir.Interp.run built.Common.graph (ids :: mask' :: weights) with
        | [ _hidden; pooled ] -> pooled
        | _ -> Alcotest.fail "two outputs"
      in
      let base = run ids in
      let ids' = Nd.copy ids in
      Nd.set ids' [| 0; 4 |] 7.0;
      Nd.set ids' [| 0; 5 |] 3.0;
      let changed = run ids' in
      check_bool "pooled output independent of masked tokens" true
        (Nd.equal_approx ~eps:1e-4 base changed)
  | _ -> Alcotest.fail "unexpected inputs"

let test_seq2seq_src_mask () =
  (* same property on the cross-attention source mask *)
  let entry = Suite.find "seq2seq" in
  let built = entry.Suite.build_tiny () in
  let env = [ ("batch", 1); ("src", 5); ("tgt", 3) ] in
  match Common.test_inputs built env with
  | src_ids :: tgt_ids :: src_mask :: weights ->
      let mask' = Nd.copy src_mask in
      Nd.set mask' [| 0; 4 |] 0.0;
      let run src =
        List.hd (Ir.Interp.run built.Common.graph (src :: tgt_ids :: mask' :: weights))
      in
      let base = run src_ids in
      let src' = Nd.copy src_ids in
      Nd.set src' [| 0; 4 |] 9.0;
      check_bool "decoder ignores masked source token" true
        (Nd.equal_approx ~eps:1e-4 base (run src'))
  | _ -> Alcotest.fail "unexpected inputs"

let test_t5_bias_symmetry () =
  (* our simplified relative bias depends on |i-j|: swapping two inputs
     with identical content must give identical outputs (sanity that the
     in-graph bias computation is well-formed) *)
  let entry = Suite.find "t5" in
  let built = entry.Suite.build_tiny () in
  let inputs = Common.test_inputs built [ ("batch", 2); ("seq", 4) ] in
  let outs = Ir.Interp.run built.Common.graph inputs in
  List.iter (fun o -> check_bool "finite" true (all_finite o)) outs

let test_fastspeech_expand_map () =
  (* frames gathering phoneme 0 always -> all frame vectors equal *)
  let entry = Suite.find "fastspeech" in
  let built = entry.Suite.build_tiny () in
  let env = [ ("batch", 1); ("phon", 3); ("frames", 4) ] in
  let inputs = Common.test_inputs built env in
  (* expand_map is generated with Ids 1 => all zeros: every frame reads
     the same phoneme state, so decoder input rows are identical; after
     self-attention with identical rows, outputs stay identical *)
  match Ir.Interp.run built.Common.graph inputs with
  | [ mel ] ->
      let row k =
        Ops.slice mel ~starts:[| 0; k; 0 |] ~limits:[| 1; k + 1; (Nd.shape mel).(2) |]
          ~strides:[| 1; 1; 1 |]
      in
      check_bool "identical frames" true (Nd.equal_approx ~eps:1e-4 (row 0) (row 3))
  | _ -> Alcotest.fail "one output"

let test_suite_registry () =
  check_int "ten models" 10 (List.length Suite.all);
  List.iter
    (fun e ->
      check_bool "has bench dims" true (e.Suite.bench_dims <> []);
      let dname, vals = e.Suite.sweep in
      check_bool "sweep nonempty" true (vals <> []);
      (* sweep dim must be a declared dynamic dim *)
      let built = e.Suite.build_tiny () in
      check_bool "sweep dim exists" true
        (List.mem_assoc dname built.Common.dims))
    Suite.all

let () =
  let generic = List.concat_map generic_tests Suite.all in
  Alcotest.run "models"
    [
      ("generic", generic);
      ( "semantics",
        [
          Alcotest.test_case "crnn distributions" `Quick test_crnn_rows_are_distributions;
          Alcotest.test_case "crnn width derivation" `Quick test_crnn_width_derivation;
          Alcotest.test_case "dien probabilities" `Quick test_dien_scores_are_probabilities;
          Alcotest.test_case "gpt2 causality" `Quick test_gpt2_causality;
          Alcotest.test_case "bert mask" `Quick test_bert_mask_ignores_padding;
          Alcotest.test_case "seq2seq src mask" `Quick test_seq2seq_src_mask;
          Alcotest.test_case "t5 bias" `Quick test_t5_bias_symmetry;
          Alcotest.test_case "fastspeech expand" `Quick test_fastspeech_expand_map;
          Alcotest.test_case "registry" `Quick test_suite_registry;
        ] );
    ]
