(* Golden-output tests: exact expected text for the printer, the kernel
   emitter, the fusion plan and cost figures on small fixed programs.
   These pin the user-visible surfaces against accidental drift. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Planner = Fusion.Planner

let check_string = Alcotest.(check string)

let scaled_exp_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh ~lb:1 ~ub:128 ~likely:[ 16 ] tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 4 |] Dtype.F32 in
  let y = B.exp g (B.mulf g x 2.0) in
  Graph.set_outputs g [ y ];
  (g, s)

let test_printer_golden () =
  let g, _ = scaled_exp_graph () in
  check_string "printed program"
    "graph {\n\
    \  sym s0 lb=1 ub=128 likely=16\n\
    \  %0 : f32[s0x4] = parameter(0, \"x\")()\n\
    \  %1 : f32[] = constant(f32[]{2})()\n\
    \  %2 : f32[s0x4] = mul(%0, %1)\n\
    \  %3 : f32[s0x4] = exp(%2)\n\
    \  return %3\n\
     }\n"
    (Ir.Printer.to_string ~with_symbols:true g)

let test_plan_golden () =
  let g, _ = scaled_exp_graph () in
  let plan = Planner.plan g in
  check_string "plan dump"
    "cluster 3 [kLoop] domain=[s0x4] members={2,3} inputs={0,1} outputs={3}\n"
    (Fusion.Cluster.to_string plan)

let test_emit_golden () =
  let g, _ = scaled_exp_graph () in
  let plan = Planner.plan g in
  let c = List.hd plan.Fusion.Cluster.clusters in
  let k = Codegen.Kernel.build g Codegen.Kernel.no_speculation_config c in
  check_string "emitted kernel"
    "// kernel_3_kLoop (kLoop)\n\
     // version generic            guards: always\n\
     __global__ void kernel_3_kLoop(const float* v0, const float* v1, float* out_v3, \
     const int64_t* dims) {\n\
    \  int64_t numel = dims[0] * 4;\n\
    \  for (int64_t idx = blockIdx.x * blockDim.x + threadIdx.x;\n\
    \       idx < numel; idx += gridDim.x * blockDim.x) {\n\
    \    float v2 = v0 * v1;\n\
    \    float v3 = __expf(v2);\n\
    \    out_v3[idx] = v3;\n\
    \  }\n\
     }\n"
    (Codegen.Emit.emit g k)

let test_cost_golden () =
  (* exact cost arithmetic for a fixed kernel on the A10 profile *)
  let w =
    {
      Gpusim.Cost.default_work with
      Gpusim.Cost.bytes_read = 510_000; (* 1 us at 600 GB/s x 0.85 *)
      bytes_written = 0;
      blocks = 100_000;
    }
  in
  Alcotest.(check (float 1e-9)) "mem time" 1.0 (Gpusim.Cost.mem_time_us Gpusim.Device.a10 w);
  Alcotest.(check (float 1e-6)) "kernel time = launch + tail + body"
    (3.5 +. 1.2 +. 1.0)
    (Gpusim.Cost.kernel_time_us Gpusim.Device.a10 w)

let test_profile_string_golden () =
  let p = Runtime.Profile.create () in
  Runtime.Profile.add p ~kname:"k" ~kind:"kLoop" ~version_tag:"generic" ~time_us:10.0
    ~host_us:0.5 ~bytes:2_000_000 ~flops:1.0;
  Runtime.Profile.note_live_bytes p 3_000_000;
  check_string "profile summary"
    "total=10.5us (device=10.0 host=0.5) launches=1 bytes=2.00MB peak=3.00MB"
    (Runtime.Profile.to_string p)

let test_stats_string_golden () =
  let g, _ = scaled_exp_graph () in
  check_string "coverage summary"
    "insts=4 symbols=1 classes=1 product_facts=0 dyn_slots=3 equal_pairs=3/3"
    (Disc.Stats.to_string (Disc.Stats.coverage g))

(* The adaptive-serving summary block printed by `discc serve
   --adaptive` (and by the E17 bench), pinned exactly: both the fully
   populated shape and the placeholder shape before any policy has been
   derived. *)
let test_adaptive_summary_golden () =
  let a =
    {
      Serving.Pool.ar_ticks = 12;
      ar_rebuckets = 3;
      ar_minted = 5;
      ar_hints = 24;
      ar_scale_ups = 2;
      ar_scale_downs = 1;
      ar_final_replicas = 3;
      ar_final_spec = "hist:edges20-24-40";
      ar_likely = [ ("hist", [ 20; 24; 40 ]) ];
    }
  in
  check_string "adaptive serve summary"
    "adaptive: ticks=12 rebuckets=3 minted=5 hints=24 scale_ups=2 scale_downs=1 alive=3\n\
     bucket: hist:edges20-24-40\n\
     likely: hist=20,24,40"
    (Serving.Pool.adaptive_summary_to_string a);
  let empty =
    { a with Serving.Pool.ar_final_spec = ""; ar_likely = []; ar_scale_ups = 0 }
  in
  check_string "placeholders before a policy is derived"
    "adaptive: ticks=12 rebuckets=3 minted=5 hints=24 scale_ups=0 scale_downs=1 alive=3\n\
     bucket: (none)\n\
     likely: (none)"
    (Serving.Pool.adaptive_summary_to_string empty)

(* Pinned structural fingerprints of the tiny suite models — the
   identities the compilation cache keys on. A mismatch here means the
   canonical form changed: every persisted cache directory is silently
   cold after such a change, so bump deliberately. To refresh after an
   intentional IR/canonicalization change, regenerate with

     dune exec bin/discc.exe -- fingerprint --all --tiny

   and paste the table below. *)
let pinned_fingerprints =
  [
    ("bert", "c03f3e37724cc0fe6b139351679fe716");
    ("gpt2", "46a4ab043e88f8d651d3a057db795e87");
    ("gpt2-decode", "77bff835fdbd2224cacc8ebb30de89ad");
    ("seq2seq", "63081b005394d57737bfab0ddc6f98c7");
    ("t5", "7d7d7d35fe1d9e1dba086ec1e908fbb6");
    ("crnn", "1ae88223a32328bd03cdcb1e90902ac3");
    ("fastspeech", "c1fceb5a6dcecf0caaa22581f9a345f8");
    ("asr", "bde60ac2e1b32aae1dffd94526eda5cc");
    ("vit", "e3caf31ed25430c501202dd8d6e84dae");
    ("dien", "1928611d2f30f59fcc617bbe3780e25a");
  ]

let test_fingerprint_golden () =
  Alcotest.(check int) "every suite model pinned"
    (List.length Models.Suite.all) (List.length pinned_fingerprints);
  List.iter
    (fun (name, expected) ->
      let built = (Models.Suite.find name).Models.Suite.build_tiny () in
      check_string (name ^ " fingerprint")
        expected
        (Ir.Fingerprint.fingerprint ~dims:built.Models.Common.dims
           built.Models.Common.graph))
    pinned_fingerprints

(* Tuned-schedule pins: the autotuner's plan text must be byte-stable —
   the digest doubles as the schedule-cache identity, so silent drift
   here silently invalidates every warmed fleet. The single-kernel plan
   is pinned in full; the suite models pin the digest of the full
   [Tune.Plan.to_string] (the digest is the MD5 of that text). To
   refresh after an intentional cost-model or space change, regenerate
   with

     dune exec bin/discc.exe -- tune --model <name> --tiny --device A10

   and paste the digests below. *)
let test_tuned_plan_golden () =
  let g, s = scaled_exp_graph () in
  let c = Disc.Compiler.compile g in
  let exe = c.Disc.Compiler.exe in
  let rungs =
    List.map
      (fun v ->
        {
          Tune.Search.env = [ ("s", v) ];
          bnd = Disc.Compiler.binding_of_dims exe.Runtime.Executable.g [ (s, v) ];
        })
      [ 16; 64; 128 ]
  in
  let plan = Tune.Search.plan ~device:Gpusim.Device.a10 ~rungs exe in
  check_string "tuned plan text"
    "tuned-plan device=A10\n\
     rungs: s=16 | s=64 | s=128\n\
    \  kernel_3_kLoop: t64.c4+vec4@<=256 -> t64.c1 -> generic\n"
    (Tune.Plan.to_string plan)

let pinned_tuned_digests =
  [
    ("bert", "cc697d8d49b953f25f001f3ea466edb2");
    ("gpt2", "f35453220849f319c6bd7ed24cd47436");
    ("gpt2-decode", "bdfe8098ba5a8ac66414d7801ad9aae9");
    ("seq2seq", "ac5abd0373942e44d0a450eaebb817e5");
    ("t5", "ab6350b544692065ba351e3d9ac2d8f4");
    ("crnn", "f9e2b0112ebb73a34c4d0cf156346720");
    ("fastspeech", "0171d9153257ec36266695b8ba1834bf");
    ("asr", "7f4147149bc5f9f17b61b2c7d1b0e061");
    ("vit", "0c2ca848bb046fec12f173a57b91d2ca");
    ("dien", "7333a92e1e741264ebef62a0a28d304f");
  ]

let test_tuned_digests_golden () =
  Alcotest.(check int) "every suite model pinned"
    (List.length Models.Suite.all)
    (List.length pinned_tuned_digests);
  List.iter
    (fun (name, expected) ->
      let entry = Models.Suite.find name in
      let probe = entry.Models.Suite.build_tiny () in
      let tab = Graph.symtab probe.Models.Common.graph in
      let ub d =
        match Table.upper_bound tab d with Some u -> u | None -> 64
      in
      (* same ceiling ladder `discc tune` defaults to: 1/8, 1/2, full *)
      let envs =
        List.sort_uniq compare
          (List.map
             (fun frac ->
               List.map
                 (fun (n, d) -> (n, max 1 (ub d / frac)))
                 probe.Models.Common.dims)
             [ 8; 2; 1 ])
      in
      let session =
        Disc.Session.create ~device:Gpusim.Device.a10 (entry.Models.Suite.build_tiny ())
      in
      let plan, _ = Disc.Session.tune session ~envs in
      check_string (name ^ " tuned-plan digest") expected (Tune.Plan.digest plan))
    pinned_tuned_digests

let () =
  Alcotest.run "golden"
    [
      ( "text surfaces",
        [
          Alcotest.test_case "printer" `Quick test_printer_golden;
          Alcotest.test_case "plan" `Quick test_plan_golden;
          Alcotest.test_case "emit" `Quick test_emit_golden;
          Alcotest.test_case "cost" `Quick test_cost_golden;
          Alcotest.test_case "profile" `Quick test_profile_string_golden;
          Alcotest.test_case "stats" `Quick test_stats_string_golden;
          Alcotest.test_case "adaptive summary" `Quick test_adaptive_summary_golden;
        ] );
      ( "fingerprints",
        [ Alcotest.test_case "suite models pinned" `Quick test_fingerprint_golden ] );
      ( "tuned schedules",
        [
          Alcotest.test_case "single-kernel plan text" `Quick test_tuned_plan_golden;
          Alcotest.test_case "suite plan digests (A10)" `Quick
            test_tuned_digests_golden;
        ] );
    ]
