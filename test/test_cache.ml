(* Compile-cache semantics at the Session level: sharing one compile
   across sessions, LRU eviction, invalidation of suspect (de-speculated)
   artifacts, warm persistence across cache instances, async-compile
   warmup numerics, and the Obs counter wiring. *)

module Suite = Models.Suite
module Common = Models.Common
module Session = Disc.Session
module Cache = Disc.Compile_cache
module Nd = Tensor.Nd

let build name = (Suite.find name).Suite.build_tiny ()
let tiny_env name = (Suite.find name).Suite.tiny_dims

(* --- sharing --------------------------------------------------------------- *)

let test_two_sessions_share_one_compile () =
  let cache = Cache.create () in
  let s1 = Session.create ~cache (build "dien") in
  let s2 = Session.create ~cache (build "dien") in
  let st1 = Session.stats s1 and st2 = Session.stats s2 in
  Alcotest.(check bool) "first session misses" false st1.Session.cache_hit;
  Alcotest.(check bool) "first session pays the compile" true (st1.Session.compile_ms > 0.0);
  Alcotest.(check bool) "second session hits" true st2.Session.cache_hit;
  Alcotest.(check (float 0.0)) "second session compile_ms = 0" 0.0 st2.Session.compile_ms;
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  (* the shared executable serves the hit session at the same cost as
     the owner — the binding goes through the cached graph's symbols *)
  let env = tiny_env "dien" in
  let p1 = Session.serve s1 env and p2 = Session.serve s2 env in
  Alcotest.(check (float 1e-6))
    "identical latency through the shared artifact"
    (Runtime.Profile.total_us p1) (Runtime.Profile.total_us p2)

let test_hit_session_data_plane_matches_interp () =
  let cache = Cache.create () in
  let _owner = Session.create ~cache (build "dien") in
  let built = build "dien" in
  let sess = Session.create ~cache built in
  Alcotest.(check bool) "session hit" true (Session.cache_hit sess);
  let inputs = Common.test_inputs built (tiny_env "dien") in
  let expected = Ir.Interp.run built.Common.graph inputs in
  match Session.serve_data_result sess inputs with
  | Error e -> Alcotest.failf "serve_data failed: %s" (Runtime.Error.to_string e)
  | Ok (outs, _, path) ->
      Alcotest.(check bool) "served compiled" true (path = `Compiled);
      Alcotest.(check bool) "outputs match interpreter" true
        (List.for_all2 (Nd.equal_approx ~eps:1e-5) expected outs)

(* --- eviction --------------------------------------------------------------- *)

let test_eviction_recompiles () =
  let cache = Cache.create ~capacity:1 () in
  let _a1 = Session.create ~cache (build "dien") in
  let _b = Session.create ~cache (build "crnn") in
  (* crnn evicted dien (capacity 1): a second dien session recompiles *)
  let a2 = Session.create ~cache (build "dien") in
  let st = Session.stats a2 in
  Alcotest.(check bool) "evicted model recompiles" false st.Session.cache_hit;
  Alcotest.(check bool) "and pays the compile again" true (st.Session.compile_ms > 0.0);
  let s = Cache.stats cache in
  Alcotest.(check bool) "evictions counted" true (s.Cache.evictions >= 2);
  Alcotest.(check int) "capacity respected" 1 s.Cache.entries

let test_lru_order () =
  let cache = Cache.create ~capacity:2 () in
  let _a = Session.create ~cache (build "dien") in
  let _b = Session.create ~cache (build "crnn") in
  (* touch dien so crnn is the least recently used *)
  let a2 = Session.create ~cache (build "dien") in
  Alcotest.(check bool) "touch hits" true (Session.cache_hit a2);
  let _c = Session.create ~cache (build "vit") in
  let a3 = Session.create ~cache (build "dien") in
  let b2 = Session.create ~cache (build "crnn") in
  Alcotest.(check bool) "recently-used survivor still hits" true (Session.cache_hit a3);
  Alcotest.(check bool) "LRU victim was evicted" false (Session.cache_hit b2)

(* --- invalidation ----------------------------------------------------------- *)

let test_despeculated_never_served_fresh () =
  let cache = Cache.create () in
  let sess =
    Session.create ~cache
      ~fault_config:(Gpusim.Fault.create ~seed:3 ~kernel_fault_rate:1.0 ())
      (build "dien")
  in
  (* before any fault, a fresh session would share the artifact *)
  let probe = Session.create ~cache (build "dien") in
  Alcotest.(check bool) "pre-fault probe hits" true (Session.cache_hit probe);
  (* hammer until the circuit breaker de-speculates a kernel *)
  let env = tiny_env "dien" in
  let tries = ref 0 in
  while (Session.stats sess).Session.despeculated = 0 && !tries < 50 do
    ignore (Session.serve_result sess env);
    incr tries
  done;
  Alcotest.(check bool) "breaker tripped" true
    ((Session.stats sess).Session.despeculated > 0);
  (* the suspect artifact must not be served to a fresh session *)
  let fresh = Session.create ~cache (build "dien") in
  Alcotest.(check bool) "fresh session recompiles" false (Session.cache_hit fresh);
  Alcotest.(check bool) "invalidation counted" true
    ((Cache.stats cache).Cache.invalidations >= 1)

(* --- warm persistence -------------------------------------------------------- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "disc_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_warm_persistence () =
  with_tmp_dir @@ fun dir ->
  let c1 = Cache.create () in
  Cache.attach_dir c1 dir;
  let s1 = Session.create ~cache:c1 (build "dien") in
  Alcotest.(check bool) "cold run misses" false (Session.cache_hit s1);
  (* a new cache instance (new process in real life) finds the record *)
  let c2 = Cache.create () in
  Cache.attach_dir c2 dir;
  Alcotest.(check bool) "record was persisted" true (Cache.warm_keys c2 >= 1);
  let s2 = Session.create ~cache:c2 (build "dien") in
  let st = Session.stats s2 in
  Alcotest.(check bool) "warm run hits" true st.Session.cache_hit;
  Alcotest.(check (float 0.0)) "warm compile_ms = 0" 0.0 st.Session.compile_ms;
  Alcotest.(check int) "counted as warm hit" 1 (Cache.stats c2).Cache.warm_hits;
  (* warm artifacts still serve correctly *)
  ignore (Session.serve s2 (tiny_env "dien"))

let test_bit_flipped_record_quarantined () =
  with_tmp_dir @@ fun dir ->
  let c1 = Cache.create () in
  Cache.attach_dir c1 dir;
  let _s1 = Session.create ~cache:c1 (build "dien") in
  let files = Sys.readdir dir in
  Alcotest.(check bool) "a record was persisted" true (Array.length files >= 1);
  let path = Filename.concat dir files.(0) in
  let b = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  (* flip one bit of the first alphanumeric byte past the midpoint: it
     lands inside a field name, a key, or the checksum — all of which
     the loader must catch *)
  let pos = ref (Bytes.length b / 2) in
  while
    (match Bytes.get b !pos with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> false | _ -> true)
    && !pos < Bytes.length b - 1
  do
    incr pos
  done;
  Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let c2 = Cache.create () in
  Cache.attach_dir c2 dir;
  Alcotest.(check int) "bit-flipped record is quarantined, not loaded" 0 (Cache.warm_keys c2);
  Alcotest.(check bool) "quarantine counted" true ((Cache.stats c2).Cache.corrupt >= 1);
  Alcotest.(check bool) "bad file left in place for post-mortem" true (Sys.file_exists path);
  (* the poisoned record is never served: a fresh session recompiles *)
  let s2 = Session.create ~cache:c2 (build "dien") in
  Alcotest.(check bool) "recompiles instead of warm-hitting" false (Session.cache_hit s2)

let test_truncated_record_quarantined () =
  with_tmp_dir @@ fun dir ->
  let c1 = Cache.create () in
  Cache.attach_dir c1 dir;
  let _s1 = Session.create ~cache:c1 (build "dien") in
  let files = Sys.readdir dir in
  let path = Filename.concat dir files.(0) in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 (String.length text / 3)));
  let c2 = Cache.create () in
  Cache.attach_dir c2 dir;
  Alcotest.(check int) "truncated record is quarantined" 0 (Cache.warm_keys c2);
  Alcotest.(check bool) "quarantine counted" true ((Cache.stats c2).Cache.corrupt >= 1)

(* --- async-compile warmup ---------------------------------------------------- *)

let test_async_warmup_bit_identical_fallback () =
  let built = build "dien" in
  let sess = Session.create ~async_compile:true built in
  Alcotest.(check bool) "starts in warmup" true (Session.in_warmup sess);
  let inputs = Common.test_inputs built (tiny_env "dien") in
  let expected = Ir.Interp.run built.Common.graph inputs in
  (match Session.serve_data_result sess inputs with
  | Error e -> Alcotest.failf "warmup serve failed: %s" (Runtime.Error.to_string e)
  | Ok (outs, _, path) ->
      Alcotest.(check bool) "warmup serves on the fallback path" true (path = `Fallback);
      (* bit-identical, not approximately equal: it IS the interpreter *)
      Alcotest.(check bool) "fallback numerics bit-identical to Interp" true
        (List.for_all2 (Nd.equal_approx ~eps:0.0) expected outs));
  (* once the (virtual-time) compile completes, the switch is transparent *)
  Session.finish_warmup sess;
  Alcotest.(check bool) "warmup over" false (Session.in_warmup sess);
  match Session.serve_data_result sess inputs with
  | Error e -> Alcotest.failf "post-warmup serve failed: %s" (Runtime.Error.to_string e)
  | Ok (outs, _, path) ->
      Alcotest.(check bool) "compiled path after warmup" true (path = `Compiled);
      Alcotest.(check bool) "compiled outputs still match" true
        (List.for_all2 (Nd.equal_approx ~eps:1e-5) expected outs)

let test_async_warmup_budget_drains () =
  let sess = Session.create ~async_compile:true (build "crnn") in
  let env = tiny_env "crnn" in
  let budget = Session.warmup_remaining_us sess in
  Alcotest.(check bool) "budget is the compile time" true (budget > 0.0);
  let guard = ref 0 in
  while Session.in_warmup sess && !guard < 100_000 do
    ignore (Session.serve_result sess env);
    incr guard
  done;
  Alcotest.(check bool) "fallback traffic drains the budget" false (Session.in_warmup sess);
  match Session.serve_result sess env with
  | Ok (_, path) -> Alcotest.(check bool) "then compiled" true (path = `Compiled)
  | Error e -> Alcotest.failf "post-drain serve failed: %s" (Runtime.Error.to_string e)

(* --- schedule side table ------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let mk_plan device = { Tune.Plan.device; rungs = [ "b=1" ]; entries = [] }

let test_schedule_side_table_stats () =
  let cache = Cache.create () in
  Cache.store_schedule cache ~key:"k1" ~bucket:"A10|b=1" (mk_plan "A10");
  Cache.store_schedule cache ~key:"k1" ~bucket:"T4|b=1" (mk_plan "T4");
  Cache.store_schedule cache ~key:"k2" ~bucket:"A10|b=2" (mk_plan "A10");
  let s = Cache.stats cache in
  Alcotest.(check int) "schedules surfaced in stats" 3 s.Cache.schedules;
  Alcotest.(check int) "schedules_cached agrees" 3 (Cache.schedules_cached cache);
  Alcotest.(check bool) "exact bucket found" true
    (Cache.find_schedule cache ~key:"k1" ~bucket:"A10|b=1" <> None);
  Alcotest.(check bool) "unknown bucket misses" true
    (Cache.find_schedule cache ~key:"k1" ~bucket:"V100|b=1" = None);
  (match Cache.find_schedule_for_device cache ~key:"k1" ~device:"A10" with
  | Some p -> Alcotest.(check string) "device scan finds the A10 plan" "A10" p.Tune.Plan.device
  | None -> Alcotest.fail "device scan found nothing");
  Alcotest.(check bool) "device scan scoped to the key" true
    (Cache.find_schedule_for_device cache ~key:"k3" ~device:"A10" = None);
  (* the serving health line surfaces the side-table counts *)
  let line = Cache.health_to_string s in
  Alcotest.(check bool) "health line carries side-table counts" true
    (contains line "side: reductions=0 schedules=3");
  Alcotest.(check bool) "health line verdict" true (contains line "; healthy");
  let sick = Cache.health_to_string { s with Cache.corrupt = 2 } in
  Alcotest.(check bool) "quarantines surface as UNHEALTHY" true
    (contains sick "UNHEALTHY (2 corrupt artifacts quarantined)")

let test_invalidate_drops_schedules () =
  let cache = Cache.create () in
  Cache.store_schedule cache ~key:"k1" ~bucket:"A10|b=1" (mk_plan "A10");
  Cache.store_schedule cache ~key:"k1" ~bucket:"T4|b=1" (mk_plan "T4");
  Cache.store_schedule cache ~key:"k2" ~bucket:"A10|b=1" (mk_plan "A10");
  Cache.invalidate cache "k1";
  Alcotest.(check int) "invalidation drops the key's schedules" 1
    (Cache.schedules_cached cache);
  Alcotest.(check bool) "other keys' schedules survive" true
    (Cache.find_schedule cache ~key:"k2" ~bucket:"A10|b=1" <> None)

let test_session_tune_populates_and_replays () =
  let cache = Cache.create () in
  let envs = [ tiny_env "dien" ] in
  let s1 = Session.create ~cache (build "dien") in
  let plan1, origin1 = Session.tune s1 ~envs in
  Alcotest.(check bool) "first tune searches" true (origin1 = `Tuned);
  Alcotest.(check int) "plan stored in the side table" 1 (Cache.schedules_cached cache);
  let s2 = Session.create ~cache (build "dien") in
  let plan2, origin2 = Session.tune s2 ~envs in
  Alcotest.(check bool) "second session replays from cache" true (origin2 = `Cached);
  Alcotest.(check string) "replayed plan is bit-identical"
    (Tune.Plan.digest plan1) (Tune.Plan.digest plan2);
  (* fleet-warm adoption: a fresh same-device replica picks the plan up
     without tuning; a different device profile must not *)
  let s3 = Session.create ~cache (build "dien") in
  Alcotest.(check bool) "same-device replica adopts" true
    (Session.adopt_tuned_schedules s3);
  Alcotest.(check bool) "adopted plan visible" true (Session.tuned_plan s3 <> None);
  let s4 = Session.create ~cache ~device:Gpusim.Device.t4 (build "dien") in
  Alcotest.(check bool) "other device finds nothing to adopt" false
    (Session.adopt_tuned_schedules s4)

(* --- cache hit without cache: plain sessions unaffected ---------------------- *)

let test_no_cache_defaults () =
  let sess = Session.create (build "dien") in
  let st = Session.stats sess in
  Alcotest.(check bool) "no cache: not a hit" false st.Session.cache_hit;
  Alcotest.(check bool) "no cache: compile paid" true (st.Session.compile_ms > 0.0)

(* --- observability wiring ----------------------------------------------------- *)

let test_obs_counters () =
  Obs.Scope.enable ();
  Fun.protect ~finally:Obs.Scope.disable @@ fun () ->
  let hits0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.global "cache.hits")
  and misses0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.global "cache.misses")
  in
  let cache = Cache.create () in
  let _s1 = Session.create ~cache (build "dien") in
  let _s2 = Session.create ~cache (build "dien") in
  let hits =
    Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.global "cache.hits")
  and misses =
    Obs.Metrics.counter_value (Obs.Metrics.counter Obs.Metrics.global "cache.misses")
  in
  Alcotest.(check int) "cache.misses counter" (misses0 + 1) misses;
  Alcotest.(check int) "cache.hits counter" (hits0 + 1) hits;
  (* lookups leave spans on the global trace *)
  let found =
    List.exists
      (fun sp -> String.equal sp.Obs.Trace.name "cache.lookup")
      (Obs.Trace.spans Obs.Trace.global)
  in
  Alcotest.(check bool) "cache.lookup span recorded" true found

let () =
  Alcotest.run "compile-cache"
    [
      ( "sharing",
        [
          Alcotest.test_case "two sessions share one compile" `Quick
            test_two_sessions_share_one_compile;
          Alcotest.test_case "hit session data plane matches interp" `Quick
            test_hit_session_data_plane_matches_interp;
          Alcotest.test_case "no cache: defaults unchanged" `Quick test_no_cache_defaults;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "eviction at capacity recompiles" `Quick
            test_eviction_recompiles;
          Alcotest.test_case "least-recently-used is the victim" `Quick test_lru_order;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "de-speculated artifact never served fresh" `Quick
            test_despeculated_never_served_fresh;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "warm records waive the compile" `Quick test_warm_persistence;
          Alcotest.test_case "bit-flipped record quarantined" `Quick
            test_bit_flipped_record_quarantined;
          Alcotest.test_case "truncated record quarantined" `Quick
            test_truncated_record_quarantined;
        ] );
      ( "async-warmup",
        [
          Alcotest.test_case "warmup numerics bit-identical to Interp" `Quick
            test_async_warmup_bit_identical_fallback;
          Alcotest.test_case "fallback traffic drains the budget" `Quick
            test_async_warmup_budget_drains;
        ] );
      ( "schedule side table",
        [
          Alcotest.test_case "stats and health line surface counts" `Quick
            test_schedule_side_table_stats;
          Alcotest.test_case "invalidation drops schedules" `Quick
            test_invalidate_drops_schedules;
          Alcotest.test_case "session tune populates and replays" `Quick
            test_session_tune_populates_and_replays;
        ] );
      ( "observability",
        [ Alcotest.test_case "counters and spans recorded" `Quick test_obs_counters ] );
    ]
