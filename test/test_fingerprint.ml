(* Soundness of the compile-cache identity (Ir.Fingerprint):

   - alpha-equivalence: structurally identical graphs hash equal no
     matter how node ids were numbered, how symbols were named, or
     whether dead instructions were interleaved (cloning via Ir.Clone
     renumbers both);
   - sensitivity: any single op / dtype / shape-constraint mutation
     changes the hash;
   - no collisions across the model suite x planner configs at the
     cache-key level.

   The random-case budget across the QCheck properties is >= 250. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Fp = Ir.Fingerprint
module Suite = Models.Suite
module Common = Models.Common

(* Small random graph over [b, s] symbols: enough op/shape variety to
   exercise every section of the canonical form (elementwise chains,
   reductions, reshape product facts, constants, ranges, likely values). *)
let random_graph (st : Random.State.t) : Graph.t * (string * Sym.dim) list =
  let h = 4 * (1 + Random.State.int st 3) in
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"b" ~lb:1 ~ub:(16 + Random.State.int st 48) tab in
  let s =
    Table.fresh ~name:"s" ~lb:1 ~ub:64
      ~likely:(if Random.State.bool st then [ 8; 16 ] else [])
      tab
  in
  let x = B.param g ~name:"x" [| b; s; Sym.Static h |] Dtype.F32 in
  let f_shape = [| b; s; Sym.Static h |] in
  let pool = ref [ x ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let n_steps = 2 + Random.State.int st 8 in
  for _ = 1 to n_steps do
    let v =
      match Random.State.int st 7 with
      | 0 -> B.add g (pick ()) (pick ())
      | 1 -> B.mul g (pick ()) (pick ())
      | 2 -> B.tanh g (pick ())
      | 3 -> B.gelu g (pick ())
      | 4 -> B.reduce_lastdim_keep g Op.R_sum (pick ())
      | 5 ->
          let m = Table.fresh tab in
          let flat = B.reshape g (pick ()) [| m; Sym.Static h |] in
          B.reshape g (B.abs g flat) f_shape
      | _ ->
          let c = B.const g (Nd.init [| h |] (fun i -> float_of_int i.(0))) in
          B.add g (pick ()) (B.broadcast_trailing g c ~out:f_shape)
    in
    pool := v :: !pool
  done;
  Graph.set_outputs g [ List.hd !pool ];
  (g, [ ("b", b); ("s", s) ])

(* --- alpha-equivalence ----------------------------------------------------- *)

(* Ir.Clone rebuilds into a fresh graph with a fresh symbol table: node
   ids are renumbered and every symbol is renamed — exactly the
   accidental variation the fingerprint must be blind to. *)
let prop_clone_hashes_equal =
  QCheck.Test.make ~name:"clone (renumbered nodes, renamed dims) hashes equal" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g, _ = random_graph (Random.State.make [| seed |]) in
      String.equal (Fp.fingerprint g) (Fp.fingerprint (Ir.Clone.clone g)))

(* Dead instructions never reach the canonical form: appending junk that
   no output depends on is invisible (param-preserving reordering and
   renumbering in one move — live ids shift, dead ids interleave). *)
let prop_dead_code_invariant =
  QCheck.Test.make ~name:"dead instructions do not change the hash" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g, _ = random_graph st in
      let before = Fp.fingerprint g in
      let outputs = Graph.outputs g in
      (* junk: an op chain off a live value, never added to outputs *)
      ignore (B.tanh g (B.abs g (List.hd outputs)));
      Graph.set_outputs g outputs;
      String.equal before (Fp.fingerprint g))

let prop_rebuild_deterministic =
  QCheck.Test.make ~name:"independent rebuilds of the same program hash equal" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g1, _ = random_graph (Random.State.make [| seed |]) in
      let g2, _ = random_graph (Random.State.make [| seed |]) in
      String.equal (Fp.fingerprint g1) (Fp.fingerprint g2))

(* --- sensitivity ----------------------------------------------------------- *)

(* Mutate exactly one instruction in place (the inst record is mutable)
   in a structure-preserving way and require a hash change. *)
let mutate_one_inst (st : Random.State.t) (g : Graph.t) : bool =
  (* only live instructions count: the fingerprint is (by design) blind
     to dead code, so mutating a dead inst must not be required to
     change the hash *)
  let live = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem live id) then begin
      Hashtbl.add live id ();
      Array.iter mark (Graph.inst g id).Graph.args
    end
  in
  List.iter mark (Graph.outputs g);
  let candidates =
    Graph.fold g
      (fun acc i ->
        match i.Graph.op with
        | (Op.Unary _ | Op.Binary _) when Hashtbl.mem live i.Graph.id -> i :: acc
        | _ -> acc)
      []
  in
  match candidates with
  | [] -> false
  | _ ->
      let i = List.nth candidates (Random.State.int st (List.length candidates)) in
      (match Random.State.int st 3 with
      | 0 -> (
          (* op mutation *)
          match i.Graph.op with
          | Op.Unary u -> i.Graph.op <- Op.Unary (if u = Op.Abs then Op.Neg else Op.Abs)
          | Op.Binary bo ->
              i.Graph.op <- Op.Binary (if bo = Op.Add then Op.Sub else Op.Add)
          | _ -> assert false)
      | 1 ->
          (* dtype mutation *)
          i.Graph.dtype <- (if i.Graph.dtype = Dtype.F32 then Dtype.F16 else Dtype.F32)
      | _ -> (
          (* op mutation, different arm to vary coverage *)
          match i.Graph.op with
          | Op.Unary _ -> i.Graph.op <- Op.Unary Op.Exp
          | Op.Binary _ -> i.Graph.op <- Op.Binary Op.Max
          | _ -> assert false));
      true

let prop_mutation_changes_hash =
  QCheck.Test.make ~name:"single op/dtype mutation changes the hash" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g, _ = random_graph st in
      let before = Fp.fingerprint g in
      if mutate_one_inst st g then not (String.equal before (Fp.fingerprint g))
      else QCheck.assume_fail ())

(* Shape-constraint mutations: the graph's instructions are untouched —
   only the symbol table's distribution/structural facts move. *)
let prop_constraint_changes_hash =
  QCheck.Test.make ~name:"shape-constraint mutation changes the hash" ~count:50
    QCheck.(pair (int_bound 1_000_000) (int_range 0 2))
    (fun (seed, kind) ->
      let g, dims = random_graph (Random.State.make [| seed |]) in
      let before = Fp.fingerprint g in
      let tab = Graph.symtab g in
      let b = List.assoc "b" dims and s = List.assoc "s" dims in
      (match kind with
      | 0 -> Table.set_range tab b ~ub:7 () (* ranges only tighten; 7 < every generated ub *)
      | 1 -> Table.add_likely tab s [ 73 ]
      | _ -> Table.merge tab b s (* collapse two equality classes into one *));
      not (String.equal before (Fp.fingerprint g)))

(* --- no collisions across suite x configs ---------------------------------- *)

let planner_variants =
  [
    ("default", Fusion.Planner.default_config);
    ("no-fusion", Fusion.Planner.no_fusion_config);
    ("static-only", Fusion.Planner.static_only_config);
    ("no-products", Fusion.Planner.no_product_config);
    ("no-stitch", Fusion.Planner.no_stitch_config);
  ]

let test_no_key_collisions () =
  let keys = Hashtbl.create 64 in
  List.iter
    (fun entry ->
      List.iter
        (fun (pname, planner) ->
          let built = entry.Suite.build_tiny () in
          let options = { Disc.Compiler.default_options with planner } in
          let key =
            Disc.Compile_cache.key_of ~dims:built.Common.dims ~options built.Common.graph
          in
          (match Hashtbl.find_opt keys key with
          | Some other ->
              Alcotest.failf "key collision: %s/%s vs %s" entry.Suite.name pname other
          | None -> ());
          Hashtbl.add keys key (entry.Suite.name ^ "/" ^ pname))
        planner_variants)
    Suite.all;
  Alcotest.(check int) "all suite x planner keys distinct"
    (List.length Suite.all * List.length planner_variants)
    (Hashtbl.length keys)

let test_suite_fingerprints_distinct () =
  let fps =
    List.map
      (fun entry ->
        let built = entry.Suite.build_tiny () in
        Fp.fingerprint ~dims:built.Common.dims built.Common.graph)
      Suite.all
  in
  Alcotest.(check int) "9 models, 9 fingerprints"
    (List.length Suite.all)
    (List.length (List.sort_uniq String.compare fps))

let test_suite_clone_stable () =
  List.iter
    (fun entry ->
      let built = entry.Suite.build_tiny () in
      Alcotest.(check string)
        (entry.Suite.name ^ " clone hashes equal")
        (Fp.fingerprint built.Common.graph)
        (Fp.fingerprint (Ir.Clone.clone built.Common.graph)))
    Suite.all

(* Options are part of the key even when the graph is identical. *)
let test_options_split_keys () =
  let built = (Suite.find "dien").Suite.build_tiny () in
  let k options = Disc.Compile_cache.key_of ~dims:built.Common.dims ~options built.Common.graph in
  let base = Disc.Compiler.default_options in
  let variants =
    [
      { base with Disc.Compiler.planner = Fusion.Planner.no_fusion_config };
      { base with Disc.Compiler.codegen = Codegen.Kernel.no_speculation_config };
      { base with Disc.Compiler.host_overhead_us = 1.0 };
      { base with Disc.Compiler.run_graph_passes = false };
    ]
  in
  List.iteri
    (fun i o ->
      if String.equal (k base) (k o) then
        Alcotest.failf "options variant %d did not change the cache key" i)
    variants

let () =
  Alcotest.run "fingerprint"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_clone_hashes_equal;
            prop_dead_code_invariant;
            prop_rebuild_deterministic;
            prop_mutation_changes_hash;
            prop_constraint_changes_hash;
          ] );
      ( "collisions",
        [
          Alcotest.test_case "suite x planner cache keys distinct" `Quick
            test_no_key_collisions;
          Alcotest.test_case "suite fingerprints distinct" `Quick
            test_suite_fingerprints_distinct;
          Alcotest.test_case "suite clones hash equal" `Quick test_suite_clone_stable;
          Alcotest.test_case "compiler options split keys" `Quick test_options_split_keys;
        ] );
    ]
