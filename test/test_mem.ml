(* Tests for the symbolic-shape memory planner (lib/mem) and its serving
   integration: estimator soundness properties (>= 300 random cases over
   the model suite), reduced-plan validity, the >= 15 % peak-reduction
   acceptance bar, and the HBM-budgeted pool (memory-aware vs blind). *)

module Graph = Ir.Graph
module B = Ir.Builder
module Table = Symshape.Table
module Dtype = Tensor.Dtype
module Planner = Fusion.Planner
module Executable = Runtime.Executable
module Memplan = Runtime.Memplan
module Estimate = Mem.Estimate
module Reduce = Mem.Reduce
module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Replica = Serving.Replica
module Router = Serving.Router
module Scaler = Serving.Autoscaler
module Pool = Serving.Pool
module Suite = Models.Suite
module Device = Gpusim.Device

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- a tiny hand graph: sanity-check the estimator end to end --------- *)

let chain_graph n =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let rec go v i = if i = 0 then v else go (B.tanh g v) (i - 1) in
  Graph.set_outputs g [ go x n ];
  (g, s)

let bind g dims =
  let tab = Graph.symtab g in
  let bnd = Table.empty_binding () in
  List.iter (fun (d, v) -> Table.bind_dim tab bnd d v) dims;
  bnd

let test_chain_estimate () =
  let g, s = chain_graph 10 in
  let exe = Executable.compile g (Planner.plan ~config:Planner.no_fusion_config g) in
  let est = Estimate.of_executable exe in
  check_bool "has items" true (Estimate.n_items est > 0);
  check_bool "has candidates" true (Estimate.candidates est <> []);
  check_bool "peak expression prints" true
    (contains (Estimate.to_string est) "peak");
  let bnd = bind g [ (s, 1000) ] in
  let arena = (Memplan.plan exe bnd).Memplan.arena_bytes in
  (match (Estimate.arena_bound est bnd, Estimate.live_peak_bytes est bnd) with
  | Some bound, Some lp ->
      check_bool "bound >= arena" true (bound >= arena);
      check_bool "arena >= live peak" true (arena >= lp);
      check_bool "live peak positive" true (lp > 0)
  | _ -> Alcotest.fail "estimate unevaluable at bound binding");
  (* twice the dim, at least twice the live peak: monotone in the dim *)
  match
    ( Estimate.live_peak_bytes est (bind g [ (s, 1000) ]),
      Estimate.live_peak_bytes est (bind g [ (s, 2000) ]) )
  with
  | Some a, Some b -> check_bool "monotone in dim" true (b >= 2 * a - 512)
  | _ -> Alcotest.fail "estimate unevaluable"

let test_memplan_to_string_reports_reuse () =
  let g, s = chain_graph 10 in
  let exe = Executable.compile g (Planner.plan ~config:Planner.no_fusion_config g) in
  let p = Memplan.plan exe (bind g [ (s, 1000) ]) in
  let str = Memplan.to_string p in
  check_bool "reuse ratio reported" true (contains str "reuse=");
  check_bool "resident share reported" true (contains str "resident=");
  check_bool "arena reported" true (contains str "arena=")

(* --- suite contexts for the property soak ------------------------------ *)

type ctx = {
  c_name : string;
  c_built : Models.Common.built;
  c_exe : Executable.t;
  c_est : Estimate.t;
  c_maxes : (string * int) list;  (** per-dim max over the bench grid *)
}

let ctxs =
  lazy
    (Suite.all
    |> List.filter_map (fun (entry : Suite.entry) ->
           match entry.Suite.bench_dims with
           | [] -> None
           | first :: _ as grid ->
               let built = entry.Suite.build () in
               ignore (Ir.Passes.run_all built.Models.Common.graph);
               let g = built.Models.Common.graph in
               let exe = Executable.compile g (Planner.plan g) in
               let keys = List.map fst first in
               let max_of k =
                 List.fold_left (fun a env -> max a (List.assoc k env)) 1 grid
               in
               Some
                 {
                   c_name = entry.Suite.name;
                   c_built = built;
                   c_exe = exe;
                   c_est = Estimate.of_executable exe;
                   c_maxes = List.map (fun k -> (k, max_of k)) keys;
                 })
    |> Array.of_list)

let ceil_env env = List.map (fun (k, v) -> (k, Bucket.round_up Bucket.Pow2 v)) env

(* one reduction decision per (model, rung ceiling): exactly the
   decide-once-per-rung discipline the serving cache uses *)
let decision_memo : (int * (string * int) list, Reduce.decision) Hashtbl.t =
  Hashtbl.create 64

let decision_for i cenv =
  match Hashtbl.find_opt decision_memo (i, cenv) with
  | Some d -> d
  | None ->
      let c = (Lazy.force ctxs).(i) in
      let cbnd = Models.Common.binding_for c.c_built cenv in
      let d = Reduce.decide ~env:cenv c.c_est cbnd in
      Hashtbl.replace decision_memo (i, cenv) d;
      d

(* The three properties the estimator contract makes (estimate.mli):
     (a) arena_bound(bnd) >= plan(bnd).arena  -- sound at the binding it
         is evaluated at (and exact: the bound takes a max with the plan);
     (b) plan(bnd).arena >= live_peak(bnd)    -- the allocator floor;
     (c) live_peak(ceil) >= live_peak(bnd)    -- rung monotonicity (the
         polynomials have non-negative coefficients).
   Plus: every reduced plan validates, and the reduced peak re-evaluated
   at the decision's own rung reproduces peak_after. *)
let soundness_case (i, env) =
  let c = (Lazy.force ctxs).(i) in
  let cenv = ceil_env env in
  let bnd = Models.Common.binding_for c.c_built env in
  let cbnd = Models.Common.binding_for c.c_built cenv in
  let arena = (Memplan.plan c.c_exe bnd).Memplan.arena_bytes in
  match
    ( Estimate.arena_bound c.c_est bnd,
      Estimate.live_peak_bytes c.c_est bnd,
      Estimate.live_peak_bytes c.c_est cbnd )
  with
  | Some bound, Some lp, Some clp ->
      if bound < arena then
        QCheck.Test.fail_reportf "%s: bound %d < arena %d" c.c_name bound arena;
      if arena < lp then
        QCheck.Test.fail_reportf "%s: arena %d < live peak %d" c.c_name arena lp;
      if clp < lp then
        QCheck.Test.fail_reportf "%s: rung-ceiling peak %d < interior peak %d"
          c.c_name clp lp;
      (* tightness: the bound is exact at the binding it is evaluated at
         (max with the plan, and the plan dominates the live peak) *)
      if bound <> arena then
        QCheck.Test.fail_reportf "%s: bound %d <> arena %d (not tight)" c.c_name
          bound arena;
      let d = decision_for i cenv in
      if d.Reduce.peak_after > d.Reduce.peak_before then
        QCheck.Test.fail_reportf "%s: reduction raised the peak" c.c_name;
      (match Reduce.reduced_peak c.c_est d cbnd with
      | Some p when p = d.Reduce.peak_after -> ()
      | Some p ->
          QCheck.Test.fail_reportf "%s: reduced peak %d <> peak_after %d"
            c.c_name p d.Reduce.peak_after
      | None -> QCheck.Test.fail_reportf "%s: reduced peak unevaluable" c.c_name);
      let rp = Reduce.plan c.c_est d bnd in
      if not (Memplan.validate rp) then
        QCheck.Test.fail_reportf "%s: reduced plan fails validate" c.c_name;
      true
  | _ -> QCheck.Test.fail_reportf "%s: estimate unevaluable" c.c_name

let case_arbitrary =
  let gen st =
    let cs = Lazy.force ctxs in
    let i = Random.State.int st (Array.length cs) in
    let env =
      List.map (fun (k, m) -> (k, 1 + Random.State.int st m)) cs.(i).c_maxes
    in
    (i, env)
  in
  let print (i, env) =
    Printf.sprintf "%s [%s]"
      (Lazy.force ctxs).(i).c_name
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) env))
  in
  QCheck.make ~print gen

let prop_soundness =
  QCheck.Test.make ~count:300 ~name:"estimator sound + reduced plans valid"
    case_arbitrary soundness_case

(* --- reduction acceptance: >= 15 % on >= 2 suite models ---------------- *)

let best_savings name =
  let entry = Suite.find name in
  let built = entry.Suite.build () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let g = built.Models.Common.graph in
  let exe = Executable.compile g (Planner.plan g) in
  let est = Estimate.of_executable exe in
  List.fold_left
    (fun best env ->
      let cenv = ceil_env env in
      let cbnd = Models.Common.binding_for built cenv in
      let d = Reduce.decide ~env:cenv est cbnd in
      check_bool
        (Printf.sprintf "%s reduced plan valid" name)
        true
        (Memplan.validate (Reduce.plan est d cbnd));
      max best (Reduce.savings_pct d))
    0.0 entry.Suite.bench_dims

let test_reduction_bar () =
  let bert = best_savings "bert" and gpt2d = best_savings "gpt2-decode" in
  check_bool
    (Printf.sprintf "bert cuts >= 15%% (got %.1f%%)" bert)
    true (bert >= 15.0);
  check_bool
    (Printf.sprintf "gpt2-decode cuts >= 15%% (got %.1f%%)" gpt2d)
    true (gpt2d >= 15.0)

let test_decide_deterministic () =
  let entry = Suite.find "bert" in
  let built = entry.Suite.build () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let g = built.Models.Common.graph in
  let exe = Executable.compile g (Planner.plan g) in
  let est = Estimate.of_executable exe in
  let env = ceil_env (List.hd entry.Suite.bench_dims) in
  let bnd () = Models.Common.binding_for built env in
  let d1 = Reduce.decide ~env est (bnd ()) in
  let d2 = Reduce.decide ~env est (bnd ()) in
  check_bool "same order" true (d1.Reduce.order = d2.Reduce.order);
  check_bool "same groups" true (d1.Reduce.groups = d2.Reduce.groups);
  check_bool "same recompute set" true (d1.Reduce.recomputed = d2.Reduce.recomputed);
  check_int "same peak" d1.Reduce.peak_after d2.Reduce.peak_after;
  check_string "same rendering" (Reduce.to_string d1) (Reduce.to_string d2)

let test_identity_decision () =
  let entry = Suite.find "dien" in
  let built = entry.Suite.build () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let g = built.Models.Common.graph in
  let exe = Executable.compile g (Planner.plan g) in
  let est = Estimate.of_executable exe in
  let env = ceil_env (List.hd entry.Suite.bench_dims) in
  let d = Reduce.identity ~env est (Models.Common.binding_for built env) in
  check_int "identity saves nothing" d.Reduce.peak_before d.Reduce.peak_after;
  check_bool "identity savings 0" true (Reduce.savings_pct d = 0.0)

(* --- serving: router headroom, autoscaler pressure --------------------- *)

let dien () = (Suite.find "dien").Suite.build ()

let pow2_hist = [ ("hist", Bucket.Pow2) ]

let base_config ?(devices = [ Device.a10; Device.a10 ]) () =
  Pool.default_config ~devices ~batch_dim:"batch" ~bucket:pow2_hist

let test_router_headroom () =
  let pool = Pool.create (base_config ()) dien in
  let reps = Pool.replicas pool in
  let key = "batch=4,hist=64" in
  (* unbudgeted: the headroom tier is identically zero *)
  check_bool "no budget, equal scores" true
    (Router.score ~now:0.0 ~key reps.(0) = Router.score ~now:0.0 ~key reps.(1));
  Array.iter (fun r -> r.Replica.hbm_budget <- Some 1_000_000) reps;
  reps.(0).Replica.mem_last_bytes <- 900_000;
  check_bool "headroom fraction" true
    (abs_float (Replica.mem_headroom reps.(0) -. 0.1) < 1e-9);
  check_bool "fresh replica at full headroom" true
    (Replica.mem_headroom reps.(1) = 1.0);
  check_bool "memory-hot replica yields" true
    (Router.score ~now:0.0 ~key reps.(1) > Router.score ~now:0.0 ~key reps.(0))

let scaler_cfg =
  {
    Scaler.min_replicas = 1;
    Scaler.max_replicas = 4;
    Scaler.target_attainment = 0.5;
    Scaler.scale_up_queue = 1000;
    Scaler.scale_down_queue = 0;
    Scaler.cooldown_us = 10.0;
  }

let test_autoscaler_mem_pressure () =
  (* healthy pool, small backlog: Hold without pressure, Scale_up with *)
  let t = Scaler.create scaler_cfg in
  check_bool "no pressure holds" true
    (Scaler.decide t ~now:100.0 ~alive:2 ~queue_depth:5 ~attainment:1.0
    = Scaler.Hold);
  let t = Scaler.create scaler_cfg in
  check_bool "pressure scales up" true
    (Scaler.decide ~mem_pressure:true t ~now:100.0 ~alive:2 ~queue_depth:5
       ~attainment:1.0
    = Scaler.Scale_up);
  (* drained pool: Scale_down without pressure, vetoed with *)
  let t = Scaler.create scaler_cfg in
  check_bool "calm scales down" true
    (Scaler.decide t ~now:100.0 ~alive:2 ~queue_depth:0 ~attainment:1.0
    = Scaler.Scale_down);
  let t = Scaler.create scaler_cfg in
  check_bool "pressure vetoes scale-down" true
    (Scaler.decide ~mem_pressure:true t ~now:100.0 ~alive:2 ~queue_depth:0
       ~attainment:1.0
    = Scaler.Scale_up)

(* --- serving: the HBM-budgeted pool ------------------------------------ *)

let req ?(cls = Slo.Standard) arrival_us hist =
  { Pool.arrival_us; Pool.dims = [ ("hist", hist) ]; Pool.cls }

(* adversarial mix: small requests interleaved with memory-hot ones, so
   padded batches at the big rungs overrun a constrained budget *)
let mem_trace () =
  let hists = [| 8; 200; 64; 256; 16; 240; 32; 192 |] in
  List.init 64 (fun i -> req (400.0 *. float_of_int i) hists.(i mod 8))

let count_disp r d =
  Array.fold_left (fun n x -> if x = d then n + 1 else n) 0 r.Pool.dispositions

let run_budgeted ?(aware = true) budget =
  let cfg =
    { (base_config ()) with Pool.hbm_budget = Some budget; Pool.mem_aware = aware }
  in
  Pool.run (Pool.create cfg dien) (mem_trace ())

let mem_of r =
  match r.Pool.mem with
  | Some m -> m
  | None -> Alcotest.fail "budgeted run carries no mem report"

let probe_budget () =
  (* generous first run just to observe the largest batch estimate *)
  let m = mem_of (run_budgeted 1_000_000_000) in
  check_int "generous budget never capped" 0
    (m.Pool.mr_capped + m.Pool.mr_forced_exact + m.Pool.mr_rejected);
  check_int "generous budget never ooms" 0 m.Pool.mr_oom;
  check_bool "observed a peak" true (m.Pool.mr_est_peak_bytes > 0);
  (* the budget must clear the largest single-request estimate (resident
     weights dominate it) or every request is structurally unservable;
     set it 40 % of the way from there to the unconstrained batch peak
     so batches get squeezed but singles always fit *)
  let built = dien () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let g = built.Models.Common.graph in
  let exe = Executable.compile g (Planner.plan g) in
  let est = Estimate.of_executable exe in
  let single =
    List.fold_left
      (fun acc h ->
        let cenv = [ ("batch", 1); ("hist", Bucket.round_up Bucket.Pow2 h) ] in
        match Estimate.peak_bound est (Models.Common.binding_for built cenv) with
        | Some p -> max acc p
        | None -> acc)
      0
      [ 8; 200; 64; 256; 16; 240; 32; 192 ]
  in
  check_bool "single fits under batch peak" true
    (single < m.Pool.mr_est_peak_bytes);
  single + ((m.Pool.mr_est_peak_bytes - single) * 2 / 5)

let test_aware_pool_never_ooms () =
  let budget = probe_budget () in
  let r = run_budgeted budget in
  let m = mem_of r in
  check_int "lost=0" 0 r.Pool.lost;
  check_int "failed=0" 0 (count_disp r Pool.Failed);
  check_int "rejected=0 (singles fit)" 0 (count_disp r Pool.Rejected);
  check_bool "still serves" true (r.Pool.served > List.length (mem_trace ()) / 2);
  check_int "oom=0 (structural)" 0 m.Pool.mr_oom;
  check_bool "budget exercised" true
    (m.Pool.mr_capped + m.Pool.mr_forced_exact + m.Pool.mr_rejected > 0);
  check_bool "dispatched peaks fit" true (m.Pool.mr_est_peak_bytes <= budget);
  check_bool "summary carries the oom token" true
    (contains (Pool.mem_summary_to_string m) "oom=0")

let test_blind_pool_ooms () =
  let budget = probe_budget () in
  let r = run_budgeted ~aware:false budget in
  let m = mem_of r in
  check_bool "blind mode ooms" true (m.Pool.mr_oom > 0);
  check_bool "oomed batches lose members" true (count_disp r Pool.Failed > 0);
  check_int "per-replica ooms account for all" m.Pool.mr_oom
    (List.fold_left (fun n rr -> n + rr.Pool.rr_ooms) 0 r.Pool.replicas);
  check_int "still nothing unaccounted" 0 r.Pool.lost

let test_budgeted_rerun_identical () =
  let budget = probe_budget () in
  let a = run_budgeted budget and b = run_budgeted budget in
  check_string "report identical" (Pool.report_to_string a)
    (Pool.report_to_string b);
  check_string "mem summary identical"
    (Pool.mem_summary_to_string (mem_of a))
    (Pool.mem_summary_to_string (mem_of b))

let test_unbudgeted_has_no_mem_report () =
  let r = Pool.run (Pool.create (base_config ()) dien) (mem_trace ()) in
  check_bool "mem report absent" true (r.Pool.mem = None);
  check_int "lost=0" 0 r.Pool.lost

let () =
  Alcotest.run "mem"
    [
      ( "estimator",
        [
          Alcotest.test_case "chain sanity" `Quick test_chain_estimate;
          Alcotest.test_case "memplan to_string" `Quick
            test_memplan_to_string_reports_reuse;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_soundness ] );
      ( "reduction",
        [
          Alcotest.test_case "savings bar" `Slow test_reduction_bar;
          Alcotest.test_case "decide deterministic" `Quick
            test_decide_deterministic;
          Alcotest.test_case "identity decision" `Quick test_identity_decision;
        ] );
      ( "serving",
        [
          Alcotest.test_case "router headroom" `Quick test_router_headroom;
          Alcotest.test_case "autoscaler pressure" `Quick
            test_autoscaler_mem_pressure;
          Alcotest.test_case "aware pool never ooms" `Slow
            test_aware_pool_never_ooms;
          Alcotest.test_case "blind pool ooms" `Slow test_blind_pool_ooms;
          Alcotest.test_case "budgeted rerun identical" `Slow
            test_budgeted_rerun_identical;
          Alcotest.test_case "no budget, no mem report" `Quick
            test_unbudgeted_has_no_mem_report;
        ] );
    ]
