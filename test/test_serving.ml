(* Tests for the multi-replica serving subsystem. *)

module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Replica = Serving.Replica
module Router = Serving.Router
module Pool = Serving.Pool
module Suite = Models.Suite
module Device = Gpusim.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let dien () = (Suite.find "dien").Suite.build ()

let pow2_hist = [ ("hist", Bucket.Pow2) ]

let base_config ?(devices = [ Device.a10; Device.a10 ]) () =
  Pool.default_config ~devices ~batch_dim:"batch" ~bucket:pow2_hist

let req ?(cls = Slo.Standard) arrival_us hist =
  { Pool.arrival_us; Pool.dims = [ ("hist", hist) ]; Pool.cls }

(* --- buckets -------------------------------------------------------------- *)

let test_round_up () =
  check_int "pow2 5" 8 (Bucket.round_up Bucket.Pow2 5);
  check_int "pow2 exact power" 64 (Bucket.round_up Bucket.Pow2 64);
  check_int "pow2 1" 1 (Bucket.round_up Bucket.Pow2 1);
  check_int "linear 33/32" 64 (Bucket.round_up (Bucket.Linear 32) 33);
  check_int "linear 32/32" 32 (Bucket.round_up (Bucket.Linear 32) 32);
  check_int "exact" 17 (Bucket.round_up Bucket.Exact 17);
  check_bool "nonpositive rejected" true
    (try
       ignore (Bucket.round_up Bucket.Pow2 0);
       false
     with Invalid_argument _ -> true)

let test_bucket_keys () =
  let spec = [ ("seq", Bucket.Pow2); ("hist", Bucket.Linear 16) ] in
  check_string "rounded, name-sorted" "hist=32,seq=128"
    (Bucket.key_of spec [ ("seq", 100); ("hist", 20) ]);
  check_string "unlisted dims exact" "other=7"
    (Bucket.key_of spec [ ("other", 7) ]);
  check_string "env key is canonical" "a=1,b=2"
    (Bucket.env_key [ ("b", 2); ("a", 1) ]);
  (* same bucket <-> same key *)
  check_string "nearby shapes share a bucket"
    (Bucket.key_of spec [ ("seq", 65) ])
    (Bucket.key_of spec [ ("seq", 128) ])

let test_batch_envs () =
  let members = [ [ ("seq", 5) ]; [ ("seq", 9) ]; [ ("seq", 7); ("extra", 3) ] ] in
  let exact = Bucket.exact_env ~batch_dim:"batch" members in
  check_int "batch dim = member count" 3 (List.assoc "batch" exact);
  check_int "other dims = intra-batch max" 9 (List.assoc "seq" exact);
  check_int "missing dims contribute their max" 3 (List.assoc "extra" exact);
  let padded = Bucket.padded_env [ ("seq", Bucket.Pow2) ] ~batch_dim:"batch" members in
  check_int "padded dim at bucket ceiling" 16 (List.assoc "seq" padded);
  check_int "unlisted batch dim stays exact" 3 (List.assoc "batch" padded);
  let padded_b =
    Bucket.padded_env
      [ ("seq", Bucket.Pow2); ("batch", Bucket.Pow2) ]
      ~batch_dim:"batch" members
  in
  check_int "listed batch dim rounds too" 4 (List.assoc "batch" padded_b);
  check_bool "empty batch rejected" true
    (try
       ignore (Bucket.exact_env ~batch_dim:"batch" []);
       false
     with Invalid_argument _ -> true)

let test_waste () =
  Alcotest.(check (float 1e-9)) "waste fraction" 0.25 (Bucket.waste ~actual:96 ~padded:128);
  Alcotest.(check (float 1e-9)) "zero padded" 0.0 (Bucket.waste ~actual:0 ~padded:0)

(* --- SLO admission -------------------------------------------------------- *)

let test_slo_admission () =
  let policy =
    [ (Slo.Standard, { Slo.deadline_us = 100.0; priority = 1; queue_bound = 2 }) ]
  in
  let c = Slo.create policy in
  check_bool "first admitted" true (Slo.admit c Slo.Standard);
  check_bool "second admitted" true (Slo.admit c Slo.Standard);
  check_bool "at bound: shed" false (Slo.admit c Slo.Standard);
  check_int "shed counted" 1 (Slo.shed c Slo.Standard);
  check_int "queued" 2 (Slo.queued c Slo.Standard);
  Slo.dequeue c Slo.Standard;
  check_bool "slot freed" true (Slo.admit c Slo.Standard);
  (* classes missing from the policy fall back to the defaults *)
  check_bool "unlisted class admitted" true (Slo.admit c Slo.Interactive);
  check_bool "best-effort has no deadline" true
    (Slo.deadline_of policy Slo.Best_effort ~arrival_us:5.0 = Float.infinity);
  Alcotest.(check (float 1e-9)) "deadline is absolute" 105.0
    (Slo.deadline_of policy Slo.Standard ~arrival_us:5.0)

(* --- routing -------------------------------------------------------------- *)

let with_pool ?(cfg = base_config ()) f =
  let pool = Pool.create cfg dien in
  f pool

let test_warmth_score_orders_replicas () =
  with_pool (fun pool ->
      let reps = Pool.replicas pool in
      let key = "batch=1,hist=8" in
      Replica.note_batch reps.(0) ~key ~elements:8 ~service_us:100.0 ~requests:1
        ~cold:true;
      check_bool "warm replica outscores cold" true
        (Router.score ~now:0.0 ~key reps.(0) > Router.score ~now:0.0 ~key reps.(1));
      check_bool "warmth is per signature" true
        (Router.score ~now:0.0 ~key:"batch=1,hist=64" reps.(0)
        <= Router.score ~now:0.0 ~key:"batch=1,hist=64" reps.(1)))

let test_round_robin_rotates () =
  with_pool (fun pool ->
      let reps = Pool.replicas pool in
      let r = Router.create Router.Round_robin in
      let pick () =
        match Router.pick r ~now:0.0 ~key:"k" reps with
        | Some x -> x.Replica.id
        | None -> -1
      in
      check_int "first" 0 (pick ());
      check_int "second" 1 (pick ());
      check_int "wraps" 0 (pick ()))

let test_policy_of_string () =
  check_bool "rr alias" true (Router.policy_of_string "rr" = Some Router.Round_robin);
  check_bool "warmth alias" true
    (Router.policy_of_string "warmth-aware" = Some Router.Warmth_aware);
  check_bool "unknown" true (Router.policy_of_string "bogus" = None)

(* --- pool: cache sharing and validation ----------------------------------- *)

let test_pool_shares_cache () =
  let cfg = base_config ~devices:[ Device.a10; Device.a10; Device.a10 ] () in
  let pool = Pool.create cfg dien in
  let s = Disc.Compile_cache.stats (Pool.cache pool) in
  check_int "one compile for the pool" 1 s.Disc.Compile_cache.misses;
  check_int "remaining replicas hit" 2 s.Disc.Compile_cache.hits

let test_pool_create_validation () =
  check_bool "empty devices rejected" true
    (try
       ignore (Pool.create (base_config ~devices:[] ()) dien);
       false
     with Invalid_argument _ -> true);
  let cfg = { (base_config ()) with Pool.batch_dim = "bogus" } in
  check_bool "unknown batch dim rejected" true
    (try
       ignore (Pool.create cfg dien);
       false
     with Invalid_argument _ -> true)

(* --- pool: bucket formation and padding accounting ------------------------- *)

let test_bucketed_batching_and_padding () =
  (* eight near-identical shapes arriving together: one padded batch *)
  let cfg = { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_batch = 8 } in
  let pool = Pool.create cfg dien in
  let reqs = List.init 8 (fun i -> req (float_of_int i) (120 + i)) in
  let r = Pool.run pool reqs in
  check_int "one batch" 1 r.Pool.batches;
  check_int "padded dispatch" 1 r.Pool.padded_batches;
  check_int "all served" 8 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  (* members pad to hist=128: executed elements exceed requested ones *)
  check_int "actual elements" (List.init 8 (fun i -> 120 + i) |> List.fold_left ( + ) 0)
    r.Pool.actual_elements;
  check_int "padded elements" (8 * 128) r.Pool.padded_elements;
  check_bool "padding waste in (0,1)" true
    (Pool.padding_waste r > 0.0 && Pool.padding_waste r < 1.0)

let test_pad_waste_cap_forces_exact () =
  (* a 0% padding budget forces exact-shape dispatch *)
  let cfg =
    { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_pad_waste = 0.0 }
  in
  let pool = Pool.create cfg dien in
  let reqs = List.init 8 (fun i -> req (float_of_int i) (120 + i)) in
  let r = Pool.run pool reqs in
  check_int "no padded batches" 0 r.Pool.padded_batches;
  check_bool "exact batches" true (r.Pool.exact_batches >= 1);
  (* exact dispatch still pads to the intra-batch max, never below actual *)
  check_bool "padded >= actual" true (r.Pool.padded_elements >= r.Pool.actual_elements)

let test_distinct_buckets_do_not_mix () =
  let cfg = { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_batch = 16 } in
  let pool = Pool.create cfg dien in
  (* hist 5 -> bucket 8; hist 50 -> bucket 64: two buckets, two batches *)
  let reqs = List.init 8 (fun i -> req (float_of_int i) (if i mod 2 = 0 then 5 else 50)) in
  let r = Pool.run pool reqs in
  check_bool "at least two batches" true (r.Pool.batches >= 2);
  check_int "all served" 8 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost

(* --- pool: shed and expiry -------------------------------------------------- *)

let test_shed_and_expiry () =
  let slo =
    [ (Slo.Standard, { Slo.deadline_us = 1.0; priority = 1; queue_bound = 2 }) ]
  in
  let cfg =
    { (base_config ~devices:[ Device.a10 ] ()) with Pool.slo; Pool.max_batch = 1 }
  in
  let pool = Pool.create cfg dien in
  (* ten simultaneous arrivals, bound 2: eight shed at admission; the
     single replica serves one, the other queued request outlives its
     1 us deadline while the first is in flight *)
  let reqs = List.init 10 (fun _ -> req 0.0 20) in
  let r = Pool.run pool reqs in
  check_int "shed at admission" 8 r.Pool.shed;
  check_int "expired at dispatch" 1 r.Pool.expired;
  check_int "one completed" 1 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  let std =
    List.find (fun c -> c.Pool.cr_class = Slo.Standard) r.Pool.classes
  in
  check_int "class report: arrivals" 10 std.Pool.cr_arrivals;
  check_int "class report: shed" 8 std.Pool.cr_shed;
  check_int "class report: expired" 1 std.Pool.cr_expired

let test_malformed_requests_rejected () =
  let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
  let reqs =
    [
      { Pool.arrival_us = 0.0; dims = [ ("bogus", 4) ]; cls = Slo.Standard };
      { Pool.arrival_us = 1.0; dims = [ ("hist", 0) ]; cls = Slo.Standard };
      req 2.0 20;
    ]
  in
  let r = Pool.run pool reqs in
  check_int "two rejected" 2 r.Pool.rejected;
  check_int "good one completed" 1 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost

let test_class_mix_is_deterministic () =
  let arrivals =
    Workloads.Queueing.generate_arrivals ~seed:7 ~qps:100.0 ~n:60
      ~dims:[ ("hist", Workloads.Trace.Uniform (5, 50)) ]
  in
  let mix = [ (Slo.Interactive, 0.3); (Slo.Standard, 0.5); (Slo.Best_effort, 0.2) ] in
  let a = Pool.with_class_mix ~seed:3 mix (Pool.of_arrivals arrivals) in
  let b = Pool.with_class_mix ~seed:3 mix (Pool.of_arrivals arrivals) in
  check_bool "same seed, same tags" true
    (List.for_all2 (fun (x : Pool.request) y -> x.Pool.cls = y.Pool.cls) a b);
  let has c = List.exists (fun (r : Pool.request) -> r.Pool.cls = c) a in
  check_bool "all classes present" true
    (has Slo.Interactive && has Slo.Standard && has Slo.Best_effort)

(* --- pool: warmth-aware routing beats round-robin --------------------------- *)

let warm_trace () =
  (* three repeating shape signatures, arrivals spaced so batches stay
     singleton and replicas are idle at dispatch: routing alone decides
     who pays the per-replica signature warmup *)
  List.init 30 (fun i ->
      req (float_of_int i *. 20_000.0) (List.nth [ 5; 20; 50 ] (i mod 3)))

let run_with_router policy =
  let cfg = { (base_config ()) with Pool.router = policy } in
  let pool = Pool.create cfg dien in
  Pool.run pool (warm_trace ())

let test_warmth_beats_round_robin () =
  let rr = run_with_router Router.Round_robin in
  let warm = run_with_router Router.Warmth_aware in
  check_int "rr: all completed" 30 (rr.Pool.served + rr.Pool.fell_back);
  check_int "warm: all completed" 30 (warm.Pool.served + warm.Pool.fell_back);
  check_bool "warmth-aware pays fewer signature warmups" true
    (warm.Pool.cold_dispatches < rr.Pool.cold_dispatches);
  let mean r =
    let l = Pool.completed_latencies r in
    Array.fold_left ( +. ) 0.0 l /. float_of_int (Array.length l)
  in
  check_bool "warmth-aware mean latency lower" true (mean warm < mean rr);
  check_bool "warmth-aware p99 no worse" true
    (Pool.percentile (Pool.completed_latencies warm) 0.99
    <= Pool.percentile (Pool.completed_latencies rr) 0.99)

(* --- pool: replica failure and draining ------------------------------------- *)

let test_replica_failure_drains_cleanly () =
  let pool = Pool.create (base_config ()) dien in
  let reqs = List.init 40 (fun i -> req (float_of_int i *. 5_000.0) 20) in
  let r = Pool.run ~failures:[ (90_000.0, 0) ] pool reqs in
  check_int "no losses across the failure" 0 r.Pool.lost;
  check_int "every request completed" 40 (r.Pool.served + r.Pool.fell_back);
  let rep id = List.find (fun x -> x.Pool.rr_id = id) r.Pool.replicas in
  check_string "failed replica is dead" "dead" (rep 0).Pool.rr_health;
  check_string "survivor stays healthy" "healthy" (rep 1).Pool.rr_health;
  check_bool "failed replica had served first" true ((rep 0).Pool.rr_batches > 0);
  check_bool "traffic re-routed to the survivor" true ((rep 1).Pool.rr_batches > 0)

let test_whole_pool_death_fails_remainder () =
  let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
  let reqs = List.init 10 (fun i -> req (float_of_int i *. 5_000.0) 20) in
  let r = Pool.run ~failures:[ (12_000.0, 0) ] pool reqs in
  check_int "no losses even when the pool dies" 0 r.Pool.lost;
  check_bool "some requests completed before the failure" true
    (r.Pool.served + r.Pool.fell_back >= 1);
  check_bool "the rest failed rather than vanished" true (r.Pool.failed >= 1);
  check_int "accounted exactly once" 10
    (r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired
   + r.Pool.rejected + r.Pool.failed)

(* --- pool: heterogeneous devices and report text ----------------------------- *)

let test_heterogeneous_pool_runs () =
  let cfg = base_config ~devices:[ Device.a10; Device.t4 ] () in
  let pool = Pool.create cfg dien in
  let reqs = List.init 20 (fun i -> req (float_of_int i *. 3_000.0) 20) in
  let r = Pool.run pool reqs in
  check_int "all completed" 20 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  let devices = List.map (fun x -> x.Pool.rr_device) r.Pool.replicas in
  check_bool "report names both devices" true
    (List.mem Device.a10.Device.name devices && List.mem Device.t4.Device.name devices);
  let s = Pool.report_to_string r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "summary mentions served" true (contains s "served=20")

let () =
  Alcotest.run "serving"
    [
      ( "bucket",
        [
          Alcotest.test_case "round_up" `Quick test_round_up;
          Alcotest.test_case "keys" `Quick test_bucket_keys;
          Alcotest.test_case "batch envs" `Quick test_batch_envs;
          Alcotest.test_case "waste" `Quick test_waste;
        ] );
      ( "slo",
        [ Alcotest.test_case "admission" `Quick test_slo_admission ] );
      ( "router",
        [
          Alcotest.test_case "warmth score" `Quick test_warmth_score_orders_replicas;
          Alcotest.test_case "round robin" `Quick test_round_robin_rotates;
          Alcotest.test_case "policy names" `Quick test_policy_of_string;
        ] );
      ( "pool",
        [
          Alcotest.test_case "shares cache" `Quick test_pool_shares_cache;
          Alcotest.test_case "create validation" `Quick test_pool_create_validation;
          Alcotest.test_case "bucketed batching" `Quick test_bucketed_batching_and_padding;
          Alcotest.test_case "pad waste cap" `Quick test_pad_waste_cap_forces_exact;
          Alcotest.test_case "distinct buckets" `Quick test_distinct_buckets_do_not_mix;
          Alcotest.test_case "shed and expiry" `Quick test_shed_and_expiry;
          Alcotest.test_case "rejects malformed" `Quick test_malformed_requests_rejected;
          Alcotest.test_case "class mix" `Quick test_class_mix_is_deterministic;
          Alcotest.test_case "warmth beats rr" `Quick test_warmth_beats_round_robin;
          Alcotest.test_case "failure drains" `Quick test_replica_failure_drains_cleanly;
          Alcotest.test_case "pool death" `Quick test_whole_pool_death_fails_remainder;
          Alcotest.test_case "heterogeneous" `Quick test_heterogeneous_pool_runs;
        ] );
    ]
