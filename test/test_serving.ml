(* Tests for the multi-replica serving subsystem. *)

module Bucket = Serving.Bucket
module Slo = Serving.Slo
module Replica = Serving.Replica
module Router = Serving.Router
module Pool = Serving.Pool
module Stats = Serving.Shape_stats
module Scaler = Serving.Autoscaler
module Suite = Models.Suite
module Device = Gpusim.Device

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let dien () = (Suite.find "dien").Suite.build ()

let pow2_hist = [ ("hist", Bucket.Pow2) ]

let base_config ?(devices = [ Device.a10; Device.a10 ]) () =
  Pool.default_config ~devices ~batch_dim:"batch" ~bucket:pow2_hist

let req ?(cls = Slo.Standard) arrival_us hist =
  { Pool.arrival_us; Pool.dims = [ ("hist", hist) ]; Pool.cls }

(* --- buckets -------------------------------------------------------------- *)

let test_round_up () =
  check_int "pow2 5" 8 (Bucket.round_up Bucket.Pow2 5);
  check_int "pow2 exact power" 64 (Bucket.round_up Bucket.Pow2 64);
  check_int "pow2 1" 1 (Bucket.round_up Bucket.Pow2 1);
  check_int "linear 33/32" 64 (Bucket.round_up (Bucket.Linear 32) 33);
  check_int "linear 32/32" 32 (Bucket.round_up (Bucket.Linear 32) 32);
  check_int "exact" 17 (Bucket.round_up Bucket.Exact 17);
  check_bool "nonpositive rejected" true
    (try
       ignore (Bucket.round_up Bucket.Pow2 0);
       false
     with Invalid_argument _ -> true)

let test_bucket_keys () =
  let spec = [ ("seq", Bucket.Pow2); ("hist", Bucket.Linear 16) ] in
  check_string "rounded, name-sorted" "hist=32,seq=128"
    (Bucket.key_of spec [ ("seq", 100); ("hist", 20) ]);
  check_string "unlisted dims exact" "other=7"
    (Bucket.key_of spec [ ("other", 7) ]);
  check_string "env key is canonical" "a=1,b=2"
    (Bucket.env_key [ ("b", 2); ("a", 1) ]);
  (* same bucket <-> same key *)
  check_string "nearby shapes share a bucket"
    (Bucket.key_of spec [ ("seq", 65) ])
    (Bucket.key_of spec [ ("seq", 128) ])

let test_batch_envs () =
  let members = [ [ ("seq", 5) ]; [ ("seq", 9) ]; [ ("seq", 7); ("extra", 3) ] ] in
  let exact = Bucket.exact_env ~batch_dim:"batch" members in
  check_int "batch dim = member count" 3 (List.assoc "batch" exact);
  check_int "other dims = intra-batch max" 9 (List.assoc "seq" exact);
  check_int "missing dims contribute their max" 3 (List.assoc "extra" exact);
  let padded = Bucket.padded_env [ ("seq", Bucket.Pow2) ] ~batch_dim:"batch" members in
  check_int "padded dim at bucket ceiling" 16 (List.assoc "seq" padded);
  check_int "unlisted batch dim stays exact" 3 (List.assoc "batch" padded);
  let padded_b =
    Bucket.padded_env
      [ ("seq", Bucket.Pow2); ("batch", Bucket.Pow2) ]
      ~batch_dim:"batch" members
  in
  check_int "listed batch dim rounds too" 4 (List.assoc "batch" padded_b);
  check_bool "empty batch rejected" true
    (try
       ignore (Bucket.exact_env ~batch_dim:"batch" []);
       false
     with Invalid_argument _ -> true)

let test_waste () =
  Alcotest.(check (float 1e-9)) "waste fraction" 0.25 (Bucket.waste ~actual:96 ~padded:128);
  Alcotest.(check (float 1e-9)) "zero padded" 0.0 (Bucket.waste ~actual:0 ~padded:0)

let test_bucket_widen () =
  check_bool "exact widens to pow2" true (Bucket.widen_scheme Bucket.Exact = Bucket.Pow2);
  check_bool "pow2 is already widest" true (Bucket.widen_scheme Bucket.Pow2 = Bucket.Pow2);
  check_bool "linear doubles its step" true
    (Bucket.widen_scheme (Bucket.Linear 3) = Bucket.Linear 6);
  check_bool "edges drop every other boundary, keeping the last" true
    (Bucket.widen_scheme (Bucket.Edges [ 2; 4; 8 ]) = Bucket.Edges [ 2; 8 ]);
  check_bool "even-length edges keep the last" true
    (Bucket.widen_scheme (Bucket.Edges [ 2; 4; 8; 16 ]) = Bucket.Edges [ 4; 16 ]);
  check_bool "spec widens per dim" true
    (Bucket.widen [ ("a", Bucket.Exact); ("b", Bucket.Linear 4) ]
    = [ ("a", Bucket.Pow2); ("b", Bucket.Linear 8) ])

let test_edges_scheme () =
  let e = Bucket.Edges [ 20; 24; 40 ] in
  check_int "rounds up to the first covering edge" 20 (Bucket.round_up e 17);
  check_int "edge values are fixed points" 24 (Bucket.round_up e 24);
  check_int "past the last edge stays exact" 55 (Bucket.round_up e 55);
  check_string "scheme name carries the edges" "edges20-24-40" (Bucket.scheme_to_string e);
  check_string "spec string" "batch:pow2,hist:edges20-24-40"
    (Bucket.spec_to_string [ ("batch", Bucket.Pow2); ("hist", e) ]);
  check_bool "descending edges rejected" true
    (try
       ignore (Bucket.round_up (Bucket.Edges [ 8; 4 ]) 5);
       false
     with Invalid_argument _ -> true)

let test_validate_edges () =
  let rejects es =
    try
      Bucket.validate_edges es;
      false
    with Invalid_argument _ -> true
  in
  check_bool "ascending accepted" true
    (try
       Bucket.validate_edges [ 2; 4; 8 ];
       true
     with Invalid_argument _ -> false);
  check_bool "empty accepted" true
    (try
       Bucket.validate_edges [];
       true
     with Invalid_argument _ -> false);
  check_bool "descending rejected" true (rejects [ 8; 4 ]);
  check_bool "duplicate rejected" true (rejects [ 4; 4; 8 ]);
  check_bool "zero rejected" true (rejects [ 0; 4 ]);
  check_bool "negative rejected" true (rejects [ -3; 4 ])

let test_bucket_ladder () =
  check_bool "pow2 ladder on [1,64]" true
    (Bucket.ladder Bucket.Pow2 ~lb:1 ~ub:64 = [ 1; 2; 4; 8; 16; 32; 64 ]);
  check_bool "pow2 ladder from interior lb" true
    (Bucket.ladder Bucket.Pow2 ~lb:5 ~ub:20 = [ 8; 16; 32 ]);
  check_bool "linear ladder" true
    (Bucket.ladder (Bucket.Linear 16) ~lb:1 ~ub:48 = [ 16; 32; 48 ]);
  check_bool "edges ladder goes exact past the last boundary" true
    (Bucket.ladder (Bucket.Edges [ 4; 8 ]) ~lb:1 ~ub:10 = [ 4; 8; 9; 10 ]);
  check_bool "exact ladder is every value" true
    (Bucket.ladder Bucket.Exact ~lb:3 ~ub:6 = [ 3; 4; 5; 6 ]);
  (* the decode invariant: every round_up lands on a ladder rung *)
  let l = Bucket.ladder (Bucket.Linear 8) ~lb:1 ~ub:40 in
  check_bool "round_up closed over the ladder" true
    (List.for_all
       (fun v -> List.mem (Bucket.round_up (Bucket.Linear 8) v) l)
       (List.init 40 (fun i -> i + 1)));
  check_bool "bad range rejected" true
    (try
       ignore (Bucket.ladder Bucket.Pow2 ~lb:4 ~ub:2);
       false
     with Invalid_argument _ -> true)

(* --- widen_scheme properties (satellite: brownout ladder soundness) ------- *)

let scheme_arb =
  let open QCheck in
  let edges_gen =
    Gen.map
      (fun l ->
        match List.sort_uniq compare (List.map (fun x -> 1 + (abs x mod 500)) l) with
        | [] -> [ 1 ]
        | es -> es)
      Gen.(list_size (int_range 1 8) int)
  in
  make
    ~print:Bucket.scheme_to_string
    Gen.(
      oneof
        [
          return Bucket.Exact;
          return Bucket.Pow2;
          map (fun s -> Bucket.Linear (1 + (s mod 64))) (int_range 0 1000);
          map (fun es -> Bucket.Edges es) edges_gen;
        ])

let prop_widen_monotone =
  QCheck.Test.make ~name:"bucket: widening never shrinks any bucket ceiling"
    ~count:500
    QCheck.(pair scheme_arb (int_range 1 2000))
    (fun (s, v) -> Bucket.round_up (Bucket.widen_scheme s) v >= Bucket.round_up s v)

let prop_widen_fixpoint =
  (* Linear doubles its step forever by design; the other schemes must
     reach a widest form that widening then leaves alone. *)
  QCheck.Test.make ~name:"bucket: widening reaches an idempotent widest scheme"
    ~count:500 scheme_arb (fun s ->
      match s with
      | Bucket.Linear _ -> QCheck.assume_fail ()
      | _ ->
          let rec fix s k =
            if k = 0 then None
            else
              let w = Bucket.widen_scheme s in
              if w = s then Some s else fix w (k - 1)
          in
          (match fix s 12 with
          | None -> false
          | Some fp -> Bucket.widen_scheme fp = fp))

(* --- shape-distribution statistics ---------------------------------------- *)

let observe_all st vs = List.iter (fun v -> Stats.observe st [ ("hist", v) ]) vs

let test_stats_quantile_bound () =
  let st = Stats.create () in
  observe_all st (List.init 100 (fun i -> i + 1));
  (* log-linear buckets: <= 1/16 relative error, so the estimated median
     of uniform 1..100 must land within one bucket (~4) of 50 *)
  check_bool "p50 within a bucket of the true median" true
    (abs (Stats.quantile st "hist" 0.5 - 50) <= 4);
  check_int "p100 is the observed max" 100 (Stats.quantile st "hist" 1.0);
  check_bool "p0 clamps to the observed min" true (Stats.quantile st "hist" 0.0 >= 1);
  check_int "requests counted" 100 (Stats.observations st);
  let c = Stats.create () in
  observe_all c [ 50; 50; 50 ];
  check_int "constant traffic: every quantile exact" 50 (Stats.quantile c "hist" 0.5);
  check_int "unseen dim quantile is 0" 0 (Stats.quantile st "bogus" 0.5)

let test_stats_decay_invariance () =
  let st = Stats.create () in
  observe_all st [ 33; 35; 35; 38; 40; 40; 40; 17; 20; 24 ];
  let edges_before = Stats.edges st ~max_edges:4 "hist" in
  let p50_before = Stats.quantile st "hist" 0.5 in
  Stats.decay st ~factor:0.7;
  Alcotest.(check (list int)) "edges invariant under decay" edges_before
    (Stats.edges st ~max_edges:4 "hist");
  check_int "quantiles invariant under decay" p50_before (Stats.quantile st "hist" 0.5);
  Stats.decay st ~factor:0.0;
  Alcotest.(check (list int)) "fully decayed mass: no edges" []
    (Stats.edges st ~max_edges:4 "hist");
  check_int "fully decayed mass: quantile 0" 0 (Stats.quantile st "hist" 0.5)

let test_stats_likely_topk () =
  let st = Stats.create () in
  observe_all st (List.init 20 (fun _ -> 8) @ List.init 10 (fun _ -> 16) @ [ 3 ]);
  Alcotest.(check (list int)) "top-2 heaviest values, ascending" [ 8; 16 ]
    (Stats.likely ~k:2 st "hist");
  Alcotest.(check (list int)) "unseen dim: no likely values" [] (Stats.likely st "bogus");
  check_bool "hints carry the dim name" true (Stats.hints ~k:2 st = [ ("hist", [ 8; 16 ]) ])

let test_stats_edges_quantum () =
  let st = Stats.create () in
  observe_all st (List.init 7 (fun i -> 33 + i));
  (* vmax = 39: quantized edges snap up to multiples of 4 but never past
     the observed max, so padding stays within shapes traffic has bound *)
  let es = Stats.edges ~quantum:4 st ~max_edges:4 "hist" in
  check_bool "nonempty" true (es <> []);
  List.iter
    (fun e ->
      check_bool "edge is a multiple of the quantum or the observed max" true
        (e mod 4 = 0 || e = 39))
    es;
  check_int "last edge covers the observed max" 39 (List.nth es (List.length es - 1));
  check_bool "ascending" true (List.sort compare es = es)

let test_stats_spec_keeps_unseen () =
  let st = Stats.create () in
  observe_all st [ 10; 20 ];
  let spec =
    Stats.spec st ~max_edges:2 ~dims:[ ("hist", Bucket.Pow2); ("other", Bucket.Exact) ]
  in
  check_bool "observed dim re-derived as edges" true
    (match List.assoc "hist" spec with Bucket.Edges _ -> true | _ -> false);
  check_bool "unseen dim keeps its static scheme" true
    (List.assoc "other" spec = Bucket.Exact)

let test_stats_rebucket_key_stability () =
  (* unchanged traffic must re-derive the identical policy: decay is a
     uniform rescale and repeating the same empirical distribution keeps
     every quantile, so canonical bucket keys are stable *)
  let trace = [ 33; 34; 35; 36; 37; 38; 39; 40; 35; 36 ] in
  let dims = [ ("hist", Bucket.Pow2) ] in
  let st = Stats.create () in
  observe_all st trace;
  let s1 = Bucket.spec_to_string (Stats.spec ~quantum:4 st ~max_edges:4 ~dims) in
  Stats.decay st ~factor:0.9;
  observe_all st trace;
  let s2 = Bucket.spec_to_string (Stats.spec ~quantum:4 st ~max_edges:4 ~dims) in
  check_string "canonical keys stable on unchanged traffic" s1 s2

(* --- autoscaler ------------------------------------------------------------ *)

let test_autoscaler_state_machine () =
  let cfg =
    { Scaler.default_config with
      Scaler.min_replicas = 2; max_replicas = 4; scale_up_queue = 2;
      scale_down_queue = 0; cooldown_us = 1_000.0 }
  in
  let t = Scaler.create cfg in
  check_bool "below the floor: repair ignores cooldown" true
    (Scaler.decide t ~now:0.0 ~alive:1 ~queue_depth:0 ~attainment:1.0 = Scaler.Scale_up);
  check_bool "inside cooldown: hold even under pressure" true
    (Scaler.decide t ~now:500.0 ~alive:2 ~queue_depth:100 ~attainment:0.0 = Scaler.Hold);
  check_bool "backlog past the per-replica bound scales up" true
    (Scaler.decide t ~now:2_000.0 ~alive:2 ~queue_depth:5 ~attainment:1.0 = Scaler.Scale_up);
  check_bool "missed attainment scales up" true
    (Scaler.decide t ~now:4_000.0 ~alive:2 ~queue_depth:0 ~attainment:0.5 = Scaler.Scale_up);
  check_bool "at the ceiling: hold" true
    (Scaler.decide t ~now:6_000.0 ~alive:4 ~queue_depth:100 ~attainment:0.0 = Scaler.Hold);
  check_bool "comfortable and drained: scale down" true
    (Scaler.decide t ~now:8_000.0 ~alive:3 ~queue_depth:0 ~attainment:1.0 = Scaler.Scale_down);
  check_bool "at the floor: hold" true
    (Scaler.decide t ~now:10_000.0 ~alive:2 ~queue_depth:0 ~attainment:1.0 = Scaler.Hold);
  check_int "ups counted" 3 (Scaler.ups t);
  check_int "downs counted" 1 (Scaler.downs t)

let test_autoscaler_validation () =
  check_bool "min_replicas 0 rejected" true
    (try
       ignore (Scaler.create { Scaler.default_config with Scaler.min_replicas = 0 });
       false
     with Invalid_argument _ -> true);
  check_bool "max below min rejected" true
    (try
       ignore
         (Scaler.create
            { Scaler.default_config with Scaler.min_replicas = 3; max_replicas = 2 });
       false
     with Invalid_argument _ -> true)

(* --- SLO admission -------------------------------------------------------- *)

let test_slo_admission () =
  let policy =
    [ (Slo.Standard, { Slo.deadline_us = 100.0; priority = 1; queue_bound = 2 }) ]
  in
  let c = Slo.create policy in
  check_bool "first admitted" true (Slo.admit c Slo.Standard);
  check_bool "second admitted" true (Slo.admit c Slo.Standard);
  check_bool "at bound: shed" false (Slo.admit c Slo.Standard);
  check_int "shed counted" 1 (Slo.shed c Slo.Standard);
  check_int "queued" 2 (Slo.queued c Slo.Standard);
  Slo.dequeue c Slo.Standard;
  check_bool "slot freed" true (Slo.admit c Slo.Standard);
  (* classes missing from the policy fall back to the defaults *)
  check_bool "unlisted class admitted" true (Slo.admit c Slo.Interactive);
  check_bool "best-effort has no deadline" true
    (Slo.deadline_of policy Slo.Best_effort ~arrival_us:5.0 = Float.infinity);
  Alcotest.(check (float 1e-9)) "deadline is absolute" 105.0
    (Slo.deadline_of policy Slo.Standard ~arrival_us:5.0)

(* --- routing -------------------------------------------------------------- *)

let with_pool ?(cfg = base_config ()) f =
  let pool = Pool.create cfg dien in
  f pool

let test_warmth_score_orders_replicas () =
  with_pool (fun pool ->
      let reps = Pool.replicas pool in
      let key = "batch=1,hist=8" in
      Replica.note_batch reps.(0) ~key ~elements:8 ~service_us:100.0 ~requests:1 ()
        ~cold:true;
      check_bool "warm replica outscores cold" true
        (Router.score ~now:0.0 ~key reps.(0) > Router.score ~now:0.0 ~key reps.(1));
      check_bool "warmth is per signature" true
        (Router.score ~now:0.0 ~key:"batch=1,hist=64" reps.(0)
        <= Router.score ~now:0.0 ~key:"batch=1,hist=64" reps.(1)))

let test_round_robin_rotates () =
  with_pool (fun pool ->
      let reps = Pool.replicas pool in
      let r = Router.create Router.Round_robin in
      let pick () =
        match Router.pick r ~now:0.0 ~key:"k" reps with
        | Some x -> x.Replica.id
        | None -> -1
      in
      check_int "first" 0 (pick ());
      check_int "second" 1 (pick ());
      check_int "wraps" 0 (pick ()))

let test_policy_of_string () =
  check_bool "rr alias" true (Router.policy_of_string "rr" = Some Router.Round_robin);
  check_bool "warmth alias" true
    (Router.policy_of_string "warmth-aware" = Some Router.Warmth_aware);
  check_bool "unknown" true (Router.policy_of_string "bogus" = None)

(* --- replica health lifecycle (chaos-facing state machine) ------------------ *)

let test_replica_health_lifecycle () =
  with_pool (fun pool ->
      let r = (Pool.replicas pool).(0) in
      check_bool "starts healthy and free" true (Replica.is_free r ~now:0.0);
      Replica.degrade r;
      check_string "watchdog verdict" "degraded" (Replica.health_to_string r.Replica.health);
      check_bool "degraded still dispatchable" true (Replica.dispatchable r);
      check_bool "degraded counts as capacity" true (Replica.counts_capacity r);
      Replica.restore r;
      check_string "all-clear restores" "healthy" (Replica.health_to_string r.Replica.health);
      Replica.note_batch r ~key:"k" ~elements:4 ~service_us:100.0 ~requests:1 ~cold:true ();
      check_bool "rate measured" true (r.Replica.us_per_element > 0.0);
      r.Replica.free_at <- 500.0;
      Replica.crash r ~now:100.0;
      check_string "crash is immediate death" "dead" (Replica.health_to_string r.Replica.health);
      check_bool "nothing waits on a crashed replica" true (r.Replica.free_at <= 100.0);
      check_int "crash counted" 1 r.Replica.crashes;
      check_bool "dead is not capacity" false (Replica.counts_capacity r);
      Replica.degrade r;
      check_string "no degrading the dead" "dead" (Replica.health_to_string r.Replica.health);
      Replica.begin_recover r ~now:200.0 ~spinup_us:1_000.0;
      check_string "restart spins up" "recovering" (Replica.health_to_string r.Replica.health);
      check_bool "recovering counts as capacity" true (Replica.counts_capacity r);
      check_bool "but takes no traffic yet" false (Replica.dispatchable r);
      check_int "warmth wiped by the restart" 0 (Hashtbl.length r.Replica.warmth);
      check_bool "rate forgotten too" true (r.Replica.us_per_element = 0.0);
      Replica.finish_recover_if_due r ~now:600.0;
      check_string "not up before the spinup elapses" "recovering"
        (Replica.health_to_string r.Replica.health);
      Replica.finish_recover_if_due r ~now:1_200.0;
      check_string "healthy after spin-up" "healthy" (Replica.health_to_string r.Replica.health);
      check_int "recovery counted" 1 r.Replica.recoveries;
      check_bool "negative spinup rejected" true
        (Replica.crash r ~now:2_000.0;
         try
           Replica.begin_recover r ~now:2_000.0 ~spinup_us:(-1.0);
           false
         with Invalid_argument _ -> true))

let test_router_prefers_healthy_over_degraded () =
  with_pool (fun pool ->
      let reps = Pool.replicas pool in
      let key = "batch=1,hist=8" in
      Array.iter
        (fun (r : Replica.t) ->
          r.Replica.free_at <- 0.0;
          r.Replica.health <- Replica.Healthy)
        reps;
      (* make the straggler the warm one: health must still win *)
      Hashtbl.replace reps.(0).Replica.warmth key 5;
      reps.(0).Replica.health <- Replica.Degraded;
      (match Router.pick (Router.create Router.Warmth_aware) ~now:0.0 ~key reps with
      | Some r -> check_int "cold healthy beats warm straggler" 1 r.Replica.id
      | None -> Alcotest.fail "expected a pick");
      (* when no healthy replica is free, the straggler still serves *)
      reps.(1).Replica.free_at <- 1_000.0;
      match Router.pick (Router.create Router.Warmth_aware) ~now:0.0 ~key reps with
      | Some r -> check_int "degraded is the last resort" 0 r.Replica.id
      | None -> Alcotest.fail "expected the degraded replica")

let test_slo_shed_requeue_counters () =
  let s = Slo.create Slo.default_policy in
  check_bool "admit queues" true (Slo.admit s Slo.Standard);
  check_int "queued" 1 (Slo.queued s Slo.Standard);
  Slo.note_shed s Slo.Best_effort;
  check_int "shed counted without backlog" 1 (Slo.shed s Slo.Best_effort);
  check_int "backlog untouched by note_shed" 0 (Slo.queued s Slo.Best_effort);
  Slo.dequeue s Slo.Standard;
  check_int "dequeue drains" 0 (Slo.queued s Slo.Standard);
  Slo.requeue s Slo.Standard;
  check_int "requeue restores the backlog" 1 (Slo.queued s Slo.Standard)

(* --- pool: cache sharing and validation ----------------------------------- *)

let test_pool_shares_cache () =
  let cfg = base_config ~devices:[ Device.a10; Device.a10; Device.a10 ] () in
  let pool = Pool.create cfg dien in
  let s = Disc.Compile_cache.stats (Pool.cache pool) in
  check_int "one compile for the pool" 1 s.Disc.Compile_cache.misses;
  check_int "remaining replicas hit" 2 s.Disc.Compile_cache.hits

let test_pool_create_validation () =
  check_bool "empty devices rejected" true
    (try
       ignore (Pool.create (base_config ~devices:[] ()) dien);
       false
     with Invalid_argument _ -> true);
  let cfg = { (base_config ()) with Pool.batch_dim = "bogus" } in
  check_bool "unknown batch dim rejected" true
    (try
       ignore (Pool.create cfg dien);
       false
     with Invalid_argument _ -> true)

(* --- pool: bucket formation and padding accounting ------------------------- *)

let test_bucketed_batching_and_padding () =
  (* eight near-identical shapes arriving together: one padded batch *)
  let cfg = { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_batch = 8 } in
  let pool = Pool.create cfg dien in
  let reqs = List.init 8 (fun i -> req (float_of_int i) (120 + i)) in
  let r = Pool.run pool reqs in
  check_int "one batch" 1 r.Pool.batches;
  check_int "padded dispatch" 1 r.Pool.padded_batches;
  check_int "all served" 8 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  (* members pad to hist=128: executed elements exceed requested ones *)
  check_int "actual elements" (List.init 8 (fun i -> 120 + i) |> List.fold_left ( + ) 0)
    r.Pool.actual_elements;
  check_int "padded elements" (8 * 128) r.Pool.padded_elements;
  check_bool "padding waste in (0,1)" true
    (Pool.padding_waste r > 0.0 && Pool.padding_waste r < 1.0)

let test_pad_waste_cap_forces_exact () =
  (* a 0% padding budget forces exact-shape dispatch *)
  let cfg =
    { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_pad_waste = 0.0 }
  in
  let pool = Pool.create cfg dien in
  let reqs = List.init 8 (fun i -> req (float_of_int i) (120 + i)) in
  let r = Pool.run pool reqs in
  check_int "no padded batches" 0 r.Pool.padded_batches;
  check_bool "exact batches" true (r.Pool.exact_batches >= 1);
  (* exact dispatch still pads to the intra-batch max, never below actual *)
  check_bool "padded >= actual" true (r.Pool.padded_elements >= r.Pool.actual_elements)

let test_distinct_buckets_do_not_mix () =
  let cfg = { (base_config ~devices:[ Device.a10 ] ()) with Pool.max_batch = 16 } in
  let pool = Pool.create cfg dien in
  (* hist 5 -> bucket 8; hist 50 -> bucket 64: two buckets, two batches *)
  let reqs = List.init 8 (fun i -> req (float_of_int i) (if i mod 2 = 0 then 5 else 50)) in
  let r = Pool.run pool reqs in
  check_bool "at least two batches" true (r.Pool.batches >= 2);
  check_int "all served" 8 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost

(* --- pool: shed and expiry -------------------------------------------------- *)

let test_shed_and_expiry () =
  let slo =
    [ (Slo.Standard, { Slo.deadline_us = 1.0; priority = 1; queue_bound = 2 }) ]
  in
  let cfg =
    { (base_config ~devices:[ Device.a10 ] ()) with Pool.slo; Pool.max_batch = 1 }
  in
  let pool = Pool.create cfg dien in
  (* ten simultaneous arrivals, bound 2: eight shed at admission; the
     single replica serves one, the other queued request outlives its
     1 us deadline while the first is in flight *)
  let reqs = List.init 10 (fun _ -> req 0.0 20) in
  let r = Pool.run pool reqs in
  check_int "shed at admission" 8 r.Pool.shed;
  check_int "expired at dispatch" 1 r.Pool.expired;
  check_int "one completed" 1 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  let std =
    List.find (fun c -> c.Pool.cr_class = Slo.Standard) r.Pool.classes
  in
  check_int "class report: arrivals" 10 std.Pool.cr_arrivals;
  check_int "class report: shed" 8 std.Pool.cr_shed;
  check_int "class report: expired" 1 std.Pool.cr_expired

let test_malformed_requests_rejected () =
  let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
  let reqs =
    [
      { Pool.arrival_us = 0.0; dims = [ ("bogus", 4) ]; cls = Slo.Standard };
      { Pool.arrival_us = 1.0; dims = [ ("hist", 0) ]; cls = Slo.Standard };
      req 2.0 20;
    ]
  in
  let r = Pool.run pool reqs in
  check_int "two rejected" 2 r.Pool.rejected;
  check_int "good one completed" 1 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost

let test_class_mix_is_deterministic () =
  let arrivals =
    Workloads.Queueing.generate_arrivals ~seed:7 ~qps:100.0 ~n:60
      ~dims:[ ("hist", Workloads.Trace.Uniform (5, 50)) ]
  in
  let mix = [ (Slo.Interactive, 0.3); (Slo.Standard, 0.5); (Slo.Best_effort, 0.2) ] in
  let a = Pool.with_class_mix ~seed:3 mix (Pool.of_arrivals arrivals) in
  let b = Pool.with_class_mix ~seed:3 mix (Pool.of_arrivals arrivals) in
  check_bool "same seed, same tags" true
    (List.for_all2 (fun (x : Pool.request) y -> x.Pool.cls = y.Pool.cls) a b);
  let has c = List.exists (fun (r : Pool.request) -> r.Pool.cls = c) a in
  check_bool "all classes present" true
    (has Slo.Interactive && has Slo.Standard && has Slo.Best_effort)

(* --- pool: warmth-aware routing beats round-robin --------------------------- *)

let warm_trace () =
  (* three repeating shape signatures, arrivals spaced so batches stay
     singleton and replicas are idle at dispatch: routing alone decides
     who pays the per-replica signature warmup *)
  List.init 30 (fun i ->
      req (float_of_int i *. 20_000.0) (List.nth [ 5; 20; 50 ] (i mod 3)))

let run_with_router policy =
  let cfg = { (base_config ()) with Pool.router = policy } in
  let pool = Pool.create cfg dien in
  Pool.run pool (warm_trace ())

let test_warmth_beats_round_robin () =
  let rr = run_with_router Router.Round_robin in
  let warm = run_with_router Router.Warmth_aware in
  check_int "rr: all completed" 30 (rr.Pool.served + rr.Pool.fell_back);
  check_int "warm: all completed" 30 (warm.Pool.served + warm.Pool.fell_back);
  check_bool "warmth-aware pays fewer signature warmups" true
    (warm.Pool.cold_dispatches < rr.Pool.cold_dispatches);
  let mean r =
    let l = Pool.completed_latencies r in
    Array.fold_left ( +. ) 0.0 l /. float_of_int (Array.length l)
  in
  check_bool "warmth-aware mean latency lower" true (mean warm < mean rr);
  check_bool "warmth-aware p99 no worse" true
    (Pool.percentile (Pool.completed_latencies warm) 0.99
    <= Pool.percentile (Pool.completed_latencies rr) 0.99)

(* --- pool: replica failure and draining ------------------------------------- *)

let test_replica_failure_drains_cleanly () =
  let pool = Pool.create (base_config ()) dien in
  let reqs = List.init 40 (fun i -> req (float_of_int i *. 5_000.0) 20) in
  let r = Pool.run ~failures:[ (90_000.0, 0) ] pool reqs in
  check_int "no losses across the failure" 0 r.Pool.lost;
  check_int "every request completed" 40 (r.Pool.served + r.Pool.fell_back);
  let rep id = List.find (fun x -> x.Pool.rr_id = id) r.Pool.replicas in
  check_string "failed replica is dead" "dead" (rep 0).Pool.rr_health;
  check_string "survivor stays healthy" "healthy" (rep 1).Pool.rr_health;
  check_bool "failed replica had served first" true ((rep 0).Pool.rr_batches > 0);
  check_bool "traffic re-routed to the survivor" true ((rep 1).Pool.rr_batches > 0)

let test_whole_pool_death_fails_remainder () =
  let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
  let reqs = List.init 10 (fun i -> req (float_of_int i *. 5_000.0) 20) in
  let r = Pool.run ~failures:[ (12_000.0, 0) ] pool reqs in
  check_int "no losses even when the pool dies" 0 r.Pool.lost;
  check_bool "some requests completed before the failure" true
    (r.Pool.served + r.Pool.fell_back >= 1);
  check_bool "the rest failed rather than vanished" true (r.Pool.failed >= 1);
  check_int "accounted exactly once" 10
    (r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired
   + r.Pool.rejected + r.Pool.failed)

(* --- pool: heterogeneous devices and report text ----------------------------- *)

let test_heterogeneous_pool_runs () =
  let cfg = base_config ~devices:[ Device.a10; Device.t4 ] () in
  let pool = Pool.create cfg dien in
  let reqs = List.init 20 (fun i -> req (float_of_int i *. 3_000.0) 20) in
  let r = Pool.run pool reqs in
  check_int "all completed" 20 (r.Pool.served + r.Pool.fell_back);
  check_int "no losses" 0 r.Pool.lost;
  let devices = List.map (fun x -> x.Pool.rr_device) r.Pool.replicas in
  check_bool "report names both devices" true
    (List.mem Device.a10.Device.name devices && List.mem Device.t4.Device.name devices);
  let s = Pool.report_to_string r in
  check_bool "summary mentions served" true (contains s "served=20")

(* --- router invariants under random replica states --------------------------

   One pool is built once; each trial overwrites the replicas' mutable
   pool-visible state (health, busy-until, accumulated load, warmth)
   from the trial seed, so the properties range over arbitrary mixes of
   dead, draining, busy, warm and loaded replicas without recompiling. *)

let router_pool =
  lazy
    (Pool.create
       (base_config ~devices:[ Device.a10; Device.t4; Device.a10; Device.t4 ] ())
       dien)

let hot_key = "batch=1,hist=8"
let router_now = 50.0

let randomize_replicas st reps =
  Array.iter
    (fun (r : Replica.t) ->
      r.Replica.health <-
        (match Random.State.int st 7 with
        | 0 -> Replica.Draining
        | 1 -> Replica.Dead
        | 2 -> Replica.Degraded
        | 3 -> Replica.Recovering
        | _ -> Replica.Healthy);
      r.Replica.slow_factor <- (if Random.State.bool st then 1.0 else 8.0);
      r.Replica.free_at <-
        (if Random.State.bool st then 0.0
         else router_now +. 1.0 +. float_of_int (Random.State.int st 1_000));
      r.Replica.busy_us <- float_of_int (Random.State.int st 10_000);
      Hashtbl.reset r.Replica.warmth;
      if Random.State.bool st then Hashtbl.replace r.Replica.warmth hot_key 1)
    reps

let all_policies = [ Router.Round_robin; Router.Least_loaded; Router.Warmth_aware ]

let prop_router_never_picks_unavailable =
  QCheck.Test.make ~name:"router: never picks dead, draining or busy replicas"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let reps = Pool.replicas (Lazy.force router_pool) in
      randomize_replicas (Random.State.make [| seed |]) reps;
      List.for_all
        (fun p ->
          match Router.pick (Router.create p) ~now:router_now ~key:hot_key reps with
          | Some x -> Replica.is_free x ~now:router_now
          | None ->
              (* None exactly when nothing is dispatchable *)
              not (Array.exists (fun x -> Replica.is_free x ~now:router_now) reps))
        all_policies)

let prop_router_warmth_tiebreak_deterministic =
  QCheck.Test.make
    ~name:"router: warmth pick is the lowest-index score argmax, repeatably" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let reps = Pool.replicas (Lazy.force router_pool) in
      randomize_replicas (Random.State.make [| seed |]) reps;
      let pick () =
        Router.pick (Router.create Router.Warmth_aware) ~now:router_now ~key:hot_key reps
      in
      match (pick (), pick ()) with
      | None, None -> true
      | Some a, Some b ->
          a.Replica.id = b.Replica.id
          && Array.to_list reps
             |> List.filter (fun r -> Replica.is_free r ~now:router_now)
             |> List.for_all (fun r ->
                    let sa = Router.score ~now:router_now ~key:hot_key a
                    and sr = Router.score ~now:router_now ~key:hot_key r in
                    sa > sr || (sa = sr && a.Replica.id <= r.Replica.id))
      | _ -> false)

let prop_router_score_monotone_in_load =
  QCheck.Test.make ~name:"router: score strictly decreases with accumulated load"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5_000))
    (fun (seed, extra) ->
      let reps = Pool.replicas (Lazy.force router_pool) in
      let st = Random.State.make [| seed |] in
      randomize_replicas st reps;
      let r = reps.(Random.State.int st (Array.length reps)) in
      let before = Router.score ~now:router_now ~key:hot_key r in
      r.Replica.busy_us <- r.Replica.busy_us +. float_of_int extra;
      Router.score ~now:router_now ~key:hot_key r < before)

(* Degenerate histograms (satellite): a quantile estimator earns its
   keep on the boring inputs — one sample, a point mass, and a
   distribution decayed to nothing must all answer without NaN,
   division by zero, or an invented value. *)

let test_stats_single_sample () =
  let st = Stats.create () in
  Stats.observe st [ ("hist", 17) ];
  check_int "p01 is the sample" 17 (Stats.quantile st "hist" 0.01);
  check_int "p50 is the sample" 17 (Stats.quantile st "hist" 0.5);
  check_int "p999 is the sample" 17 (Stats.quantile st "hist" 0.999);
  (match Stats.likely st "hist" with
  | [ v ] -> check_bool "one likely value, covering the sample" true (v >= 17)
  | l -> Alcotest.failf "expected one likely value, got %d" (List.length l));
  let es = Stats.edges st ~max_edges:4 "hist" in
  check_bool "edges non-empty" true (es <> []);
  check_int "edges end at the observed max" 17 (List.nth es (List.length es - 1));
  Bucket.validate_edges es

let test_stats_all_equal () =
  let st = Stats.create () in
  observe_all st (List.init 50 (fun _ -> 64));
  check_int "every quantile is the point mass" 64 (Stats.quantile st "hist" 0.05);
  check_int "p99 too" 64 (Stats.quantile st "hist" 0.99);
  check_bool "edges collapse to the single value" true
    (Stats.edges st ~max_edges:8 "hist" = [ 64 ]);
  check_bool "likely is the single value's edge" true
    (match Stats.likely st "hist" with [ v ] -> v >= 64 | _ -> false)

let test_stats_decayed_to_zero () =
  let st = Stats.create () in
  observe_all st [ 8; 16; 32; 64 ];
  Stats.decay st ~factor:1e-6;
  Stats.decay st ~factor:1e-6;
  (* sub-1e-9 mass is dropped: the dim reads as unseen again *)
  check_int "quantile on zero mass is 0, not NaN" 0 (Stats.quantile st "hist" 0.5);
  check_bool "likely empties" true (Stats.likely st "hist" = []);
  check_bool "edges empty" true (Stats.edges st ~max_edges:4 "hist" = []);
  check_bool "spec keeps the static scheme" true
    (Stats.spec st ~max_edges:4 ~dims:[ ("hist", Bucket.Pow2) ]
    = [ ("hist", Bucket.Pow2) ]);
  (* factor 0 is legal and must not divide by zero *)
  let st2 = Stats.create () in
  observe_all st2 [ 5; 9 ];
  Stats.decay st2 ~factor:0.0;
  check_int "hard-zero decay" 0 (Stats.quantile st2 "hist" 0.9)

(* --- pool: adaptive control loop -------------------------------------------- *)

let drift_trace n =
  (* values just above a power of two: Pow2 pads them nearly 2x, edges
     derived from the observed mass do not *)
  List.init n (fun i -> req (float_of_int i *. 2_500.0) (33 + (i mod 8)))

let test_adaptive_rebucket_cuts_waste () =
  let run_with adaptive =
    let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
    Pool.run ?adaptive pool (drift_trace 40)
  in
  let stat = run_with None in
  let adap =
    run_with (Some { Pool.default_adaptive with Pool.control_interval_us = 5_000.0 })
  in
  check_int "static: all completed" 40 (stat.Pool.served + stat.Pool.fell_back);
  check_int "adaptive: all completed" 40 (adap.Pool.served + adap.Pool.fell_back);
  check_int "adaptive: no losses" 0 adap.Pool.lost;
  check_bool "static run has no adaptive report" true (stat.Pool.adaptive = None);
  let a =
    match adap.Pool.adaptive with
    | Some a -> a
    | None -> Alcotest.fail "missing adaptive report"
  in
  check_bool "control ticks fired" true (a.Pool.ar_ticks >= 1);
  check_bool "the bucket policy was re-derived" true (a.Pool.ar_rebuckets >= 1);
  check_bool "final policy is observed edges" true (contains a.Pool.ar_final_spec "edges");
  check_bool "likely-value hints were ingested" true (a.Pool.ar_hints > 0);
  check_bool "last hint set reported" true (a.Pool.ar_likely <> []);
  check_bool "padding waste strictly reduced" true
    (Pool.padding_waste adap < Pool.padding_waste stat)

let test_adaptive_scaling_no_loss () =
  let pool = Pool.create (base_config ~devices:[ Device.a10 ] ()) dien in
  (* a burst deep enough to outlast the first control ticks, then a
     sparse tail that keeps ticks firing while the backlog is empty *)
  let burst = List.init 24 (fun _ -> req 0.0 20) in
  let tail = List.init 12 (fun i -> req (60_000.0 +. (float_of_int i *. 15_000.0)) 20) in
  let autoscale =
    { Scaler.default_config with
      Scaler.min_replicas = 1; max_replicas = 3; scale_up_queue = 2;
      cooldown_us = 2_000.0 }
  in
  let adaptive =
    { Pool.default_adaptive with
      Pool.control_interval_us = 1_000.0; Pool.autoscale = Some autoscale }
  in
  let r = Pool.run ~adaptive pool (burst @ tail) in
  check_int "no losses across scale events" 0 r.Pool.lost;
  check_int "every request accounted exactly once" 36
    (r.Pool.served + r.Pool.fell_back + r.Pool.shed + r.Pool.expired + r.Pool.rejected
   + r.Pool.failed);
  let a = Option.get r.Pool.adaptive in
  check_bool "the burst scaled the pool up" true (a.Pool.ar_scale_ups >= 1);
  check_bool "the quiet tail drained a replica" true (a.Pool.ar_scale_downs >= 1);
  check_bool "replicas were minted beyond the configured devices" true
    (Array.length (Pool.replicas pool) > 1);
  check_bool "the pool ends at or above the floor" true (a.Pool.ar_final_replicas >= 1)

let test_adaptive_prewarm_spreads_warmth () =
  let pool = Pool.create (base_config ()) dien in
  (* one hot signature, arrivals spaced so the warmth-aware router keeps
     replica 0 serving: replica 1 can only get warm through pre-warming *)
  let reqs = List.init 20 (fun i -> req (float_of_int i *. 4_000.0) 20) in
  let adaptive = { Pool.default_adaptive with Pool.control_interval_us = 6_000.0 } in
  let r = Pool.run ~adaptive pool reqs in
  check_int "all completed" 20 (r.Pool.served + r.Pool.fell_back);
  let a = Option.get r.Pool.adaptive in
  check_bool "hot signatures pre-warmed across replicas" true (a.Pool.ar_minted >= 1);
  let reps = Pool.replicas pool in
  check_bool "the idle replica is warm without having served" true
    (Hashtbl.length reps.(1).Replica.warmth >= 1);
  check_bool "hints reached the replica sessions" true
    (Disc.Session.shape_hints reps.(0).Replica.session >= 1)

let () =
  Alcotest.run "serving"
    [
      ( "bucket",
        [
          Alcotest.test_case "round_up" `Quick test_round_up;
          Alcotest.test_case "keys" `Quick test_bucket_keys;
          Alcotest.test_case "batch envs" `Quick test_batch_envs;
          Alcotest.test_case "waste" `Quick test_waste;
          Alcotest.test_case "edges scheme" `Quick test_edges_scheme;
          Alcotest.test_case "widen (brownout L4)" `Quick test_bucket_widen;
          Alcotest.test_case "validate_edges rejections" `Quick test_validate_edges;
          Alcotest.test_case "ladder (decode signature alphabet)" `Quick
            test_bucket_ladder;
        ] );
      ( "bucket properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_widen_monotone; prop_widen_fixpoint ] );
      ( "shape stats",
        [
          Alcotest.test_case "quantile error bound" `Quick test_stats_quantile_bound;
          Alcotest.test_case "decay invariance" `Quick test_stats_decay_invariance;
          Alcotest.test_case "likely top-k" `Quick test_stats_likely_topk;
          Alcotest.test_case "edge quantization" `Quick test_stats_edges_quantum;
          Alcotest.test_case "unseen dims keep scheme" `Quick test_stats_spec_keeps_unseen;
          Alcotest.test_case "rebucket key stability" `Quick
            test_stats_rebucket_key_stability;
          Alcotest.test_case "degenerate: single sample" `Quick test_stats_single_sample;
          Alcotest.test_case "degenerate: point mass" `Quick test_stats_all_equal;
          Alcotest.test_case "degenerate: decayed to zero" `Quick
            test_stats_decayed_to_zero;
        ] );
      ( "autoscaler",
        [
          Alcotest.test_case "state machine" `Quick test_autoscaler_state_machine;
          Alcotest.test_case "validation" `Quick test_autoscaler_validation;
        ] );
      ( "slo",
        [
          Alcotest.test_case "admission" `Quick test_slo_admission;
          Alcotest.test_case "shed/requeue counters" `Quick test_slo_shed_requeue_counters;
        ] );
      ( "replica",
        [
          Alcotest.test_case "health lifecycle" `Quick test_replica_health_lifecycle;
        ] );
      ( "router",
        [
          Alcotest.test_case "warmth score" `Quick test_warmth_score_orders_replicas;
          Alcotest.test_case "round robin" `Quick test_round_robin_rotates;
          Alcotest.test_case "policy names" `Quick test_policy_of_string;
          Alcotest.test_case "healthy beats degraded" `Quick
            test_router_prefers_healthy_over_degraded;
        ] );
      ( "router properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_router_never_picks_unavailable;
            prop_router_warmth_tiebreak_deterministic;
            prop_router_score_monotone_in_load;
          ] );
      ( "pool",
        [
          Alcotest.test_case "shares cache" `Quick test_pool_shares_cache;
          Alcotest.test_case "create validation" `Quick test_pool_create_validation;
          Alcotest.test_case "bucketed batching" `Quick test_bucketed_batching_and_padding;
          Alcotest.test_case "pad waste cap" `Quick test_pad_waste_cap_forces_exact;
          Alcotest.test_case "distinct buckets" `Quick test_distinct_buckets_do_not_mix;
          Alcotest.test_case "shed and expiry" `Quick test_shed_and_expiry;
          Alcotest.test_case "rejects malformed" `Quick test_malformed_requests_rejected;
          Alcotest.test_case "class mix" `Quick test_class_mix_is_deterministic;
          Alcotest.test_case "warmth beats rr" `Quick test_warmth_beats_round_robin;
          Alcotest.test_case "failure drains" `Quick test_replica_failure_drains_cleanly;
          Alcotest.test_case "pool death" `Quick test_whole_pool_death_fails_remainder;
          Alcotest.test_case "heterogeneous" `Quick test_heterogeneous_pool_runs;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "rebucket cuts waste" `Quick test_adaptive_rebucket_cuts_waste;
          Alcotest.test_case "scaling loses nothing" `Quick test_adaptive_scaling_no_loss;
          Alcotest.test_case "prewarm spreads warmth" `Quick
            test_adaptive_prewarm_spreads_warmth;
        ] );
    ]
